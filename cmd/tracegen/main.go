// Command tracegen generates, inspects and converts synthetic IP
// multicast transmission traces.
//
// Subcommands:
//
//	tracegen catalog [-scale 0.1]             # print Table 1 for the generated catalog
//	tracegen gen -o out.trace [flags]         # generate one trace to a file
//	tracegen info file.trace                  # summarize a trace file
//	tracegen infer file.trace                 # run the §4.2 link inference on a trace
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"cesrm/internal/lossinfer"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tracegen <catalog|gen|info|infer> [flags]")
	}
	switch args[0] {
	case "catalog":
		return catalog(args[1:])
	case "gen":
		return gen(args[1:])
	case "info":
		return info(args[1:])
	case "infer":
		return infer(args[1:])
	case "locality":
		return locality(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// locality prints the loss-locality statistics of a trace file or, with
// no argument, of the whole generated catalog — the phenomenon CESRM's
// caching exploits (§1).
func locality(args []string) error {
	fs := flag.NewFlagSet("locality", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "catalog volume scale when no file is given")
	if err := fs.Parse(args); err != nil {
		return err
	}
	printRow := func(name string, s trace.LocalityStats) {
		same := "n/a"
		if s.SameLinkConsecutive >= 0 {
			same = fmt.Sprintf("%.0f%%", 100*s.SameLinkConsecutive)
		}
		fmt.Printf("%-12s lossP=%.3f condP=%.3f ratio=%.1fx burst(mean=%.1f p50=%d p90=%d) sameLink=%s patternRepeat=%.0f%%\n",
			name, s.UncondLossProb, s.CondLossProb, s.LocalityRatio(),
			s.MeanBurstLen, s.BurstPercentile(0.5), s.BurstPercentile(0.9),
			same, 100*s.PatternRepeat)
	}
	if fs.NArg() == 1 {
		tr, err := loadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		printRow(tr.Name, trace.AnalyzeLocality(tr))
		return nil
	}
	for _, e := range trace.Catalog {
		tr, err := e.Load(*scale)
		if err != nil {
			return err
		}
		printRow(e.Name, trace.AnalyzeLocality(tr))
	}
	return nil
}

func catalog(args []string) error {
	fs := flag.NewFlagSet("catalog", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "volume scale in (0,1]")
	extended := fs.Bool("extended", false, "include the extended stress entries (SYN10K et al.)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries := trace.Catalog
	if *extended {
		entries = append(append([]trace.CatalogEntry(nil), entries...), trace.Extended...)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tTrace\tRcvrs\tDepth\tPeriod\tPkts\tLosses\tTarget\tBurstLen\tCalibErr")
	for _, e := range entries {
		tr, err := e.Load(*scale)
		if err != nil {
			return err
		}
		spec, _ := e.Spec(*scale)
		st := tr.ComputeStats()
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%v\t%d\t%d\t%d\t%.1f\t%.1f%%\n",
			e.Index, st.Name, st.Receivers, st.TreeDepth, st.Period,
			st.Packets, st.Losses, spec.TargetLosses, tr.MeanBurstLength(),
			100*trace.CalibrationError(tr, spec.TargetLosses))
	}
	return tw.Flush()
}

func gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("o", "", "output file (required)")
	name := fs.String("name", "synthetic", "trace name")
	receivers := fs.Int("receivers", 10, "number of receivers")
	depth := fs.Int("depth", 4, "tree depth")
	packets := fs.Int("packets", 10000, "packets to transmit")
	period := fs.Duration("period", 80*time.Millisecond, "transmission period")
	losses := fs.Int("losses", 3000, "target aggregate loss count")
	burst := fs.Float64("burst", 8, "mean loss burst length")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	tr, err := trace.Generate(trace.GenSpec{
		Name:         *name,
		Topology:     topology.GenSpec{Receivers: *receivers, Depth: *depth},
		NumPackets:   *packets,
		Period:       *period,
		TargetLosses: *losses,
		MeanBurstLen: *burst,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Marshal(f, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %v\n", *out, tr.ComputeStats())
	return nil
}

func loadFile(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Unmarshal(f)
}

func info(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tracegen info <file>")
	}
	tr, err := loadFile(args[0])
	if err != nil {
		return err
	}
	st := tr.ComputeStats()
	fmt.Println(st.String())
	fmt.Printf("mean burst length: %.2f\n", tr.MeanBurstLength())
	fmt.Printf("tree: %v\n", tr.Tree)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "recv\tnode\tlosses\trate")
	for i, r := range tr.Tree.Receivers() {
		n := tr.ReceiverLosses(i)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f%%\n", i+1, r, n, 100*float64(n)/float64(tr.NumPackets()))
	}
	return tw.Flush()
}

func infer(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tracegen infer <file>")
	}
	tr, err := loadFile(args[0])
	if err != nil {
		return err
	}
	yaj := lossinfer.EstimateYajnik(tr)
	mle := lossinfer.EstimateMLE(tr)
	mean, max, err := lossinfer.Compare(yaj, mle)
	if err != nil {
		return err
	}
	fmt.Printf("estimator agreement: mean |Δ| = %.4f, max |Δ| = %.4f\n", mean, max)
	res, err := lossinfer.Infer(tr, yaj)
	if err != nil {
		return err
	}
	fmt.Printf("distinct loss patterns: %d\n", res.DistinctPatterns)
	fmt.Printf("selection confidence: >95%%: %.1f%%  >98%%: %.1f%%\n",
		100*res.Confidence(0.95), 100*res.Confidence(0.98))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "link\tYajnik\tMLE")
	for _, l := range tr.Tree.Links() {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\n", l, yaj[l], mle[l])
	}
	return tw.Flush()
}
