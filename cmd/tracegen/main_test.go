package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestGenInfoInferLocalityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trace")
	err := run([]string{"gen", "-o", out, "-receivers", "8", "-depth", "3",
		"-packets", "2000", "-losses", "600", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"infer", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"locality", out}); err != nil {
		t.Fatal(err)
	}
}

func TestGenRequiresOutput(t *testing.T) {
	if err := run([]string{"gen"}); err == nil {
		t.Fatal("gen without -o accepted")
	}
}

func TestInfoRejectsMissingFile(t *testing.T) {
	if err := run([]string{"info", "/nonexistent/trace"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"info"}); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := run([]string{"infer"}); err == nil {
		t.Fatal("missing argument accepted")
	}
}

func TestCatalogSubcommand(t *testing.T) {
	if err := run([]string{"catalog", "-scale", "0.005"}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityCatalog(t *testing.T) {
	if err := run([]string{"locality", "-scale", "0.005"}); err != nil {
		t.Fatal(err)
	}
}
