package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

func TestRunCatalogTraceBothProtocols(t *testing.T) {
	for _, proto := range []string{"srm", "cesrm", "lms"} {
		err := run([]string{"-trace", "WRN951216", "-scale", "0.005", "-protocol", proto})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

func TestRunRouterAssistAndLossy(t *testing.T) {
	err := run([]string{"-trace", "WRN951211", "-scale", "0.005", "-router-assist", "-lossy"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	tr, err := trace.Generate(trace.GenSpec{
		Name:         "filetest",
		Topology:     topology.GenSpec{Receivers: 6, Depth: 3},
		NumPackets:   800,
		Period:       80 * time.Millisecond,
		TargetLosses: 250,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Marshal(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-file", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyDeterminism(t *testing.T) {
	err := run([]string{"-trace", "WRN951216", "-scale", "0.005", "-verify-determinism", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEventsNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	if err := run([]string{"-trace", "WRN951216", "-scale", "0.005", "-events", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) < 10 {
		t.Fatalf("event dump has %d lines, expected a substantial timeline", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if _, ok := m["kind"]; !ok {
			t.Fatalf("line %d has no kind field: %s", i, line)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-trace", "NOPE"}); err == nil {
		t.Fatal("unknown trace accepted")
	}
	if err := run([]string{"-protocol", "tcp"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run([]string{"-file", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-scale", "-7"}); err == nil {
		t.Fatal("bad scale accepted")
	}
}
