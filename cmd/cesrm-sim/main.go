// Command cesrm-sim runs a single trace-driven simulation of SRM or
// CESRM and prints a detailed report: recovery latency distribution,
// per-host traffic, expedited statistics, link-crossing overhead and
// the run's determinism fingerprint.
//
// The trace is either a catalog entry (-trace WRN951216) or a file
// produced by tracegen (-file path).
//
// -verify-determinism N reruns the configuration N extra times and
// fails if any rerun's fingerprint diverges from the first — the
// determinism audit. -chaos SPEC installs the deterministic
// fault-injection harness (host crashes and restarts, link flaps,
// jitter ramps, duplicate storms, session starvation; see
// chaos.ParseSpec for the grammar) and composes with the audit: a chaos
// run must replay to the identical fingerprint. -events FILE dumps the
// ordered protocol-event stream as NDJSON for timeline debugging.
// -cpuprofile and -memprofile write pprof profiles of the run for
// hot-path analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"text/tabwriter"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/netsim"
	"cesrm/internal/soak"
	"cesrm/internal/stats"
	"cesrm/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cesrm-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cesrm-sim", flag.ContinueOnError)
	name := fs.String("trace", "WRN951216", "catalog trace name")
	file := fs.String("file", "", "trace file (overrides -trace)")
	scale := fs.Float64("scale", 0.1, "catalog trace volume scale (> 0); 1 = full Table 1 volumes")
	protoName := fs.String("protocol", "cesrm", "protocol: srm, cesrm or lms")
	seed := fs.Int64("seed", 1, "random seed")
	delay := fs.Duration("delay", 20*time.Millisecond, "per-link one-way delay")
	lossy := fs.Bool("lossy", false, "drop recovery traffic with estimated link rates")
	routerAssist := fs.Bool("router-assist", false, "enable router-assisted CESRM (§3.3)")
	shards := fs.Int("shards", 0, "subtree dispatch shards (0/1 = serial, -1 = GOMAXPROCS); fingerprints are byte-identical to serial")
	chaosSpec := fs.String("chaos", "", `fault-injection spec, e.g. "crash@40s:host=3;restart@70s:host=3" (kinds: crash, restart, link-down, link-up, jitter, dup, starve)`)
	replayPath := fs.String("replay", "", "replay a soak corpus entry (file or *.spec directory) under the soak guardrails and report each entry's termination status")
	verifyDet := fs.Int("verify-determinism", 0, "rerun the config N extra times and fail on fingerprint divergence")
	eventsFile := fs.String("events", "", "write the ordered protocol-event stream as NDJSON to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile taken after the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *replayPath != "" {
		return replayCorpus(*replayPath)
	}

	var tr *trace.Trace
	var err error
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.Unmarshal(f)
		if err != nil {
			return err
		}
	} else {
		entry, ok := trace.ByName(*name)
		if !ok {
			return fmt.Errorf("unknown catalog trace %q", *name)
		}
		tr, err = entry.Load(*scale)
		if err != nil {
			return err
		}
	}

	var proto experiment.Protocol
	switch *protoName {
	case "srm":
		proto = experiment.SRM
	case "cesrm":
		proto = experiment.CESRM
	case "lms":
		proto = experiment.LMS
	default:
		return fmt.Errorf("unknown protocol %q", *protoName)
	}

	netCfg := netsim.DefaultConfig()
	netCfg.LinkDelay = *delay
	cfg := experiment.RunConfig{
		Trace:         tr,
		Protocol:      proto,
		Net:           netCfg,
		CESRM:         core.Config{RouterAssist: *routerAssist},
		LossyRecovery: *lossy,
		Seed:          *seed,
		// The event stream is materialized only when the timeline dump
		// asked for it; every other invocation runs stream-only.
		KeepEvents: *eventsFile != "",
	}
	if *shards < 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	cfg.Shards = *shards
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return err
		}
		if err := spec.Validate(tr.Tree); err != nil {
			return err
		}
		cfg.Chaos = spec
	}

	var res *experiment.RunResult
	if *verifyDet > 0 {
		res, err = experiment.VerifyDeterminism(cfg, *verifyDet)
		if err != nil {
			return err
		}
		fmt.Printf("determinism audit: %d reruns, all fingerprints match\n", *verifyDet)
	} else {
		res, err = experiment.Run(cfg)
		if err != nil {
			return err
		}
	}

	if *eventsFile != "" {
		f, err := os.Create(*eventsFile)
		if err != nil {
			return err
		}
		if err := stats.WriteEventsNDJSON(f, res.Events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("event timeline: %d events written to %s\n", len(res.Events), *eventsFile)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize the allocation profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	report(tr, proto, res)
	return nil
}

// replayCorpus reruns soak corpus entries under the soak guardrails.
// Budget aborts are reported as structured degradation; invariant
// violations, panics and liveness timeouts fail the command. A single
// entry that completes also gets the full report.
func replayCorpus(path string) error {
	runner := soak.NewRunner(soak.DefaultBudget())
	outcomes, err := runner.ReplayPath(path)
	fatal := 0
	for _, o := range outcomes {
		switch {
		case o.Failure == nil:
			fmt.Printf("replay %s: ok status=%s fingerprint=%s\n", o.Path, o.Status, o.Fingerprint)
		case o.Failure.Fatal():
			fatal++
			fmt.Printf("replay %s: FAIL class=%s\n  detail: %s\n", o.Path, o.Failure.Class, o.Failure.Detail)
		default:
			fmt.Printf("replay %s: degraded class=%s (tolerated)\n", o.Path, o.Failure.Class)
			if o.Result != nil && o.Result.Diag != nil {
				fmt.Printf("  diag: %s\n", o.Result.Diag)
			}
		}
	}
	if err != nil {
		return err
	}
	if len(outcomes) == 1 && outcomes[0].Failure == nil {
		fmt.Println()
		report(outcomes[0].Result.Config.Trace, outcomes[0].Entry.Protocol, outcomes[0].Result)
	}
	if fatal > 0 {
		return fmt.Errorf("%d corpus entries failed fatally", fatal)
	}
	return nil
}

func report(tr *trace.Trace, proto experiment.Protocol, res *experiment.RunResult) {
	st := tr.ComputeStats()
	fmt.Printf("trace %s: %d receivers, depth %d, %d packets, %d losses (burst len %.1f)\n",
		st.Name, st.Receivers, st.TreeDepth, st.Packets, st.Losses, tr.MeanBurstLength())
	fmt.Printf("protocol %s: finished at %v (inference confidence@95%% = %.1f%%)\n",
		proto, res.FinishedAt, 100*res.InferenceConfidence95)
	if spec := res.Config.Chaos; spec != nil {
		fmt.Printf("chaos: %s\n", spec)
	}
	fmt.Printf("fingerprint: %s\n\n", res.Fingerprint)

	all := res.Collector.OverallNormalized(res.RTT)
	fr := res.Collector.FirstRoundNormalized(res.RTT)
	fmt.Printf("recoveries: %d, mean latency %.2f RTT (first-round %.2f RTT over %d)\n",
		all.Count, all.MeanRTT, fr.MeanRTT, fr.Count)
	if ratio, ok := res.Collector.ExpeditedSuccessRatio(); ok {
		tot := res.Collector.TotalCounts()
		fmt.Printf("expedited: %d requests, %d replies (%.1f%% success)\n",
			tot.ExpRequests, tot.ExpReplies, 100*ratio)
	}

	fmt.Println("\nper-receiver mean normalized recovery (RTT units):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  recv\tlosses\trecoveries\tmeanRTT\texpedited\treqs\texpReqs\treplies\texpReplies")
	for _, r := range res.Receivers {
		s := res.Collector.NormalizedRecovery(r, res.RTT)
		exp, _ := res.Collector.NormalizedRecoverySplit(r, res.RTT)
		hc := res.Collector.Counts(r)
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%.2f\t%d\t%d\t%d\t%d\t%d\n",
			r, res.Collector.Losses(r), s.Count, s.MeanRTT, exp.Count,
			hc.Requests, hc.ExpRequests, hc.Replies, hc.ExpReplies)
	}
	tw.Flush()

	fmt.Println("\nrecovery latency percentiles (RTT units):")
	printPercentiles(res)

	c := res.Crossings
	fmt.Printf("\nlink crossings: data=%d session=%d | retrans: mcast=%d subcast=%d ucast=%d | control: mcast=%d subcast=%d ucast=%d | recovery total=%d\n",
		c.Data, c.Session, c.PayloadMulticast, c.PayloadSubcast, c.PayloadUnicast,
		c.ControlMulticast, c.ControlSubcast, c.ControlUnicast, c.RecoveryTotal())
}

func printPercentiles(res *experiment.RunResult) {
	var norm []float64
	for _, r := range res.Collector.Recoveries() {
		basis := res.RTT(r.Host)
		if basis > 0 {
			norm = append(norm, float64(r.Latency())/float64(basis))
		}
	}
	if len(norm) == 0 {
		fmt.Println("  (no recoveries)")
		return
	}
	sort.Float64s(norm)
	pct := func(p float64) float64 {
		i := int(p * float64(len(norm)-1))
		return norm[i]
	}
	fmt.Printf("  p10=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		pct(0.10), pct(0.50), pct(0.90), pct(0.99), norm[len(norm)-1])
}
