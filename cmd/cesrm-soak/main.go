// Command cesrm-soak is the chaos-fuzzing soak harness: it generates
// seeded random (trace × protocol × chaos-spec) trials, runs each under
// the online invariant validator with the engine guardrails armed,
// classifies failures, delta-debugs failing chaos specs to minimal
// reproducing schedules, and optionally persists them as replayable
// corpus entries.
//
// The campaign is a pure function of its flags: the same seed, trial
// count, scale and candidate sets print bit-identical output on every
// run. -replay switches to corpus-replay mode: every *.spec entry of a
// file or directory is rerun and must terminate with a structured
// status; invariant violations, panics and liveness timeouts fail the
// command, budget aborts are reported but tolerated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cesrm/internal/experiment"
	"cesrm/internal/sim"
	"cesrm/internal/soak"
	"cesrm/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cesrm-soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "campaign seed; the whole run is a pure function of the flags")
	trials := fs.Int("trials", 25, "number of randomized trials")
	scale := fs.Float64("scale", 0.01, "trace volume scale in (0,1]")
	budgetTime := fs.Duration("budget", 30*time.Minute, "virtual-time guardrail per trial (0 disables)")
	maxEvents := fs.Uint64("max-events", 50_000_000, "executed-event guardrail per trial (0 disables)")
	minimize := fs.Bool("minimize", true, "delta-debug failing chaos specs to minimal reproducing schedules")
	replay := fs.String("replay", "", "replay a corpus entry file or directory instead of fuzzing")
	corpusDir := fs.String("corpus", "", "write each minimized failure as a corpus entry into this directory")
	traces := fs.String("traces", "4,12,13", "comma-separated 1-based catalog trace indices to draw from")
	protocols := fs.String("protocols", "SRM,CESRM,LMS", "comma-separated candidate protocols")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	budget := soak.DefaultBudget()
	budget.MaxVirtualTime = sim.Time(*budgetTime)
	budget.MaxEvents = *maxEvents

	if *replay != "" {
		return replayCorpus(*replay, budget, stdout, stderr)
	}

	indices, err := parseInts(*traces)
	if err != nil {
		fmt.Fprintln(stderr, "cesrm-soak:", err)
		return 2
	}
	protos, err := parseProtocols(*protocols)
	if err != nil {
		fmt.Fprintln(stderr, "cesrm-soak:", err)
		return 2
	}

	fmt.Fprintf(stdout, "soak: seed=%d trials=%d scale=%v traces=%v protocols=%s\n",
		*seed, *trials, *scale, indices, *protocols)
	res, err := soak.Run(soak.Config{
		Seed: *seed, Trials: *trials, Scale: *scale,
		Traces: indices, Protocols: protos,
		Budget: budget, Minimize: *minimize, Log: stdout,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cesrm-soak:", err)
		return 2
	}
	fmt.Fprintf(stdout, "soak: %d trials, %d failures\n", res.Trials, len(res.Failures))
	if *corpusDir != "" && len(res.Failures) > 0 {
		if err := writeCorpus(*corpusDir, *seed, res.Failures, stdout); err != nil {
			fmt.Fprintln(stderr, "cesrm-soak:", err)
			return 2
		}
	}
	if len(res.Failures) > 0 {
		return 1
	}
	return 0
}

// writeCorpus persists each failure's minimized spec (or the original,
// when minimization was off) as a replayable corpus entry.
func writeCorpus(dir string, seed int64, failures []*soak.Failure, stdout io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, f := range failures {
		spec := f.Minimized
		if spec == nil {
			spec = f.Trial.Spec
		}
		e := &soak.Entry{
			Trace:    traceName(f.Trial.TraceIndex),
			Protocol: f.Trial.Protocol,
			Scale:    f.Trial.Scale,
			Seed:     f.Trial.Seed,
			Spec:     spec,
			Class:    f.Class,
			Note:     []string{fmt.Sprintf("captured by cesrm-soak -seed %d", seed), f.Detail},
		}
		path := filepath.Join(dir, fmt.Sprintf("soak-%d-%d-%s.spec", seed, i, classSlug(f.Class)))
		if err := soak.WriteEntry(path, e); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "corpus: wrote %s\n", path)
	}
	return nil
}

func replayCorpus(path string, budget sim.Budget, stdout, stderr io.Writer) int {
	r := soak.NewRunner(budget)
	outcomes, err := r.ReplayPath(path)
	fatal := 0
	for _, o := range outcomes {
		switch {
		case o.Failure == nil:
			fmt.Fprintf(stdout, "replay %s: ok status=%s fingerprint=%s\n", o.Path, o.Status, o.Fingerprint)
		case o.Failure.Fatal():
			fatal++
			fmt.Fprintf(stdout, "replay %s: FAIL class=%s\n  detail: %s\n", o.Path, o.Failure.Class, o.Failure.Detail)
		default:
			fmt.Fprintf(stdout, "replay %s: degraded class=%s (tolerated)\n", o.Path, o.Failure.Class)
		}
		if o.Entry.Class != "" && (o.Failure == nil || o.Failure.Class != o.Entry.Class) {
			got := "clean completion"
			if o.Failure != nil {
				got = o.Failure.Class
			}
			fmt.Fprintf(stdout, "  note: recorded class %q, now %s\n", o.Entry.Class, got)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "cesrm-soak:", err)
		return 2
	}
	fmt.Fprintf(stdout, "replay: %d entries, %d fatal\n", len(outcomes), fatal)
	if fatal > 0 {
		return 1
	}
	return 0
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad trace index %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseProtocols(s string) ([]experiment.Protocol, error) {
	var out []experiment.Protocol
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := soak.ParseProtocol(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// traceName resolves a 1-based catalog index to its trace name.
func traceName(index int) string {
	if index >= 1 && index <= len(trace.Catalog) {
		return trace.Catalog[index-1].Name
	}
	return fmt.Sprintf("trace-%d", index)
}

// classSlug turns a failure class into a filename-safe token.
func classSlug(class string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, class)
}
