package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSoakOutputIsBitReproducible is the CLI acceptance criterion:
// cesrm-soak -seed S -trials N prints byte-identical output across
// runs.
func TestSoakOutputIsBitReproducible(t *testing.T) {
	args := []string{"-seed", "3", "-trials", "5", "-scale", "0.01", "-traces", "4", "-protocols", "SRM,CESRM"}
	runOnce := func() (int, string) {
		var out, errb bytes.Buffer
		code := run(args, &out, &errb)
		if errb.Len() > 0 {
			t.Fatalf("stderr: %s", errb.String())
		}
		return code, out.String()
	}
	codeA, outA := runOnce()
	codeB, outB := runOnce()
	if codeA != codeB || outA != outB {
		t.Fatalf("runs diverged (codes %d/%d):\n--- first\n%s--- second\n%s", codeA, codeB, outA, outB)
	}
	if !strings.Contains(outA, "soak: 5 trials") {
		t.Fatalf("missing summary in output:\n%s", outA)
	}
}

// TestReplayCommittedCorpus replays the repo corpus through the CLI:
// exit 0, every entry reported with a structured status.
func TestReplayCommittedCorpus(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-replay", "../../testdata/soak-corpus"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout:\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "pr4-clock-overflow.spec: ok status=Completed") {
		t.Fatalf("PR 4 entry did not replay to completion:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0 fatal") {
		t.Fatalf("replay summary missing:\n%s", out.String())
	}
}

// TestBadFlagsExitTwo pins usage errors apart from trial failures.
func TestBadFlagsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-protocols", "WARP"}, &out, &errb); code != 2 {
		t.Fatalf("bad protocol exited %d, want 2", code)
	}
	if code := run([]string{"-traces", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad trace list exited %d, want 2", code)
	}
}
