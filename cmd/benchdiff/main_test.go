package main

import (
	"os"
	"path/filepath"
	"testing"
)

// write drops a snapshot file and returns its path.
func write(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const committedBody = `{
  "seed": 1, "fingerprint_version": "v1",
  "runs": [{
    "scale": 0.01,
    "perf": {"suite_elapsed_ns": 1000000000, "parallel": 1},
    "traces": [
      {"index": 1, "name": "A", "srm_fingerprint": "v1:aa", "cesrm_fingerprint": "v1:bb", "wall_ns": 500},
      {"index": 2, "name": "B", "srm_fingerprint": "v1:cc", "cesrm_fingerprint": "v1:dd", "wall_ns": 500}
    ]
  }]
}`

func freshBody(elapsed int64, srm1 string) string {
	return `{
  "seed": 1, "fingerprint_version": "v1",
  "runs": [{
    "scale": 0.01,
    "perf": {"suite_elapsed_ns": ` + itoa(elapsed) + `, "parallel": 1},
    "traces": [
      {"index": 1, "name": "A", "srm_fingerprint": "` + srm1 + `", "cesrm_fingerprint": "v1:bb", "wall_ns": 600},
      {"index": 2, "name": "B", "srm_fingerprint": "v1:cc", "cesrm_fingerprint": "v1:dd", "wall_ns": 600}
    ]
  }]
}`
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestPassWithinBudget(t *testing.T) {
	c := write(t, "committed.json", committedBody)
	f := write(t, "fresh.json", freshBody(1_200_000_000, "v1:aa")) // +20% < 25%
	if err := run([]string{"-committed", c, "-fresh", f}); err != nil {
		t.Fatalf("within-budget comparison failed: %v", err)
	}
}

func TestFailOnWallTimeRegression(t *testing.T) {
	c := write(t, "committed.json", committedBody)
	f := write(t, "fresh.json", freshBody(1_300_000_000, "v1:aa")) // +30% > 25%
	if err := run([]string{"-committed", c, "-fresh", f}); err == nil {
		t.Fatal("30% wall-time regression passed a 25% gate")
	}
	// A looser explicit budget admits the same pair.
	if err := run([]string{"-committed", c, "-fresh", f, "-max-regression-pct", "50"}); err != nil {
		t.Fatalf("regression within explicit 50%% budget failed: %v", err)
	}
}

func TestFailOnFingerprintMismatch(t *testing.T) {
	c := write(t, "committed.json", committedBody)
	f := write(t, "fresh.json", freshBody(1_000_000_000, "v1:ee"))
	if err := run([]string{"-committed", c, "-fresh", f}); err == nil {
		t.Fatal("diverging fingerprint passed")
	}
	if err := run([]string{"-committed", c, "-fresh", f, "-ignore-fingerprints"}); err != nil {
		t.Fatalf("-ignore-fingerprints still failed: %v", err)
	}
}

func TestWallGateSkippedAcrossDispatchConfigs(t *testing.T) {
	c := write(t, "committed.json", committedBody) // no shards/gomaxprocs: serial, unknown cores
	sharded := `{
  "seed": 1, "fingerprint_version": "v1",
  "runs": [{
    "scale": 0.01,
    "perf": {"suite_elapsed_ns": 9000000000, "parallel": 1, "shards": 8, "gomaxprocs": 8, "repeats": 3},
    "traces": [
      {"index": 1, "name": "A", "srm_fingerprint": "v1:aa", "cesrm_fingerprint": "v1:bb", "wall_ns": 600},
      {"index": 2, "name": "B", "srm_fingerprint": "v1:cc", "cesrm_fingerprint": "v1:dd", "wall_ns": 600}
    ]
  }]
}`
	f := write(t, "fresh.json", sharded)
	// 9x the committed wall time, but under shards=8 vs serial: the wall
	// gate must not fire because the runs measure different executions.
	if err := run([]string{"-committed", c, "-fresh", f}); err != nil {
		t.Fatalf("cross-config wall comparison gated: %v", err)
	}
	// Same sharded config on both sides gates again.
	c2 := write(t, "committed2.json", sharded)
	slow := `{
  "seed": 1, "fingerprint_version": "v1",
  "runs": [{
    "scale": 0.01,
    "perf": {"suite_elapsed_ns": 18000000000, "parallel": 1, "shards": 8, "gomaxprocs": 8, "repeats": 3},
    "traces": [
      {"index": 1, "name": "A", "srm_fingerprint": "v1:aa", "cesrm_fingerprint": "v1:bb", "wall_ns": 600},
      {"index": 2, "name": "B", "srm_fingerprint": "v1:cc", "cesrm_fingerprint": "v1:dd", "wall_ns": 600}
    ]
  }]
}`
	f2 := write(t, "fresh2.json", slow)
	if err := run([]string{"-committed", c2, "-fresh", f2}); err == nil {
		t.Fatal("100% regression under matching sharded configs passed")
	}
}

func TestLegacySingleScaleSchema(t *testing.T) {
	legacy := `{
  "seed": 1, "fingerprint_version": "v1",
  "scale": 0.01,
  "perf": {"suite_elapsed_ns": 1000000000, "parallel": 1},
  "traces": [
    {"index": 1, "name": "A", "srm_fingerprint": "v1:aa", "cesrm_fingerprint": "v1:bb"}
  ]
}`
	c := write(t, "committed.json", legacy)
	f := write(t, "fresh.json", freshBody(1_100_000_000, "v1:aa"))
	if err := run([]string{"-committed", c, "-fresh", f}); err != nil {
		t.Fatalf("legacy schema comparison failed: %v", err)
	}
}

func TestRejectsDisjointScalesAndSeeds(t *testing.T) {
	c := write(t, "committed.json", committedBody)
	other := `{
  "seed": 1, "fingerprint_version": "v1",
  "runs": [{"scale": 0.1, "perf": {"suite_elapsed_ns": 1}, "traces": [
    {"index": 1, "name": "A", "srm_fingerprint": "v1:aa", "cesrm_fingerprint": "v1:bb"}]}]
}`
	f := write(t, "fresh.json", other)
	if err := run([]string{"-committed", c, "-fresh", f}); err == nil {
		t.Fatal("disjoint scales passed")
	}
	seed2 := write(t, "seed2.json", `{
  "seed": 2, "fingerprint_version": "v1",
  "runs": [{"scale": 0.01, "perf": {"suite_elapsed_ns": 1}, "traces": [
    {"index": 1, "name": "A", "srm_fingerprint": "v1:aa", "cesrm_fingerprint": "v1:bb"}]}]
}`)
	if err := run([]string{"-committed", c, "-fresh", seed2}); err == nil {
		t.Fatal("mismatched seeds passed")
	}
}
