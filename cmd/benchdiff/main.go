// Command benchdiff compares two cesrm-bench -json snapshots — typically
// a freshly generated one against a committed BENCH_*.json — and fails
// (exit 1) when the fresh run regresses.
//
// Usage:
//
//	benchdiff -committed BENCH_scale1_stream.json -fresh bench-snapshot.json \
//	          [-scale 0.01] [-max-regression-pct 25] [-max-mem-regression-pct 25] \
//	          [-ignore-fingerprints]
//
// Three gates:
//
//  1. Behavior: every trace present in both snapshots at the compared
//     scale must carry identical SRM and CESRM fingerprints. A mismatch
//     means the change is not behavior-preserving and the committed
//     snapshot (and its perf claims) no longer describe the current
//     code.
//  2. Performance: the fresh suite wall time must not exceed the
//     committed one by more than -max-regression-pct percent. Wall time
//     is machine-dependent, so the gate is deliberately loose; it
//     catches order-of-magnitude scheduler regressions, not percent
//     drift. The gate only fires when both snapshots were taken under
//     the same dispatch config (shards and GOMAXPROCS); otherwise the
//     wall times measure different executions and the comparison is
//     reported but not gated. Snapshots predating those fields read as
//     serial on an unrecorded core count and keep gating.
//  3. Memory: the fresh peak live heap must not exceed the committed
//     one by more than -max-mem-regression-pct percent. Peak heap is
//     far more stable than wall time (allocation volume is
//     deterministic; only GC timing jitters the watermark), so this
//     gate reliably catches a reintroduced retained-state leak — the
//     scale-1 suite once peaked over 4 GB before per-packet state was
//     released mid-run. Skipped when either snapshot predates the
//     peak_heap_bytes field.
//
// -scale selects which swept scale entry to compare; 0 (the default)
// picks the smallest scale present in both files, which for CI is the
// smoke scale. Snapshots in the pre-sweep single-scale schema (top-level
// scale/perf/traces, as in BENCH_baseline.json) are understood too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// snapshot covers both cesrm-bench schemas: the current multi-scale one
// (runs) and the legacy single-scale one (top-level scale/perf/traces).
type snapshot struct {
	Seed        int64      `json:"seed"`
	Fingerprint string     `json:"fingerprint_version"`
	Runs        []diffRun  `json:"runs"`
	Scale       float64    `json:"scale"`
	Perf        diffPerf   `json:"perf"`
	Traces      []diffItem `json:"traces"`
}

type diffRun struct {
	Scale  float64    `json:"scale"`
	Perf   diffPerf   `json:"perf"`
	Traces []diffItem `json:"traces"`
}

type diffPerf struct {
	ElapsedNS     int64  `json:"suite_elapsed_ns"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	Parallel      int    `json:"parallel"`
	Shards        int    `json:"shards"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Repeats       int    `json:"repeats"`
	PlanHits      uint64 `json:"plan_hits"`
	PlanMisses    uint64 `json:"plan_misses"`
	PlanEvictions uint64 `json:"plan_evictions"`
	QueueDrops    uint64 `json:"queue_drops"`
	Abandoned     int    `json:"abandoned"`
	ChurnEvents   int    `json:"churn_events"`
}

// config renders the execution shape behind a perf block. Snapshots
// predating the sharded-dispatch schema carry zeros, which mean serial
// dispatch on an unrecorded core count.
func (p diffPerf) config() string {
	shards := p.Shards
	if shards == 0 {
		shards = 1
	}
	procs := "?"
	if p.GOMAXPROCS > 0 {
		procs = fmt.Sprint(p.GOMAXPROCS)
	}
	reps := p.Repeats
	if reps == 0 {
		reps = 1
	}
	return fmt.Sprintf("shards=%d procs=%s repeats=%d", shards, procs, reps)
}

// comparableWall reports whether two perf blocks were taken under the
// same dispatch mode and core count, i.e. whether their wall times
// measure the same thing. Unrecorded (zero) GOMAXPROCS matches anything
// so pre-schema snapshots keep gating.
func comparableWall(a, b diffPerf) bool {
	sa, sb := a.Shards, b.Shards
	if sa == 0 {
		sa = 1
	}
	if sb == 0 {
		sb = 1
	}
	if sa != sb {
		return false
	}
	return a.GOMAXPROCS == 0 || b.GOMAXPROCS == 0 || a.GOMAXPROCS == b.GOMAXPROCS
}

type diffItem struct {
	Index            int    `json:"index"`
	Name             string `json:"name"`
	SRMFingerprint   string `json:"srm_fingerprint"`
	CESRMFingerprint string `json:"cesrm_fingerprint"`
	WallNS           int64  `json:"wall_ns"`
}

// load reads a snapshot, normalizing the legacy schema to one run.
func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Runs) == 0 && len(s.Traces) > 0 {
		s.Runs = []diffRun{{Scale: s.Scale, Perf: s.Perf, Traces: s.Traces}}
	}
	if len(s.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs recorded", path)
	}
	return &s, nil
}

// pickRun returns the run entry at the given scale, or, when scale is 0,
// the entry with the smallest scale.
func pickRun(s *snapshot, scale float64) (*diffRun, error) {
	if scale == 0 {
		best := &s.Runs[0]
		for i := range s.Runs[1:] {
			if s.Runs[i+1].Scale < best.Scale {
				best = &s.Runs[i+1]
			}
		}
		return best, nil
	}
	for i := range s.Runs {
		if s.Runs[i].Scale == scale {
			return &s.Runs[i], nil
		}
	}
	return nil, fmt.Errorf("no run at scale %v (have %v)", scale, scales(s))
}

func scales(s *snapshot) []float64 {
	out := make([]float64, len(s.Runs))
	for i := range s.Runs {
		out[i] = s.Runs[i].Scale
	}
	return out
}

// diff compares the two run entries and returns the gate failures.
func diff(committed, fresh *diffRun, maxRegressionPct, maxMemRegressionPct float64, checkFingerprints bool) []string {
	var fails []string
	if checkFingerprints {
		byIndex := make(map[int]diffItem, len(committed.Traces))
		for _, tr := range committed.Traces {
			byIndex[tr.Index] = tr
		}
		compared := 0
		for _, fr := range fresh.Traces {
			cm, ok := byIndex[fr.Index]
			if !ok {
				continue
			}
			compared++
			if cm.SRMFingerprint != fr.SRMFingerprint {
				fails = append(fails, fmt.Sprintf(
					"trace %d (%s): SRM fingerprint %s != committed %s",
					fr.Index, fr.Name, fr.SRMFingerprint, cm.SRMFingerprint))
			}
			if cm.CESRMFingerprint != fr.CESRMFingerprint {
				fails = append(fails, fmt.Sprintf(
					"trace %d (%s): CESRM fingerprint %s != committed %s",
					fr.Index, fr.Name, fr.CESRMFingerprint, cm.CESRMFingerprint))
			}
		}
		if compared == 0 {
			fails = append(fails, "no trace appears in both snapshots; nothing compared")
		}
	}
	if committed.Perf.ElapsedNS > 0 {
		pct := 100 * (float64(fresh.Perf.ElapsedNS) - float64(committed.Perf.ElapsedNS)) /
			float64(committed.Perf.ElapsedNS)
		if !comparableWall(committed.Perf, fresh.Perf) {
			// Different dispatch mode or core count: the wall times measure
			// different executions, so the regression gate would be noise.
			fmt.Printf("wall time: committed %.3fs (%s), fresh %.3fs (%s) — configs differ, gate skipped\n",
				float64(committed.Perf.ElapsedNS)/1e9, committed.Perf.config(),
				float64(fresh.Perf.ElapsedNS)/1e9, fresh.Perf.config())
		} else {
			verdict := "ok"
			if pct > maxRegressionPct {
				verdict = "FAIL"
				fails = append(fails, fmt.Sprintf(
					"suite wall time regressed %.1f%% (%.3fs -> %.3fs), budget %.0f%%",
					pct, float64(committed.Perf.ElapsedNS)/1e9, float64(fresh.Perf.ElapsedNS)/1e9,
					maxRegressionPct))
			}
			fmt.Printf("wall time: committed %.3fs, fresh %.3fs (%+.1f%%, budget +%.0f%%) [%s] %s\n",
				float64(committed.Perf.ElapsedNS)/1e9, float64(fresh.Perf.ElapsedNS)/1e9,
				pct, maxRegressionPct, fresh.Perf.config(), verdict)
		}
	}
	if committed.Perf.PeakHeapBytes > 0 && fresh.Perf.PeakHeapBytes > 0 &&
		!comparableWall(committed.Perf, fresh.Perf) {
		// Sharded dispatch legitimately holds more live state (per-shard
		// op logs and queues), so cross-config peak heap is informational.
		fmt.Printf("peak heap: committed %.1f MB (%s), fresh %.1f MB (%s) — configs differ, gate skipped\n",
			float64(committed.Perf.PeakHeapBytes)/1e6, committed.Perf.config(),
			float64(fresh.Perf.PeakHeapBytes)/1e6, fresh.Perf.config())
	} else if committed.Perf.PeakHeapBytes > 0 && fresh.Perf.PeakHeapBytes > 0 {
		pct := 100 * (float64(fresh.Perf.PeakHeapBytes) - float64(committed.Perf.PeakHeapBytes)) /
			float64(committed.Perf.PeakHeapBytes)
		verdict := "ok"
		if pct > maxMemRegressionPct {
			verdict = "FAIL"
			fails = append(fails, fmt.Sprintf(
				"peak heap regressed %.1f%% (%.1f MB -> %.1f MB), budget %.0f%%",
				pct, float64(committed.Perf.PeakHeapBytes)/1e6, float64(fresh.Perf.PeakHeapBytes)/1e6,
				maxMemRegressionPct))
		}
		fmt.Printf("peak heap: committed %.1f MB, fresh %.1f MB (%+.1f%%, budget +%.0f%%) %s\n",
			float64(committed.Perf.PeakHeapBytes)/1e6, float64(fresh.Perf.PeakHeapBytes)/1e6,
			pct, maxMemRegressionPct, verdict)
	}
	// Flood plan cache counters are deterministic (a pure function of the
	// run configuration), so they are reported rather than gated: a hit
	// rate collapsing across revisions is a perf smell the wall-time gate
	// will confirm.
	if c, f := committed.Perf, fresh.Perf; c.PlanHits+c.PlanMisses > 0 || f.PlanHits+f.PlanMisses > 0 {
		fmt.Printf("flood plans: committed %d hits / %d misses / %d evictions, fresh %d / %d / %d\n",
			c.PlanHits, c.PlanMisses, c.PlanEvictions, f.PlanHits, f.PlanMisses, f.PlanEvictions)
	}
	// Robustness counters are likewise deterministic and reported without
	// gating: queue drops and abandonments move only when the base
	// configuration engages queue caps or membership churn, and a
	// behavior-preserving change keeps them pinned via the fingerprints.
	if c, f := committed.Perf, fresh.Perf; c.QueueDrops+f.QueueDrops > 0 ||
		c.Abandoned+f.Abandoned > 0 || c.ChurnEvents+f.ChurnEvents > 0 {
		fmt.Printf("robustness: committed %d queue drops / %d abandoned / %d churn events, fresh %d / %d / %d\n",
			c.QueueDrops, c.Abandoned, c.ChurnEvents, f.QueueDrops, f.Abandoned, f.ChurnEvents)
	}
	return fails
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	committedPath := fs.String("committed", "", "committed BENCH_*.json snapshot (required)")
	freshPath := fs.String("fresh", "", "freshly generated cesrm-bench -json snapshot (required)")
	scale := fs.Float64("scale", 0, "scale entry to compare (0 = smallest scale present in both)")
	maxRegression := fs.Float64("max-regression-pct", 25, "max tolerated suite wall-time increase, percent")
	maxMemRegression := fs.Float64("max-mem-regression-pct", 25, "max tolerated peak-heap increase, percent")
	ignoreFP := fs.Bool("ignore-fingerprints", false, "skip the fingerprint-equality and schema-version gates (cross-revision perf comparisons)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *committedPath == "" || *freshPath == "" {
		return fmt.Errorf("both -committed and -fresh are required")
	}

	committed, err := load(*committedPath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}
	if committed.Fingerprint != fresh.Fingerprint && !*ignoreFP {
		// Cross-version perf comparisons (e.g. v1-era wall times against a
		// v2 run) are legitimate under -ignore-fingerprints: wall time and
		// peak heap are schema-independent.
		return fmt.Errorf("fingerprint schema %s (committed) != %s (fresh); snapshots are not comparable (use -ignore-fingerprints for perf-only comparison)",
			committed.Fingerprint, fresh.Fingerprint)
	}

	pickScale := *scale
	if pickScale == 0 {
		// Smallest scale present in BOTH files: intersect, then min.
		have := make(map[float64]bool)
		for _, r := range committed.Runs {
			have[r.Scale] = true
		}
		for _, r := range fresh.Runs {
			if have[r.Scale] && (pickScale == 0 || r.Scale < pickScale) {
				pickScale = r.Scale
			}
		}
		if pickScale == 0 {
			return fmt.Errorf("snapshots share no scale (committed %v, fresh %v)",
				scales(committed), scales(fresh))
		}
	}
	cr, err := pickRun(committed, pickScale)
	if err != nil {
		return fmt.Errorf("%s: %w", *committedPath, err)
	}
	fr, err := pickRun(fresh, pickScale)
	if err != nil {
		return fmt.Errorf("%s: %w", *freshPath, err)
	}
	if committed.Seed != fresh.Seed {
		return fmt.Errorf("seed %d (committed) != %d (fresh); fingerprints would differ by construction",
			committed.Seed, fresh.Seed)
	}

	fmt.Printf("benchdiff: scale=%v, %d committed traces vs %d fresh\n",
		pickScale, len(cr.Traces), len(fr.Traces))
	fails := diff(cr, fr, *maxRegression, *maxMemRegression, !*ignoreFP)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", f)
		}
		return fmt.Errorf("%d gate failure(s)", len(fails))
	}
	fmt.Println("benchdiff: PASS")
	return nil
}
