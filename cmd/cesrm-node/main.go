// Command cesrm-node runs one member of a CESRM/SRM multicast group
// over real UDP sockets, with the deterministic simulator available as
// a conformance oracle for captured runs.
//
// Modes:
//
//	node     run one group member (the default)
//	proxy    run the drop-injecting loopback forwarder
//	conform  replay capture files through the simulator and report
//	         divergences
//
// A three-member localhost session (tree file "-1 0 0 1 2": source 0,
// receivers 3 and 4):
//
//	cesrm-node -mode proxy -bind 127.0.0.1:7000 -drop 0.2 -drop-seed 7 \
//	    -peers 0=127.0.0.1:7100,3=127.0.0.1:7103,4=127.0.0.1:7104 &
//	cesrm-node -tree tree.txt -id 0 -bind 127.0.0.1:7100 \
//	    -via 127.0.0.1:7000 -capture node0.ndjson &
//	cesrm-node -tree tree.txt -id 3 -bind 127.0.0.1:7103 \
//	    -via 127.0.0.1:7000 -capture node3.ndjson &
//	cesrm-node -tree tree.txt -id 4 -bind 127.0.0.1:7104 \
//	    -via 127.0.0.1:7000 -capture node4.ndjson &
//	wait  # nodes exit on their own; then certify the run:
//	cesrm-node -mode conform node0.ndjson node3.ndjson node4.ndjson
//
// Without a proxy, give each node the full address book via -peers.
// Exit status: 0 on success, 1 when a node fails to complete its stream
// or a capture diverges from its replay, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cesrm/internal/srm"
	"cesrm/internal/topology"
	"cesrm/internal/wire"
)

func main() {
	var (
		mode = flag.String("mode", "node", "node | proxy | conform")

		treePath = flag.String("tree", "", "tree file (parent vector; -1 marks the root)")
		id       = flag.Int("id", -1, "this node's id in the tree")
		bind     = flag.String("bind", "127.0.0.1:0", "UDP bind address")
		peers    = flag.String("peers", "", "peer address book: id=host:port,id=host:port,...")
		via      = flag.String("via", "", "route all traffic through the proxy at this address")
		capture  = flag.String("capture", "", "write an NDJSON capture to this file")

		protocol = flag.String("protocol", "cesrm", "protocol: srm | cesrm")
		distance = flag.String("distance", "echo-rtt",
			"distance estimator: echo-rtt (no clock sync needed; the default for real "+
				"processes, whose virtual-clock epochs differ) | one-way (assumes synchronized clocks)")
		seed     = flag.Int64("seed", 1, "shared group seed")
		packets  = flag.Int("packets", 32, "number of packets in the source stream")
		period   = flag.Duration("period", 40*time.Millisecond, "source inter-packet gap")
		warmup   = flag.Duration("warmup", 0, "delay before the first data packet (0 = 3 session periods)")
		session  = flag.Duration("session-period", time.Second, "session message period")
		linger   = flag.Duration("linger", 0, "receiver linger after completion (0 = 2 session periods)")
		srcLing  = flag.Duration("source-linger", 0, "source linger after last transmission (0 = 10 session periods)")
		maxRun   = flag.Duration("max-run", 0, "hard stop (0 = derived from the schedule)")
		reorder  = flag.Duration("reorder", 0, "CESRM reorder delay")
		cacheCap = flag.Int("cache", 0, "CESRM cache capacity (0 = default)")

		drop     = flag.Float64("drop", 0.2, "proxy drop probability for data and repair packets")
		dropSeed = flag.Int64("drop-seed", 1, "proxy drop RNG seed")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "node":
		err = runNode(nodeOpts{
			treePath: *treePath, id: *id, bind: *bind, peers: *peers, via: *via,
			capture: *capture, protocol: *protocol, distance: *distance, seed: *seed, packets: *packets,
			period: *period, warmup: *warmup, session: *session, linger: *linger,
			srcLinger: *srcLing, maxRun: *maxRun, reorder: *reorder, cacheCap: *cacheCap,
		})
	case "proxy":
		err = runProxy(*bind, *peers, *drop, *dropSeed)
	case "conform":
		err = runConform(flag.Args())
	default:
		fmt.Fprintf(os.Stderr, "cesrm-node: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cesrm-node: %v\n", err)
		os.Exit(1)
	}
}

type nodeOpts struct {
	treePath, bind, peers, via, capture, protocol string
	distance                                      string
	id, packets, cacheCap                         int
	seed                                          int64
	period, warmup, session, linger               time.Duration
	srcLinger, maxRun, reorder                    time.Duration
}

func runNode(o nodeOpts) error {
	if o.treePath == "" {
		return fmt.Errorf("node mode requires -tree")
	}
	tree, err := wire.LoadTree(o.treePath)
	if err != nil {
		return err
	}
	params := srm.DefaultParams()
	params.SessionPeriod = o.session
	switch o.distance {
	case "echo-rtt":
		params.DistanceMode = srm.DistEchoRTT
	case "one-way":
		params.DistanceMode = srm.DistOneWay
	default:
		return fmt.Errorf("unknown distance mode %q (echo-rtt | one-way)", o.distance)
	}
	cfg := wire.NodeConfig{
		Tree:          tree,
		ID:            topology.NodeID(o.id),
		Protocol:      wire.Protocol(o.protocol),
		Seed:          o.seed,
		NumPackets:    o.packets,
		Period:        o.period,
		Warmup:        o.warmup,
		SRM:           params,
		ReorderDelay:  o.reorder,
		CacheCapacity: o.cacheCap,
		Linger:        o.linger,
		SourceLinger:  o.srcLinger,
		MaxRunTime:    o.maxRun,
	}

	var captureW *os.File
	if o.capture != "" {
		captureW, err = os.Create(o.capture)
		if err != nil {
			return err
		}
		defer captureW.Close()
	}
	node, err := wire.NewNode(cfg, o.bind, writerOrNil(captureW))
	if err != nil {
		return err
	}
	addrs, err := wire.ParsePeers(o.peers)
	if err != nil {
		return err
	}
	for pid, addr := range addrs {
		if pid == cfg.ID {
			continue
		}
		if err := node.Transport().SetPeer(pid, addr); err != nil {
			return err
		}
	}
	if o.via != "" {
		if err := node.Transport().SetProxy(o.via); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cesrm-node: node %d (%s) listening on %s\n",
		cfg.ID, node.Config().Protocol, node.Transport().LocalAddr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	res, err := node.RunFor(ctx, 30*time.Second)
	if err != nil {
		return err
	}
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(res); err != nil {
		return err
	}
	if !res.Completed {
		return fmt.Errorf("node %d did not complete its stream", cfg.ID)
	}
	return nil
}

// writerOrNil avoids handing NewNode a non-nil interface holding a nil
// *os.File.
func writerOrNil(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

func runProxy(bind, peers string, drop float64, dropSeed int64) error {
	proxy, err := wire.NewProxy(bind, drop, dropSeed)
	if err != nil {
		return err
	}
	addrs, err := wire.ParsePeers(peers)
	if err != nil {
		return err
	}
	if len(addrs) == 0 {
		return fmt.Errorf("proxy mode requires -peers")
	}
	for id, addr := range addrs {
		if err := proxy.SetPeer(id, addr); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "cesrm-node: proxy on %s, drop=%.2f seed=%d, %d peers\n",
		proxy.LocalAddr(), drop, dropSeed, len(addrs))
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		proxy.Close()
	}()
	proxy.Serve()
	forwarded, dropped := proxy.Stats()
	fmt.Fprintf(os.Stderr, "cesrm-node: proxy done: forwarded=%d dropped=%d\n", forwarded, dropped)
	return nil
}

func runConform(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("conform mode requires capture files as arguments")
	}
	failed := 0
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		c, err := wire.ReadCapture(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		report, err := wire.Replay(c)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		status := "CONFORMS"
		if !report.OK() {
			status = "DIVERGES"
			failed++
		}
		fmt.Printf("%s: node %d %s: %d sends, %d events, %d recoveries (%d expedited), completed=%v\n",
			path, report.Node, status, report.Sends, report.Events,
			report.Recoveries, report.Expedited, c.End.Completed)
		for _, d := range report.Divergences {
			fmt.Printf("  %s\n", d)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d captures diverge from their deterministic replay", failed, len(paths))
	}
	return nil
}
