// Command cesrm-bench reenacts the paper's trace-driven evaluation (§4):
// it generates the 14 Table 1 traces, runs each under SRM and CESRM, and
// prints every table and figure of the evaluation section.
//
// Usage:
//
//	cesrm-bench [-scale 0.1 [-scale 1 ...]] [-seed 1] [-traces 1,4,7] [-trace WRN] [-section all]
//	            [-delay 20ms] [-lossy] [-policy most-recent] [-router-assist]
//	            [-json BENCH_seed1.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// At -scale 1 the full Table 1 packet volumes are simulated (hundreds of
// thousands of packets per trace); smaller scales shrink volumes
// proportionally while preserving loss rates and burst structure, and
// scales above 1 extrapolate beyond the paper's volumes (e.g. -scale 5
// replays five times the recorded transmission). Repeating -scale (or
// passing a comma-separated list) sweeps the suite over every given
// scale in order, so one invocation produces a scaling curve instead of
// a single point.
//
// -traces selects by 1-based catalog index; -trace selects by name
// (case-insensitive substring, repeatable). Both may be combined; the
// selection is the union, in catalog order.
//
// -json writes a machine-readable summary: one entry per swept scale,
// each with per-trace determinism fingerprints, headline metrics,
// per-trace wall time, and a perf block (wall time, allocation counters,
// peak heap) — so BENCH_*.json files taken on different code revisions
// can be diffed: identical fingerprints prove a change
// behavior-preserving, diverging metrics quantify what moved, and the
// perf blocks track the cost trajectory (see cmd/benchdiff).
//
// -cpuprofile and -memprofile write pprof profiles of the suite run(s)
// for hot-path analysis (go tool pprof).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/netsim"
	"cesrm/internal/srm"
	"cesrm/internal/trace"
)

// benchJSON is the -json output schema: one run entry per swept scale.
type benchJSON struct {
	Seed        int64          `json:"seed"`
	Fingerprint string         `json:"fingerprint_version"`
	GoVersion   string         `json:"go_version"`
	Runs        []benchRunJSON `json:"runs"`
}

// benchRunJSON records one scale's full suite pass.
type benchRunJSON struct {
	Scale  float64          `json:"scale"`
	Perf   benchPerfJSON    `json:"perf"`
	Traces []benchTraceJSON `json:"traces"`
}

// benchPerfJSON records the cost of the suite pass that produced the
// entry. Mallocs and AllocBytes are exact allocation counters
// (runtime.MemStats deltas) and are stable across runs of the same
// binary; ElapsedNS is wall time and PeakHeapBytes is a sampled
// live-heap high-water mark — both vary with the machine. Comparing
// these blocks across code revisions — with identical fingerprints
// proving the runs behaviorally equal — quantifies a perf change.
// With Repeats > 1 the suite pass runs that many times: ElapsedNS is
// the median pass (single-shot smoke runs are far too noisy to gate
// tightly), PeakHeapBytes the maximum, and the allocation counters come
// from the first pass. Shards records the intra-run dispatch mode
// (0/1 = serial) and GOMAXPROCS the cores the process could use —
// wall-time comparisons across snapshots are only meaningful between
// matching values.
type benchPerfJSON struct {
	ElapsedNS     int64  `json:"suite_elapsed_ns"`
	Mallocs       uint64 `json:"suite_mallocs"`
	AllocBytes    uint64 `json:"suite_alloc_bytes"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	Parallel      int    `json:"parallel"`
	Shards        int    `json:"shards,omitempty"`
	GOMAXPROCS    int    `json:"gomaxprocs,omitempty"`
	Repeats       int    `json:"repeats,omitempty"`
	// Flood plan cache counters, summed over the pass's runs (both
	// protocols, all traces). Zero/omitted when the cache is disabled.
	PlanHits      uint64 `json:"plan_hits,omitempty"`
	PlanMisses    uint64 `json:"plan_misses,omitempty"`
	PlanEvictions uint64 `json:"plan_evictions,omitempty"`
	// Robustness counters, summed over the pass's runs: congestion tail
	// drops at finite link queues, bounded-retry abandonments and
	// membership (leave/join) events. Zero/omitted unless the base
	// configuration engages queue caps or churn; benchdiff reports
	// movement informationally without gating.
	QueueDrops  uint64 `json:"queue_drops,omitempty"`
	Abandoned   int    `json:"abandoned,omitempty"`
	ChurnEvents int    `json:"churn_events,omitempty"`
}

type benchTraceJSON struct {
	Index               int     `json:"index"`
	Name                string  `json:"name"`
	SRMFingerprint      string  `json:"srm_fingerprint"`
	CESRMFingerprint    string  `json:"cesrm_fingerprint"`
	SRMMeanRTT          float64 `json:"srm_mean_rtt"`
	CESRMMeanRTT        float64 `json:"cesrm_mean_rtt"`
	LatencyReductionPct float64 `json:"latency_reduction_pct"`
	ExpeditedSuccessPct float64 `json:"expedited_success_pct"`
	SRMFinishedAtNS     int64   `json:"srm_finished_at_ns"`
	CESRMFinishedAtNS   int64   `json:"cesrm_finished_at_ns"`
	WallNS              int64   `json:"wall_ns"`
}

func benchRun(scale float64, perf benchPerfJSON, results []experiment.SuiteResult) benchRunJSON {
	out := benchRunJSON{Scale: scale, Perf: perf}
	var plans netsim.PlanStats
	for _, r := range results {
		p := r.Pair
		plans.Add(p.SRM.PlanStats)
		plans.Add(p.CESRM.PlanStats)
		out.Perf.QueueDrops += p.SRM.QueueDrops + p.CESRM.QueueDrops
		out.Perf.Abandoned += p.SRM.Abandoned + p.CESRM.Abandoned
		out.Perf.ChurnEvents += p.SRM.ChurnEvents + p.CESRM.ChurnEvents
		succ, _ := p.ExpeditedSuccess()
		out.Traces = append(out.Traces, benchTraceJSON{
			Index:               r.Entry.Index,
			Name:                r.Entry.Name,
			SRMFingerprint:      r.SRMFingerprint,
			CESRMFingerprint:    r.CESRMFingerprint,
			SRMMeanRTT:          p.SRM.Collector.OverallNormalized(p.SRM.RTT).MeanRTT,
			CESRMMeanRTT:        p.CESRM.Collector.OverallNormalized(p.CESRM.RTT).MeanRTT,
			LatencyReductionPct: p.LatencyReductionPct(),
			ExpeditedSuccessPct: succ,
			SRMFinishedAtNS:     int64(p.SRM.FinishedAt),
			CESRMFinishedAtNS:   int64(p.CESRM.FinishedAt),
			WallNS:              r.Elapsed.Nanoseconds(),
		})
	}
	out.Perf.PlanHits = plans.Hits
	out.Perf.PlanMisses = plans.Misses
	out.Perf.PlanEvictions = plans.Evictions
	return out
}

func writeJSON(path string, out benchJSON) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// medianDuration returns the median of ds (lower middle on even
// counts); ds must be non-empty and is reordered in place.
func medianDuration(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[(len(ds)-1)/2]
}

// scaleFlag collects repeated (or comma-separated) -scale values.
type scaleFlag []float64

func (s *scaleFlag) String() string {
	parts := make([]string, len(*s))
	for i, v := range *s {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func (s *scaleFlag) Set(v string) error {
	for _, f := range strings.Split(v, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("bad scale %q: %w", f, err)
		}
		if x <= 0 {
			return fmt.Errorf("scale %v must be positive", x)
		}
		*s = append(*s, x)
	}
	return nil
}

// nameFlag collects repeated (or comma-separated) -trace name filters.
type nameFlag []string

func (n *nameFlag) String() string { return strings.Join(*n, ",") }

func (n *nameFlag) Set(v string) error {
	for _, f := range strings.Split(v, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return fmt.Errorf("empty trace name filter")
		}
		*n = append(*n, f)
	}
	return nil
}

// selectTraces resolves the -traces index list and -trace name filters
// to a sorted, deduplicated list of 1-based catalog indices. An empty
// selection (no flags) returns nil, meaning all traces.
func selectTraces(indexList string, names nameFlag) ([]int, error) {
	pick := make(map[int]bool)
	any := false
	if indexList != "" {
		any = true
		for _, f := range strings.Split(indexList, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad trace index %q: %w", f, err)
			}
			pick[i] = true
		}
	}
	if len(names) > 0 {
		any = true
		for _, name := range names {
			matched := false
			for _, e := range trace.Catalog {
				if strings.Contains(strings.ToLower(e.Name), strings.ToLower(name)) {
					pick[e.Index] = true
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("-trace %q matches no catalog trace", name)
			}
		}
	}
	if !any {
		return nil, nil
	}
	var out []int
	for _, e := range trace.Catalog {
		if pick[e.Index] {
			out = append(out, e.Index)
			delete(pick, e.Index)
		}
	}
	// Whatever remains never matched a catalog entry; keep it so the
	// suite reports the out-of-range index.
	for i := range pick {
		out = append(out, i)
	}
	return out, nil
}

// heapSampler tracks the live-heap high-water mark while a suite pass
// runs. Two probes feed one monotonic atomic maximum: a coarse
// wall-clock ticker, and the runner's per-monitor-tick HeapProbe
// (experiment.RunConfig.HeapProbe), which fires on the run's own event
// cadence. The ticker alone under-reported badly: a spike living
// shorter than the 20 ms period — or landing while the sampler
// goroutine was descheduled — was simply never seen, and the reported
// "peak" was whatever the ticker happened to catch. The in-run probe
// cannot miss the allocation profile of the simulation itself, because
// it samples from inside it. Both read /memory/classes/heap/objects:bytes
// via runtime/metrics, which needs no stop-the-world and is cheap
// enough for event-cadence use. Probe is safe for concurrent use —
// Suite runs traces in parallel.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

// readHeapBytes returns the bytes currently occupied by live + dead
// heap objects (the runtime/metrics equivalent of MemStats.HeapAlloc).
func readHeapBytes() uint64 {
	s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// Probe folds the current heap occupancy into the high-water mark.
func (s *heapSampler) Probe() {
	v := readHeapBytes()
	for {
		old := s.peak.Load()
		if v <= old || s.peak.CompareAndSwap(old, v) {
			return
		}
	}
}

func startHeapSampler(interval time.Duration) *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Probe()
			}
		}
	}()
	return s
}

// Stop halts sampling and returns the peak observed live heap, folding
// in one final sample so short passes never report zero.
func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	s.Probe()
	return s.peak.Load()
}

// runChaosMatrix sweeps the deterministic fault-injection scenario
// matrix (see chaos.Scenarios) over every selected trace under SRM and
// CESRM. Each run executes with the online invariant validator armed —
// post-crash silence, live-receiver reliability, bounded SRM fallback —
// so a scenario that violates the fail-stop model fails the sweep. The
// printed fingerprints are reproducible: same seed, same spec, same
// digest.
func runChaosMatrix(indices []int, scale float64, seed int64, netCfg netsim.Config, cesrmCfg core.Config, lossy bool) error {
	if indices == nil {
		for _, e := range trace.Catalog {
			indices = append(indices, e.Index)
		}
	}
	fmt.Printf("cesrm-bench: chaos scenario matrix, scale=%v seed=%d\n\n", scale, seed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tTrace\tScenario\tProto\tFinishedAt\tFingerprint")
	warmup := 3 * srm.DefaultParams().SessionPeriod
	for _, idx := range indices {
		if idx < 1 || idx > len(trace.Catalog) {
			return fmt.Errorf("trace index %d out of [1, %d]", idx, len(trace.Catalog))
		}
		entry := trace.Catalog[idx-1]
		tr, err := entry.Load(scale)
		if err != nil {
			return err
		}
		horizon := warmup + time.Duration(tr.NumPackets())*tr.Period
		for _, spec := range chaos.Scenarios(tr.Tree, horizon) {
			for _, proto := range []experiment.Protocol{experiment.SRM, experiment.CESRM} {
				res, err := experiment.Run(experiment.RunConfig{
					Trace:         tr,
					Protocol:      proto,
					Net:           netCfg,
					CESRM:         cesrmCfg,
					LossyRecovery: lossy,
					Seed:          seed + int64(idx),
					Chaos:         spec,
				})
				if err != nil {
					return fmt.Errorf("trace %s scenario %s/%s: %w", entry.Name, spec.Name, proto, err)
				}
				fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%v\t%s\n",
					idx, entry.Name, spec.Name, proto, res.FinishedAt, res.Fingerprint)
			}
		}
	}
	tw.Flush()
	fmt.Println("\nall scenarios completed with invariants green")
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cesrm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cesrm-bench", flag.ContinueOnError)
	var scales scaleFlag
	fs.Var(&scales, "scale", "trace volume scale (> 0); 1 = full Table 1 volumes, 5 = a 5x extrapolation; repeatable (or comma-separated) to sweep")
	seed := fs.Int64("seed", 1, "base random seed")
	traces := fs.String("traces", "", "comma-separated 1-based trace indices (default: all 14)")
	var traceNames nameFlag
	fs.Var(&traceNames, "trace", "trace name filter (case-insensitive substring); repeatable, unioned with -traces")
	section := fs.String("section", "all", "output section: all, table1, sec42, summary, fig1, fig2, fig3, fig4, fig5, fig1bars, fig5bars, compare, fingerprints")
	delay := fs.Duration("delay", 20*time.Millisecond, "per-link one-way delay")
	lossy := fs.Bool("lossy", false, "drop recovery traffic with estimated link loss rates")
	policy := fs.String("policy", "most-recent", "CESRM expedition policy: most-recent or most-frequent")
	routerAssist := fs.Bool("router-assist", false, "enable the router-assisted CESRM variant (§3.3)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "max traces simulating concurrently (1 = serial)")
	shards := fs.Int("shards", 0, "intra-run dispatch shards per simulation (0 or 1 = serial, < 0 = GOMAXPROCS); fingerprints are identical at any value")
	repeat := fs.Int("repeat", 1, "suite passes per scale; the JSON perf block records the median wall time")
	planBudget := fs.Int("plan-budget", 0, "flood plan cache budget in tour entries (0 = default, < 0 = disable the cache); fingerprints are identical at any value")
	chaosMatrix := fs.Bool("chaos-matrix", false, "run the deterministic fault-injection scenario matrix per selected trace (instead of the figure suite) and report per-scenario fingerprints")
	jsonPath := fs.String("json", "", "also write a machine-readable summary (fingerprints + headline metrics + perf, one entry per scale) to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the suite run(s) to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile taken after the suite run(s) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(scales) == 0 {
		scales = scaleFlag{0.1}
	}
	if *repeat < 1 {
		return fmt.Errorf("-repeat %d must be >= 1", *repeat)
	}
	shardsVal := *shards
	if shardsVal < 0 {
		shardsVal = runtime.GOMAXPROCS(0)
	}

	indices, err := selectTraces(*traces, traceNames)
	if err != nil {
		return err
	}

	netCfg := netsim.DefaultConfig()
	netCfg.LinkDelay = *delay

	cesrmCfg := core.Config{RouterAssist: *routerAssist}
	switch *policy {
	case "most-recent":
		cesrmCfg.Policy = core.MostRecentLoss{}
	case "most-frequent":
		cesrmCfg.Policy = core.MostFrequentLoss{}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *chaosMatrix {
		if len(scales) > 1 {
			return fmt.Errorf("-chaos-matrix takes a single -scale")
		}
		return runChaosMatrix(indices, scales[0], *seed, netCfg, cesrmCfg, *lossy)
	}

	out := benchJSON{
		Seed:        *seed,
		Fingerprint: fmt.Sprintf("v%d", experiment.FingerprintVersion),
		GoVersion:   runtime.Version(),
	}
	for si, scale := range scales {
		suite := experiment.Suite{
			Scale:    scale,
			Seed:     *seed,
			Traces:   indices,
			Parallel: *parallel,
			Base: experiment.RunConfig{
				Net:             netCfg,
				CESRM:           cesrmCfg,
				LossyRecovery:   *lossy,
				Shards:          shardsVal,
				FloodPlanBudget: *planBudget,
			},
		}
		if si > 0 {
			fmt.Println(strings.Repeat("=", 72))
			// Isolate sweep entries from one another: return the previous
			// pass's heap to the OS so each scale's perf block reflects a
			// near-fresh process rather than the prior pass's heap layout
			// and GC pacing (which otherwise distorts wall time severely
			// on memory-pressured machines).
			debug.FreeOSMemory()
		}
		fmt.Printf("cesrm-bench: scale=%v seed=%d delay=%v lossy=%v policy=%s router-assist=%v shards=%d\n\n",
			scale, *seed, *delay, *lossy, *policy, *routerAssist, shardsVal)

		// With -repeat N the pass runs N times; the perf block records
		// the median wall time (smoke-scale single shots are dominated
		// by scheduling noise), the max heap watermark, and the first
		// pass's exact allocation counters. Fingerprints are identical
		// across passes by construction, so the last results render.
		var results []experiment.SuiteResult
		var elapsedAll []time.Duration
		var peak uint64
		var mallocs, allocBytes uint64
		for pass := 0; pass < *repeat; pass++ {
			if pass > 0 {
				debug.FreeOSMemory()
			}
			sampler := startHeapSampler(20 * time.Millisecond)
			suite.Base.HeapProbe = sampler.Probe
			var m0 runtime.MemStats
			runtime.ReadMemStats(&m0)
			started := time.Now()
			res, err := suite.Run()
			elapsedAll = append(elapsedAll, time.Since(started))
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			if p := sampler.Stop(); p > peak {
				peak = p
			}
			if err != nil {
				return err
			}
			if pass == 0 {
				mallocs = m1.Mallocs - m0.Mallocs
				allocBytes = m1.TotalAlloc - m0.TotalAlloc
			}
			results = res
		}
		elapsed := medianDuration(elapsedAll)

		switch *section {
		case "all":
			experiment.RenderAll(os.Stdout, results)
		case "table1":
			experiment.RenderTable1(os.Stdout, results)
		case "sec42":
			experiment.RenderSec42(os.Stdout, results)
		case "summary":
			experiment.RenderSummary(os.Stdout, results)
		case "fig1":
			experiment.RenderFigure1(os.Stdout, results)
		case "fig2":
			experiment.RenderFigure2(os.Stdout, results)
		case "fig3":
			experiment.RenderFigure3(os.Stdout, results)
		case "fig4":
			experiment.RenderFigure4(os.Stdout, results)
		case "fig5":
			experiment.RenderFigure5(os.Stdout, results)
		case "fig1bars":
			experiment.RenderFigure1Bars(os.Stdout, results)
		case "fig5bars":
			experiment.RenderFigure5Bars(os.Stdout, results)
		case "compare":
			experiment.RenderComparison(os.Stdout, results, *seed)
		case "fingerprints":
			experiment.RenderFingerprints(os.Stdout, results)
		default:
			return fmt.Errorf("unknown section %q", *section)
		}

		out.Runs = append(out.Runs, benchRun(scale, benchPerfJSON{
			ElapsedNS:     elapsed.Nanoseconds(),
			Mallocs:       mallocs,
			AllocBytes:    allocBytes,
			PeakHeapBytes: peak,
			Parallel:      *parallel,
			Shards:        shardsVal,
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			Repeats:       *repeat,
		}, results))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize the allocation profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, out); err != nil {
			return err
		}
	}
	return nil
}
