// Command cesrm-bench reenacts the paper's trace-driven evaluation (§4):
// it generates the 14 Table 1 traces, runs each under SRM and CESRM, and
// prints every table and figure of the evaluation section.
//
// Usage:
//
//	cesrm-bench [-scale 0.1] [-seed 1] [-traces 1,4,7] [-section all]
//	            [-delay 20ms] [-lossy] [-policy most-recent] [-router-assist]
//	            [-json BENCH_seed1.json] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// At -scale 1 the full Table 1 packet volumes are simulated (hundreds of
// thousands of packets per trace); smaller scales shrink volumes
// proportionally while preserving loss rates and burst structure.
//
// -json writes a machine-readable summary — per-trace determinism
// fingerprints plus the headline metrics and a perf block (wall time and
// allocation counts of the suite run) — so BENCH_*.json files taken
// on different code revisions can be diffed: identical fingerprints
// prove a change behavior-preserving, diverging metrics quantify what
// moved, and the perf block tracks the cost trajectory.
//
// -cpuprofile and -memprofile write pprof profiles of the suite run for
// hot-path analysis (go tool pprof).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/netsim"
)

// benchJSON is the -json output schema.
type benchJSON struct {
	Scale       float64          `json:"scale"`
	Seed        int64            `json:"seed"`
	Fingerprint string           `json:"fingerprint_version"`
	Perf        benchPerfJSON    `json:"perf"`
	Traces      []benchTraceJSON `json:"traces"`
}

// benchPerfJSON records the cost of the suite run that produced the
// file. Mallocs and AllocBytes are exact allocation counters
// (runtime.MemStats deltas) and are stable across runs of the same
// binary; ElapsedNS is wall time and varies with the machine. Comparing
// these blocks across code revisions — with identical fingerprints
// proving the runs behaviorally equal — quantifies a perf change.
type benchPerfJSON struct {
	ElapsedNS  int64  `json:"suite_elapsed_ns"`
	Mallocs    uint64 `json:"suite_mallocs"`
	AllocBytes uint64 `json:"suite_alloc_bytes"`
	Parallel   int    `json:"parallel"`
	GoVersion  string `json:"go_version"`
}

type benchTraceJSON struct {
	Index               int     `json:"index"`
	Name                string  `json:"name"`
	SRMFingerprint      string  `json:"srm_fingerprint"`
	CESRMFingerprint    string  `json:"cesrm_fingerprint"`
	SRMMeanRTT          float64 `json:"srm_mean_rtt"`
	CESRMMeanRTT        float64 `json:"cesrm_mean_rtt"`
	LatencyReductionPct float64 `json:"latency_reduction_pct"`
	ExpeditedSuccessPct float64 `json:"expedited_success_pct"`
	SRMFinishedAtNS     int64   `json:"srm_finished_at_ns"`
	CESRMFinishedAtNS   int64   `json:"cesrm_finished_at_ns"`
}

func writeJSON(path string, scale float64, seed int64, perf benchPerfJSON, results []experiment.SuiteResult) error {
	out := benchJSON{
		Scale:       scale,
		Seed:        seed,
		Fingerprint: fmt.Sprintf("v%d", experiment.FingerprintVersion),
		Perf:        perf,
	}
	for _, r := range results {
		p := r.Pair
		succ, _ := p.ExpeditedSuccess()
		out.Traces = append(out.Traces, benchTraceJSON{
			Index:               r.Entry.Index,
			Name:                r.Entry.Name,
			SRMFingerprint:      r.SRMFingerprint,
			CESRMFingerprint:    r.CESRMFingerprint,
			SRMMeanRTT:          p.SRM.Collector.OverallNormalized(p.SRM.RTT).MeanRTT,
			CESRMMeanRTT:        p.CESRM.Collector.OverallNormalized(p.CESRM.RTT).MeanRTT,
			LatencyReductionPct: p.LatencyReductionPct(),
			ExpeditedSuccessPct: succ,
			SRMFinishedAtNS:     int64(p.SRM.FinishedAt),
			CESRMFinishedAtNS:   int64(p.CESRM.FinishedAt),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cesrm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cesrm-bench", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "trace volume scale in (0,1]; 1 = full Table 1 volumes")
	seed := fs.Int64("seed", 1, "base random seed")
	traces := fs.String("traces", "", "comma-separated 1-based trace indices (default: all 14)")
	section := fs.String("section", "all", "output section: all, table1, sec42, summary, fig1, fig2, fig3, fig4, fig5, fig1bars, fig5bars, compare, fingerprints")
	delay := fs.Duration("delay", 20*time.Millisecond, "per-link one-way delay")
	lossy := fs.Bool("lossy", false, "drop recovery traffic with estimated link loss rates")
	policy := fs.String("policy", "most-recent", "CESRM expedition policy: most-recent or most-frequent")
	routerAssist := fs.Bool("router-assist", false, "enable the router-assisted CESRM variant (§3.3)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "max traces simulating concurrently (1 = serial)")
	jsonPath := fs.String("json", "", "also write a machine-readable summary (fingerprints + headline metrics + perf) to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile taken after the suite run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var indices []int
	if *traces != "" {
		for _, f := range strings.Split(*traces, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad trace index %q: %w", f, err)
			}
			indices = append(indices, i)
		}
	}

	netCfg := netsim.DefaultConfig()
	netCfg.LinkDelay = *delay

	cesrmCfg := core.Config{RouterAssist: *routerAssist}
	switch *policy {
	case "most-recent":
		cesrmCfg.Policy = core.MostRecentLoss{}
	case "most-frequent":
		cesrmCfg.Policy = core.MostFrequentLoss{}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	suite := experiment.Suite{
		Scale:    *scale,
		Seed:     *seed,
		Traces:   indices,
		Parallel: *parallel,
		Base: experiment.RunConfig{
			Net:           netCfg,
			CESRM:         cesrmCfg,
			LossyRecovery: *lossy,
		},
	}
	fmt.Printf("cesrm-bench: scale=%v seed=%d delay=%v lossy=%v policy=%s router-assist=%v\n\n",
		*scale, *seed, *delay, *lossy, *policy, *routerAssist)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	started := time.Now()
	results, err := suite.Run()
	elapsed := time.Since(started)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if err != nil {
		return err
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize the allocation profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	switch *section {
	case "all":
		experiment.RenderAll(os.Stdout, results)
	case "table1":
		experiment.RenderTable1(os.Stdout, results)
	case "sec42":
		experiment.RenderSec42(os.Stdout, results)
	case "summary":
		experiment.RenderSummary(os.Stdout, results)
	case "fig1":
		experiment.RenderFigure1(os.Stdout, results)
	case "fig2":
		experiment.RenderFigure2(os.Stdout, results)
	case "fig3":
		experiment.RenderFigure3(os.Stdout, results)
	case "fig4":
		experiment.RenderFigure4(os.Stdout, results)
	case "fig5":
		experiment.RenderFigure5(os.Stdout, results)
	case "fig1bars":
		experiment.RenderFigure1Bars(os.Stdout, results)
	case "fig5bars":
		experiment.RenderFigure5Bars(os.Stdout, results)
	case "compare":
		experiment.RenderComparison(os.Stdout, results, *seed)
	case "fingerprints":
		experiment.RenderFingerprints(os.Stdout, results)
	default:
		return fmt.Errorf("unknown section %q", *section)
	}

	if *jsonPath != "" {
		perf := benchPerfJSON{
			ElapsedNS:  elapsed.Nanoseconds(),
			Mallocs:    m1.Mallocs - m0.Mallocs,
			AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
			Parallel:   *parallel,
			GoVersion:  runtime.Version(),
		}
		if err := writeJSON(*jsonPath, *scale, *seed, perf, results); err != nil {
			return err
		}
	}
	return nil
}
