package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSections(t *testing.T) {
	for _, section := range []string{"table1", "sec42", "summary", "fig1", "fig2", "fig3", "fig4", "fig5", "fig1bars", "fig5bars", "compare", "fingerprints"} {
		err := run([]string{"-scale", "0.005", "-traces", "13", "-section", section})
		if err != nil {
			t.Fatalf("%s: %v", section, err)
		}
	}
}

func TestRunAllSectionsTwoTraces(t *testing.T) {
	if err := run([]string{"-scale", "0.005", "-traces", "4,13", "-section", "all"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"most-recent", "most-frequent"} {
		if err := run([]string{"-scale", "0.005", "-traces", "13", "-section", "summary", "-policy", pol}); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}

func TestRunLossyAndRouterAssist(t *testing.T) {
	err := run([]string{"-scale", "0.005", "-traces", "13", "-section", "summary", "-lossy", "-router-assist"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesJSONSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	err := run([]string{"-scale", "0.005", "-traces", "13", "-section", "fingerprints", "-json", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out benchJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if len(out.Runs) != 1 {
		t.Fatalf("summary has %d runs, want 1", len(out.Runs))
	}
	run0 := out.Runs[0]
	if run0.Scale != 0.005 {
		t.Fatalf("run scale = %v, want 0.005", run0.Scale)
	}
	if len(run0.Traces) != 1 || run0.Traces[0].Index != 13 {
		t.Fatalf("summary traces = %+v, want exactly trace 13", run0.Traces)
	}
	tr := run0.Traces[0]
	if tr.SRMFingerprint == "" || tr.CESRMFingerprint == "" {
		t.Fatal("summary missing fingerprints")
	}
	if tr.SRMFingerprint == tr.CESRMFingerprint {
		t.Fatal("SRM and CESRM runs share a fingerprint")
	}
	if tr.LatencyReductionPct <= 0 {
		t.Fatalf("latency reduction %.1f%%, want positive", tr.LatencyReductionPct)
	}
	if tr.WallNS <= 0 {
		t.Fatalf("per-trace wall time %d ns, want positive", tr.WallNS)
	}
	if run0.Perf.ElapsedNS < tr.WallNS {
		t.Fatalf("suite elapsed %d ns < trace wall %d ns", run0.Perf.ElapsedNS, tr.WallNS)
	}
	if run0.Perf.PeakHeapBytes == 0 {
		t.Fatal("peak heap not recorded")
	}

	// The JSON summary must be reproducible: a second identical
	// invocation yields identical fingerprints.
	path2 := filepath.Join(t.TempDir(), "BENCH_test2.json")
	if err := run([]string{"-scale", "0.005", "-traces", "13", "-section", "fingerprints", "-json", path2}); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	var out2 benchJSON
	if err := json.Unmarshal(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Runs[0].Traces[0].SRMFingerprint != tr.SRMFingerprint ||
		out2.Runs[0].Traces[0].CESRMFingerprint != tr.CESRMFingerprint {
		t.Fatal("fingerprints diverged across identical invocations")
	}
}

func TestRunScaleSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	err := run([]string{"-scale", "0.004", "-scale", "0.006", "-traces", "13",
		"-section", "fingerprints", "-json", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out benchJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 2 || out.Runs[0].Scale != 0.004 || out.Runs[1].Scale != 0.006 {
		t.Fatalf("sweep runs = %+v, want scales [0.004 0.006] in order", out.Runs)
	}
	if out.Runs[0].Traces[0].SRMFingerprint == out.Runs[1].Traces[0].SRMFingerprint {
		t.Fatal("different scales produced identical fingerprints")
	}
}

func TestRunTraceNameFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_name.json")
	// "wrn" matches the two WRN* catalog traces, case-insensitively.
	err := run([]string{"-scale", "0.004", "-trace", "wrn", "-section", "fingerprints", "-json", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out benchJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 1 || len(out.Runs[0].Traces) == 0 {
		t.Fatalf("name filter selected %d traces, want at least 1", len(out.Runs[0].Traces))
	}
	for _, tr := range out.Runs[0].Traces {
		if !strings.Contains(strings.ToLower(tr.Name), "wrn") {
			t.Fatalf("name filter selected %q, want only WRN traces", tr.Name)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-section", "bogus", "-scale", "0.005", "-traces", "13"}); err == nil {
		t.Fatal("unknown section accepted")
	}
	if err := run([]string{"-policy", "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run([]string{"-traces", "x"}); err == nil {
		t.Fatal("bad trace list accepted")
	}
	if err := run([]string{"-traces", "99", "-scale", "0.005"}); err == nil {
		t.Fatal("out-of-range trace accepted")
	}
	if err := run([]string{"-scale", "0"}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := run([]string{"-scale", "-0.5"}); err == nil {
		t.Fatal("negative scale accepted")
	}
	if err := run([]string{"-scale", "0.005", "-trace", "nosuchtrace"}); err == nil {
		t.Fatal("unmatched trace name filter accepted")
	}
}
