package main

import "testing"

func TestRunSections(t *testing.T) {
	for _, section := range []string{"table1", "sec42", "summary", "fig1", "fig2", "fig3", "fig4", "fig5", "fig1bars", "fig5bars", "compare"} {
		err := run([]string{"-scale", "0.005", "-traces", "13", "-section", section})
		if err != nil {
			t.Fatalf("%s: %v", section, err)
		}
	}
}

func TestRunAllSectionsTwoTraces(t *testing.T) {
	if err := run([]string{"-scale", "0.005", "-traces", "4,13", "-section", "all"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPolicies(t *testing.T) {
	for _, pol := range []string{"most-recent", "most-frequent"} {
		if err := run([]string{"-scale", "0.005", "-traces", "13", "-section", "summary", "-policy", pol}); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}

func TestRunLossyAndRouterAssist(t *testing.T) {
	err := run([]string{"-scale", "0.005", "-traces", "13", "-section", "summary", "-lossy", "-router-assist"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-section", "bogus", "-scale", "0.005", "-traces", "13"}); err == nil {
		t.Fatal("unknown section accepted")
	}
	if err := run([]string{"-policy", "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run([]string{"-traces", "x"}); err == nil {
		t.Fatal("bad trace list accepted")
	}
	if err := run([]string{"-traces", "99", "-scale", "0.005"}); err == nil {
		t.Fatal("out-of-range trace accepted")
	}
}
