// Package cesrm is the public API of the CESRM library: a complete Go
// implementation of Caching-Enhanced Scalable Reliable Multicast
// (Livadas & Keidar, DSN 2004) together with the SRM baseline of Floyd
// et al., a deterministic packet-level multicast network simulator, a
// calibrated synthetic MBone-trace substrate, the paper's loss-location
// inference pipeline, and a trace-driven evaluation harness.
//
// The package re-exports the stable surface of the internal
// implementation packages so that downstream users need a single
// import:
//
//	import "cesrm"
//
//	tr, _ := cesrm.TraceByName("WRN951216")
//	trace, _ := tr.Load(0.1)
//	pair, _ := cesrm.RunPair(trace, cesrm.PairConfig{})
//	fmt.Printf("CESRM cuts latency %.0f%%\n", pair.LatencyReductionPct())
//
// # Layering
//
//	Engine/RNG        discrete-event simulation core
//	Tree              multicast topology
//	Network           packet transport with loss injection
//	SRMAgent          the SRM baseline protocol endpoint
//	Agent             the CESRM protocol endpoint
//	Trace/Generate    loss traces (synthetic Gilbert-model generator)
//	Infer             §4.2 link attribution
//	Run/RunPair/Suite the paper's evaluation harness
//
// Lower layers are usable on their own: the engine and network make a
// general-purpose deterministic multicast simulator, and the trace and
// inference stages are independent of the protocols.
package cesrm
