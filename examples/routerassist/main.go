// Routerassist: quantify what the light-weight router assistance of
// §3.3 buys. Expedited replies are unicast to the cached turning-point
// router and subcast only into the loss subtree, instead of being
// multicast to the whole group — localizing recovery and cutting
// retransmission exposure without any replier state in routers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/trace"
)

func main() {
	name := flag.String("trace", "WRN951211", "Table 1 trace name")
	scale := flag.Float64("scale", 0.1, "trace volume scale in (0,1]")
	seed := flag.Int64("seed", 11, "random seed")
	flag.Parse()

	entry, ok := trace.ByName(*name)
	if !ok {
		log.Fatalf("unknown trace %q", *name)
	}
	tr, err := entry.Load(*scale)
	if err != nil {
		log.Fatal(err)
	}

	run := func(assist bool) *experiment.RunResult {
		res, err := experiment.Run(experiment.RunConfig{
			Trace:    tr,
			Protocol: experiment.CESRM,
			CESRM:    core.Config{RouterAssist: assist},
			Seed:     *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	basic := run(false)
	assisted := run(true)

	fmt.Printf("=== CESRM router assistance on %s (scale %v) ===\n\n", entry.Name, *scale)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tbasic CESRM\trouter-assisted")
	row := func(label string, b, a any) { fmt.Fprintf(tw, "%s\t%v\t%v\n", label, b, a) }

	bl := basic.Collector.OverallNormalized(basic.RTT)
	al := assisted.Collector.OverallNormalized(assisted.RTT)
	row("mean recovery latency (RTT)", fmt.Sprintf("%.2f", bl.MeanRTT), fmt.Sprintf("%.2f", al.MeanRTT))

	bs, _ := basic.Collector.ExpeditedSuccessRatio()
	as, _ := assisted.Collector.ExpeditedSuccessRatio()
	row("expedited success", fmt.Sprintf("%.1f%%", 100*bs), fmt.Sprintf("%.1f%%", 100*as))

	bc, ac := basic.Crossings, assisted.Crossings
	row("retrans crossings (multicast)", bc.PayloadMulticast, ac.PayloadMulticast)
	row("retrans crossings (subcast)", bc.PayloadSubcast, ac.PayloadSubcast)
	row("retrans crossings (unicast leg)", bc.PayloadUnicast, ac.PayloadUnicast)
	bTotal := bc.PayloadMulticast + bc.PayloadSubcast + bc.PayloadUnicast
	aTotal := ac.PayloadMulticast + ac.PayloadSubcast + ac.PayloadUnicast
	row("retrans crossings (total)", bTotal, aTotal)
	row("recovery crossings (total)", bc.RecoveryTotal(), ac.RecoveryTotal())
	tw.Flush()

	if bTotal > 0 {
		fmt.Printf("\nrouter assistance cuts retransmission exposure to %.0f%% of basic CESRM\n",
			100*float64(aTotal)/float64(bTotal))
	}
	fmt.Println("(routers only annotate turning points and subcast — no replier state, unlike LMS)")
}
