// Tracestudy: reproduce the paper's per-receiver analysis (Figures 1-4)
// for one Table 1 trace, showing where CESRM's gains come from receiver
// by receiver.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cesrm/internal/experiment"
	"cesrm/internal/trace"
)

func main() {
	name := flag.String("trace", "WRN951128", "Table 1 trace name")
	scale := flag.Float64("scale", 0.1, "trace volume scale in (0,1]")
	seed := flag.Int64("seed", 9, "random seed")
	flag.Parse()

	entry, ok := trace.ByName(*name)
	if !ok {
		log.Fatalf("unknown trace %q; see Table 1 names in internal/trace/catalog.go", *name)
	}
	tr, err := entry.Load(*scale)
	if err != nil {
		log.Fatal(err)
	}
	pair, err := experiment.RunPair(tr, experiment.PairConfig{
		Base: experiment.RunConfig{Seed: *seed},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s at scale %v: %d packets, %d losses ===\n\n",
		entry.Name, *scale, tr.NumPackets(), tr.TotalLosses())

	fmt.Println("Figure 1 — average normalized recovery time (RTT units):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  recv\tSRM\tCESRM\treduction")
	for _, row := range pair.Figure1() {
		red := 0.0
		if row.SRMMean > 0 {
			red = 100 * (row.SRMMean - row.CESRMMean) / row.SRMMean
		}
		fmt.Fprintf(tw, "  %d\t%.2f\t%.2f\t%.0f%%\n", row.Index, row.SRMMean, row.CESRMMean, red)
	}
	tw.Flush()

	fmt.Println("\nFigure 2 — expedited vs non-expedited latency difference (RTT units):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  recv\texpedited\tnon-expedited\tdelta")
	for _, row := range pair.Figure2() {
		fmt.Fprintf(tw, "  %d\t%.2f\t%.2f\t%.2f\n", row.Index, row.ExpeditedMean, row.NormalMean, row.Delta)
	}
	tw.Flush()

	fmt.Println("\nFigures 3 & 4 — packets sent per host (host 0 is the source):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  host\treq SRM\treq CESRM\treq EXP\trepl SRM\trepl CESRM\trepl EXP")
	f4 := pair.Figure4()
	for i, row := range pair.Figure3() {
		fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\t%d\t%d\t%d\n", row.Index,
			row.SRM, row.CESRMMulticast, row.CESRMExpedited,
			f4[i].SRM, f4[i].CESRMMulticast, f4[i].CESRMExpedited)
	}
	tw.Flush()

	succ, _ := pair.ExpeditedSuccess()
	o := pair.Overhead()
	fmt.Printf("\nFigure 5 — expedited success %.1f%%; overhead vs SRM: retrans %.0f%%, control %.0f%%\n",
		succ, o.RetransPct, o.ControlTotalPct())
}
