// Policycompare: compare CESRM's expeditious requestor/replier
// selection policies (§3.2) — most-recent-loss vs most-frequent-loss —
// and sweep the cache capacity. The paper's analysis found the
// most-recent-loss policy superior because loss locations correlate
// most strongly with the most recent loss.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/trace"
)

func main() {
	name := flag.String("trace", "WRN951113", "Table 1 trace name")
	scale := flag.Float64("scale", 0.1, "trace volume scale in (0,1]")
	seed := flag.Int64("seed", 5, "random seed")
	flag.Parse()

	entry, ok := trace.ByName(*name)
	if !ok {
		log.Fatalf("unknown trace %q", *name)
	}
	tr, err := entry.Load(*scale)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		label    string
		policy   core.Policy
		capacity int
	}
	variants := []variant{
		{"most-recent, cache 1", core.MostRecentLoss{}, 1},
		{"most-recent, cache 16", core.MostRecentLoss{}, 16},
		{"most-frequent, cache 4", core.MostFrequentLoss{}, 4},
		{"most-frequent, cache 16", core.MostFrequentLoss{}, 16},
		{"most-frequent, cache 64", core.MostFrequentLoss{}, 64},
	}

	fmt.Printf("=== CESRM policy comparison on %s (scale %v) ===\n\n", entry.Name, *scale)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tmeanRTT\texpedited%\tsuccess%\tretransmissions")
	for _, v := range variants {
		res, err := experiment.Run(experiment.RunConfig{
			Trace:    tr,
			Protocol: experiment.CESRM,
			CESRM:    core.Config{Policy: v.policy, CacheCapacity: v.capacity},
			Seed:     *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		lat := res.Collector.OverallNormalized(res.RTT)
		exp := 0
		for _, r := range res.Collector.Recoveries() {
			if r.Expedited {
				exp++
			}
		}
		succ, _ := res.Collector.ExpeditedSuccessRatio()
		tot := res.Collector.TotalCounts()
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\t%.1f%%\t%d\n",
			v.label, lat.MeanRTT, 100*float64(exp)/float64(lat.Count), 100*succ,
			tot.Replies+tot.ExpReplies)
	}
	tw.Flush()
	fmt.Println("\n(the paper's evaluation uses the most-recent-loss policy, which needs only a 1-entry cache)")
}
