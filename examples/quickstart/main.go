// Quickstart: generate a small synthetic multicast trace, replay it
// under SRM and CESRM, and print the headline comparison — the shortest
// path from zero to the paper's core result, using only the library's
// public API (the root cesrm package).
package main

import (
	"fmt"
	"log"
	"time"

	"cesrm"
)

func main() {
	// 1. A 10-receiver multicast tree with bursty loss on a few links,
	//    mimicking the MBone traces of Yajnik et al.
	tr, err := cesrm.GenerateTrace(cesrm.TraceSpec{
		Name:         "quickstart",
		Topology:     cesrm.TreeSpec{Receivers: 10, Depth: 4},
		NumPackets:   5000,
		Period:       80 * time.Millisecond,
		TargetLosses: 1500,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	loc := cesrm.AnalyzeLocality(tr)
	fmt.Printf("trace: %v\n", tr.ComputeStats())
	fmt.Printf("loss locality: P(loss|loss) is %.0fx the unconditional loss rate; mean burst %.1f packets\n\n",
		loc.LocalityRatio(), loc.MeanBurstLen)

	// 2. Replay the trace under both protocols with the paper's
	//    parameters (C1=C2=2, D1=D2=1, 20 ms links, 1.5 Mbps).
	pair, err := cesrm.RunPair(tr, cesrm.PairConfig{
		Base: cesrm.RunConfig{Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's headline numbers.
	srmLat := pair.SRM.Collector.OverallNormalized(pair.SRM.RTT)
	cesrmLat := pair.CESRM.Collector.OverallNormalized(pair.CESRM.RTT)
	fmt.Printf("SRM   mean recovery latency: %.2f RTT over %d recoveries\n", srmLat.MeanRTT, srmLat.Count)
	fmt.Printf("CESRM mean recovery latency: %.2f RTT over %d recoveries\n", cesrmLat.MeanRTT, cesrmLat.Count)
	fmt.Printf("latency reduction: %.0f%% (paper reports roughly 50%%)\n\n", pair.LatencyReductionPct())

	if succ, ok := pair.ExpeditedSuccess(); ok {
		fmt.Printf("expedited recoveries successful: %.0f%% (paper: >70%%)\n", succ)
	}
	o := pair.Overhead()
	fmt.Printf("CESRM retransmission overhead: %.0f%% of SRM's (paper: 30-80%%)\n", o.RetransPct)
	fmt.Printf("CESRM control overhead: %.0f%% of SRM's, of which %.0f%% is cheap unicast\n",
		o.ControlTotalPct(), 100*o.ControlUnicastPct/o.ControlTotalPct())
}
