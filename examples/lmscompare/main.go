// Lmscompare: the §3.3/§5 argument in one run. Four recovery schemes on
// the same trace — SRM, CESRM, router-assisted CESRM, and LMS — first
// fault-free, then with the receiver LMS designates as replier crashing
// mid-transmission. LMS is the cheapest when nothing fails; when its
// replier dies, NAKs stall on stale router state until the fabric
// refresh, while CESRM degrades gracefully to SRM and re-caches.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

func main() {
	name := flag.String("trace", "WRN951214", "Table 1 trace name")
	scale := flag.Float64("scale", 0.1, "trace volume scale in (0,1]")
	seed := flag.Int64("seed", 3, "random seed")
	refresh := flag.Duration("refresh", 8*time.Second, "LMS router replier-state staleness window")
	flag.Parse()

	entry, ok := trace.ByName(*name)
	if !ok {
		log.Fatalf("unknown trace %q", *name)
	}
	tr, err := entry.Load(*scale)
	if err != nil {
		log.Fatal(err)
	}
	losses := float64(tr.TotalLosses())

	variants := []struct {
		label string
		cfg   experiment.RunConfig
	}{
		{"SRM", experiment.RunConfig{Protocol: experiment.SRM}},
		{"CESRM", experiment.RunConfig{Protocol: experiment.CESRM}},
		{"CESRM-RA", experiment.RunConfig{Protocol: experiment.CESRM, CESRM: core.Config{RouterAssist: true}}},
		{"LMS", experiment.RunConfig{Protocol: experiment.LMS, LMSRefresh: *refresh}},
	}

	run := func(label string, cfg experiment.RunConfig, crashes map[topology.NodeID]time.Duration) (mean, p99, cost float64) {
		cfg.Trace = tr
		cfg.Seed = *seed
		cfg.Crashes = crashes
		res, err := experiment.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		return res.Collector.OverallNormalized(res.RTT).MeanRTT,
			res.Collector.NormalizedPercentile(res.RTT, 0.99),
			float64(res.Crossings.RecoveryTotal()) / losses
	}

	fmt.Printf("=== %s at scale %v: %d packets, %d losses ===\n", entry.Name, *scale, tr.NumPackets(), tr.TotalLosses())

	fmt.Println("\nfault-free (latency in RTT units, cost in link crossings per loss):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  scheme\tmean\tp99\tcost/loss")
	for _, v := range variants {
		mean, p99, cost := run(v.label, v.cfg, nil)
		fmt.Fprintf(tw, "  %s\t%.2f\t%.1f\t%.1f\n", v.label, mean, p99, cost)
	}
	tw.Flush()

	// Crash the receiver LMS designates as replier (the lowest-ID
	// receiver) a third of the way into the transmission.
	victim := tr.Tree.Receivers()[0]
	crashAt := 3*time.Second + tr.Duration()/3
	crashes := map[topology.NodeID]time.Duration{victim: crashAt}
	fmt.Printf("\nwith designated replier (host %d) crashing at %v (LMS router state stale for %v):\n",
		victim, crashAt.Round(time.Second), *refresh)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  scheme\tmean\tp99\tcost/loss")
	for _, v := range variants {
		mean, p99, cost := run(v.label, v.cfg, crashes)
		fmt.Fprintf(tw, "  %s\t%.2f\t%.1f\t%.1f\n", v.label, mean, p99, cost)
	}
	tw.Flush()
	fmt.Println("\n(LMS's p99 blows up by the staleness window; CESRM's fallback keeps its tail flat — §3.3)")
}
