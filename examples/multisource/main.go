// Multisource: run two concurrent single-source streams over one
// multicast group. CESRM keeps one requestor/replier cache per source
// (§3.1), so expedited recovery works independently per stream even
// when the streams lose packets on different links.
package main

import (
	"fmt"
	"log"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/stats"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

func main() {
	// A 10-receiver tree; stream A originates at the tree root, stream B
	// at the first receiver (any member may source its own stream).
	tree := topology.MustGenerate(sim.NewRNG(4), topology.GenSpec{Receivers: 10, Depth: 4})
	streamA := tree.Root()
	streamB := tree.Receivers()[0]

	eng := sim.NewEngine()
	net, err := netsim.New(eng, tree, netsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	collector := stats.New()

	// One CESRM agent per member (source + receivers).
	rng := sim.NewRNG(99)
	hosts := append([]topology.NodeID{tree.Root()}, tree.Receivers()...)
	agents := make(map[topology.NodeID]*core.Agent, len(hosts))
	for _, id := range hosts {
		a, err := core.NewAgent(eng, net, rng.Split(), id, core.DefaultConfig(), collector)
		if err != nil {
			log.Fatal(err)
		}
		agents[id] = a
		a.StartSessions()
	}

	// Both streams suffer bursty loss on the same receiver's leaf link
	// (a leaf link is crossed downward by every flood, regardless of
	// which member sourced the packet), at offset burst phases. Simple
	// deterministic bursts keep the example self-contained; the trace
	// package provides the full Gilbert machinery used by the evaluation.
	lossy := tree.Receivers()[5]
	lossLink := topology.LinkID(lossy)
	net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		if !ok || !down || l != lossLink {
			return false
		}
		switch m.Source {
		case streamA:
			return m.Seq%50 >= 10 && m.Seq%50 < 15 // 5-packet bursts
		case streamB:
			return m.Seq%50 >= 30 && m.Seq%50 < 35
		default:
			return false
		}
	})

	// Interleave 2000 packets per stream at 80 ms, after a session
	// warm-up.
	const packets = 2000
	warmup := 3 * time.Second
	for i := 0; i < packets; i++ {
		seq := i
		eng.ScheduleAt(sim.Time(warmup+time.Duration(i)*80*time.Millisecond), func(sim.Time) {
			agents[streamA].Transmit(seq)
		})
		eng.ScheduleAt(sim.Time(warmup+time.Duration(i)*80*time.Millisecond+40*time.Millisecond), func(sim.Time) {
			agents[streamB].Transmit(seq)
		})
	}
	// Stop sessions once both streams are fully recovered everywhere.
	var monitor func(now sim.Time)
	monitor = func(now sim.Time) {
		done := true
		for _, id := range hosts {
			a := agents[id].SRM()
			if a.MissingIn(streamA, packets) != 0 || a.MissingIn(streamB, packets) != 0 || a.Outstanding() > 0 {
				done = false
				break
			}
		}
		if done {
			for _, a := range agents {
				a.Stop()
			}
			return
		}
		eng.Schedule(time.Second, monitor)
	}
	eng.ScheduleAt(sim.Time(warmup+packets*80*time.Millisecond), monitor)
	eng.Run()

	// Per-stream recovery summaries.
	fmt.Printf("two concurrent streams over %v\n\n", tree)
	for _, src := range []topology.NodeID{streamA, streamB} {
		var n, exp int
		for _, r := range collector.Recoveries() {
			if r.Source != src {
				continue
			}
			n++
			if r.Expedited {
				exp++
			}
		}
		fmt.Printf("stream from host %d: %d recoveries, %d expedited (%.0f%%)\n",
			src, n, exp, 100*float64(exp)/float64(n))
	}

	// Per-source caches are independent: the lossy receiver holds one
	// cache per stream it lost packets of.
	probe := agents[lossy]
	ca, cb := probe.Cache(streamA), probe.Cache(streamB)
	fmt.Printf("\nreceiver %d cache sizes: stream A=%d entries, stream B=%d entries\n",
		probe.ID(), ca.Len(), cb.Len())
	if ta, ok := ca.MostRecent(); ok {
		fmt.Printf("  stream A most-recent pair: requestor %d -> replier %d\n", ta.Requestor, ta.Replier)
	}
	if tb, ok := cb.MostRecent(); ok {
		fmt.Printf("  stream B most-recent pair: requestor %d -> replier %d\n", tb.Requestor, tb.Replier)
	}
	_ = trace.Catalog // the evaluation-grade traces live in internal/trace
}
