#!/usr/bin/env bash
# Three-process localhost UDP smoke for the wire mode: a source and two
# receivers exchange a short stream through the drop-injecting proxy,
# every node must complete (i.e. recover every dropped packet), and
# every capture must replay divergence-free through the deterministic
# simulator (conform mode). Any non-completion or divergence fails.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_PORT="${WIRE_SMOKE_PORT_BASE:-47630}"
WORK="$(mktemp -d)"
cleanup() {
    local pids
    pids="$(jobs -p)"
    if [ -n "$pids" ]; then
        # shellcheck disable=SC2086
        kill $pids 2>/dev/null || true
        wait 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/cesrm-node" ./cmd/cesrm-node

# Tree: source 0 feeds interior routers 1 and 2; receivers 3 and 4.
printf -- '-1 0 0 1 2\n' > "$WORK/tree.txt"

PROXY="127.0.0.1:$BASE_PORT"
A0="127.0.0.1:$((BASE_PORT + 1))"
A3="127.0.0.1:$((BASE_PORT + 2))"
A4="127.0.0.1:$((BASE_PORT + 3))"

"$WORK/cesrm-node" -mode proxy -bind "$PROXY" -drop 0.25 -drop-seed 7 \
    -peers "0=$A0,3=$A3,4=$A4" &
PROXY_PID=$!

NODE_ARGS=(-tree "$WORK/tree.txt" -via "$PROXY" -seed 42
    -packets 16 -period 15ms -session-period 150ms -source-linger 900ms)

# Receivers first, then the source, so session exchange can prime
# distance estimates before data flows.
"$WORK/cesrm-node" "${NODE_ARGS[@]}" -id 3 -bind "$A3" -capture "$WORK/node3.ndjson" &
PID3=$!
"$WORK/cesrm-node" "${NODE_ARGS[@]}" -id 4 -bind "$A4" -capture "$WORK/node4.ndjson" &
PID4=$!
sleep 0.2
"$WORK/cesrm-node" "${NODE_ARGS[@]}" -id 0 -bind "$A0" -capture "$WORK/node0.ndjson" &
PID0=$!

FAIL=0
for pid in $PID0 $PID3 $PID4; do
    if ! wait "$pid"; then
        FAIL=1
    fi
done
kill "$PROXY_PID" 2>/dev/null || true
wait "$PROXY_PID" 2>/dev/null || true
if [ "$FAIL" -ne 0 ]; then
    echo "wire_smoke: a node failed to complete" >&2
    exit 1
fi

"$WORK/cesrm-node" -mode conform \
    "$WORK/node0.ndjson" "$WORK/node3.ndjson" "$WORK/node4.ndjson"

# The oracle must also detect divergence, not just bless clean captures:
# corrupt one observed event (the first obs record's sequence number) in
# a copy of a receiver capture and require conform mode to reject it.
awk 'BEGIN{done=0}
     /"kind":"obs"/ && !done {sub(/"Seq":[0-9]+/, "\"Seq\":9999"); done=1}
     {print}' "$WORK/node3.ndjson" > "$WORK/node3-mutated.ndjson"
if cmp -s "$WORK/node3.ndjson" "$WORK/node3-mutated.ndjson"; then
    echo "wire_smoke: mutation did not change the capture" >&2
    exit 1
fi
if "$WORK/cesrm-node" -mode conform \
    "$WORK/node0.ndjson" "$WORK/node3-mutated.ndjson" "$WORK/node4.ndjson" \
    > "$WORK/conform-mutated.log" 2>&1; then
    echo "wire_smoke: conform mode accepted a corrupted capture" >&2
    cat "$WORK/conform-mutated.log" >&2
    exit 1
fi
echo "wire_smoke: OK (clean captures conform, corrupted capture rejected)"
