// The benchmarks in this file regenerate every table and figure of the paper's
// evaluation (§4) as Go benchmarks: each Benchmark* target corresponds
// to one table or figure and prints the rows/series the paper reports.
//
// The trace-driven suite (14 traces × 2 protocols) is simulated once per
// `go test -bench` process at a reduced volume scale (override with
// CESRM_BENCH_SCALE, 1 = full Table 1 volumes — see cmd/cesrm-bench for
// the standalone harness). Each benchmark then measures the cost of
// regenerating its figure from the protocol runs and prints the series
// once.
package cesrm_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/lossinfer"
	"cesrm/internal/netsim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

var (
	suiteOnce    sync.Once
	suiteResults []experiment.SuiteResult
	suiteErr     error
)

func benchScale() float64 {
	if s := os.Getenv("CESRM_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.05
}

// suite lazily simulates all 14 catalog traces under both protocols.
func suite(b *testing.B) []experiment.SuiteResult {
	b.Helper()
	suiteOnce.Do(func() {
		s := experiment.Suite{Scale: benchScale(), Seed: 1}
		suiteResults, suiteErr = s.Run()
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteResults
}

// printOnce ensures a benchmark prints its series exactly once across
// all b.N iterations and -benchtime rounds.
type printOnce struct{ sync.Once }

var printers = map[string]*printOnce{}
var printersMu sync.Mutex

func oncePer(name string) *printOnce {
	printersMu.Lock()
	defer printersMu.Unlock()
	p, ok := printers[name]
	if !ok {
		p = &printOnce{}
		printers[name] = p
	}
	return p
}

// BenchmarkSuiteRun is the headline end-to-end benchmark: one full suite
// pass (all 14 catalog traces simulated under both SRM and CESRM,
// serially). Its ns/op and allocs/op are the numbers the committed
// BENCH_*.json perf trajectory tracks; run with -benchmem to see both.
// Unlike the figure benchmarks below, it does not reuse the shared
// suite — every iteration simulates from scratch.
func BenchmarkSuiteRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiment.Suite{Scale: benchScale(), Seed: 1}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1TraceCatalog regenerates Table 1: the 14-trace catalog
// with source, receivers, depth, period, packet and loss counts.
func BenchmarkTable1TraceCatalog(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			_ = r.Pair.Trace.ComputeStats()
		}
	}
	b.StopTimer()
	oncePer("table1").Do(func() {
		fmt.Printf("\n[Table 1] scale=%v\n", benchScale())
		experiment.RenderTable1(os.Stdout, results)
	})
}

// BenchmarkSec42InferenceAccuracy regenerates the §4.2 claim: the
// fraction of selected link combinations whose normalized probability
// exceeds 95% (paper: >90% of selections for 13 of 14 traces).
func BenchmarkSec42InferenceAccuracy(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	var confs []float64
	for i := 0; i < b.N; i++ {
		confs = confs[:0]
		for _, r := range results {
			tr := r.Pair.Trace
			res, err := lossinfer.Infer(tr, lossinfer.EstimateYajnik(tr))
			if err != nil {
				b.Fatal(err)
			}
			confs = append(confs, res.Confidence(0.95))
		}
	}
	b.StopTimer()
	oncePer("sec42").Do(func() {
		fmt.Printf("\n[§4.2] selection confidence >95%% per trace:")
		for i, c := range confs {
			fmt.Printf(" %d:%.0f%%", i+1, 100*c)
		}
		fmt.Println()
	})
}

// BenchmarkFigure1RecoveryTimes regenerates Figure 1: per-receiver
// average normalized recovery times, SRM vs CESRM (paper: CESRM 40-70%
// lower, ~50% on average).
func BenchmarkFigure1RecoveryTimes(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			_ = r.Pair.Figure1()
		}
	}
	b.StopTimer()
	oncePer("fig1").Do(func() {
		fmt.Printf("\n[Figure 1] mean reduction per trace:")
		for _, r := range results {
			fmt.Printf(" %d:%.0f%%", r.Entry.Index, r.Pair.LatencyReductionPct())
		}
		fmt.Println()
	})
}

// BenchmarkFigure2ExpeditedDelta regenerates Figure 2: the per-receiver
// difference between expedited and non-expedited normalized recovery
// times (paper: 1 to 2.5 RTT).
func BenchmarkFigure2ExpeditedDelta(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo, hi = 99, 0
		for _, r := range results {
			for _, row := range r.Pair.Figure2() {
				if row.ExpeditedCount == 0 || row.NormalCount == 0 {
					continue
				}
				if row.Delta < lo {
					lo = row.Delta
				}
				if row.Delta > hi {
					hi = row.Delta
				}
			}
		}
	}
	b.StopTimer()
	oncePer("fig2").Do(func() {
		fmt.Printf("\n[Figure 2] expedited vs non-expedited delta range: %.2f to %.2f RTT (paper: 1 to 2.5)\n", lo, hi)
	})
}

// BenchmarkFigure3RequestCounts regenerates Figure 3: per-host request
// packet counts split SRM-multicast / CESRM-multicast / CESRM-unicast.
func BenchmarkFigure3RequestCounts(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			_ = r.Pair.Figure3()
		}
	}
	b.StopTimer()
	oncePer("fig3").Do(func() {
		fmt.Printf("\n[Figure 3] total requests (SRM vs CESRM mcast+ucast):")
		for _, r := range results {
			var s, cm, cu int
			for _, row := range r.Pair.Figure3() {
				s += row.SRM
				cm += row.CESRMMulticast
				cu += row.CESRMExpedited
			}
			fmt.Printf(" %d:%d/%d+%d", r.Entry.Index, s, cm, cu)
		}
		fmt.Println()
	})
}

// BenchmarkFigure4ReplyCounts regenerates Figure 4: per-host reply
// packet counts (paper: CESRM sends substantially fewer retransmissions).
func BenchmarkFigure4ReplyCounts(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			_ = r.Pair.Figure4()
		}
	}
	b.StopTimer()
	oncePer("fig4").Do(func() {
		fmt.Printf("\n[Figure 4] total replies (SRM vs CESRM mcast+exp):")
		for _, r := range results {
			var s, cm, ce int
			for _, row := range r.Pair.Figure4() {
				s += row.SRM
				cm += row.CESRMMulticast
				ce += row.CESRMExpedited
			}
			fmt.Printf(" %d:%d/%d+%d", r.Entry.Index, s, cm, ce)
		}
		fmt.Println()
	})
}

// BenchmarkFigure5ExpeditedSuccess regenerates Figure 5 (left): the
// percentage of successful expedited recoveries per trace (paper: >70%
// for all traces, >80% for all but two).
func BenchmarkFigure5ExpeditedSuccess(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	var succ []float64
	for i := 0; i < b.N; i++ {
		succ = succ[:0]
		for _, r := range results {
			s, _ := r.Pair.ExpeditedSuccess()
			succ = append(succ, s)
		}
	}
	b.StopTimer()
	oncePer("fig5l").Do(func() {
		fmt.Printf("\n[Figure 5 left] expedited success per trace:")
		for i, s := range succ {
			fmt.Printf(" %d:%.0f%%", i+1, s)
		}
		fmt.Println()
	})
}

// BenchmarkFigure5Overhead regenerates Figure 5 (right): CESRM's
// transmission overhead as a percentage of SRM's, split into
// retransmissions and multicast/unicast control (paper: retransmissions
// <80% for all traces, control <52% for all but one).
func BenchmarkFigure5Overhead(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	var rows []experiment.OverheadRow
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, r := range results {
			rows = append(rows, r.Pair.Overhead())
		}
	}
	b.StopTimer()
	oncePer("fig5r").Do(func() {
		fmt.Printf("\n[Figure 5 right] retrans%%/control%% of SRM per trace:")
		for i, o := range rows {
			fmt.Printf(" %d:%.0f/%.0f", i+1, o.RetransPct, o.ControlTotalPct())
		}
		fmt.Println()
	})
}

// BenchmarkEq1FirstRoundLatency regenerates the §3.4 analytic check: the
// average normalized latency of successful first-round non-expedited
// recoveries (paper: between 1.5 and 3.25 RTT for the default
// parameters, upper-bounded by Eq. (1) at 3.25 RTT).
func BenchmarkEq1FirstRoundLatency(b *testing.B) {
	results := suite(b)
	b.ResetTimer()
	var vals []float64
	for i := 0; i < b.N; i++ {
		vals = vals[:0]
		for _, r := range results {
			fr := r.Pair.SRM.Collector.FirstRoundNormalized(r.Pair.SRM.RTT)
			vals = append(vals, fr.MeanRTT)
		}
	}
	b.StopTimer()
	oncePer("eq1").Do(func() {
		fmt.Printf("\n[Eq.1] SRM first-round mean per trace (bound 3.25 RTT):")
		for i, v := range vals {
			fmt.Printf(" %d:%.2f", i+1, v)
		}
		fmt.Println()
	})
}

// ablationTrace returns a mid-sized catalog trace for the ablation
// benchmarks.
func ablationTrace(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := trace.Catalog[12].Load(benchScale()) // WRN951216
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkAblationLinkDelay reenacts the paper's link-delay sweep
// (10/20/30 ms): results should be very similar in normalized terms.
func BenchmarkAblationLinkDelay(b *testing.B) {
	tr := ablationTrace(b)
	delays := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	b.ResetTimer()
	var means []float64
	for i := 0; i < b.N; i++ {
		means = means[:0]
		for _, d := range delays {
			cfg := netsim.DefaultConfig()
			cfg.LinkDelay = d
			res, err := experiment.Run(experiment.RunConfig{
				Trace: tr, Protocol: experiment.CESRM, Net: cfg, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			means = append(means, res.Collector.OverallNormalized(res.RTT).MeanRTT)
		}
	}
	b.StopTimer()
	oncePer("abl-delay").Do(func() {
		fmt.Printf("\n[Ablation: link delay] CESRM mean RTTs at 10/20/30ms: %.2f %.2f %.2f\n",
			means[0], means[1], means[2])
	})
}

// BenchmarkAblationLossyRecovery reenacts the companion experiment with
// recovery traffic subject to the estimated link loss rates (paper:
// latencies slightly larger, same relative gains).
func BenchmarkAblationLossyRecovery(b *testing.B) {
	tr := ablationTrace(b)
	b.ResetTimer()
	var lossless, lossy float64
	for i := 0; i < b.N; i++ {
		for _, mode := range []bool{false, true} {
			res, err := experiment.Run(experiment.RunConfig{
				Trace: tr, Protocol: experiment.CESRM, LossyRecovery: mode, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			m := res.Collector.OverallNormalized(res.RTT).MeanRTT
			if mode {
				lossy = m
			} else {
				lossless = m
			}
		}
	}
	b.StopTimer()
	oncePer("abl-lossy").Do(func() {
		fmt.Printf("\n[Ablation: lossy recovery] CESRM mean RTT lossless=%.2f lossy=%.2f\n", lossless, lossy)
	})
}

// BenchmarkAblationPolicy compares the most-recent-loss and
// most-frequent-loss expedition policies (paper/[10]: most-recent wins).
func BenchmarkAblationPolicy(b *testing.B) {
	tr := ablationTrace(b)
	b.ResetTimer()
	var recent, frequent float64
	for i := 0; i < b.N; i++ {
		for _, pol := range []core.Policy{core.MostRecentLoss{}, core.MostFrequentLoss{}} {
			res, err := experiment.Run(experiment.RunConfig{
				Trace: tr, Protocol: experiment.CESRM,
				CESRM: core.Config{Policy: pol}, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			m := res.Collector.OverallNormalized(res.RTT).MeanRTT
			if pol.Name() == "most-recent-loss" {
				recent = m
			} else {
				frequent = m
			}
		}
	}
	b.StopTimer()
	oncePer("abl-policy").Do(func() {
		fmt.Printf("\n[Ablation: policy] mean RTT most-recent=%.2f most-frequent=%.2f\n", recent, frequent)
	})
}

// BenchmarkScalingGroupSize goes beyond the paper's 7-15 receiver
// traces: it sweeps the group size at a fixed per-receiver loss rate and
// reports how each protocol's latency and recovery cost (link crossings
// per loss) scale. CESRM's advantage persists as the group grows --
// expedited recovery does not depend on group-wide suppression.
func BenchmarkScalingGroupSize(b *testing.B) {
	sizes := []int{8, 16, 32, 56}
	type point struct {
		srmLat, cesrmLat   float64
		srmCost, cesrmCost float64
	}
	var points []point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = points[:0]
		for _, n := range sizes {
			tr, err := trace.Generate(trace.GenSpec{
				Name:         fmt.Sprintf("scale-%d", n),
				Topology:     topology.GenSpec{Receivers: n, Depth: 5},
				NumPackets:   2000,
				Period:       80 * time.Millisecond,
				TargetLosses: 60 * n, // constant 3% per-receiver loss
				Seed:         int64(1000 + n),
			})
			if err != nil {
				b.Fatal(err)
			}
			pair, err := experiment.RunPair(tr, experiment.PairConfig{
				Base: experiment.RunConfig{Seed: 7},
			})
			if err != nil {
				b.Fatal(err)
			}
			losses := float64(tr.TotalLosses())
			points = append(points, point{
				srmLat:    pair.SRM.Collector.OverallNormalized(pair.SRM.RTT).MeanRTT,
				cesrmLat:  pair.CESRM.Collector.OverallNormalized(pair.CESRM.RTT).MeanRTT,
				srmCost:   float64(pair.SRM.Crossings.RecoveryTotal()) / losses,
				cesrmCost: float64(pair.CESRM.Crossings.RecoveryTotal()) / losses,
			})
		}
	}
	b.StopTimer()
	oncePer("scaling").Do(func() {
		fmt.Printf("\n[Scaling] group size sweep (latency RTT / recovery crossings per loss):\n")
		for i, n := range sizes {
			p := points[i]
			fmt.Printf("  %2d receivers: SRM %.2f/%.1f  CESRM %.2f/%.1f\n",
				n, p.srmLat, p.srmCost, p.cesrmLat, p.cesrmCost)
		}
	})
}

// BenchmarkAblationAdaptiveTimers compares SRM with fixed parameters
// (the paper's baseline) against SRM with adaptive timer adjustment
// (Floyd et al. ToN 1997 §VI): adaptation trades duplicate suppression
// against recovery latency automatically.
func BenchmarkAblationAdaptiveTimers(b *testing.B) {
	tr := ablationTrace(b)
	b.ResetTimer()
	var fixedLat, adaptLat float64
	var fixedDups, adaptDups int
	for i := 0; i < b.N; i++ {
		for _, adaptive := range []bool{false, true} {
			cfg := experiment.RunConfig{Trace: tr, Protocol: experiment.SRM, Seed: 3}
			if adaptive {
				cfg.Adaptive = srm.DefaultAdaptiveConfig()
			}
			res, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			lat := res.Collector.OverallNormalized(res.RTT).MeanRTT
			reqs := res.Collector.TotalCounts().Requests
			if adaptive {
				adaptLat, adaptDups = lat, reqs
			} else {
				fixedLat, fixedDups = lat, reqs
			}
		}
	}
	b.StopTimer()
	oncePer("abl-adaptive").Do(func() {
		fmt.Printf("\n[Ablation: adaptive timers] SRM fixed: %.2f RTT / %d requests; adaptive: %.2f RTT / %d requests\n",
			fixedLat, fixedDups, adaptLat, adaptDups)
	})
}

// BenchmarkAblationReorderDelay exercises the REORDER-DELAY mechanism
// (§3.2) under delivery jitter: a zero delay (the paper's setting, valid
// because its traces never reorder) chases reordered packets with
// spurious expedited requests; a delay above the jitter magnitude absorbs
// them.
func BenchmarkAblationReorderDelay(b *testing.B) {
	tr := ablationTrace(b)
	b.ResetTimer()
	var eager, patient int
	for i := 0; i < b.N; i++ {
		for _, delay := range []time.Duration{0, 160 * time.Millisecond} {
			res, err := experiment.Run(experiment.RunConfig{
				Trace: tr, Protocol: experiment.CESRM,
				Jitter: 150 * time.Millisecond,
				CESRM:  core.Config{ReorderDelay: delay},
				Seed:   3,
			})
			if err != nil {
				b.Fatal(err)
			}
			if delay == 0 {
				eager = res.SpuriousExpedited
			} else {
				patient = res.SpuriousExpedited
			}
		}
	}
	b.StopTimer()
	oncePer("abl-reorder").Do(func() {
		fmt.Printf("\n[Ablation: reorder delay] spurious expedited requests under 150ms jitter: delay=0: %d, delay=160ms: %d\n",
			eager, patient)
	})
}

// BenchmarkAblationRouterAssist measures the §3.3 router-assisted
// variant against basic CESRM: retransmission exposure drops because
// expedited replies are subcast into the loss subtree only.
func BenchmarkAblationRouterAssist(b *testing.B) {
	// Router assistance pays off when turning points sit below the root;
	// trace 11 (WRN951211, depth 4, deep loss links) exhibits that.
	tr, err := trace.Catalog[10].Load(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var basic, assisted uint64
	for i := 0; i < b.N; i++ {
		for _, assist := range []bool{false, true} {
			res, err := experiment.Run(experiment.RunConfig{
				Trace: tr, Protocol: experiment.CESRM,
				CESRM: core.Config{RouterAssist: assist}, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			total := res.Crossings.PayloadMulticast + res.Crossings.PayloadSubcast + res.Crossings.PayloadUnicast
			if assist {
				assisted = total
			} else {
				basic = total
			}
		}
	}
	b.StopTimer()
	oncePer("abl-router").Do(func() {
		fmt.Printf("\n[Ablation: router assist] retrans crossings basic=%d assisted=%d (%.0f%%)\n",
			basic, assisted, 100*float64(assisted)/float64(basic))
	})
}

// BenchmarkComparisonThreeProtocols lines the paper's protagonists up on
// one trace: SRM (suppression, full multicast), CESRM (caching-expedited
// with SRM fallback), router-assisted CESRM (§3.3) and LMS (router
// replier state). Latency in RTT units and recovery link-crossings per
// loss.
func BenchmarkComparisonThreeProtocols(b *testing.B) {
	tr, err := trace.Catalog[10].Load(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	type row struct {
		name string
		lat  float64
		cost float64
	}
	var rows []row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		losses := float64(tr.TotalLosses())
		for _, v := range []struct {
			name string
			cfg  experiment.RunConfig
		}{
			{"SRM", experiment.RunConfig{Trace: tr, Protocol: experiment.SRM, Seed: 3}},
			{"CESRM", experiment.RunConfig{Trace: tr, Protocol: experiment.CESRM, Seed: 3}},
			{"CESRM-RA", experiment.RunConfig{Trace: tr, Protocol: experiment.CESRM, CESRM: core.Config{RouterAssist: true}, Seed: 3}},
			{"LMS", experiment.RunConfig{Trace: tr, Protocol: experiment.LMS, Seed: 3}},
		} {
			res, err := experiment.Run(v.cfg)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{
				name: v.name,
				lat:  res.Collector.OverallNormalized(res.RTT).MeanRTT,
				cost: float64(res.Crossings.RecoveryTotal()) / losses,
			})
		}
	}
	b.StopTimer()
	oncePer("compare3").Do(func() {
		fmt.Printf("\n[Comparison] %s: latency RTT / recovery crossings per loss:\n", tr.Name)
		for _, r := range rows {
			fmt.Printf("  %-9s %.2f / %.1f\n", r.name, r.lat, r.cost)
		}
	})
}

// BenchmarkRobustnessReplierCrash quantifies §3.3: crash the receiver
// LMS designates as replier mid-run. LMS recovery in that region stalls
// on stale router state until the fabric refresh; CESRM's expedited
// scheme degrades gracefully to SRM and re-caches a live pair.
func BenchmarkRobustnessReplierCrash(b *testing.B) {
	tr, err := trace.Catalog[12].Load(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	victim := tr.Tree.Receivers()[0]
	crashes := map[topology.NodeID]time.Duration{victim: 20 * time.Second}
	var lmsP99, cesrmP99, lmsMean, cesrmMean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lmsRes, err := experiment.Run(experiment.RunConfig{
			Trace: tr, Protocol: experiment.LMS, Crashes: crashes,
			LMSRefresh: 8 * time.Second, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		cesrmRes, err := experiment.Run(experiment.RunConfig{
			Trace: tr, Protocol: experiment.CESRM, Crashes: crashes, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		lmsP99 = lmsRes.Collector.NormalizedPercentile(lmsRes.RTT, 0.99)
		cesrmP99 = cesrmRes.Collector.NormalizedPercentile(cesrmRes.RTT, 0.99)
		lmsMean = lmsRes.Collector.OverallNormalized(lmsRes.RTT).MeanRTT
		cesrmMean = cesrmRes.Collector.OverallNormalized(cesrmRes.RTT).MeanRTT
	}
	b.StopTimer()
	oncePer("robust").Do(func() {
		fmt.Printf("\n[Robustness: replier crash] mean/p99 normalized latency: LMS %.2f/%.1f RTT, CESRM %.2f/%.1f RTT\n",
			lmsMean, lmsP99, cesrmMean, cesrmP99)
	})
}
