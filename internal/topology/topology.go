// Package topology models the static IP multicast tree over which a
// trace's packets are disseminated.
//
// Following §4.1 of the paper, a transmission's topology is a directed
// tree T = (N, s, L): the root s is the transmission source, internal
// nodes are multicast-capable routers, and the leaves are exactly the
// receivers. Edges ("links") are directed away from the source; each
// non-root node identifies the unique link arriving at it, so links are
// addressed by their downstream endpoint.
package topology

import (
	"errors"
	"fmt"
)

// NodeID identifies a node of the tree. IDs are dense indices in
// [0, NumNodes).
type NodeID int

// None is the sentinel "no node" value (for example, the root's parent).
const None NodeID = -1

// LinkID identifies a link by its downstream endpoint node. Every
// non-root node n has exactly one inbound link, written Link(n).
type LinkID = NodeID

// Tree is an immutable rooted multicast tree. Construct one with New or
// the generator in this package; the zero value is not usable.
type Tree struct {
	parent    []NodeID
	children  [][]NodeID
	depth     []int // root-to-node link count
	root      NodeID
	receivers []NodeID // all leaves, ascending ID order
	maxDepth  int
	// hops is a flat row-major NumNodes×NumNodes matrix of pairwise
	// tree-path link counts, precomputed for trees with at most
	// hopMatrixMaxNodes nodes. HopCount — on the hot path of every
	// distance estimate and timer draw — becomes a single indexed load
	// instead of an LCA climb. Nil for larger trees (quadratic memory),
	// in which case HopCount falls back to the LCA computation.
	hops []uint16
}

// hopMatrixMaxNodes bounds the trees for which the pairwise hop matrix
// is materialized: 1024 nodes costs at most 2 MiB, far below the
// per-run footprint of the simulator itself, while covering every
// catalog trace.
const hopMatrixMaxNodes = 1024

// New builds a tree from a parent vector: parents[i] is the parent of
// node i, and exactly one entry (the root) must be None. Parents must
// precede children is NOT required; any topological order is accepted.
func New(parents []NodeID) (*Tree, error) {
	n := len(parents)
	if n == 0 {
		return nil, errors.New("topology: empty parent vector")
	}
	t := &Tree{
		parent:   make([]NodeID, n),
		children: make([][]NodeID, n),
		depth:    make([]int, n),
		root:     None,
	}
	copy(t.parent, parents)
	for i, p := range parents {
		switch {
		case p == None:
			if t.root != None {
				return nil, fmt.Errorf("topology: multiple roots (%d and %d)", t.root, i)
			}
			t.root = NodeID(i)
		case p < 0 || int(p) >= n:
			return nil, fmt.Errorf("topology: node %d has out-of-range parent %d", i, p)
		case p == NodeID(i):
			return nil, fmt.Errorf("topology: node %d is its own parent", i)
		default:
			t.children[p] = append(t.children[p], NodeID(i))
		}
	}
	if t.root == None {
		return nil, errors.New("topology: no root")
	}
	// Depth-first walk assigns depths and detects disconnected nodes or
	// cycles (unreached nodes).
	seen := make([]bool, n)
	stack := []NodeID{t.root}
	seen[t.root] = true
	count := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, c := range t.children[u] {
			if seen[c] {
				return nil, fmt.Errorf("topology: node %d reached twice", c)
			}
			seen[c] = true
			t.depth[c] = t.depth[u] + 1
			if t.depth[c] > t.maxDepth {
				t.maxDepth = t.depth[c]
			}
			stack = append(stack, c)
		}
	}
	if count != n {
		return nil, fmt.Errorf("topology: %d of %d nodes unreachable from root", n-count, n)
	}
	for i := 0; i < n; i++ {
		if len(t.children[i]) == 0 && NodeID(i) != t.root {
			t.receivers = append(t.receivers, NodeID(i))
		}
	}
	if len(t.receivers) == 0 {
		return nil, errors.New("topology: tree has no receivers")
	}
	if n <= hopMatrixMaxNodes {
		t.fillHopMatrix()
	}
	return t, nil
}

// fillHopMatrix computes the pairwise hop matrix with one undirected
// depth-first traversal per source row, O(n²) total — cheaper than n²
// LCA climbs and done once at construction.
func (t *Tree) fillHopMatrix() {
	n := t.NumNodes()
	t.hops = make([]uint16, n*n)
	stack := make([]NodeID, 0, n)
	for a := 0; a < n; a++ {
		row := t.hops[a*n : (a+1)*n]
		// Undirected walk away from a. The tree has a unique path
		// between any pair, so a node's hop count is final when first
		// reached; row[x] == 0 doubles as the "unvisited" mark because
		// only a itself is at distance zero.
		stack = append(stack[:0], NodeID(a))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			d := row[u] + 1
			if p := t.parent[u]; p != None && p != NodeID(a) && row[p] == 0 {
				row[p] = d
				stack = append(stack, p)
			}
			for _, c := range t.children[u] {
				if c != NodeID(a) && row[c] == 0 {
					row[c] = d
					stack = append(stack, c)
				}
			}
		}
	}
}

// MustNew is New panicking on error, for tests and static catalogs.
func MustNew(parents []NodeID) *Tree {
	t, err := New(parents)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNodes returns the total node count (source + routers + receivers).
func (t *Tree) NumNodes() int { return len(t.parent) }

// NumLinks returns the link count, always NumNodes-1.
func (t *Tree) NumLinks() int { return len(t.parent) - 1 }

// Root returns the transmission source.
func (t *Tree) Root() NodeID { return t.root }

// Parent returns the parent of n, or None for the root.
func (t *Tree) Parent(n NodeID) NodeID { return t.parent[n] }

// Children returns the children of n. The returned slice is shared and
// must not be modified.
func (t *Tree) Children(n NodeID) []NodeID { return t.children[n] }

// Depth returns the number of links from the root to n.
func (t *Tree) Depth(n NodeID) int { return t.depth[n] }

// MaxDepth returns the depth of the deepest node (the paper's "tree
// depth" column in Table 1).
func (t *Tree) MaxDepth() int { return t.maxDepth }

// IsLeaf reports whether n has no children.
func (t *Tree) IsLeaf(n NodeID) bool { return len(t.children[n]) == 0 }

// IsReceiver reports whether n is a receiver (a non-root leaf).
func (t *Tree) IsReceiver(n NodeID) bool { return n != t.root && t.IsLeaf(n) }

// Receivers returns all receivers in ascending ID order. The returned
// slice is shared and must not be modified.
func (t *Tree) Receivers() []NodeID { return t.receivers }

// NumReceivers returns the receiver count.
func (t *Tree) NumReceivers() int { return len(t.receivers) }

// Links returns all link IDs (every node except the root), ascending.
func (t *Tree) Links() []LinkID {
	links := make([]LinkID, 0, t.NumLinks())
	for i := 0; i < t.NumNodes(); i++ {
		if NodeID(i) != t.root {
			links = append(links, NodeID(i))
		}
	}
	return links
}

// LCA returns the lowest common ancestor of a and b.
func (t *Tree) LCA(a, b NodeID) NodeID {
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
	}
	return a
}

// HopCount returns the number of links on the tree path between a and b.
// For trees up to hopMatrixMaxNodes nodes this is a single load from the
// precomputed matrix; larger trees fall back to the LCA climb.
func (t *Tree) HopCount(a, b NodeID) int {
	if t.hops != nil {
		return int(t.hops[int(a)*len(t.parent)+int(b)])
	}
	l := t.LCA(a, b)
	return (t.depth[a] - t.depth[l]) + (t.depth[b] - t.depth[l])
}

// IsAncestor reports whether a is an ancestor of b (or equal to it).
func (t *Tree) IsAncestor(a, b NodeID) bool {
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	return a == b
}

// PathLinks returns the links crossed travelling from a to b, identified
// by downstream endpoints, in traversal order: first the links climbed
// from a up to LCA(a,b), then the links descended to b.
func (t *Tree) PathLinks(a, b NodeID) []LinkID {
	l := t.LCA(a, b)
	var up []LinkID
	for n := a; n != l; n = t.parent[n] {
		up = append(up, n)
	}
	var down []LinkID
	for n := b; n != l; n = t.parent[n] {
		down = append(down, n)
	}
	// The descent is collected bottom-up; reverse it.
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return append(up, down...)
}

// TurningPoint returns the router at which a packet travelling from
// sender toward dst stops moving up (toward the source) and starts
// moving down: the LCA of the two nodes. In the router-assisted variant
// of §3.3 this is the router that subcasts expedited replies.
func (t *Tree) TurningPoint(sender, dst NodeID) NodeID { return t.LCA(sender, dst) }

// NodesBelow returns n and every descendant of n in preorder.
func (t *Tree) NodesBelow(n NodeID) []NodeID {
	var out []NodeID
	stack := []NodeID{n}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		for i := len(t.children[u]) - 1; i >= 0; i-- {
			stack = append(stack, t.children[u][i])
		}
	}
	return out
}

// ReceiversBelow returns the receivers in the subtree rooted at n, in
// preorder.
func (t *Tree) ReceiversBelow(n NodeID) []NodeID {
	var out []NodeID
	for _, u := range t.NodesBelow(n) {
		if t.IsReceiver(u) {
			out = append(out, u)
		}
	}
	return out
}

// LinksBelow returns every link in the subtree rooted at n, i.e. the
// inbound links of all strict descendants of n.
func (t *Tree) LinksBelow(n NodeID) []LinkID {
	nodes := t.NodesBelow(n)
	out := make([]LinkID, 0, len(nodes)-1)
	for _, u := range nodes {
		if u != n {
			out = append(out, u)
		}
	}
	return out
}

// ParentVector returns a copy of the parent representation, suitable for
// serialization.
func (t *Tree) ParentVector() []NodeID {
	out := make([]NodeID, len(t.parent))
	copy(out, t.parent)
	return out
}

// String renders a compact single-line summary.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{nodes=%d receivers=%d depth=%d}", t.NumNodes(), t.NumReceivers(), t.maxDepth)
}
