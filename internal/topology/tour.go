// Flood tours: the flattened Euler-tour representation of a flood's
// traversal, precomputed per origin so the network simulator can replay
// a multicast fan-out as a linear scan instead of re-walking the tree.
//
// The fast (non-queuing) flood in internal/netsim is a LIFO DFS with a
// load-bearing visit discipline: when a node is popped it first delivers
// (drawing jitter), then checks its neighbors' links in a fixed order —
// children in tree order, then the parent — where each check is
// sever-test → crossing-count → drop-test, and survivors are pushed. A
// tour records, for a fixed origin, exactly the pop order and link-check
// order that walk produces when nothing is severed or dropped.
//
// Two structural facts make the tour replayable under arbitrary drops:
//
//  1. Region contiguity. In a LIFO DFS over a tree, the set of entries
//     reached through a pushed neighbor (its "region") occupies a
//     contiguous span of the pop order, beginning at the neighbor
//     itself; sibling regions appear in reverse push order. Span is
//     that length, so "skip this subtree" is a single index jump.
//  2. Drop locality. The link checks a popped node performs depend only
//     on the topology and where the walk entered it — never on drop
//     outcomes elsewhere, because a tree has a unique path to every
//     node, so a dropped neighbor's region contains every node the drop
//     hides. Dropping a link therefore deletes its region from the pop
//     order without reordering, re-timing or re-checking anything else.
//
// Replaying a tour — skipping the regions of severed or dropped links —
// thus reproduces the DFS's exact delivery order, link-check order and
// RNG draw order, which is what keeps run fingerprints byte-identical.
package topology

// TourEntry is one visited node of a flood tour, in exactly the order
// the fast flood's LIFO DFS pops nodes.
type TourEntry struct {
	// Node is the visited node; the first entry is the tour origin.
	Node NodeID
	// Hops is the link count from the origin along the traversal path.
	Hops int32
	// Span is the size of this node's region: this entry plus every
	// entry the walk reached through it. Skipping a dropped node means
	// advancing Span entries.
	Span int32
	// OpsEnd is the end of this entry's link-check range in Tour.Ops.
	// Ops are emitted in pop order, so the range starts at the previous
	// entry's OpsEnd (0 for the first entry).
	OpsEnd int32
}

// TourOp is one link check a popped node performs, in check order:
// children in tree order, then the parent (full floods only).
type TourOp struct {
	// Link is the checked link, identified by its downstream endpoint
	// as everywhere else.
	Link LinkID
	// Region is the index of the entry that starts the neighbor's
	// region: the entry to mark skipped when the check severs or drops.
	Region int32
	// Down reports the crossing direction: true when descending to a
	// child, false when climbing the node's own inbound link.
	Down bool
}

// Tour is the flattened Euler-tour of a flood from one origin. The zero
// value is an empty tour; build one with Tree.FloodTour.
type Tour struct {
	Entries []TourEntry
	Ops     []TourOp
}

// FloodTour computes the flood tour from origin. downOnly restricts the
// walk to descendants (the subcast primitive); otherwise the walk covers
// the whole tree. The builder mirrors the fast flood's traversal with
// every sever and drop test answering "pass", so the tour is a pure
// function of the topology.
func (t *Tree) FloodTour(origin NodeID, downOnly bool) Tour {
	n := t.NumNodes()
	// item is one worklist entry: the node, its hop count, the index of
	// the op that pushed it (-1 for the origin) and the entry index of
	// the node that issued that op (-1 for the origin).
	type item struct {
		node          NodeID
		hops          int32
		opIdx, parent int32
	}
	sizeHint := n
	if downOnly {
		// Subcast tours cover only the subtree; still a fine upper bound
		// for shallow roots, and exact for the full-tree case.
		sizeHint = len(t.NodesBelow(origin))
	}
	tour := Tour{
		Entries: make([]TourEntry, 0, sizeHint),
		Ops:     make([]TourOp, 0, sizeHint),
	}
	parentEntry := make([]int32, 0, sizeHint)
	visited := make([]bool, n)
	stack := make([]item, 0, sizeHint)
	stack = append(stack, item{origin, 0, -1, -1})
	visited[origin] = true
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := int32(len(tour.Entries))
		if it.opIdx >= 0 {
			tour.Ops[it.opIdx].Region = idx
		}
		parentEntry = append(parentEntry, it.parent)
		for _, c := range t.children[it.node] {
			if visited[c] {
				continue
			}
			visited[c] = true
			tour.Ops = append(tour.Ops, TourOp{Link: c, Down: true})
			stack = append(stack, item{c, it.hops + 1, int32(len(tour.Ops) - 1), idx})
		}
		if !downOnly {
			if p := t.parent[it.node]; p != None && !visited[p] {
				visited[p] = true
				tour.Ops = append(tour.Ops, TourOp{Link: it.node, Down: false})
				stack = append(stack, item{p, it.hops + 1, int32(len(tour.Ops) - 1), idx})
			}
		}
		tour.Entries = append(tour.Entries, TourEntry{
			Node:   it.node,
			Hops:   it.hops,
			Span:   1,
			OpsEnd: int32(len(tour.Ops)),
		})
	}
	// Regions nest: a node's region contains its pushees' regions, and
	// every pushee has a higher entry index than its pusher, so one
	// reverse accumulation computes all spans.
	for i := len(tour.Entries) - 1; i >= 1; i-- {
		tour.Entries[parentEntry[i]].Span += tour.Entries[i].Span
	}
	return tour
}
