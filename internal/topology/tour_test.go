package topology

import (
	"testing"

	"cesrm/internal/sim"
)

// referenceTour is an independent re-implementation of the fast flood's
// LIFO traversal (pop order + link-check order), kept deliberately
// simple: no span bookkeeping, just the orders FloodTour must match.
func referenceTour(t *Tree, origin NodeID, downOnly bool) (pops []NodeID, hops []int32, ops [][]TourOp) {
	type item struct {
		node NodeID
		hops int32
	}
	visited := make([]bool, t.NumNodes())
	stack := []item{{origin, 0}}
	visited[origin] = true
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pops = append(pops, it.node)
		hops = append(hops, it.hops)
		var own []TourOp
		for _, c := range t.children[it.node] {
			if visited[c] {
				continue
			}
			visited[c] = true
			own = append(own, TourOp{Link: c, Down: true})
			stack = append(stack, item{c, it.hops + 1})
		}
		if !downOnly {
			if p := t.parent[it.node]; p != None && !visited[p] {
				visited[p] = true
				own = append(own, TourOp{Link: it.node, Down: false})
				stack = append(stack, item{p, it.hops + 1})
			}
		}
		ops = append(ops, own)
	}
	return pops, hops, ops
}

// checkTour verifies every structural invariant of a tour against the
// reference traversal: pop order, hop counts, per-entry op ranges, the
// span arithmetic (a region is itself plus its pushees' regions), and
// region contiguity (pushee regions tile the pusher's region back to
// front, in reverse push order).
func checkTour(t *testing.T, tree *Tree, origin NodeID, downOnly bool) {
	t.Helper()
	tour := tree.FloodTour(origin, downOnly)
	pops, hops, refOps := referenceTour(tree, origin, downOnly)

	if len(tour.Entries) != len(pops) {
		t.Fatalf("origin=%d downOnly=%v: %d entries, reference pops %d nodes",
			origin, downOnly, len(tour.Entries), len(pops))
	}
	seen := make(map[NodeID]bool, len(pops))
	totalOps := 0
	for i, e := range tour.Entries {
		if e.Node != pops[i] {
			t.Fatalf("origin=%d downOnly=%v: entry %d node=%d, reference pops %d",
				origin, downOnly, i, e.Node, pops[i])
		}
		if e.Hops != hops[i] {
			t.Fatalf("entry %d (node %d): hops=%d, reference %d", i, e.Node, e.Hops, hops[i])
		}
		if seen[e.Node] {
			t.Fatalf("node %d visited twice", e.Node)
		}
		seen[e.Node] = true

		// Op range: [prev OpsEnd, OpsEnd) must hold exactly the
		// reference's link checks for this node, in order.
		start := int32(0)
		if i > 0 {
			start = tour.Entries[i-1].OpsEnd
		}
		if e.OpsEnd < start {
			t.Fatalf("entry %d: OpsEnd=%d below range start %d", i, e.OpsEnd, start)
		}
		got := tour.Ops[start:e.OpsEnd]
		want := refOps[i]
		if len(got) != len(want) {
			t.Fatalf("entry %d (node %d): %d ops, reference %d", i, e.Node, len(got), len(want))
		}
		for j := range got {
			if got[j].Link != want[j].Link || got[j].Down != want[j].Down {
				t.Fatalf("entry %d op %d: (link=%d down=%v), reference (link=%d down=%v)",
					i, j, got[j].Link, got[j].Down, want[j].Link, want[j].Down)
			}
		}
		totalOps += len(got)

		// Span arithmetic: the region is the entry plus its pushees'
		// regions, and in LIFO pop order the pushee regions tile the rest
		// of the region contiguously, last-pushed first.
		sum := int32(1)
		next := int32(i) + 1
		for j := int(e.OpsEnd) - 1; j >= int(start); j-- {
			r := tour.Ops[j].Region
			if r != next {
				t.Fatalf("entry %d (node %d): op %d region starts at %d, want %d (contiguity)",
					i, e.Node, j, r, next)
			}
			sum += tour.Entries[r].Span
			next += tour.Entries[r].Span
		}
		if e.Span != sum {
			t.Fatalf("entry %d (node %d): Span=%d, pushee spans sum to %d", i, e.Node, e.Span, sum)
		}
	}
	if totalOps != len(tour.Ops) {
		t.Fatalf("op ranges cover %d ops, tour has %d", totalOps, len(tour.Ops))
	}

	// Coverage: a full flood visits every node exactly once; a subcast
	// visits exactly the origin's subtree.
	want := tree.NumNodes()
	if downOnly {
		want = len(tree.NodesBelow(origin))
	}
	if len(seen) != want {
		t.Fatalf("origin=%d downOnly=%v: visited %d nodes, want %d", origin, downOnly, len(seen), want)
	}
	if tour.Entries[0].Node != origin || tour.Entries[0].Span != int32(len(tour.Entries)) {
		t.Fatalf("root entry = %+v, want node %d spanning %d", tour.Entries[0], origin, len(tour.Entries))
	}
}

func TestFloodTourStructure(t *testing.T) {
	// The fixed tree every netsim test uses, then random trees of varied
	// shape; origins cover root, internal routers and leaves.
	trees := []*Tree{MustNew([]NodeID{None, 0, 0, 1, 1, 2, 5})}
	for seed := int64(0); seed < 10; seed++ {
		spec := GenSpec{Receivers: 4 + int(seed)*3, Depth: 2 + int(seed)%5}
		trees = append(trees, MustGenerate(sim.NewRNG(seed), spec))
	}
	for ti, tree := range trees {
		origins := []NodeID{tree.Root()}
		for id := NodeID(0); int(id) < tree.NumNodes(); id += NodeID(1 + tree.NumNodes()/7) {
			origins = append(origins, id)
		}
		origins = append(origins, NodeID(tree.NumNodes()-1))
		for _, origin := range origins {
			for _, downOnly := range []bool{false, true} {
				checkTour(t, tree, origin, downOnly)
			}
		}
		_ = ti
	}
}

func TestFloodTourLeafSubcast(t *testing.T) {
	// A subcast rooted at a leaf is the degenerate tour: one entry, no
	// link checks.
	tree := MustNew([]NodeID{None, 0})
	tour := tree.FloodTour(1, true)
	if len(tour.Entries) != 1 || len(tour.Ops) != 0 {
		t.Fatalf("tour = %+v, want a single entry and no ops", tour)
	}
	if tour.Entries[0].Span != 1 || tour.Entries[0].OpsEnd != 0 {
		t.Fatalf("entry = %+v, want span 1, no ops", tour.Entries[0])
	}
}
