package topology

import (
	"testing"

	"cesrm/internal/sim"
)

// TestPartitionSubtrees pins the shard-partition invariants the sharded
// dispatch mode relies on: subtree atomicity (a node always shares its
// parent's shard unless the parent is the root), bounded shard count,
// determinism, and the serial degenerate cases.
func TestPartitionSubtrees(t *testing.T) {
	tree := MustGenerate(sim.NewRNG(5), GenSpec{Receivers: 120, Depth: 5})

	for _, n := range []int{0, 1} {
		for node, s := range PartitionSubtrees(tree, n) {
			if s != 0 {
				t.Fatalf("n=%d: node %d on shard %d, want all on 0", n, node, s)
			}
		}
	}

	roots := tree.Children(tree.Root())
	for _, n := range []int{2, 3, 8, len(roots) + 5} {
		shardOf := PartitionSubtrees(tree, n)
		if len(shardOf) != tree.NumNodes() {
			t.Fatalf("n=%d: %d entries for %d nodes", n, len(shardOf), tree.NumNodes())
		}
		max := n
		if len(roots) < max {
			max = len(roots)
		}
		used := make(map[int32]bool)
		for node := 0; node < tree.NumNodes(); node++ {
			s := shardOf[node]
			if s < 0 || int(s) >= max {
				t.Fatalf("n=%d: node %d on shard %d, want [0,%d)", n, node, s, max)
			}
			used[s] = true
			p := tree.Parent(NodeID(node))
			if p != None && p != tree.Root() && shardOf[p] != s {
				t.Fatalf("n=%d: node %d on shard %d but parent %d on shard %d — subtree split",
					n, node, s, p, shardOf[p])
			}
		}
		if len(used) != max {
			t.Fatalf("n=%d: only %d of %d shards carry nodes", n, len(used), max)
		}
	}

	a := PartitionSubtrees(tree, 4)
	b := PartitionSubtrees(MustGenerate(sim.NewRNG(5), GenSpec{Receivers: 120, Depth: 5}), 4)
	for node := range a {
		if a[node] != b[node] {
			t.Fatalf("node %d shard differs across identical trees: %d vs %d", node, a[node], b[node])
		}
	}
}
