package topology

import (
	"testing"
	"testing/quick"

	"cesrm/internal/sim"
)

// chain builds 0 -> 1 -> 2 -> 3 (source, router, router, receiver).
func chain(t *testing.T) *Tree {
	t.Helper()
	tr, err := New([]NodeID{None, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

//	   0 (source)
//	  / \
//	 1   2
//	/ \   \
//
// 3   4   5
//
//	|
//	6
func sample(t *testing.T) *Tree {
	t.Helper()
	tr, err := New([]NodeID{None, 0, 0, 1, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewBasicProperties(t *testing.T) {
	tr := sample(t)
	if tr.Root() != 0 {
		t.Fatalf("Root = %d", tr.Root())
	}
	if tr.NumNodes() != 7 || tr.NumLinks() != 6 {
		t.Fatalf("NumNodes=%d NumLinks=%d", tr.NumNodes(), tr.NumLinks())
	}
	wantRecv := []NodeID{3, 4, 6}
	got := tr.Receivers()
	if len(got) != len(wantRecv) {
		t.Fatalf("Receivers = %v, want %v", got, wantRecv)
	}
	for i := range wantRecv {
		if got[i] != wantRecv[i] {
			t.Fatalf("Receivers = %v, want %v", got, wantRecv)
		}
	}
	if tr.MaxDepth() != 3 {
		t.Fatalf("MaxDepth = %d, want 3", tr.MaxDepth())
	}
	if tr.Depth(6) != 3 || tr.Depth(3) != 2 || tr.Depth(0) != 0 {
		t.Fatal("wrong depths")
	}
	if !tr.IsReceiver(3) || tr.IsReceiver(5) || tr.IsReceiver(0) {
		t.Fatal("IsReceiver misclassifies")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := map[string][]NodeID{
		"empty":          {},
		"no root":        {0, 0},
		"two roots":      {None, None},
		"out of range":   {None, 9},
		"self parent":    {None, 1},
		"cycle":          {None, 2, 1},
		"all leaf cycle": {1, 0},
	}
	for name, parents := range cases {
		if _, err := New(parents); err == nil {
			t.Errorf("%s: New(%v) succeeded, want error", name, parents)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid input")
		}
	}()
	MustNew([]NodeID{0})
}

func TestLCA(t *testing.T) {
	tr := sample(t)
	cases := []struct{ a, b, want NodeID }{
		{3, 4, 1},
		{3, 6, 0},
		{4, 5, 0},
		{6, 5, 5},
		{6, 6, 6},
		{0, 6, 0},
		{1, 3, 1},
	}
	for _, c := range cases {
		if got := tr.LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := tr.LCA(c.b, c.a); got != c.want {
			t.Errorf("LCA(%d,%d) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestHopCount(t *testing.T) {
	tr := sample(t)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{3, 4, 2},
		{3, 6, 5},
		{0, 6, 3},
		{6, 6, 0},
		{5, 6, 1},
	}
	for _, c := range cases {
		if got := tr.HopCount(c.a, c.b); got != c.want {
			t.Errorf("HopCount(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	tr := sample(t)
	if !tr.IsAncestor(0, 6) || !tr.IsAncestor(2, 6) || !tr.IsAncestor(6, 6) {
		t.Fatal("expected ancestor relations missing")
	}
	if tr.IsAncestor(1, 6) || tr.IsAncestor(6, 0) || tr.IsAncestor(3, 4) {
		t.Fatal("unexpected ancestor relations")
	}
}

func TestPathLinks(t *testing.T) {
	tr := sample(t)
	// 3 -> 6: up 3,1 then down 2,5,6.
	got := tr.PathLinks(3, 6)
	want := []LinkID{3, 1, 2, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("PathLinks(3,6) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PathLinks(3,6) = %v, want %v", got, want)
		}
	}
	if got := tr.PathLinks(6, 6); len(got) != 0 {
		t.Fatalf("PathLinks(6,6) = %v, want empty", got)
	}
	// Source to receiver is pure descent.
	got = tr.PathLinks(0, 4)
	want = []LinkID{1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PathLinks(0,4) = %v, want %v", got, want)
		}
	}
}

func TestTurningPoint(t *testing.T) {
	tr := sample(t)
	if tp := tr.TurningPoint(4, 3); tp != 1 {
		t.Fatalf("TurningPoint(4,3) = %d, want 1", tp)
	}
	if tp := tr.TurningPoint(3, 6); tp != 0 {
		t.Fatalf("TurningPoint(3,6) = %d, want 0", tp)
	}
}

func TestNodesBelowAndReceiversBelow(t *testing.T) {
	tr := sample(t)
	nodes := tr.NodesBelow(1)
	if len(nodes) != 3 || nodes[0] != 1 {
		t.Fatalf("NodesBelow(1) = %v", nodes)
	}
	rs := tr.ReceiversBelow(2)
	if len(rs) != 1 || rs[0] != 6 {
		t.Fatalf("ReceiversBelow(2) = %v, want [6]", rs)
	}
	links := tr.LinksBelow(2)
	if len(links) != 2 {
		t.Fatalf("LinksBelow(2) = %v, want 2 links", links)
	}
}

func TestLinksExcludesRoot(t *testing.T) {
	tr := chain(t)
	links := tr.Links()
	if len(links) != 3 {
		t.Fatalf("Links = %v, want 3 entries", links)
	}
	for _, l := range links {
		if l == tr.Root() {
			t.Fatal("Links contains root")
		}
	}
}

func TestParentVectorRoundTrip(t *testing.T) {
	tr := sample(t)
	clone, err := New(tr.ParentVector())
	if err != nil {
		t.Fatal(err)
	}
	if clone.NumNodes() != tr.NumNodes() || clone.MaxDepth() != tr.MaxDepth() {
		t.Fatal("round-trip changed tree shape")
	}
	// Mutating the returned vector must not corrupt the tree.
	pv := tr.ParentVector()
	pv[1] = 99
	if tr.Parent(1) == 99 {
		t.Fatal("ParentVector aliases internal state")
	}
}

func TestGenerateMeetsSpec(t *testing.T) {
	specs := []GenSpec{
		{Receivers: 1, Depth: 2},
		{Receivers: 8, Depth: 3},
		{Receivers: 12, Depth: 6},
		{Receivers: 15, Depth: 7},
		{Receivers: 10, Depth: 4},
		{Receivers: 30, Depth: 5},
	}
	for _, spec := range specs {
		for seed := int64(0); seed < 5; seed++ {
			tr, err := Generate(sim.NewRNG(seed), spec)
			if err != nil {
				t.Fatalf("%+v seed=%d: %v", spec, seed, err)
			}
			if tr.NumReceivers() != spec.Receivers {
				t.Errorf("%+v seed=%d: receivers=%d", spec, seed, tr.NumReceivers())
			}
			if tr.MaxDepth() != spec.Depth {
				t.Errorf("%+v seed=%d: depth=%d want %d", spec, seed, tr.MaxDepth(), spec.Depth)
			}
			// Every internal node must lead to a receiver and every leaf
			// must be a receiver.
			for n := 0; n < tr.NumNodes(); n++ {
				id := NodeID(n)
				if tr.IsLeaf(id) && id != tr.Root() && !tr.IsReceiver(id) {
					t.Errorf("%+v seed=%d: leaf router %d", spec, seed, id)
				}
				if !tr.IsLeaf(id) && len(tr.ReceiversBelow(id)) == 0 {
					t.Errorf("%+v seed=%d: router %d has no receivers below", spec, seed, id)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Receivers: 12, Depth: 5}
	a := MustGenerate(sim.NewRNG(99), spec).ParentVector()
	b := MustGenerate(sim.NewRNG(99), spec).ParentVector()
	if len(a) != len(b) {
		t.Fatal("same seed produced different trees")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different trees")
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	if _, err := Generate(sim.NewRNG(1), GenSpec{Receivers: 0, Depth: 3}); err == nil {
		t.Fatal("accepted zero receivers")
	}
	if _, err := Generate(sim.NewRNG(1), GenSpec{Receivers: 5, Depth: 1}); err == nil {
		t.Fatal("accepted depth 1")
	}
}

// lcaHopCount is the reference hop-count computation the precomputed
// matrix must agree with.
func lcaHopCount(tr *Tree, a, b NodeID) int {
	l := tr.LCA(a, b)
	return (tr.Depth(a) - tr.Depth(l)) + (tr.Depth(b) - tr.Depth(l))
}

func TestHopMatrixMatchesLCA(t *testing.T) {
	// Random trees small enough to get the matrix: every pair must agree
	// with the LCA-based computation.
	for seed := int64(0); seed < 10; seed++ {
		spec := GenSpec{Receivers: 5 + int(seed)*3, Depth: 3 + int(seed)%4}
		tr := MustGenerate(sim.NewRNG(seed), spec)
		if tr.hops == nil {
			t.Fatalf("seed=%d: hop matrix not built for %d-node tree", seed, tr.NumNodes())
		}
		n := tr.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				got := tr.HopCount(NodeID(a), NodeID(b))
				want := lcaHopCount(tr, NodeID(a), NodeID(b))
				if got != want {
					t.Fatalf("seed=%d: HopCount(%d,%d) = %d, want %d", seed, a, b, got, want)
				}
			}
		}
	}
}

func TestHopMatrixFallbackAboveThreshold(t *testing.T) {
	// A chain longer than hopMatrixMaxNodes must skip the matrix and
	// still answer correctly via the LCA fallback.
	n := hopMatrixMaxNodes + 10
	parents := make([]NodeID, n)
	parents[0] = None
	for i := 1; i < n; i++ {
		parents[i] = NodeID(i - 1)
	}
	tr := MustNew(parents)
	if tr.hops != nil {
		t.Fatalf("hop matrix built for %d-node tree, threshold is %d", n, hopMatrixMaxNodes)
	}
	if got := tr.HopCount(0, NodeID(n-1)); got != n-1 {
		t.Fatalf("HopCount(0,%d) = %d, want %d", n-1, got, n-1)
	}
	if got := tr.HopCount(NodeID(3), NodeID(7)); got != 4 {
		t.Fatalf("HopCount(3,7) = %d, want 4", got)
	}
}

func TestPropertyHopCountTriangle(t *testing.T) {
	// Property: on random trees, hop count is a metric — symmetric, zero
	// iff equal, and satisfying the triangle inequality.
	f := func(seed int64, rc, dc uint8) bool {
		spec := GenSpec{Receivers: int(rc%20) + 2, Depth: int(dc%5) + 2}
		tr, err := Generate(sim.NewRNG(seed), spec)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed + 1)
		n := tr.NumNodes()
		for i := 0; i < 20; i++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			c := NodeID(rng.Intn(n))
			if tr.HopCount(a, b) != tr.HopCount(b, a) {
				return false
			}
			if (tr.HopCount(a, b) == 0) != (a == b) {
				return false
			}
			if tr.HopCount(a, c) > tr.HopCount(a, b)+tr.HopCount(b, c) {
				return false
			}
			if len(tr.PathLinks(a, b)) != tr.HopCount(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
