package topology

import (
	"fmt"

	"cesrm/internal/sim"
)

// GenSpec parameterizes random tree generation. Receivers become the
// tree's leaves; Depth is the exact maximum root-to-leaf link count.
type GenSpec struct {
	// Receivers is the number of leaf hosts; must be >= 1.
	Receivers int
	// Depth is the exact depth of the deepest receiver; must be >= 2 so
	// that at least one router sits between source and receivers.
	Depth int
	// Branch is the probability of growing a fresh router under a random
	// existing router while there are receivers left to place. Zero
	// selects the default of 0.4.
	Branch float64
}

// Generate builds a random multicast tree matching spec. The same RNG
// state always yields the same tree. The resulting tree satisfies:
// leaves are exactly the receivers, the deepest receiver sits at exactly
// spec.Depth links from the source, and every router has at least one
// descendant receiver.
func Generate(rng *sim.RNG, spec GenSpec) (*Tree, error) {
	if spec.Receivers < 1 {
		return nil, fmt.Errorf("topology: invalid receiver count %d", spec.Receivers)
	}
	if spec.Depth < 2 {
		return nil, fmt.Errorf("topology: invalid depth %d (need >= 2)", spec.Depth)
	}
	branch := spec.Branch
	if branch == 0 {
		branch = 0.4
	}

	// Node 0 is the source. Build a router backbone of spec.Depth-1
	// routers so the deepest receiver lands exactly at spec.Depth.
	parents := []NodeID{None}
	routerDepth := []int{0} // depth per node in parents; receivers tracked separately
	routers := []NodeID{0}  // candidate attachment points (includes source)
	for d := 1; d < spec.Depth; d++ {
		id := NodeID(len(parents))
		parents = append(parents, routers[len(routers)-1])
		routerDepth = append(routerDepth, d)
		routers = append(routers, id)
	}
	deepest := routers[len(routers)-1]

	// First receiver hangs off the deepest backbone router, pinning the
	// tree's depth.
	receiverParents := []NodeID{deepest}

	// Place remaining receivers, occasionally growing new routers to
	// diversify the shape. New routers never exceed depth spec.Depth-1 so
	// their receivers stay within spec.Depth.
	for placed := 1; placed < spec.Receivers; placed++ {
		if rng.Float64() < branch {
			// Grow a router under a random router shallower than the
			// backbone floor.
			var shallow []int
			for i, r := range routers {
				_ = r
				if routerDepth[routers[i]] < spec.Depth-1 {
					shallow = append(shallow, i)
				}
			}
			if len(shallow) > 0 {
				pi := routers[shallow[rng.Intn(len(shallow))]]
				id := NodeID(len(parents))
				parents = append(parents, pi)
				routerDepth = append(routerDepth, routerDepth[pi]+1)
				routers = append(routers, id)
			}
		}
		// Attach the receiver to a random router other than the source
		// when possible (receivers directly under the source would make
		// depth-1 leaves, which the MBone traces do not exhibit).
		candidates := routers[1:]
		p := candidates[rng.Intn(len(candidates))]
		receiverParents = append(receiverParents, p)
	}

	// Materialize receivers after routers so router IDs are contiguous.
	full := make([]NodeID, 0, len(parents)+len(receiverParents))
	full = append(full, parents...)
	for _, p := range receiverParents {
		full = append(full, p)
	}

	// Drop routers with no descendant receivers: they would be childless
	// leaves, which New would misclassify as receivers. Iterate until
	// fixpoint since removing one router can orphan its parent.
	for {
		hasChild := make([]bool, len(full))
		for i, p := range full {
			_ = i
			if p != None {
				hasChild[p] = true
			}
		}
		removed := false
		keep := make([]bool, len(full))
		for i := range full {
			isRouter := i < len(parents)
			if isRouter && i != 0 && !hasChild[i] {
				removed = true
				continue
			}
			keep[i] = true
		}
		if !removed {
			break
		}
		remap := make([]NodeID, len(full))
		next := NodeID(0)
		for i := range full {
			if keep[i] {
				remap[i] = next
				next++
			} else {
				remap[i] = None
			}
		}
		compact := make([]NodeID, 0, int(next))
		newRouterCount := 0
		for i, p := range full {
			if !keep[i] {
				continue
			}
			if p == None {
				compact = append(compact, None)
			} else {
				compact = append(compact, remap[p])
			}
			if i < len(parents) {
				newRouterCount++
			}
		}
		full = compact
		parents = parents[:newRouterCount] // only the length matters below
	}

	return New(full)
}

// MustGenerate is Generate panicking on error, for static catalogs whose
// specs are known valid.
func MustGenerate(rng *sim.RNG, spec GenSpec) *Tree {
	t, err := Generate(rng, spec)
	if err != nil {
		panic(err)
	}
	return t
}
