package topology

import "sort"

// PartitionSubtrees splits the tree into at most n dispatch shards for
// the sharded simulation mode: each of the root's child subtrees is
// assigned wholly to one shard, subtrees are greedily bin-packed by
// descending receiver count onto the least-loaded shard, and the root
// itself lands on shard 0. Keeping every subtree intact means two nodes
// in different shards can only interact through the root, which is
// exactly the independence the same-instant batch dispatch relies on:
// a packet in flight between shards is a scheduled delivery event, and
// deliveries are labeled with the receiving node's shard.
//
// The result maps every node to its shard. Ties break on the lower
// child NodeID, so the partition is a pure function of the tree. With
// n < 2 (or a tree with a bare root) all nodes map to shard 0.
func PartitionSubtrees(t *Tree, n int) []int32 {
	shardOf := make([]int32, t.NumNodes())
	roots := t.Children(t.Root())
	if n < 2 || len(roots) == 0 {
		return shardOf
	}
	if n > len(roots) {
		n = len(roots)
	}

	// Weigh each subtree by its receiver count (the event population is
	// dominated by per-receiver timers and deliveries); order by weight
	// descending, NodeID ascending, for a deterministic greedy packing.
	type subtree struct {
		root   NodeID
		weight int
	}
	subs := make([]subtree, len(roots))
	for i, r := range roots {
		subs[i] = subtree{root: r, weight: len(t.ReceiversBelow(r))}
	}
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].weight != subs[j].weight {
			return subs[i].weight > subs[j].weight
		}
		return subs[i].root < subs[j].root
	})

	loads := make([]int, n)
	for _, sub := range subs {
		best := 0
		for s := 1; s < n; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		loads[best] += sub.weight
		for _, node := range t.NodesBelow(sub.root) {
			shardOf[node] = int32(best)
		}
	}
	return shardOf
}
