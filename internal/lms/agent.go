package lms

import (
	"fmt"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// NAKMsg is an LMS negative acknowledgment, unicast from a requestor
// via its turning-point router to the designated replier.
type NAKMsg struct {
	// Seq is the missing packet.
	Seq int
	// Requestor is the host that detected the loss.
	Requestor topology.NodeID
	// TurningPoint is the router that turned the NAK toward the replier.
	TurningPoint topology.NodeID
	// OriginChild is the turning point's child on the requestor's side;
	// the repair is subcast into that subtree.
	OriginChild topology.NodeID
}

// RepairMsg is an LMS retransmission, unicast to the origin subtree's
// head and subcast below it.
type RepairMsg struct {
	// Seq is the retransmitted packet.
	Seq int
	// Replier is the retransmitting host.
	Replier topology.NodeID
	// Requestor is the host whose NAK instigated the repair.
	Requestor topology.NodeID
}

// Config parameterizes an LMS endpoint.
type Config struct {
	// HeartbeatPeriod is the source's state-advertisement interval
	// (LMS's analogue of session messages; excluded from recovery
	// overhead like SRM's session stream). Zero selects 1 s.
	HeartbeatPeriod time.Duration
	// RetrySlack pads the NAK retransmission timeout beyond the
	// requestor-replier round trip. Zero selects 50 ms.
	RetrySlack time.Duration
	// DetectionSlack delays heartbeat-triggered loss detection, covering
	// in-flight data serialization skew. Zero selects 50 ms.
	DetectionSlack time.Duration
	// MaxBackoff caps the NAK retry back-off exponent. Zero selects 16.
	MaxBackoff int
}

func (c *Config) applyDefaults() {
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = time.Second
	}
	if c.RetrySlack == 0 {
		c.RetrySlack = 50 * time.Millisecond
	}
	if c.DetectionSlack == 0 {
		c.DetectionSlack = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 16
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.HeartbeatPeriod < 0 || c.RetrySlack < 0 || c.DetectionSlack < 0 || c.MaxBackoff < 0 {
		return fmt.Errorf("lms: negative config value: %+v", c)
	}
	return nil
}

// lossState tracks one outstanding loss on a requestor.
type lossState struct {
	detectedAt  sim.Time
	recovered   bool
	recoveredAt sim.Time
	retries     int
	timer       sim.Timer
}

// pendingNAK is a NAK a replier could not serve yet (it shares the
// loss); it is served as soon as the packet is recovered.
type pendingNAK struct {
	turningPoint topology.NodeID
	originChild  topology.NodeID
	requestor    topology.NodeID
}

// Agent is one LMS endpoint for a single-source transmission rooted at
// the tree root. It implements netsim.Host.
type Agent struct {
	id     topology.NodeID
	source topology.NodeID
	eng    sim.Sched
	net    netsim.Endpoint
	fabric *Fabric
	cfg    Config
	obs    srm.Observer

	// base is the release watermark: per-packet state for sequence
	// numbers below it has been discarded mid-run (see ReleaseThrough).
	// received, losses and pending are indexed by seq-base. held is the
	// length of the contiguous received prefix; base ≤ held ≤ cursor.
	base          int
	held          int
	received      []bool
	cursor        int
	highestKnown  int
	advertPending int

	// losses and pending are dense seq-indexed windows (nil/empty = no
	// state for that packet), mirroring the srm.Agent slice conversion:
	// per-packet map hashing is avoidable because sequence numbers are
	// contiguous from 0.
	losses  []*lossState
	pending [][]pendingNAK
	// outstanding counts detected-but-unrecovered losses, keeping the
	// monitor's per-period Outstanding polls O(1).
	outstanding int

	stopped bool
	crashed bool
	// absent marks a graceful departure (Leave without a later Join);
	// lateJoin arms the one-shot reliability floor a rejoining host
	// applies at its first post-join contact with the stream.
	absent   bool
	lateJoin bool
	// heartbeatTimer is the pending self-rescheduling heartbeat tick
	// (source only), retained so Crash can cancel it.
	heartbeatTimer sim.Timer
}

var _ netsim.Host = (*Agent)(nil)

// NewAgent constructs an LMS endpoint at node id and registers it with
// the network. obs may be nil.
func NewAgent(eng sim.Sched, net netsim.Endpoint, fabric *Fabric, id topology.NodeID, cfg Config, obs srm.Observer) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	if obs == nil {
		obs = srm.NopObserver{}
	}
	a := &Agent{
		id:            id,
		source:        net.Tree().Root(),
		eng:           eng,
		net:           net,
		fabric:        fabric,
		cfg:           cfg,
		obs:           obs,
		highestKnown:  -1,
		advertPending: -1,
	}
	net.AttachHost(id, a)
	return a, nil
}

// ID returns the agent's node.
func (a *Agent) ID() topology.NodeID { return a.id }

// StartSessions begins the source's periodic heartbeat; receivers do
// nothing (the method exists for harness symmetry with SRM/CESRM).
func (a *Agent) StartSessions() {
	if a.id != a.source {
		return
	}
	a.heartbeatTimer = a.eng.Schedule(a.cfg.HeartbeatPeriod, a.heartbeatTick)
}

func (a *Agent) heartbeatTick(now sim.Time) {
	if a.stopped {
		return
	}
	m := &srm.SessionMsg{From: a.id, SentAt: now}
	if a.highestKnown >= 0 {
		m.Highest = map[topology.NodeID]int{a.source: a.highestKnown}
	}
	a.net.Multicast(a.id, &netsim.Packet{Class: netsim.Control, Session: true, Msg: m})
	a.obs.SessionSent(a.id)
	a.heartbeatTimer = a.eng.Schedule(a.cfg.HeartbeatPeriod, a.heartbeatTick)
}

// Stop halts heartbeat rescheduling. Like srm.Agent.Stop, the armed
// tick drains inertly rather than being cancelled, preserving the final
// virtual time crash-free run fingerprints digest.
func (a *Agent) Stop() { a.stopped = true }

// Crash makes the host fail-stop and reports the failure to the fabric,
// whose routers route around it only after the refresh delay.
func (a *Agent) Crash() {
	a.crashed = true
	a.stopped = true
	a.cancelTimers()
	a.fabric.ReportCrash(a.id)
}

// cancelTimers cancels the heartbeat tick and every armed NAK retry.
func (a *Agent) cancelTimers() {
	a.eng.Cancel(a.heartbeatTimer)
	for _, ls := range a.losses {
		if ls != nil {
			a.eng.Cancel(ls.timer)
		}
	}
}

// Crashed reports whether Crash has been called.
func (a *Agent) Crashed() bool { return a.crashed }

// Restart rejoins a crashed host with amnesia: reception and loss state
// is discarded and rebuilt from the source's heartbeats (the host
// re-detects everything it is missing and NAKs it), and the fabric is
// told the host is back — routers re-designate repliers only after the
// refresh delay, the same staleness window crashes suffer. Restarting a
// live host panics.
func (a *Agent) Restart() {
	if !a.crashed {
		panic(fmt.Sprintf("lms: restarting host %d that never crashed", a.id))
	}
	a.crashed = false
	a.stopped = false
	a.base = 0
	a.held = 0
	a.received = nil
	a.cursor = 0
	a.highestKnown = -1
	a.advertPending = -1
	a.losses = nil
	a.pending = nil
	a.outstanding = 0
	a.fabric.ReportRestart(a.id)
	a.StartSessions()
}

// Leave makes the host depart gracefully: it goes silent (no NAKs, no
// repairs, no heartbeats) and its failure is announced to the fabric so
// routers re-designate repliers — the same staleness window a crash
// suffers, but without amnesia. Leaving a crashed or already-absent
// host panics.
func (a *Agent) Leave() {
	if a.crashed {
		panic(fmt.Sprintf("lms: crashed host %d leaving", a.id))
	}
	if a.absent {
		panic(fmt.Sprintf("lms: absent host %d leaving twice", a.id))
	}
	a.absent = true
	a.stopped = true
	a.cancelTimers()
	a.fabric.ReportCrash(a.id)
}

// Join rejoins a departed host. Per-packet reception state is rebuilt
// with a late-join reliability floor: the first post-join contact with
// the stream (data, heartbeat advert, NAK or repair) opens the window
// there, so the host never chases packets sent while it was out of the
// group. Joining a present host panics.
func (a *Agent) Join() {
	if !a.absent {
		panic(fmt.Sprintf("lms: present host %d joining", a.id))
	}
	a.absent = false
	a.stopped = false
	a.lateJoin = true
	a.base = 0
	a.held = 0
	a.received = nil
	a.cursor = 0
	a.highestKnown = -1
	a.advertPending = -1
	a.losses = nil
	a.pending = nil
	a.outstanding = 0
	a.fabric.ReportRestart(a.id)
	a.StartSessions()
}

// Absent reports whether the host has left and not rejoined.
func (a *Agent) Absent() bool { return a.absent }

// AbandonedIn reports losses abandoned after bounded retries. LMS never
// abandons — its NAK retries are bounded-exponential but unbounded in
// count, and the single source never leaves — so it is always zero; the
// method exists for reconciliation symmetry with srm.Agent.
func (a *Agent) AbandonedIn(source topology.NodeID) int { return 0 }

// floorTo applies the one-shot late-join reliability floor: sequence
// numbers below floor are treated as held (Has is true below base, the
// same convention state release uses), so detection starts at the first
// post-join packet rather than seq 0.
func (a *Agent) floorTo(floor int) {
	if !a.lateJoin || a.id == a.source {
		return
	}
	a.lateJoin = false
	if floor <= 0 {
		return
	}
	a.base = floor
	a.held = floor
	a.cursor = floor
}

// Transmit multicasts original packet seq; only the source may call it.
func (a *Agent) Transmit(seq int) {
	if a.id != a.source {
		panic(fmt.Sprintf("lms: non-source host %d transmitting", a.id))
	}
	a.markReceived(seq)
	a.noteExists(seq)
	a.cursor = seq + 1
	a.net.Multicast(a.id, &netsim.Packet{Class: netsim.Payload, Msg: &srm.DataMsg{Source: a.id, Seq: seq}})
}

// Has reports possession of packet seq. Released sequence numbers
// report true: release is gated on every live host holding them.
func (a *Agent) Has(seq int) bool {
	if seq < 0 {
		return false
	}
	if seq < a.base {
		return true
	}
	idx := seq - a.base
	return idx < len(a.received) && a.received[idx]
}

// ReleasableThrough returns the watermark through which this host's
// per-packet state could be discarded right now: the contiguous
// received prefix. Unlike SRM there is no replier-side timer or
// abstinence state to wait out — a repair for a held packet is sent
// synchronously from the reception path, and pending NAKs for a packet
// are flushed the moment it arrives — so holding a packet is the whole
// safety condition. The source parameter exists for interface symmetry
// with srm.Agent and is ignored (LMS is single-stream).
func (a *Agent) ReleasableThrough(source topology.NodeID) int { return a.held }

// ReleaseThrough discards per-packet state below n. The experiment
// layer calls it only after every live host reported ReleasableThrough
// ≥ n and a drain lag covered in-flight traffic. A NAK straggling in
// for a released sequence is still served correctly: Has reports true,
// so the repair path runs exactly as it would have before release. No
// engine operations happen here, so release is invisible to the run's
// event stream and fingerprint.
func (a *Agent) ReleaseThrough(source topology.NodeID, n int) {
	if n > a.held {
		n = a.held
	}
	if n <= a.base {
		return
	}
	drop := n - a.base
	a.received = dropPrefix(a.received, drop)
	a.losses = dropPrefix(a.losses, drop)
	a.pending = dropPrefix(a.pending, drop)
	a.base = n
}

// dropPrefix returns s without its first drop elements, in a fresh
// exact-size backing array (nil when nothing survives).
func dropPrefix[T any](s []T, drop int) []T {
	if drop >= len(s) {
		return nil
	}
	tail := make([]T, len(s)-drop)
	copy(tail, s[drop:])
	return tail
}

// PacketWindow returns the number of per-seq state cells currently
// retained; tests pin release effectiveness with it.
func (a *Agent) PacketWindow() int {
	return len(a.received) + len(a.losses) + len(a.pending)
}

// MissingIn returns how many of [0, n) the agent lacks. The source
// parameter exists for interface symmetry with srm.Agent and must be
// the tree root.
func (a *Agent) MissingIn(source topology.NodeID, n int) int {
	missing := 0
	for i := 0; i < n; i++ {
		if !a.Has(i) {
			missing++
		}
	}
	return missing
}

// ClassifiedThrough returns the first unclassified sequence number.
func (a *Agent) ClassifiedThrough(source topology.NodeID) int { return a.cursor }

// RecoveryTime returns when packet seq was recovered, if this host
// detected its loss and has since recovered it.
func (a *Agent) RecoveryTime(seq int) (sim.Time, bool) {
	ls := a.loss(seq)
	if ls == nil || !ls.recovered {
		return 0, false
	}
	return ls.recoveredAt, true
}

// Outstanding returns the number of unrecovered detected losses.
func (a *Agent) Outstanding() int { return a.outstanding }

// loss returns the loss state for seq, nil when never detected lost or
// released.
func (a *Agent) loss(seq int) *lossState {
	idx := seq - a.base
	if idx < 0 || idx >= len(a.losses) {
		return nil
	}
	return a.losses[idx]
}

// markReceived records possession of seq and advances the held prefix.
// seq is never below base: Has(seq < base) is true, so every arrival
// path deduplicates released packets first.
func (a *Agent) markReceived(seq int) {
	idx := seq - a.base
	for len(a.received) <= idx {
		a.received = append(a.received, false)
	}
	a.received[idx] = true
	for a.held-a.base < len(a.received) && a.received[a.held-a.base] {
		a.held++
	}
}

func (a *Agent) noteExists(seq int) {
	if seq > a.highestKnown {
		a.highestKnown = seq
	}
}

// Deliver implements netsim.Host.
func (a *Agent) Deliver(now sim.Time, p *netsim.Packet) {
	if a.crashed || a.absent {
		return
	}
	switch m := p.Msg.(type) {
	case *srm.DataMsg:
		a.receivePacket(now, m.Seq, topology.None, topology.None)
	case *srm.SessionMsg:
		a.onHeartbeat(now, m)
	case *NAKMsg:
		a.onNAK(now, m)
	case *RepairMsg:
		a.receivePacket(now, m.Seq, m.Requestor, m.Replier)
	default:
		panic(fmt.Sprintf("lms: host %d received unknown message %T", a.id, p.Msg))
	}
}

func (a *Agent) receivePacket(now sim.Time, seq int, requestor, replier topology.NodeID) {
	a.floorTo(seq)
	a.noteExists(seq)
	if a.Has(seq) {
		return
	}
	a.markReceived(seq)
	if ls := a.loss(seq); ls != nil && !ls.recovered {
		ls.recovered = true
		ls.recoveredAt = now
		a.outstanding--
		a.eng.Cancel(ls.timer)
		a.obs.Recovered(a.id, a.source, seq, now, srm.RecoveryInfo{
			Requestor:   requestor,
			Replier:     replier,
			OwnRequests: ls.retries + 1,
		})
	}
	a.detectThrough(now, seq-1)
	if a.cursor == seq {
		a.cursor = seq + 1
	}
	// Serve NAKs that were waiting on this packet.
	if idx := seq - a.base; idx < len(a.pending) && len(a.pending[idx]) > 0 {
		waiting := a.pending[idx]
		a.pending[idx] = nil
		for _, w := range waiting {
			a.sendRepair(seq, w)
		}
	}
}

func (a *Agent) detectThrough(now sim.Time, x int) {
	if a.id == a.source {
		return
	}
	for ; a.cursor <= x; a.cursor++ {
		if !a.Has(a.cursor) {
			a.detectLoss(now, a.cursor)
		}
	}
}

// detectLoss begins LMS recovery: the NAK goes out immediately — no
// suppression delay, the point of router-assisted recovery — and
// retries with exponential back-off until the repair arrives.
func (a *Agent) detectLoss(now sim.Time, seq int) {
	if a.loss(seq) != nil {
		return
	}
	ls := &lossState{detectedAt: now}
	// seq is never below base: losses are detected at the cursor, which
	// never trails the release watermark.
	idx := seq - a.base
	for len(a.losses) <= idx {
		a.losses = append(a.losses, nil)
	}
	a.losses[idx] = ls
	a.outstanding++
	a.obs.LossDetected(a.id, a.source, seq, now)
	a.sendNAK(now, seq, ls)
}

func (a *Agent) sendNAK(now sim.Time, seq int, ls *lossState) {
	if ls.recovered {
		return
	}
	tp, origin, replier, err := a.fabric.Route(a.id)
	retryIn := a.cfg.RetrySlack * time.Duration(uint64(1)<<uint(min(ls.retries, a.cfg.MaxBackoff)))
	if err == nil {
		m := &NAKMsg{Seq: seq, Requestor: a.id, TurningPoint: tp, OriginChild: origin}
		a.net.Unicast(a.id, replier, &netsim.Packet{Class: netsim.Control, Msg: m})
		a.obs.RequestSent(a.id, a.source, seq, ls.retries)
		retryIn += 2 * a.net.RTT(a.id, replier)
	}
	ls.retries++
	ls.timer = a.eng.Schedule(retryIn, func(now sim.Time) {
		a.sendNAK(now, seq, ls)
	})
}

// onNAK serves a repair if this host has the packet, or queues the NAK
// until it does (the designated replier may share the loss).
func (a *Agent) onNAK(now sim.Time, m *NAKMsg) {
	a.floorTo(m.Seq + 1)
	w := pendingNAK{turningPoint: m.TurningPoint, originChild: m.OriginChild, requestor: m.Requestor}
	if a.Has(m.Seq) {
		a.sendRepair(m.Seq, w)
		return
	}
	// Deduplicate by origin subtree: one repair per subtree suffices.
	// m.Seq is never below base here: Has(seq < base) is true, so a
	// straggling NAK for a released packet took the sendRepair path above.
	idx := m.Seq - a.base
	for len(a.pending) <= idx {
		a.pending = append(a.pending, nil)
	}
	for _, p := range a.pending[idx] {
		if p.originChild == w.originChild {
			return
		}
	}
	a.pending[idx] = append(a.pending[idx], w)
	a.noteExists(m.Seq)
	// The replier shares the loss: make sure its own recovery is under
	// way (it may not have detected the gap yet).
	a.detectThrough(now, m.Seq)
}

// sendRepair unicasts the retransmission to the origin subtree's head
// and subcasts it below — LMS's localized recovery.
func (a *Agent) sendRepair(seq int, w pendingNAK) {
	m := &RepairMsg{Seq: seq, Replier: a.id, Requestor: w.requestor}
	pkt := &netsim.Packet{Class: netsim.Payload, Msg: m}
	a.net.UnicastThenSubcast(a.id, w.originChild, pkt)
	a.obs.ReplySent(a.id, a.source, seq, false)
}

// onHeartbeat performs heartbeat-advertised tail-loss detection with
// serialization slack, mirroring the SRM session mechanism.
func (a *Agent) onHeartbeat(now sim.Time, m *srm.SessionMsg) {
	highest, ok := m.Highest[a.source]
	if !ok || highest < 0 {
		return
	}
	a.floorTo(highest + 1)
	a.noteExists(highest)
	if a.id == a.source || highest < a.cursor || highest <= a.advertPending {
		return
	}
	a.advertPending = highest
	h := highest
	a.eng.Schedule(a.cfg.DetectionSlack, func(now sim.Time) {
		// Fire-and-forget, so Crash cannot cancel it: a crashed host
		// must not detect losses (the NAK timers it would arm are not
		// covered by Crash's cancel sweep and would retry forever). A
		// post-restart firing is harmless — state lives on the agent and
		// re-detection is exactly what a restarted host does anyway.
		if a.crashed || a.absent {
			return
		}
		a.detectThrough(now, h)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
