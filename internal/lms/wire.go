package lms

import "cesrm/internal/netsim"

// Stable wire identifiers for LMS's message types (the 1–7 range is
// reserved for SRM/CESRM). Never renumber.
const (
	// WireNAK identifies NAKMsg.
	WireNAK netsim.MsgType = 8
	// WireRepair identifies RepairMsg.
	WireRepair netsim.MsgType = 9
)

func init() {
	netsim.RegisterMessage(WireNAK, (*NAKMsg)(nil), netsim.MsgCodec{
		Name: "lms.NAKMsg",
		Encode: func(e *netsim.Encoder, msg any) {
			m := msg.(*NAKMsg)
			e.Int(m.Seq)
			e.Node(m.Requestor)
			e.Node(m.TurningPoint)
			e.Node(m.OriginChild)
		},
		Decode: func(d *netsim.Decoder) any {
			return &NAKMsg{
				Seq:          d.Int(),
				Requestor:    d.Node(),
				TurningPoint: d.Node(),
				OriginChild:  d.Node(),
			}
		},
	})
	netsim.RegisterMessage(WireRepair, (*RepairMsg)(nil), netsim.MsgCodec{
		Name: "lms.RepairMsg",
		Encode: func(e *netsim.Encoder, msg any) {
			m := msg.(*RepairMsg)
			e.Int(m.Seq)
			e.Node(m.Replier)
			e.Node(m.Requestor)
		},
		Decode: func(d *netsim.Decoder) any {
			return &RepairMsg{
				Seq:       d.Int(),
				Replier:   d.Node(),
				Requestor: d.Node(),
			}
		},
	})
}
