package lms

import (
	"testing"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// TestCrashCancelsHeartbeatTimer pins the fail-stop cleanup: the
// source's armed heartbeat tick must not survive a crash in the event
// queue.
func TestCrashCancelsHeartbeatTimer(t *testing.T) {
	b := newBed(t, time.Second)
	b.agents[0].StartSessions()
	if got := b.eng.Pending(); got != 1 {
		t.Fatalf("Pending = %d after StartSessions, want 1", got)
	}
	b.agents[0].Crash()
	// The one remaining event is the fabric's deferred crash-refresh;
	// before the fix the armed heartbeat survived too (Pending = 2).
	if got := b.eng.Pending(); got != 1 {
		t.Fatalf("Pending = %d after Crash, want 1 (heartbeat must be cancelled)", got)
	}
}

func TestRestartPanicsForLiveHost(t *testing.T) {
	b := newBed(t, time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("Restart of a never-crashed host did not panic")
		}
	}()
	b.agents[3].Restart()
}

// TestRestartRedesignatesReplier crashes the designated replier of a
// subtree and restarts it: the fabric routes around the dead host, and
// after the restart plus the refresh staleness window the host is
// designated again.
func TestRestartRedesignatesReplier(t *testing.T) {
	refresh := 200 * time.Millisecond
	b := newBed(t, refresh)
	if got := b.fabric.ReplierOf(1); got != 3 {
		t.Fatalf("replier(1) = %d before crash, want 3", got)
	}
	b.agents[3].Crash()
	// Routing around the crash is deferred by the refresh staleness
	// window (§3.3's fragility argument).
	if got := b.fabric.ReplierOf(1); got != 3 {
		t.Fatalf("replier(1) = %d immediately after crash, want still 3 (stale state)", got)
	}
	b.eng.RunUntil(sim.Time(300 * time.Millisecond))
	if got := b.fabric.ReplierOf(1); got != 4 {
		t.Fatalf("replier(1) = %d after refresh window, want 4", got)
	}
	b.eng.ScheduleAt(sim.Time(400*time.Millisecond), func(sim.Time) { b.agents[3].Restart() })
	b.eng.RunUntil(sim.Time(time.Second))
	if got := b.fabric.ReplierOf(1); got != 3 {
		t.Fatalf("replier(1) = %d after restart refresh window, want 3 again", got)
	}
	if b.agents[3].Crashed() {
		t.Fatal("Crashed() = true after restart")
	}
}

// TestRestartedReceiverCatchesUp crashes a receiver mid-stream and
// restarts it: heartbeat adverts drive the fresh incarnation to NAK and
// recover everything it missed.
func TestRestartedReceiverCatchesUp(t *testing.T) {
	b := newBed(t, 100*time.Millisecond)
	b.agents[0].StartSessions()
	a := b.agents[4]
	b.eng.ScheduleAt(sim.Time(150*time.Millisecond), func(sim.Time) { a.Crash() })
	b.eng.ScheduleAt(sim.Time(450*time.Millisecond), func(sim.Time) { a.Restart() })
	b.sendData(8, 100*time.Millisecond)
	b.eng.RunUntil(sim.Time(30 * time.Second))

	if miss := a.MissingIn(0, 8); miss != 0 {
		t.Fatalf("restarted receiver missing %d packets", miss)
	}
	if b.agents[3].MissingIn(0, 8) != 0 {
		t.Fatal("bystander receiver missing packets")
	}
}

// TestCrashSilencesPendingHeartbeatDetection pins the LMS analog of the
// SRM DetectionSlack fix: a heartbeat delivered just before a crash
// must not make the crashed host detect losses when the slack expires —
// the NAK timers it would arm are outside Crash's cancel sweep and
// would retry against the fabric forever.
func TestCrashSilencesPendingHeartbeatDetection(t *testing.T) {
	b := newBed(t, time.Second)
	a := b.agents[4]
	b.eng.ScheduleAt(sim.Time(100*time.Millisecond), func(now sim.Time) {
		a.Deliver(now, &netsim.Packet{Msg: &srm.SessionMsg{
			From:    0,
			SentAt:  now,
			Highest: map[topology.NodeID]int{0: 4},
		}})
	})
	b.eng.ScheduleAt(sim.Time(120*time.Millisecond), func(sim.Time) { a.Crash() })
	b.eng.RunUntil(sim.Time(5 * time.Second))

	if b.log.detections != 0 {
		t.Fatalf("crashed host detected %d losses from a pre-crash heartbeat", b.log.detections)
	}
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d on a crashed host, want 0", got)
	}
}
