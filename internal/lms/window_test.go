package lms

import (
	"testing"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// TestWatermarkRelease exercises the sliding release window on a live
// agent: after a run with a recovered loss, the full prefix is
// releasable, release rebases the dense windows without disturbing
// possession queries, and the window keeps sliding for packets sent
// after the release.
func TestWatermarkRelease(t *testing.T) {
	b := newBed(t, time.Second)
	// Drop seq 1 on receiver 4's leaf link so recovery state exists.
	b.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		return ok && down && m.Seq == 1 && l == 4
	})
	b.sendData(4, 100*time.Millisecond)
	b.eng.Run()

	a := b.agents[4]
	if a.MissingIn(0, 4) != 0 {
		t.Fatal("receiver 4 did not recover")
	}
	// LMS has no replier-side timers or abstinence: the whole held
	// prefix is releasable the moment it is held.
	if got := a.ReleasableThrough(0); got != 4 {
		t.Fatalf("ReleasableThrough = %d, want 4", got)
	}
	before := a.PacketWindow()
	a.ReleaseThrough(0, 4)
	if a.PacketWindow() >= before {
		t.Fatalf("PacketWindow %d did not shrink from %d", a.PacketWindow(), before)
	}
	// Released packets still read as held — a straggler NAK for them is
	// served from possession, not from the released records.
	for seq := 0; seq < 4; seq++ {
		if !a.Has(seq) {
			t.Fatalf("released seq %d must report held", seq)
		}
	}
	if a.MissingIn(0, 4) != 0 {
		t.Fatal("release changed MissingIn")
	}

	// The window keeps sliding after release.
	b.eng.ScheduleAt(b.eng.Now()+sim.Time(time.Millisecond), func(sim.Time) {
		b.agents[0].Transmit(4)
	})
	b.eng.Run()
	if !a.Has(4) {
		t.Fatal("post-release packet not received")
	}
	if a.ReleasableThrough(0) != 5 {
		t.Fatalf("ReleasableThrough = %d after post-release receipt, want 5", a.ReleasableThrough(0))
	}
	// Clamped release beyond held is a no-op past the prefix.
	a.ReleaseThrough(0, 100)
	if a.Has(4) != true || a.MissingIn(0, 5) != 0 {
		t.Fatal("clamped release corrupted possession state")
	}
}

// TestWatermarkReleaseRespectsCrash checks a crashed agent's watermark
// surface stays callable (the runner skips crashed hosts, but defense
// in depth is cheap).
func TestWatermarkReleaseRespectsCrash(t *testing.T) {
	b := newBed(t, time.Second)
	b.sendData(2, 100*time.Millisecond)
	b.eng.Run()
	a := b.agents[6]
	a.Crash()
	_ = a.ReleasableThrough(topology.NodeID(0))
	a.ReleaseThrough(0, 2)
}
