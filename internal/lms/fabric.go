// Package lms implements a faithful-in-spirit model of the Light-weight
// Multicast Services protocol (Papadopoulos, Parulkar, Varghese,
// INFOCOM 1998) — the router-assisted reliable multicast baseline the
// CESRM paper compares against in §3.3 and §5.
//
// In LMS every router on the multicast tree maintains a *replier link*:
// one downstream interface leading to the designated replier of its
// subtree. A receiver detecting a loss unicasts a NAK upstream; the
// first router whose replier does not lie in the NAK's subtree is the
// *turning point* — it forwards the NAK down its replier link. The
// replier retransmits by unicasting the packet to the turning point,
// which subcasts it into the NAK's origin subtree only. Recovery is
// thus localized, at the price of per-router replier state: when a
// designated replier leaves or crashes, recovery in its region stalls
// until the routers' replier state is refreshed — exactly the fragility
// CESRM's §3.3 argues its stateless, cache-driven scheme avoids.
//
// The Fabric type models the routers' collective replier state; agents
// consult it the way packets would be steered in a real deployment. All
// traffic flows through netsim, so link-crossing costs are accounted
// identically to the SRM/CESRM runs.
package lms

import (
	"fmt"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// Fabric is the routers' replier state: for every router, the child
// link leading toward its designated replier. It also models the
// staleness window of that state — crashes become visible to routing
// only after RefreshDelay.
type Fabric struct {
	tree *topology.Tree
	eng  *sim.Engine
	// replierLink maps each internal node to the child on its replier
	// link. The replier of a router's subtree is found by following
	// replier links to a leaf.
	replierLink map[topology.NodeID]topology.NodeID
	// source answers NAKs that escalate past the root.
	source topology.NodeID
	// refreshDelay is how long crashed-replier information takes to
	// propagate into router state.
	refreshDelay time.Duration
	// down marks hosts the fabric currently routes around (post-refresh).
	down map[topology.NodeID]bool
}

// NewFabric designates repliers for every router: the first receiver
// (lowest node ID) in each subtree, reached by preferring the child
// whose subtree contains it. refreshDelay models how long router
// replier state stays stale after a crash is reported.
func NewFabric(eng *sim.Engine, tree *topology.Tree, refreshDelay time.Duration) *Fabric {
	f := &Fabric{
		tree:         tree,
		eng:          eng,
		replierLink:  make(map[topology.NodeID]topology.NodeID),
		source:       tree.Root(),
		refreshDelay: refreshDelay,
		down:         make(map[topology.NodeID]bool),
	}
	f.designate()
	return f
}

// designate (re)builds every router's replier link, skipping hosts
// currently marked down.
func (f *Fabric) designate() {
	for n := 0; n < f.tree.NumNodes(); n++ {
		id := topology.NodeID(n)
		if f.tree.IsLeaf(id) {
			continue
		}
		f.replierLink[id] = f.pickReplierChild(id)
	}
}

// pickReplierChild selects the child of router n leading to the live
// receiver with the lowest ID, or None when the subtree has no live
// receiver.
func (f *Fabric) pickReplierChild(n topology.NodeID) topology.NodeID {
	best := topology.None
	bestRecv := topology.None
	for _, c := range f.tree.Children(n) {
		r := f.liveReceiverBelow(c)
		if r == topology.None {
			continue
		}
		if bestRecv == topology.None || r < bestRecv {
			bestRecv = r
			best = c
		}
	}
	return best
}

func (f *Fabric) liveReceiverBelow(n topology.NodeID) topology.NodeID {
	found := topology.None
	for _, r := range f.tree.ReceiversBelow(n) {
		if !f.down[r] && (found == topology.None || r < found) {
			found = r
		}
	}
	return found
}

// ReplierOf returns the designated replier of the subtree rooted at
// router n: the leaf reached by following replier links. Returns None
// when the subtree has no live replier.
func (f *Fabric) ReplierOf(n topology.NodeID) topology.NodeID {
	cur := n
	for !f.tree.IsLeaf(cur) {
		next, ok := f.replierLink[cur]
		if !ok || next == topology.None {
			return topology.None
		}
		cur = next
	}
	if f.down[cur] {
		return topology.None
	}
	return cur
}

// Route resolves a NAK from requestor r exactly as the routers would
// steer it: the NAK travels upstream; a router that receives it on a
// link other than its replier link is the turning point and forwards it
// down its replier link. A NAK that climbs the replier link all the way
// (the requestor is in every ancestor's replier subtree — typically the
// designated replier itself, which shares the loss) escalates to the
// source. Route returns the turning-point router, the child of the
// turning point on r's side (the reply's subcast target), and the
// replier to address.
func (f *Fabric) Route(r topology.NodeID) (turningPoint, originChild, replier topology.NodeID, err error) {
	child := r
	for n := f.tree.Parent(r); n != topology.None; n = f.tree.Parent(n) {
		if rl := f.replierLink[n]; rl != topology.None && rl != child {
			if rep := f.ReplierOf(n); rep != topology.None {
				return n, child, rep, nil
			}
		}
		if f.tree.Parent(n) == topology.None {
			// n is the root and the NAK climbed its replier link:
			// escalate to the source, subcasting back into the child
			// subtree it came from.
			if f.down[f.source] {
				return topology.None, topology.None, topology.None,
					fmt.Errorf("lms: no live replier for %d", r)
			}
			return n, child, f.source, nil
		}
		child = n
	}
	return topology.None, topology.None, topology.None,
		fmt.Errorf("lms: %d has no parent (is it the source?)", r)
}

// ReportCrash tells the fabric that host n has failed. The routers only
// route around it after the refresh delay, modelling LMS's stale
// replier state (§3.3: "such updates may prolong and even inhibit
// packet loss recovery").
func (f *Fabric) ReportCrash(n topology.NodeID) {
	f.eng.Schedule(f.refreshDelay, func(sim.Time) {
		f.down[n] = true
		f.designate()
	})
}

// ReportRestart tells the fabric that host n has rejoined. Like crash
// reports, the routers only steer NAKs toward it again after the
// refresh delay.
func (f *Fabric) ReportRestart(n topology.NodeID) {
	f.eng.Schedule(f.refreshDelay, func(sim.Time) {
		delete(f.down, n)
		f.designate()
	})
}

// RefreshDelay returns the configured staleness window.
func (f *Fabric) RefreshDelay() time.Duration { return f.refreshDelay }
