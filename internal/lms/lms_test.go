package lms

import (
	"testing"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

//	    0 (source)
//	   / \
//	  1   2
//	 / \   \
//	3   4   5
//	        |
//	        6
//
// Receivers: 3, 4, 6. Lowest-ID designation: replier(1)=3, replier(2)=6,
// replier(0)=3 (subtree of 1 holds the lowest receiver).
func lmsTree() *topology.Tree {
	return topology.MustNew([]topology.NodeID{topology.None, 0, 0, 1, 1, 2, 5})
}

type bed struct {
	eng    *sim.Engine
	net    *netsim.Network
	fabric *Fabric
	agents map[topology.NodeID]*Agent
	log    *obsLog
}

type obsLog struct {
	detections int
	recoveries []srm.RecoveryInfo
	recHosts   []topology.NodeID
	naks       int
	repairs    int
}

func (l *obsLog) LossDetected(_, _ topology.NodeID, _ int, _ sim.Time) { l.detections++ }
func (l *obsLog) Recovered(h, _ topology.NodeID, _ int, _ sim.Time, info srm.RecoveryInfo) {
	l.recoveries = append(l.recoveries, info)
	l.recHosts = append(l.recHosts, h)
}
func (l *obsLog) RequestSent(_, _ topology.NodeID, _ int, _ int) { l.naks++ }
func (l *obsLog) ExpRequestSent(_, _ topology.NodeID, _ int)     {}
func (l *obsLog) ReplySent(_, _ topology.NodeID, _ int, _ bool)  { l.repairs++ }
func (l *obsLog) SessionSent(topology.NodeID)                    {}
func (l *obsLog) RequestAbandoned(_, _ topology.NodeID, _ int, _ int) {}

func newBed(t *testing.T, refresh time.Duration) *bed {
	t.Helper()
	eng := sim.NewEngine()
	tree := lmsTree()
	net := netsim.MustNew(eng, tree, netsim.DefaultConfig())
	fabric := NewFabric(eng, tree, refresh)
	log := &obsLog{}
	b := &bed{eng: eng, net: net, fabric: fabric, agents: map[topology.NodeID]*Agent{}, log: log}
	for _, id := range append([]topology.NodeID{tree.Root()}, tree.Receivers()...) {
		a, err := NewAgent(eng, net, fabric, id, Config{}, log)
		if err != nil {
			t.Fatal(err)
		}
		b.agents[id] = a
	}
	return b
}

func (b *bed) sendData(n int, period time.Duration) {
	src := b.agents[0]
	for i := 0; i < n; i++ {
		seq := i
		b.eng.ScheduleAt(sim.Time(time.Duration(i)*period), func(sim.Time) {
			src.Transmit(seq)
		})
	}
}

func TestFabricDesignation(t *testing.T) {
	b := newBed(t, time.Second)
	f := b.fabric
	if got := f.ReplierOf(1); got != 3 {
		t.Fatalf("replier(1) = %d, want 3", got)
	}
	if got := f.ReplierOf(2); got != 6 {
		t.Fatalf("replier(2) = %d, want 6", got)
	}
	if got := f.ReplierOf(0); got != 3 {
		t.Fatalf("replier(0) = %d, want 3", got)
	}
}

func TestFabricRouting(t *testing.T) {
	b := newBed(t, time.Second)
	f := b.fabric
	// Receiver 4's NAK: router 1's replier link leads to 3 (not 4's
	// side), so the turning point is 1 and the replier is 3.
	tp, origin, rep, err := f.Route(4)
	if err != nil || tp != 1 || origin != 4 || rep != 3 {
		t.Fatalf("Route(4) = %d,%d,%d,%v", tp, origin, rep, err)
	}
	// Receiver 3 is the designated replier all the way to the root: its
	// NAK escalates to the source.
	tp, origin, rep, err = f.Route(3)
	if err != nil || tp != 0 || rep != 0 {
		t.Fatalf("Route(3) = %d,%d,%d,%v", tp, origin, rep, err)
	}
	if origin != 1 {
		t.Fatalf("Route(3) origin = %d, want 1", origin)
	}
	// Receiver 6's NAK turns at the root toward replier 3.
	tp, origin, rep, err = f.Route(6)
	if err != nil || tp != 0 || origin != 2 || rep != 3 {
		t.Fatalf("Route(6) = %d,%d,%d,%v", tp, origin, rep, err)
	}
}

func TestFabricCrashRefresh(t *testing.T) {
	b := newBed(t, 2*time.Second)
	f := b.fabric
	f.ReportCrash(3)
	// Before the refresh delay elapses, routing still targets the dead
	// replier (stale state).
	_, _, rep, err := f.Route(4)
	if err != nil || rep != 3 {
		t.Fatalf("pre-refresh Route(4) replier = %d, want stale 3", rep)
	}
	b.eng.RunUntil(sim.Time(3 * time.Second))
	_, _, rep, err = f.Route(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep == 3 {
		t.Fatal("post-refresh routing still targets the crashed replier")
	}
}

func TestLMSRecoversLocalizedLoss(t *testing.T) {
	b := newBed(t, time.Second)
	// Drop seq 1 on receiver 4's leaf link: only 4 loses it.
	b.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		return ok && down && m.Seq == 1 && l == 4
	})
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.agents[4].MissingIn(0, 3) != 0 {
		t.Fatal("loss not recovered")
	}
	if len(b.log.recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(b.log.recoveries))
	}
	if rep := b.log.recoveries[0].Replier; rep != 3 {
		t.Fatalf("repair came from %d, want designated replier 3", rep)
	}
	// Localization: the repair is unicast 3 -> 1 -> 4 (the origin
	// subtree is the single leaf 4, so there are no subcast crossings)
	// and never multicast. Two payload crossings instead of the six a
	// multicast retransmission would cost.
	c := b.net.Counts()
	if c.PayloadMulticast != 0 {
		t.Fatalf("repair was multicast (%d crossings)", c.PayloadMulticast)
	}
	if c.PayloadUnicast != 2 || c.PayloadSubcast != 0 {
		t.Fatalf("expected a 2-crossing unicast repair, got %+v", c)
	}
}

func TestLMSSharedLossEscalatesToSource(t *testing.T) {
	b := newBed(t, time.Second)
	// Drop seq 1 on link 1: receivers 3 and 4 both lose it; replier 3
	// shares the loss, so its NAK escalates to the source, and 4's NAK
	// waits at 3 until 3 recovers.
	b.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		return ok && down && m.Seq == 1 && l == 1
	})
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.agents[3].MissingIn(0, 3) != 0 || b.agents[4].MissingIn(0, 3) != 0 {
		t.Fatal("shared loss not fully recovered")
	}
	// 3's NAK escalated to the source, whose repair was subcast into
	// subtree 1 — recovering BOTH 3 and 4 with a single localized
	// retransmission (4's pending NAK at 3 never needed a second one,
	// or produced at most a duplicate).
	var replierOf3, replierOf4 topology.NodeID = -2, -2
	for i, h := range b.log.recHosts {
		switch h {
		case 3:
			replierOf3 = b.log.recoveries[i].Replier
		case 4:
			replierOf4 = b.log.recoveries[i].Replier
		}
	}
	if replierOf3 != 0 {
		t.Fatalf("replier for 3 = %d, want source", replierOf3)
	}
	if replierOf4 != 0 && replierOf4 != 3 {
		t.Fatalf("replier for 4 = %d, want source subcast or replier 3", replierOf4)
	}
	// The escalated repair stayed inside subtree 1: receiver 6 saw no
	// retransmission crossings on its links.
	if b.net.Counts().PayloadMulticast != 0 {
		t.Fatal("escalated repair was multicast")
	}
}

func TestLMSTailLossViaHeartbeat(t *testing.T) {
	b := newBed(t, time.Second)
	b.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		return ok && down && m.Seq == 2 && l == 6
	})
	for _, a := range b.agents {
		a.StartSessions()
	}
	b.sendData(3, 100*time.Millisecond)
	b.eng.RunUntil(sim.Time(5 * time.Second))
	for _, a := range b.agents {
		a.Stop()
	}
	b.eng.Run()

	if b.agents[6].MissingIn(0, 3) != 0 {
		t.Fatal("tail loss not recovered via heartbeat detection")
	}
}

func TestLMSCrashStallsUntilRefresh(t *testing.T) {
	// The §3.3 claim quantified: when the designated replier crashes,
	// LMS recovery in its region stalls for the router-state staleness
	// window; recovery resumes only after the fabric refresh.
	refresh := 4 * time.Second
	b := newBed(t, refresh)
	b.agents[3].Crash()
	b.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		return ok && down && m.Seq == 1 && l == 4
	})
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.agents[4].MissingIn(0, 3) != 0 {
		t.Fatal("loss never recovered after refresh")
	}
	// The recovery must have waited out (most of) the staleness window:
	// NAKs to the dead replier went unanswered until re-designation.
	var recAt sim.Time
	for i, h := range b.log.recHosts {
		if h == 4 {
			_ = i
			recAt, _ = b.agents[4].RecoveryTime(1)
		}
	}
	if recAt.Seconds() < 3.5 {
		t.Fatalf("recovered at %v, expected to stall until the ~4s refresh", recAt)
	}
	// Multiple NAK retries were burned on the stale replier.
	if b.log.naks < 3 {
		t.Fatalf("naks = %d, expected retries against the dead replier", b.log.naks)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{RetrySlack: -1}).Validate(); err == nil {
		t.Fatal("negative config accepted")
	}
	eng := sim.NewEngine()
	tree := lmsTree()
	net := netsim.MustNew(eng, tree, netsim.DefaultConfig())
	f := NewFabric(eng, tree, time.Second)
	if _, err := NewAgent(eng, net, f, 3, Config{MaxBackoff: -1}, nil); err == nil {
		t.Fatal("invalid config accepted by NewAgent")
	}
}

func TestNonSourceTransmitPanics(t *testing.T) {
	b := newBed(t, time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("non-source Transmit did not panic")
		}
	}()
	b.agents[3].Transmit(0)
}

func TestFabricRouteErrorWhenEverythingDown(t *testing.T) {
	b := newBed(t, time.Millisecond)
	// Crash every receiver and the source's availability for NAKs.
	for _, r := range []topology.NodeID{3, 4, 6} {
		b.fabric.ReportCrash(r)
	}
	b.fabric.ReportCrash(0)
	b.eng.RunUntil(sim.Time(time.Second))
	if _, _, _, err := b.fabric.Route(4); err == nil {
		t.Fatal("route succeeded with every replier down")
	}
}

func TestFabricRefreshDelayAccessor(t *testing.T) {
	b := newBed(t, 7*time.Second)
	if b.fabric.RefreshDelay() != 7*time.Second {
		t.Fatal("RefreshDelay accessor wrong")
	}
}

func TestLMSNAKRetriesBackOff(t *testing.T) {
	// Sever all repair traffic: the requestor's NAKs must back off
	// exponentially rather than flooding.
	b := newBed(t, time.Second)
	b.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		if m, ok := p.Msg.(*srm.DataMsg); ok {
			return down && m.Seq == 1 && l == 4
		}
		_, isRepair := p.Msg.(*RepairMsg)
		return isRepair
	})
	b.sendData(3, 100*time.Millisecond)
	b.eng.RunUntil(sim.Time(30 * time.Second))
	// In 30 virtual seconds with doubling timeouts, only a handful of
	// NAKs fit; a linear retry would send hundreds.
	if b.log.naks < 3 || b.log.naks > 20 {
		t.Fatalf("naks = %d, want exponential back-off pacing", b.log.naks)
	}
}

func TestLMSCrashedAgentSilent(t *testing.T) {
	b := newBed(t, time.Second)
	b.agents[6].Crash()
	if !b.agents[6].Crashed() {
		t.Fatal("Crashed() = false")
	}
	b.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		return ok && down && m.Seq == 1 && l == 6
	})
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()
	if b.log.naks != 0 {
		t.Fatal("crashed host sent NAKs")
	}
}
