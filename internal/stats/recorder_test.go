package stats

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/srm"
)

func TestRecorderCapturesOrderedStream(t *testing.T) {
	var now sim.Time
	r := NewRecorder(func() sim.Time { return now })

	r.SessionSent(2)
	now = sim.Time(time.Second)
	r.LossDetected(3, 0, 7, now)
	r.RequestSent(3, 0, 7, 0)
	now = sim.Time(2 * time.Second)
	r.ExpRequestSent(4, 0, 8)
	r.ReplySent(0, 0, 7, true)
	r.Recovered(3, 0, 7, now, srm.RecoveryInfo{Expedited: true, Requestor: 3, Replier: 0, OwnRequests: 1})

	evs := r.Events()
	if r.Len() != 6 || len(evs) != 6 {
		t.Fatalf("captured %d events, want 6", len(evs))
	}
	wantKinds := []EventKind{EventSessionSent, EventLossDetected, EventRequestSent,
		EventExpRequestSent, EventReplySent, EventRecovered}
	for i, k := range wantKinds {
		if evs[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, evs[i].Kind, k)
		}
	}
	if evs[1].At != sim.Time(time.Second) || evs[1].Host != 3 || evs[1].Seq != 7 {
		t.Fatalf("loss event = %+v", evs[1])
	}
	if evs[2].At != sim.Time(time.Second) {
		t.Fatalf("request timestamped %v via clock, want 1s", evs[2].At)
	}
	last := evs[5]
	if !last.Expedited || last.Requestor != 3 || last.Replier != 0 || last.OwnRequests != 1 {
		t.Fatalf("recovered event dropped RecoveryInfo: %+v", last)
	}
}

func TestRecorderNilClock(t *testing.T) {
	r := NewRecorder(nil)
	r.SessionSent(1)
	if r.Events()[0].At != 0 {
		t.Fatalf("nil-clock timestamp = %v, want 0", r.Events()[0].At)
	}
}

func TestRecorderWriteNDJSON(t *testing.T) {
	r := NewRecorder(func() sim.Time { return sim.Time(250 * time.Millisecond) })
	r.LossDetected(3, 0, 7, sim.Time(time.Second))
	r.RequestSent(3, 0, 7, 2)
	r.SessionSent(5)

	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not valid JSON: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	if lines[0]["kind"] != "loss-detected" || lines[0]["at_ns"] != float64(time.Second) {
		t.Fatalf("first line = %v", lines[0])
	}
	if lines[1]["round"] != float64(2) {
		t.Fatalf("request round = %v, want 2", lines[1]["round"])
	}
	if lines[2]["kind"] != "session" || lines[2]["host"] != float64(5) {
		t.Fatalf("session line = %v", lines[2])
	}
}
