package stats

import "cesrm/internal/topology"

// seqTable is a dense replacement for map[hostSeq]T: per-host, per-source
// slices indexed by sequence number. Host IDs are dense (tree node
// indices), sequence numbers are contiguous from 0, and the number of
// sources per run is tiny, so a linear scan over a host's streams beats
// hashing a 3-field key on every per-packet observation. The zero value
// is empty and usable.
type seqTable[T any] struct {
	hosts [][]seqStream[T]
}

// seqStream holds one (host, source) stream's per-seq values.
type seqStream[T any] struct {
	source topology.NodeID
	vals   []T
}

// get returns a pointer to the value for (host, source, seq), or nil
// when no value was ever stored at or beyond that coordinate.
func (t *seqTable[T]) get(host, source topology.NodeID, seq int) *T {
	if int(host) >= len(t.hosts) || seq < 0 {
		return nil
	}
	for i := range t.hosts[host] {
		s := &t.hosts[host][i]
		if s.source == source {
			if seq < len(s.vals) {
				return &s.vals[seq]
			}
			return nil
		}
	}
	return nil
}

// ensure returns a pointer to the value for (host, source, seq),
// growing the table as needed. New cells are zero values.
func (t *seqTable[T]) ensure(host, source topology.NodeID, seq int) *T {
	for int(host) >= len(t.hosts) {
		t.hosts = append(t.hosts, nil)
	}
	idx := -1
	for i := range t.hosts[host] {
		if t.hosts[host][i].source == source {
			idx = i
			break
		}
	}
	if idx == -1 {
		t.hosts[host] = append(t.hosts[host], seqStream[T]{source: source})
		idx = len(t.hosts[host]) - 1
	}
	s := &t.hosts[host][idx]
	for len(s.vals) <= seq {
		var zero T
		s.vals = append(s.vals, zero)
	}
	return &s.vals[seq]
}

// forEach visits every stored cell in deterministic order: hosts in
// ascending NodeID order, a host's streams in first-stored order, and
// sequence numbers ascending.
func (t *seqTable[T]) forEach(fn func(host, source topology.NodeID, seq int, v *T)) {
	for h := range t.hosts {
		for i := range t.hosts[h] {
			s := &t.hosts[h][i]
			for seq := range s.vals {
				fn(topology.NodeID(h), s.source, seq, &s.vals[seq])
			}
		}
	}
}

// resetHost discards every stored cell of one host. A restarted host
// rejoins with amnesia and legitimately re-detects and re-recovers
// packets its previous incarnation already audited.
func (t *seqTable[T]) resetHost(host topology.NodeID) {
	if int(host) < len(t.hosts) {
		t.hosts[host] = nil
	}
}

// reserve pre-sizes the host axis for hosts 0..n-1.
func (t *seqTable[T]) reserve(n int) {
	if n > cap(t.hosts) {
		hosts := make([][]seqStream[T], len(t.hosts), n)
		copy(hosts, t.hosts)
		t.hosts = hosts
	}
	for len(t.hosts) < n {
		t.hosts = append(t.hosts, nil)
	}
}
