package stats

import "cesrm/internal/topology"

// seqTable is a dense replacement for map[hostSeq]T: per-host, per-source
// slices indexed by sequence number. Host IDs are dense (tree node
// indices), sequence numbers are contiguous from 0, and the number of
// sources per run is tiny, so a linear scan over a host's streams beats
// hashing a 3-field key on every per-packet observation. The zero value
// is empty and usable.
//
// Each stream carries a release watermark (base): cells below it have
// been discarded mid-run once the experiment layer proved no further
// event can reference them (see releaseThrough). This is what keeps a
// full-scale run's per-packet audit state bounded by the in-flight
// window instead of the whole transmission.
type seqTable[T any] struct {
	hosts [][]seqStream[T]
	// scratch absorbs writes for released coordinates: ensure hands out a
	// zeroed throwaway cell instead of resurrecting freed state. A
	// correct run never writes below a stream's base (release happens
	// only after global quiescence of the prefix); the scratch cell keeps
	// a buggy late event memory-safe while the validator flags it.
	scratch T
}

// seqStream holds one (host, source) stream's per-seq values. vals is
// indexed by seq-base; sequence numbers below base were released.
type seqStream[T any] struct {
	source topology.NodeID
	base   int
	vals   []T
}

// get returns a pointer to the value for (host, source, seq), or nil
// when no value was ever stored at or beyond that coordinate, or the
// coordinate was released.
func (t *seqTable[T]) get(host, source topology.NodeID, seq int) *T {
	if int(host) >= len(t.hosts) || seq < 0 {
		return nil
	}
	for i := range t.hosts[host] {
		s := &t.hosts[host][i]
		if s.source == source {
			if idx := seq - s.base; idx >= 0 && idx < len(s.vals) {
				return &s.vals[idx]
			}
			return nil
		}
	}
	return nil
}

// ensure returns a pointer to the value for (host, source, seq),
// growing the table as needed. New cells are zero values. A released
// coordinate yields the zeroed scratch cell.
func (t *seqTable[T]) ensure(host, source topology.NodeID, seq int) *T {
	for int(host) >= len(t.hosts) {
		t.hosts = append(t.hosts, nil)
	}
	idx := -1
	for i := range t.hosts[host] {
		if t.hosts[host][i].source == source {
			idx = i
			break
		}
	}
	if idx == -1 {
		t.hosts[host] = append(t.hosts[host], seqStream[T]{source: source})
		idx = len(t.hosts[host]) - 1
	}
	s := &t.hosts[host][idx]
	if seq < s.base {
		var zero T
		t.scratch = zero
		return &t.scratch
	}
	off := seq - s.base
	for len(s.vals) <= off {
		var zero T
		s.vals = append(s.vals, zero)
	}
	return &s.vals[off]
}

// forEach visits every live (unreleased) cell in deterministic order:
// hosts in ascending NodeID order, a host's streams in first-stored
// order, and sequence numbers ascending.
func (t *seqTable[T]) forEach(fn func(host, source topology.NodeID, seq int, v *T)) {
	for h := range t.hosts {
		for i := range t.hosts[h] {
			s := &t.hosts[h][i]
			for off := range s.vals {
				fn(topology.NodeID(h), s.source, s.base+off, &s.vals[off])
			}
		}
	}
}

// releaseThrough discards, on every host, the cells of the given
// source's stream with sequence numbers below n. The surviving tail
// shifts to the front in place and the vacated cells are zeroed so
// their contents are reclaimable; the backing array is kept, since its
// capacity is bounded by the peak in-flight window and reusing it
// keeps the steady release→refill cycle allocation-free (copying to a
// fresh exact-size array made every release allocate a tail the next
// ensure had to grow again).
func (t *seqTable[T]) releaseThrough(source topology.NodeID, n int) {
	for h := range t.hosts {
		for i := range t.hosts[h] {
			s := &t.hosts[h][i]
			if s.source != source || n <= s.base {
				continue
			}
			drop := n - s.base
			if drop >= len(s.vals) {
				clear(s.vals)
				s.vals = s.vals[:0]
			} else {
				k := copy(s.vals, s.vals[drop:])
				clear(s.vals[k:])
				s.vals = s.vals[:k]
			}
			s.base = n
		}
	}
}

// liveCells counts cells currently held across all hosts and streams.
func (t *seqTable[T]) liveCells() int {
	n := 0
	for h := range t.hosts {
		for i := range t.hosts[h] {
			n += len(t.hosts[h][i].vals)
		}
	}
	return n
}

// resetHost discards every stored cell of one host. A restarted host
// rejoins with amnesia and legitimately re-detects and re-recovers
// packets its previous incarnation already audited.
func (t *seqTable[T]) resetHost(host topology.NodeID) {
	if int(host) < len(t.hosts) {
		t.hosts[host] = nil
	}
}

// reserve pre-sizes the host axis for hosts 0..n-1.
func (t *seqTable[T]) reserve(n int) {
	if n > cap(t.hosts) {
		hosts := make([][]seqStream[T], len(t.hosts), n)
		copy(hosts, t.hosts)
		t.hosts = hosts
	}
	for len(t.hosts) < n {
		t.hosts = append(t.hosts, nil)
	}
}
