package stats

import (
	"encoding/json"
	"fmt"
	"io"

	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// EventKind discriminates the protocol events a Recorder captures.
type EventKind uint8

const (
	// EventLossDetected records a receiver first classifying a packet as
	// lost.
	EventLossDetected EventKind = iota + 1
	// EventRecovered records a lost packet finally arriving.
	EventRecovered
	// EventRequestSent records a multicast repair request.
	EventRequestSent
	// EventExpRequestSent records a unicast expedited request.
	EventExpRequestSent
	// EventReplySent records a repair reply (retransmission).
	EventReplySent
	// EventSessionSent records a session message.
	EventSessionSent
	// EventRequestAbandoned records a receiver giving up on a loss after
	// the bounded-retry limit.
	EventRequestAbandoned
)

// String returns the kind's stable NDJSON label.
func (k EventKind) String() string {
	switch k {
	case EventLossDetected:
		return "loss-detected"
	case EventRecovered:
		return "recovered"
	case EventRequestSent:
		return "request"
	case EventExpRequestSent:
		return "exp-request"
	case EventReplySent:
		return "reply"
	case EventSessionSent:
		return "session"
	case EventRequestAbandoned:
		return "request-abandoned"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry of the ordered protocol-event stream. The stream
// order is the simulation engine's dispatch order, which a correct run
// reproduces exactly; fingerprinting hashes the stream to detect
// scheduling nondeterminism (see experiment.RunResult.Fingerprint).
type Event struct {
	// Kind discriminates which fields below are meaningful.
	Kind EventKind
	// At is the virtual instant of the event.
	At sim.Time
	// Host is the acting host; Source and Seq identify the packet
	// (unused for EventSessionSent).
	Host   topology.NodeID
	Source topology.NodeID
	Seq    int
	// Round is the back-off exponent (EventRequestSent only).
	Round int
	// Expedited marks expedited replies and recoveries.
	Expedited bool
	// OwnRequests, Reschedules, Requestor and Replier carry the
	// srm.RecoveryInfo of an EventRecovered.
	OwnRequests int
	Reschedules int
	Requestor   topology.NodeID
	Replier     topology.NodeID
}

// eventJSON is Event's NDJSON shape: a stable kind label, the instant
// in nanoseconds, and every payload field. Fields the kind does not
// populate are emitted as zero values rather than omitted — 0 is a
// valid NodeID (the root) and a valid back-off round, so omission would
// be ambiguous. Consumers filter by kind.
type eventJSON struct {
	Kind        string          `json:"kind"`
	AtNS        int64           `json:"at_ns"`
	Host        topology.NodeID `json:"host"`
	Source      topology.NodeID `json:"source"`
	Seq         int             `json:"seq"`
	Round       int             `json:"round"`
	Expedited   bool            `json:"expedited"`
	OwnRequests int             `json:"own_requests"`
	Reschedules int             `json:"reschedules"`
	Requestor   topology.NodeID `json:"requestor"`
	Replier     topology.NodeID `json:"replier"`
}

// WriteEventsNDJSON writes one JSON object per event, newline-delimited —
// a run's debugging timeline, consumable by jq and friends.
func WriteEventsNDJSON(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		j := eventJSON{
			Kind:        ev.Kind.String(),
			AtNS:        int64(ev.At),
			Host:        ev.Host,
			Source:      ev.Source,
			Seq:         ev.Seq,
			Round:       ev.Round,
			Expedited:   ev.Expedited,
			OwnRequests: ev.OwnRequests,
			Reschedules: ev.Reschedules,
			Requestor:   ev.Requestor,
			Replier:     ev.Replier,
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}

// Recorder is an Observer that observes the ordered protocol-event
// stream of a run. By default every event is retained for NDJSON
// timeline dumps; the experiment layer instead streams events into the
// run fingerprint as they happen (SetSink) and drops retention
// (SetKeep(false)) unless the caller asked for the timeline, so a run's
// memory no longer grows with its event count. The zero value is not
// usable; construct with NewRecorder.
type Recorder struct {
	now    func() sim.Time
	sink   func(Event)
	keep   bool
	count  uint64
	events []Event
}

// NewRecorder returns an empty recorder that retains events. now
// supplies the virtual clock used to timestamp events whose observer
// callback carries no instant (requests, replies, sessions); nil leaves
// those timestamps zero.
func NewRecorder(now func() sim.Time) *Recorder {
	return &Recorder{now: now, keep: true}
}

// SetSink installs a streaming consumer invoked for every event as it
// is observed, in dispatch order, independent of retention. The
// experiment layer folds events into the fingerprint digest this way.
func (r *Recorder) SetSink(sink func(Event)) { r.sink = sink }

// SetKeep controls whether events are retained for Events and
// WriteNDJSON. With keep false the recorder holds no per-event memory;
// the sink still sees everything and Len still counts.
func (r *Recorder) SetKeep(keep bool) { r.keep = keep }

var _ srm.Observer = (*Recorder)(nil)

// Events returns the captured stream in dispatch order, nil when
// retention is off. The slice is the recorder's backing store; callers
// must not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of events observed, whether or not retained.
func (r *Recorder) Len() int { return int(r.count) }

// emit dispatches one observed event to the sink and retention store.
func (r *Recorder) emit(ev Event) {
	r.count++
	if r.sink != nil {
		r.sink(ev)
	}
	if r.keep {
		r.events = append(r.events, ev)
	}
}

// WriteNDJSON writes the captured stream as NDJSON.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	return WriteEventsNDJSON(w, r.events)
}

func (r *Recorder) clock() sim.Time {
	if r.now == nil {
		return 0
	}
	return r.now()
}

// LossDetected implements srm.Observer.
func (r *Recorder) LossDetected(host, source topology.NodeID, seq int, at sim.Time) {
	r.emit(Event{Kind: EventLossDetected, At: at, Host: host, Source: source, Seq: seq})
}

// Recovered implements srm.Observer.
func (r *Recorder) Recovered(host, source topology.NodeID, seq int, at sim.Time, info srm.RecoveryInfo) {
	r.emit(Event{
		Kind: EventRecovered, At: at, Host: host, Source: source, Seq: seq,
		Expedited: info.Expedited, OwnRequests: info.OwnRequests, Reschedules: info.Reschedules,
		Requestor: info.Requestor, Replier: info.Replier,
	})
}

// RequestSent implements srm.Observer.
func (r *Recorder) RequestSent(host, source topology.NodeID, seq int, round int) {
	r.emit(Event{Kind: EventRequestSent, At: r.clock(), Host: host, Source: source, Seq: seq, Round: round})
}

// ExpRequestSent implements srm.Observer.
func (r *Recorder) ExpRequestSent(host, source topology.NodeID, seq int) {
	r.emit(Event{Kind: EventExpRequestSent, At: r.clock(), Host: host, Source: source, Seq: seq})
}

// ReplySent implements srm.Observer.
func (r *Recorder) ReplySent(host, source topology.NodeID, seq int, expedited bool) {
	r.emit(Event{Kind: EventReplySent, At: r.clock(), Host: host, Source: source, Seq: seq, Expedited: expedited})
}

// SessionSent implements srm.Observer.
func (r *Recorder) SessionSent(host topology.NodeID) {
	r.emit(Event{Kind: EventSessionSent, At: r.clock(), Host: host})
}

// RequestAbandoned implements srm.Observer; Round carries the request
// rounds spent before giving up.
func (r *Recorder) RequestAbandoned(host, source topology.NodeID, seq int, rounds int) {
	r.emit(Event{Kind: EventRequestAbandoned, At: r.clock(), Host: host, Source: source, Seq: seq, Round: rounds})
}
