package stats

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// TestSeqTableReleaseThrough exercises the watermark on the dense
// per-packet table: released coordinates read as absent, writes to them
// land in the scratch cell without resurrecting freed state, and the
// live-cell count reflects exactly the surviving tail.
func TestSeqTableReleaseThrough(t *testing.T) {
	var tab seqTable[packetMark]
	for seq := 0; seq < 8; seq++ {
		tab.ensure(2, 0, seq).det = true
		tab.ensure(3, 0, seq).det = true
	}
	if got := tab.liveCells(); got != 16 {
		t.Fatalf("liveCells = %d, want 16", got)
	}

	tab.releaseThrough(0, 5)
	if got := tab.liveCells(); got != 6 {
		t.Fatalf("liveCells = %d after releasing 5 of 8 on 2 hosts, want 6", got)
	}
	if tab.get(2, 0, 4) != nil {
		t.Fatal("released cell still readable")
	}
	if p := tab.get(2, 0, 5); p == nil || !p.det {
		t.Fatal("surviving cell lost after release")
	}

	// A write below the watermark goes to the scratch cell: it must not
	// grow the table or become readable.
	ghost := tab.ensure(2, 0, 1)
	ghost.det = true
	if tab.get(2, 0, 1) != nil {
		t.Fatal("released coordinate resurrected")
	}
	if got := tab.liveCells(); got != 6 {
		t.Fatalf("scratch write changed liveCells to %d", got)
	}
	// The scratch cell is re-zeroed per ensure, so one straggler cannot
	// leak state into the next.
	if tab.ensure(3, 0, 0).det {
		t.Fatal("scratch cell not zeroed between uses")
	}

	// Release on a different source leaves this stream alone.
	tab.releaseThrough(1, 100)
	if got := tab.liveCells(); got != 6 {
		t.Fatalf("foreign-source release dropped cells: %d", got)
	}
}

// TestStreamingAggregatesMatchRetained feeds an identical observation
// sequence to a retained-mode and a streaming-mode collector and
// asserts every aggregate answer is bit-identical — the property that
// lets the experiment layer release per-packet state mid-run without
// perturbing fingerprints. The streaming collector additionally
// releases its cells along the way.
func TestStreamingAggregatesMatchRetained(t *testing.T) {
	rtt := func(h topology.NodeID) time.Duration {
		return time.Duration(20+int(h)) * time.Millisecond
	}
	retained := New()
	streaming := New()
	streaming.StreamAggregates(rtt)

	feed := func(c *Collector) {
		for seq := 0; seq < 40; seq++ {
			host := topology.NodeID(2 + seq%3)
			det := sim.Time(time.Duration(seq) * time.Millisecond)
			rec := det + sim.Time(time.Duration(5+seq%7)*time.Millisecond)
			c.LossDetected(host, 0, seq, det)
			c.Recovered(host, 0, seq, rec, srm.RecoveryInfo{
				Expedited:   seq%4 == 0,
				OwnRequests: seq % 2,
				Reschedules: seq % 3,
			})
			if c.streaming && seq%10 == 9 {
				c.ReleasePacketsThrough(0, seq-5)
			}
		}
	}
	feed(retained)
	feed(streaming)

	if got := streaming.PacketCells(); got >= retained.PacketCells() {
		t.Fatalf("streaming collector retained %d cells, retained-mode %d — nothing was released",
			got, retained.PacketCells())
	}
	for _, h := range []topology.NodeID{2, 3, 4} {
		if r, s := retained.NormalizedRecovery(h, rtt), streaming.NormalizedRecovery(h, rtt); r != s {
			t.Fatalf("host %d NormalizedRecovery: retained %+v streaming %+v", h, r, s)
		}
		re, rn := retained.NormalizedRecoverySplit(h, rtt)
		se, sn := streaming.NormalizedRecoverySplit(h, rtt)
		if re != se || rn != sn {
			t.Fatalf("host %d split: retained %+v/%+v streaming %+v/%+v", h, re, rn, se, sn)
		}
	}
	if r, s := retained.OverallNormalized(rtt), streaming.OverallNormalized(rtt); r != s {
		t.Fatalf("OverallNormalized: retained %+v streaming %+v", r, s)
	}
	if r, s := retained.FirstRoundNormalized(rtt), streaming.FirstRoundNormalized(rtt); r != s {
		t.Fatalf("FirstRoundNormalized: retained %+v streaming %+v", r, s)
	}
	// Retained-record APIs legitimately report empty in streaming mode.
	if len(streaming.Recoveries()) != 0 {
		t.Fatal("streaming collector retained Recovery records")
	}
}

// TestStreamingExpRequestedPacketsSurviveRelease checks the distinct
// expedited-request keys are recorded online, so releasing the backing
// cells mid-run does not lose them.
func TestStreamingExpRequestedPacketsSurviveRelease(t *testing.T) {
	c := New()
	c.StreamAggregates(func(topology.NodeID) time.Duration { return 20 * time.Millisecond })
	c.ExpRequestSent(2, 0, 3)
	c.ExpRequestSent(2, 0, 3) // duplicate while the cell is live
	c.ExpRequestSent(3, 0, 7)
	c.ReleasePacketsThrough(0, 10)
	keys := c.ExpRequestedPackets()
	if len(keys) != 2 {
		t.Fatalf("ExpRequestedPackets = %v, want 2 distinct keys", keys)
	}
}

// TestRecorderStreamsWithoutRetention checks the recorder's streaming
// contract: the sink sees every event in order and Len counts them,
// while retention-off keeps Events nil.
func TestRecorderStreamsWithoutRetention(t *testing.T) {
	r := NewRecorder(nil)
	var sunk []Event
	r.SetSink(func(ev Event) { sunk = append(sunk, ev) })
	r.SetKeep(false)

	r.LossDetected(2, 0, 1, sim.Time(time.Millisecond))
	r.RequestSent(2, 0, 1, 0)
	r.Recovered(2, 0, 1, sim.Time(5*time.Millisecond), srm.RecoveryInfo{Replier: 3})
	r.SessionSent(0)

	if r.Events() != nil {
		t.Fatalf("retention off but Events holds %d entries", len(r.Events()))
	}
	if r.Len() != 4 || len(sunk) != 4 {
		t.Fatalf("Len = %d, sink saw %d, want 4 each", r.Len(), len(sunk))
	}
	if sunk[0].Kind != EventLossDetected || sunk[2].Kind != EventRecovered || sunk[2].Replier != 3 {
		t.Fatalf("sink stream out of order or lossy: %+v", sunk)
	}

	// Retention on: same stream lands in both places.
	kept := NewRecorder(nil)
	n := 0
	kept.SetSink(func(Event) { n++ })
	kept.SessionSent(1)
	if len(kept.Events()) != 1 || n != 1 || kept.Len() != 1 {
		t.Fatalf("retained recorder: events=%d sink=%d len=%d", len(kept.Events()), n, kept.Len())
	}
}
