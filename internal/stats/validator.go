package stats

import (
	"fmt"

	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// Validator is an Observer that checks protocol invariants online, in
// the spirit of the formal I/O-automaton treatment of SRM/CESRM in
// Livadas's thesis (reference [10] of the paper). It is cheap enough to
// run alongside the metrics collector in every experiment. Violations
// accumulate rather than panic so a run's full violation set is
// reported at once.
//
// Checked invariants (event-observable):
//
//  1. A loss is detected at most once per (host, source, seq).
//  2. A recovery is preceded by exactly one detection of the same loss
//     and happens at most once, never before its detection.
//  3. Request back-off rounds per loss are strictly increasing from 0
//     (exponential back-off never repeats or skips backwards).
//  4. Events never run backwards in time per host.
//  5. Expedited replies never outnumber expedited requests (an
//     expedited reply is always instigated by an expedited request).
//
// Two further invariants arm under fault injection:
//
//  6. Crashed hosts are silent: once NoteCrash is recorded for a host,
//     any later event from it is a fail-stop violation, until a
//     NoteRestart (which also resets the host's audit rows — a
//     restarted host rejoins with amnesia and legitimately re-detects
//     its losses).
//  7. Expedited recovery falls back to SRM within a bounded number of
//     request rounds (BoundExpFallback): a loss that was chased with an
//     expedited request but recovered unexpedited — the cached replier
//     was dead or shared the loss — must still complete within the
//     bound, the paper's §3.3 graceful-degradation claim.
//
//  8. Departed hosts are silent: once NoteLeave is recorded for a host,
//     any later event from it is a violation until NoteJoin. A join
//     resets the host's audit rows like a restart does: the protocol
//     caches survive a graceful leave, but loss bookkeeping restarts
//     from the late-join reliability floor, which the first post-join
//     contact can place below pre-leave classifications.
//
//  9. A loss is abandoned at most once, only after detection, never
//     after recovery, and no further requests follow the abandonment
//     (bounded-retry degradation terminates recovery for good).
type Validator struct {
	violations []Violation

	// packets is the per-(host, source, seq) audit state, a dense
	// NodeID- and seq-indexed table like the Collector's (the validator
	// observes the same per-packet event stream).
	packets seqTable[packetAudit]
	// lastEvent is each host's most recent event instant, NodeID-indexed;
	// -1 marks "no event seen yet".
	lastEvent []sim.Time
	// crashedAt is each host's crash instant, NodeID-indexed; -1 marks a
	// live host.
	crashedAt []sim.Time
	// leftAt is each host's graceful-departure instant, NodeID-indexed;
	// -1 marks a present host.
	leftAt []sim.Time
	// now supplies the virtual clock for events whose callback carries
	// no instant; nil leaves those unchecked by the silence invariant.
	now func() sim.Time
	// fallbackBound is invariant 7's maximum request-round count; zero
	// disables the check.
	fallbackBound int

	expReqs    int
	expReplies int
}

// packetAudit is the Validator's per-packet cell.
type packetAudit struct {
	detAt        sim.Time
	det          bool
	recovered    bool
	abandoned    bool
	lastRound    int
	hasRound     bool
	expRequested bool
}

// NewValidator returns an empty validator.
func NewValidator() *Validator { return &Validator{} }

// Reserve pre-sizes the per-host tables for node IDs 0..n-1.
func (v *Validator) Reserve(n int) {
	v.packets.reserve(n)
	for len(v.lastEvent) < n {
		v.lastEvent = append(v.lastEvent, -1)
	}
	for len(v.crashedAt) < n {
		v.crashedAt = append(v.crashedAt, -1)
	}
	for len(v.leftAt) < n {
		v.leftAt = append(v.leftAt, -1)
	}
}

// SetClock supplies the virtual clock used to place events whose
// observer callback carries no instant (requests, replies, sessions)
// relative to crash instants.
func (v *Validator) SetClock(now func() sim.Time) { v.now = now }

// BoundExpFallback arms invariant 7: a loss chased by an expedited
// request that recovers unexpedited must do so within rounds request
// rounds. Zero disables the check.
func (v *Validator) BoundExpFallback(rounds int) { v.fallbackBound = rounds }

// NoteCrash records that host fail-stopped at the given instant; any
// later event from it violates invariant 6. Implements the chaos
// harness's Probe surface.
func (v *Validator) NoteCrash(host topology.NodeID, at sim.Time) {
	for int(host) >= len(v.crashedAt) {
		v.crashedAt = append(v.crashedAt, -1)
	}
	v.crashedAt[host] = at
}

// ReleaseThrough discards the per-packet audit cells of the given
// source's stream below sequence number n on every host. The experiment
// layer calls it behind the fully-recovered watermark: no further event
// may reference those packets, so their audit rows can only ever be
// read again by a protocol bug — which still violates (a released
// coordinate reads as a blank row, so e.g. a late recovery raises
// recover-undetected instead of double-recover).
func (v *Validator) ReleaseThrough(source topology.NodeID, n int) {
	v.packets.releaseThrough(source, n)
}

// NoteRestart records that host rejoined. Its audit rows reset: the new
// incarnation starts blank and re-detects its losses.
func (v *Validator) NoteRestart(host topology.NodeID, at sim.Time) {
	for int(host) >= len(v.crashedAt) {
		v.crashedAt = append(v.crashedAt, -1)
	}
	v.crashedAt[host] = -1
	v.packets.resetHost(host)
}

// NoteLeave records that host departed gracefully at the given instant;
// any later event from it violates invariant 8. Implements the chaos
// harness's Probe surface.
func (v *Validator) NoteLeave(host topology.NodeID, at sim.Time) {
	for int(host) >= len(v.leftAt) {
		v.leftAt = append(v.leftAt, -1)
	}
	v.leftAt[host] = at
}

// NoteJoin records that host rejoined the group. Its audit rows reset,
// as for NoteRestart: a graceful leave is not amnesia for the *caches*
// (the core layer keeps them), but the SRM agent restarts its per-packet
// loss bookkeeping from the late-join reliability floor — and that floor
// comes from the first post-join contact, which a lagging peer can place
// below sequences the host classified before leaving, legitimately
// re-detecting them.
func (v *Validator) NoteJoin(host topology.NodeID, at sim.Time) {
	for int(host) >= len(v.leftAt) {
		v.leftAt = append(v.leftAt, -1)
	}
	v.leftAt[host] = -1
	v.packets.resetHost(host)
}

// clock returns the current virtual instant, or -1 when no clock is
// installed.
func (v *Validator) clockNow() sim.Time {
	if v.now == nil {
		return -1
	}
	return v.now()
}

// silence checks invariants 6 and 8 for an event of host at the given
// instant; a negative instant (no clock) skips the check.
func (v *Validator) silence(host topology.NodeID, at sim.Time, what string) {
	if at < 0 {
		return
	}
	if int(host) < len(v.crashedAt) {
		if c := v.crashedAt[host]; c >= 0 && at > c {
			v.violate("crash-silence", "host %d: %s at %v after crash at %v", host, what, at, c)
		}
	}
	if int(host) < len(v.leftAt) {
		if l := v.leftAt[host]; l >= 0 && at > l {
			v.violate("leave-silence", "host %d: %s at %v after leave at %v", host, what, at, l)
		}
	}
}

var _ srm.Observer = (*Validator)(nil)

// Violation is one recorded invariant breach.
type Violation struct {
	// Class is a stable, machine-usable label naming the invariant that
	// broke ("crash-silence", "double-detect", ...). The soak harness
	// buckets failures by class when minimizing chaos schedules, so two
	// runs that break the same invariant compare equal even when the
	// detail text (hosts, instants) differs.
	Class string
	// Detail is the human-readable description.
	Detail string
}

// String returns the detail text.
func (x Violation) String() string { return x.Detail }

// InvariantError is the typed error a run with invariant violations
// surfaces. Callers that need structure (the soak harness attributing
// and minimizing failures) unwrap it with errors.As; its message keeps
// the historical one-line summary.
type InvariantError struct {
	// Violations holds every recorded breach, in observation order.
	Violations []Violation
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("protocol invariant violations (%d): %s", len(e.Violations), e.Violations[0].Detail)
}

func (v *Validator) violate(class, format string, args ...any) {
	v.violations = append(v.violations, Violation{Class: class, Detail: fmt.Sprintf(format, args...)})
}

// Violations returns the detail text of all recorded invariant
// violations.
func (v *Validator) Violations() []string {
	out := make([]string, len(v.violations))
	for i, x := range v.violations {
		out[i] = x.Detail
	}
	return out
}

// ViolationRecords returns all recorded violations with their class
// labels.
func (v *Validator) ViolationRecords() []Violation {
	return append([]Violation(nil), v.violations...)
}

// Err returns an *InvariantError summarizing violations, or nil.
func (v *Validator) Err() error {
	if len(v.violations) == 0 {
		return nil
	}
	return &InvariantError{Violations: v.ViolationRecords()}
}

func (v *Validator) clock(host topology.NodeID, at sim.Time) {
	for int(host) >= len(v.lastEvent) {
		v.lastEvent = append(v.lastEvent, -1)
	}
	if last := v.lastEvent[host]; last >= 0 && at.Before(last) {
		v.violate("clock-regression", "host %d: event at %v before previous event at %v", host, at, last)
	}
	v.lastEvent[host] = at
}

// LossDetected implements srm.Observer.
func (v *Validator) LossDetected(host, source topology.NodeID, seq int, at sim.Time) {
	v.clock(host, at)
	v.silence(host, at, "loss detection")
	p := v.packets.ensure(host, source, seq)
	if p.det {
		v.violate("double-detect", "host %d: loss (%d,%d) detected twice", host, source, seq)
	}
	p.detAt = at
	p.det = true
}

// Recovered implements srm.Observer.
func (v *Validator) Recovered(host, source topology.NodeID, seq int, at sim.Time, info srm.RecoveryInfo) {
	v.clock(host, at)
	v.silence(host, at, "recovery")
	p := v.packets.ensure(host, source, seq)
	if v.fallbackBound > 0 && p.expRequested && !info.Expedited && info.OwnRequests > v.fallbackBound {
		v.violate("expedited-fallback-bound", "host %d: SRM fallback for expedited (%d,%d) took %d request rounds (bound %d)",
			host, source, seq, info.OwnRequests, v.fallbackBound)
	}
	if !p.det {
		v.violate("recover-undetected", "host %d: recovery of (%d,%d) without detection", host, source, seq)
	} else if at.Before(p.detAt) {
		v.violate("recover-before-detect", "host %d: recovery of (%d,%d) at %v before detection at %v", host, source, seq, at, p.detAt)
	}
	if p.recovered {
		v.violate("double-recover", "host %d: (%d,%d) recovered twice", host, source, seq)
	}
	p.recovered = true
	if info.OwnRequests < 0 || info.Reschedules < 0 {
		v.violate("negative-counters", "host %d: negative recovery counters %+v", host, info)
	}
}

// RequestSent implements srm.Observer.
func (v *Validator) RequestSent(host, source topology.NodeID, seq int, round int) {
	v.silence(host, v.clockNow(), "request")
	p := v.packets.ensure(host, source, seq)
	if p.recovered {
		v.violate("request-after-recover", "host %d: request for already-recovered (%d,%d)", host, source, seq)
	}
	if !p.det {
		v.violate("request-undetected", "host %d: request for undetected (%d,%d)", host, source, seq)
	}
	if p.abandoned {
		v.violate("request-after-abandon", "host %d: request for abandoned (%d,%d)", host, source, seq)
	}
	if p.hasRound {
		if round <= p.lastRound {
			v.violate("request-round-order", "host %d: request round %d after round %d for (%d,%d)", host, round, p.lastRound, source, seq)
		}
	} else if round < 0 {
		v.violate("request-round-negative", "host %d: negative request round %d", host, round)
	}
	p.lastRound = round
	p.hasRound = true
}

// RequestAbandoned implements srm.Observer, checking invariant 9. A
// recovery arriving after abandonment (a straggling repair) is
// legitimate and raises no violation.
func (v *Validator) RequestAbandoned(host, source topology.NodeID, seq int, rounds int) {
	v.silence(host, v.clockNow(), "request abandonment")
	p := v.packets.ensure(host, source, seq)
	if !p.det {
		v.violate("abandon-undetected", "host %d: abandoned undetected (%d,%d)", host, source, seq)
	}
	if p.recovered {
		v.violate("abandon-after-recover", "host %d: abandoned already-recovered (%d,%d)", host, source, seq)
	}
	if p.abandoned {
		v.violate("double-abandon", "host %d: (%d,%d) abandoned twice", host, source, seq)
	}
	if rounds < 1 {
		v.violate("abandon-rounds", "host %d: abandoned (%d,%d) after %d rounds", host, source, seq, rounds)
	}
	p.abandoned = true
}

// ExpRequestSent implements srm.Observer.
func (v *Validator) ExpRequestSent(host, source topology.NodeID, seq int) {
	v.silence(host, v.clockNow(), "expedited request")
	v.expReqs++
	p := v.packets.ensure(host, source, seq)
	if p.recovered {
		v.violate("exp-request-after-recover", "host %d: expedited request for already-recovered (%d,%d)", host, source, seq)
	}
	p.expRequested = true
}

// ReplySent implements srm.Observer.
func (v *Validator) ReplySent(host, source topology.NodeID, seq int, expedited bool) {
	v.silence(host, v.clockNow(), "reply")
	if expedited {
		v.expReplies++
		if v.expReplies > v.expReqs {
			v.violate("exp-reply-excess", "expedited replies (%d) exceed expedited requests (%d)", v.expReplies, v.expReqs)
		}
	}
}

// SessionSent implements srm.Observer.
func (v *Validator) SessionSent(host topology.NodeID) {
	v.silence(host, v.clockNow(), "session message")
}

// Tee fans protocol events out to several observers, letting a metrics
// collector and a validator watch the same run.
type Tee []srm.Observer

var _ srm.Observer = Tee{}

// LossDetected implements srm.Observer.
func (t Tee) LossDetected(host, source topology.NodeID, seq int, at sim.Time) {
	for _, o := range t {
		o.LossDetected(host, source, seq, at)
	}
}

// Recovered implements srm.Observer.
func (t Tee) Recovered(host, source topology.NodeID, seq int, at sim.Time, info srm.RecoveryInfo) {
	for _, o := range t {
		o.Recovered(host, source, seq, at, info)
	}
}

// RequestSent implements srm.Observer.
func (t Tee) RequestSent(host, source topology.NodeID, seq int, round int) {
	for _, o := range t {
		o.RequestSent(host, source, seq, round)
	}
}

// ExpRequestSent implements srm.Observer.
func (t Tee) ExpRequestSent(host, source topology.NodeID, seq int) {
	for _, o := range t {
		o.ExpRequestSent(host, source, seq)
	}
}

// ReplySent implements srm.Observer.
func (t Tee) ReplySent(host, source topology.NodeID, seq int, expedited bool) {
	for _, o := range t {
		o.ReplySent(host, source, seq, expedited)
	}
}

// SessionSent implements srm.Observer.
func (t Tee) SessionSent(host topology.NodeID) {
	for _, o := range t {
		o.SessionSent(host)
	}
}

// RequestAbandoned implements srm.Observer.
func (t Tee) RequestAbandoned(host, source topology.NodeID, seq int, rounds int) {
	for _, o := range t {
		o.RequestAbandoned(host, source, seq, rounds)
	}
}
