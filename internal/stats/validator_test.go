package stats

import (
	"strings"
	"testing"

	"cesrm/internal/srm"
)

func TestValidatorCleanSequence(t *testing.T) {
	v := NewValidator()
	v.LossDetected(2, 0, 1, at(100))
	v.RequestSent(2, 0, 1, 0)
	v.RequestSent(2, 0, 1, 1)
	v.Recovered(2, 0, 1, at(400), srm.RecoveryInfo{OwnRequests: 2})
	v.ExpRequestSent(3, 0, 7)
	v.ReplySent(4, 0, 7, true)
	v.SessionSent(2)
	if err := v.Err(); err != nil {
		t.Fatalf("clean sequence flagged: %v", err)
	}
}

func violationContains(t *testing.T, v *Validator, want string) {
	t.Helper()
	for _, s := range v.Violations() {
		if strings.Contains(s, want) {
			return
		}
	}
	t.Fatalf("expected violation containing %q, got %v", want, v.Violations())
}

func TestValidatorDoubleDetection(t *testing.T) {
	v := NewValidator()
	v.LossDetected(2, 0, 1, at(100))
	v.LossDetected(2, 0, 1, at(200))
	violationContains(t, v, "detected twice")
}

func TestValidatorRecoveryWithoutDetection(t *testing.T) {
	v := NewValidator()
	v.Recovered(2, 0, 1, at(100), srm.RecoveryInfo{})
	violationContains(t, v, "without detection")
}

func TestValidatorRecoveryBeforeDetection(t *testing.T) {
	v := NewValidator()
	v.LossDetected(2, 0, 1, at(300))
	// Same-host clock runs backwards too; both violations fire.
	v.Recovered(2, 0, 1, at(200), srm.RecoveryInfo{})
	violationContains(t, v, "before detection")
}

func TestValidatorDoubleRecovery(t *testing.T) {
	v := NewValidator()
	v.LossDetected(2, 0, 1, at(100))
	v.Recovered(2, 0, 1, at(200), srm.RecoveryInfo{})
	v.Recovered(2, 0, 1, at(300), srm.RecoveryInfo{})
	violationContains(t, v, "recovered twice")
}

func TestValidatorRequestAfterRecovery(t *testing.T) {
	v := NewValidator()
	v.LossDetected(2, 0, 1, at(100))
	v.Recovered(2, 0, 1, at(200), srm.RecoveryInfo{})
	v.RequestSent(2, 0, 1, 0)
	violationContains(t, v, "already-recovered")
}

func TestValidatorRequestForUndetected(t *testing.T) {
	v := NewValidator()
	v.RequestSent(2, 0, 1, 0)
	violationContains(t, v, "undetected")
}

func TestValidatorNonMonotonicRounds(t *testing.T) {
	v := NewValidator()
	v.LossDetected(2, 0, 1, at(100))
	v.RequestSent(2, 0, 1, 1)
	v.RequestSent(2, 0, 1, 1)
	violationContains(t, v, "round")
}

func TestValidatorExpeditedReplyOverflow(t *testing.T) {
	v := NewValidator()
	v.ReplySent(4, 0, 7, true)
	violationContains(t, v, "expedited replies")
}

func TestValidatorClockMonotonicPerHost(t *testing.T) {
	v := NewValidator()
	v.LossDetected(2, 0, 1, at(300))
	v.LossDetected(2, 0, 2, at(200))
	violationContains(t, v, "before previous event")
}

func TestValidatorErrNilWhenClean(t *testing.T) {
	v := NewValidator()
	if v.Err() != nil {
		t.Fatal("fresh validator has error")
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := New(), New()
	tee := Tee{a, b}
	tee.LossDetected(2, 0, 1, at(0))
	tee.Recovered(2, 0, 1, at(100), srm.RecoveryInfo{})
	tee.RequestSent(2, 0, 1, 0)
	tee.ExpRequestSent(2, 0, 2)
	tee.ReplySent(3, 0, 1, false)
	tee.SessionSent(3)
	for i, c := range []*Collector{a, b} {
		if len(c.Recoveries()) != 1 {
			t.Fatalf("collector %d missed recovery", i)
		}
		tot := c.TotalCounts()
		if tot.Requests != 1 || tot.ExpRequests != 1 || tot.Replies != 1 || tot.Sessions != 1 {
			t.Fatalf("collector %d totals = %+v", i, tot)
		}
	}
}
