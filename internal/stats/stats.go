// Package stats collects and aggregates protocol events into the
// metrics the paper's evaluation reports: per-receiver normalized
// recovery times (Figure 1), expedited/non-expedited latency splits
// (Figure 2), per-receiver request and reply counts split by kind
// (Figures 3 and 4), expedited success ratios and transmission overhead
// (Figure 5).
package stats

import (
	"sort"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// Recovery records one completed loss recovery on one host.
type Recovery struct {
	Host topology.NodeID
	// Source identifies the stream the recovered packet belongs to.
	Source      topology.NodeID
	Seq         int
	DetectedAt  sim.Time
	RecoveredAt sim.Time
	// Expedited reports recovery via a CESRM expedited reply.
	Expedited bool
	// OwnRequests counts repair requests the host itself sent for the
	// packet; Reschedules counts suppression back-offs. A "first round"
	// recovery has OwnRequests+Reschedules <= 1.
	OwnRequests int
	Reschedules int
	Requestor   topology.NodeID
	Replier     topology.NodeID
}

// FirstRound reports whether the recovery completed within the first
// recovery round (no back-off beyond the initial request schedule).
func (r Recovery) FirstRound() bool { return r.OwnRequests+r.Reschedules <= 1 }

// Latency is the detection-to-recovery delay.
func (r Recovery) Latency() time.Duration { return r.RecoveredAt.Sub(r.DetectedAt) }

// HostCounts tallies per-host message transmissions.
type HostCounts struct {
	Requests    int // multicast repair requests
	ExpRequests int // unicast expedited requests
	Replies     int // multicast repair replies (retransmissions)
	ExpReplies  int // expedited replies
	Sessions    int
}

// Collector implements srm.Observer, accumulating events during a
// simulation run. Construct with New; per-packet state lives in dense
// NodeID- and seq-indexed tables (not maps), because the observer sits
// on every detection, recovery and transmission of a run. Reserve
// pre-sizes the per-host axes when the host count is known up front.
type Collector struct {
	// packets marks per-(host, source, seq) detection instants and
	// expedited-request flags.
	packets    seqTable[packetMark]
	recoveries []Recovery
	counts     []HostCounts // NodeID-indexed transmission counters
	lossCount  []int        // NodeID-indexed detected-loss counts
}

// packetMark is the Collector's per-packet cell: the detection instant
// (valid when det is set) and whether an expedited request chased the
// packet.
type packetMark struct {
	detAt  sim.Time
	det    bool
	expReq bool
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Reserve pre-sizes the per-host tables for node IDs 0..n-1, avoiding
// growth re-slicing during the run.
func (c *Collector) Reserve(n int) {
	c.packets.reserve(n)
	if n > len(c.counts) {
		counts := make([]HostCounts, n)
		copy(counts, c.counts)
		c.counts = counts
	}
	if n > len(c.lossCount) {
		lossCount := make([]int, n)
		copy(lossCount, c.lossCount)
		c.lossCount = lossCount
	}
}

var _ srm.Observer = (*Collector)(nil)

func (c *Collector) host(h topology.NodeID) *HostCounts {
	for int(h) >= len(c.counts) {
		c.counts = append(c.counts, HostCounts{})
	}
	return &c.counts[h]
}

// LossDetected implements srm.Observer.
func (c *Collector) LossDetected(host, source topology.NodeID, seq int, at sim.Time) {
	p := c.packets.ensure(host, source, seq)
	p.detAt = at
	p.det = true
	for int(host) >= len(c.lossCount) {
		c.lossCount = append(c.lossCount, 0)
	}
	c.lossCount[host]++
}

// Recovered implements srm.Observer.
func (c *Collector) Recovered(host, source topology.NodeID, seq int, at sim.Time, info srm.RecoveryInfo) {
	var det sim.Time
	if p := c.packets.get(host, source, seq); p != nil && p.det {
		det = p.detAt
	}
	c.recoveries = append(c.recoveries, Recovery{
		Host:        host,
		Source:      source,
		Seq:         seq,
		DetectedAt:  det,
		RecoveredAt: at,
		Expedited:   info.Expedited,
		OwnRequests: info.OwnRequests,
		Reschedules: info.Reschedules,
		Requestor:   info.Requestor,
		Replier:     info.Replier,
	})
}

// RequestSent implements srm.Observer.
func (c *Collector) RequestSent(host, source topology.NodeID, seq int, round int) {
	c.host(host).Requests++
}

// ExpRequestSent implements srm.Observer.
func (c *Collector) ExpRequestSent(host, source topology.NodeID, seq int) {
	c.host(host).ExpRequests++
	c.packets.ensure(host, source, seq).expReq = true
}

// ReplySent implements srm.Observer.
func (c *Collector) ReplySent(host, source topology.NodeID, seq int, expedited bool) {
	if expedited {
		c.host(host).ExpReplies++
	} else {
		c.host(host).Replies++
	}
}

// SessionSent implements srm.Observer.
func (c *Collector) SessionSent(host topology.NodeID) {
	c.host(host).Sessions++
}

// Recoveries returns all recorded recoveries in completion order.
func (c *Collector) Recoveries() []Recovery { return c.recoveries }

// Losses returns the number of losses detected by host.
func (c *Collector) Losses(host topology.NodeID) int {
	if int(host) >= len(c.lossCount) {
		return 0
	}
	return c.lossCount[host]
}

// Counts returns the per-host transmission counters for host.
func (c *Collector) Counts(host topology.NodeID) HostCounts {
	if int(host) >= len(c.counts) {
		return HostCounts{}
	}
	return c.counts[host]
}

// TotalCounts sums transmission counters over all hosts.
func (c *Collector) TotalCounts() HostCounts {
	var t HostCounts
	for i := range c.counts {
		hc := &c.counts[i]
		t.Requests += hc.Requests
		t.ExpRequests += hc.ExpRequests
		t.Replies += hc.Replies
		t.ExpReplies += hc.ExpReplies
		t.Sessions += hc.Sessions
	}
	return t
}

// ExpeditedSuccessRatio returns #expedited replies / #expedited
// requests, the Figure 5 (left) metric, and false when no expedited
// requests were sent.
func (c *Collector) ExpeditedSuccessRatio() (float64, bool) {
	t := c.TotalCounts()
	if t.ExpRequests == 0 {
		return 0, false
	}
	return float64(t.ExpReplies) / float64(t.ExpRequests), true
}

// ExpRequestKey identifies one expedited request by host, stream and
// sequence number.
type ExpRequestKey struct {
	Host   topology.NodeID
	Source topology.NodeID
	Seq    int
}

// ExpRequestedPackets returns the distinct (host, source, seq) triples
// for which expedited requests were sent, ordered by host, then stream,
// then sequence number. The experiment layer joins these against the
// trace to count spurious expedited requests — requests chasing packets
// that were merely reordered, not lost (§3.2).
func (c *Collector) ExpRequestedPackets() []ExpRequestKey {
	var out []ExpRequestKey
	c.packets.forEach(func(host, source topology.NodeID, seq int, p *packetMark) {
		if p.expReq {
			out = append(out, ExpRequestKey{Host: host, Source: source, Seq: seq})
		}
	})
	return out
}

// RTTFunc supplies a host's round-trip-time normalization basis,
// typically its RTT to the transmission source.
type RTTFunc func(host topology.NodeID) time.Duration

// LatencySummary aggregates normalized recovery latencies.
type LatencySummary struct {
	// Count is the number of recoveries aggregated.
	Count int
	// MeanRTT is the mean recovery latency in units of the host RTT.
	MeanRTT float64
}

// meanNormalized averages latency/RTT over recoveries matching keep.
func (c *Collector) meanNormalized(rtt RTTFunc, keep func(Recovery) bool) LatencySummary {
	var sum float64
	n := 0
	for _, r := range c.recoveries {
		if !keep(r) {
			continue
		}
		basis := rtt(r.Host)
		if basis <= 0 {
			continue
		}
		sum += float64(r.Latency()) / float64(basis)
		n++
	}
	if n == 0 {
		return LatencySummary{}
	}
	return LatencySummary{Count: n, MeanRTT: sum / float64(n)}
}

// NormalizedRecovery returns the host's average normalized recovery time
// over all its recoveries (the Figure 1 metric).
func (c *Collector) NormalizedRecovery(host topology.NodeID, rtt RTTFunc) LatencySummary {
	return c.meanNormalized(rtt, func(r Recovery) bool { return r.Host == host })
}

// NormalizedRecoverySplit returns the host's average normalized recovery
// time separately for expedited and non-expedited recoveries (the
// Figure 2 metric).
func (c *Collector) NormalizedRecoverySplit(host topology.NodeID, rtt RTTFunc) (expedited, normal LatencySummary) {
	expedited = c.meanNormalized(rtt, func(r Recovery) bool { return r.Host == host && r.Expedited })
	normal = c.meanNormalized(rtt, func(r Recovery) bool { return r.Host == host && !r.Expedited })
	return expedited, normal
}

// FirstRoundNormalized returns the average normalized latency of
// non-expedited first-round recoveries across all hosts (the §3.4 /
// Eq. (1) metric).
func (c *Collector) FirstRoundNormalized(rtt RTTFunc) LatencySummary {
	return c.meanNormalized(rtt, func(r Recovery) bool { return !r.Expedited && r.FirstRound() })
}

// OverallNormalized returns the average normalized latency over every
// recovery on every host.
func (c *Collector) OverallNormalized(rtt RTTFunc) LatencySummary {
	return c.meanNormalized(rtt, func(Recovery) bool { return true })
}

// NormalizedPercentile returns the q-quantile (q in [0,1]) of the
// normalized recovery latencies across all hosts, or 0 with no
// recoveries. Stall behavior under faults shows up in the upper
// quantiles long before it moves the mean.
func (c *Collector) NormalizedPercentile(rtt RTTFunc, q float64) float64 {
	var norm []float64
	for _, r := range c.recoveries {
		basis := rtt(r.Host)
		if basis > 0 {
			norm = append(norm, float64(r.Latency())/float64(basis))
		}
	}
	if len(norm) == 0 {
		return 0
	}
	sort.Float64s(norm)
	i := int(q * float64(len(norm)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(norm) {
		i = len(norm) - 1
	}
	return norm[i]
}
