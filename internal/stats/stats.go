// Package stats collects and aggregates protocol events into the
// metrics the paper's evaluation reports: per-receiver normalized
// recovery times (Figure 1), expedited/non-expedited latency splits
// (Figure 2), per-receiver request and reply counts split by kind
// (Figures 3 and 4), expedited success ratios and transmission overhead
// (Figure 5).
package stats

import (
	"sort"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// Recovery records one completed loss recovery on one host.
type Recovery struct {
	Host topology.NodeID
	// Source identifies the stream the recovered packet belongs to.
	Source      topology.NodeID
	Seq         int
	DetectedAt  sim.Time
	RecoveredAt sim.Time
	// Expedited reports recovery via a CESRM expedited reply.
	Expedited bool
	// OwnRequests counts repair requests the host itself sent for the
	// packet; Reschedules counts suppression back-offs. A "first round"
	// recovery has OwnRequests+Reschedules <= 1.
	OwnRequests int
	Reschedules int
	Requestor   topology.NodeID
	Replier     topology.NodeID
}

// FirstRound reports whether the recovery completed within the first
// recovery round (no back-off beyond the initial request schedule).
func (r Recovery) FirstRound() bool { return r.OwnRequests+r.Reschedules <= 1 }

// Latency is the detection-to-recovery delay.
func (r Recovery) Latency() time.Duration { return r.RecoveredAt.Sub(r.DetectedAt) }

// HostCounts tallies per-host message transmissions.
type HostCounts struct {
	Requests    int // multicast repair requests
	ExpRequests int // unicast expedited requests
	Replies     int // multicast repair replies (retransmissions)
	ExpReplies  int // expedited replies
	Sessions    int
}

// Collector implements srm.Observer, accumulating events during a
// simulation run. Construct with New; per-packet state lives in dense
// NodeID- and seq-indexed tables (not maps), because the observer sits
// on every detection, recovery and transmission of a run. Reserve
// pre-sizes the per-host axes when the host count is known up front.
type Collector struct {
	// packets marks per-(host, source, seq) detection instants and
	// expedited-request flags.
	packets    seqTable[packetMark]
	recoveries []Recovery
	counts     []HostCounts // NodeID-indexed transmission counters
	lossCount  []int        // NodeID-indexed detected-loss counts
	abandons   []int        // NodeID-indexed abandoned-loss counts

	// Streaming-aggregate mode (StreamAggregates): recoveries fold into
	// the accumulators below as they complete instead of being retained,
	// and the experiment layer releases per-packet cells behind the
	// fully-recovered watermark. Folding happens in completion order —
	// the exact order the retained-scan aggregations iterate — so the
	// float64 sums, and therefore run fingerprints, are bit-identical
	// between the two modes.
	streaming  bool
	rtt        RTTFunc
	perHost    []latencyAccum // overall, NodeID-indexed
	perHostExp []latencyAccum // expedited only
	perHostStd []latencyAccum // non-expedited only
	overall    latencyAccum
	firstRound latencyAccum // non-expedited first-round, all hosts
	expKeys    []ExpRequestKey
	peakCells  int
}

// latencyAccum is one running normalized-latency aggregation.
type latencyAccum struct {
	n   int
	sum float64
}

func (a *latencyAccum) add(x float64) { a.n++; a.sum += x }

func (a latencyAccum) summary() LatencySummary {
	if a.n == 0 {
		return LatencySummary{}
	}
	return LatencySummary{Count: a.n, MeanRTT: a.sum / float64(a.n)}
}

// packetMark is the Collector's per-packet cell: the detection instant
// (valid when det is set) and whether an expedited request chased the
// packet.
type packetMark struct {
	detAt  sim.Time
	det    bool
	expReq bool
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Reserve pre-sizes the per-host tables for node IDs 0..n-1, avoiding
// growth re-slicing during the run.
func (c *Collector) Reserve(n int) {
	c.packets.reserve(n)
	if n > len(c.counts) {
		counts := make([]HostCounts, n)
		copy(counts, c.counts)
		c.counts = counts
	}
	if n > len(c.lossCount) {
		lossCount := make([]int, n)
		copy(lossCount, c.lossCount)
		c.lossCount = lossCount
	}
}

var _ srm.Observer = (*Collector)(nil)

// StreamAggregates switches the collector to streaming-aggregate mode:
// each completed recovery folds into online accumulators (normalized
// with rtt) instead of being retained as a Recovery record, and
// per-packet cells become releasable behind the experiment layer's
// fully-recovered watermark (ReleasePacketsThrough). The aggregate
// methods then answer from the accumulators — their RTTFunc argument is
// ignored, rtt installed here applies — while Recoveries and
// NormalizedPercentile, which need the retained records, report empty.
// Call before the run starts.
func (c *Collector) StreamAggregates(rtt RTTFunc) {
	c.streaming = true
	c.rtt = rtt
}

// grown returns s extended to cover index idx, growing geometrically
// rather than one element per append so dense NodeID-indexed tables
// never re-slice once per host.
func grown[T any](s []T, idx int) []T {
	if idx < len(s) {
		return s
	}
	n := idx + 1
	if n <= cap(s) {
		// make zeroes the whole backing array up front, so extending
		// within capacity exposes zero values only.
		return s[:n]
	}
	capacity := 2 * cap(s)
	if capacity < n {
		capacity = n
	}
	if capacity < 8 {
		capacity = 8
	}
	t := make([]T, n, capacity)
	copy(t, s)
	return t
}

func (c *Collector) host(h topology.NodeID) *HostCounts {
	c.counts = grown(c.counts, int(h))
	return &c.counts[h]
}

// LossDetected implements srm.Observer.
func (c *Collector) LossDetected(host, source topology.NodeID, seq int, at sim.Time) {
	p := c.packets.ensure(host, source, seq)
	p.detAt = at
	p.det = true
	c.lossCount = grown(c.lossCount, int(host))
	c.lossCount[host]++
}

// Recovered implements srm.Observer.
func (c *Collector) Recovered(host, source topology.NodeID, seq int, at sim.Time, info srm.RecoveryInfo) {
	var det sim.Time
	if p := c.packets.get(host, source, seq); p != nil && p.det {
		det = p.detAt
	}
	r := Recovery{
		Host:        host,
		Source:      source,
		Seq:         seq,
		DetectedAt:  det,
		RecoveredAt: at,
		Expedited:   info.Expedited,
		OwnRequests: info.OwnRequests,
		Reschedules: info.Reschedules,
		Requestor:   info.Requestor,
		Replier:     info.Replier,
	}
	if !c.streaming {
		c.recoveries = append(c.recoveries, r)
		return
	}
	basis := c.rtt(host)
	if basis <= 0 {
		return // the retained-scan aggregations skip these too
	}
	x := float64(r.Latency()) / float64(basis)
	c.perHost = grown(c.perHost, int(host))
	c.perHost[host].add(x)
	if r.Expedited {
		c.perHostExp = grown(c.perHostExp, int(host))
		c.perHostExp[host].add(x)
	} else {
		c.perHostStd = grown(c.perHostStd, int(host))
		c.perHostStd[host].add(x)
		if r.FirstRound() {
			c.firstRound.add(x)
		}
	}
	c.overall.add(x)
}

// ReleasePacketsThrough discards the per-packet cells of the given
// source's stream below sequence number n, on every host. The
// experiment layer calls it once the fully-recovered watermark proves
// no further event can reference those packets. Only meaningful in
// streaming-aggregate mode; a retained-mode collector keeps everything.
func (c *Collector) ReleasePacketsThrough(source topology.NodeID, n int) {
	if !c.streaming {
		return
	}
	if cells := c.packets.liveCells(); cells > c.peakCells {
		c.peakCells = cells
	}
	c.packets.releaseThrough(source, n)
}

// PacketCells counts the per-packet cells currently held.
func (c *Collector) PacketCells() int { return c.packets.liveCells() }

// PeakPacketCells returns the largest cell count observed at a release
// point, a mid-run memory high-water mark for the watermark tests.
func (c *Collector) PeakPacketCells() int {
	if cells := c.packets.liveCells(); cells > c.peakCells {
		c.peakCells = cells
	}
	return c.peakCells
}

// RequestSent implements srm.Observer.
func (c *Collector) RequestSent(host, source topology.NodeID, seq int, round int) {
	c.host(host).Requests++
}

// ExpRequestSent implements srm.Observer.
func (c *Collector) ExpRequestSent(host, source topology.NodeID, seq int) {
	c.host(host).ExpRequests++
	p := c.packets.ensure(host, source, seq)
	if !p.expReq && c.streaming {
		// Record the distinct key online: the cell may be released before
		// the end-of-run ExpRequestedPackets walk. The expReq flag
		// deduplicates repeats while the cell is live; after release no
		// expedited request for the packet can occur (it was recovered
		// everywhere long before).
		c.expKeys = append(c.expKeys, ExpRequestKey{Host: host, Source: source, Seq: seq})
	}
	p.expReq = true
}

// ReplySent implements srm.Observer.
func (c *Collector) ReplySent(host, source topology.NodeID, seq int, expedited bool) {
	if expedited {
		c.host(host).ExpReplies++
	} else {
		c.host(host).Replies++
	}
}

// SessionSent implements srm.Observer.
func (c *Collector) SessionSent(host topology.NodeID) {
	c.host(host).Sessions++
}

// RequestAbandoned implements srm.Observer.
func (c *Collector) RequestAbandoned(host, source topology.NodeID, seq int, rounds int) {
	c.abandons = grown(c.abandons, int(host))
	c.abandons[host]++
}

// Abandoned returns the number of losses host gave up on after the
// bounded-retry limit.
func (c *Collector) Abandoned(host topology.NodeID) int {
	if int(host) >= len(c.abandons) {
		return 0
	}
	return c.abandons[host]
}

// TotalAbandoned sums abandoned losses over all hosts.
func (c *Collector) TotalAbandoned() int {
	total := 0
	for _, n := range c.abandons {
		total += n
	}
	return total
}

// Recoveries returns all recorded recoveries in completion order. In
// streaming-aggregate mode records are not retained and this is empty;
// use the aggregate methods instead.
func (c *Collector) Recoveries() []Recovery { return c.recoveries }

// Losses returns the number of losses detected by host.
func (c *Collector) Losses(host topology.NodeID) int {
	if int(host) >= len(c.lossCount) {
		return 0
	}
	return c.lossCount[host]
}

// Counts returns the per-host transmission counters for host.
func (c *Collector) Counts(host topology.NodeID) HostCounts {
	if int(host) >= len(c.counts) {
		return HostCounts{}
	}
	return c.counts[host]
}

// TotalCounts sums transmission counters over all hosts.
func (c *Collector) TotalCounts() HostCounts {
	var t HostCounts
	for i := range c.counts {
		hc := &c.counts[i]
		t.Requests += hc.Requests
		t.ExpRequests += hc.ExpRequests
		t.Replies += hc.Replies
		t.ExpReplies += hc.ExpReplies
		t.Sessions += hc.Sessions
	}
	return t
}

// ExpeditedSuccessRatio returns #expedited replies / #expedited
// requests, the Figure 5 (left) metric, and false when no expedited
// requests were sent.
func (c *Collector) ExpeditedSuccessRatio() (float64, bool) {
	t := c.TotalCounts()
	if t.ExpRequests == 0 {
		return 0, false
	}
	return float64(t.ExpReplies) / float64(t.ExpRequests), true
}

// ExpRequestKey identifies one expedited request by host, stream and
// sequence number.
type ExpRequestKey struct {
	Host   topology.NodeID
	Source topology.NodeID
	Seq    int
}

// ExpRequestedPackets returns the distinct (host, source, seq) triples
// for which expedited requests were sent, ordered by host, then stream,
// then sequence number. The experiment layer joins these against the
// trace to count spurious expedited requests — requests chasing packets
// that were merely reordered, not lost (§3.2).
func (c *Collector) ExpRequestedPackets() []ExpRequestKey {
	if c.streaming {
		out := append([]ExpRequestKey(nil), c.expKeys...)
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.Host != b.Host {
				return a.Host < b.Host
			}
			if a.Source != b.Source {
				return a.Source < b.Source
			}
			return a.Seq < b.Seq
		})
		return out
	}
	var out []ExpRequestKey
	c.packets.forEach(func(host, source topology.NodeID, seq int, p *packetMark) {
		if p.expReq {
			out = append(out, ExpRequestKey{Host: host, Source: source, Seq: seq})
		}
	})
	return out
}

// RTTFunc supplies a host's round-trip-time normalization basis,
// typically its RTT to the transmission source.
type RTTFunc func(host topology.NodeID) time.Duration

// LatencySummary aggregates normalized recovery latencies.
type LatencySummary struct {
	// Count is the number of recoveries aggregated.
	Count int
	// MeanRTT is the mean recovery latency in units of the host RTT.
	MeanRTT float64
}

// meanNormalized averages latency/RTT over recoveries matching keep.
func (c *Collector) meanNormalized(rtt RTTFunc, keep func(Recovery) bool) LatencySummary {
	var sum float64
	n := 0
	for _, r := range c.recoveries {
		if !keep(r) {
			continue
		}
		basis := rtt(r.Host)
		if basis <= 0 {
			continue
		}
		sum += float64(r.Latency()) / float64(basis)
		n++
	}
	if n == 0 {
		return LatencySummary{}
	}
	return LatencySummary{Count: n, MeanRTT: sum / float64(n)}
}

// accumAt returns the accumulator for host in s, zero when the host
// never contributed.
func accumAt(s []latencyAccum, host topology.NodeID) latencyAccum {
	if int(host) >= len(s) {
		return latencyAccum{}
	}
	return s[host]
}

// NormalizedRecovery returns the host's average normalized recovery time
// over all its recoveries (the Figure 1 metric).
func (c *Collector) NormalizedRecovery(host topology.NodeID, rtt RTTFunc) LatencySummary {
	if c.streaming {
		return accumAt(c.perHost, host).summary()
	}
	return c.meanNormalized(rtt, func(r Recovery) bool { return r.Host == host })
}

// NormalizedRecoverySplit returns the host's average normalized recovery
// time separately for expedited and non-expedited recoveries (the
// Figure 2 metric).
func (c *Collector) NormalizedRecoverySplit(host topology.NodeID, rtt RTTFunc) (expedited, normal LatencySummary) {
	if c.streaming {
		return accumAt(c.perHostExp, host).summary(), accumAt(c.perHostStd, host).summary()
	}
	expedited = c.meanNormalized(rtt, func(r Recovery) bool { return r.Host == host && r.Expedited })
	normal = c.meanNormalized(rtt, func(r Recovery) bool { return r.Host == host && !r.Expedited })
	return expedited, normal
}

// FirstRoundNormalized returns the average normalized latency of
// non-expedited first-round recoveries across all hosts (the §3.4 /
// Eq. (1) metric).
func (c *Collector) FirstRoundNormalized(rtt RTTFunc) LatencySummary {
	if c.streaming {
		return c.firstRound.summary()
	}
	return c.meanNormalized(rtt, func(r Recovery) bool { return !r.Expedited && r.FirstRound() })
}

// OverallNormalized returns the average normalized latency over every
// recovery on every host.
func (c *Collector) OverallNormalized(rtt RTTFunc) LatencySummary {
	if c.streaming {
		return c.overall.summary()
	}
	return c.meanNormalized(rtt, func(Recovery) bool { return true })
}

// NormalizedPercentile returns the q-quantile (q in [0,1]) of the
// normalized recovery latencies across all hosts, or 0 with no
// recoveries. Stall behavior under faults shows up in the upper
// quantiles long before it moves the mean.
func (c *Collector) NormalizedPercentile(rtt RTTFunc, q float64) float64 {
	var norm []float64
	for _, r := range c.recoveries {
		basis := rtt(r.Host)
		if basis > 0 {
			norm = append(norm, float64(r.Latency())/float64(basis))
		}
	}
	if len(norm) == 0 {
		return 0
	}
	sort.Float64s(norm)
	i := int(q * float64(len(norm)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(norm) {
		i = len(norm) - 1
	}
	return norm[i]
}
