package stats

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

func at(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }

func fixedRTT(d time.Duration) RTTFunc {
	return func(topology.NodeID) time.Duration { return d }
}

func TestCollectorRecoveriesCarryDetectionTimes(t *testing.T) {
	c := New()
	c.LossDetected(2, 0, 10, at(100))
	c.Recovered(2, 0, 10, at(300), srm.RecoveryInfo{Requestor: 2, Replier: 0})
	recs := c.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d", len(recs))
	}
	r := recs[0]
	if r.DetectedAt != at(100) || r.RecoveredAt != at(300) {
		t.Fatalf("times = %v %v", r.DetectedAt, r.RecoveredAt)
	}
	if r.Latency() != 200*time.Millisecond {
		t.Fatalf("Latency = %v", r.Latency())
	}
	if c.Losses(2) != 1 || c.Losses(3) != 0 {
		t.Fatal("loss counts wrong")
	}
}

func TestFirstRoundClassification(t *testing.T) {
	cases := []struct {
		own, resched int
		want         bool
	}{
		{0, 0, true},
		{1, 0, true},
		{0, 1, true},
		{1, 1, false},
		{2, 0, false},
	}
	for _, cse := range cases {
		r := Recovery{OwnRequests: cse.own, Reschedules: cse.resched}
		if r.FirstRound() != cse.want {
			t.Errorf("FirstRound(own=%d, resched=%d) = %v, want %v",
				cse.own, cse.resched, r.FirstRound(), cse.want)
		}
	}
}

func TestHostCounters(t *testing.T) {
	c := New()
	c.RequestSent(2, 0, 1, 0)
	c.RequestSent(2, 0, 2, 1)
	c.ExpRequestSent(2, 0, 3)
	c.ReplySent(3, 0, 1, false)
	c.ReplySent(3, 0, 2, true)
	c.SessionSent(2)
	c.SessionSent(3)

	hc := c.Counts(2)
	if hc.Requests != 2 || hc.ExpRequests != 1 || hc.Sessions != 1 {
		t.Fatalf("host 2 counts = %+v", hc)
	}
	hc = c.Counts(3)
	if hc.Replies != 1 || hc.ExpReplies != 1 {
		t.Fatalf("host 3 counts = %+v", hc)
	}
	if c.Counts(99) != (HostCounts{}) {
		t.Fatal("unknown host should have zero counts")
	}
	tot := c.TotalCounts()
	if tot.Requests != 2 || tot.ExpRequests != 1 || tot.Replies != 1 || tot.ExpReplies != 1 || tot.Sessions != 2 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestExpeditedSuccessRatio(t *testing.T) {
	c := New()
	if _, ok := c.ExpeditedSuccessRatio(); ok {
		t.Fatal("ratio defined without expedited requests")
	}
	c.ExpRequestSent(2, 0, 1)
	c.ExpRequestSent(2, 0, 2)
	c.ExpRequestSent(2, 0, 3)
	c.ReplySent(3, 0, 1, true)
	c.ReplySent(3, 0, 2, true)
	ratio, ok := c.ExpeditedSuccessRatio()
	if !ok || ratio != 2.0/3.0 {
		t.Fatalf("ratio = %v, %v", ratio, ok)
	}
}

func TestNormalizedRecoveryAverages(t *testing.T) {
	c := New()
	rtt := fixedRTT(100 * time.Millisecond)
	// Host 2: latencies 100ms (1 RTT) and 300ms (3 RTT) => mean 2.
	c.LossDetected(2, 0, 1, at(0))
	c.Recovered(2, 0, 1, at(100), srm.RecoveryInfo{})
	c.LossDetected(2, 0, 2, at(0))
	c.Recovered(2, 0, 2, at(300), srm.RecoveryInfo{})
	// Host 3: one 200ms recovery => 2 RTT.
	c.LossDetected(3, 0, 1, at(100))
	c.Recovered(3, 0, 1, at(300), srm.RecoveryInfo{})

	s := c.NormalizedRecovery(2, rtt)
	if s.Count != 2 || s.MeanRTT != 2 {
		t.Fatalf("host 2 summary = %+v", s)
	}
	all := c.OverallNormalized(rtt)
	if all.Count != 3 || all.MeanRTT != 2 {
		t.Fatalf("overall = %+v", all)
	}
	none := c.NormalizedRecovery(99, rtt)
	if none.Count != 0 || none.MeanRTT != 0 {
		t.Fatalf("empty summary = %+v", none)
	}
}

func TestNormalizedRecoverySplit(t *testing.T) {
	c := New()
	rtt := fixedRTT(100 * time.Millisecond)
	c.LossDetected(2, 0, 1, at(0))
	c.Recovered(2, 0, 1, at(100), srm.RecoveryInfo{Expedited: true})
	c.LossDetected(2, 0, 2, at(0))
	c.Recovered(2, 0, 2, at(300), srm.RecoveryInfo{})

	exp, norm := c.NormalizedRecoverySplit(2, rtt)
	if exp.Count != 1 || exp.MeanRTT != 1 {
		t.Fatalf("expedited = %+v", exp)
	}
	if norm.Count != 1 || norm.MeanRTT != 3 {
		t.Fatalf("normal = %+v", norm)
	}
}

func TestFirstRoundNormalized(t *testing.T) {
	c := New()
	rtt := fixedRTT(100 * time.Millisecond)
	c.LossDetected(2, 0, 1, at(0))
	c.Recovered(2, 0, 1, at(200), srm.RecoveryInfo{OwnRequests: 1})
	c.LossDetected(2, 0, 2, at(0))
	c.Recovered(2, 0, 2, at(600), srm.RecoveryInfo{OwnRequests: 3}) // not first round
	c.LossDetected(2, 0, 3, at(0))
	c.Recovered(2, 0, 3, at(100), srm.RecoveryInfo{Expedited: true}) // excluded

	fr := c.FirstRoundNormalized(rtt)
	if fr.Count != 1 || fr.MeanRTT != 2 {
		t.Fatalf("first-round = %+v", fr)
	}
}

func TestZeroRTTBasisSkipped(t *testing.T) {
	c := New()
	c.LossDetected(2, 0, 1, at(0))
	c.Recovered(2, 0, 1, at(100), srm.RecoveryInfo{})
	s := c.OverallNormalized(fixedRTT(0))
	if s.Count != 0 {
		t.Fatalf("zero-RTT recovery aggregated: %+v", s)
	}
}
