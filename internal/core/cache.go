// Package core implements the Caching-Enhanced Scalable Reliable
// Multicast (CESRM) protocol of Livadas and Keidar (DSN 2004).
//
// CESRM runs SRM's recovery scheme unchanged and, in parallel, a
// caching-based expedited recovery scheme (§3): each receiver caches
// the optimal requestor/replier pair that recovered its recent losses
// from each source; upon a new loss, the receiver consults the cache
// and — if it is itself the cached requestor — immediately unicasts an
// expedited request to the cached replier, which immediately multicasts
// the packet, bypassing SRM's suppression delays. If expedited recovery
// fails (further loss, or the replier shares the loss), SRM's scheme
// recovers the packet as usual.
package core

import (
	"fmt"
	"time"

	"cesrm/internal/topology"
)

// Tuple is one cached recovery record ⟨i, q, d̂qs, r, d̂rq⟩ (§3.1): the
// requestor/replier pair that carried out the recovery of packet i,
// with the annotated distance estimates.
type Tuple struct {
	// Seq is the recovered packet's sequence number.
	Seq int
	// Requestor is the host whose request instigated the recovery.
	Requestor topology.NodeID
	// ReqDistToSource is the requestor's annotated distance to the
	// source (d̂qs).
	ReqDistToSource time.Duration
	// Replier is the host that retransmitted the packet.
	Replier topology.NodeID
	// ReplierDistToRequestor is the replier's annotated distance to the
	// requestor (d̂rq).
	ReplierDistToRequestor time.Duration
	// TurningPoint is the annotated turning-point router for
	// router-assisted operation (§3.3); None without router assistance.
	TurningPoint topology.NodeID
}

// RecoveryDelay is the paper's optimality metric for a cached pair:
// d̂qs + 2*d̂rq, preferring requestors close to the source and repliers
// that minimize round-trip recovery latency.
func (t Tuple) RecoveryDelay() time.Duration {
	return t.ReqDistToSource + 2*t.ReplierDistToRequestor
}

// Pair identifies a requestor/replier pair irrespective of packet.
type Pair struct {
	Requestor, Replier topology.NodeID
}

// Pair returns the tuple's requestor/replier pair.
func (t Tuple) Pair() Pair { return Pair{t.Requestor, t.Replier} }

// Cache holds the optimal requestor/replier tuples of a receiver's most
// recent losses from one source (§3.1). At most one tuple is kept per
// packet — the optimal one — and at most Capacity packets are tracked,
// evicting the least recent packet first.
type Cache struct {
	capacity int
	entries  map[int]Tuple
}

// DefaultCacheCapacity is the default number of recent losses tracked.
// The most-recent-loss policy only ever consults the newest entry, but a
// deeper cache serves the most-frequent-loss policy.
const DefaultCacheCapacity = 16

// NewCache returns a cache tracking up to capacity recent packets.
func NewCache(capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: cache capacity %d < 1", capacity)
	}
	return &Cache{capacity: capacity, entries: make(map[int]Tuple, capacity)}, nil
}

// Len returns the number of cached tuples.
func (c *Cache) Len() int { return len(c.entries) }

// Capacity returns the maximum number of cached tuples.
func (c *Cache) Capacity() int { return c.capacity }

// Get returns the cached tuple for packet seq.
func (c *Cache) Get(seq int) (Tuple, bool) {
	t, ok := c.entries[seq]
	return t, ok
}

// Update processes a recovery tuple observed on a repair reply (§3.1).
// If the packet is already cached, the stored tuple is replaced only if
// the new one affords a smaller recovery delay. Otherwise the tuple is
// inserted, evicting the least recent packet when full; tuples for
// packets less recent than everything cached are discarded when full.
// It returns whether the cache changed.
func (c *Cache) Update(t Tuple) bool {
	if cur, ok := c.entries[t.Seq]; ok {
		if t.RecoveryDelay() < cur.RecoveryDelay() {
			c.entries[t.Seq] = t
			return true
		}
		return false
	}
	if len(c.entries) >= c.capacity {
		oldest := t.Seq
		for seq := range c.entries {
			if seq < oldest {
				oldest = seq
			}
		}
		if oldest == t.Seq {
			return false // less recent than everything cached
		}
		delete(c.entries, oldest)
	}
	c.entries[t.Seq] = t
	return true
}

// InvalidateHost removes every cached tuple naming host n as requestor
// or replier, returning how many were removed. Expedited recovery
// degrades gracefully when cached hosts crash (§3.3) because a dead
// replier simply never answers; invalidation lets a membership-aware
// deployment skip even the wasted expedited attempt.
func (c *Cache) InvalidateHost(n topology.NodeID) int {
	removed := 0
	for seq, t := range c.entries {
		if t.Requestor == n || t.Replier == n {
			delete(c.entries, seq)
			removed++
		}
	}
	return removed
}

// MostRecent returns the tuple of the most recent cached packet.
func (c *Cache) MostRecent() (Tuple, bool) {
	best := -1
	for seq := range c.entries {
		if seq > best {
			best = seq
		}
	}
	if best < 0 {
		return Tuple{}, false
	}
	return c.entries[best], true
}

// MostFrequentPair returns the tuple whose requestor/replier pair
// appears most frequently in the cache; ties break toward the more
// recent packet.
func (c *Cache) MostFrequentPair() (Tuple, bool) {
	if len(c.entries) == 0 {
		return Tuple{}, false
	}
	counts := make(map[Pair]int)
	for _, t := range c.entries {
		counts[t.Pair()]++
	}
	var best Tuple
	bestCount := -1
	found := false
	for _, t := range c.entries {
		n := counts[t.Pair()]
		if n > bestCount || (n == bestCount && t.Seq > best.Seq) {
			best, bestCount, found = t, n, true
		}
	}
	return best, found
}

// Tuples returns a snapshot of all cached tuples in unspecified order.
func (c *Cache) Tuples() []Tuple {
	out := make([]Tuple, 0, len(c.entries))
	for _, t := range c.entries {
		out = append(out, t)
	}
	return out
}

// Policy selects the expeditious requestor/replier pair for a new loss
// from the cache (§3.2). Implementations must not mutate the cache.
type Policy interface {
	// Select returns the tuple to expedite with, or false when the
	// cache offers no candidate.
	Select(c *Cache) (Tuple, bool)
	// Name identifies the policy in experiment output.
	Name() string
}

// MostRecentLoss is the paper's preferred policy (§4.3): use the
// optimal pair that recovered the most recent loss, exploiting the
// observation that a loss's location correlates most strongly with the
// most recent loss's location.
type MostRecentLoss struct{}

// Select implements Policy.
func (MostRecentLoss) Select(c *Cache) (Tuple, bool) { return c.MostRecent() }

// Name implements Policy.
func (MostRecentLoss) Name() string { return "most-recent-loss" }

// MostFrequentLoss selects the pair appearing most frequently among the
// cached recoveries (§3.2).
type MostFrequentLoss struct{}

// Select implements Policy.
func (MostFrequentLoss) Select(c *Cache) (Tuple, bool) { return c.MostFrequentPair() }

// Name implements Policy.
func (MostFrequentLoss) Name() string { return "most-frequent-loss" }

var (
	_ Policy = MostRecentLoss{}
	_ Policy = MostFrequentLoss{}
)
