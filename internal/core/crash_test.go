package core

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// TestCacheEvolvesPastCrashedReplier exercises the §3.3 robustness
// claim: when a cached expeditious replier crashes, expedited recoveries
// fail, SRM's fallback keeps recovering losses, and the cache evolves to
// a live replier so later losses are expedited again.
func TestCacheEvolvesPastCrashedReplier(t *testing.T) {
	b := newBed(t, yTree(), detConfig())
	// Prime receiver 2 to expedite toward receiver 3.
	b.agents[2].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 2, ReqDistToSource: 40 * time.Millisecond,
		Replier: 3, ReplierDistToRequestor: 40 * time.Millisecond,
		TurningPoint: topology.None,
	})
	// Crash receiver 3 early; receiver 2 then loses packets 1 and 6 on
	// its leaf link.
	b.eng.ScheduleAt(sim.Time(10*time.Millisecond), func(sim.Time) {
		b.agents[3].SRM().Crash()
	})
	b.net.SetDropFunc(dropSeqsOnLink(2, 1, 6))
	b.sendData(9, 100*time.Millisecond)
	b.eng.Run()

	// Loss of seq 1: expedited request went to the dead host 3 — no
	// expedited reply — and SRM (the source) recovered the packet. The
	// recovery reply rewrites the cache with a live replier.
	if b.log.expReplies == 0 {
		t.Fatal("no expedited reply at all: cache never evolved past the crash")
	}
	tu, ok := b.agents[2].Cache(0).MostRecent()
	if !ok {
		t.Fatal("cache empty after recoveries")
	}
	if tu.Replier == 3 {
		t.Fatal("cache still names the crashed replier")
	}
	// Loss of seq 6 must have been expedited via the evolved pair.
	var seq6Expedited bool
	for _, r := range b.log.recoveries {
		if r.host == 2 && r.seq == 6 {
			seq6Expedited = r.info.Expedited
		}
	}
	if !seq6Expedited {
		t.Fatal("post-crash loss not expedited via evolved cache")
	}
	// Everything recovered despite the crash.
	if b.agents[2].SRM().MissingIn(0, 9) != 0 {
		t.Fatal("receiver 2 missing packets")
	}
}

// TestCrashedCESRMAgentIgnoresExpeditedRequests verifies a crashed host
// does not serve as expeditious replier.
func TestCrashedCESRMAgentIgnoresExpeditedRequests(t *testing.T) {
	b := newBed(t, yTree(), detConfig())
	b.agents[2].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 2, ReqDistToSource: 40 * time.Millisecond,
		Replier: 3, ReplierDistToRequestor: 40 * time.Millisecond,
		TurningPoint: topology.None,
	})
	b.agents[3].SRM().Crash()
	b.net.SetDropFunc(dropSeqsOnLink(2, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.log.expReqs[2] != 1 {
		t.Fatalf("expedited requests = %d, want 1", b.log.expReqs[2])
	}
	if b.log.expReplies != 0 {
		t.Fatal("crashed host answered an expedited request")
	}
	if b.agents[2].SRM().MissingIn(0, 3) != 0 {
		t.Fatal("fallback did not recover")
	}
}
