package core

import (
	"fmt"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// Config parameterizes a CESRM endpoint.
type Config struct {
	// SRM holds the fallback scheme's scheduling parameters.
	SRM srm.Params
	// ReorderDelay postpones expedited requests so that packets
	// presumed missing due to reordering are not chased (§3.2). The
	// paper's evaluation uses 0 because its simulations never reorder.
	ReorderDelay time.Duration
	// CacheCapacity bounds the per-source requestor/replier cache; zero
	// selects DefaultCacheCapacity.
	CacheCapacity int
	// Policy selects the expeditious requestor/replier pair; nil
	// selects MostRecentLoss, the policy the paper's evaluation uses.
	Policy Policy
	// RouterAssist enables the light-weight router-assisted mode of
	// §3.3: replies learn their turning-point routers and expedited
	// replies are unicast to the turning point and subcast downstream.
	RouterAssist bool
}

// DefaultConfig returns the configuration used in the paper's
// evaluation (§4.3): default SRM parameters, zero reorder delay, the
// most-recent-loss policy, and no router assistance.
func DefaultConfig() Config {
	return Config{SRM: srm.DefaultParams()}
}

// Agent is one CESRM endpoint. It embeds a full SRM agent (the fallback
// scheme runs unchanged) and adds the caching-based expedited recovery
// scheme. It implements netsim.Host.
type Agent struct {
	srm *srm.Agent
	net netsim.Endpoint
	eng sim.Sched
	cfg Config

	// caches holds one requestor/replier cache per source (§3.1).
	caches   map[topology.NodeID]*Cache
	capacity int
	policy   Policy

	// pendingExp tracks expedited-request timers by (source, sequence)
	// so arrival of the packet cancels them (REORDER-DELAY handling,
	// §3.2).
	pendingExp map[sourceSeq]sim.Timer

	expAttempts int
}

type sourceSeq struct {
	source topology.NodeID
	seq    int
}

var _ netsim.Host = (*Agent)(nil)
var _ srm.Extension = (*agentExtension)(nil)

// agentExtension adapts Agent to srm.Extension without exposing the
// hook methods on the public Agent API.
type agentExtension struct{ a *Agent }

func (e *agentExtension) LossDetected(now sim.Time, source topology.NodeID, seq int) {
	e.a.onLossDetected(now, source, seq)
}
func (e *agentExtension) PacketReceived(now sim.Time, source topology.NodeID, seq int) {
	e.a.onPacketReceived(source, seq)
}
func (e *agentExtension) ReplyObserved(now sim.Time, m *srm.ReplyMsg, everLost bool) {
	e.a.onReplyObserved(m, everLost)
}

// NewAgent constructs a CESRM endpoint at node id and registers it with
// the network. obs may be nil.
func NewAgent(eng sim.Sched, net netsim.Endpoint, rng *sim.RNG, id topology.NodeID, cfg Config, obs srm.Observer) (*Agent, error) {
	capacity := cfg.CacheCapacity
	if capacity == 0 {
		capacity = DefaultCacheCapacity
	}
	if capacity < 1 {
		return nil, fmt.Errorf("core: cache capacity %d < 1", capacity)
	}
	if cfg.ReorderDelay < 0 {
		return nil, fmt.Errorf("core: negative reorder delay %v", cfg.ReorderDelay)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = MostRecentLoss{}
	}
	// Cold-path maps, pre-sized from the receiver count so the steady
	// state never rehashes: one cache per observed source (usually just
	// the tree root, but any host may transmit), and a bounded number of
	// expedited-request timers pending at once.
	nr := len(net.Tree().Receivers())
	a := &Agent{
		net:        net,
		eng:        eng,
		cfg:        cfg,
		caches:     make(map[topology.NodeID]*Cache, 1+nr/16),
		capacity:   capacity,
		policy:     policy,
		pendingExp: make(map[sourceSeq]sim.Timer, 8+nr/4),
	}
	// The SRM agent registers itself with the network; re-register the
	// wrapper so expedited requests are intercepted here first.
	inner, err := srm.NewAgent(eng, net, rng, id, cfg.SRM, obs, &agentExtension{a})
	if err != nil {
		return nil, err
	}
	a.srm = inner
	net.AttachHost(id, a)
	return a, nil
}

// ID returns the agent's node.
func (a *Agent) ID() topology.NodeID { return a.srm.ID() }

// SRM returns the embedded fallback agent, giving access to shared
// state inspection (losses, distances, completion).
func (a *Agent) SRM() *srm.Agent { return a.srm }

// Cache returns the agent's requestor/replier cache for the given
// source's stream, creating an empty one on first use (§3.1: one cache
// per source).
func (a *Agent) Cache(source topology.NodeID) *Cache {
	c, ok := a.caches[source]
	if !ok {
		var err error
		c, err = NewCache(a.capacity)
		if err != nil {
			// Capacity was validated at construction, so this is an
			// internal invariant breach; the typed panic keeps the host
			// context so fuzzing harnesses can attribute it.
			panic(&InternalError{
				Host: a.ID(),
				Op:   fmt.Sprintf("creating recovery cache for source %d", source),
				Err:  err,
			})
		}
		a.caches[source] = c
	}
	return c
}

// PolicyName returns the active expedition policy's name.
func (a *Agent) PolicyName() string { return a.policy.Name() }

// ExpeditedAttempts counts losses for which this agent initiated (or
// scheduled) an expedited request.
func (a *Agent) ExpeditedAttempts() int { return a.expAttempts }

// StartSessions delegates to the SRM layer.
func (a *Agent) StartSessions() { a.srm.StartSessions() }

// Stop delegates to the SRM layer.
func (a *Agent) Stop() { a.srm.Stop() }

// Transmit delegates to the SRM layer, originating packet seq of this
// host's own stream.
func (a *Agent) Transmit(seq int) { a.srm.Transmit(seq) }

// Deliver implements netsim.Host: expedited requests are handled by the
// expedited recovery scheme; everything else flows through SRM, whose
// extension hooks call back into this agent.
func (a *Agent) Deliver(now sim.Time, p *netsim.Packet) {
	if a.srm.Crashed() || a.srm.Absent() {
		return
	}
	if m, ok := p.Msg.(*srm.RequestMsg); ok && m.Expedited {
		a.onExpeditedRequest(now, m)
		return
	}
	a.srm.Deliver(now, p)
}

// onLossDetected runs CESRM's expedited path in parallel with the SRM
// request just scheduled (§3.2): consult the cache, and if this host is
// the expeditious requestor of the selected pair, schedule an expedited
// request REORDER-DELAY in the future.
func (a *Agent) onLossDetected(now sim.Time, source topology.NodeID, seq int) {
	tuple, ok := a.policy.Select(a.Cache(source))
	if !ok || tuple.Requestor != a.ID() {
		return
	}
	a.expAttempts++
	replier := tuple.Replier
	turningPoint := topology.None
	if a.cfg.RouterAssist {
		turningPoint = tuple.TurningPoint
	}
	key := sourceSeq{source, seq}
	timer := a.eng.Schedule(a.cfg.ReorderDelay, func(sim.Time) {
		delete(a.pendingExp, key)
		if a.srm.Crashed() || a.srm.Absent() {
			return // Crash/Leave cancel these timers, but stay silent regardless
		}
		if a.srm.Has(source, seq) {
			return // arrived meanwhile; nothing to expedite
		}
		a.srm.UnicastExpeditedRequest(source, seq, replier, turningPoint)
	})
	a.pendingExp[key] = timer
}

// onPacketReceived cancels any pending expedited request for a packet
// that just arrived (reordering guard, §3.2).
func (a *Agent) onPacketReceived(source topology.NodeID, seq int) {
	key := sourceSeq{source, seq}
	if t, ok := a.pendingExp[key]; ok {
		a.eng.Cancel(t)
		delete(a.pendingExp, key)
	}
}

// onExpeditedRequest makes this host act as the expeditious replier
// (§3.2): if it has the packet and no reply is scheduled or pending, it
// immediately multicasts an expedited reply (or, with router
// assistance, unicasts it to the turning point for subcast, §3.3).
func (a *Agent) onExpeditedRequest(now sim.Time, m *srm.RequestMsg) {
	a.srm.SendExpeditedReply(now, m, a.cfg.RouterAssist)
}

// onReplyObserved maintains the requestor/replier cache (§3.1): replies
// for packets this host never lost are discarded; others contribute
// their annotated recovery tuple, keeping the optimal pair per packet.
func (a *Agent) onReplyObserved(m *srm.ReplyMsg, everLost bool) {
	if !everLost {
		return
	}
	if m.Requestor == topology.None {
		return
	}
	t := Tuple{
		Seq:                    m.Seq,
		Requestor:              m.Requestor,
		ReqDistToSource:        m.ReqDistToSource,
		Replier:                m.Replier,
		ReplierDistToRequestor: m.ReplierDistToRequestor,
		TurningPoint:           topology.None,
	}
	if a.cfg.RouterAssist {
		// In the router-assisted variant, routers annotate each reply
		// copy with the turning point at which it was forwarded
		// downstream toward this host: the highest router the copy
		// crossed between replier and this receiver.
		t.TurningPoint = a.net.Tree().TurningPoint(m.Replier, a.ID())
	}
	a.Cache(m.Source).Update(t)
}

// Crash makes the whole endpoint fail-stop: every pending REORDER-DELAY
// expedited-request timer is cancelled — a crashed host must never
// unicast an expedited request — and the SRM layer crashes (expedited
// requests arriving afterwards are also ignored).
func (a *Agent) Crash() {
	a.cancelPendingExp()
	a.srm.Crash()
}

// cancelPendingExp cancels and clears every pending REORDER-DELAY
// timer.
func (a *Agent) cancelPendingExp() {
	for key, t := range a.pendingExp {
		a.eng.Cancel(t)
		delete(a.pendingExp, key)
	}
}

// Crashed reports whether Crash has been called.
func (a *Agent) Crashed() bool { return a.srm.Crashed() }

// Restart rejoins a crashed endpoint (§3.3's dynamic-membership model):
// any leftover expedited-request timers are forgotten, every per-source
// requestor/replier cache is dropped — the cached pairs may name hosts
// that died while this one was down, and the scheme's graceful
// degradation relies on the cache re-converging to live pairs from
// observed recoveries — and the SRM layer restarts with fresh state,
// re-synchronizing via session messages.
func (a *Agent) Restart() {
	a.cancelPendingExp()
	a.caches = make(map[topology.NodeID]*Cache, 1+len(a.caches))
	a.srm.Restart()
}

// Leave makes the endpoint depart gracefully: pending REORDER-DELAY
// timers are cancelled — an absent host must never unicast an
// expedited request — and the SRM layer goes silent. Unlike Restart,
// the per-source caches survive: a graceful leave is not amnesia, and
// the member announced its departure, so on Join the cached pairs are
// exactly as stale as any other member's.
func (a *Agent) Leave() {
	a.cancelPendingExp()
	a.srm.Leave()
}

// Join rejoins a departed endpoint; the SRM layer restarts its session
// schedule and opens each stream's reliability window at the first
// post-join data it observes.
func (a *Agent) Join() { a.srm.Join() }

// Absent reports whether the endpoint has left and not rejoined.
func (a *Agent) Absent() bool { return a.srm.Absent() }

// InvalidateHost drops every cached tuple, in every per-source cache,
// that names dead as requestor or replier. The harness calls it on live
// endpoints when a membership service announces a crash, so stale pairs
// stop steering expedited requests at a dead host. Returns the number
// of tuples dropped.
func (a *Agent) InvalidateHost(dead topology.NodeID) int {
	removed := 0
	for _, c := range a.caches {
		removed += c.InvalidateHost(dead)
	}
	return removed
}
