package core

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// TestCrashBeforeReorderExpiryCancelsExpeditedRequest is the regression
// test for the post-crash expedited-transmission bug: a host that
// fail-stops between detecting a loss and its REORDER-DELAY expiry must
// not unicast the deferred expedited request. Before the fix the armed
// timer survived the crash and its closure only checked packet
// possession — which a crashed host, never receiving the repair, fails —
// so the dead host kept transmitting.
func TestCrashBeforeReorderExpiryCancelsExpeditedRequest(t *testing.T) {
	cfg := detConfig()
	cfg.ReorderDelay = 20 * time.Millisecond
	b := newBed(t, yTree(), cfg)
	b.agents[2].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 2, ReqDistToSource: 40 * time.Millisecond,
		Replier: 0, ReplierDistToRequestor: 40 * time.Millisecond,
		TurningPoint: topology.None,
	})
	b.net.SetDropFunc(dropSeqsOnLink(2, 1))
	b.sendData(3, 100*time.Millisecond)
	// Receiver 2 detects the loss of seq 1 when seq 2 arrives at ~250.7 ms
	// (two 20 ms hops plus payload serialization) and defers the expedited
	// request to ~270.7 ms; the crash lands in between.
	b.eng.ScheduleAt(sim.Time(260*time.Millisecond), func(sim.Time) {
		b.agents[2].Crash()
	})
	b.eng.Run()

	if b.agents[2].ExpeditedAttempts() != 1 {
		t.Fatalf("attempts = %d, want 1 (the loss was chased before the crash)", b.agents[2].ExpeditedAttempts())
	}
	if b.log.expReqs[2] != 0 {
		t.Fatalf("expedited requests = %d, want 0 (host crashed before expiry)", b.log.expReqs[2])
	}
	if b.log.expReplies != 0 {
		t.Fatal("an expedited reply answered a request that must never have been sent")
	}
}

// TestRestartedReceiverCatchesUp crashes a CESRM receiver, restarts it
// with amnesia, and checks the fresh incarnation recovers every packet —
// including those transmitted while it was down.
func TestRestartedReceiverCatchesUp(t *testing.T) {
	b := newBed(t, yTree(), detConfig())
	a := b.agents[2]
	b.eng.ScheduleAt(sim.Time(150*time.Millisecond), func(sim.Time) { a.Crash() })
	b.eng.ScheduleAt(sim.Time(450*time.Millisecond), func(sim.Time) {
		a.Restart()
		for id := range b.agents {
			if id != 2 {
				a.SRM().SetDistance(id, b.net.Distance(2, id))
			}
		}
	})
	b.sendData(8, 100*time.Millisecond)
	b.eng.RunUntil(sim.Time(30 * time.Second))

	if a.SRM().Crashed() {
		t.Fatal("Crashed() = true after restart")
	}
	if miss := a.SRM().MissingIn(0, 8); miss != 0 {
		t.Fatalf("restarted receiver missing %d packets", miss)
	}
	// The restart discarded the warm cache along with the rest of the
	// incarnation's state.
	if b.agents[3].SRM().MissingIn(0, 8) != 0 {
		t.Fatal("bystander receiver missing packets")
	}
}

// TestInvalidateHostDropsDeadPairs exercises the cache purge a
// membership announcement triggers: every cached tuple naming the dead
// host — as requestor or as replier — is dropped, others survive.
func TestInvalidateHostDropsDeadPairs(t *testing.T) {
	b := newBed(t, forkTree(), detConfig())
	c := b.agents[4].Cache(0)
	c.Update(Tuple{Seq: 1, Requestor: 4, Replier: 2, TurningPoint: topology.None})
	c.Update(Tuple{Seq: 2, Requestor: 2, Replier: 0, TurningPoint: topology.None})
	c.Update(Tuple{Seq: 3, Requestor: 4, Replier: 0, TurningPoint: topology.None})

	if got := b.agents[4].InvalidateHost(2); got != 2 {
		t.Fatalf("InvalidateHost(2) = %d, want 2", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache length = %d after purge, want 1", c.Len())
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("tuple not naming the dead host was purged")
	}
	if got := b.agents[4].InvalidateHost(2); got != 0 {
		t.Fatalf("second InvalidateHost(2) = %d, want 0", got)
	}
}
