package core

import (
	"fmt"

	"cesrm/internal/topology"
)

// InternalError is the panic value raised when the CESRM layer hits a
// state that construction-time validation was supposed to rule out. It
// is typed — rather than a bare panic(err) — so that harnesses running
// many randomized trials (the soak fuzzer) can recover it, attribute
// the failure to a host and operation, and minimize the schedule that
// provoked it instead of dying.
type InternalError struct {
	// Host is the agent the invariant broke on.
	Host topology.NodeID
	// Op names the operation that failed.
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *InternalError) Error() string {
	return fmt.Sprintf("cesrm: host %d: %s: %v", e.Host, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *InternalError) Unwrap() error { return e.Err }
