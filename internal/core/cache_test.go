package core

import (
	"testing"
	"testing/quick"
	"time"

	"cesrm/internal/topology"
)

func tup(seq int, q, r topology.NodeID, dqs, drq time.Duration) Tuple {
	return Tuple{Seq: seq, Requestor: q, ReqDistToSource: dqs, Replier: r, ReplierDistToRequestor: drq, TurningPoint: topology.None}
}

func TestRecoveryDelay(t *testing.T) {
	tp := tup(1, 2, 3, 40*time.Millisecond, 30*time.Millisecond)
	if got := tp.RecoveryDelay(); got != 100*time.Millisecond {
		t.Fatalf("RecoveryDelay = %v, want 100ms (d̂qs + 2*d̂rq)", got)
	}
}

func TestNewCacheRejectsBadCapacity(t *testing.T) {
	if _, err := NewCache(0); err == nil {
		t.Fatal("accepted zero capacity")
	}
	if _, err := NewCache(-3); err == nil {
		t.Fatal("accepted negative capacity")
	}
}

func TestCacheInsertAndGet(t *testing.T) {
	c, err := NewCache(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 4 || c.Len() != 0 {
		t.Fatal("fresh cache wrong shape")
	}
	tp := tup(5, 1, 2, time.Millisecond, time.Millisecond)
	if !c.Update(tp) {
		t.Fatal("insert reported no change")
	}
	got, ok := c.Get(5)
	if !ok || got != tp {
		t.Fatalf("Get(5) = %+v, %v", got, ok)
	}
	if _, ok := c.Get(6); ok {
		t.Fatal("Get on missing seq succeeded")
	}
}

func TestCacheKeepsOptimalTuplePerPacket(t *testing.T) {
	c, _ := NewCache(4)
	slow := tup(7, 1, 2, 100*time.Millisecond, 100*time.Millisecond) // delay 300ms
	fast := tup(7, 3, 4, 50*time.Millisecond, 50*time.Millisecond)   // delay 150ms
	c.Update(slow)
	if !c.Update(fast) {
		t.Fatal("better tuple rejected")
	}
	if got, _ := c.Get(7); got != fast {
		t.Fatalf("cached %+v, want the faster pair", got)
	}
	// A worse tuple must not displace the optimal one.
	if c.Update(slow) {
		t.Fatal("worse tuple accepted")
	}
	if got, _ := c.Get(7); got != fast {
		t.Fatal("optimal tuple displaced")
	}
}

func TestCacheEvictsLeastRecentPacket(t *testing.T) {
	c, _ := NewCache(2)
	c.Update(tup(1, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(5, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(9, 1, 2, time.Millisecond, time.Millisecond))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("least recent packet not evicted")
	}
	if _, ok := c.Get(9); !ok {
		t.Fatal("new packet not inserted")
	}
}

func TestCacheDiscardsStaleWhenFull(t *testing.T) {
	c, _ := NewCache(2)
	c.Update(tup(5, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(9, 1, 2, time.Millisecond, time.Millisecond))
	// Packet 3 is less recent than everything cached: discard.
	if c.Update(tup(3, 1, 2, time.Millisecond, time.Millisecond)) {
		t.Fatal("stale tuple accepted into full cache")
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("stale tuple cached")
	}
}

func TestMostRecent(t *testing.T) {
	c, _ := NewCache(4)
	if _, ok := c.MostRecent(); ok {
		t.Fatal("empty cache returned a tuple")
	}
	c.Update(tup(2, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(8, 3, 4, time.Millisecond, time.Millisecond))
	c.Update(tup(5, 5, 6, time.Millisecond, time.Millisecond))
	got, ok := c.MostRecent()
	if !ok || got.Seq != 8 {
		t.Fatalf("MostRecent = %+v, want seq 8", got)
	}
}

func TestMostFrequentPair(t *testing.T) {
	c, _ := NewCache(8)
	if _, ok := c.MostFrequentPair(); ok {
		t.Fatal("empty cache returned a tuple")
	}
	c.Update(tup(1, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(2, 3, 4, time.Millisecond, time.Millisecond))
	c.Update(tup(3, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(4, 1, 2, time.Millisecond, time.Millisecond))
	got, ok := c.MostFrequentPair()
	if !ok || got.Pair() != (Pair{1, 2}) {
		t.Fatalf("MostFrequentPair = %+v, want pair (1,2)", got)
	}
	// Ties break toward the most recent packet.
	c2, _ := NewCache(8)
	c2.Update(tup(1, 1, 2, time.Millisecond, time.Millisecond))
	c2.Update(tup(9, 3, 4, time.Millisecond, time.Millisecond))
	got, _ = c2.MostFrequentPair()
	if got.Seq != 9 {
		t.Fatalf("tie-break chose seq %d, want 9", got.Seq)
	}
}

func TestCacheUpdateTieKeepsExistingTuple(t *testing.T) {
	// Equal recovery delay must not displace the stored tuple: Update
	// replaces only on a strictly smaller delay, so re-observations of
	// an equally good pair leave the cache (and its Pair statistics)
	// untouched.
	c, _ := NewCache(4)
	first := tup(7, 1, 2, 40*time.Millisecond, 30*time.Millisecond)  // delay 100ms
	second := tup(7, 3, 4, 60*time.Millisecond, 20*time.Millisecond) // delay 100ms too
	c.Update(first)
	if c.Update(second) {
		t.Fatal("equal-delay tuple reported as a change")
	}
	if got, _ := c.Get(7); got != first {
		t.Fatalf("cached %+v after tie, want the original %+v", got, first)
	}
}

func TestCacheInsertBetweenOldestAndNewestWhenFull(t *testing.T) {
	// A packet less recent than the newest but more recent than the
	// oldest still enters a full cache, evicting the oldest.
	c, _ := NewCache(3)
	c.Update(tup(2, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(6, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(9, 1, 2, time.Millisecond, time.Millisecond))
	if !c.Update(tup(4, 1, 2, time.Millisecond, time.Millisecond)) {
		t.Fatal("mid-recency tuple rejected from full cache")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d after eviction, want 3", c.Len())
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("oldest packet survived eviction")
	}
	for _, seq := range []int{4, 6, 9} {
		if _, ok := c.Get(seq); !ok {
			t.Fatalf("packet %d missing after insert-with-eviction", seq)
		}
	}
}

func TestCacheInsertBelowOldestWhenFullUpdatesInPlace(t *testing.T) {
	// Insert-below-oldest is discarded when full — but an update to an
	// already-cached packet with the oldest seq must still go through
	// the replace-if-better path, not the eviction path.
	c, _ := NewCache(2)
	c.Update(tup(5, 1, 2, 100*time.Millisecond, 100*time.Millisecond))
	c.Update(tup(9, 1, 2, time.Millisecond, time.Millisecond))
	better := tup(5, 3, 4, 10*time.Millisecond, 10*time.Millisecond)
	if !c.Update(better) {
		t.Fatal("better tuple for cached oldest packet rejected")
	}
	if got, _ := c.Get(5); got != better {
		t.Fatalf("cached %+v, want the improved tuple", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (in-place update must not evict)", c.Len())
	}
}

func TestMostFrequentPairTieBreaksTowardRecentPacket(t *testing.T) {
	// Two pairs tied on frequency: the winner is the pair owning the
	// most recent cached packet, regardless of insertion order.
	c, _ := NewCache(8)
	c.Update(tup(1, 1, 2, time.Millisecond, time.Millisecond)) // pair A
	c.Update(tup(3, 1, 2, time.Millisecond, time.Millisecond)) // pair A
	c.Update(tup(2, 3, 4, time.Millisecond, time.Millisecond)) // pair B
	c.Update(tup(9, 3, 4, time.Millisecond, time.Millisecond)) // pair B, newest overall
	got, ok := c.MostFrequentPair()
	if !ok || got.Pair() != (Pair{3, 4}) || got.Seq != 9 {
		t.Fatalf("tie broke to %+v, want pair (3,4) at seq 9", got)
	}
}

func TestMostFrequentPairFrequencyBeatsRecency(t *testing.T) {
	// A strictly more frequent pair wins even when the most recent
	// packet belongs to a rarer pair.
	c, _ := NewCache(8)
	c.Update(tup(1, 1, 2, time.Millisecond, time.Millisecond)) // pair A
	c.Update(tup(2, 1, 2, time.Millisecond, time.Millisecond)) // pair A
	c.Update(tup(3, 1, 2, time.Millisecond, time.Millisecond)) // pair A
	c.Update(tup(9, 3, 4, time.Millisecond, time.Millisecond)) // pair B, newest
	got, ok := c.MostFrequentPair()
	if !ok || got.Pair() != (Pair{1, 2}) {
		t.Fatalf("selected %+v, want the frequent pair (1,2)", got)
	}
	if got.Seq != 3 {
		t.Fatalf("selected seq %d within the winning pair, want its most recent (3)", got.Seq)
	}
}

func TestPolicies(t *testing.T) {
	c, _ := NewCache(8)
	c.Update(tup(1, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(2, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(9, 3, 4, time.Millisecond, time.Millisecond))

	mr := MostRecentLoss{}
	if mr.Name() != "most-recent-loss" {
		t.Fatal("wrong policy name")
	}
	got, ok := mr.Select(c)
	if !ok || got.Seq != 9 {
		t.Fatalf("most-recent selected %+v", got)
	}

	mf := MostFrequentLoss{}
	if mf.Name() != "most-frequent-loss" {
		t.Fatal("wrong policy name")
	}
	got, ok = mf.Select(c)
	if !ok || got.Pair() != (Pair{1, 2}) {
		t.Fatalf("most-frequent selected %+v", got)
	}
}

func TestTuplesSnapshot(t *testing.T) {
	c, _ := NewCache(4)
	c.Update(tup(1, 1, 2, time.Millisecond, time.Millisecond))
	c.Update(tup(2, 3, 4, time.Millisecond, time.Millisecond))
	ts := c.Tuples()
	if len(ts) != 2 {
		t.Fatalf("Tuples returned %d entries", len(ts))
	}
}

func TestPropertyCacheInvariants(t *testing.T) {
	// Property: after any update sequence, (1) Len <= Capacity, (2) the
	// cached tuple for each packet has the minimum recovery delay among
	// tuples offered for that packet that were accepted while the packet
	// stayed cached, and (3) MostRecent returns the maximum cached seq.
	f := func(ops []uint16) bool {
		c, _ := NewCache(4)
		for _, op := range ops {
			seq := int(op % 32)
			q := topology.NodeID(op % 5)
			r := topology.NodeID(op % 7)
			d := time.Duration(op%11+1) * time.Millisecond
			c.Update(tup(seq, q, r, d, d))
			if c.Len() > c.Capacity() {
				return false
			}
			if best, ok := c.MostRecent(); ok {
				for _, tu := range c.Tuples() {
					if tu.Seq > best.Seq {
						return false
					}
				}
			} else if c.Len() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
