package core

import (
	"testing"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// obsLog records observer events for assertions.
type obsLog struct {
	recoveries []recEvent
	requests   int
	expReqs    map[topology.NodeID]int
	replies    int
	expReplies int
}

type recEvent struct {
	host topology.NodeID
	seq  int
	at   sim.Time
	info srm.RecoveryInfo
}

func newObsLog() *obsLog { return &obsLog{expReqs: map[topology.NodeID]int{}} }

func (l *obsLog) LossDetected(_, _ topology.NodeID, _ int, _ sim.Time) {}
func (l *obsLog) Recovered(h, source topology.NodeID, seq int, at sim.Time, info srm.RecoveryInfo) {
	l.recoveries = append(l.recoveries, recEvent{h, seq, at, info})
}
func (l *obsLog) RequestSent(_, _ topology.NodeID, _ int, _ int) { l.requests++ }
func (l *obsLog) ExpRequestSent(h, _ topology.NodeID, _ int) {
	l.expReqs[h]++
}
func (l *obsLog) ReplySent(h, source topology.NodeID, seq int, expedited bool) {
	if expedited {
		l.expReplies++
	} else {
		l.replies++
	}
}
func (l *obsLog) SessionSent(topology.NodeID) {}
func (l *obsLog) RequestAbandoned(_, _ topology.NodeID, _ int, _ int) {}

// detConfig returns a deterministic CESRM config (zero-width SRM timer
// windows).
func detConfig() Config {
	cfg := DefaultConfig()
	cfg.SRM.C2 = 0
	cfg.SRM.D2 = 0
	return cfg
}

type bed struct {
	eng    *sim.Engine
	net    *netsim.Network
	tree   *topology.Tree
	agents map[topology.NodeID]*Agent
	log    *obsLog
}

func newBed(t *testing.T, tree *topology.Tree, cfg Config) *bed {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.MustNew(eng, tree, netsim.DefaultConfig())
	log := newObsLog()
	b := &bed{eng: eng, net: net, tree: tree, agents: map[topology.NodeID]*Agent{}, log: log}
	rng := sim.NewRNG(3)
	hosts := append([]topology.NodeID{tree.Root()}, tree.Receivers()...)
	for _, id := range hosts {
		a, err := NewAgent(eng, net, rng.Split(), id, cfg, log)
		if err != nil {
			t.Fatal(err)
		}
		b.agents[id] = a
	}
	for _, x := range hosts {
		for _, y := range hosts {
			if x != y {
				b.agents[x].SRM().SetDistance(y, net.Distance(x, y))
			}
		}
	}
	return b
}

func (b *bed) sendData(n int, period time.Duration) {
	src := b.agents[b.tree.Root()]
	for i := 0; i < n; i++ {
		seq := i
		b.eng.ScheduleAt(sim.Time(time.Duration(i)*period), func(sim.Time) {
			src.Transmit(seq)
		})
	}
}

func yTree() *topology.Tree {
	return topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1})
}

// forkTree: 0 -> 1 -> 2 (receiver) and 1 -> 3 -> 4 (receiver).
func forkTree() *topology.Tree {
	return topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1, 3})
}

func dropSeqsOnLink(link topology.LinkID, seqs ...int) netsim.DropFunc {
	return func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*srm.DataMsg)
		if !ok || !down || l != link {
			return false
		}
		for _, s := range seqs {
			if m.Seq == s {
				return true
			}
		}
		return false
	}
}

func TestCacheWarmsFromSRMRecovery(t *testing.T) {
	b := newBed(t, yTree(), detConfig())
	b.net.SetDropFunc(dropSeqsOnLink(2, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	// Receiver 2 lost seq 1 and recovered via SRM; its cache must hold
	// the recovery tuple with itself as requestor.
	c := b.agents[2].Cache(0)
	tu, ok := c.Get(1)
	if !ok {
		t.Fatal("recovery tuple not cached")
	}
	if tu.Requestor != 2 {
		t.Fatalf("cached requestor = %d, want 2", tu.Requestor)
	}
	if tu.ReqDistToSource != 40*time.Millisecond {
		t.Fatalf("cached d̂qs = %v, want 40ms", tu.ReqDistToSource)
	}
	// Receiver 3 never lost seq 1: its cache stays empty (§3.1).
	if b.agents[3].Cache(0).Len() != 0 {
		t.Fatal("non-losing receiver cached a tuple")
	}
}

func TestSecondLossRecoversExpedited(t *testing.T) {
	b := newBed(t, yTree(), detConfig())
	// The second loss (seq 6) is detected well after the first one's
	// recovery completes, so the cache is warm by then. (Losses within
	// one detection window share a cold cache, as in the paper: the
	// first burst is never expedited.)
	b.net.SetDropFunc(dropSeqsOnLink(2, 1, 6))
	b.sendData(8, 100*time.Millisecond)
	b.eng.Run()

	var first, second *recEvent
	for i := range b.log.recoveries {
		r := &b.log.recoveries[i]
		switch r.seq {
		case 1:
			first = r
		case 6:
			second = r
		}
	}
	if first == nil || second == nil {
		t.Fatal("missing recoveries")
	}
	if first.info.Expedited {
		t.Fatal("first loss (cold cache) recovered expedited")
	}
	if !second.info.Expedited {
		t.Fatal("second loss not recovered expedited")
	}
	if b.log.expReqs[2] != 1 {
		t.Fatalf("expedited requests from receiver 2 = %d, want 1", b.log.expReqs[2])
	}
	if b.log.expReplies != 1 {
		t.Fatalf("expedited replies = %d, want 1", b.log.expReplies)
	}
	// The expedited recovery must be substantially faster than the SRM
	// one (the whole point of the protocol).
	srmLatency := first.at // relative comparisons need detection times; compare via agents
	_ = srmLatency
	var srmDur, expDur time.Duration
	for _, lr := range b.agents[2].SRM().Losses() {
		switch lr.Seq {
		case 1:
			srmDur = lr.RecoveredAt.Sub(lr.DetectedAt)
		case 6:
			expDur = lr.RecoveredAt.Sub(lr.DetectedAt)
		}
	}
	if expDur >= srmDur {
		t.Fatalf("expedited recovery (%v) not faster than SRM recovery (%v)", expDur, srmDur)
	}
	// On this 2-deep tree C1*d (80 ms) is shorter than the expedited
	// round trip (~91 ms), so the SRM request for seq 6 fires before the
	// expedited reply lands — one multicast request per loss. On the
	// paper's deeper trees the expedited reply wins and suppresses it
	// (asserted at integration level in internal/experiment).
	if b.log.requests != 2 {
		t.Fatalf("multicast requests = %d, want 2", b.log.requests)
	}
}

func TestExpeditedFailsWhenReplierSharesLoss(t *testing.T) {
	b := newBed(t, yTree(), detConfig())
	// Prime receiver 2's cache to expedite toward receiver 3.
	b.agents[2].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 2, ReqDistToSource: 40 * time.Millisecond,
		Replier: 3, ReplierDistToRequestor: 40 * time.Millisecond,
		TurningPoint: topology.None,
	})
	// Both receivers lose seq 1: the expedited replier shares the loss.
	b.net.SetDropFunc(dropSeqsOnLink(1, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.log.expReqs[2] != 1 {
		t.Fatalf("expedited requests = %d, want 1", b.log.expReqs[2])
	}
	if b.log.expReplies != 0 {
		t.Fatal("sharing replier sent an expedited reply")
	}
	// Fallback SRM recovery must still complete for both receivers.
	if b.agents[2].SRM().MissingIn(0, 3) != 0 || b.agents[3].SRM().MissingIn(0, 3) != 0 {
		t.Fatal("fallback recovery incomplete")
	}
	for _, r := range b.log.recoveries {
		if r.info.Expedited {
			t.Fatal("recovery marked expedited despite failure")
		}
	}
}

func TestOnlyCachedRequestorExpedites(t *testing.T) {
	b := newBed(t, yTree(), detConfig())
	// Receiver 3's cache names receiver 2 as the expeditious requestor;
	// receiver 3 must NOT unicast an expedited request itself.
	b.agents[3].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 2, ReqDistToSource: 40 * time.Millisecond,
		Replier: 0, ReplierDistToRequestor: 40 * time.Millisecond,
		TurningPoint: topology.None,
	})
	b.net.SetDropFunc(dropSeqsOnLink(1, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.log.expReqs[3] != 0 {
		t.Fatal("non-requestor receiver expedited")
	}
	if b.agents[3].ExpeditedAttempts() != 0 {
		t.Fatal("ExpeditedAttempts counted for non-requestor")
	}
}

func TestReorderDelayDefersExpeditedRequest(t *testing.T) {
	cfg := detConfig()
	cfg.ReorderDelay = 20 * time.Millisecond
	b := newBed(t, yTree(), cfg)
	b.agents[2].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 2, ReqDistToSource: 40 * time.Millisecond,
		Replier: 0, ReplierDistToRequestor: 40 * time.Millisecond,
		TurningPoint: topology.None,
	})
	b.net.SetDropFunc(dropSeqsOnLink(2, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.agents[2].ExpeditedAttempts() != 1 {
		t.Fatalf("attempts = %d, want 1", b.agents[2].ExpeditedAttempts())
	}
	if b.log.expReqs[2] != 1 {
		t.Fatalf("expedited requests = %d, want 1 (delay must not cancel)", b.log.expReqs[2])
	}
	// The expedited reply still arrives before the SRM repair reply, so
	// the recovery is marked expedited.
	for _, r := range b.log.recoveries {
		if r.host == 2 && r.seq == 1 && !r.info.Expedited {
			t.Fatal("deferred expedited request did not win the recovery")
		}
	}
}

func TestReorderDelayCancelsWhenPacketArrives(t *testing.T) {
	cfg := detConfig()
	// A reorder delay longer than the whole SRM recovery: the packet
	// arrives (via the fallback path) within the delay, so the
	// expedited unicast must be cancelled.
	cfg.ReorderDelay = 2 * time.Second
	b := newBed(t, yTree(), cfg)
	b.agents[2].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 2, ReqDistToSource: 40 * time.Millisecond,
		Replier: 0, ReplierDistToRequestor: 40 * time.Millisecond,
		TurningPoint: topology.None,
	})
	b.net.SetDropFunc(dropSeqsOnLink(2, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.agents[2].ExpeditedAttempts() != 1 {
		t.Fatalf("attempts = %d, want 1", b.agents[2].ExpeditedAttempts())
	}
	if b.log.expReqs[2] != 0 {
		t.Fatalf("expedited requests = %d, want 0 (cancelled by arrival)", b.log.expReqs[2])
	}
	for _, r := range b.log.recoveries {
		if r.info.Expedited {
			t.Fatal("recovery wrongly marked expedited")
		}
	}
	if b.agents[2].SRM().MissingIn(0, 3) != 0 {
		t.Fatal("recovery incomplete")
	}
}

func TestRouterAssistSubcastsExpeditedReply(t *testing.T) {
	cfg := detConfig()
	cfg.RouterAssist = true
	b := newBed(t, forkTree(), cfg)
	// Receiver 4's cache points at replier 2 with turning point 1
	// (LCA(2,4)).
	b.agents[4].Cache(0).Update(Tuple{
		Seq: 0, Requestor: 4, ReqDistToSource: 60 * time.Millisecond,
		Replier: 2, ReplierDistToRequestor: 60 * time.Millisecond,
		TurningPoint: 1,
	})
	// Seq 1 lost below router 3 only: receiver 4 loses, receiver 2 has.
	b.net.SetDropFunc(dropSeqsOnLink(3, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	if b.log.expReplies != 1 {
		t.Fatalf("expedited replies = %d, want 1", b.log.expReplies)
	}
	var rec *recEvent
	for i := range b.log.recoveries {
		if b.log.recoveries[i].host == 4 && b.log.recoveries[i].seq == 1 {
			rec = &b.log.recoveries[i]
		}
	}
	if rec == nil || !rec.info.Expedited {
		t.Fatal("receiver 4 did not recover via expedited subcast")
	}
	counts := b.net.Counts()
	if counts.PayloadSubcast == 0 {
		t.Fatal("no subcast crossings recorded")
	}
	if counts.PayloadUnicast == 0 {
		t.Fatal("no unicast leg recorded for the turning-point delivery")
	}
	// Localized recovery: the subcast stays below router 1 — links
	// below 1 are {2,3,4} and the unicast leg 2->1 is 1 crossing.
	if counts.PayloadSubcast != 3 {
		t.Fatalf("subcast crossings = %d, want 3", counts.PayloadSubcast)
	}
	if counts.PayloadUnicast != 1 {
		t.Fatalf("unicast payload crossings = %d, want 1", counts.PayloadUnicast)
	}
}

func TestRouterAssistCachesTurningPoints(t *testing.T) {
	cfg := detConfig()
	cfg.RouterAssist = true
	b := newBed(t, forkTree(), cfg)
	// Receiver 4 loses seq 1 and recovers via plain SRM; the cached
	// tuple must carry the turning point of the recovering reply.
	b.net.SetDropFunc(dropSeqsOnLink(3, 1))
	b.sendData(3, 100*time.Millisecond)
	b.eng.Run()

	tu, ok := b.agents[4].Cache(0).Get(1)
	if !ok {
		t.Fatal("no cached tuple")
	}
	if tu.TurningPoint == topology.None {
		t.Fatal("turning point not annotated in router-assist mode")
	}
	want := b.tree.TurningPoint(tu.Replier, 4)
	if tu.TurningPoint != want {
		t.Fatalf("turning point = %d, want %d", tu.TurningPoint, want)
	}
}

func TestNewAgentValidation(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.MustNew(eng, yTree(), netsim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.ReorderDelay = -time.Second
	if _, err := NewAgent(eng, net, sim.NewRNG(1), 2, cfg, nil); err == nil {
		t.Fatal("negative reorder delay accepted")
	}
	cfg = DefaultConfig()
	cfg.CacheCapacity = -1
	if _, err := NewAgent(eng, net, sim.NewRNG(1), 2, cfg, nil); err == nil {
		t.Fatal("negative cache capacity accepted")
	}
	cfg = DefaultConfig()
	cfg.SRM.SessionPeriod = -1
	if _, err := NewAgent(eng, net, sim.NewRNG(1), 2, cfg, nil); err == nil {
		t.Fatal("invalid SRM params accepted")
	}
}

func TestPolicyNameAndDefaults(t *testing.T) {
	b := newBed(t, yTree(), DefaultConfig())
	a := b.agents[2]
	if a.PolicyName() != "most-recent-loss" {
		t.Fatalf("default policy = %q", a.PolicyName())
	}
	if a.Cache(0).Capacity() != DefaultCacheCapacity {
		t.Fatalf("default capacity = %d", a.Cache(0).Capacity())
	}
	if a.ID() != 2 {
		t.Fatal("wrong ID")
	}
}
