package lossinfer

import (
	"math"
	"testing"
	"time"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// y builds 0 -> 1 -> {2, 3}: one router, two receivers.
func yTree(t *testing.T) *topology.Tree {
	t.Helper()
	return topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1})
}

// yTrace: 10 packets; receiver 2 loses {0,1,2}, receiver 3 loses {2}.
func yTrace(t *testing.T) *trace.Trace {
	t.Helper()
	loss := make([][]bool, 2)
	loss[0] = make([]bool, 10)
	loss[1] = make([]bool, 10)
	loss[0][0], loss[0][1], loss[0][2] = true, true, true
	loss[1][2] = true
	return &trace.Trace{
		Name:   "hand",
		Tree:   yTree(t),
		Period: 80 * time.Millisecond,
		Loss:   loss,
	}
}

func TestEstimateYajnikHandComputed(t *testing.T) {
	rates := EstimateYajnik(yTrace(t))
	// Packet 2 was lost by everyone: seen below node 1 on 9 of 10
	// packets, so link 1 loses 1/10. Link 2 loses the 2 packets (0,1)
	// that reached node 1 but not receiver 2: 2/9. Link 3 loses nothing.
	if got := rates[1]; math.Abs(got-0.1) > 1e-12 {
		t.Errorf("rate(link1) = %v, want 0.1", got)
	}
	if got := rates[2]; math.Abs(got-2.0/9.0) > 1e-12 {
		t.Errorf("rate(link2) = %v, want 2/9", got)
	}
	if got := rates[3]; got > rateFloor {
		t.Errorf("rate(link3) = %v, want ~0", got)
	}
}

func TestEstimateMLECloseToYajnikOnGenerated(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name:         "mle",
		Topology:     topology.GenSpec{Receivers: 10, Depth: 4},
		NumPackets:   30000,
		Period:       40 * time.Millisecond,
		TargetLosses: 9000,
		Seed:         13,
	})
	y := EstimateYajnik(tr)
	m := EstimateMLE(tr)
	mean, max, err := Compare(y, m)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports the two methods "yield very similar link loss
	// probability estimates" on its traces.
	if mean > 0.02 {
		t.Errorf("mean |yajnik-mle| = %.4f, want <= 0.02", mean)
	}
	if max > 0.15 {
		t.Errorf("max |yajnik-mle| = %.4f, want <= 0.15", max)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, _, err := Compare(LinkRates{1: 0.5}, LinkRates{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := Compare(LinkRates{1: 0.5}, LinkRates{2: 0.5}); err == nil {
		t.Fatal("key mismatch accepted")
	}
}

func TestAttributeSingleReceiverPattern(t *testing.T) {
	tree := yTree(t)
	rates := LinkRates{1: 0.1, 2: 0.05, 3: 0.05}
	attr, err := NewAttribution(tree, rates)
	if err != nil {
		t.Fatal(err)
	}
	// Receiver 2 (bit 0) lost alone: the only combination is {link 2}.
	pr, err := attr.Attribute(0b01)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Best) != 1 || pr.Best[0] != 2 {
		t.Fatalf("Best = %v, want [2]", pr.Best)
	}
	if pr.NumCombos != 1 {
		t.Fatalf("NumCombos = %v, want 1", pr.NumCombos)
	}
	if math.Abs(pr.BestProb-1) > 1e-12 {
		t.Fatalf("BestProb = %v, want 1", pr.BestProb)
	}
}

func TestAttributeAllLostPattern(t *testing.T) {
	tree := yTree(t)
	rates := LinkRates{1: 0.1, 2: 0.05, 3: 0.05}
	attr, err := NewAttribution(tree, rates)
	if err != nil {
		t.Fatal(err)
	}
	// Both lost: combinations are {1} with p=0.1 and {2,3} with
	// p=0.9*0.05*0.05=0.00225. Best is {1} with normalized probability
	// 0.1/(0.1+0.00225).
	pr, err := attr.Attribute(0b11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Best) != 1 || pr.Best[0] != 1 {
		t.Fatalf("Best = %v, want [1]", pr.Best)
	}
	if pr.NumCombos != 2 {
		t.Fatalf("NumCombos = %v, want 2", pr.NumCombos)
	}
	want := 0.1 / (0.1 + 0.00225)
	if math.Abs(pr.BestProb-want) > 1e-9 {
		t.Fatalf("BestProb = %v, want %v", pr.BestProb, want)
	}
}

func TestAttributePrefersLeafCombinationWhenSharedLinkClean(t *testing.T) {
	tree := yTree(t)
	// Shared link almost never loses; leaf links often do.
	rates := LinkRates{1: 0.001, 2: 0.4, 3: 0.4}
	attr, err := NewAttribution(tree, rates)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := attr.Attribute(0b11)
	if err != nil {
		t.Fatal(err)
	}
	// {2,3}: 0.999*0.16 = 0.1598 beats {1}: 0.001.
	if len(pr.Best) != 2 || pr.Best[0] != 2 || pr.Best[1] != 3 {
		t.Fatalf("Best = %v, want [2 3]", pr.Best)
	}
}

func TestAttributeDeeperTreeCombinationCount(t *testing.T) {
	//	     0
	//	     |
	//	     1
	//	    / \
	//	   2   3
	//	  / \ / \
	//	 4  5 6  7   (receivers)
	tree := topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1, 2, 2, 3, 3})
	rates := LinkRates{1: 0.1, 2: 0.1, 3: 0.1, 4: 0.1, 5: 0.1, 6: 0.1, 7: 0.1}
	attr, err := NewAttribution(tree, rates)
	if err != nil {
		t.Fatal(err)
	}
	// All four receivers lost. Combinations: {1}, {2,3}, {2,6,7},
	// {4,5,3}, {4,5,6,7} — count follows g(n) = prod(1+g(child)).
	pr, err := attr.Attribute(0b1111)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumCombos != 5 {
		t.Fatalf("NumCombos = %v, want 5", pr.NumCombos)
	}
	if len(pr.Best) != 1 || pr.Best[0] != 1 {
		t.Fatalf("Best = %v, want [1]", pr.Best)
	}
	// Partial pattern: only the left pair lost => {2} or {4,5}.
	pr, err = attr.Attribute(0b0011)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumCombos != 2 {
		t.Fatalf("partial NumCombos = %v, want 2", pr.NumCombos)
	}
	if len(pr.Best) != 1 || pr.Best[0] != 2 {
		t.Fatalf("partial Best = %v, want [2]", pr.Best)
	}
}

func TestAttributeRejectsBadInput(t *testing.T) {
	tree := yTree(t)
	if _, err := NewAttribution(tree, LinkRates{1: 0.1}); err == nil {
		t.Fatal("accepted wrong rate count")
	}
	attr, err := NewAttribution(tree, LinkRates{1: 0.1, 2: 0.1, 3: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := attr.Attribute(0); err == nil {
		t.Fatal("accepted empty pattern")
	}
	if _, err := attr.Attribute(0b100); err == nil {
		t.Fatal("accepted pattern with unknown receiver bits")
	}
}

func TestAttributeMemoizes(t *testing.T) {
	tree := yTree(t)
	attr, err := NewAttribution(tree, LinkRates{1: 0.1, 2: 0.1, 3: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := attr.Attribute(0b11)
	b, _ := attr.Attribute(0b11)
	if a != b {
		t.Fatal("repeated pattern not memoized")
	}
}

func TestInferExplainsEveryLossyPacket(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name:         "infer",
		Topology:     topology.GenSpec{Receivers: 9, Depth: 4},
		NumPackets:   8000,
		Period:       40 * time.Millisecond,
		TargetLosses: 2500,
		Seed:         17,
	})
	res, err := Infer(tr, EstimateYajnik(tr))
	if err != nil {
		t.Fatal(err)
	}
	// Invariant: for every packet, receiver r is below a selected drop
	// link iff r lost the packet.
	root := tr.Tree.Root()
	for i := 0; i < tr.NumPackets(); i++ {
		drops := res.Drops[i]
		if (drops == nil) != (tr.LossPattern(i) == 0) {
			t.Fatalf("packet %d: drops/pattern mismatch", i)
		}
		for ri, r := range tr.Tree.Receivers() {
			below := false
			for _, l := range tr.Tree.PathLinks(root, r) {
				for _, d := range drops {
					if l == d {
						below = true
					}
				}
			}
			if below != tr.Lost(ri, i) {
				t.Fatalf("packet %d receiver %d: selected combination does not reproduce the loss pattern", i, ri)
			}
		}
	}
	if res.DistinctPatterns <= 0 {
		t.Fatal("no distinct patterns recorded")
	}
	if len(res.SelectedProbs) != countLossy(tr) {
		t.Fatalf("SelectedProbs has %d entries, want %d", len(res.SelectedProbs), countLossy(tr))
	}
}

func countLossy(tr *trace.Trace) int {
	n := 0
	for i := 0; i < tr.NumPackets(); i++ {
		if tr.LossPattern(i) != 0 {
			n++
		}
	}
	return n
}

func TestInferConfidenceHighOnSyntheticTraces(t *testing.T) {
	// The paper's §4.2 claim: selections are predominantly accurate,
	// with >90% of selected combinations exceeding probability 0.95 on
	// 13 of 14 traces. Synthetic bursty traces should behave similarly.
	tr := trace.MustGenerate(trace.GenSpec{
		Name:         "conf",
		Topology:     topology.GenSpec{Receivers: 10, Depth: 4},
		NumPackets:   20000,
		Period:       80 * time.Millisecond,
		TargetLosses: 6000,
		Seed:         29,
	})
	res, err := Infer(tr, EstimateYajnik(tr))
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Confidence(0.95); c < 0.7 {
		t.Errorf("confidence(0.95) = %.3f, want >= 0.7", c)
	}
	if c := res.Confidence(0.0); c != 1 {
		t.Errorf("confidence(0) = %.3f, want 1", c)
	}
}

func TestGroundTruthAccuracy(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name:         "gt",
		Topology:     topology.GenSpec{Receivers: 8, Depth: 4},
		NumPackets:   15000,
		Period:       80 * time.Millisecond,
		TargetLosses: 4000,
		Seed:         31,
	})
	res, err := Infer(tr, EstimateYajnik(tr))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := GroundTruthAccuracy(tr, res)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("ground-truth accuracy %.3f, want >= 0.6", acc)
	}

	noTruth := *tr
	noTruth.TrueDrops = nil
	if _, err := GroundTruthAccuracy(&noTruth, res); err == nil {
		t.Fatal("accepted trace without ground truth")
	}
}

func TestConfidenceEmptyResult(t *testing.T) {
	r := &Result{}
	if r.Confidence(0.95) != 1 {
		t.Fatal("empty result should be vacuously confident")
	}
}

func TestLogAddExp(t *testing.T) {
	got := logAddExp(math.Log(0.3), math.Log(0.2))
	if math.Abs(got-math.Log(0.5)) > 1e-12 {
		t.Fatalf("logAddExp = %v, want log(0.5)", got)
	}
	if got := logAddExp(math.Inf(-1), math.Log(0.7)); math.Abs(got-math.Log(0.7)) > 1e-12 {
		t.Fatal("logAddExp with -inf wrong")
	}
	if got := logAddExp(math.Log(0.7), math.Inf(-1)); math.Abs(got-math.Log(0.7)) > 1e-12 {
		t.Fatal("logAddExp with -inf (second arg) wrong")
	}
}

func TestEqualLinkSets(t *testing.T) {
	if !equalLinkSets([]topology.LinkID{3, 1}, []topology.LinkID{1, 3}) {
		t.Fatal("order should not matter")
	}
	if equalLinkSets([]topology.LinkID{1}, []topology.LinkID{1, 3}) {
		t.Fatal("length mismatch accepted")
	}
	if equalLinkSets([]topology.LinkID{1, 2}, []topology.LinkID{1, 3}) {
		t.Fatal("different sets equal")
	}
}

func BenchmarkEstimateYajnik(b *testing.B) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name:         "bench",
		Topology:     topology.GenSpec{Receivers: 12, Depth: 5},
		NumPackets:   10000,
		Period:       40 * time.Millisecond,
		TargetLosses: 3000,
		Seed:         1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateYajnik(tr)
	}
}

func BenchmarkInfer(b *testing.B) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name:         "bench",
		Topology:     topology.GenSpec{Receivers: 12, Depth: 5},
		NumPackets:   10000,
		Period:       40 * time.Millisecond,
		TargetLosses: 3000,
		Seed:         1,
	})
	rates := EstimateYajnik(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Infer(tr, rates); err != nil {
			b.Fatal(err)
		}
	}
}

// TestChainTopologyUnidentifiableLinks exercises the single-child chain
// case: per-link rates on a chain are not individually identifiable
// from leaf observations, and both estimators conventionally attribute
// the chain's combined loss to its topmost link.
func TestChainTopologyUnidentifiableLinks(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 (single receiver at the end of a chain).
	tree := topology.MustNew([]topology.NodeID{topology.None, 0, 1, 2})
	loss := make([][]bool, 1)
	loss[0] = make([]bool, 10)
	loss[0][2], loss[0][5] = true, true // 2 of 10 lost
	tr := &trace.Trace{Name: "chain", Tree: tree, Period: 80 * time.Millisecond, Loss: loss}

	y := EstimateYajnik(tr)
	if math.Abs(y[1]-0.2) > 1e-12 {
		t.Fatalf("chain-top rate = %v, want 0.2", y[1])
	}
	if y[2] > rateFloor || y[3] > rateFloor {
		t.Fatalf("lower chain links should carry no loss: %v %v", y[2], y[3])
	}
	m := EstimateMLE(tr)
	if math.Abs(m[1]-0.2) > 1e-9 {
		t.Fatalf("MLE chain-top rate = %v, want 0.2", m[1])
	}

	// Attribution on a chain: the only-receiver pattern has three
	// producing combinations ({1},{2},{3}); the top link dominates.
	res, err := Infer(tr, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, drops := range res.Drops {
		if (drops != nil) != tr.Lost(0, i) {
			t.Fatalf("packet %d attribution mismatch", i)
		}
		if drops != nil && drops[0] != 1 {
			t.Fatalf("packet %d attributed to link %d, want chain top 1", i, drops[0])
		}
	}
}

// TestAttributeDeterministicAcrossCalls guards the memoization from
// aliasing bugs: repeated attributions of interleaved patterns must be
// stable.
func TestAttributeDeterministicAcrossCalls(t *testing.T) {
	tree := topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1, 0, 4, 4})
	rates := LinkRates{1: 0.1, 2: 0.2, 3: 0.05, 4: 0.15, 5: 0.1, 6: 0.3}
	attr, err := NewAttribution(tree, rates)
	if err != nil {
		t.Fatal(err)
	}
	patterns := []uint64{0b0001, 0b0011, 0b1111, 0b1100, 0b0101}
	first := map[uint64]*PatternResult{}
	for _, x := range patterns {
		r, err := attr.Attribute(x)
		if err != nil {
			t.Fatal(err)
		}
		first[x] = r
	}
	for round := 0; round < 3; round++ {
		for _, x := range patterns {
			r, err := attr.Attribute(x)
			if err != nil {
				t.Fatal(err)
			}
			if r != first[x] {
				t.Fatalf("pattern %b re-attributed to a different result", x)
			}
		}
	}
}
