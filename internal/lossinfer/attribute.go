package lossinfer

import (
	"fmt"
	"math"
	"sort"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// PatternResult is the attribution for one observed loss pattern: the
// most probable link combination that produces the pattern, its
// probability normalized over all producing combinations (the paper's
// pC_x(c)), and the number of such combinations.
//
// A combination is an antichain of links: no member is downstream of
// another, because links below a dropped link never see the packet. Its
// occurrence probability multiplies the loss probabilities of its
// members with the success probabilities of every link that is neither
// a member nor downstream of one (the paper's set U).
type PatternResult struct {
	// Pattern is the receiver-index bitmask this result explains.
	Pattern uint64
	// Best is the maximum-probability combination, in ascending link
	// order.
	Best []topology.LinkID
	// BestProb is the normalized probability of Best among all
	// combinations producing the pattern, in (0, 1].
	BestProb float64
	// NumCombos is the number of distinct producing combinations,
	// computed in floating point because all-lost patterns on deep trees
	// have combinatorially many.
	NumCombos float64
}

// Attribution computes per-pattern link attributions for one tree and
// rate estimate. It memoizes by pattern, which the traces reward
// heavily: loss locality means the same patterns recur for long runs.
type Attribution struct {
	tree  *topology.Tree
	rates LinkRates

	logP       []float64 // per node: log loss rate of its inbound link
	logQ       []float64 // per node: log success rate of its inbound link
	cleanBelow []float64 // per node: sum of logQ over links strictly below
	maskBelow  []uint64  // per node: receiver-index bits below the node
	memo       map[uint64]*PatternResult
}

// NewAttribution prepares attribution over the tree with the given link
// rates. Trees with more than 64 receivers are rejected (patterns are
// bitmasks, matching the scale of the paper's 17-host traces); Infer
// routes such trees through the equivalent wide-pattern DP instead.
func NewAttribution(tree *topology.Tree, rates LinkRates) (*Attribution, error) {
	if tree.NumReceivers() > 64 {
		return nil, fmt.Errorf("lossinfer: %d receivers exceed the 64-receiver pattern limit", tree.NumReceivers())
	}
	if len(rates) != tree.NumLinks() {
		return nil, fmt.Errorf("lossinfer: %d rates for %d links", len(rates), tree.NumLinks())
	}
	a := &Attribution{
		tree:       tree,
		rates:      rates,
		logP:       make([]float64, tree.NumNodes()),
		logQ:       make([]float64, tree.NumNodes()),
		cleanBelow: make([]float64, tree.NumNodes()),
		maskBelow:  make([]uint64, tree.NumNodes()),
		memo:       make(map[uint64]*PatternResult),
	}
	bit := make(map[topology.NodeID]int, tree.NumReceivers())
	for i, r := range tree.Receivers() {
		bit[r] = i
	}
	// Bottom-up accumulation: process nodes in reverse preorder so
	// children are handled before parents.
	order := tree.NodesBelow(tree.Root())
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n != tree.Root() {
			p := clampRate(rates[n])
			a.logP[n] = math.Log(p)
			a.logQ[n] = math.Log1p(-p)
		}
		if tree.IsReceiver(n) {
			a.maskBelow[n] = 1 << uint(bit[n])
		}
		for _, c := range tree.Children(n) {
			a.maskBelow[n] |= a.maskBelow[c]
			a.cleanBelow[n] += a.logQ[c] + a.cleanBelow[c]
		}
	}
	return a, nil
}

// logAddExp returns log(exp(a)+exp(b)) stably.
func logAddExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// nodeSolution is the dynamic-programming state for one subtree: the
// log-probability summed over all combinations explaining the restricted
// pattern, the log-probability of the best combination, the best
// combination itself, and the combination count.
type nodeSolution struct {
	logSum float64
	logMax float64
	best   []topology.LinkID
	count  float64
}

// Attribute returns the attribution for pattern x (a non-zero bitmask of
// receiver indices that lost the packet). Results are memoized.
func (a *Attribution) Attribute(x uint64) (*PatternResult, error) {
	if x == 0 {
		return nil, fmt.Errorf("lossinfer: empty loss pattern")
	}
	if x&^a.maskBelow[a.tree.Root()] != 0 {
		return nil, fmt.Errorf("lossinfer: pattern %b references unknown receivers", x)
	}
	if r, ok := a.memo[x]; ok {
		return r, nil
	}
	sol := a.solve(a.tree.Root(), x)
	if math.IsInf(sol.logSum, -1) {
		return nil, fmt.Errorf("lossinfer: pattern %b has no producing combination", x)
	}
	best := append([]topology.LinkID(nil), sol.best...)
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	r := &PatternResult{
		Pattern:   x,
		Best:      best,
		BestProb:  math.Exp(sol.logMax - sol.logSum),
		NumCombos: sol.count,
	}
	a.memo[x] = r
	return r, nil
}

// solve computes the DP state for node n explaining x∩maskBelow(n),
// assuming the packet reaches n.
//
// This dynamic program computes, exactly, the same quantities the paper
// derives from explicitly enumerating C_x: the per-child options
// multiply independently, a fully-lost child subtree admits either
// "drop on the child link" (probability p, links below marginalized
// out of U) or "child link clean and the subtree explains the rest",
// and a loss-free child subtree forces every link in it clean.
func (a *Attribution) solve(n topology.NodeID, x uint64) nodeSolution {
	sub := x & a.maskBelow[n]
	if sub == 0 {
		// Nothing below n lost: every link strictly below must be clean.
		return nodeSolution{logSum: a.cleanBelow[n], logMax: a.cleanBelow[n], count: 1}
	}
	if a.tree.IsLeaf(n) {
		// A leaf cannot explain its own loss from below; the caller's
		// drop-the-inbound-link option covers it.
		return nodeSolution{logSum: math.Inf(-1), logMax: math.Inf(-1), count: 0}
	}
	total := nodeSolution{count: 1}
	for _, c := range a.tree.Children(n) {
		childSub := x & a.maskBelow[c]
		inner := a.solve(c, childSub)
		// Option 1: child link clean, subtree explains childSub.
		optSum := a.logQ[c] + inner.logSum
		optMax := a.logQ[c] + inner.logMax
		optBest := inner.best
		optCount := inner.count
		// Option 2: child link drops — only when everything below c lost.
		if childSub == a.maskBelow[c] && childSub != 0 {
			optSum = logAddExp(optSum, a.logP[c])
			if a.logP[c] > optMax {
				optMax = a.logP[c]
				optBest = []topology.LinkID{c}
			}
			optCount++
		}
		total.logSum += optSum
		total.logMax += optMax
		total.best = append(total.best, optBest...)
		total.count *= optCount
	}
	return total
}

// Result is the link trace representation of §4.2 for a whole trace: per
// packet, the selected link combination responsible for its losses, plus
// the §4.2 confidence statistics.
type Result struct {
	// Rates are the link loss rates used for attribution.
	Rates LinkRates
	// Drops holds, per packet, the selected combination (nil when the
	// packet was lost by nobody).
	Drops [][]topology.LinkID
	// SelectedProbs holds the normalized probability of each lossy
	// packet's selected combination, in packet order.
	SelectedProbs []float64
	// DistinctPatterns is the number of distinct non-empty loss patterns
	// observed.
	DistinctPatterns int
}

// Infer computes the link trace representation for t using the given
// rates (typically EstimateYajnik(t)). Traces up to 64 receivers take
// the uint64 bitmask fast path; wider ones the equivalent count-based
// DP (widepattern.go).
func Infer(t *trace.Trace, rates LinkRates) (*Result, error) {
	if t.Tree.NumReceivers() > 64 {
		return inferWide(t, rates)
	}
	attr, err := NewAttribution(t.Tree, rates)
	if err != nil {
		return nil, err
	}
	n := t.NumPackets()
	res := &Result{
		Rates: rates,
		Drops: make([][]topology.LinkID, n),
	}
	for i := 0; i < n; i++ {
		x := t.LossPattern(i)
		if x == 0 {
			continue
		}
		pr, err := attr.Attribute(x)
		if err != nil {
			return nil, fmt.Errorf("lossinfer: packet %d: %w", i, err)
		}
		res.Drops[i] = pr.Best
		res.SelectedProbs = append(res.SelectedProbs, pr.BestProb)
	}
	res.DistinctPatterns = len(attr.memo)
	return res, nil
}

// Confidence returns the fraction of lossy packets whose selected
// combination has normalized probability strictly exceeding the
// threshold — the statistic behind the paper's claim that for 13 of 14
// traces more than 90% of selections exceed probability 0.95.
func (r *Result) Confidence(threshold float64) float64 {
	if len(r.SelectedProbs) == 0 {
		return 1
	}
	n := 0
	for _, p := range r.SelectedProbs {
		if p > threshold {
			n++
		}
	}
	return float64(n) / float64(len(r.SelectedProbs))
}

// GroundTruthAccuracy compares the selected combinations against a
// synthetic trace's ground truth, returning the fraction of lossy
// packets whose selected combination matches the true drop set exactly.
// This check goes beyond the paper (which had no ground truth for real
// traces) and is only available for generated traces.
func GroundTruthAccuracy(t *trace.Trace, r *Result) (float64, error) {
	if t.TrueDrops == nil {
		return 0, fmt.Errorf("lossinfer: trace %q carries no ground truth", t.Name)
	}
	lossy, match := 0, 0
	for i := range r.Drops {
		if r.Drops[i] == nil {
			continue
		}
		lossy++
		if equalLinkSets(r.Drops[i], t.TrueDrops[i]) {
			match++
		}
	}
	if lossy == 0 {
		return 1, nil
	}
	return float64(match) / float64(lossy), nil
}

func equalLinkSets(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]topology.LinkID(nil), a...)
	bs := append([]topology.LinkID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
