package lossinfer

import (
	"fmt"
	"math"
	"sort"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// Wide-pattern attribution: the same §4.2 dynamic program as
// Attribution, for trees beyond the 64-receiver bitmask limit.
//
// The bitmask DP only ever asks two questions of a pattern restricted
// to a subtree — "did anything below n get lost?" (sub == 0) and "did
// everything below n get lost?" (sub == maskBelow[n]) — so arbitrary
// receiver counts need no bitset arithmetic at all: a per-node counter
// of lost receivers below n, filled by climbing root-ward from each
// lost receiver, answers both in O(1). A pattern with L lost receivers
// costs O(L·depth) to stamp and the solve pass touches only the lossy
// spine and its direct children, which keeps 10k-receiver traces
// tractable. Results are memoized by the sorted lost-receiver index
// list, rewarding the same loss locality the bitmask memo exploits.
type wideAttribution struct {
	tree       *topology.Tree
	logP       []float64 // per node: log loss rate of its inbound link
	logQ       []float64 // per node: log success rate of its inbound link
	cleanBelow []float64 // per node: sum of logQ over links strictly below
	recvBelow  []int32   // per node: receivers in the subtree rooted at it
	lost       []int32   // scratch: lost receivers below the node, this pattern
	touched    []topology.NodeID
	memo       map[string]*PatternResult
}

// newWideAttribution prepares wide attribution over the tree with the
// given link rates.
func newWideAttribution(tree *topology.Tree, rates LinkRates) (*wideAttribution, error) {
	if len(rates) != tree.NumLinks() {
		return nil, fmt.Errorf("lossinfer: %d rates for %d links", len(rates), tree.NumLinks())
	}
	a := &wideAttribution{
		tree:       tree,
		logP:       make([]float64, tree.NumNodes()),
		logQ:       make([]float64, tree.NumNodes()),
		cleanBelow: make([]float64, tree.NumNodes()),
		recvBelow:  make([]int32, tree.NumNodes()),
		lost:       make([]int32, tree.NumNodes()),
		memo:       make(map[string]*PatternResult),
	}
	// Bottom-up accumulation, as in NewAttribution.
	order := tree.NodesBelow(tree.Root())
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n != tree.Root() {
			p := clampRate(rates[n])
			a.logP[n] = math.Log(p)
			a.logQ[n] = math.Log1p(-p)
		}
		if tree.IsReceiver(n) {
			a.recvBelow[n] = 1
		}
		for _, c := range tree.Children(n) {
			a.recvBelow[n] += a.recvBelow[c]
			a.cleanBelow[n] += a.logQ[c] + a.cleanBelow[c]
		}
	}
	return a, nil
}

// attribute computes (memoized) the attribution for the loss pattern
// given as the ascending list of lost receiver nodes; key is its
// canonical encoding. lostRecv must be non-empty.
func (a *wideAttribution) attribute(lostRecv []topology.NodeID, key string) (*PatternResult, error) {
	if r, ok := a.memo[key]; ok {
		return r, nil
	}
	// Stamp per-node lost counts along each receiver's root path.
	for _, r := range lostRecv {
		for n := r; n != topology.None; n = a.tree.Parent(n) {
			if a.lost[n] == 0 {
				a.touched = append(a.touched, n)
			}
			a.lost[n]++
		}
	}
	sol := a.solve(a.tree.Root())
	for _, n := range a.touched {
		a.lost[n] = 0
	}
	a.touched = a.touched[:0]
	if math.IsInf(sol.logSum, -1) {
		return nil, fmt.Errorf("lossinfer: pattern of %d losses has no producing combination", len(lostRecv))
	}
	best := append([]topology.LinkID(nil), sol.best...)
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	r := &PatternResult{
		// Pattern is a uint64 bitmask and cannot represent wide
		// patterns; it stays zero here.
		Best:      best,
		BestProb:  math.Exp(sol.logMax - sol.logSum),
		NumCombos: sol.count,
	}
	a.memo[key] = r
	return r, nil
}

// solve mirrors Attribution.solve with the restricted pattern
// represented by the stamped lost counters: lost[n] == 0 means nothing
// below n was lost, lost[n] == recvBelow[n] means everything was.
func (a *wideAttribution) solve(n topology.NodeID) nodeSolution {
	if a.lost[n] == 0 {
		return nodeSolution{logSum: a.cleanBelow[n], logMax: a.cleanBelow[n], count: 1}
	}
	if a.tree.IsLeaf(n) {
		return nodeSolution{logSum: math.Inf(-1), logMax: math.Inf(-1), count: 0}
	}
	total := nodeSolution{count: 1}
	for _, c := range a.tree.Children(n) {
		inner := a.solve(c)
		// Option 1: child link clean, subtree explains its losses.
		optSum := a.logQ[c] + inner.logSum
		optMax := a.logQ[c] + inner.logMax
		optBest := inner.best
		optCount := inner.count
		// Option 2: child link drops — only when everything below c lost.
		if a.lost[c] == a.recvBelow[c] && a.lost[c] != 0 {
			optSum = logAddExp(optSum, a.logP[c])
			if a.logP[c] > optMax {
				optMax = a.logP[c]
				optBest = []topology.LinkID{c}
			}
			optCount++
		}
		total.logSum += optSum
		total.logMax += optMax
		total.best = append(total.best, optBest...)
		total.count *= optCount
	}
	return total
}

// inferWide is Infer for traces beyond the 64-receiver bitmask limit.
func inferWide(t *trace.Trace, rates LinkRates) (*Result, error) {
	attr, err := newWideAttribution(t.Tree, rates)
	if err != nil {
		return nil, err
	}
	n := t.NumPackets()
	res := &Result{
		Rates: rates,
		Drops: make([][]topology.LinkID, n),
	}
	receivers := t.Tree.Receivers()
	var lostIdx []int
	var lost []topology.NodeID
	var key []byte
	for i := 0; i < n; i++ {
		lostIdx = t.LostReceivers(i, lostIdx[:0])
		if len(lostIdx) == 0 {
			continue
		}
		lost = lost[:0]
		key = key[:0]
		for _, r := range lostIdx {
			lost = append(lost, receivers[r])
			key = append(key, byte(r), byte(r>>8), byte(r>>16), byte(r>>24))
		}
		pr, err := attr.attribute(lost, string(key))
		if err != nil {
			return nil, fmt.Errorf("lossinfer: packet %d: %w", i, err)
		}
		res.Drops[i] = pr.Best
		res.SelectedProbs = append(res.SelectedProbs, pr.BestProb)
	}
	res.DistinctPatterns = len(attr.memo)
	return res, nil
}
