// Package lossinfer estimates which multicast tree links were
// responsible for the losses observed in a transmission trace,
// implementing §4.2 of the paper.
//
// The pipeline has two stages. First, per-link loss rates are estimated
// from the per-receiver loss sequences — either with the subtree
// estimator of Yajnik et al. (1996) or the maximum-likelihood MINC
// estimator of Cáceres et al. (1999); the paper found both to yield very
// similar estimates. Second, for every observed loss pattern the set of
// link combinations that could have produced it is enumerated, each
// combination's probability of occurrence is computed from the link
// rates, and the most probable combination is selected to represent each
// instance of the pattern, yielding the link trace representation
// link(r)(i) that drives loss injection in the simulations.
package lossinfer

import (
	"fmt"
	"math"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// LinkRates maps each tree link to its estimated loss probability:
// the probability that a packet arriving at the link's upstream node is
// dropped on the link.
type LinkRates map[topology.LinkID]float64

// rateFloor and rateCeil clamp estimates away from 0 and 1 so that
// log-probability arithmetic stays finite and no observed pattern gets
// probability exactly zero.
const (
	rateFloor = 1e-9
	rateCeil  = 1 - 1e-9
)

func clampRate(p float64) float64 {
	if p < rateFloor {
		return rateFloor
	}
	if p > rateCeil {
		return rateCeil
	}
	return p
}

// reachCounts computes, for every node n, the number of packets for
// which at least one receiver below n received the packet ("the packet
// was seen below n"). For receivers this is simply their reception
// count.
func reachCounts(t *trace.Trace) []int {
	tree := t.Tree
	seen := make([]int, tree.NumNodes())
	n := t.NumPackets()
	// Walk up from each receiving receiver, marking ancestors. The
	// visited set is an epoch-stamped slice rather than a per-packet map
	// so wide traces (10k+ receivers) stay cheap.
	marked := make([]int, tree.NumNodes())
	for i := range marked {
		marked[i] = -1
	}
	for i := 0; i < n; i++ {
		for ri, r := range tree.Receivers() {
			if t.Lost(ri, i) {
				continue
			}
			for n := r; n != topology.None && marked[n] != i; n = tree.Parent(n) {
				marked[n] = i
				seen[n]++
			}
		}
	}
	return seen
}

// EstimateYajnik implements the subtree loss-rate estimator of Yajnik
// et al.: the loss rate of the link into node n is the fraction of
// packets that were seen below n's parent but not below n. Packets seen
// below neither are unattributable to this link and excluded.
func EstimateYajnik(t *trace.Trace) LinkRates {
	tree := t.Tree
	seen := reachCounts(t)
	total := t.NumPackets()

	// seenBelowBoth[n] counts packets seen below both n and its parent,
	// which is just seen[n] (seen below n implies seen below parent).
	rates := make(LinkRates, tree.NumLinks())
	for _, l := range tree.Links() {
		parent := tree.Parent(l)
		var reachedParent int
		if parent == tree.Root() {
			// Every transmitted packet reaches the source.
			reachedParent = total
		} else {
			reachedParent = seen[parent]
		}
		if reachedParent == 0 {
			rates[l] = rateFloor
			continue
		}
		lost := reachedParent - seen[l]
		rates[l] = clampRate(float64(lost) / float64(reachedParent))
	}
	return rates
}

// EstimateMLE implements the MINC maximum-likelihood estimator of
// Cáceres, Duffield, Horowitz and Towsley (IEEE Trans. IT 1999),
// generalized to arbitrary branching. For each node k let gamma_k be the
// empirical probability that a packet is seen below k. The pass
// probability A_k (probability a packet reaches k) solves
//
//	gamma_k = A_k * (1 - prod_j (1 - gamma_j / A_k))
//
// over k's children j, found by bisection (the equation has a unique
// root in (max_j gamma_j, 1]). Link loss rates follow as
// 1 - A_k/A_parent(k). Chain nodes with a single child are
// unidentifiable; as in MINC practice the chain's combined loss is
// attributed to its topmost link.
func EstimateMLE(t *trace.Trace) LinkRates {
	tree := t.Tree
	seen := reachCounts(t)
	total := float64(t.NumPackets())

	gamma := make([]float64, tree.NumNodes())
	for n := range gamma {
		gamma[n] = float64(seen[n]) / total
	}

	// Pass probabilities, root-down. A[root] = 1.
	pass := make([]float64, tree.NumNodes())
	pass[tree.Root()] = 1
	// A packet always "reaches" the source, so the root is pinned at 1
	// and every other internal node's pass probability is solved from
	// its children's evidence. Single-child chains are unidentifiable;
	// solvePass degenerates to A = gamma there, attributing the chain's
	// combined loss to its topmost link.
	for _, k := range tree.NodesBelow(tree.Root()) {
		if tree.IsLeaf(k) || k == tree.Root() {
			continue
		}
		pass[k] = solvePass(gamma[k], childGammas(gamma, tree.Children(k)))
	}
	// Leaves: a packet is seen below a leaf iff it arrives, so the pass
	// probability is gamma itself.
	for _, r := range tree.Receivers() {
		pass[r] = gamma[r]
	}

	rates := make(LinkRates, tree.NumLinks())
	for _, l := range tree.Links() {
		parent := tree.Parent(l)
		pp := pass[parent]
		if parent == tree.Root() {
			pp = 1
		}
		if pp <= 0 {
			rates[l] = rateFloor
			continue
		}
		rates[l] = clampRate(1 - pass[l]/pp)
	}
	return rates
}

func childGammas(gamma []float64, children []topology.NodeID) []float64 {
	out := make([]float64, len(children))
	for i, c := range children {
		out[i] = gamma[c]
	}
	return out
}

// solvePass finds A in (max gamma_j, 1] with
// gamma = A*(1 - prod_j (1 - gamma_j/A)). With a single child the
// equation degenerates to A = gamma (all subtree evidence flows through
// one link, so the chain is unidentifiable and the loss is attributed
// above the child).
func solvePass(gammaK float64, childG []float64) float64 {
	if gammaK <= 0 {
		return rateFloor
	}
	if len(childG) == 1 {
		return gammaK
	}
	f := func(a float64) float64 {
		prod := 1.0
		for _, g := range childG {
			prod *= 1 - g/a
		}
		return a*(1-prod) - gammaK
	}
	lo := 0.0
	for _, g := range childG {
		if g > lo {
			lo = g
		}
	}
	if lo <= 0 {
		return rateFloor
	}
	hi := 1.0
	// f(lo+) >= 0 (at A=max gamma the product term vanishes for that
	// child, making the expression >= gammaK when losses correlate), and
	// f decreases toward A=1 where independence is assumed. If f(1) >= 0
	// the MLE sits at the boundary A=1.
	if f(1) >= 0 {
		return 1
	}
	lo = math.Nextafter(lo, 2)
	if f(lo) <= 0 {
		// Degenerate evidence; fall back to the union bound.
		return math.Min(1, gammaK)
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Compare summarizes the agreement between two rate estimates: the mean
// and maximum absolute difference across links. The paper reports that
// the Yajnik and MLE estimators yield very similar values on its traces.
func Compare(a, b LinkRates) (mean, max float64, err error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("lossinfer: comparing %d rates with %d", len(a), len(b))
	}
	n := 0
	for l, pa := range a {
		pb, ok := b[l]
		if !ok {
			return 0, 0, fmt.Errorf("lossinfer: link %d missing from second estimate", l)
		}
		d := math.Abs(pa - pb)
		mean += d
		if d > max {
			max = d
		}
		n++
	}
	if n > 0 {
		mean /= float64(n)
	}
	return mean, max, nil
}
