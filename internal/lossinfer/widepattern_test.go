package lossinfer

import (
	"math"
	"testing"
	"time"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// TestWideMatchesNarrowOnSmallTraces is the equivalence proof for the
// wide-pattern DP: on traces within the 64-receiver bitmask limit,
// inferWide must reproduce the narrow path's selections, probabilities
// and pattern counts exactly — same DP, two pattern representations.
func TestWideMatchesNarrowOnSmallTraces(t *testing.T) {
	for _, seed := range []int64{3, 17, 92} {
		tr := trace.MustGenerate(trace.GenSpec{
			Name:         "wide-vs-narrow",
			Topology:     topology.GenSpec{Receivers: 11, Depth: 5},
			NumPackets:   4000,
			Period:       40 * time.Millisecond,
			TargetLosses: 1500,
			Seed:         seed,
		})
		rates := EstimateYajnik(tr)
		narrow, err := Infer(tr, rates)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := inferWide(tr, rates)
		if err != nil {
			t.Fatal(err)
		}
		if wide.DistinctPatterns != narrow.DistinctPatterns {
			t.Fatalf("seed %d: %d distinct patterns wide, %d narrow", seed, wide.DistinctPatterns, narrow.DistinctPatterns)
		}
		if len(wide.SelectedProbs) != len(narrow.SelectedProbs) {
			t.Fatalf("seed %d: %d probs wide, %d narrow", seed, len(wide.SelectedProbs), len(narrow.SelectedProbs))
		}
		for i := range wide.SelectedProbs {
			if math.Abs(wide.SelectedProbs[i]-narrow.SelectedProbs[i]) > 1e-12 {
				t.Fatalf("seed %d: prob %d = %v wide, %v narrow", seed, i, wide.SelectedProbs[i], narrow.SelectedProbs[i])
			}
		}
		for i := range wide.Drops {
			if !equalLinkSets(wide.Drops[i], narrow.Drops[i]) {
				t.Fatalf("seed %d packet %d: drops %v wide, %v narrow", seed, i, wide.Drops[i], narrow.Drops[i])
			}
		}
	}
}

// TestInferWideTrace pushes a trace past the bitmask limit end to end:
// Infer must route it through the wide path and every selected
// combination must reproduce its packet's loss pattern exactly.
func TestInferWideTrace(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name:         "wide",
		Topology:     topology.GenSpec{Receivers: 150, Depth: 6},
		NumPackets:   1500,
		Period:       40 * time.Millisecond,
		TargetLosses: 6000,
		Seed:         41,
	})
	if tr.NumReceivers() <= 64 {
		t.Fatalf("trace has %d receivers, want > 64", tr.NumReceivers())
	}
	res, err := Infer(tr, EstimateYajnik(tr))
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Tree.Root()
	lossy := 0
	var lost []int
	for i := 0; i < tr.NumPackets(); i++ {
		lost = tr.LostReceivers(i, lost[:0])
		if (res.Drops[i] == nil) != (len(lost) == 0) {
			t.Fatalf("packet %d: drops/pattern mismatch", i)
		}
		if len(lost) > 0 {
			lossy++
		}
		for ri, r := range tr.Tree.Receivers() {
			below := false
			for _, l := range tr.Tree.PathLinks(root, r) {
				for _, d := range res.Drops[i] {
					if l == d {
						below = true
					}
				}
			}
			if below != tr.Lost(ri, i) {
				t.Fatalf("packet %d receiver %d: selected combination does not reproduce the loss pattern", i, ri)
			}
		}
	}
	if len(res.SelectedProbs) != lossy {
		t.Fatalf("SelectedProbs has %d entries, want %d", len(res.SelectedProbs), lossy)
	}
	if res.DistinctPatterns <= 0 {
		t.Fatal("no distinct patterns recorded")
	}
	acc, err := GroundTruthAccuracy(tr, res)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("ground-truth accuracy %.2f below sanity floor on a wide trace", acc)
	}
}
