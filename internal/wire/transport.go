package wire

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"cesrm/internal/topology"
)

// maxDatagram bounds reads; the codec's packets are far smaller (a
// payload-class packet is a few dozen bytes of header and varints — the
// simulated 1 KB payload is accounting, not bytes on this wire).
const maxDatagram = 64 * 1024

// Transport is one node's UDP socket plus the group address book. The
// group communicates by unicast fan-out on localhost/LAN: "multicast"
// is a send to every other member's address. This sidesteps the
// unreliable state of loopback IP-multicast in containers while keeping
// delivery semantics identical; a true multicast socket can slot in
// behind the same interface later.
//
// When a proxy address is set, every datagram is instead wrapped in a
// [dst-uvarint][packet] envelope and sent to the proxy, which forwards
// (or drops — that is its purpose) to the destination.
type Transport struct {
	conn  *net.UDPConn
	self  topology.NodeID
	peers map[topology.NodeID]*net.UDPAddr
	proxy *net.UDPAddr

	sent     atomic.Uint64
	received atomic.Uint64
}

// NewTransport binds a UDP socket at bind (e.g. "127.0.0.1:0").
func NewTransport(self topology.NodeID, bind string) (*Transport, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("wire: bind address: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: bind: %w", err)
	}
	return &Transport{
		conn:  conn,
		self:  self,
		peers: map[topology.NodeID]*net.UDPAddr{},
	}, nil
}

// LocalAddr returns the bound address (useful with port 0).
func (t *Transport) LocalAddr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }

// SetPeer registers the address of member id.
func (t *Transport) SetPeer(id topology.NodeID, addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("wire: peer %d address %q: %w", id, addr, err)
	}
	t.peers[id] = a
	return nil
}

// SetProxy routes all sends through the drop-injecting proxy at addr.
func (t *Transport) SetProxy(addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("wire: proxy address %q: %w", addr, err)
	}
	t.proxy = a
	return nil
}

// Send transmits one encoded packet to member dst. Errors are returned
// for wiring mistakes (unknown peer); I/O errors on a datagram socket
// are reported but non-fatal to the protocol, which tolerates loss by
// design.
func (t *Transport) Send(dst topology.NodeID, data []byte) error {
	if t.proxy != nil {
		env := binary.AppendUvarint(make([]byte, 0, len(data)+2), uint64(dst))
		env = append(env, data...)
		_, err := t.conn.WriteToUDP(env, t.proxy)
		if err == nil {
			t.sent.Add(1)
		}
		return err
	}
	addr, ok := t.peers[dst]
	if !ok {
		return fmt.Errorf("wire: no address for member %d", dst)
	}
	_, err := t.conn.WriteToUDP(data, addr)
	if err == nil {
		t.sent.Add(1)
	}
	return err
}

// ReadLoop reads datagrams until the socket closes, handing each (with
// its arrival wall-stamp) to fn on the reader goroutine. fn owns the
// byte slice.
func (t *Transport) ReadLoop(fn func(stamp time.Time, data []byte)) {
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		stamp := time.Now()
		data := make([]byte, n)
		copy(data, buf[:n])
		t.received.Add(1)
		fn(stamp, data)
	}
}

// Close closes the socket, ending ReadLoop.
func (t *Transport) Close() error { return t.conn.Close() }

// Stats returns datagrams sent and received so far.
func (t *Transport) Stats() (sent, received uint64) {
	return t.sent.Load(), t.received.Load()
}
