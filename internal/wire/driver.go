package wire

import (
	"time"

	"cesrm/internal/sim"
)

// Driver slaves a deterministic sim.Engine to the wall clock. The
// engine stays the agents' sim.Sched — timers, generations, Active()
// all behave exactly as in simulation — while the driver advances
// virtual time to track elapsed wall time and folds inbound datagrams
// into the event stream.
//
// The delivery discipline is what makes a live run replayable. For each
// inbound datagram with wall-stamp w:
//
//	at := max(simTime(w), eng.Now())   // arrivals never go backwards
//	eng.RunUntil(at)                   // older events fire first
//	eng.ScheduleAt(at, deliver)        // arrival joins the stream
//	eng.RunUntil(at)                   // ... and fires, with cascades
//
// Replay performs the identical sequence per captured arrival, so both
// executions assign the same (instant, sequence) pair to every event —
// the engine's dispatch order, and hence the agent's behavior, is
// byte-for-byte reproducible from the capture alone.
type Driver struct {
	eng   *sim.Engine
	epoch time.Time
	// deliver consumes one datagram at its clamped arrival instant, on
	// the driver goroutine, inside an engine event.
	deliver func(now sim.Time, data []byte)

	in   chan inbound
	stop chan struct{}
}

type inbound struct {
	stamp time.Time
	data  []byte
}

// NewDriver wraps eng. deliver is invoked from inside engine events.
func NewDriver(eng *sim.Engine, deliver func(now sim.Time, data []byte)) *Driver {
	return &Driver{
		eng:     eng,
		deliver: deliver,
		in:      make(chan inbound, 1024),
		stop:    make(chan struct{}),
	}
}

// Inject queues one received datagram, stamped with its arrival wall
// time. Safe for concurrent use by reader goroutines; data must not be
// reused by the caller afterwards. Datagrams queued after Halt, or past
// a full queue while the run is winding down, are dropped — UDP
// semantics already permit loss.
func (d *Driver) Inject(stamp time.Time, data []byte) {
	select {
	case d.in <- inbound{stamp: stamp, data: data}:
	case <-d.stop:
	}
}

// Halt asks a running Run loop to return after the event in progress.
// It does not stop the engine: an external halt (signal, context) is
// not part of the deterministic event stream; the capture footer simply
// ends earlier.
func (d *Driver) Halt() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
}

// simTime maps a wall instant to virtual time.
func (d *Driver) simTime(w time.Time) sim.Time {
	return sim.Time(0).Add(w.Sub(d.epoch))
}

// Run drives the engine until it stops itself (session shutdown or
// MaxRunTime) or Halt is called, and returns the final virtual time.
// Virtual time zero is the moment Run is entered.
func (d *Driver) Run() sim.Time {
	d.epoch = time.Now()
	for {
		// Drain queued datagrams first, one at a time, so arrivals are
		// folded in at (or as near as the backlog allows to) their
		// stamped instants.
		select {
		case pkt := <-d.in:
			d.handle(pkt)
			continue
		default:
		}
		if d.eng.Stopped() {
			return d.eng.Now()
		}
		// Catch the engine up to the wall clock, then sleep until the
		// next virtual deadline or the next datagram.
		d.eng.RunUntil(d.simTime(time.Now()))
		if d.eng.Stopped() {
			return d.eng.Now()
		}
		var timerC <-chan time.Time
		var timer *time.Timer
		if at, ok := d.eng.NextEventAt(); ok {
			delay := at.Sub(d.simTime(time.Now()))
			if delay < 0 {
				delay = 0
			}
			timer = time.NewTimer(delay)
			timerC = timer.C
		}
		select {
		case pkt := <-d.in:
			d.handle(pkt)
		case <-timerC:
		case <-d.stop:
			if timer != nil {
				timer.Stop()
			}
			return d.eng.Now()
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// handle folds one datagram into the event stream per the discipline
// described on Driver.
func (d *Driver) handle(pkt inbound) {
	if d.eng.Stopped() {
		return
	}
	at := d.simTime(pkt.stamp)
	if at.Before(d.eng.Now()) {
		at = d.eng.Now()
	}
	d.eng.RunUntil(at)
	if d.eng.Stopped() {
		return
	}
	data := pkt.data
	d.eng.ScheduleAt(at, func(now sim.Time) { d.deliver(now, data) })
	d.eng.RunUntil(at)
}
