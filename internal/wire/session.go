package wire

import (
	"fmt"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
)

// agent is the protocol surface a session drives; both *srm.Agent and
// *core.Agent satisfy it.
type agent interface {
	netsim.Host
	StartSessions()
	Stop()
	Transmit(seq int)
}

// session is one node's protocol instance plus the harness state that
// must be scheduled identically in the live run and in replay: the
// source transmit schedule, the completion monitor, and the hard stop.
// Every eng.Schedule call made here contributes to the engine's event
// sequence numbering, so live and replay construct sessions through
// this one function — any drift would break conformance.
type session struct {
	cfg   NodeConfig
	eng   *sim.Engine
	agent agent
	// inner is the SRM layer, used for completion inspection.
	inner *srm.Agent
	// sent counts executed source transmissions.
	sent int
	// completeSince is the instant the completion predicate first held
	// continuously, or -1 while it does not hold.
	completeSince sim.Time
	// stopped records an orderly self-stop (completion or MaxRunTime).
	stopped bool
}

// newSession builds the agent, attaches it to ep, and schedules the
// session start, the source's transmit schedule, the completion
// monitor, and the MaxRunTime hard stop. cfg must be validated and
// default-filled by the caller.
func newSession(eng *sim.Engine, ep netsim.Endpoint, cfg NodeConfig, obs srm.Observer) (*session, error) {
	s := &session{cfg: cfg, eng: eng, completeSince: -1}
	rng := sim.NewRNG(nodeSeed(cfg.Seed, cfg.ID))
	switch cfg.Protocol {
	case ProtocolSRM:
		a, err := srm.NewAgent(eng, ep, rng, cfg.ID, cfg.SRM, obs, nil)
		if err != nil {
			return nil, err
		}
		s.agent, s.inner = a, a
	case ProtocolCESRM:
		a, err := core.NewAgent(eng, ep, rng, cfg.ID, core.Config{
			SRM:           cfg.SRM,
			ReorderDelay:  cfg.ReorderDelay,
			CacheCapacity: cfg.CacheCapacity,
		}, obs)
		if err != nil {
			return nil, err
		}
		s.agent, s.inner = a, a.SRM()
	default:
		return nil, fmt.Errorf("wire: unknown protocol %q", cfg.Protocol)
	}
	ep.AttachHost(cfg.ID, s.agent)
	s.agent.StartSessions()
	if s.isSource() {
		for i := 0; i < cfg.NumPackets; i++ {
			seq := i
			at := sim.Time(0).Add(cfg.Warmup + time.Duration(i)*cfg.Period)
			eng.ScheduleAt(at, func(sim.Time) {
				s.agent.Transmit(seq)
				s.sent++
			})
		}
	}
	eng.Schedule(cfg.SRM.SessionPeriod, s.monitor)
	eng.ScheduleAt(sim.Time(0).Add(cfg.MaxRunTime), func(sim.Time) { s.shutdown() })
	return s, nil
}

func (s *session) isSource() bool { return s.cfg.ID == s.cfg.Tree.Root() }

// complete reports the node-local completion predicate: the source has
// transmitted its whole stream; a receiver has classified the whole
// stream with no outstanding losses.
func (s *session) complete() bool {
	if s.isSource() {
		return s.sent >= s.cfg.NumPackets
	}
	source := s.cfg.Tree.Root()
	return s.inner.ClassifiedThrough(source) >= s.cfg.NumPackets &&
		s.inner.Outstanding() == 0
}

// monitor re-checks completion every session period and stops the node
// after it has held for the configured linger (receivers) or source
// linger (the source, which cannot observe group completion and instead
// stays available for repairs a while longer).
func (s *session) monitor(now sim.Time) {
	if s.stopped {
		return
	}
	if s.complete() {
		if s.completeSince < 0 {
			s.completeSince = now
		}
		linger := s.cfg.Linger
		if s.isSource() {
			linger = s.cfg.SourceLinger
		}
		if now.Sub(s.completeSince) >= linger {
			s.shutdown()
			return
		}
	} else {
		s.completeSince = -1
	}
	s.eng.Schedule(s.cfg.SRM.SessionPeriod, s.monitor)
}

// shutdown stops the agent's session stream and halts the engine; the
// driving loop (live or replay) observes the stopped engine and exits.
func (s *session) shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.agent.Stop()
	s.eng.Stop()
}
