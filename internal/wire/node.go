package wire

import (
	"context"
	"fmt"
	"io"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/stats"
	"cesrm/internal/topology"
)

// Node is one live wire-mode process: engine + driver + UDP transport +
// protocol session, optionally recording a capture.
type Node struct {
	cfg       NodeConfig
	eng       *sim.Engine
	net       *Network
	transport *Transport
	driver    *Driver
	capture   *CaptureWriter
	sess      *session
	// decodeErrs counts inbound datagrams that failed to decode (stray
	// traffic, corruption); they are dropped like any lost packet.
	decodeErrs int
}

// Result summarizes a completed run.
type Result struct {
	// End is the final virtual time.
	End sim.Time
	// Completed reports the node-local completion predicate (stream
	// fully classified / fully transmitted) at shutdown.
	Completed bool
	// Stopped reports an orderly self-stop (completion linger or
	// MaxRunTime) as opposed to an external halt.
	Stopped bool
	// DecodeErrors counts undecodable inbound datagrams.
	DecodeErrors int
	// DatagramsSent and DatagramsReceived count the socket traffic.
	DatagramsSent, DatagramsReceived uint64
}

// NewNode builds a node bound to bind (e.g. "127.0.0.1:0"). Peer
// addresses may be registered afterwards with Transport().SetPeer —
// they are only needed once Run starts. captureW, when non-nil,
// receives the NDJSON capture; the header is written immediately.
func NewNode(cfg NodeConfig, bind string, captureW io.Writer) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	transport, err := NewTransport(cfg.ID, bind)
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, eng: sim.NewEngine(), transport: transport}
	n.net = NewNetwork(cfg.Tree, cfg.Net, cfg.ID, n.eng.Now)
	n.net.SetSend(func(dst topology.NodeID, data []byte) {
		// Datagram loss is the protocol's bread and butter; a send
		// error degrades into exactly that.
		_ = transport.Send(dst, data)
	})

	if captureW != nil {
		cw, err := NewCaptureWriter(captureW, cfg)
		if err != nil {
			transport.Close()
			return nil, err
		}
		n.capture = cw
		n.net.SetOnSend(cw.Send)
	}

	obs := stats.NewRecorder(n.eng.Now)
	obs.SetKeep(false)
	if n.capture != nil {
		obs.SetSink(n.capture.Obs)
	}
	sess, err := newSession(n.eng, n.net, cfg, obs)
	if err != nil {
		transport.Close()
		return nil, err
	}
	n.sess = sess
	n.driver = NewDriver(n.eng, n.deliver)
	return n, nil
}

// Transport exposes the UDP layer for peer/proxy registration.
func (n *Node) Transport() *Transport { return n.transport }

// Config returns the node's default-filled configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// deliver decodes one datagram and hands it to the agent, recording it
// first so the capture reflects exactly what the agent saw.
func (n *Node) deliver(now sim.Time, data []byte) {
	p, err := netsim.DecodePacket(data)
	if err != nil {
		n.decodeErrs++
		return
	}
	if n.capture != nil {
		n.capture.Recv(now, data)
	}
	n.net.Host().Deliver(now, p)
}

// Run drives the node until it stops itself (completion or MaxRunTime)
// or ctx is cancelled. It closes the capture (when recording) and the
// socket before returning.
func (n *Node) Run(ctx context.Context) (Result, error) {
	peers := n.cfg.Members()
	if n.transport.proxy == nil {
		for _, m := range peers {
			if m != n.cfg.ID {
				if _, ok := n.transport.peers[m]; !ok {
					return Result{}, fmt.Errorf("wire: member %d has no registered address", m)
				}
			}
		}
	}

	go n.transport.ReadLoop(n.driver.Inject)
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			n.driver.Halt()
		case <-watchDone:
		}
	}()

	end := n.driver.Run()
	close(watchDone)
	n.transport.Close()

	res := Result{
		End:          end,
		Completed:    n.sess.complete(),
		Stopped:      n.sess.stopped,
		DecodeErrors: n.decodeErrs,
	}
	res.DatagramsSent, res.DatagramsReceived = n.transport.Stats()
	var err error
	if n.capture != nil {
		err = n.capture.End(end, res.Stopped, res.Completed)
	}
	if ctxErr := ctx.Err(); ctxErr != nil && err == nil && !res.Stopped {
		err = ctxErr
	}
	return res, err
}

// RunFor is Run with a wall-clock timeout safety net on top of the
// virtual MaxRunTime (they coincide in normal operation, since virtual
// time tracks the wall; the extra margin covers a wedged peer).
func (n *Node) RunFor(parent context.Context, extra time.Duration) (Result, error) {
	ctx, cancel := context.WithTimeout(parent, n.cfg.MaxRunTime+extra)
	defer cancel()
	return n.Run(ctx)
}
