// Package wire drives the CESRM/SRM protocol agents from real UDP
// sockets under a wall clock, with the deterministic simulator as a
// conformance oracle.
//
// The design is an adapter, not a rewrite. Agents are constructed
// exactly as in simulation — they hold a real *sim.Engine as their
// sim.Sched and a netsim.Endpoint for sends — but the engine's virtual
// clock is slaved to the wall clock by a Driver, and the Endpoint is a
// Network that encodes packets with the netsim wire codec and sends
// them over UDP to the other group members. No protocol code changes.
//
// Determinism across the adapter is the whole point: a node's behavior
// is a pure function of its configuration, its seed, and the ordered
// sequence of (arrival instant, packet bytes) it receives. The Driver
// enforces a one-packet-at-a-time discipline (run the engine to the
// arrival instant, schedule the delivery, run to the instant again)
// whose event sequencing is reproduced exactly by Replay, so a captured
// run replayed through the simulator must emit a byte-identical
// outbound packet stream and an identical protocol-event stream. Any
// divergence is a bug in the adapter or a sim-only assumption in the
// protocol code.
package wire

import (
	"fmt"
	"sort"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// Protocol selects which agent a node runs.
type Protocol string

const (
	// ProtocolSRM runs the plain SRM agent.
	ProtocolSRM Protocol = "srm"
	// ProtocolCESRM runs the caching-enhanced agent.
	ProtocolCESRM Protocol = "cesrm"
)

// NodeConfig describes one wire node. Every member of the group must
// agree on the tree, the protocol, the source schedule, and the nominal
// network parameters; Seed may differ per deployment but must be shared
// by all members so that per-node RNG derivation is reproducible.
type NodeConfig struct {
	// Tree is the multicast topology; the source is its root, the
	// receivers its Receivers(). Hosts live at the root and the
	// receiver leaves; interior nodes exist only for RTT estimates.
	Tree *topology.Tree
	// ID is this node's position in the tree (root or a receiver).
	ID topology.NodeID
	// Protocol selects SRM or CESRM.
	Protocol Protocol
	// Seed derives each node's RNG (nodeSeed mixes in the node ID).
	Seed int64
	// NumPackets is the length of the source's stream.
	NumPackets int
	// Period is the source's inter-packet gap.
	Period time.Duration
	// Warmup delays the first data packet so session exchange can prime
	// distance estimates, as in the paper's evaluation.
	Warmup time.Duration
	// SRM holds the scheduling parameters (both protocols).
	SRM srm.Params
	// ReorderDelay and CacheCapacity parameterize the CESRM layer
	// (ignored for ProtocolSRM).
	ReorderDelay  time.Duration
	CacheCapacity int
	// Net carries the nominal physical parameters used for RTT
	// estimates (LinkDelay) and packet-class sizing. Validated like a
	// simulation config.
	Net netsim.Config
	// Linger is how long a receiver stays complete (stream fully
	// classified, nothing outstanding) before stopping itself.
	Linger time.Duration
	// SourceLinger is how long the source keeps serving repairs after
	// its last transmission before stopping.
	SourceLinger time.Duration
	// MaxRunTime hard-stops the node at that virtual instant, complete
	// or not, so a lost peer cannot hang a run forever.
	MaxRunTime time.Duration
}

// withDefaults fills zero fields with workable defaults.
func (c NodeConfig) withDefaults() NodeConfig {
	if c.Protocol == "" {
		c.Protocol = ProtocolCESRM
	}
	zero := srm.Params{}
	if c.SRM == zero {
		c.SRM = srm.DefaultParams()
	}
	if c.Net == (netsim.Config{}) {
		c.Net = netsim.DefaultConfig()
	}
	if c.NumPackets == 0 {
		c.NumPackets = 32
	}
	if c.Period == 0 {
		c.Period = 40 * time.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = 3 * c.SRM.SessionPeriod
	}
	if c.Linger == 0 {
		c.Linger = 2 * c.SRM.SessionPeriod
	}
	if c.SourceLinger == 0 {
		c.SourceLinger = 10 * c.SRM.SessionPeriod
	}
	if c.MaxRunTime == 0 {
		c.MaxRunTime = c.Warmup + time.Duration(c.NumPackets)*c.Period +
			c.SourceLinger + 30*c.SRM.SessionPeriod
	}
	return c
}

// Validate rejects configurations a node cannot run.
func (c NodeConfig) Validate() error {
	if c.Tree == nil {
		return fmt.Errorf("wire: config has no tree")
	}
	if c.ID < 0 || int(c.ID) >= c.Tree.NumNodes() {
		return fmt.Errorf("wire: node id %d outside tree of %d nodes", c.ID, c.Tree.NumNodes())
	}
	if !isMember(c.Tree, c.ID) {
		return fmt.Errorf("wire: node %d is neither the source nor a receiver", c.ID)
	}
	switch c.Protocol {
	case ProtocolSRM, ProtocolCESRM:
	default:
		return fmt.Errorf("wire: unknown protocol %q", c.Protocol)
	}
	if c.NumPackets <= 0 {
		return fmt.Errorf("wire: non-positive packet count %d", c.NumPackets)
	}
	if c.Period <= 0 || c.Warmup < 0 || c.Linger <= 0 || c.SourceLinger <= 0 || c.MaxRunTime <= 0 {
		return fmt.Errorf("wire: non-positive schedule parameter")
	}
	if err := c.SRM.Validate(); err != nil {
		return err
	}
	return c.Net.Validate()
}

// Members returns the group membership — the source plus every
// receiver — in ascending node order.
func (c NodeConfig) Members() []topology.NodeID {
	return members(c.Tree)
}

func members(tree *topology.Tree) []topology.NodeID {
	m := append([]topology.NodeID{tree.Root()}, tree.Receivers()...)
	sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	return m
}

func isMember(tree *topology.Tree, id topology.NodeID) bool {
	for _, m := range members(tree) {
		if m == id {
			return true
		}
	}
	return false
}

// nodeSeed derives node id's RNG seed from the shared group seed with a
// splitmix-style mix, so per-node streams are independent but every
// member (and the replay oracle) derives the same one.
func nodeSeed(seed int64, id topology.NodeID) int64 {
	x := uint64(seed) ^ (uint64(id)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
