package wire

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cesrm/internal/topology"
)

// updateWireFixtures regenerates the committed captures under testdata/
// from a fresh lossy loopback run:
//
//	go test ./internal/wire/ -run TestCommittedCaptures -update-wire-fixtures
//
// The live run is nondeterministic (real UDP timing, real drops), but a
// capture, once taken, is a fixed replay input — so the committed files
// pin a concrete loss-and-recovery scenario that the deterministic
// oracle must certify on every machine, forever.
var updateWireFixtures = flag.Bool("update-wire-fixtures", false,
	"regenerate the committed wire captures in testdata/")

func fixturePath(id topology.NodeID) string {
	return filepath.Join("testdata", fmt.Sprintf("capture_node%d.ndjson", id))
}

func regenerateFixtures(t *testing.T) {
	// Retry a few times: the seeded proxy guarantees drops, but a run
	// whose drops all hit redundant repair replies could conceivably
	// recover nothing, and the fixtures exist to pin recovery decisions.
	for attempt := 0; attempt < 5; attempt++ {
		results, captures, raw, dropped := runGroup(t, 0.3)
		recoveries := 0
		for id, c := range captures {
			report, err := Replay(c)
			if err != nil {
				t.Fatalf("node %d: replay: %v", id, err)
			}
			if !report.OK() {
				t.Fatalf("node %d: fresh capture diverges: %s", id, report.Divergences[0])
			}
			recoveries += report.Recoveries
		}
		completed := true
		for _, res := range results {
			completed = completed && res.Completed
		}
		if !completed || dropped == 0 || recoveries == 0 {
			t.Logf("attempt %d: completed=%v dropped=%d recoveries=%d; retrying",
				attempt, completed, dropped, recoveries)
			continue
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for id, data := range raw {
			if err := os.WriteFile(fixturePath(id), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("regenerated fixtures: dropped=%d recoveries=%d", dropped, recoveries)
		return
	}
	t.Fatal("could not generate a recovering lossy run in 5 attempts")
}

// TestCommittedCapturesConform replays the committed captures: three
// nodes of a lossy localhost run whose every send and protocol event
// must match the deterministic simulator byte for byte, with at least
// one certified recovery among the receivers.
func TestCommittedCapturesConform(t *testing.T) {
	if *updateWireFixtures {
		regenerateFixtures(t)
	}
	tree := testTree(t)
	recoveries := 0
	for _, id := range members(tree) {
		f, err := os.Open(fixturePath(id))
		if err != nil {
			t.Fatalf("missing committed fixture (regenerate with -update-wire-fixtures): %v", err)
		}
		c, err := ReadCapture(f)
		f.Close()
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		if !c.End.Completed || !c.End.Stopped {
			t.Errorf("node %d: fixture run did not complete (completed=%v stopped=%v)",
				id, c.End.Completed, c.End.Stopped)
		}
		report, err := Replay(c)
		if err != nil {
			t.Fatalf("node %d: replay: %v", id, err)
		}
		for _, d := range report.Divergences {
			t.Errorf("node %d: %s", id, d)
		}
		if report.Sends == 0 || report.Events == 0 {
			t.Errorf("node %d: empty conformance stream", id)
		}
		recoveries += report.Recoveries
	}
	if recoveries == 0 {
		t.Error("committed captures certify no recoveries; fixtures should pin a lossy run")
	}
}
