package wire

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// Proxy is a loopback drop-injecting forwarder. Nodes configured with
// SetProxy wrap each datagram in a [dst-uvarint][packet] envelope; the
// proxy unwraps it, consults the seeded drop rule, and forwards the
// packet to the destination member (or doesn't). It stands in for a
// lossy network segment in localhost harness runs, making loss — the
// condition the whole recovery protocol exists for — reproducible
// enough to smoke-test without a real congested link.
//
// Only payload-class, non-session packets (original data and repair
// replies) are eligible for drops: dropping session messages would
// starve loss detection itself, which is a different failure mode than
// the one the harness exercises. The eligibility test reads the codec's
// fixed two-byte prefix, so the proxy never fully decodes traffic.
type Proxy struct {
	conn  *net.UDPConn
	peers map[topology.NodeID]*net.UDPAddr

	mu       sync.Mutex
	rng      *sim.RNG
	dropProb float64

	forwarded atomic.Uint64
	dropped   atomic.Uint64
}

// NewProxy binds the proxy at bind with the given drop probability for
// eligible packets, seeded for reproducible decision sequences.
func NewProxy(bind string, dropProb float64, seed int64) (*Proxy, error) {
	if dropProb < 0 || dropProb >= 1 {
		return nil, fmt.Errorf("wire: drop probability %v outside [0, 1)", dropProb)
	}
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("wire: proxy bind address: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: proxy bind: %w", err)
	}
	return &Proxy{
		conn:     conn,
		peers:    map[topology.NodeID]*net.UDPAddr{},
		rng:      sim.NewRNG(seed),
		dropProb: dropProb,
	}, nil
}

// LocalAddr returns the bound address.
func (p *Proxy) LocalAddr() *net.UDPAddr { return p.conn.LocalAddr().(*net.UDPAddr) }

// SetPeer registers the address of member id.
func (p *Proxy) SetPeer(id topology.NodeID, addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("wire: proxy peer %d address %q: %w", id, addr, err)
	}
	p.peers[id] = a
	return nil
}

// droppable reports whether pkt (the unwrapped codec bytes) is
// payload-class and not a session message.
func droppable(pkt []byte) bool {
	payload, session, ok := netsim.PeekFlags(pkt)
	return ok && payload && !session
}

// Serve forwards envelopes until the socket closes (Close).
func (p *Proxy) Serve() {
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		env := buf[:n]
		dst, used := binary.Uvarint(env)
		if used <= 0 || dst > uint64(topology.NodeID(1<<30)) {
			continue
		}
		addr, ok := p.peers[topology.NodeID(dst)]
		if !ok {
			continue
		}
		pkt := env[used:]
		if droppable(pkt) {
			p.mu.Lock()
			drop := p.rng.Float64() < p.dropProb
			p.mu.Unlock()
			if drop {
				p.dropped.Add(1)
				continue
			}
		}
		if _, err := p.conn.WriteToUDP(pkt, addr); err == nil {
			p.forwarded.Add(1)
		}
	}
}

// Close stops Serve.
func (p *Proxy) Close() error { return p.conn.Close() }

// Stats returns forwarded and dropped packet counts.
func (p *Proxy) Stats() (forwarded, dropped uint64) {
	return p.forwarded.Load(), p.dropped.Load()
}
