package wire

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/stats"
	"cesrm/internal/topology"
)

// CaptureVersion is the capture file format version.
const CaptureVersion = 1

// Header is the first line of a capture: everything Replay needs to
// reconstruct the node deterministically — the topology, the node's
// identity and seed, the source schedule, and the protocol parameters.
type Header struct {
	Version  int      `json:"version"`
	Node     int      `json:"node"`
	Protocol Protocol `json:"protocol"`
	Seed     int64    `json:"seed"`
	// Parents is the tree's parent vector (-1 for the root).
	Parents       []topology.NodeID `json:"parents"`
	NumPackets    int               `json:"packets"`
	PeriodNS      int64             `json:"period_ns"`
	WarmupNS      int64             `json:"warmup_ns"`
	SRM           srm.Params        `json:"srm"`
	ReorderNS     int64             `json:"reorder_ns"`
	CacheCapacity int               `json:"cache_capacity"`
	Net           netsim.Config     `json:"net"`
	LingerNS      int64             `json:"linger_ns"`
	SourceNS      int64             `json:"source_linger_ns"`
	MaxRunNS      int64             `json:"max_run_ns"`
}

// Record is one capture line after the header. Kinds:
//
//	recv — a datagram folded into the event stream at AtNS (the
//	       clamped arrival instant), Data its hex-encoded bytes
//	send — a logical send (one line per Multicast/Unicast/subcast
//	       call, not per destination), Data its encoded bytes
//	obs  — a protocol event from the stats observer
//	end  — the footer: final virtual time, whether the node stopped
//	       itself (vs an external halt), and whether it completed
type Record struct {
	Kind  string       `json:"kind"`
	AtNS  int64        `json:"at_ns"`
	Data  string       `json:"data,omitempty"`
	Event *stats.Event `json:"event,omitempty"`
	// Label is Event.Kind rendered for humans; ignored on read.
	Label     string `json:"label,omitempty"`
	Stopped   bool   `json:"stopped,omitempty"`
	Completed bool   `json:"completed,omitempty"`
}

const (
	recKindRecv = "recv"
	recKindSend = "send"
	recKindObs  = "obs"
	recKindEnd  = "end"
)

// newHeader snapshots cfg into a capture header.
func newHeader(cfg NodeConfig) Header {
	return Header{
		Version:       CaptureVersion,
		Node:          int(cfg.ID),
		Protocol:      cfg.Protocol,
		Seed:          cfg.Seed,
		Parents:       cfg.Tree.ParentVector(),
		NumPackets:    cfg.NumPackets,
		PeriodNS:      int64(cfg.Period),
		WarmupNS:      int64(cfg.Warmup),
		SRM:           cfg.SRM,
		ReorderNS:     int64(cfg.ReorderDelay),
		CacheCapacity: cfg.CacheCapacity,
		Net:           cfg.Net,
		LingerNS:      int64(cfg.Linger),
		SourceNS:      int64(cfg.SourceLinger),
		MaxRunNS:      int64(cfg.MaxRunTime),
	}
}

// NodeConfig reconstructs the run configuration a header describes.
func (h Header) NodeConfig() (NodeConfig, error) {
	if h.Version != CaptureVersion {
		return NodeConfig{}, fmt.Errorf("wire: unsupported capture version %d (want %d)", h.Version, CaptureVersion)
	}
	tree, err := topology.New(h.Parents)
	if err != nil {
		return NodeConfig{}, fmt.Errorf("wire: capture tree: %w", err)
	}
	cfg := NodeConfig{
		Tree:          tree,
		ID:            topology.NodeID(h.Node),
		Protocol:      h.Protocol,
		Seed:          h.Seed,
		NumPackets:    h.NumPackets,
		Period:        time.Duration(h.PeriodNS),
		Warmup:        time.Duration(h.WarmupNS),
		SRM:           h.SRM,
		ReorderDelay:  time.Duration(h.ReorderNS),
		CacheCapacity: h.CacheCapacity,
		Net:           h.Net,
		Linger:        time.Duration(h.LingerNS),
		SourceLinger:  time.Duration(h.SourceNS),
		MaxRunTime:    time.Duration(h.MaxRunNS),
	}
	return cfg, cfg.Validate()
}

// CaptureWriter streams a capture as NDJSON. It is used from the driver
// goroutine only.
type CaptureWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewCaptureWriter writes the header and returns the writer.
func NewCaptureWriter(w io.Writer, cfg NodeConfig) (*CaptureWriter, error) {
	bw := bufio.NewWriter(w)
	cw := &CaptureWriter{w: bw, enc: json.NewEncoder(bw)}
	if err := cw.enc.Encode(newHeader(cfg)); err != nil {
		return nil, err
	}
	return cw, nil
}

func (c *CaptureWriter) record(r Record) {
	if c.err == nil {
		c.err = c.enc.Encode(r)
	}
}

// Recv records a folded-in datagram.
func (c *CaptureWriter) Recv(at sim.Time, data []byte) {
	c.record(Record{Kind: recKindRecv, AtNS: int64(at), Data: hex.EncodeToString(data)})
}

// Send records a logical send.
func (c *CaptureWriter) Send(at sim.Time, data []byte) {
	c.record(Record{Kind: recKindSend, AtNS: int64(at), Data: hex.EncodeToString(data)})
}

// Obs records a protocol event.
func (c *CaptureWriter) Obs(ev stats.Event) {
	e := ev
	c.record(Record{Kind: recKindObs, AtNS: int64(ev.At), Event: &e, Label: ev.Kind.String()})
}

// End writes the footer and flushes. It returns the first error
// encountered anywhere in the stream.
func (c *CaptureWriter) End(at sim.Time, stopped, completed bool) error {
	c.record(Record{Kind: recKindEnd, AtNS: int64(at), Stopped: stopped, Completed: completed})
	if c.err != nil {
		return c.err
	}
	return c.w.Flush()
}

// Capture is a fully parsed capture file.
type Capture struct {
	Header  Header
	Records []Record
	// End is the footer (also the last element semantically; kept
	// separate for convenience).
	End Record
}

// ReadCapture parses an NDJSON capture.
func ReadCapture(r io.Reader) (*Capture, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: empty capture")
	}
	c := &Capture{}
	if err := json.Unmarshal(sc.Bytes(), &c.Header); err != nil {
		return nil, fmt.Errorf("wire: capture header: %w", err)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("wire: capture line %d: %w", line, err)
		}
		switch rec.Kind {
		case recKindRecv, recKindSend, recKindObs:
			c.Records = append(c.Records, rec)
		case recKindEnd:
			c.End = rec
		default:
			return nil, fmt.Errorf("wire: capture line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c.End.Kind != recKindEnd {
		return nil, fmt.Errorf("wire: capture has no end record (truncated?)")
	}
	return c, nil
}
