package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"cesrm/internal/lms"
	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// protocolFixtures returns at least one representative message per
// registered wire type, including zero values and boundary shapes.
// Importing lms above pulls in its registrations, so together with the
// wire package's own srm/core imports this file links every protocol
// message type the node can emit.
func protocolFixtures() map[netsim.MsgType][]any {
	return map[netsim.MsgType][]any{
		srm.WireData: {
			&srm.DataMsg{},
			&srm.DataMsg{Source: 0, Seq: 1 << 30},
		},
		srm.WireSession: {
			&srm.SessionMsg{From: 3, SentAt: sim.Time(12345)},
			&srm.SessionMsg{
				From:   0,
				SentAt: sim.Time(time.Hour),
				Highest: map[topology.NodeID]int{
					0: 41, 3: 0, 7: 99,
				},
				Echoes: map[topology.NodeID]srm.Echo{
					1: {PeerSentAt: sim.Time(77), HeldFor: 3 * time.Millisecond},
					5: {PeerSentAt: 0, HeldFor: 0},
				},
			},
		},
		srm.WireRequest: {
			&srm.RequestMsg{Source: 0, Seq: 9, Requestor: 4,
				ReqDistToSource: 80 * time.Millisecond, TurningPoint: topology.None},
			&srm.RequestMsg{Source: 2, Seq: 0, Requestor: 1,
				Expedited: true, TurningPoint: 6},
		},
		srm.WireReply: {
			&srm.ReplyMsg{Source: 0, Seq: 4, Replier: 2, Requestor: 5,
				ReqDistToSource:        120 * time.Millisecond,
				ReplierDistToRequestor: 40 * time.Millisecond},
			&srm.ReplyMsg{Source: 1, Seq: 0, Replier: 0, Requestor: 0, Expedited: true},
		},
		lms.WireNAK: {
			&lms.NAKMsg{Seq: 3, Requestor: 4, TurningPoint: 1, OriginChild: 2},
			&lms.NAKMsg{TurningPoint: topology.None, OriginChild: topology.None,
				Requestor: topology.None},
		},
		lms.WireRepair: {
			&lms.RepairMsg{Seq: 17, Replier: 0, Requestor: 6},
			&lms.RepairMsg{},
		},
	}
}

// TestCodecCoversEveryRegisteredType fails when a protocol package
// registers a wire message type this suite has no fixture for.
func TestCodecCoversEveryRegisteredType(t *testing.T) {
	fixtures := protocolFixtures()
	for _, mt := range netsim.RegisteredMessageTypes() {
		if len(fixtures[mt]) == 0 {
			t.Errorf("registered wire type %d (%T) has no round-trip fixture",
				mt, netsim.NewRegisteredMessage(mt))
		}
	}
}

// TestProtocolMessagesRoundTrip encodes and decodes every fixture of
// every registered message type, asserting structural equality and that
// re-encoding the decoded packet is byte-identical (the canonical-form
// property the replay oracle depends on).
func TestProtocolMessagesRoundTrip(t *testing.T) {
	for mt, msgs := range protocolFixtures() {
		for i, msg := range msgs {
			p := &netsim.Packet{
				ID:   uint64(i),
				From: 2,
				To:   topology.None,
				Mode: netsim.ModeMulticast,
				Msg:  msg,
			}
			if _, isSession := msg.(*srm.SessionMsg); isSession {
				p.Class = netsim.Control
				p.Session = true
			}
			data, err := netsim.EncodePacket(nil, p)
			if err != nil {
				t.Fatalf("type %d fixture %d: encode: %v", mt, i, err)
			}
			got, err := netsim.DecodePacket(data)
			if err != nil {
				t.Fatalf("type %d fixture %d: decode: %v", mt, i, err)
			}
			if !reflect.DeepEqual(got.Msg, msg) {
				t.Errorf("type %d fixture %d: decoded %+v, want %+v", mt, i, got.Msg, msg)
			}
			again, err := netsim.EncodePacket(nil, got)
			if err != nil {
				t.Fatalf("type %d fixture %d: re-encode: %v", mt, i, err)
			}
			if !bytes.Equal(data, again) {
				t.Errorf("type %d fixture %d: re-encode differs\n  %x\n  %x", mt, i, data, again)
			}
		}
	}
}

// TestSessionMsgEncodingIsCanonical encodes the same map-bearing
// message repeatedly; any iteration-order dependence would show up as
// differing bytes.
func TestSessionMsgEncodingIsCanonical(t *testing.T) {
	msg := &srm.SessionMsg{
		From:    1,
		SentAt:  sim.Time(999),
		Highest: map[topology.NodeID]int{9: 1, 4: 2, 0: 3, 7: 4, 2: 5},
		Echoes: map[topology.NodeID]srm.Echo{
			8: {PeerSentAt: 1}, 3: {PeerSentAt: 2}, 6: {PeerSentAt: 3},
		},
	}
	p := &netsim.Packet{From: 1, To: topology.None, Mode: netsim.ModeMulticast,
		Class: netsim.Control, Session: true, Msg: msg}
	first, err := netsim.EncodePacket(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		data, err := netsim.EncodePacket(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, data) {
			t.Fatalf("encoding varies across calls:\n  %x\n  %x", first, data)
		}
	}
}

// FuzzDecodePacket asserts the decoder never panics, and that anything
// it accepts re-encodes to the exact input bytes — i.e. the set of
// valid encodings is canonical.
func FuzzDecodePacket(f *testing.F) {
	for _, msgs := range protocolFixtures() {
		for _, msg := range msgs {
			p := &netsim.Packet{From: 0, To: topology.None, Mode: netsim.ModeMulticast, Msg: msg}
			if data, err := netsim.EncodePacket(nil, p); err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{netsim.CodecVersion})
	f.Add([]byte{netsim.CodecVersion, 0xFF, 0, 0, 0, 0})
	f.Add([]byte{netsim.CodecVersion, 0, 0x80, 0x00, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := netsim.DecodePacket(data)
		if err != nil {
			return
		}
		out, err := netsim.EncodePacket(nil, p)
		if err != nil {
			t.Fatalf("decoded packet %+v does not re-encode: %v", p, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted non-canonical encoding:\n  in:  %x\n  out: %x", data, out)
		}
	})
}
