package wire

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cesrm/internal/topology"
)

// ParseTree reads a parent-vector topology in the cesrm-node tree-file
// format: integer tokens separated by whitespace or commas, where token
// i is the parent of node i and -1 marks the root; '#' starts a comment
// running to end of line. Example, the three-member smoke tree:
//
//	# root 0, two interior routers, receiver leaves 3 and 4
//	-1 0 0 1 2
//
// Every group member must load an identical file — the tree is part of
// the shared configuration a capture header embeds.
func ParseTree(r io.Reader) (*topology.Tree, error) {
	var parents []topology.NodeID
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		for _, tok := range strings.FieldsFunc(text, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		}) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("wire: tree file line %d: bad parent %q", line, tok)
			}
			parents = append(parents, topology.NodeID(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(parents) == 0 {
		return nil, fmt.Errorf("wire: tree file holds no nodes")
	}
	tree, err := topology.New(parents)
	if err != nil {
		return nil, fmt.Errorf("wire: tree file: %w", err)
	}
	return tree, nil
}

// LoadTree parses the tree file at path.
func LoadTree(path string) (*topology.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTree(f)
}

// ParsePeers parses a peer address book of the form
// "0=127.0.0.1:7000,3=127.0.0.1:7003" into an id→address map.
func ParsePeers(s string) (map[topology.NodeID]string, error) {
	peers := map[topology.NodeID]string{}
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("wire: peer entry %q is not id=host:port", part)
		}
		v, err := strconv.Atoi(id)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("wire: peer entry %q has bad node id", part)
		}
		if _, dup := peers[topology.NodeID(v)]; dup {
			return nil, fmt.Errorf("wire: duplicate peer entry for node %d", v)
		}
		peers[topology.NodeID(v)] = addr
	}
	return peers, nil
}
