package wire

import (
	"fmt"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// Network implements netsim.Endpoint over a send callback: the live
// node plugs in the UDP transport, the replay oracle plugs in a no-op.
// Tree geometry and RTT estimates come from the shared NodeConfig, so
// the protocol's distance arithmetic matches the simulated network's.
//
// Delivery sets mirror netsim exactly: a multicast reaches every other
// member, a unicast only its destination, and a unicast-then-subcast
// reaches the via router (if it is a member) plus every member strictly
// below it. Because only members run processes, "the flood reaches every
// attached host" degenerates to these membership computations.
//
// Packet IDs are assigned from a local counter in send order. The wire
// carries them for diagnostics; the receiving side never uses them (in
// the sim a multicast shares one Packet instance, on the wire each
// recipient decodes its own copy).
type Network struct {
	tree    *topology.Tree
	cfg     netsim.Config
	self    topology.NodeID
	members []topology.NodeID

	// clock timestamps logical sends for the capture.
	clock func() sim.Time
	// send transmits one encoded packet to a destination member. nil
	// sends (replay) are skipped.
	send func(dst topology.NodeID, data []byte)
	// onSend observes each logical send once (not once per
	// destination), with its encoded bytes — the conformance stream.
	onSend func(at sim.Time, data []byte)

	nextID uint64
	host   netsim.Host
	// buf is the encode scratch; sends happen one at a time on the
	// engine goroutine.
	buf []byte
}

// NewNetwork builds the endpoint for node self. clock must report the
// driving engine's virtual time.
func NewNetwork(tree *topology.Tree, cfg netsim.Config, self topology.NodeID, clock func() sim.Time) *Network {
	return &Network{
		tree:    tree,
		cfg:     cfg,
		self:    self,
		members: members(tree),
		clock:   clock,
	}
}

// SetSend installs the per-destination transmit callback.
func (n *Network) SetSend(send func(dst topology.NodeID, data []byte)) { n.send = send }

// SetOnSend installs the logical-send observer.
func (n *Network) SetOnSend(fn func(at sim.Time, data []byte)) { n.onSend = fn }

// Tree returns the topology.
func (n *Network) Tree() *topology.Tree { return n.tree }

// RTT returns the nominal round-trip control latency between two nodes,
// matching the simulated network: twice the hop count times LinkDelay.
func (n *Network) RTT(a, b topology.NodeID) time.Duration {
	return 2 * time.Duration(n.tree.HopCount(a, b)) * n.cfg.LinkDelay
}

// AttachHost records the local agent. Attaching any node but self is an
// error in wiring: remote hosts live in other processes.
func (n *Network) AttachHost(id topology.NodeID, h netsim.Host) {
	if id != n.self {
		panic(fmt.Sprintf("wire: AttachHost(%d) on node %d", id, n.self))
	}
	if h == nil {
		panic("wire: AttachHost with nil host")
	}
	n.host = h
}

// Host returns the attached local agent.
func (n *Network) Host() netsim.Host { return n.host }

// emit encodes p once, reports it to the send observer, and transmits
// it to every destination dsts selects.
func (n *Network) emit(p *netsim.Packet, dsts func(m topology.NodeID) bool) {
	p.ID = n.nextID
	n.nextID++
	data, err := netsim.EncodePacket(n.buf[:0], p)
	if err != nil {
		// Unregistered message types cannot leave a wire node; this is
		// a wiring bug, not a runtime condition.
		panic(err)
	}
	n.buf = data
	if n.onSend != nil {
		n.onSend(n.clock(), data)
	}
	if n.send == nil {
		return
	}
	for _, m := range n.members {
		if m != n.self && dsts(m) {
			n.send(m, data)
		}
	}
}

// Multicast sends p to every other group member.
func (n *Network) Multicast(from topology.NodeID, p *netsim.Packet) {
	p.From = from
	p.To = topology.None
	p.Mode = netsim.ModeMulticast
	n.emit(p, func(topology.NodeID) bool { return true })
}

// Unicast sends p to member to only.
func (n *Network) Unicast(from, to topology.NodeID, p *netsim.Packet) {
	p.From = from
	p.To = to
	p.Mode = netsim.ModeUnicast
	n.emit(p, func(m topology.NodeID) bool { return m == to })
}

// UnicastThenSubcast sends p to the members in router via's subtree
// (including via itself when it is a member), mirroring netsim's §3.3
// delivery set. The packet's final mode is subcast.
func (n *Network) UnicastThenSubcast(from, via topology.NodeID, p *netsim.Packet) {
	p.From = from
	p.To = topology.None
	p.Mode = netsim.ModeSubcast
	n.emit(p, func(m topology.NodeID) bool { return n.inSubtree(m, via) })
}

// inSubtree reports whether m is via or a descendant of via.
func (n *Network) inSubtree(m, via topology.NodeID) bool {
	for cur := m; cur != topology.None; cur = n.tree.Parent(cur) {
		if cur == via {
			return true
		}
	}
	return false
}

var _ netsim.Endpoint = (*Network)(nil)
