package wire

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// testTree is the smoke topology: root 0 feeding two interior routers,
// each with one receiver leaf. Members are 0, 3, 4; the interior nodes
// exercise hop-count distances and subtree (subcast) delivery sets.
func testTree(t *testing.T) *topology.Tree {
	t.Helper()
	tree, err := topology.New([]topology.NodeID{topology.None, 0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// testNodeConfig shrinks the schedule so a live run finishes in about a
// second of wall clock while still spanning several session periods.
func testNodeConfig(tree *topology.Tree, id topology.NodeID) NodeConfig {
	p := srm.DefaultParams()
	p.SessionPeriod = 120 * time.Millisecond
	return NodeConfig{
		Tree:         tree,
		ID:           id,
		Protocol:     ProtocolCESRM,
		Seed:         42,
		NumPackets:   12,
		Period:       15 * time.Millisecond,
		SRM:          p,
		SourceLinger: 600 * time.Millisecond,
		MaxRunTime:   20 * time.Second,
	}
}

// runGroup runs one in-process node per member over localhost UDP,
// optionally routing all traffic through a drop-injecting proxy, and
// returns each node's result and parsed capture plus the proxy's drop
// count (zero without a proxy).
func runGroup(t *testing.T, dropProb float64) (map[topology.NodeID]Result, map[topology.NodeID]*Capture, map[topology.NodeID][]byte, uint64) {
	t.Helper()
	tree := testTree(t)
	memberIDs := members(tree)

	nodes := map[topology.NodeID]*Node{}
	bufs := map[topology.NodeID]*bytes.Buffer{}
	for _, id := range memberIDs {
		buf := &bytes.Buffer{}
		node, err := NewNode(testNodeConfig(tree, id), "127.0.0.1:0", buf)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Transport().Close()
		nodes[id] = node
		bufs[id] = buf
	}

	var proxy *Proxy
	if dropProb > 0 {
		var err error
		proxy, err = NewProxy("127.0.0.1:0", dropProb, 7)
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		for id, node := range nodes {
			if err := proxy.SetPeer(id, node.Transport().LocalAddr().String()); err != nil {
				t.Fatal(err)
			}
			if err := node.Transport().SetProxy(proxy.LocalAddr().String()); err != nil {
				t.Fatal(err)
			}
		}
		go proxy.Serve()
	} else {
		for _, a := range memberIDs {
			for _, b := range memberIDs {
				if a == b {
					continue
				}
				addr := nodes[b].Transport().LocalAddr().String()
				if err := nodes[a].Transport().SetPeer(b, addr); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	results := map[topology.NodeID]Result{}
	errs := map[topology.NodeID]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, node := range nodes {
		wg.Add(1)
		go func(id topology.NodeID, node *Node) {
			defer wg.Done()
			res, err := node.RunFor(context.Background(), 10*time.Second)
			mu.Lock()
			results[id] = res
			errs[id] = err
			mu.Unlock()
		}(id, node)
	}
	wg.Wait()

	captures := map[topology.NodeID]*Capture{}
	raw := map[topology.NodeID][]byte{}
	for id := range nodes {
		if errs[id] != nil {
			t.Fatalf("node %d: run: %v", id, errs[id])
		}
		raw[id] = bufs[id].Bytes()
		c, err := ReadCapture(bytes.NewReader(raw[id]))
		if err != nil {
			t.Fatalf("node %d: capture: %v", id, err)
		}
		captures[id] = c
	}
	var dropped uint64
	if proxy != nil {
		_, dropped = proxy.Stats()
	}
	return results, captures, raw, dropped
}

// replayAll replays every capture and asserts conformance.
func replayAll(t *testing.T, captures map[topology.NodeID]*Capture) map[topology.NodeID]*Report {
	t.Helper()
	reports := map[topology.NodeID]*Report{}
	for id, c := range captures {
		report, err := Replay(c)
		if err != nil {
			t.Fatalf("node %d: replay: %v", id, err)
		}
		for _, d := range report.Divergences {
			t.Errorf("node %d: %s", id, d)
		}
		reports[id] = report
	}
	return reports
}

// TestThreeNodeLoopback is the lossless end-to-end smoke: three
// processes-in-miniature over real localhost UDP complete the stream,
// and each node's capture replays through the deterministic simulator
// with a byte-identical conformance stream. It doubles as the oracle's
// own sanity check: a tampered capture must diverge.
func TestThreeNodeLoopback(t *testing.T) {
	results, captures, _, _ := runGroup(t, 0)
	for id, res := range results {
		if !res.Completed || !res.Stopped {
			t.Errorf("node %d: completed=%v stopped=%v, want both", id, res.Completed, res.Stopped)
		}
		if res.DecodeErrors != 0 {
			t.Errorf("node %d: %d decode errors", id, res.DecodeErrors)
		}
		if res.DatagramsSent == 0 || res.DatagramsReceived == 0 {
			t.Errorf("node %d: no traffic (sent=%d received=%d)",
				id, res.DatagramsSent, res.DatagramsReceived)
		}
	}
	reports := replayAll(t, captures)
	for id, r := range reports {
		if r.Sends == 0 || r.Events == 0 {
			t.Errorf("node %d: empty conformance stream (sends=%d events=%d)", id, r.Sends, r.Events)
		}
	}

	// Oracle sanity: shifting one captured send record by a nanosecond
	// must surface as a divergence.
	tree := testTree(t)
	tampered := *captures[tree.Root()]
	tampered.Records = append([]Record(nil), tampered.Records...)
	found := false
	for i, rec := range tampered.Records {
		if rec.Kind == recKindSend {
			rec.AtNS++
			tampered.Records[i] = rec
			found = true
			break
		}
	}
	if !found {
		t.Fatal("source capture has no send records")
	}
	report, err := Replay(&tampered)
	if err != nil {
		t.Fatalf("tampered replay: %v", err)
	}
	if report.OK() {
		t.Error("replay accepted a tampered capture")
	}
}

// TestThreeNodeLoopbackWithLoss routes all traffic through the seeded
// drop proxy: data and repair packets are lost, the protocol recovers
// them, every node still completes, and every capture still replays
// divergence-free — loss shows up as recovery decisions the oracle
// certifies, not as conformance failures.
func TestThreeNodeLoopbackWithLoss(t *testing.T) {
	results, captures, _, dropped := runGroup(t, 0.3)
	if dropped == 0 {
		t.Fatal("proxy dropped nothing; loss path not exercised")
	}
	for id, res := range results {
		if !res.Completed || !res.Stopped {
			t.Errorf("node %d: completed=%v stopped=%v, want both", id, res.Completed, res.Stopped)
		}
	}
	reports := replayAll(t, captures)
	recoveries := 0
	for _, r := range reports {
		recoveries += r.Recoveries
	}
	if recoveries == 0 {
		t.Errorf("dropped %d packets but replay certified no recoveries", dropped)
	}
}
