package wire

import (
	"encoding/hex"
	"fmt"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/stats"
)

// Divergence is one mismatch between a live capture and its
// deterministic replay.
type Divergence struct {
	// Index is the position in the capture's ordered send+obs stream.
	Index int
	// Want is the captured record, Got the replayed one (empty when the
	// replay produced fewer records).
	Want, Got string
}

func (d Divergence) String() string {
	return fmt.Sprintf("record %d:\n  capture: %s\n  replay:  %s", d.Index, d.Want, d.Got)
}

// Report is the outcome of replaying a capture through the simulator.
type Report struct {
	// Node is the replayed node's ID.
	Node int
	// Sends and Events count the capture's logical sends and protocol
	// events.
	Sends, Events int
	// Recoveries counts EventRecovered records — the recovery decisions
	// the oracle certifies — and Expedited how many were expedited.
	Recoveries, Expedited int
	// Divergences lists every mismatch, in stream order.
	Divergences []Divergence
}

// OK reports a divergence-free replay.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

// Replay reconstructs the captured node inside the deterministic
// simulator and feeds it the captured arrival stream, record by record,
// using the same one-packet-at-a-time discipline as the live Driver:
//
//	RunUntil(at); ScheduleAt(at, deliver); RunUntil(at)
//
// per arrival, then RunUntil(end). The replayed node's outbound packet
// bytes and protocol-event stream are compared against the capture in
// order; any mismatch is a Divergence. A clean replay certifies that
// the live node's recovery decisions — who requested, who replied,
// expedited or fallback — are exactly what the simulator's semantics
// prescribe for the traffic the node saw.
func Replay(c *Capture) (*Report, error) {
	cfg, err := c.Header.NodeConfig()
	if err != nil {
		return nil, err
	}
	report := &Report{Node: int(cfg.ID)}

	// The captured conformance stream: sends and observer events in
	// emission order.
	var want []Record
	for _, rec := range c.Records {
		if rec.Kind == recKindSend || rec.Kind == recKindObs {
			want = append(want, rec)
			if rec.Kind == recKindSend {
				report.Sends++
			} else {
				report.Events++
				if rec.Event != nil && rec.Event.Kind == stats.EventRecovered {
					report.Recoveries++
					if rec.Event.Expedited {
						report.Expedited++
					}
				}
			}
		}
	}

	// Rebuild the node: same engine semantics, same endpoint behavior,
	// but sends go nowhere — they are recorded for comparison instead.
	eng := sim.NewEngine()
	var got []Record
	net := NewNetwork(cfg.Tree, cfg.Net, cfg.ID, eng.Now)
	net.SetOnSend(func(at sim.Time, data []byte) {
		got = append(got, Record{Kind: recKindSend, AtNS: int64(at), Data: hex.EncodeToString(data)})
	})
	obs := stats.NewRecorder(eng.Now)
	obs.SetKeep(false)
	obs.SetSink(func(ev stats.Event) {
		e := ev
		got = append(got, Record{Kind: recKindObs, AtNS: int64(ev.At), Event: &e})
	})
	if _, err := newSession(eng, net, cfg, obs); err != nil {
		return nil, err
	}

	// Feed the arrival stream.
	for i, rec := range c.Records {
		if rec.Kind != recKindRecv {
			continue
		}
		data, err := hex.DecodeString(rec.Data)
		if err != nil {
			return nil, fmt.Errorf("wire: capture recv %d: %w", i, err)
		}
		p, err := netsim.DecodePacket(data)
		if err != nil {
			return nil, fmt.Errorf("wire: capture recv %d: %w", i, err)
		}
		at := sim.Time(rec.AtNS)
		if at.Before(eng.Now()) {
			// The live driver clamps arrivals to the engine clock, so a
			// regressing instant means the capture is inconsistent.
			return nil, fmt.Errorf("wire: capture recv %d at %v regresses before %v", i, at, eng.Now())
		}
		if eng.Stopped() {
			break
		}
		eng.RunUntil(at)
		if eng.Stopped() {
			break
		}
		host := net.Host()
		pkt := p
		eng.ScheduleAt(at, func(now sim.Time) { host.Deliver(now, pkt) })
		eng.RunUntil(at)
	}
	if !eng.Stopped() {
		eng.RunUntil(sim.Time(c.End.AtNS))
	}

	// Compare the conformance streams element-wise.
	max := len(want)
	if len(got) > max {
		max = len(got)
	}
	for i := 0; i < max; i++ {
		var w, g string
		if i < len(want) {
			w = renderRecord(want[i])
		}
		if i < len(got) {
			g = renderRecord(got[i])
		}
		if w != g {
			report.Divergences = append(report.Divergences, Divergence{Index: i, Want: w, Got: g})
			if len(report.Divergences) >= 20 {
				break
			}
		}
	}
	return report, nil
}

// renderRecord canonicalizes a send/obs record for comparison and
// diagnostics.
func renderRecord(r Record) string {
	switch r.Kind {
	case recKindSend:
		return fmt.Sprintf("send at=%d data=%s", r.AtNS, r.Data)
	case recKindObs:
		if r.Event == nil {
			return fmt.Sprintf("obs at=%d <nil>", r.AtNS)
		}
		ev := r.Event
		return fmt.Sprintf("obs at=%d kind=%s host=%d source=%d seq=%d round=%d exp=%v own=%d resched=%d req=%d rep=%d",
			r.AtNS, ev.Kind, ev.Host, ev.Source, ev.Seq, ev.Round, ev.Expedited,
			ev.OwnRequests, ev.Reschedules, ev.Requestor, ev.Replier)
	default:
		return fmt.Sprintf("%s at=%d", r.Kind, r.AtNS)
	}
}
