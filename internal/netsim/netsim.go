// Package netsim simulates a packet network over a static IP multicast
// tree, following the evaluation setup of §4.3 of the paper: every link
// has the same propagation delay and bandwidth, payload-carrying packets
// (original transmissions and retransmissions) are 1 KB, control packets
// (requests and session messages) are 0 KB, and transmission cost is
// accounted as one unit per packet per link crossed.
//
// The network supports the three delivery primitives the protocols use:
//
//   - Multicast: IP-multicast flooding from any group member over the
//     whole tree (§2, §3);
//   - Unicast: point-to-point delivery along the tree path (CESRM's
//     expedited requests, §3.2);
//   - Subcast: delivery to the subtree below a router (the
//     router-assisted variant, §3.3).
//
// Packet loss is injected through a caller-provided DropFunc, which the
// experiment harness wires to the link-trace representation of §4.2.
package netsim

import (
	"fmt"
	"math"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// Class partitions packets for cost accounting.
type Class int

const (
	// Payload marks 1 KB packets: original data and retransmissions.
	Payload Class = iota
	// Control marks 0 KB packets: requests, session messages, and
	// expedited requests.
	Control
)

// String returns the accounting class name.
func (c Class) String() string {
	switch c {
	case Payload:
		return "payload"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Mode is the delivery primitive a packet was sent with.
type Mode int

const (
	// ModeMulticast floods the entire tree.
	ModeMulticast Mode = iota
	// ModeUnicast follows the tree path between two hosts.
	ModeUnicast
	// ModeSubcast floods only the subtree below a router.
	ModeSubcast
)

// String returns the delivery-mode name.
func (m Mode) String() string {
	switch m {
	case ModeMulticast:
		return "multicast"
	case ModeUnicast:
		return "unicast"
	case ModeSubcast:
		return "subcast"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Packet is a message in flight. Msg carries the protocol-level payload;
// netsim treats it as opaque.
type Packet struct {
	// ID is a unique per-network sequence assigned at send time.
	ID uint64
	// From is the host (or, for subcasts, router) that sent the packet.
	From topology.NodeID
	// To is the destination host for unicasts, None otherwise.
	To topology.NodeID
	// Class drives size and cost accounting.
	Class Class
	// Mode records the delivery primitive used.
	Mode Mode
	// Session marks group session messages, which are excluded from
	// recovery-overhead accounting (the paper compares recovery traffic;
	// both protocols exchange identical session streams).
	Session bool
	// Msg is the protocol message.
	Msg any
}

// Host consumes packets delivered by the network.
type Host interface {
	// Deliver hands the host a packet at virtual time now. The packet is
	// shared between all recipients of a multicast and must be treated
	// as immutable.
	Deliver(now sim.Time, p *Packet)
}

// DropFunc decides whether packet p is dropped when crossing the given
// link. down reports the traversal direction: true when moving away from
// the tree root. A nil DropFunc drops nothing.
type DropFunc func(p *Packet, link topology.LinkID, down bool) bool

// DupFunc decides whether the end-to-end delivery of p scheduled for
// instant at is duplicated, and with how much extra delay the second
// copy arrives. Duplicate injection models links or routers that
// re-forward packets; like jitter it applies to the fast (non-queuing)
// delivery path. A nil DupFunc duplicates nothing.
type DupFunc func(p *Packet, at sim.Time) (extra time.Duration, dup bool)

// ConfigError reports an invalid Config field rejected by Validate. It
// is the typed error netsim.New returns so that callers (experiment.Run,
// the CLIs) can distinguish a bad network configuration from other
// construction failures.
type ConfigError struct {
	// Field names the offending Config field.
	Field string
	// Reason describes the constraint that was violated, including the
	// rejected value.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("netsim: invalid config: %s %s", e.Field, e.Reason)
}

// Config holds the physical parameters of the simulated network.
type Config struct {
	// LinkDelay is the one-way propagation delay of every link
	// (the paper sweeps 10/20/30 ms and reports 20 ms).
	LinkDelay time.Duration
	// Bandwidth is the link capacity in bits per second (1.5 Mbps in the
	// paper).
	Bandwidth float64
	// PayloadBytes is the size of payload-class packets (1 KB).
	PayloadBytes int
	// ControlBytes is the size of control-class packets (0 in the paper,
	// so control packets experience propagation delay only).
	ControlBytes int
	// Queuing enables per-link FIFO serialization: a link transmits one
	// packet at a time per direction. With the paper's parameters links
	// run far below capacity, so the default (false) models each hop as
	// an independent store-and-forward pipe.
	Queuing bool
	// QueueCap bounds each link direction's FIFO to this many
	// queued-or-transmitting payload packets; arrivals past the bound
	// are tail-dropped deterministically and counted in QueueDrops.
	// Zero-serialization control packets occupy no buffer and are never
	// queue-dropped. Zero means unbounded. Requires Queuing; the chaos
	// harness can also engage a cap mid-run via SetQueueCap.
	QueueCap int
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation (§4.3) with its 20 ms link delay.
func DefaultConfig() Config {
	return Config{
		LinkDelay:    20 * time.Millisecond,
		Bandwidth:    1.5e6,
		PayloadBytes: 1024,
		ControlBytes: 0,
	}
}

// Validate rejects physically meaningless configurations before they
// flow into delay arithmetic: a non-positive LinkDelay collapses (or
// inverts) propagation, a non-positive or non-finite Bandwidth turns
// serialization time into zero or garbage, and a non-positive
// PayloadBytes makes payload packets free. ControlBytes may be zero —
// the paper's control packets are costless — but not negative.
func (c Config) Validate() error {
	if c.LinkDelay <= 0 {
		return &ConfigError{"LinkDelay", fmt.Sprintf("must be positive, got %v", c.LinkDelay)}
	}
	if !(c.Bandwidth > 0) || math.IsInf(c.Bandwidth, 0) {
		return &ConfigError{"Bandwidth", fmt.Sprintf("must be positive and finite, got %v", c.Bandwidth)}
	}
	if c.PayloadBytes <= 0 {
		return &ConfigError{"PayloadBytes", fmt.Sprintf("must be positive, got %d", c.PayloadBytes)}
	}
	if c.ControlBytes < 0 {
		return &ConfigError{"ControlBytes", fmt.Sprintf("must be non-negative, got %d", c.ControlBytes)}
	}
	if c.QueueCap < 0 {
		return &ConfigError{"QueueCap", fmt.Sprintf("must be non-negative, got %d", c.QueueCap)}
	}
	if c.QueueCap > 0 && !c.Queuing {
		return &ConfigError{"QueueCap", "requires Queuing (a cap on an unserialized link is meaningless)"}
	}
	return nil
}

// CrossingCounts aggregates transmission cost in link-crossing units,
// the metric of Figure 5 (right): one unit per packet per link crossed.
// Session traffic is tallied separately so recovery overhead can be
// compared between protocols that share an identical session stream.
type CrossingCounts struct {
	// PayloadMulticast counts multicast retransmission crossings.
	PayloadMulticast uint64
	// PayloadUnicast counts unicast payload crossings (unused by the
	// basic protocols; the router-assisted variant unicasts replies to
	// turning points).
	PayloadUnicast uint64
	// PayloadSubcast counts subcast retransmission crossings.
	PayloadSubcast uint64
	// ControlMulticast counts multicast control crossings (SRM requests,
	// CESRM fallback requests).
	ControlMulticast uint64
	// ControlSubcast counts subcast control crossings. None of the
	// implemented protocols subcasts control packets today (router-
	// assisted replies subcast payload), so this counter is zero in every
	// current configuration; it exists so subcast control is not silently
	// lumped into ControlMulticast as it used to be. The determinism
	// fingerprint digests ControlMulticast+ControlSubcast combined,
	// preserving fingerprints across the split.
	ControlSubcast uint64
	// ControlUnicast counts unicast control crossings (CESRM expedited
	// requests).
	ControlUnicast uint64
	// Session counts session-message crossings (identical for SRM and
	// CESRM; excluded from recovery overhead).
	Session uint64
	// Data counts original data dissemination crossings (identical for
	// both protocols; excluded from recovery overhead).
	Data uint64
}

// RecoveryTotal returns the total recovery overhead: everything except
// original data dissemination and session traffic.
func (c CrossingCounts) RecoveryTotal() uint64 {
	return c.PayloadMulticast + c.PayloadUnicast + c.PayloadSubcast +
		c.ControlMulticast + c.ControlSubcast + c.ControlUnicast
}

// Endpoint is the network surface the protocol agents hold: the
// *Network itself in serial runs, or a shard-local *Port in sharded
// runs. A Port defers sends issued inside a parallel region so they
// commit in deterministic dispatch order; every read it exposes is
// immutable, so the two implementations are observationally identical.
type Endpoint interface {
	// Tree returns the underlying topology.
	Tree() *topology.Tree
	// RTT returns the round-trip control-plane latency between two nodes.
	RTT(a, b topology.NodeID) time.Duration
	// AttachHost registers the protocol agent at node id.
	AttachHost(id topology.NodeID, h Host)
	// Multicast sends p from host from to the entire group.
	Multicast(from topology.NodeID, p *Packet)
	// Unicast sends p from host from to host to along the tree path.
	Unicast(from, to topology.NodeID, p *Packet)
	// UnicastThenSubcast sends p point-to-point to router via, which
	// subcasts it down its subtree (§3.3).
	UnicastThenSubcast(from, via topology.NodeID, p *Packet)
}

// Network simulates the tree. Construct with New.
type Network struct {
	eng  *sim.Engine
	tree *topology.Tree
	cfg  Config
	drop DropFunc
	dup  DupFunc

	// hostAt maps each node to its registered protocol agent, dense by
	// NodeID (nil for silent routers): the per-delivery host lookup sits
	// on the hottest path of every flood, where the old map probe cost
	// hashing and bucket chasing per visited node.
	hostAt []Host
	nextID uint64

	// linkDown marks administratively-downed links (SetLinkUp), indexed
	// by the link's downstream endpoint like every LinkID. nil until the
	// first SetLinkUp call, so static-topology runs pay nothing. A downed
	// link severs all traffic in both directions — including session
	// messages — without counting crossings: the packet never enters the
	// link.
	linkDown []bool

	// busyUntil tracks per-link, per-direction transmit availability when
	// Queuing is enabled. Index 0 is downstream, 1 upstream.
	busyUntil [2][]sim.Time

	// queueCap bounds each link direction's FIFO to this many
	// queued-or-transmitting payload packets (0 = unbounded), set
	// statically by Config.QueueCap or dynamically by SetQueueCap.
	// queued holds the pending transmission finish times per direction
	// per link (monotone non-decreasing; pruned lazily against the
	// arrival instant), nil until a cap is first engaged. queueDrops
	// counts tail-dropped packets; it lives outside CrossingCounts on
	// purpose — that struct is digested into the run fingerprint, and
	// congestion drops must not perturb fingerprints of cap-free runs.
	queueCap   int
	queued     [2][][]sim.Time
	queueDrops uint64

	// jitterRNG and maxJitter add a uniform random extra delay to each
	// delivery, reordering packets that are spaced more closely than the
	// jitter magnitude. See EnableJitter.
	jitterRNG *sim.RNG
	maxJitter time.Duration

	// txPayload and txControl are the per-link serialization delays of
	// the two packet classes, fixed by the config, precomputed so the
	// hot paths never divide.
	txPayload time.Duration
	txControl time.Duration

	// Flood scratch state, reused across floods so the fast path
	// allocates nothing per packet. visited holds per-node epoch stamps:
	// a node is visited in the current flood iff visited[node] ==
	// visitGen. stack is the DFS worklist. The fast flood path runs
	// synchronously — Deliver callbacks fire later, from scheduled
	// events — so the scratch state is never re-entered.
	visited  []uint64
	visitGen uint64
	stack    []floodVisit

	// plans is the per-origin flood plan cache (nil until
	// EnableFloodPlans); skipMark is the replay's region-skip scratch,
	// epoch-stamped with visitGen like visited and grown to the largest
	// replayed plan.
	plans    *planCache
	skipMark []uint64

	// deliveryPools and freeHops pool the reusable event structs that
	// replaced the closure-per-delivery and closure-per-hop allocations.
	// Deliveries are pooled per shard (index shard+1; index 0 is the
	// global pool used when sharding is off): a delivery event fires on
	// its shard's worker and recycles itself there, so each pool is only
	// ever touched by one goroutine at a time. Hop events stay in the
	// global pool — the queuing path dispatches serially.
	deliveryPools [][]*deliveryEvent
	freeHops      []*hopEvent

	// groupPools pools hop-cohort group delivery events, per shard like
	// deliveryPools. hopGroups and maxHop are the per-flood assembly
	// scratch: hopGroups[h] is the group currently accumulating this
	// flood's deliveries at hop distance h (see groupDeliver for why
	// grouping preserves delivery order exactly), maxHop the highest
	// occupied index. gNow, gPerHop and gPkt carry the current flood's
	// parameters to the grouping helpers; flood is synchronous and never
	// re-entered, so one set of scratch fields suffices.
	groupPools [][]*groupDeliveryEvent
	hopGroups  []*groupDeliveryEvent
	maxHop     int
	gNow       sim.Time
	gPerHop    time.Duration
	gPkt       *Packet

	// shardOf maps each node to its dispatch shard (sim.GlobalShard when
	// unassigned); nil until SetShards, so serial runs pay nothing.
	shardOf []int32

	counts CrossingCounts
}

// floodVisit is one DFS worklist entry of the fast flood path.
type floodVisit struct {
	node topology.NodeID
	hops int
}

// New builds a network over tree using engine eng. It returns a
// *ConfigError when cfg fails Validate.
func New(eng *sim.Engine, tree *topology.Tree, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		eng:       eng,
		tree:      tree,
		cfg:       cfg,
		hostAt:    make([]Host, tree.NumNodes()),
		txPayload: serializeTime(cfg.PayloadBytes, cfg.Bandwidth),
		txControl: serializeTime(cfg.ControlBytes, cfg.Bandwidth),
		visited:   make([]uint64, tree.NumNodes()),
		stack:     make([]floodVisit, 0, tree.NumNodes()),

		deliveryPools: make([][]*deliveryEvent, 1),
		groupPools:    make([][]*groupDeliveryEvent, 1),
	}
	if cfg.Queuing {
		n.busyUntil[0] = make([]sim.Time, tree.NumNodes())
		n.busyUntil[1] = make([]sim.Time, tree.NumNodes())
	}
	if cfg.QueueCap > 0 {
		n.SetQueueCap(cfg.QueueCap)
	}
	return n, nil
}

// MustNew is New for configurations known valid at the call site (tests,
// examples with literal defaults); it panics on a config error.
func MustNew(eng *sim.Engine, tree *topology.Tree, cfg Config) *Network {
	n, err := New(eng, tree, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Tree returns the underlying topology.
func (n *Network) Tree() *topology.Tree { return n.tree }

// Config returns the network's physical parameters.
func (n *Network) Config() Config { return n.cfg }

// Counts returns a snapshot of the crossing counters.
func (n *Network) Counts() CrossingCounts { return n.counts }

// AttachHost registers h as the protocol agent at node id. Only
// registered nodes receive deliveries; routers forward silently.
// Attaching after EnableFloodPlans invalidates any cached plans (their
// host flags are baked in at compile time).
func (n *Network) AttachHost(id topology.NodeID, h Host) {
	if h == nil {
		panic("netsim: AttachHost with nil host")
	}
	n.hostAt[id] = h
	n.invalidatePlans()
}

// SetDropFunc installs the loss-injection hook.
func (n *Network) SetDropFunc(fn DropFunc) { n.drop = fn }

// SetShards installs the node→shard map used to label delivery events
// for sharded dispatch (see sim.EnableSharding), sized NumNodes with
// sim.GlobalShard for unassigned nodes. Labels only affect which events
// may share a parallel batch, never their dispatch order, so a sharded
// and an unsharded network produce byte-identical runs.
func (n *Network) SetShards(shardOf []int32) {
	if len(shardOf) != n.tree.NumNodes() {
		panic("netsim: SetShards map size does not match topology")
	}
	maxShard := int32(-1)
	for _, s := range shardOf {
		if s > maxShard {
			maxShard = s
		}
	}
	n.shardOf = shardOf
	for int32(len(n.deliveryPools)) < maxShard+2 {
		n.deliveryPools = append(n.deliveryPools, nil)
	}
	for int32(len(n.groupPools)) < maxShard+2 {
		n.groupPools = append(n.groupPools, nil)
	}
}

// shard returns the dispatch shard owning node.
func (n *Network) shard(node topology.NodeID) int32 {
	if n.shardOf == nil {
		return sim.GlobalShard
	}
	return n.shardOf[node]
}

// SetDupFunc installs the duplicate-delivery hook.
func (n *Network) SetDupFunc(fn DupFunc) { n.dup = fn }

// SetLinkUp raises or severs the link identified by its downstream
// endpoint. Links start up; a downed link carries no traffic in either
// direction until raised again. The root has no inbound link, so its
// NodeID is not a valid link.
func (n *Network) SetLinkUp(link topology.LinkID, up bool) {
	if link == n.tree.Root() || int(link) < 0 || int(link) >= n.tree.NumNodes() {
		panic(fmt.Sprintf("netsim: SetLinkUp on invalid link %d", link))
	}
	if n.linkDown == nil {
		if up {
			return
		}
		n.linkDown = make([]bool, n.tree.NumNodes())
	}
	n.linkDown[link] = !up
}

// SetQueueCap engages (cap ≥ 1) or lifts (cap = 0) the finite
// link-queue bound at runtime — the chaos harness's qcap windows. While
// a cap is active every flood takes the event-per-hop queuing path even
// if the network was built without Queuing, so FIFO occupancy is
// actually modelled; lifting the cap restores the fast path. Engaging
// lazily allocates the serialization state, so cap-free runs pay
// nothing.
func (n *Network) SetQueueCap(cap int) {
	if cap < 0 {
		cap = 0
	}
	n.queueCap = cap
	if cap == 0 {
		return
	}
	if n.busyUntil[0] == nil {
		n.busyUntil[0] = make([]sim.Time, n.tree.NumNodes())
		n.busyUntil[1] = make([]sim.Time, n.tree.NumNodes())
	}
	if n.queued[0] == nil {
		n.queued[0] = make([][]sim.Time, n.tree.NumNodes())
		n.queued[1] = make([][]sim.Time, n.tree.NumNodes())
	}
}

// QueueCap returns the currently active link-queue bound (0 when
// unbounded).
func (n *Network) QueueCap() int { return n.queueCap }

// QueueDrops returns how many packets finite link queues have
// tail-dropped so far. Congestion drops are counted separately from
// DropFunc (channel) loss and from the crossing counters.
func (n *Network) QueueDrops() uint64 { return n.queueDrops }

// LinkUp reports whether the link is currently up.
func (n *Network) LinkUp(link topology.LinkID) bool {
	return n.linkDown == nil || !n.linkDown[link]
}

// linkSevered reports whether a downed link blocks the crossing.
func (n *Network) linkSevered(link topology.LinkID) bool {
	return n.linkDown != nil && n.linkDown[link]
}

// EnableJitter adds an independent uniform random delay in [0, max) to
// every end-to-end delivery, modelling the transient reordering that
// motivates CESRM's REORDER-DELAY (§3.2): packets spaced more closely
// than the jitter magnitude can arrive out of order. Jitter applies to
// the fast (non-queuing) delivery path; the queuing path models strict
// per-link FIFO and stays jitter-free. A nil rng disables jitter. A
// non-positive max keeps the rng installed but suppresses all draws, so
// SetMaxJitter can ramp the magnitude up later without perturbing any
// random stream in the meantime.
func (n *Network) EnableJitter(rng *sim.RNG, max time.Duration) {
	if rng == nil {
		n.jitterRNG = nil
		n.maxJitter = 0
		return
	}
	if max < 0 {
		max = 0
	}
	n.jitterRNG = rng
	n.maxJitter = max
}

// SetMaxJitter changes the jitter magnitude at runtime (delay-jitter
// ramps), keeping the rng installed by EnableJitter. While the
// magnitude is zero no random draws happen, so ramping down and back up
// is deterministic. A no-op when no jitter rng is installed.
func (n *Network) SetMaxJitter(max time.Duration) {
	if max < 0 {
		max = 0
	}
	n.maxJitter = max
}

// MaxJitter returns the current jitter magnitude.
func (n *Network) MaxJitter() time.Duration { return n.maxJitter }

// jitter draws one delivery's extra delay.
func (n *Network) jitter() time.Duration {
	if n.jitterRNG == nil {
		return 0
	}
	return n.jitterRNG.UniformDuration(0, n.maxJitter)
}

// txTime is the serialization delay of p on one link, precomputed per
// class at construction.
func (n *Network) txTime(p *Packet) time.Duration {
	if p.Class == Payload {
		return n.txPayload
	}
	return n.txControl
}

// serializeTime computes the serialization delay of a packet of the
// given size in integer arithmetic: bytes*8*time.Second/bandwidth,
// truncated to the nanosecond. The old floating-point formula
// (float64(bits)/bandwidth*1e9) produced the same value for every
// configuration used so far, but floats invite sub-nanosecond rounding
// that can differ across platforms and compiler versions — poison for
// run fingerprints. Fractional bandwidths truncate to whole bits/s.
func serializeTime(bytes int, bandwidth float64) time.Duration {
	bps := int64(bandwidth)
	if bytes == 0 || bps <= 0 {
		return 0
	}
	return time.Duration(int64(bytes) * 8 * int64(time.Second) / bps)
}

// Distance returns the control-plane one-way latency between two nodes:
// hop count times link propagation delay. This is what session-message
// timestamp exchange measures, since control packets serialize in zero
// time.
func (n *Network) Distance(a, b topology.NodeID) time.Duration {
	return time.Duration(n.tree.HopCount(a, b)) * n.cfg.LinkDelay
}

// RTT returns the round-trip control-plane latency between two nodes.
func (n *Network) RTT(a, b topology.NodeID) time.Duration {
	return 2 * n.Distance(a, b)
}

// countCrossing records one link crossing for p.
func (n *Network) countCrossing(p *Packet) {
	switch {
	case p.Session:
		n.counts.Session++
	case p.Mode == ModeMulticast && p.Class == Payload && p.Msg != nil && isData(p):
		n.counts.Data++
	case p.Mode == ModeMulticast && p.Class == Payload:
		n.counts.PayloadMulticast++
	case p.Mode == ModeSubcast && p.Class == Payload:
		n.counts.PayloadSubcast++
	case p.Mode == ModeUnicast && p.Class == Payload:
		n.counts.PayloadUnicast++
	case p.Mode == ModeMulticast:
		n.counts.ControlMulticast++
	case p.Mode == ModeSubcast:
		n.counts.ControlSubcast++
	default:
		n.counts.ControlUnicast++
	}
}

// DataTagger lets the harness mark which protocol messages are original
// data transmissions, so netsim can segregate their crossing cost
// without depending on protocol packages.
type DataTagger interface{ IsOriginalData() bool }

func isData(p *Packet) bool {
	t, ok := p.Msg.(DataTagger)
	return ok && t.IsOriginalData()
}

// Multicast sends p from host `from` to the entire group by flooding the
// tree. Every tree link is crossed at most once; links below a drop are
// not crossed at all. Delivery is scheduled for each registered host the
// flood reaches; the sender itself is not re-delivered to.
func (n *Network) Multicast(from topology.NodeID, p *Packet) {
	p.ID = n.nextID
	n.nextID++
	p.From = from
	p.To = topology.None
	p.Mode = ModeMulticast
	n.flood(from, p, false)
}

// Subcast sends p downward from router root to the receivers in its
// subtree (§3.3). The sender does not receive its own subcast.
func (n *Network) Subcast(root topology.NodeID, p *Packet) {
	p.ID = n.nextID
	n.nextID++
	p.To = topology.None
	p.Mode = ModeSubcast
	n.flood(root, p, true)
}

// deliveryEvent is the pooled end-to-end delivery event: it replaces
// the closure previously captured per delivery. The struct returns to
// the pool before Deliver runs, so nested sends can reuse it.
type deliveryEvent struct {
	n    *Network
	host Host
	pkt  *Packet
	// shard is the delivery's dispatch shard, fixing which pool the
	// record recycles into: a labeled delivery fires on its shard's
	// worker, where only that shard's pool is safe to touch.
	shard int32
}

func (d *deliveryEvent) Fire(now sim.Time) {
	n, host, pkt := d.n, d.host, d.pkt
	d.host, d.pkt = nil, nil
	pool := &n.deliveryPools[d.shard+1]
	*pool = append(*pool, d)
	host.Deliver(now, pkt)
}

// scheduleDelivery registers delivery of p to the host at node at the
// given instant using a pooled event, consulting the duplicate-injection
// hook for a possible second, later copy. Delivery events hold no Timer
// and are never cancelled, so recycling on fire is safe.
func (n *Network) scheduleDelivery(at sim.Time, node topology.NodeID, h Host, p *Packet) {
	shard := n.shard(node)
	n.scheduleDeliveryOnce(at, shard, h, p)
	if n.dup != nil {
		if extra, dup := n.dup(p, at); dup {
			if extra < 0 {
				extra = 0
			}
			n.scheduleDeliveryOnce(at.Add(extra), shard, h, p)
		}
	}
}

func (n *Network) scheduleDeliveryOnce(at sim.Time, shard int32, h Host, p *Packet) {
	var d *deliveryEvent
	pool := &n.deliveryPools[shard+1]
	if k := len(*pool); k > 0 {
		d = (*pool)[k-1]
		(*pool)[k-1] = nil
		*pool = (*pool)[:k-1]
	} else {
		d = &deliveryEvent{n: n}
	}
	d.host, d.pkt, d.shard = h, p, shard
	n.eng.ScheduleHandlerAtShard(at, d, shard)
}

// groupDeliveryEvent delivers one flood's whole hop cohort — every host
// the same hop distance from the origin, all due at the same instant —
// as a single engine event, instead of one wheel entry per host. The
// hosts fire in append order, which groupDeliver guarantees is the
// flood's pop order, so the deliveries (and everything the hosts
// schedule in response) happen in exactly the order the per-host events
// would have produced. Members are stored as node IDs, not Host
// interfaces: the int32 slice is pointer-free, so the per-delivery
// append skips the GC write barrier and the GC never scans it.
type groupDeliveryEvent struct {
	n     *Network
	pkt   *Packet
	nodes []int32
	// shard labels the event for sharded dispatch; all member hosts live
	// on this shard (groupDeliver breaks the cohort at shard changes).
	shard int32
}

func (g *groupDeliveryEvent) Fire(now sim.Time) {
	n, pkt := g.n, g.pkt
	for _, id := range g.nodes {
		n.hostAt[id].Deliver(now, pkt)
	}
	// Recycle only after the loop: a nested flood inside Deliver may pull
	// from the pool, and must not get this event while it is iterating.
	g.pkt = nil
	g.nodes = g.nodes[:0]
	pool := &n.groupPools[g.shard+1]
	*pool = append(*pool, g)
}

// canGroupDeliveries reports whether the current flood may batch its
// deliveries into hop-cohort events. Grouping requires that every
// delivery at the same hop count lands at the same instant with no
// per-delivery randomness: jitter spreads arrival times (and draws the
// RNG per delivery, in pop order), the duplicate hook draws per
// delivery too, and a zero per-hop delay would collapse all cohorts
// onto one instant where cross-cohort pop order — not hop order —
// decides the FIFO sequence. In each of those cases the flood falls
// back to one event per host. A jitter RNG installed at zero magnitude
// draws nothing and groups fine.
func (n *Network) canGroupDeliveries(perHop time.Duration) bool {
	return n.maxJitter == 0 && n.dup == nil && perHop > 0
}

// beginGrouping arms the per-flood grouping scratch.
func (n *Network) beginGrouping(now sim.Time, perHop time.Duration, p *Packet) {
	n.gNow, n.gPerHop, n.gPkt = now, perHop, p
	n.maxHop = 0
}

// groupDeliver adds one delivery to the flood's cohort group for its
// hop distance, opening a new group on first use or when the cohort
// crosses a shard boundary. Floods visit hosts in DFS pop order, so
// each cohort's members arrive here in pop order, and a cohort's
// shard-contiguous runs are scheduled (= assigned engine FIFO
// sequence numbers) in that same order: the concatenation of group
// firings at one instant replays exactly the per-host event order,
// serial or sharded.
func (n *Network) groupDeliver(node topology.NodeID, hops int) {
	for len(n.hopGroups) <= hops {
		n.hopGroups = append(n.hopGroups, nil)
	}
	s := n.shard(node)
	g := n.hopGroups[hops]
	if g != nil && g.shard != s {
		n.scheduleGroup(hops, g)
		g = nil
	}
	if g == nil {
		pool := &n.groupPools[s+1]
		if k := len(*pool); k > 0 {
			g = (*pool)[k-1]
			(*pool)[k-1] = nil
			*pool = (*pool)[:k-1]
		} else {
			g = &groupDeliveryEvent{n: n}
		}
		g.pkt, g.shard = n.gPkt, s
		n.hopGroups[hops] = g
		if hops > n.maxHop {
			n.maxHop = hops
		}
	}
	g.nodes = append(g.nodes, int32(node))
}

// scheduleGroup registers a cohort group at its hop's arrival instant.
func (n *Network) scheduleGroup(hops int, g *groupDeliveryEvent) {
	at := n.gNow.Add(time.Duration(hops) * n.gPerHop)
	n.eng.ScheduleHandlerAtShard(at, g, g.shard)
}

// flushGroups schedules every group still assembling at flood end.
func (n *Network) flushGroups() {
	for h := 1; h <= n.maxHop; h++ {
		if g := n.hopGroups[h]; g != nil {
			n.hopGroups[h] = nil
			n.scheduleGroup(h, g)
		}
	}
	n.maxHop = 0
	n.gPkt = nil
}

// flood walks the tree outward from origin. downOnly restricts the walk
// to descendants (subcast). Without queuing this performs the whole
// reachability walk immediately and schedules the deliveries — one
// hop-cohort group event per arrival instant when grouping applies
// (see canGroupDeliveries), one event per reached host otherwise; with
// queuing it simulates each hop as its own event.
//
// The fast path reuses the network's scratch buffers (visited stamps,
// DFS stack) and pooled delivery events, so it allocates nothing. The
// traversal order — children in tree order, then the parent — and the
// LIFO worklist are load-bearing: they fix the FIFO tie-break sequence
// of the scheduled deliveries and must match what the old
// map-and-slice implementation produced.
func (n *Network) flood(origin topology.NodeID, p *Packet, downOnly bool) {
	if n.cfg.Queuing || n.queueCap > 0 {
		n.floodHop(origin, origin, topology.None, p, downOnly, n.eng.Now())
		return
	}
	if n.plans != nil {
		if pl := n.planFor(origin, downOnly); pl != nil {
			n.replayPlan(pl, p)
			return
		}
	}
	perHop := n.cfg.LinkDelay + n.txTime(p)
	now := n.eng.Now()
	grouped := n.canGroupDeliveries(perHop)
	if grouped {
		n.beginGrouping(now, perHop, p)
	}
	n.visitGen++
	gen := n.visitGen
	stack := n.stack[:0]
	stack = append(stack, floodVisit{origin, 0})
	n.visited[origin] = gen
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v.node != origin {
			if h := n.hostAt[v.node]; h != nil {
				if grouped {
					n.groupDeliver(v.node, v.hops)
				} else {
					n.scheduleDelivery(now.Add(time.Duration(v.hops)*perHop+n.jitter()), v.node, h, p)
				}
			}
		}
		for _, next := range n.tree.Children(v.node) {
			if n.visited[next] == gen {
				continue
			}
			n.visited[next] = gen
			if n.linkSevered(next) {
				continue
			}
			n.countCrossing(p)
			// Moving to a child crosses the child's inbound link downward.
			if n.drop != nil && n.drop(p, next, true) {
				continue
			}
			stack = append(stack, floodVisit{next, v.hops + 1})
		}
		if !downOnly {
			if parent := n.tree.Parent(v.node); parent != topology.None && n.visited[parent] != gen {
				n.visited[parent] = gen
				if n.linkSevered(v.node) {
					continue
				}
				n.countCrossing(p)
				// Climbing crosses our own inbound link upward.
				if n.drop == nil || !n.drop(p, v.node, false) {
					stack = append(stack, floodVisit{parent, v.hops + 1})
				}
			}
		}
	}
	n.stack = stack[:0]
	if grouped {
		n.flushGroups()
	}
}

// hopEvent is the pooled per-hop forwarding event of the queuing flood
// path, replacing the closure previously captured per hop.
type hopEvent struct {
	n        *Network
	origin   topology.NodeID
	node     topology.NodeID
	cameFrom topology.NodeID
	pkt      *Packet
	downOnly bool
}

func (h *hopEvent) Fire(now sim.Time) {
	n := h.n
	origin, node, cameFrom, pkt, downOnly := h.origin, h.node, h.cameFrom, h.pkt, h.downOnly
	h.pkt = nil
	n.freeHops = append(n.freeHops, h)
	n.floodHop(origin, node, cameFrom, pkt, downOnly, now)
}

// scheduleHop registers continuation of a queuing flood at node `next`,
// arriving from `from`, at the given instant.
func (n *Network) scheduleHop(at sim.Time, origin, next, from topology.NodeID, p *Packet, downOnly bool) {
	var h *hopEvent
	if k := len(n.freeHops); k > 0 {
		h = n.freeHops[k-1]
		n.freeHops[k-1] = nil
		n.freeHops = n.freeHops[:k-1]
	} else {
		h = &hopEvent{n: n}
	}
	h.origin, h.node, h.cameFrom, h.pkt, h.downOnly = origin, next, from, p, downOnly
	n.eng.ScheduleHandlerAt(at, h)
}

// floodHop is the event-per-hop variant used when Queuing is enabled.
// Like flood, it visits children in tree order before the parent.
func (n *Network) floodHop(origin, node, cameFrom topology.NodeID, p *Packet, downOnly bool, at sim.Time) {
	if node != origin {
		if h := n.hostAt[node]; h != nil {
			h.Deliver(at, p)
		}
	}
	for _, next := range n.tree.Children(node) {
		if next == cameFrom || n.linkSevered(next) {
			continue
		}
		n.countCrossing(p)
		if n.drop != nil && n.drop(p, next, true) {
			continue
		}
		if arr, ok := n.hopArrival(next, true, at, p); ok {
			n.scheduleHop(arr, origin, next, node, p, downOnly)
		}
	}
	if !downOnly {
		if parent := n.tree.Parent(node); parent != topology.None && parent != cameFrom && !n.linkSevered(node) {
			n.countCrossing(p)
			if n.drop == nil || !n.drop(p, node, false) {
				if arr, ok := n.hopArrival(node, false, at, p); ok {
					n.scheduleHop(arr, origin, parent, node, p, downOnly)
				}
			}
		}
	}
}

// Unicast sends p from host `from` to host `to` along the tree path.
func (n *Network) Unicast(from, to topology.NodeID, p *Packet) {
	p.ID = n.nextID
	n.nextID++
	p.From = from
	p.To = to
	p.Mode = ModeUnicast
	links := n.tree.PathLinks(from, to)
	tx := n.txTime(p)
	cur := from
	at := n.eng.Now()
	for _, link := range links {
		var next topology.NodeID
		var down bool
		if link == cur {
			// Climbing: the link's downstream endpoint is where we are.
			next = n.tree.Parent(cur)
			down = false
		} else {
			next = link
			down = true
		}
		if n.linkSevered(link) {
			return
		}
		n.countCrossing(p)
		if n.drop != nil && n.drop(p, link, down) {
			return
		}
		if n.cfg.Queuing || n.queueCap > 0 {
			var ok bool
			if at, ok = n.hopArrival(link, down, at, p); !ok {
				return
			}
		} else {
			at = at.Add(n.cfg.LinkDelay + tx)
		}
		cur = next
	}
	if h := n.hostAt[to]; h != nil && to != from {
		n.scheduleDelivery(at.Add(n.jitter()), to, h, p)
	}
}

// UnicastThenSubcast implements the router-assisted expedited reply of
// §3.3: the packet travels point-to-point from host `from` to the
// turning-point router `via`, which then subcasts it downstream to its
// subtree. Crossing costs accrue for the unicast leg and the subcast
// leg; the packet's final Mode is ModeSubcast.
func (n *Network) UnicastThenSubcast(from, via topology.NodeID, p *Packet) {
	p.ID = n.nextID
	n.nextID++
	p.From = from
	p.To = topology.None

	// Walk the unicast leg accumulating delay and cost, as in Unicast,
	// but classified as unicast crossings.
	p.Mode = ModeUnicast
	links := n.tree.PathLinks(from, via)
	tx := n.txTime(p)
	cur := from
	at := n.eng.Now()
	for _, link := range links {
		var down bool
		var next topology.NodeID
		if link == cur {
			next = n.tree.Parent(cur)
			down = false
		} else {
			next = link
			down = true
		}
		if n.linkSevered(link) {
			return
		}
		n.countCrossing(p)
		if n.drop != nil && n.drop(p, link, down) {
			return
		}
		if n.cfg.Queuing || n.queueCap > 0 {
			var ok bool
			if at, ok = n.hopArrival(link, down, at, p); !ok {
				return
			}
		} else {
			at = at.Add(n.cfg.LinkDelay + tx)
		}
		cur = next
	}
	// Subcast downstream once the packet reaches the turning point. When
	// the subcast head is itself an attached host (the origin subtree is
	// a single leaf), the packet is delivered to it directly.
	n.eng.ScheduleAt(at, func(now sim.Time) {
		p.Mode = ModeSubcast
		if h := n.hostAt[via]; h != nil && via != from {
			h.Deliver(now, p)
		}
		n.flood(via, p, true)
	})
}

// hopArrival computes when p finishes crossing link in the given
// direction starting no earlier than at, honoring FIFO serialization.
// When a finite queue cap is active, a payload packet arriving while
// cap transmissions are already queued or in service is tail-dropped:
// ok is false and the packet never crosses. Control packets serialize
// in zero time, occupy no buffer, and are never queue-dropped.
func (n *Network) hopArrival(link topology.LinkID, down bool, at sim.Time, p *Packet) (arrival sim.Time, ok bool) {
	dir := 1
	if down {
		dir = 0
	}
	tx := n.txTime(p)
	if cap := n.queueCap; cap > 0 && tx > 0 {
		// Prune transmissions that finished by the arrival instant; the
		// finish times are appended in non-decreasing order, so the live
		// suffix is contiguous.
		q := n.queued[dir][link]
		for len(q) > 0 && !q[0].After(at) {
			q = q[1:]
		}
		if len(q) >= cap {
			n.queued[dir][link] = q
			n.queueDrops++
			return at, false
		}
		start := at
		if b := n.busyUntil[dir][link]; b.After(start) {
			start = b
		}
		finish := start.Add(tx)
		n.busyUntil[dir][link] = finish
		n.queued[dir][link] = append(q, finish)
		return finish.Add(n.cfg.LinkDelay), true
	}
	start := at
	if b := n.busyUntil[dir][link]; b.After(start) {
		start = b
	}
	finish := start.Add(tx)
	n.busyUntil[dir][link] = finish
	return finish.Add(n.cfg.LinkDelay), true
}
