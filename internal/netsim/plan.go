// Flood plan cache: the per-origin compiled fan-out (tentpole of the
// "cache the multicast fan-out" optimization). A plan pairs a
// topology.Tour — the flattened Euler-tour of the fast flood's DFS from
// one origin — with the host flag of every visited entry. Replaying the
// plan performs the same deliveries, the same sever → count → drop call
// sequence per link, and the same jitter/drop/duplicate RNG draws in the
// same order as the DFS, so a run with plans enabled is byte-identical
// (fingerprint and all) to one without; see topology/tour.go for the
// order-preservation argument and DESIGN.md §14 for the full design.
//
// Plans are compiled lazily on first use and held in a size-capped LRU
// keyed by (origin, downOnly). The cap is a total entry budget across
// all cached plans, bounding worst-case cache heap at roughly
// budget × ~40 bytes regardless of tree size or origin diversity.
// Origins past the cap fall back to the plain DFS; admission under
// pressure is scan-resistant (an origin must re-miss within a recency
// window before it may evict residents), so a one-shot sweep over many
// origins — the session-message round-robin at SYN10K scale — never
// thrashes the resident working set.
package netsim

import (
	"time"

	"cesrm/internal/topology"
)

// DefaultFloodPlanEntries is the default total-entry budget of the flood
// plan cache: 1<<20 entries is ~40 MB of worst-case cache heap, enough
// to hold every (origin, downOnly) plan of every catalog trace while
// keeping the 10k-receiver SYN10K stress entry to a bounded working set.
const DefaultFloodPlanEntries = 1 << 20

// PlanStats is a snapshot of the flood plan cache counters.
type PlanStats struct {
	// Hits counts floods replayed from a cached plan.
	Hits uint64
	// Misses counts floods that found no cached plan; a miss compiles
	// and caches the plan when the budget and admission policy allow,
	// and falls back to the DFS otherwise.
	Misses uint64
	// Evictions counts plans removed to make room (plus plans discarded
	// by a cache invalidation, e.g. a post-setup AttachHost).
	Evictions uint64
}

// Add accumulates other into s (for aggregating across runs).
func (s *PlanStats) Add(other PlanStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
}

// floodPlan is one cached fan-out: the topology tour plus the baked
// per-entry host flags (which is why AttachHost invalidates the cache).
type floodPlan struct {
	key  int64
	tour topology.Tour
	host []bool
	// prev/next chain the cache's LRU list, most recent at head.
	prev, next *floodPlan
}

// planCache is the size-capped LRU of compiled flood plans.
type planCache struct {
	byKey      map[int64]*floodPlan
	head, tail *floodPlan
	// budget and used count tour entries, not plans: the unit that
	// actually bounds heap.
	budget, used int
	stats        PlanStats
	// lastMiss and tick implement scan-resistant admission: lastMiss[k]
	// is the miss tick at which plan key k last failed a lookup. When
	// inserting would evict, the key must have re-missed within the
	// admission window to be admitted.
	lastMiss []int64
	tick     int64
}

// planKey encodes (origin, downOnly): full floods and subcasts from the
// same node are distinct plans.
func planKey(origin topology.NodeID, downOnly bool) int64 {
	k := int64(origin) << 1
	if downOnly {
		k |= 1
	}
	return k
}

// EnableFloodPlans turns on the flood plan cache with the given total
// entry budget (<= 0 selects DefaultFloodPlanEntries). Enable once,
// before the run; plans never change observable behavior — only the
// cost of the fast flood path — so fingerprints are byte-identical with
// the cache on or off. The queuing flood path ignores plans entirely
// and remains the conformance oracle.
func (n *Network) EnableFloodPlans(budgetEntries int) {
	if budgetEntries <= 0 {
		budgetEntries = DefaultFloodPlanEntries
	}
	n.plans = &planCache{
		byKey:    make(map[int64]*floodPlan),
		budget:   budgetEntries,
		lastMiss: make([]int64, 2*n.tree.NumNodes()),
	}
}

// PlanStats returns a snapshot of the plan cache counters; zero when
// the cache is disabled.
func (n *Network) PlanStats() PlanStats {
	if n.plans == nil {
		return PlanStats{}
	}
	return n.plans.stats
}

// invalidatePlans discards every cached plan (host flags are baked into
// plans, so AttachHost after enabling must purge). Counted as
// evictions.
func (n *Network) invalidatePlans() {
	c := n.plans
	if c == nil || len(c.byKey) == 0 {
		return
	}
	c.stats.Evictions += uint64(len(c.byKey))
	c.byKey = make(map[int64]*floodPlan)
	c.head, c.tail = nil, nil
	c.used = 0
}

// moveToFront marks pl most recently used.
func (c *planCache) moveToFront(pl *floodPlan) {
	if c.head == pl {
		return
	}
	// Unlink (pl is in the list and is not head, so pl.prev != nil).
	pl.prev.next = pl.next
	if pl.next != nil {
		pl.next.prev = pl.prev
	} else {
		c.tail = pl.prev
	}
	// Relink at head.
	pl.prev = nil
	pl.next = c.head
	c.head.prev = pl
	c.head = pl
}

// insertFront links a fresh plan at the head of the LRU list.
func (c *planCache) insertFront(pl *floodPlan) {
	pl.prev = nil
	pl.next = c.head
	if c.head != nil {
		c.head.prev = pl
	}
	c.head = pl
	if c.tail == nil {
		c.tail = pl
	}
	c.byKey[pl.key] = pl
	c.used += len(pl.tour.Entries)
}

// evictLRU removes the least recently used plan.
func (c *planCache) evictLRU() {
	pl := c.tail
	if pl == nil {
		return
	}
	c.tail = pl.prev
	if c.tail != nil {
		c.tail.next = nil
	} else {
		c.head = nil
	}
	delete(c.byKey, pl.key)
	c.used -= len(pl.tour.Entries)
	c.stats.Evictions++
	pl.prev, pl.next = nil, nil
}

// planFor returns the cached plan for (origin, downOnly), compiling and
// caching it on a miss when the budget allows. A nil return means the
// flood should take the plain DFS path.
func (n *Network) planFor(origin topology.NodeID, downOnly bool) *floodPlan {
	c := n.plans
	key := planKey(origin, downOnly)
	if pl := c.byKey[key]; pl != nil {
		c.stats.Hits++
		c.moveToFront(pl)
		return pl
	}
	c.stats.Misses++
	c.tick++
	// Admission is decided before compiling, using the tree size as the
	// plan-size bound, so a rejected origin costs one map probe — not a
	// wasted tree walk.
	bound := n.tree.NumNodes()
	if bound > c.budget {
		// A full plan could exceed the whole budget: never cache.
		return nil
	}
	if c.used+bound > c.budget {
		// Inserting may evict residents. Scan resistance: only an origin
		// that missed again within the recency window may displace them;
		// a one-shot sweep over many origins (session round-robin on a
		// huge tree) keeps missing outside the window and never evicts
		// the hot set. The window scales with the resident plan count so
		// a hot set slightly larger than the cache still rotates in.
		last := c.lastMiss[key]
		c.lastMiss[key] = c.tick
		window := int64(4*len(c.byKey)) + 64
		if last == 0 || c.tick-last > window {
			return nil
		}
	}
	pl := n.compilePlan(key, origin, downOnly)
	for c.used+len(pl.tour.Entries) > c.budget {
		c.evictLRU()
	}
	c.insertFront(pl)
	return pl
}

// compilePlan builds the plan: the pure-topology tour plus the host
// flags at compile time.
func (n *Network) compilePlan(key int64, origin topology.NodeID, downOnly bool) *floodPlan {
	tour := n.tree.FloodTour(origin, downOnly)
	host := make([]bool, len(tour.Entries))
	for i := range tour.Entries {
		host[i] = n.hostAt[tour.Entries[i].Node] != nil
	}
	return &floodPlan{key: key, tour: tour, host: host}
}

// replayPlan reenacts the flood from a compiled plan: a linear scan of
// the pop-order entries, each delivering (when hosting) and running its
// link checks exactly as the DFS would, with severed or dropped links
// marking the neighbor's region start so the scan jumps its whole span.
// The call sequence — jitter draw, linkSevered, countCrossing, drop,
// delivery scheduling (hop-cohort groups or per-host events, chosen by
// the same canGroupDeliveries predicate the DFS uses) — is identical
// to the DFS's by the region-contiguity argument in topology/tour.go,
// so fingerprints cannot move. Allocation-free once the skip-mark
// scratch has grown to the largest replayed plan.
func (n *Network) replayPlan(pl *floodPlan, p *Packet) {
	entries, ops := pl.tour.Entries, pl.tour.Ops
	if len(n.skipMark) < len(entries) {
		n.skipMark = make([]uint64, len(entries))
	}
	mark := n.skipMark
	n.visitGen++
	gen := n.visitGen
	perHop := n.cfg.LinkDelay + n.txTime(p)
	now := n.eng.Now()
	grouped := n.canGroupDeliveries(perHop)
	if grouped {
		n.beginGrouping(now, perHop, p)
	}
	for i := 0; i < len(entries); {
		if mark[i] == gen {
			i += int(entries[i].Span)
			continue
		}
		e := &entries[i]
		if i > 0 && pl.host[i] {
			if grouped {
				n.groupDeliver(e.Node, int(e.Hops))
			} else {
				n.scheduleDelivery(now.Add(time.Duration(e.Hops)*perHop+n.jitter()), e.Node, n.hostAt[e.Node], p)
			}
		}
		opStart := int32(0)
		if i > 0 {
			opStart = entries[i-1].OpsEnd
		}
		for j := opStart; j < e.OpsEnd; j++ {
			op := &ops[j]
			if n.linkSevered(op.Link) {
				mark[op.Region] = gen
				continue
			}
			n.countCrossing(p)
			if n.drop != nil && n.drop(p, op.Link, op.Down) {
				mark[op.Region] = gen
			}
		}
		i++
	}
	if grouped {
		n.flushGroups()
	}
}
