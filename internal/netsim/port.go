package netsim

import (
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// Port is the shard-local Endpoint handle agents hold in sharded runs.
// Reads (Tree, RTT) pass straight through — they touch only immutable
// topology. Sends issued inside a parallel region are deferred through
// the shard's op log, so packet IDs are assigned, drop/jitter/duplicate
// randomness is drawn, and crossings are counted at merge time, in
// exactly the order the serial engine would have produced; outside a
// region (setup, barrier events) sends execute immediately.
type Port struct {
	n  *Network
	sh *sim.Shard
}

// NewPort returns the Endpoint handle binding the network to one shard.
func NewPort(n *Network, sh *sim.Shard) *Port {
	if sh == nil {
		panic("netsim: NewPort with nil shard")
	}
	return &Port{n: n, sh: sh}
}

// Tree returns the underlying topology.
func (p *Port) Tree() *topology.Tree { return p.n.tree }

// RTT returns the round-trip control-plane latency between two nodes.
func (p *Port) RTT(a, b topology.NodeID) time.Duration { return p.n.RTT(a, b) }

// AttachHost registers the protocol agent at node id. Attachment happens
// during setup, before any parallel region.
func (p *Port) AttachHost(id topology.NodeID, h Host) { p.n.AttachHost(id, h) }

// Multicast sends pkt from host from to the entire group, deferred to
// the merge when issued inside a parallel region.
func (p *Port) Multicast(from topology.NodeID, pkt *Packet) {
	if !p.sh.Buffering() {
		p.n.Multicast(from, pkt)
		return
	}
	n := p.n
	p.sh.Defer(func() { n.Multicast(from, pkt) })
}

// Unicast sends pkt from host from to host to along the tree path,
// deferred to the merge when issued inside a parallel region.
func (p *Port) Unicast(from, to topology.NodeID, pkt *Packet) {
	if !p.sh.Buffering() {
		p.n.Unicast(from, to, pkt)
		return
	}
	n := p.n
	p.sh.Defer(func() { n.Unicast(from, to, pkt) })
}

// UnicastThenSubcast sends pkt point-to-point to router via, which
// subcasts it down its subtree, deferred to the merge when issued
// inside a parallel region.
func (p *Port) UnicastThenSubcast(from, via topology.NodeID, pkt *Packet) {
	if !p.sh.Buffering() {
		p.n.UnicastThenSubcast(from, via, pkt)
		return
	}
	n := p.n
	p.sh.Defer(func() { n.UnicastThenSubcast(from, via, pkt) })
}
