package netsim

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

func TestLinkDownSeversSubtree(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	before := net.Counts().ControlMulticast

	net.SetLinkUp(2, false)
	if net.LinkUp(2) {
		t.Fatal("LinkUp(2) = true after SetLinkUp(2, false)")
	}
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()

	if len(recs[3].got) != 1 || len(recs[4].got) != 1 {
		t.Fatalf("hosts outside the severed subtree missed the multicast: 3=%d 4=%d",
			len(recs[3].got), len(recs[4].got))
	}
	if len(recs[6].got) != 0 {
		t.Fatal("host 6 received a multicast across a severed link")
	}
	// The severed link and everything below it count no crossings: only
	// links 1, 3 and 4 were traversed.
	if got := net.Counts().ControlMulticast - before; got != 3 {
		t.Fatalf("control crossings = %d, want 3 (severed subtree must not count)", got)
	}

	// Restoration heals delivery.
	net.SetLinkUp(2, true)
	if !net.LinkUp(2) {
		t.Fatal("LinkUp(2) = false after restoration")
	}
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if len(recs[6].got) != 1 {
		t.Fatal("host 6 did not receive after link restoration")
	}
}

func TestLinkDownSeversUnicast(t *testing.T) {
	eng, net, recs := setup(t, DefaultConfig())
	net.SetLinkUp(5, false)
	net.Unicast(0, 6, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if len(recs[6].got) != 0 {
		t.Fatal("unicast crossed a severed link")
	}
}

func TestSetLinkUpRejectsInvalidLink(t *testing.T) {
	_, net, _ := setup(t, DefaultConfig())
	for _, link := range []topology.LinkID{0, -1, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLinkUp(%d) did not panic", link)
				}
			}()
			net.SetLinkUp(link, false)
		}()
	}
}

func TestDupFuncDeliversDelayedSecondCopy(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	const extra = 2 * time.Millisecond
	net.SetDupFunc(func(p *Packet, at sim.Time) (time.Duration, bool) {
		return extra, true
	})
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()

	r := recs[3]
	if len(r.got) != 2 {
		t.Fatalf("deliveries = %d, want original plus duplicate", len(r.got))
	}
	if want := r.got[0].at.Add(extra); r.got[1].at != want {
		t.Fatalf("duplicate delivered at %v, want %v", r.got[1].at, want)
	}
	if r.got[0].pkt.Msg != r.got[1].pkt.Msg {
		t.Fatal("duplicate carries a different message")
	}
}

func TestSetMaxJitterRampsFromZero(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	// A jitter RNG installed at zero magnitude must not perturb
	// deliveries (and must not draw), but keeps the ramp available.
	net.EnableJitter(sim.NewRNG(7), 0)
	if net.MaxJitter() != 0 {
		t.Fatalf("MaxJitter = %v, want 0", net.MaxJitter())
	}
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	exact := sim.Time(2 * cfg.LinkDelay)
	if got := recs[3].got[0].at; got != exact {
		t.Fatalf("zero-magnitude jitter perturbed delivery: %v, want %v", got, exact)
	}

	const max = 5 * time.Millisecond
	net.SetMaxJitter(max)
	if net.MaxJitter() != max {
		t.Fatalf("MaxJitter = %v, want %v", net.MaxJitter(), max)
	}
	base := eng.Now()
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	got := recs[3].got[1].at.Sub(base.Add(sim.Duration(2 * cfg.LinkDelay)))
	if got < 0 || got >= max {
		t.Fatalf("jittered delivery offset %v outside [0, %v)", got, max)
	}

	// Ramping back down restores exact delivery.
	net.SetMaxJitter(0)
	base = eng.Now()
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if got := recs[3].got[2].at.Sub(base); got != sim.Duration(2*cfg.LinkDelay) {
		t.Fatalf("post-ramp delivery offset %v, want %v", got, 2*cfg.LinkDelay)
	}
}
