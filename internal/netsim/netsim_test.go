package netsim

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

type delivery struct {
	at  sim.Time
	pkt *Packet
}

type recorder struct {
	got []delivery
}

func (r *recorder) Deliver(now sim.Time, p *Packet) {
	r.got = append(r.got, delivery{now, p})
}

//	   0 (source)
//	  / \
//	 1   2
//	/ \   \
//
// 3   4   5
//
//	|
//	6
func testTree(t *testing.T) *topology.Tree {
	t.Helper()
	return topology.MustNew([]topology.NodeID{topology.None, 0, 0, 1, 1, 2, 5})
}

type dataMsg struct{}

func (dataMsg) IsOriginalData() bool { return true }

type reqMsg struct{}

func setup(t *testing.T, cfg Config) (*sim.Engine, *Network, map[topology.NodeID]*recorder) {
	t.Helper()
	eng := sim.NewEngine()
	tree := testTree(t)
	net := MustNew(eng, tree, cfg)
	recs := make(map[topology.NodeID]*recorder)
	for _, id := range []topology.NodeID{0, 3, 4, 6} {
		r := &recorder{}
		recs[id] = r
		net.AttachHost(id, r)
	}
	return eng, net, recs
}

func TestMulticastReachesAllHostsWithHopDelay(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()

	// Control packets are 0 bytes: delay is pure propagation.
	wantHops := map[topology.NodeID]int{3: 2, 4: 2, 6: 3}
	for id, hops := range wantHops {
		r := recs[id]
		if len(r.got) != 1 {
			t.Fatalf("host %d deliveries = %d, want 1", id, len(r.got))
		}
		want := sim.Time(time.Duration(hops) * cfg.LinkDelay)
		if r.got[0].at != want {
			t.Errorf("host %d delivered at %v, want %v", id, r.got[0].at, want)
		}
	}
	if len(recs[0].got) != 0 {
		t.Error("multicast delivered back to sender")
	}
}

func TestMulticastFromReceiverReachesEveryoneElse(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	net.Multicast(3, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	wantHops := map[topology.NodeID]int{0: 2, 4: 2, 6: 5}
	for id, hops := range wantHops {
		r := recs[id]
		if len(r.got) != 1 {
			t.Fatalf("host %d deliveries = %d, want 1", id, len(r.got))
		}
		want := sim.Time(time.Duration(hops) * cfg.LinkDelay)
		if r.got[0].at != want {
			t.Errorf("host %d delivered at %v, want %v", id, r.got[0].at, want)
		}
	}
	if len(recs[3].got) != 0 {
		t.Error("sender received its own multicast")
	}
}

func TestPayloadAddsSerializationDelay(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	net.Multicast(0, &Packet{Class: Payload, Msg: dataMsg{}})
	eng.Run()
	tx := time.Duration(float64(cfg.PayloadBytes*8) / cfg.Bandwidth * float64(time.Second))
	want := sim.Time(2 * (cfg.LinkDelay + tx))
	if got := recs[3].got[0].at; got != want {
		t.Fatalf("payload delivery at %v, want %v", got, want)
	}
}

func TestMulticastCrossesEveryLinkOnce(t *testing.T) {
	eng, net, _ := setup(t, DefaultConfig())
	net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if got := net.Counts().ControlMulticast; got != 6 {
		t.Fatalf("control crossings = %d, want 6 (one per link)", got)
	}
	// Multicast from a receiver also crosses every link exactly once.
	net.Multicast(6, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if got := net.Counts().ControlMulticast; got != 12 {
		t.Fatalf("control crossings = %d, want 12", got)
	}
}

func TestDropPrunesSubtree(t *testing.T) {
	eng, net, recs := setup(t, DefaultConfig())
	net.SetDropFunc(func(p *Packet, link topology.LinkID, down bool) bool {
		return link == 1 && down
	})
	net.Multicast(0, &Packet{Class: Payload, Msg: dataMsg{}})
	eng.Run()
	if len(recs[3].got) != 0 || len(recs[4].got) != 0 {
		t.Fatal("hosts below dropped link received the packet")
	}
	if len(recs[6].got) != 1 {
		t.Fatal("host outside dropped subtree missed the packet")
	}
	// Crossings: link 1 is crossed (and dropped at far end); links 3,4
	// below it are not crossed. Links 2,5,6 are crossed. Total 4.
	if got := net.Counts().Data; got != 4 {
		t.Fatalf("data crossings = %d, want 4", got)
	}
}

func TestUnicastPathAndDelay(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	net.Unicast(3, 6, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if len(recs[6].got) != 1 {
		t.Fatal("unicast not delivered")
	}
	want := sim.Time(5 * cfg.LinkDelay) // 3->1->0->2->5->6
	if recs[6].got[0].at != want {
		t.Fatalf("unicast delivered at %v, want %v", recs[6].got[0].at, want)
	}
	if got := net.Counts().ControlUnicast; got != 5 {
		t.Fatalf("unicast crossings = %d, want 5", got)
	}
	// Nobody else hears a unicast.
	if len(recs[0].got)+len(recs[4].got) != 0 {
		t.Fatal("unicast leaked to other hosts")
	}
}

func TestUnicastDroppedMidPath(t *testing.T) {
	eng, net, recs := setup(t, DefaultConfig())
	net.SetDropFunc(func(p *Packet, link topology.LinkID, down bool) bool {
		return link == 2
	})
	net.Unicast(3, 6, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if len(recs[6].got) != 0 {
		t.Fatal("dropped unicast was delivered")
	}
	// Crossings stop at the dropped link: 3->1 (link 3), 1->0 (link 1),
	// 0->2 (link 2, dropped) = 3 crossings.
	if got := net.Counts().ControlUnicast; got != 3 {
		t.Fatalf("unicast crossings = %d, want 3", got)
	}
}

func TestSubcastReachesOnlySubtree(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	net.Subcast(2, &Packet{Class: Payload, From: 4, Msg: reqMsg{}})
	eng.Run()
	if len(recs[6].got) != 1 {
		t.Fatal("subcast missed receiver in subtree")
	}
	if len(recs[3].got)+len(recs[4].got)+len(recs[0].got) != 0 {
		t.Fatal("subcast leaked outside subtree")
	}
	if got := net.Counts().PayloadSubcast; got != 2 {
		t.Fatalf("subcast crossings = %d, want 2 (links 5,6)", got)
	}
}

func TestSessionCountsSeparately(t *testing.T) {
	eng, net, _ := setup(t, DefaultConfig())
	net.Multicast(0, &Packet{Class: Control, Session: true, Msg: reqMsg{}})
	eng.Run()
	c := net.Counts()
	if c.Session != 6 || c.ControlMulticast != 0 {
		t.Fatalf("session crossings = %+v", c)
	}
	if c.RecoveryTotal() != 0 {
		t.Fatalf("session counted as recovery overhead: %d", c.RecoveryTotal())
	}
}

func TestDataCountsSeparately(t *testing.T) {
	eng, net, _ := setup(t, DefaultConfig())
	net.Multicast(0, &Packet{Class: Payload, Msg: dataMsg{}})
	eng.Run()
	c := net.Counts()
	if c.Data != 6 || c.PayloadMulticast != 0 {
		t.Fatalf("data crossings = %+v", c)
	}
	// A retransmission (payload, non-data) counts as recovery overhead.
	net.Multicast(4, &Packet{Class: Payload, Msg: reqMsg{}})
	eng.Run()
	c = net.Counts()
	if c.PayloadMulticast != 6 || c.RecoveryTotal() != 6 {
		t.Fatalf("retransmission accounting wrong: %+v", c)
	}
}

func TestQueuingSerializesPayloads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Queuing = true
	eng, net, recs := setup(t, cfg)
	// Two payloads from the source back to back: the second must wait for
	// the first to finish serializing on each shared link.
	net.Multicast(0, &Packet{Class: Payload, Msg: dataMsg{}})
	net.Multicast(0, &Packet{Class: Payload, Msg: dataMsg{}})
	eng.Run()
	r := recs[3]
	if len(r.got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(r.got))
	}
	tx := time.Duration(float64(cfg.PayloadBytes*8) / cfg.Bandwidth * float64(time.Second))
	first := sim.Time(2 * (cfg.LinkDelay + tx))
	if r.got[0].at != first {
		t.Fatalf("first delivery at %v, want %v", r.got[0].at, first)
	}
	// Second packet starts on link 1 only after the first clears it.
	second := first.Add(tx)
	if r.got[1].at != second {
		t.Fatalf("second delivery at %v, want %v", r.got[1].at, second)
	}
}

func TestQueuingFloodMatchesFastPathForSinglePacket(t *testing.T) {
	for _, queuing := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Queuing = queuing
		eng, net, recs := setup(t, cfg)
		net.Multicast(0, &Packet{Class: Payload, Msg: dataMsg{}})
		eng.Run()
		tx := time.Duration(float64(cfg.PayloadBytes*8) / cfg.Bandwidth * float64(time.Second))
		want := sim.Time(3 * (cfg.LinkDelay + tx))
		if got := recs[6].got[0].at; got != want {
			t.Errorf("queuing=%v: delivery at %v, want %v", queuing, got, want)
		}
	}
}

func TestDistanceAndRTT(t *testing.T) {
	_, net, _ := setup(t, DefaultConfig())
	if d := net.Distance(0, 6); d != 60*time.Millisecond {
		t.Fatalf("Distance(0,6) = %v, want 60ms", d)
	}
	if r := net.RTT(3, 4); r != 80*time.Millisecond {
		t.Fatalf("RTT(3,4) = %v, want 80ms", r)
	}
}

func TestPacketIDsAreUnique(t *testing.T) {
	eng, net, recs := setup(t, DefaultConfig())
	for i := 0; i < 5; i++ {
		net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
	}
	eng.Run()
	seen := map[uint64]bool{}
	for _, d := range recs[3].got {
		if seen[d.pkt.ID] {
			t.Fatal("duplicate packet ID")
		}
		seen[d.pkt.ID] = true
	}
	if len(seen) != 5 {
		t.Fatalf("got %d distinct packets, want 5", len(seen))
	}
}

func TestUnicastToSelfIsNoOp(t *testing.T) {
	eng, net, recs := setup(t, DefaultConfig())
	net.Unicast(3, 3, &Packet{Class: Control, Msg: reqMsg{}})
	eng.Run()
	if len(recs[3].got) != 0 {
		t.Fatal("self-unicast delivered")
	}
	if net.Counts().ControlUnicast != 0 {
		t.Fatal("self-unicast counted crossings")
	}
}

func TestJitterReordersCloseDeliveries(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	net.EnableJitter(sim.NewRNG(7), 200*time.Millisecond)
	// Twenty control packets 1ms apart: with 200ms jitter, arrival order
	// at receiver 6 must differ from send order.
	for i := 0; i < 20; i++ {
		i := i
		eng.Schedule(time.Duration(i)*time.Millisecond, func(sim.Time) {
			net.Multicast(0, &Packet{Class: Control, Msg: reqMsg{}})
			_ = i
		})
	}
	eng.Run()
	r := recs[6]
	if len(r.got) != 20 {
		t.Fatalf("deliveries = %d, want 20", len(r.got))
	}
	inOrder := true
	for i := 1; i < len(r.got); i++ {
		if r.got[i].pkt.ID < r.got[i-1].pkt.ID {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("jittered deliveries arrived perfectly in order")
	}
}

func TestJitterDisabled(t *testing.T) {
	_, net, _ := setup(t, DefaultConfig())
	net.EnableJitter(nil, time.Second)
	if d := net.jitter(); d != 0 {
		t.Fatalf("nil-rng jitter = %v", d)
	}
	net.EnableJitter(sim.NewRNG(1), 0)
	if d := net.jitter(); d != 0 {
		t.Fatalf("zero-max jitter = %v", d)
	}
}

func TestAttachNilHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AttachHost(nil) did not panic")
		}
	}()
	_, net, _ := setup(t, DefaultConfig())
	net.AttachHost(3, nil)
}

func TestClassAndModeStrings(t *testing.T) {
	if Payload.String() != "payload" || Control.String() != "control" {
		t.Fatal("Class.String wrong")
	}
	if ModeMulticast.String() != "multicast" || ModeUnicast.String() != "unicast" || ModeSubcast.String() != "subcast" {
		t.Fatal("Mode.String wrong")
	}
	if Class(9).String() == "" || Mode(9).String() == "" {
		t.Fatal("unknown enum should still format")
	}
}

func BenchmarkMulticastFlood(b *testing.B) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 15, Depth: 5})
	net := MustNew(eng, tree, DefaultConfig())
	for _, r := range tree.Receivers() {
		net.AttachHost(r, &recorder{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Multicast(tree.Root(), &Packet{Class: Payload, Msg: dataMsg{}})
		eng.Run()
	}
}

func BenchmarkUnicastPath(b *testing.B) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 15, Depth: 5})
	net := MustNew(eng, tree, DefaultConfig())
	rs := tree.Receivers()
	net.AttachHost(rs[0], &recorder{})
	net.AttachHost(rs[len(rs)-1], &recorder{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Unicast(rs[0], rs[len(rs)-1], &Packet{Class: Control, Msg: reqMsg{}})
		eng.Run()
	}
}

// TestCountCrossingClassification pins the classification of every
// Mode×Class×Session combination (plus the data-tagged payload case)
// onto exactly one counter. In particular, subcast control packets get
// their own ControlSubcast counter instead of being lumped into
// ControlMulticast.
func TestCountCrossingClassification(t *testing.T) {
	type want struct {
		data, payloadMcast, payloadSub, payloadUcast uint64
		ctrlMcast, ctrlSub, ctrlUcast, session       uint64
	}
	cases := []struct {
		name    string
		mode    Mode
		class   Class
		session bool
		msg     any
		want    want
	}{
		{"session multicast control", ModeMulticast, Control, true, reqMsg{}, want{session: 1}},
		{"session unicast control", ModeUnicast, Control, true, reqMsg{}, want{session: 1}},
		{"session subcast control", ModeSubcast, Control, true, reqMsg{}, want{session: 1}},
		{"session multicast payload", ModeMulticast, Payload, true, dataMsg{}, want{session: 1}},
		{"session unicast payload", ModeUnicast, Payload, true, dataMsg{}, want{session: 1}},
		{"session subcast payload", ModeSubcast, Payload, true, dataMsg{}, want{session: 1}},
		{"original data", ModeMulticast, Payload, false, dataMsg{}, want{data: 1}},
		{"multicast retransmission", ModeMulticast, Payload, false, reqMsg{}, want{payloadMcast: 1}},
		{"subcast retransmission", ModeSubcast, Payload, false, reqMsg{}, want{payloadSub: 1}},
		{"subcast data-tagged payload", ModeSubcast, Payload, false, dataMsg{}, want{payloadSub: 1}},
		{"unicast payload", ModeUnicast, Payload, false, reqMsg{}, want{payloadUcast: 1}},
		{"unicast data-tagged payload", ModeUnicast, Payload, false, dataMsg{}, want{payloadUcast: 1}},
		{"multicast control", ModeMulticast, Control, false, reqMsg{}, want{ctrlMcast: 1}},
		{"multicast control nil msg", ModeMulticast, Control, false, nil, want{ctrlMcast: 1}},
		{"subcast control", ModeSubcast, Control, false, reqMsg{}, want{ctrlSub: 1}},
		{"unicast control", ModeUnicast, Control, false, reqMsg{}, want{ctrlUcast: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, net, _ := setup(t, DefaultConfig())
			net.countCrossing(&Packet{Mode: c.mode, Class: c.class, Session: c.session, Msg: c.msg})
			got := net.Counts()
			w := CrossingCounts{
				Data:             c.want.data,
				PayloadMulticast: c.want.payloadMcast,
				PayloadSubcast:   c.want.payloadSub,
				PayloadUnicast:   c.want.payloadUcast,
				ControlMulticast: c.want.ctrlMcast,
				ControlSubcast:   c.want.ctrlSub,
				ControlUnicast:   c.want.ctrlUcast,
				Session:          c.want.session,
			}
			if got != w {
				t.Fatalf("counts = %+v, want %+v", got, w)
			}
		})
	}
}

func TestSubcastControlCountsInRecoveryTotal(t *testing.T) {
	c := CrossingCounts{ControlSubcast: 3, ControlMulticast: 2, Data: 100, Session: 50}
	if got := c.RecoveryTotal(); got != 5 {
		t.Fatalf("RecoveryTotal = %d, want 5", got)
	}
}

// floodMode selects which flood implementation TestFloodPathEquivalence
// exercises.
type floodMode int

const (
	fastDFS   floodMode = iota // non-queuing DFS, no plan cache
	queuing                    // event-per-hop floodHop (conformance oracle)
	planCache_                 // non-queuing with the flood plan cache enabled
)

func (m floodMode) String() string {
	return [...]string{"fastDFS", "queuing", "plan"}[m]
}

// TestFloodPathEquivalence is the property test for the three flood
// implementations: on random trees, with a deterministic link-local
// drop function and optionally severed links, the fast (non-queuing)
// DFS, the event-per-hop queuing path, and plan-cache replay must
// deliver to exactly the same hosts and cross exactly the same links
// the same number of times. Only timing may differ (and only for the
// queuing path; plan replay's timing is byte-identical to the DFS,
// pinned separately by TestFloodPlanReplayIdenticalSchedule).
func TestFloodPathEquivalence(t *testing.T) {
	type linkDir struct {
		link topology.LinkID
		down bool
	}
	// run floods a single packet and returns (delivered hosts, crossed
	// link/direction multiset). sevMod > 0 severs every link whose ID is
	// a multiple of it (except the root's pseudo-link 0).
	run := func(tree *topology.Tree, mode floodMode, origin topology.NodeID, subcast bool, dropMod, sevMod int) (map[topology.NodeID]int, map[linkDir]int) {
		cfg := DefaultConfig()
		cfg.Queuing = mode == queuing
		eng := sim.NewEngine()
		net := MustNew(eng, tree, cfg)
		if mode == planCache_ {
			net.EnableFloodPlans(0)
		}
		recs := make(map[topology.NodeID]*recorder)
		for _, r := range tree.Receivers() {
			rec := &recorder{}
			recs[r] = rec
			net.AttachHost(r, rec)
		}
		if sevMod > 0 {
			for l := 1; l < tree.NumNodes(); l += sevMod {
				net.SetLinkUp(topology.LinkID(l), false)
			}
		}
		crossed := make(map[linkDir]int)
		if dropMod > 0 {
			// Deterministic in (link, direction) only, so all paths see
			// identical drop decisions regardless of traversal order.
			net.SetDropFunc(func(p *Packet, link topology.LinkID, down bool) bool {
				crossed[linkDir{link, down}]++
				k := int(link) * 2
				if down {
					k++
				}
				return k%dropMod == 0
			})
		} else {
			net.SetDropFunc(func(p *Packet, link topology.LinkID, down bool) bool {
				crossed[linkDir{link, down}]++
				return false
			})
		}
		// Flood twice so the plan mode exercises both the compile-miss
		// and the cache-hit replay; all modes flood twice to keep the
		// delivery counts comparable.
		for i := 0; i < 2; i++ {
			if subcast {
				net.Subcast(origin, &Packet{Class: Payload, From: origin, Msg: reqMsg{}})
			} else {
				net.Multicast(origin, &Packet{Class: Payload, Msg: reqMsg{}})
			}
			eng.Run()
		}
		hosts := make(map[topology.NodeID]int)
		for id, rec := range recs {
			if len(rec.got) > 0 {
				hosts[id] = len(rec.got)
			}
		}
		return hosts, crossed
	}

	for seed := int64(0); seed < 8; seed++ {
		spec := topology.GenSpec{Receivers: 6 + int(seed)*2, Depth: 3 + int(seed)%4}
		tree := topology.MustGenerate(sim.NewRNG(seed), spec)
		origins := []topology.NodeID{tree.Root(), tree.Receivers()[0], tree.Receivers()[tree.NumReceivers()-1]}
		for _, origin := range origins {
			for _, subcast := range []bool{false, true} {
				for _, dropMod := range []int{0, 3, 5} {
					for _, sevMod := range []int{0, 4} {
						refHosts, refLinks := run(tree, fastDFS, origin, subcast, dropMod, sevMod)
						for _, mode := range []floodMode{queuing, planCache_} {
							gotHosts, gotLinks := run(tree, mode, origin, subcast, dropMod, sevMod)
							if len(refHosts) != len(gotHosts) {
								t.Fatalf("seed=%d origin=%d subcast=%v drop=%d sev=%d: host sets differ: fast=%v %v=%v",
									seed, origin, subcast, dropMod, sevMod, refHosts, mode, gotHosts)
							}
							for id, nf := range refHosts {
								if gotHosts[id] != nf {
									t.Fatalf("seed=%d origin=%d subcast=%v drop=%d sev=%d: host %d deliveries fast=%d %v=%d",
										seed, origin, subcast, dropMod, sevMod, id, nf, mode, gotHosts[id])
								}
							}
							if len(refLinks) != len(gotLinks) {
								t.Fatalf("seed=%d origin=%d subcast=%v drop=%d sev=%d: crossed link sets differ: fast=%v %v=%v",
									seed, origin, subcast, dropMod, sevMod, refLinks, mode, gotLinks)
							}
							for ld, nf := range refLinks {
								if gotLinks[ld] != nf {
									t.Fatalf("seed=%d origin=%d subcast=%v drop=%d sev=%d: link %v crossings fast=%d %v=%d",
										seed, origin, subcast, dropMod, sevMod, ld, nf, mode, gotLinks[ld])
								}
							}
						}
					}
				}
			}
		}
	}
}

// orderLog is a delivery log shared by every host of a network, so
// tests can observe the cross-host delivery order, which per-host
// recorders cannot see.
type orderLog struct {
	events []orderEntry
}

type orderEntry struct {
	node topology.NodeID
	at   sim.Time
	pkt  uint64
}

// orderTap is the per-node host feeding the shared log.
type orderTap struct {
	log  *orderLog
	node topology.NodeID
}

func (o *orderTap) Deliver(now sim.Time, p *Packet) {
	o.log.events = append(o.log.events, orderEntry{o.node, now, p.ID})
}

// TestGroupedDeliveryOrderMatchesPerHost pins the hop-cohort grouping
// optimization at its only observable seam: the cross-host delivery
// order. A flood with grouping active (no jitter, no duplicates) must
// deliver to every host at the same instant and in the same sequence
// as the per-host event path, which the test forces with a no-op
// duplicate hook (installing any DupFunc disables grouping without
// changing behavior). Shard labels split cohorts into contiguous runs;
// an adversarial interleaved labeling must not perturb the order
// either.
func TestGroupedDeliveryOrderMatchesPerHost(t *testing.T) {
	run := func(tree *topology.Tree, perHost, labeled bool, origin topology.NodeID) []orderEntry {
		eng := sim.NewEngine()
		net := MustNew(eng, tree, DefaultConfig())
		log := &orderLog{}
		for _, r := range tree.Receivers() {
			net.AttachHost(r, &orderTap{log: log, node: r})
		}
		if labeled {
			// Adversarial labeling: alternate shards by node parity so
			// cohorts fracture into many runs.
			shardOf := make([]int32, tree.NumNodes())
			for i := range shardOf {
				shardOf[i] = int32(i % 3)
			}
			net.SetShards(shardOf)
		}
		if perHost {
			net.SetDupFunc(func(*Packet, sim.Time) (time.Duration, bool) { return 0, false })
		}
		for i := 0; i < 2; i++ {
			net.Multicast(origin, &Packet{Class: Payload, Msg: dataMsg{}})
			eng.Run()
		}
		return log.events
	}
	for seed := int64(0); seed < 6; seed++ {
		tree := topology.MustGenerate(sim.NewRNG(seed), topology.GenSpec{Receivers: 10 + int(seed)*4, Depth: 3 + int(seed)%3})
		for _, origin := range []topology.NodeID{tree.Root(), tree.Receivers()[0]} {
			for _, labeled := range []bool{false, true} {
				want := run(tree, true, labeled, origin)
				got := run(tree, false, labeled, origin)
				if len(want) != len(got) {
					t.Fatalf("seed=%d origin=%d labeled=%v: %d grouped deliveries, want %d",
						seed, origin, labeled, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("seed=%d origin=%d labeled=%v: delivery %d = %+v, want %+v",
							seed, origin, labeled, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestFloodFastPathAllocationFree pins the tentpole property: once the
// scratch buffers and pools are warm, a multicast flood performs no
// per-packet heap allocations beyond the packet itself.
func TestFloodFastPathAllocationFree(t *testing.T) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 15, Depth: 5})
	net := MustNew(eng, tree, DefaultConfig())
	for _, r := range tree.Receivers() {
		net.AttachHost(r, &recorder{})
	}
	pkt := &Packet{Class: Payload, Msg: dataMsg{}}
	// Warm-up: grow scratch, pools, heap and recorder slices.
	for i := 0; i < 8; i++ {
		net.Multicast(tree.Root(), pkt)
		eng.Run()
	}
	avg := testing.AllocsPerRun(50, func() {
		net.Multicast(tree.Root(), pkt)
		eng.Run()
	})
	// The recorder appends to its deliveries slice, which occasionally
	// reallocates; everything else must be allocation-free.
	if avg > 1 {
		t.Fatalf("flood allocates %.1f objects per packet, want <= 1", avg)
	}
}

func TestUnicastThenSubcast(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	// Reply travels 4 -> 1 (unicast leg, links 4 then climbing...) and
	// subcasts below router 2: receiver 6 gets it, 3 and 0 do not.
	net.UnicastThenSubcast(4, 2, &Packet{Class: Payload, Msg: reqMsg{}})
	eng.Run()
	if len(recs[6].got) != 1 {
		t.Fatal("subcast target missed")
	}
	if len(recs[3].got)+len(recs[0].got)+len(recs[4].got) != 0 {
		t.Fatal("unicast+subcast leaked outside the target subtree")
	}
	c := net.Counts()
	// Unicast leg 4->1->0->2 = 3 crossings; subcast below 2 = links 5,6.
	if c.PayloadUnicast != 3 || c.PayloadSubcast != 2 {
		t.Fatalf("crossings = %+v, want unicast 3 subcast 2", c)
	}
}

func TestUnicastThenSubcastToLeafDeliversDirectly(t *testing.T) {
	cfg := DefaultConfig()
	eng, net, recs := setup(t, cfg)
	// The "subtree" is the single leaf 4: the packet must be delivered
	// to the leaf host at the end of the unicast leg.
	net.UnicastThenSubcast(3, 4, &Packet{Class: Payload, Msg: reqMsg{}})
	eng.Run()
	if len(recs[4].got) != 1 {
		t.Fatal("leaf-targeted unicast+subcast not delivered")
	}
	c := net.Counts()
	if c.PayloadUnicast != 2 || c.PayloadSubcast != 0 {
		t.Fatalf("crossings = %+v, want unicast 2 subcast 0", c)
	}
}

func TestUnicastThenSubcastDroppedOnLeg(t *testing.T) {
	eng, net, recs := setup(t, DefaultConfig())
	net.SetDropFunc(func(p *Packet, l topology.LinkID, down bool) bool {
		return l == 2 // sever the path into subtree 2
	})
	net.UnicastThenSubcast(4, 2, &Packet{Class: Payload, Msg: reqMsg{}})
	eng.Run()
	if len(recs[6].got) != 0 {
		t.Fatal("dropped unicast leg still delivered")
	}
}
