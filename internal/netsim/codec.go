// Wire codec for netsim packets.
//
// In simulation a Packet's Msg field is an in-memory pointer shared by
// every recipient. The wire mode (internal/wire) sends packets across
// real UDP sockets, so Msg needs a deterministic, versioned binary
// encoding. Determinism is load-bearing: the conformance oracle replays
// a captured run through the simulator and compares the byte stream a
// node sent, so encoding the same message twice must yield identical
// bytes (maps are encoded in sorted key order).
//
// The protocol message types live in internal/srm and internal/lms,
// which import netsim — so netsim cannot reference them. Instead the
// protocol packages register their message codecs at init time via
// RegisterMessage, keyed by a stable one-byte wire type.
package netsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// CodecVersion is the wire-format version emitted by EncodePacket and
// accepted by DecodePacket. Bump it on any incompatible layout change.
const CodecVersion = 1

// MsgType is the stable one-byte identifier of a protocol message type
// on the wire. Values are assigned by the protocol packages when they
// register their codecs; they must never be reused or renumbered.
type MsgType uint8

// maxDecodeElems caps decoded collection lengths so a malformed length
// prefix cannot force a huge allocation. The largest tree netsim
// supports densely is 1024 nodes; session maps are bounded by group
// size, so 1<<16 leaves ample headroom.
const maxDecodeElems = 1 << 16

// MsgCodec encodes and decodes one registered protocol message type.
type MsgCodec struct {
	// Name identifies the type in diagnostics.
	Name string
	// Encode appends msg's binary form. It may assume msg is of the
	// registered type (EncodePacket dispatches on reflect.Type).
	Encode func(e *Encoder, msg any)
	// Decode parses one message. Implementations must consume exactly
	// what Encode produced and report malformed input via d.Fail (or by
	// reading past the end, which the decoder tracks) — never panic.
	Decode func(d *Decoder) any
}

// msgRegistry maps wire types to codecs, and Go types to wire types.
var (
	msgCodecs   [256]*MsgCodec
	msgTypeOf   = map[reflect.Type]MsgType{}
	msgRegOrder []MsgType
)

// RegisterMessage registers the codec for the message type exemplified
// by prototype (a pointer, e.g. (*DataMsg)(nil)) under wire type t.
// It panics on a duplicate wire type or Go type: registration happens
// in package init functions, where a collision is a programming error.
func RegisterMessage(t MsgType, prototype any, c MsgCodec) {
	if msgCodecs[t] != nil {
		panic(fmt.Sprintf("netsim: wire message type %d registered twice (%s, %s)",
			t, msgCodecs[t].Name, c.Name))
	}
	rt := reflect.TypeOf(prototype)
	if _, dup := msgTypeOf[rt]; dup {
		panic(fmt.Sprintf("netsim: Go type %v registered twice", rt))
	}
	if c.Encode == nil || c.Decode == nil {
		panic(fmt.Sprintf("netsim: message codec %q missing Encode or Decode", c.Name))
	}
	cc := c
	msgCodecs[t] = &cc
	msgTypeOf[rt] = t
	msgRegOrder = append(msgRegOrder, t)
}

// RegisteredMessageTypes returns the wire types registered so far, in
// registration order. Tests use it to cover every type.
func RegisteredMessageTypes() []MsgType {
	out := make([]MsgType, len(msgRegOrder))
	copy(out, msgRegOrder)
	return out
}

// NewRegisteredMessage returns a zero value of the Go type registered
// under t (as produced by Decode), or nil if t is unregistered. Tests
// use it to build round-trip fixtures generically.
func NewRegisteredMessage(t MsgType) any {
	c := msgCodecs[t]
	if c == nil {
		return nil
	}
	for rt, wt := range msgTypeOf {
		if wt == t {
			return reflect.New(rt.Elem()).Interface()
		}
	}
	return nil
}

// Encoder appends primitive values in the wire format: unsigned and
// zig-zag varints over a byte buffer. All integer-like fields use
// varints so the format has no alignment or endianness concerns.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zig-zag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Node appends a topology.NodeID (None = -1 encodes fine as zig-zag).
func (e *Encoder) Node(id topology.NodeID) { e.Varint(int64(id)) }

// Duration appends a time.Duration in nanoseconds.
func (e *Encoder) Duration(d time.Duration) { e.Varint(int64(d)) }

// Time appends a sim.Time in nanoseconds since the run epoch.
func (e *Encoder) Time(t sim.Time) { e.Varint(int64(t)) }

// Decoder reads the Encoder's format. It is panic-free by construction:
// after the first error every read returns a zero value, and Err
// reports what went wrong.
type Decoder struct {
	buf []byte
	off int
	err error
}

// Fail records a decode error (first error wins).
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Uvarint reads an unsigned varint. Non-minimal encodings (a final
// zero continuation group, e.g. 0x80 0x00 for 0) are rejected so that
// decoding stays the exact inverse of encoding.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 || (n > 1 && d.buf[d.off+n-1] == 0) {
		d.Fail("netsim: truncated or non-minimal uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed (zig-zag) varint, rejecting non-minimal
// encodings like Uvarint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 || (n > 1 && d.buf[d.off+n-1] == 0) {
		d.Fail("netsim: truncated or non-minimal varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.Fail("netsim: truncated input at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a bool, rejecting anything but 0 or 1 so that decoding is
// the exact inverse of encoding (re-encoding a decoded message must be
// byte-identical).
func (d *Decoder) Bool() bool {
	b := d.Byte()
	if b > 1 {
		d.Fail("netsim: invalid bool byte %d", b)
		return false
	}
	return b == 1
}

// Int reads an int.
func (d *Decoder) Int() int {
	v := d.Varint()
	if int64(int(v)) != v {
		d.Fail("netsim: int out of range: %d", v)
		return 0
	}
	return int(v)
}

// Len reads a collection length, bounding it so malformed input cannot
// force a huge allocation.
func (d *Decoder) Len() int {
	v := d.Uvarint()
	if v > maxDecodeElems {
		d.Fail("netsim: collection length %d exceeds limit %d", v, maxDecodeElems)
		return 0
	}
	return int(v)
}

// Node reads a topology.NodeID.
func (d *Decoder) Node() topology.NodeID {
	v := d.Varint()
	if v < int64(topology.None) || v > math.MaxInt32 {
		d.Fail("netsim: node id out of range: %d", v)
		return topology.None
	}
	return topology.NodeID(v)
}

// Duration reads a time.Duration.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.Varint()) }

// Time reads a sim.Time.
func (d *Decoder) Time() sim.Time { return sim.Time(d.Varint()) }

// Packet header flag layout (byte 1 of the encoding).
const (
	flagSession   = 1 << 0
	flagClassCtrl = 1 << 1
	flagModeShift = 2 // bits 2-3: Mode
	flagModeMask  = 3 << flagModeShift
	flagUnused    = ^byte(flagSession | flagClassCtrl | flagModeMask)
)

// EncodePacket appends p's versioned binary form to buf and returns the
// extended buffer. The layout is:
//
//	byte    version (CodecVersion)
//	byte    flags: bit0 Session, bit1 Class==Control, bits2-3 Mode
//	uvarint ID
//	varint  From
//	varint  To
//	byte    MsgType
//	...     message payload (registered codec)
//
// It returns an error if p.Msg's type has no registered codec.
func EncodePacket(buf []byte, p *Packet) ([]byte, error) {
	t, ok := msgTypeOf[reflect.TypeOf(p.Msg)]
	if !ok {
		return buf, fmt.Errorf("netsim: no wire codec registered for message type %T", p.Msg)
	}
	if p.Mode < ModeMulticast || p.Mode > ModeSubcast {
		return buf, fmt.Errorf("netsim: cannot encode packet with mode %v", p.Mode)
	}
	e := &Encoder{buf: buf}
	e.Byte(CodecVersion)
	var flags byte
	if p.Session {
		flags |= flagSession
	}
	if p.Class == Control {
		flags |= flagClassCtrl
	}
	flags |= byte(p.Mode) << flagModeShift
	e.Byte(flags)
	e.Uvarint(p.ID)
	e.Node(p.From)
	e.Node(p.To)
	e.Byte(byte(t))
	msgCodecs[t].Encode(e, p.Msg)
	return e.buf, nil
}

// PeekFlags classifies an encoded packet from its fixed two-byte
// prefix without decoding it: whether it is payload-class and whether
// it is a session message. ok is false when data is too short or not
// this codec version. Forwarders (the wire drop proxy) use it to pick
// drop-eligible traffic without a full decode.
func PeekFlags(data []byte) (payload, session, ok bool) {
	if len(data) < 2 || data[0] != CodecVersion {
		return false, false, false
	}
	flags := data[1]
	return flags&flagClassCtrl == 0, flags&flagSession != 0, true
}

// DecodePacket parses one encoded packet. Malformed input yields an
// error, never a panic; trailing garbage after the message payload is
// rejected so the encoding stays canonical.
func DecodePacket(data []byte) (*Packet, error) {
	d := &Decoder{buf: data}
	if v := d.Byte(); d.err == nil && v != CodecVersion {
		return nil, fmt.Errorf("netsim: unsupported codec version %d (want %d)", v, CodecVersion)
	}
	flags := d.Byte()
	if d.err == nil && flags&flagUnused != 0 {
		return nil, fmt.Errorf("netsim: reserved flag bits set: %#x", flags)
	}
	mode := Mode(flags & flagModeMask >> flagModeShift)
	if d.err == nil && mode > ModeSubcast {
		return nil, fmt.Errorf("netsim: invalid packet mode %d", mode)
	}
	p := &Packet{
		Session: flags&flagSession != 0,
		Mode:    mode,
	}
	if flags&flagClassCtrl != 0 {
		p.Class = Control
	}
	p.ID = d.Uvarint()
	p.From = d.Node()
	p.To = d.Node()
	t := MsgType(d.Byte())
	if d.err != nil {
		return nil, d.err
	}
	c := msgCodecs[t]
	if c == nil {
		return nil, fmt.Errorf("netsim: unknown wire message type %d", t)
	}
	p.Msg = c.Decode(d)
	if d.err != nil {
		return nil, fmt.Errorf("netsim: decoding %s: %w", c.Name, d.err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("netsim: %d trailing bytes after %s payload", d.Remaining(), c.Name)
	}
	return p, nil
}
