package netsim

import (
	"strings"
	"testing"

	"cesrm/internal/topology"
)

// testWireMsg is a locally registered message type exercising every
// primitive. Protocol messages register in their own packages (which
// import netsim); these tests cover the packet framing itself.
type testWireMsg struct {
	A int
	B topology.NodeID
	C bool
}

const testWireType MsgType = 200

func init() {
	RegisterMessage(testWireType, (*testWireMsg)(nil), MsgCodec{
		Name: "netsim.testWireMsg",
		Encode: func(e *Encoder, msg any) {
			m := msg.(*testWireMsg)
			e.Int(m.A)
			e.Node(m.B)
			e.Bool(m.C)
		},
		Decode: func(d *Decoder) any {
			return &testWireMsg{A: d.Int(), B: d.Node(), C: d.Bool()}
		},
	})
}

func TestPacketCodecRoundTrip(t *testing.T) {
	cases := []Packet{
		{ID: 0, From: 0, To: topology.None, Class: Payload, Mode: ModeMulticast,
			Msg: &testWireMsg{A: 7, B: 3, C: true}},
		{ID: 1 << 40, From: 1023, To: 5, Class: Control, Mode: ModeUnicast,
			Msg: &testWireMsg{A: -1, B: topology.None}},
		{ID: 42, From: 2, To: topology.None, Class: Control, Mode: ModeMulticast,
			Session: true, Msg: &testWireMsg{}},
		{ID: 9, From: 4, To: topology.None, Class: Payload, Mode: ModeSubcast,
			Msg: &testWireMsg{A: 1 << 50, B: 1, C: false}},
	}
	for i, want := range cases {
		data, err := EncodePacket(nil, &want)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodePacket(data)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.ID != want.ID || got.From != want.From || got.To != want.To ||
			got.Class != want.Class || got.Mode != want.Mode || got.Session != want.Session {
			t.Fatalf("case %d: header mismatch: got %+v want %+v", i, got, want)
		}
		gm, wm := got.Msg.(*testWireMsg), want.Msg.(*testWireMsg)
		if *gm != *wm {
			t.Fatalf("case %d: msg mismatch: got %+v want %+v", i, gm, wm)
		}
		// Canonical: re-encoding the decoded packet is byte-identical.
		data2, err := EncodePacket(nil, got)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if string(data) != string(data2) {
			t.Fatalf("case %d: re-encode differs:\n  %x\n  %x", i, data, data2)
		}
	}
}

func TestEncodePacketRejectsUnregistered(t *testing.T) {
	type orphan struct{}
	_, err := EncodePacket(nil, &Packet{Msg: &orphan{}})
	if err == nil || !strings.Contains(err.Error(), "no wire codec") {
		t.Fatalf("err = %v, want unregistered-type error", err)
	}
}

func TestDecodePacketRejectsMalformed(t *testing.T) {
	good, err := EncodePacket(nil, &Packet{From: 1, To: topology.None, Mode: ModeMulticast,
		Msg: &testWireMsg{A: 5, B: 2, C: true}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"version only":   {CodecVersion},
		"bad version":    append([]byte{99}, good[1:]...),
		"reserved flags": {CodecVersion, 0xF0, 0, 0, 0, byte(testWireType)},
		"truncated head": good[:3],
		"truncated body": good[:len(good)-1],
		"unknown type":   {CodecVersion, 0, 0, 0, 0, 77},
		"trailing bytes": append(append([]byte{}, good...), 0),
		"bad bool":       append(append([]byte{}, good[:len(good)-1]...), 2),
	}
	for name, data := range cases {
		if _, err := DecodePacket(data); err == nil {
			t.Errorf("%s: decode accepted malformed input %x", name, data)
		}
	}
}

func TestDecoderLenBounded(t *testing.T) {
	var e Encoder
	e.Uvarint(maxDecodeElems + 1)
	d := &Decoder{buf: e.Bytes()}
	d.Len()
	if d.Err() == nil {
		t.Fatal("oversized collection length accepted")
	}
}

func TestPeekFlags(t *testing.T) {
	enc := func(p Packet) []byte {
		data, err := EncodePacket(nil, &p)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	msg := &testWireMsg{}
	data := enc(Packet{Class: Payload, Mode: ModeMulticast, Msg: msg})
	if payload, session, ok := PeekFlags(data); !ok || !payload || session {
		t.Fatalf("payload packet: got payload=%v session=%v ok=%v", payload, session, ok)
	}
	data = enc(Packet{Class: Control, Session: true, Mode: ModeMulticast, Msg: msg})
	if payload, session, ok := PeekFlags(data); !ok || payload || !session {
		t.Fatalf("session packet: got payload=%v session=%v ok=%v", payload, session, ok)
	}
	if _, _, ok := PeekFlags([]byte{9, 9}); ok {
		t.Fatal("PeekFlags accepted a foreign version byte")
	}
	if _, _, ok := PeekFlags([]byte{CodecVersion}); ok {
		t.Fatal("PeekFlags accepted a one-byte input")
	}
}
