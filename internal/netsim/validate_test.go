package netsim

import (
	"errors"
	"math"
	"testing"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string // "" = valid
	}{
		{"default", func(*Config) {}, ""},
		{"zero control bytes", func(c *Config) { c.ControlBytes = 0 }, ""},
		{"zero bandwidth", func(c *Config) { c.Bandwidth = 0 }, "Bandwidth"},
		{"zero link delay", func(c *Config) { c.LinkDelay = 0 }, "LinkDelay"},
		{"negative link delay", func(c *Config) { c.LinkDelay = -1 }, "LinkDelay"},
		{"negative bandwidth", func(c *Config) { c.Bandwidth = -1 }, "Bandwidth"},
		{"NaN bandwidth", func(c *Config) { c.Bandwidth = math.NaN() }, "Bandwidth"},
		{"inf bandwidth", func(c *Config) { c.Bandwidth = math.Inf(1) }, "Bandwidth"},
		{"zero payload", func(c *Config) { c.PayloadBytes = 0 }, "PayloadBytes"},
		{"negative payload", func(c *Config) { c.PayloadBytes = -5 }, "PayloadBytes"},
		{"negative control", func(c *Config) { c.ControlBytes = -1 }, "ControlBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if cerr.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", cerr.Field, tc.field)
			}
		})
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	eng := sim.NewEngine()
	tree, err := topology.New([]topology.NodeID{topology.None, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LinkDelay = 0
	if _, err := New(eng, tree, cfg); err == nil {
		t.Fatal("New accepted an invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on an invalid config")
		}
	}()
	MustNew(eng, tree, cfg)
}
