package netsim

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// nullHost is a no-op delivery sink for allocation gates: unlike
// recorder it never appends, so a warm flood must be exactly
// allocation-free.
type nullHost struct{}

func (nullHost) Deliver(sim.Time, *Packet) {}

// TestFloodPlanReplayIdenticalSchedule pins the tentpole property at
// its strongest: with jitter enabled (so every delivery consumes an RNG
// draw), a run with the plan cache enabled must produce byte-identical
// delivery schedules — same hosts, same timestamps, same order — as the
// plain DFS, across random trees, origins, subcast roots, deterministic
// drops and severed links. Identical timestamps under jitter can only
// happen if replay draws the RNG in exactly the DFS's order.
func TestFloodPlanReplayIdenticalSchedule(t *testing.T) {
	run := func(tree *topology.Tree, plans bool, origin topology.NodeID, subcast bool, dropMod, sevMod int) map[topology.NodeID][]sim.Time {
		eng := sim.NewEngine()
		net := MustNew(eng, tree, DefaultConfig())
		if plans {
			net.EnableFloodPlans(0)
		}
		net.EnableJitter(sim.NewRNG(42), 3*time.Millisecond)
		recs := make(map[topology.NodeID]*recorder)
		for _, r := range tree.Receivers() {
			rec := &recorder{}
			recs[r] = rec
			net.AttachHost(r, rec)
		}
		if sevMod > 0 {
			for l := 1; l < tree.NumNodes(); l += sevMod {
				net.SetLinkUp(topology.LinkID(l), false)
			}
		}
		if dropMod > 0 {
			net.SetDropFunc(func(p *Packet, link topology.LinkID, down bool) bool {
				k := int(link) * 2
				if down {
					k++
				}
				return k%dropMod == 0
			})
		}
		// Several floods per run: the first compiles (miss), the rest
		// replay (hits), and every flood advances the shared jitter RNG,
		// so any draw-order divergence compounds into later floods.
		for i := 0; i < 3; i++ {
			if subcast {
				net.Subcast(origin, &Packet{Class: Payload, From: origin, Msg: reqMsg{}})
			} else {
				net.Multicast(origin, &Packet{Class: Payload, Msg: dataMsg{}})
			}
			eng.Run()
		}
		out := make(map[topology.NodeID][]sim.Time)
		for id, rec := range recs {
			for _, d := range rec.got {
				out[id] = append(out[id], d.at)
			}
		}
		return out
	}

	for seed := int64(0); seed < 6; seed++ {
		spec := topology.GenSpec{Receivers: 8 + int(seed)*3, Depth: 3 + int(seed)%3}
		tree := topology.MustGenerate(sim.NewRNG(seed), spec)
		origins := []topology.NodeID{tree.Root(), tree.Receivers()[tree.NumReceivers()/2]}
		for _, origin := range origins {
			for _, subcast := range []bool{false, true} {
				for _, dropMod := range []int{0, 3} {
					for _, sevMod := range []int{0, 5} {
						want := run(tree, false, origin, subcast, dropMod, sevMod)
						got := run(tree, true, origin, subcast, dropMod, sevMod)
						if len(want) != len(got) {
							t.Fatalf("seed=%d origin=%d subcast=%v drop=%d sev=%d: delivered host sets differ: dfs=%d plan=%d",
								seed, origin, subcast, dropMod, sevMod, len(want), len(got))
						}
						for id, ts := range want {
							gts := got[id]
							if len(ts) != len(gts) {
								t.Fatalf("seed=%d origin=%d subcast=%v drop=%d sev=%d host=%d: delivery counts dfs=%d plan=%d",
									seed, origin, subcast, dropMod, sevMod, id, len(ts), len(gts))
							}
							for i := range ts {
								if ts[i] != gts[i] {
									t.Fatalf("seed=%d origin=%d subcast=%v drop=%d sev=%d host=%d delivery %d: dfs at %v, plan at %v",
										seed, origin, subcast, dropMod, sevMod, id, i, ts[i], gts[i])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestFloodPlanCacheCounters pins the hit/miss accounting: first flood
// from an origin compiles (miss), subsequent floods replay (hits), and
// multicast vs subcast from the same origin are distinct plans.
func TestFloodPlanCacheCounters(t *testing.T) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 10, Depth: 4})
	net := MustNew(eng, tree, DefaultConfig())
	net.EnableFloodPlans(0)
	for _, r := range tree.Receivers() {
		net.AttachHost(r, nullHost{})
	}
	root := tree.Root()
	for i := 0; i < 3; i++ {
		net.Multicast(root, &Packet{Class: Payload, Msg: dataMsg{}})
		eng.Run()
	}
	if s := net.PlanStats(); s.Misses != 1 || s.Hits != 2 || s.Evictions != 0 {
		t.Fatalf("after 3 multicasts: stats = %+v, want 1 miss 2 hits", s)
	}
	// A subcast from the same origin is a different plan key.
	net.Subcast(root, &Packet{Class: Payload, From: root, Msg: reqMsg{}})
	eng.Run()
	if s := net.PlanStats(); s.Misses != 2 || s.Hits != 2 {
		t.Fatalf("after subcast: stats = %+v, want 2 misses 2 hits", s)
	}
}

// TestFloodPlanScanResistance pins the admission policy with a budget
// that fits exactly one plan: the resident plan survives a one-shot
// miss from another origin (first-touch misses are not admitted under
// pressure), and only an origin that re-misses within the recency
// window may displace it.
func TestFloodPlanScanResistance(t *testing.T) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(2), topology.GenSpec{Receivers: 8, Depth: 3})
	net := MustNew(eng, tree, DefaultConfig())
	net.EnableFloodPlans(tree.NumNodes()) // exactly one full plan
	for _, r := range tree.Receivers() {
		net.AttachHost(r, nullHost{})
	}
	a := tree.Root()
	b := tree.Receivers()[0]
	cast := func(origin topology.NodeID) {
		net.Multicast(origin, &Packet{Class: Payload, Msg: dataMsg{}})
		eng.Run()
	}
	cast(a) // miss, cache empty: admitted
	cast(b) // miss, would evict, first touch: NOT admitted
	cast(a) // must still be resident
	if s := net.PlanStats(); s.Hits != 1 || s.Misses != 2 || s.Evictions != 0 {
		t.Fatalf("after one-shot sweep: stats = %+v, want resident survivor (1 hit, 2 misses, 0 evictions)", s)
	}
	cast(b) // second miss within the window: admitted, evicts a
	if s := net.PlanStats(); s.Misses != 3 || s.Evictions != 1 {
		t.Fatalf("after re-miss: stats = %+v, want admission with 1 eviction", s)
	}
	cast(b) // now resident
	if s := net.PlanStats(); s.Hits != 2 {
		t.Fatalf("after replacement: stats = %+v, want 2 hits", s)
	}
}

// TestFloodPlanTooLargeNeverCached: a budget below the tree size can
// never hold a plan; every flood falls back to the DFS and still
// delivers.
func TestFloodPlanTooLargeNeverCached(t *testing.T) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(3), topology.GenSpec{Receivers: 8, Depth: 3})
	net := MustNew(eng, tree, DefaultConfig())
	net.EnableFloodPlans(tree.NumNodes() - 1)
	rec := &recorder{}
	net.AttachHost(tree.Receivers()[0], rec)
	for i := 0; i < 4; i++ {
		net.Multicast(tree.Root(), &Packet{Class: Payload, Msg: dataMsg{}})
		eng.Run()
	}
	if s := net.PlanStats(); s.Hits != 0 || s.Misses != 4 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want pure misses", s)
	}
	if len(rec.got) != 4 {
		t.Fatalf("DFS fallback delivered %d packets, want 4", len(rec.got))
	}
}

// TestFloodPlanAttachHostInvalidates: host flags are baked into plans,
// so attaching a host after a plan is cached must purge and recompile —
// the new host receives subsequent floods.
func TestFloodPlanAttachHostInvalidates(t *testing.T) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(4), topology.GenSpec{Receivers: 6, Depth: 3})
	net := MustNew(eng, tree, DefaultConfig())
	net.EnableFloodPlans(0)
	rs := tree.Receivers()
	net.AttachHost(rs[0], nullHost{})
	net.Multicast(tree.Root(), &Packet{Class: Payload, Msg: dataMsg{}})
	eng.Run()
	late := &recorder{}
	net.AttachHost(rs[1], late)
	net.Multicast(tree.Root(), &Packet{Class: Payload, Msg: dataMsg{}})
	eng.Run()
	if len(late.got) != 1 {
		t.Fatalf("late-attached host got %d deliveries, want 1 (stale plan?)", len(late.got))
	}
	if s := net.PlanStats(); s.Evictions != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want invalidation counted as 1 eviction and a recompile miss", s)
	}
}

// TestFloodPlanAllocationFree is the strict version of
// TestFloodFastPathAllocationFree for plan replay: with no-op hosts a
// warm cached flood performs zero heap allocations.
func TestFloodPlanAllocationFree(t *testing.T) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 15, Depth: 5})
	net := MustNew(eng, tree, DefaultConfig())
	net.EnableFloodPlans(0)
	for _, r := range tree.Receivers() {
		net.AttachHost(r, nullHost{})
	}
	pkt := &Packet{Class: Payload, Msg: dataMsg{}}
	for i := 0; i < 8; i++ {
		net.Multicast(tree.Root(), pkt)
		eng.Run()
	}
	avg := testing.AllocsPerRun(50, func() {
		net.Multicast(tree.Root(), pkt)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("plan replay allocates %.1f objects per flood, want 0", avg)
	}
}

// BenchmarkFloodPlan measures a warm cached flood end to end
// (replay + engine dispatch of the deliveries); compare against
// BenchmarkMulticastFlood, the identical workload on the DFS path.
func BenchmarkFloodPlan(b *testing.B) {
	eng := sim.NewEngine()
	tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 15, Depth: 5})
	net := MustNew(eng, tree, DefaultConfig())
	net.EnableFloodPlans(0)
	for _, r := range tree.Receivers() {
		net.AttachHost(r, &recorder{})
	}
	pkt := &Packet{Class: Payload, Msg: dataMsg{}}
	net.Multicast(tree.Root(), pkt)
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Multicast(tree.Root(), pkt)
		eng.Run()
	}
}

// BenchmarkFloodPlanLarge is the same comparison on a 1000-receiver
// tree, where the DFS's per-node stack traffic and visited stamps cost
// the most.
func BenchmarkFloodPlanLarge(b *testing.B) {
	for _, plans := range []bool{false, true} {
		name := "dfs"
		if plans {
			name = "plan"
		}
		b.Run(name, func(b *testing.B) {
			eng := sim.NewEngine()
			tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 1000, Depth: 8})
			net := MustNew(eng, tree, DefaultConfig())
			if plans {
				net.EnableFloodPlans(0)
			}
			for _, r := range tree.Receivers() {
				net.AttachHost(r, nullHost{})
			}
			pkt := &Packet{Class: Payload, Msg: dataMsg{}}
			net.Multicast(tree.Root(), pkt)
			eng.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Multicast(tree.Root(), pkt)
				eng.Run()
			}
		})
	}
}

// BenchmarkHostLookup pins the satellite win of replacing the
// per-delivery map probe with a dense NodeID-indexed slice: the two
// sub-benchmarks perform the identical mixed hit/miss lookup sweep a
// flood's delivery loop performs.
func BenchmarkHostLookup(b *testing.B) {
	tree := topology.MustGenerate(sim.NewRNG(1), topology.GenSpec{Receivers: 1000, Depth: 8})
	m := make(map[topology.NodeID]Host, tree.NumReceivers())
	dense := make([]Host, tree.NumNodes())
	for _, r := range tree.Receivers() {
		m[r] = nullHost{}
		dense[r] = nullHost{}
	}
	n := tree.NumNodes()
	b.Run("map", func(b *testing.B) {
		hit := 0
		for i := 0; i < b.N; i++ {
			if h, ok := m[topology.NodeID(i%n)]; ok && h != nil {
				hit++
			}
		}
		sinkInt = hit
	})
	b.Run("dense", func(b *testing.B) {
		hit := 0
		for i := 0; i < b.N; i++ {
			if h := dense[topology.NodeID(i%n)]; h != nil {
				hit++
			}
		}
		sinkInt = hit
	})
}

// sinkInt defeats dead-code elimination in benchmarks.
var sinkInt int
