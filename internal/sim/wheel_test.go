package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refRecord is one scheduled event in the reference queue: the lazy
// dead-marking binary heap the wheel replaced. The property tests drive
// the wheel and this reference with identical schedule/cancel/advance
// sequences and assert identical pop order.
type refRecord struct {
	at   Time
	seq  uint64
	id   int
	dead bool
}

type refQueue []*refRecord

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refRecord)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return r
}

// wheelHarness drives the engine and the reference heap in lockstep.
type wheelHarness struct {
	t      *testing.T
	e      *Engine
	ref    refQueue
	seq    uint64
	nextID int
	byID   map[int]*refRecord
	timers map[int]Timer
	stale  []Timer // fired or cancelled handles, for stale-cancel probes
	got    []int   // engine dispatch order (ids)
	gotAt  []Time
	rng    *rand.Rand
}

func newWheelHarness(t *testing.T, seed int64) *wheelHarness {
	return &wheelHarness{
		t:      t,
		e:      NewEngine(),
		byID:   map[int]*refRecord{},
		timers: map[int]Timer{},
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// delay picks delays that stress every placement class: zero delays,
// same-tick ties, single- and multi-level wheel deltas, exact level
// window boundaries, and beyond-horizon overflow.
func (h *wheelHarness) delay() time.Duration {
	switch h.rng.Intn(10) {
	case 0:
		return 0
	case 1: // sub-tick: lands in the current or next tick
		return time.Duration(h.rng.Int63n(int64(1) << tickBits))
	case 2, 3: // same-instant ties across schedules
		return time.Duration(1+h.rng.Int63n(20)) * 5 * time.Millisecond
	case 4: // level-0/1 range
		return time.Duration(h.rng.Int63n(int64(1) << (tickBits + levelBits)))
	case 5: // level-2 range
		return time.Duration(h.rng.Int63n(int64(1) << (tickBits + 2*levelBits)))
	case 6: // level-3 range (minutes to hours)
		return time.Duration(h.rng.Int63n(int64(1) << (tickBits + 3*levelBits)))
	case 7: // exact level window boundaries
		shift := uint(tickBits + levelBits*(1+h.rng.Intn(numLevels)))
		return time.Duration(int64(1) << shift)
	case 8: // beyond the wheel horizon: overflow list
		return time.Duration(int64(1)<<(tickBits+levelBits*numLevels) +
			h.rng.Int63n(int64(time.Hour)))
	default:
		return time.Duration(h.rng.Int63n(int64(10 * time.Second)))
	}
}

// spawn schedules one event in both structures. Fired events may spawn
// children (nested scheduling mid-dispatch, including same-instant
// children that must merge into the tick being drained).
func (h *wheelHarness) spawn(d time.Duration, depth int) {
	id := h.nextID
	h.nextID++
	at := h.e.Now().Add(d)
	rec := &refRecord{at: at, seq: h.seq, id: id}
	h.seq++
	h.byID[id] = rec
	heap.Push(&h.ref, rec)
	h.timers[id] = h.e.Schedule(d, func(now Time) {
		h.got = append(h.got, id)
		h.gotAt = append(h.gotAt, now)
		h.stale = append(h.stale, h.timers[id])
		delete(h.timers, id)
		if depth < 2 && h.rng.Intn(4) == 0 {
			for n := h.rng.Intn(3); n > 0; n-- {
				h.spawn(h.delay(), depth+1)
			}
		}
	})
}

// cancelRandomLive cancels a uniformly chosen live timer in both
// structures; on the reference this is the lazy dead-mark the old heap
// used, on the wheel it is an O(1) unlink.
func (h *wheelHarness) cancelRandomLive() {
	if len(h.timers) == 0 {
		return
	}
	// Deterministic pick: the smallest id among up to 8 probes.
	pick := -1
	for i := 0; i < 8; i++ {
		id := h.rng.Intn(h.nextID)
		if _, ok := h.timers[id]; ok && (pick == -1 || id < pick) {
			pick = id
		}
	}
	if pick == -1 {
		for id := range h.timers {
			if pick == -1 || id < pick {
				pick = id
			}
		}
	}
	h.e.Cancel(h.timers[pick])
	h.stale = append(h.stale, h.timers[pick])
	delete(h.timers, pick)
	h.byID[pick].dead = true
}

// popRef yields the reference queue's next live record.
func (h *wheelHarness) popRef() *refRecord {
	for h.ref.Len() > 0 {
		r := heap.Pop(&h.ref).(*refRecord)
		if !r.dead {
			return r
		}
	}
	return nil
}

// verify drains both queues and asserts identical pop order.
func (h *wheelHarness) verify() {
	h.e.Run()
	for i, id := range h.got {
		r := h.popRef()
		if r == nil {
			h.t.Fatalf("engine dispatched %d events, reference ran dry at %d", len(h.got), i)
		}
		if r.id != id {
			h.t.Fatalf("dispatch %d: engine fired id %d, reference heap pops id %d", i, id, r.id)
		}
		if h.gotAt[i] != r.at {
			h.t.Fatalf("dispatch %d (id %d): engine at %v, reference at %v", i, id, h.gotAt[i], r.at)
		}
	}
	if r := h.popRef(); r != nil {
		h.t.Fatalf("engine dispatched %d events, reference heap still holds id %d", len(h.got), r.id)
	}
	if h.e.Pending() != 0 {
		h.t.Fatalf("Pending = %d after drain, want 0", h.e.Pending())
	}
}

// run performs ops random operations, then drains and verifies.
func (h *wheelHarness) run(ops int) {
	for op := 0; op < ops; op++ {
		switch h.rng.Intn(10) {
		case 0, 1, 2, 3: // schedule a small batch, often with shared instants
			d := h.delay()
			for n := 1 + h.rng.Intn(3); n > 0; n-- {
				h.spawn(d, 0)
			}
		case 4:
			h.spawn(h.delay(), 0)
		case 5, 6:
			h.cancelRandomLive()
		case 7: // stale-cancel probe: must be inert in both structures
			if len(h.stale) > 0 {
				h.e.Cancel(h.stale[h.rng.Intn(len(h.stale))])
			}
		case 8: // advance a few events
			for n := 1 + h.rng.Intn(4); n > 0 && h.e.Step(); n-- {
			}
		case 9: // advance to a deadline that may split a tick
			h.e.RunUntil(h.e.Now().Add(h.delay()))
		}
	}
	h.verify()
}

func TestWheelMatchesReferenceHeapProperty(t *testing.T) {
	// Property: for any interleaving of schedules (including same-tick
	// ties and nested mid-dispatch schedules), cancels (including stale
	// handles aimed at recycled records), and advancement (Step and
	// RunUntil), the wheel dispatches exactly the live events, in exactly
	// the order a reference (at, seq) binary heap pops them.
	for seed := int64(1); seed <= 25; seed++ {
		h := newWheelHarness(t, seed)
		h.run(400)
		if t.Failed() {
			t.Fatalf("failed with seed %d", seed)
		}
	}
}

func FuzzWheelMatchesReferenceHeap(f *testing.F) {
	f.Add(int64(42), uint16(200))
	f.Add(int64(-7), uint16(1000))
	f.Add(int64(1<<40), uint16(50))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		h := newWheelHarness(t, seed)
		h.run(int(ops)%2000 + 1)
	})
}

func TestPendingStaysLiveSizedAfterMassCancel(t *testing.T) {
	// Regression for the wheel's O(1)-cancel contract: after cancelling
	// almost everything, Pending is exact, every cancelled record has
	// been recycled to the free list, and subsequent scheduling reuses
	// those records instead of allocating.
	e := NewEngine()
	const n = 50_000
	const keep = 50
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		d := time.Duration(i%9973) * time.Millisecond
		timers = append(timers, e.Schedule(d, func(Time) {}))
	}
	for i, tm := range timers {
		if i%(n/keep) != 0 {
			e.Cancel(tm)
		}
	}
	if got := e.Pending(); got != keep {
		t.Fatalf("Pending = %d after mass cancel, want %d", got, keep)
	}
	if got := len(e.free); got != n-keep {
		t.Fatalf("free list holds %d records, want %d (cancel must reclaim in place)", got, n-keep)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tm := e.Schedule(time.Hour, func(Time) {})
		e.Cancel(tm)
	})
	// Only the closure may allocate; the records must come from the pool.
	if allocs > 1 {
		t.Fatalf("Schedule+Cancel allocates %.1f objects/op with a warm pool, want <= 1", allocs)
	}
	steps := 0
	for e.Step() {
		steps++
	}
	if steps != keep {
		t.Fatalf("dispatched %d events, want %d", steps, keep)
	}
}

func TestOverflowEventsDispatchInOrder(t *testing.T) {
	// Events beyond the wheel horizon (64^4 ticks ≈ 4.9h) park in the
	// overflow list and must re-enter the wheel at a horizon crossing
	// without losing their global order.
	e := NewEngine()
	var got []int
	horizon := time.Duration(int64(1) << (tickBits + levelBits*numLevels))
	delays := []time.Duration{
		time.Second,
		horizon - time.Millisecond,
		horizon + time.Minute,
		2*horizon + time.Second,
		horizon,
		3 * time.Hour,
	}
	order := make([]int, len(delays))
	for i, d := range delays {
		i, d := i, d
		e.Schedule(d, func(Time) { got = append(got, i) })
		order[i] = i
	}
	e.Run()
	want := []int{0, 5, 1, 4, 2, 3} // delays sorted ascending
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overflow dispatch order %v, want %v", got, want)
		}
	}
}

func TestCancelledTimerInOverflowIsReclaimed(t *testing.T) {
	e := NewEngine()
	horizon := time.Duration(int64(1) << (tickBits + levelBits*numLevels))
	tm := e.Schedule(horizon+time.Hour, func(Time) { t.Error("cancelled overflow event fired") })
	keep := false
	e.Schedule(time.Second, func(Time) { keep = true })
	e.Cancel(tm)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if !keep {
		t.Fatal("surviving event did not fire")
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("run ended at %v, want 1s (overflow event cancelled)", e.Now())
	}
}
