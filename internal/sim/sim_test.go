package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func(Time) { got = append(got, 3) })
	e.Schedule(1*time.Second, func(Time) { got = append(got, 1) })
	e.Schedule(2*time.Second, func(Time) { got = append(got, 2) })
	end := e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if end != Time(3*time.Second) {
		t.Fatalf("final time %v, want 3s", end)
	}
}

func TestSameInstantIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order %v, want FIFO", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(time.Second, func(now Time) {
		times = append(times, now)
		e.Schedule(time.Second, func(now Time) {
			times = append(times, now)
		})
	})
	e.Run()
	if len(times) != 2 {
		t.Fatalf("executed %d events, want 2", len(times))
	}
	if times[0] != Time(time.Second) || times[1] != Time(2*time.Second) {
		t.Fatalf("times = %v, want [1s 2s]", times)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(time.Second, func(Time) { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active after scheduling")
	}
	e.Cancel(tm)
	if tm.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(time.Second, func(Time) {})
	e.Cancel(tm)
	e.Cancel(tm) // must not panic
	e.Cancel(Timer{})
	e.Run()
}

func TestTimerInactiveAfterFiring(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(time.Second, func(Time) {})
	e.Run()
	if tm.Active() {
		t.Fatal("timer still active after firing")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(Time(time.Second), func(Time) {})
	})
	e.Run()
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	var ran bool
	e.Schedule(time.Second, func(now Time) {
		e.Schedule(-5*time.Second, func(inner Time) {
			ran = true
			if inner != now {
				t.Errorf("clamped event at %v, want %v", inner, now)
			}
		})
	})
	e.Run()
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(1*time.Second, func(Time) { fired = append(fired, 1) })
	e.Schedule(5*time.Second, func(Time) { fired = append(fired, 5) })
	end := e.RunUntil(Time(3 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if end != Time(3*time.Second) {
		t.Fatalf("clock at %v, want deadline 3s", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event did not run after deadline: %v", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestExecutedCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func(Time) {})
	}
	tm := e.Schedule(time.Second, func(Time) {})
	e.Cancel(tm)
	e.Run()
	if e.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7 (cancelled events excluded)", e.Executed())
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(2 * time.Second)
	b := a.Add(500 * time.Millisecond)
	if b != Time(2500*time.Millisecond) {
		t.Fatalf("Add: got %v", b)
	}
	if b.Sub(a) != 500*time.Millisecond {
		t.Fatalf("Sub: got %v", b.Sub(a))
	}
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After inconsistent")
	}
	if a.Seconds() != 2 {
		t.Fatalf("Seconds: got %v", a.Seconds())
	}
	if a.String() != "2s" {
		t.Fatalf("String: got %q", a.String())
	}
}

func TestPropertyEventOrderMatchesSortedSchedule(t *testing.T) {
	// Property: for any set of delays, the engine dispatches events in
	// non-decreasing time order and never loses an event.
	f := func(raw []uint32) bool {
		e := NewEngine()
		for _, r := range raw {
			d := time.Duration(r%1000) * time.Millisecond
			e.Schedule(d, func(now Time) {
				_ = now
			})
		}
		var last Time
		steps := 0
		for e.Step() {
			if e.Now().Before(last) {
				return false
			}
			last = e.Now()
			steps++
		}
		return steps == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	c1 := a.Split()
	c2 := a.Split()
	// Distinct derived streams should not be identical.
	same := true
	for i := 0; i < 16; i++ {
		if c1.Int63() != c2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Split produced identical child streams")
	}
}

func TestUniformDurationBounds(t *testing.T) {
	g := NewRNG(1)
	lo, hi := 100*time.Millisecond, 300*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := g.UniformDuration(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("UniformDuration out of bounds: %v", d)
		}
	}
}

func TestUniformDurationDegenerate(t *testing.T) {
	g := NewRNG(1)
	if d := g.UniformDuration(time.Second, time.Second); d != time.Second {
		t.Fatalf("degenerate interval: got %v, want 1s", d)
	}
	if d := g.UniformDuration(time.Second, 0); d != time.Second {
		t.Fatalf("inverted interval: got %v, want lo", d)
	}
}

func TestScale(t *testing.T) {
	if got := Scale(time.Second, 2.5); got != 2500*time.Millisecond {
		t.Fatalf("Scale(1s, 2.5) = %v", got)
	}
	if got := Scale(time.Second, 0); got != 0 {
		t.Fatalf("Scale(1s, 0) = %v", got)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Millisecond, func(Time) {})
		}
		e.Run()
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	t1 := e.Schedule(time.Second, func(Time) {})
	e.Schedule(2*time.Second, func(Time) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Cancel(t1)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", e.Pending())
	}
}

func TestTimerAtReportsInstant(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(3*time.Second, func(Time) {})
	at, ok := tm.At()
	if !ok || at != Time(3*time.Second) {
		t.Fatalf("At = %v, %v; want 3s, true", at, ok)
	}
	if _, ok := (Timer{}).At(); ok {
		t.Fatal("zero timer At should report inactive")
	}
}

func TestTimerAtInactiveAfterFireAndCancel(t *testing.T) {
	// Regression: At used to keep returning the stale scheduled instant
	// after the timer had fired or been cancelled, letting callers reason
	// about timers that no longer existed.
	e := NewEngine()
	fired := e.Schedule(time.Second, func(Time) {})
	cancelled := e.Schedule(2*time.Second, func(Time) {})
	e.Cancel(cancelled)
	if at, ok := cancelled.At(); ok || at != 0 {
		t.Fatalf("cancelled timer At = %v, %v; want 0, false", at, ok)
	}
	e.Run()
	if at, ok := fired.At(); ok || at != 0 {
		t.Fatalf("fired timer At = %v, %v; want 0, false", at, ok)
	}
}

func TestPoolRecyclesFiredEvents(t *testing.T) {
	// After a warm-up burst the engine must serve subsequent schedules
	// from the free list instead of the heap allocator.
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func(Time) {})
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(time.Millisecond, func(Time) {})
		e.Step()
	})
	// One allocation per round is the closure itself (fn escapes to the
	// heap); the event record must come from the pool.
	if allocs > 1 {
		t.Fatalf("Schedule+Step allocates %.1f objects/op after warm-up, want <= 1 (the closure)", allocs)
	}
}

type countingHandler struct{ fired int }

func (h *countingHandler) Fire(Time) { h.fired++ }

func TestScheduleHandlerIsAllocationFree(t *testing.T) {
	e := NewEngine()
	h := &countingHandler{}
	// Warm the pool.
	for i := 0; i < 10; i++ {
		e.ScheduleHandler(time.Millisecond, h)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.ScheduleHandler(time.Millisecond, h)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("ScheduleHandler+Step allocates %.1f objects/op after warm-up, want 0", allocs)
	}
	if h.fired < 110 {
		t.Fatalf("handler fired %d times, want >= 110", h.fired)
	}
}

func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	// The generation guard: a Timer for a fired event must not be able to
	// cancel (or observe) the next event that reuses its pooled record.
	e := NewEngine()
	stale := e.Schedule(time.Second, func(Time) {})
	e.Run() // fires; the record returns to the free list

	ran := false
	fresh := e.Schedule(time.Second, func(Time) { ran = true })
	if fresh.ev != stale.ev {
		t.Fatalf("free list did not recycle the record (fresh %p, stale %p)", fresh.ev, stale.ev)
	}
	if stale.Active() {
		t.Fatal("stale timer reports active after its record was recycled")
	}
	if at, ok := stale.At(); ok || at != 0 {
		t.Fatalf("stale timer At = %v, %v; want 0, false", at, ok)
	}
	e.Cancel(stale) // must be a no-op on the recycled record
	if !fresh.Active() {
		t.Fatal("cancelling a stale timer killed the live event sharing its record")
	}
	e.Run()
	if !ran {
		t.Fatal("live event did not fire after stale cancel attempt")
	}
}

func TestStaleTimerCannotCancelAcrossCancelledRecycle(t *testing.T) {
	// Same guard, but the record is recycled via the cancel path (unlinked
	// from its wheel bucket in place) instead of by firing.
	e := NewEngine()
	stale := e.Schedule(time.Second, func(Time) { t.Error("cancelled event fired") })
	e.Cancel(stale) // unlinks and recycles the record immediately
	e.Run()

	ran := false
	fresh := e.Schedule(time.Second, func(Time) { ran = true })
	if fresh.ev != stale.ev {
		t.Fatalf("free list did not recycle the record")
	}
	e.Cancel(stale)
	if !fresh.Active() {
		t.Fatal("double-cancel of a stale timer killed the live event")
	}
	e.Run()
	if !ran {
		t.Fatal("live event did not fire")
	}
}

func TestRunUntilStoppedKeepsClockAtStopPoint(t *testing.T) {
	// Regression: RunUntil used to teleport the clock to the deadline
	// even when Stop() fired mid-run, so a later resume could observe
	// Now() past events that never executed.
	e := NewEngine()
	e.Schedule(time.Second, func(Time) { e.Stop() })
	e.Schedule(2*time.Second, func(Time) {})
	end := e.RunUntil(Time(10 * time.Second))
	if end != Time(time.Second) {
		t.Fatalf("clock at %v after mid-run Stop, want 1s (the stop point)", end)
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("Now() = %v, want 1s", e.Now())
	}
}

func TestCancelReclaimsRecordsImmediately(t *testing.T) {
	// Cancel is an O(1) in-place unlink: the record must return to the
	// free list at cancel time, leaving no dead entries for dispatch to
	// skip and keeping the wheel proportional to the live load.
	e := NewEngine()
	const n = 1000
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		d := time.Duration(i%97+1) * time.Millisecond
		timers = append(timers, e.Schedule(d, func(Time) {}))
	}
	for i, tm := range timers {
		if i%10 != 0 {
			e.Cancel(tm)
		}
	}
	if got, want := e.Pending(), n/10; got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	if got, want := len(e.free), n-n/10; got < want {
		t.Fatalf("free list holds %d records after mass cancel, want >= %d (immediate reclaim)", got, want)
	}
	// The surviving events must still dispatch in time order, completely.
	var last Time
	steps := 0
	for e.Step() {
		if e.Now().Before(last) {
			t.Fatal("cancellation perturbed dispatch order")
		}
		last = e.Now()
		steps++
	}
	if steps != n/10 {
		t.Fatalf("dispatched %d events, want %d", steps, n/10)
	}
}

func TestCancelPreservesFIFOWithinInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	var doomed []Timer
	// Interleave keepers and cancellations at the same instant so the
	// in-place unlinks would expose any tie-break damage.
	for i := 0; i < 200; i++ {
		i := i
		e.Schedule(time.Second, func(Time) { got = append(got, i) })
		doomed = append(doomed, e.Schedule(time.Second, func(Time) { t.Error("cancelled event fired") }))
	}
	for _, tm := range doomed {
		e.Cancel(tm)
	}
	e.Run()
	if len(got) != 200 {
		t.Fatalf("ran %d events, want 200", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order broken after cancellation: got[%d] = %d", i, v)
		}
	}
}

func TestRunUntilAfterStopIsNoop(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func(Time) { e.Stop() })
	e.Schedule(2*time.Second, func(Time) { t.Fatal("ran after stop") })
	e.Run()
	e.RunUntil(Time(10 * time.Second))
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want the post-stop event still queued", e.Pending())
	}
}
