// Sharded batch dispatch: same-instant events whose owners live on
// disjoint subtree shards execute concurrently on a worker pool while
// the timer wheel remains the single deterministic sequencer.
//
// The contract is byte-identical dispatch: a sharded run must assign the
// same FIFO sequence numbers, consume every shared random stream in the
// same order, and observe every side effect in the same order as the
// serial engine. The mechanism (proof sketch in DESIGN.md §13):
//
//   - Batch formation. The due list is already sorted by (at, seq). A
//     batch is the maximal prefix of shard-labeled events at one
//     instant; an unlabeled (GlobalShard) event is a barrier and
//     dispatches alone, serially.
//   - Parallel region. Each shard's batch entries run in (at, seq)
//     order on a worker. Handlers may freely mutate their own host's
//     state (hosts are partitioned by shard), but every operation that
//     touches shared order-sensitive state — scheduling, cancellation,
//     packet sends, observer emissions — is appended to the shard's
//     deferred-op log instead of executing, tagged with the batch entry
//     that produced it.
//   - Merge. After the workers join, the engine replays the logs in
//     batch (at, seq) order, each entry's ops in program order. Sequence
//     numbers, packet IDs, RNG draws and digest updates therefore
//     happen in exactly the order the serial engine would have produced,
//     even though the handler bodies ran out of order.
//
// Shard labels are advisory: dispatching a labeled event serially is
// always correct, which is what makes the serial fallback (small or
// single-shard batches), RunUntil and Step safe without special cases.
package sim

import (
	"math/bits"
	"runtime"
)

// GlobalShard labels events that may touch cross-shard state. They are
// batch barriers: the sharded loop dispatches them serially, one at a
// time, exactly like the serial engine.
const GlobalShard int32 = -1

// maxShards bounds EnableSharding; the batch scan tracks distinct shards
// in a 64-bit mask.
const maxShards = 64

// minBatch is the smallest same-instant prefix worth dispatching in
// parallel; anything smaller (or confined to one shard) takes the serial
// path, which costs nothing over a plain Step.
const minBatch = 2

// shardPoolCap bounds each shard's record pool between batches. The
// merge releases every fired record into its shard's pool, but
// worker-side demand (handler-issued schedules) is far smaller than the
// fired volume, so without a cap the pools hoard records while the
// engine free list starves into fresh allocation; the excess flows back
// to the engine at the batch boundary.
const shardPoolCap = 256

// Sched is the scheduling surface protocol agents hold: the engine
// itself in serial runs, or a Shard handle in sharded runs. Both satisfy
// it with identical semantics; a Shard additionally defers the calls
// made during a parallel region so they commit in deterministic order.
type Sched interface {
	// Now returns the current virtual time.
	Now() Time
	// Schedule registers fn to run after delay (negative delays clamp to
	// zero).
	Schedule(delay Duration, fn Event) Timer
	// ScheduleHandler registers h.Fire to run after delay, the
	// closure-free variant of Schedule.
	ScheduleHandler(delay Duration, h EventHandler) Timer
	// Cancel deactivates a timer; inert on fired, cancelled or stale
	// handles.
	Cancel(t Timer)
}

// batchEntry is one same-instant event admitted to the current batch.
type batchEntry struct {
	ev  *scheduledEvent
	gen uint64
	// logStart and logEnd delimit the ops this entry appended to its
	// shard's deferred-op log.
	logStart, logEnd int32
	// fired reports whether the worker dispatched the entry (false when
	// a same-batch cancel made it inert first).
	fired bool
}

// shardOp is one deferred operation in a shard's op log. Schedule and
// cancel commits — the high-volume ops, every timer touched inside a
// region logs one — are stored as typed records so appending reuses the
// log's backing array instead of allocating a closure per op; only the
// proxy deferrals (packet sends, observer emissions) carry a closure.
type shardOp struct {
	// fn, when non-nil, is a proxy deferral and the other fields are
	// ignored.
	fn func()
	// ev is the record of a deferred schedule (replayed via
	// placeDeferred) or, with cancel set, a deferred cancel
	// (cancelDeferred).
	ev     *scheduledEvent
	cancel bool
}

// Shard is one partition's scheduling handle. Agents whose host belongs
// to the shard hold it as their Sched; the network and observer proxies
// route their deferrals through it. Outside a parallel region every
// method passes straight through to the engine (with the shard label
// attached), so setup code and barrier events behave exactly as before.
type Shard struct {
	e  *Engine
	id int32
	// buffering is true only while the engine has handed this shard's
	// batch entries to a worker. It is written by the engine goroutine
	// before and after the region (the work channel and WaitGroup give
	// the happens-before edges), and read by the worker and by the
	// engine, never concurrently.
	buffering bool
	// log is the deferred-op log of the current batch, program order.
	log []shardOp
	// entries indexes e.batch for this shard's slice of the batch.
	entries []int32
	// free pools records for deferred schedules; refilled by the merge
	// releasing this shard's fired records.
	free []*scheduledEvent
}

// EnableSharding partitions the engine into n shards and returns their
// scheduling handles (index = shard ID). Call once, before the run;
// n is clamped to [2, 64] (below 2 sharding is pointless and nil is
// returned). Events scheduled through a Shard (or through the engine's
// *Shard-labeled variants) carry that shard's label; everything else
// stays GlobalShard and dispatches as a barrier.
func (e *Engine) EnableSharding(n int) []*Shard {
	if len(e.shards) > 0 {
		panic("sim: EnableSharding called twice")
	}
	if n < 2 {
		return nil
	}
	if n > maxShards {
		n = maxShards
	}
	e.shards = make([]*Shard, n)
	for i := range e.shards {
		e.shards[i] = &Shard{e: e, id: int32(i)}
	}
	return e.shards
}

// NumShards returns the shard count, zero when sharding is disabled.
func (e *Engine) NumShards() int { return len(e.shards) }

// ID returns the shard's index.
func (s *Shard) ID() int { return int(s.id) }

// Buffering reports whether the shard is inside a parallel region, i.e.
// whether order-sensitive side effects must be deferred. The network
// and observer proxies consult it to skip closure allocation on the
// pass-through path.
func (s *Shard) Buffering() bool { return s.buffering }

// Now returns the current virtual time. During a parallel region the
// clock is frozen at the batch instant, so this is safe from workers.
func (s *Shard) Now() Time { return s.e.now }

// Defer executes op immediately outside a parallel region, or appends
// it to the shard's op log to run at merge time, in this batch entry's
// program-order slot. Proxies use it for packet sends and observer
// emissions.
func (s *Shard) Defer(op func()) {
	if !s.buffering {
		op()
		return
	}
	s.log = append(s.log, shardOp{fn: op})
}

// allocDeferred takes a record from the shard pool without assigning a
// sequence number; the merge assigns it when the schedule op replays.
func (s *Shard) allocDeferred(at Time) *scheduledEvent {
	var ev *scheduledEvent
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &scheduledEvent{}
	}
	ev.at = at
	ev.shard = s.id
	return ev
}

// Schedule registers fn to run after delay, labeled with this shard.
// Inside a parallel region the schedule is deferred: the returned Timer
// is immediately usable (cancelable, Active), but the event receives
// its FIFO sequence number at merge time, in the issuing entry's
// program-order slot — exactly the number the serial engine would have
// assigned.
func (s *Shard) Schedule(delay Duration, fn Event) Timer {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	if delay < 0 {
		delay = 0
	}
	if !s.buffering {
		t := s.e.Schedule(delay, fn)
		t.ev.shard = s.id
		return t
	}
	ev := s.allocDeferred(s.e.now.Add(delay))
	ev.fn = fn
	s.log = append(s.log, shardOp{ev: ev})
	return Timer{ev: ev, gen: ev.gen.Load(), at: ev.at}
}

// ScheduleHandler registers h.Fire to run after delay, labeled with
// this shard; the deferred path mirrors Schedule.
func (s *Shard) ScheduleHandler(delay Duration, h EventHandler) Timer {
	if h == nil {
		panic("sim: ScheduleHandler called with nil handler")
	}
	if delay < 0 {
		delay = 0
	}
	if !s.buffering {
		t := s.e.ScheduleHandler(delay, h)
		t.ev.shard = s.id
		return t
	}
	ev := s.allocDeferred(s.e.now.Add(delay))
	ev.h = h
	s.log = append(s.log, shardOp{ev: ev})
	return Timer{ev: ev, gen: ev.gen.Load(), at: ev.at}
}

// Cancel deactivates t. Inside a parallel region the timer becomes
// inert immediately (its generation is bumped, so Active is false and
// a same-batch entry of this shard will not fire it), while the
// structural unlink is deferred to the merge. Cancelling another
// shard's live timer from a parallel region is a cross-shard mutation
// the partition forbids and panics; stale handles (the common
// defensive-cancel case) are inert no-ops as always.
func (s *Shard) Cancel(t Timer) {
	if !s.buffering {
		s.e.Cancel(t)
		return
	}
	if t.ev == nil || t.ev.gen.Load() != t.gen {
		return
	}
	if t.ev.shard != s.id {
		panic("sim: cross-shard Cancel during parallel dispatch")
	}
	ev := t.ev
	ev.gen.Add(1)
	s.log = append(s.log, shardOp{ev: ev, cancel: true})
}

// ScheduleAtShard is ScheduleAt with a shard label, for infrastructure
// (the network) that schedules events on behalf of a host it knows the
// shard of. It must be called outside parallel regions (merge replay,
// barrier events, setup).
func (e *Engine) ScheduleAtShard(at Time, fn Event, shard int32) Timer {
	t := e.ScheduleAt(at, fn)
	e.label(t, shard)
	return t
}

// ScheduleHandlerAtShard is ScheduleHandlerAt with a shard label; see
// ScheduleAtShard.
func (e *Engine) ScheduleHandlerAtShard(at Time, h EventHandler, shard int32) Timer {
	t := e.ScheduleHandlerAt(at, h)
	e.label(t, shard)
	return t
}

func (e *Engine) label(t Timer, shard int32) {
	if shard >= 0 && int(shard) < len(e.shards) {
		t.ev.shard = shard
	}
}

// placeDeferred commits a deferred schedule at merge time: the event
// receives the next FIFO sequence number — the one the serial engine
// would have assigned at this point of the replay — and enters the
// wheel. If a later op of the same batch cancelled it, cancelDeferred
// will unlink it again; the sequence number is consumed either way,
// exactly as in a serial schedule-then-cancel.
func (e *Engine) placeDeferred(ev *scheduledEvent) {
	ev.seq = e.nextSeq
	e.nextSeq++
	e.place(ev)
	e.live++
}

// cancelDeferred commits a deferred cancel at merge time. The record is
// either still linked (it lived in the wheel, or placeDeferred just
// placed it) — unlink and account — or it was a member of the very
// batch being merged (formation already unlinked it, the worker skipped
// firing it); in both cases the record is released here.
func (e *Engine) cancelDeferred(ev *scheduledEvent) {
	if ev.in != nil {
		e.unlink(ev)
		e.live--
	}
	e.releaseRecord(ev)
}

// releaseRecord recycles a record into its owning shard's pool when it
// has one, or the engine free list otherwise. Merge-time release keeps
// shard pools fed so workers rarely allocate.
func (e *Engine) releaseRecord(ev *scheduledEvent) {
	if ev.shard >= 0 && int(ev.shard) < len(e.shards) {
		s := e.shards[ev.shard]
		ev.gen.Add(1)
		ev.fn = nil
		ev.h = nil
		s.free = append(s.free, ev)
		return
	}
	e.release(ev)
}

// runSharded is Run's batch dispatch loop. It spins up one worker per
// shard (capped at GOMAXPROCS) for the duration of the run.
func (e *Engine) runSharded() Time {
	nw := len(e.shards)
	if p := runtime.GOMAXPROCS(0); p < nw {
		nw = p
	}
	// Workers capture the channel by value: the engine field is cleared
	// on return (possibly before a worker's final nil-read of a struct
	// field would happen), and a fresh Run must not feed old workers.
	ch := make(chan *Shard, len(e.shards))
	e.workCh = ch
	for i := 0; i < nw; i++ {
		go e.shardWorker(ch)
	}
	for e.stepSharded() {
	}
	close(ch)
	e.workCh = nil
	return e.now
}

func (e *Engine) shardWorker(ch <-chan *Shard) {
	for s := range ch {
		s.runEntries()
		e.wg.Done()
	}
}

// runEntries executes this shard's slice of the current batch in
// (at, seq) order, recording each entry's op-log range. Firing bumps
// the record's generation first — the worker-visible half of the serial
// engine's release-before-dispatch — so the entry's own timers go inert
// exactly when they would have serially; the structural release happens
// at merge.
func (s *Shard) runEntries() {
	e := s.e
	now := e.now
	for _, idx := range s.entries {
		en := &e.batch[idx]
		ev := en.ev
		en.logStart = int32(len(s.log))
		if ev.gen.Load() == en.gen {
			ev.gen.Add(1)
			en.fired = true
			if h := ev.h; h != nil {
				h.Fire(now)
			} else {
				ev.fn(now)
			}
		}
		en.logEnd = int32(len(s.log))
	}
}

// admitBatch mirrors admit for the k-th entry of a forming batch,
// using the provisional executed count (prior admitted entries will
// have dispatched by the time this entry's serial admission would have
// run). Pending-budget checks see the live count as of the formation
// point — handler-scheduled events of earlier entries are not yet
// merged — which is the one place batch admission is allowed to differ
// from serial admission; the semantics are pinned by TestShardedBudget.
func (e *Engine) admitBatch(ev *scheduledEvent, k int) bool {
	b := &e.budget
	executed := e.executed + uint64(k)
	sameInstant := k > 0 || ev.at == e.now
	switch {
	case b.MaxVirtualTime > 0 && ev.at > b.MaxVirtualTime:
		e.status = DeadlineExceeded
	case b.MaxEvents > 0 && executed >= b.MaxEvents:
		e.status = EventBudgetExceeded
	case b.MaxPending > 0 && e.live > b.MaxPending:
		e.status = PendingBudgetExceeded
	case b.StallEvents > 0 && e.stallRun >= b.StallEvents && sameInstant:
		e.status = Stalled
	default:
		if sameInstant && executed > 0 {
			e.stallRun++
		} else {
			e.stallRun = 0
		}
		return true
	}
	e.stopped.Store(true)
	return false
}

// stepSharded dispatches the next batch (or falls back to serial steps)
// and returns false when the run is over. Semantics under guardrails:
// entries admitted into a batch always finish — a budget trip or a
// handler's Stop() takes effect at the next batch boundary — and the
// clock, once advanced to the batch instant, never regresses.
func (e *Engine) stepSharded() bool {
	if e.stopped.Load() || !e.ensureDue() {
		return false
	}
	head := e.due.head
	at := head.at
	n := 0
	var mask uint64
	for ev := head; ev != nil && ev.at == at && ev.shard >= 0; ev = ev.next {
		n++
		mask |= 1 << uint32(ev.shard)
	}
	if n < minBatch || bits.OnesCount64(mask) < 2 {
		// Serial fallback: a barrier event (n == 0), a tiny batch, or a
		// single-shard batch. Dispatch the counted prefix one event at a
		// time; Step is unconditionally correct for labeled events, and
		// stepping a known count avoids rescanning the prefix per event.
		k := n
		if k == 0 {
			// The head is unlabeled: a true barrier, dispatched alone.
			k = 1
			e.barrierEvents++
		}
		for i := 0; i < k; i++ {
			if !e.Step() {
				return false
			}
		}
		return true
	}

	// Form the batch: unlink the admitted prefix in (at, seq) order.
	e.batch = e.batch[:0]
	for ev := e.due.head; ev != nil && ev.at == at && ev.shard >= 0; {
		if e.budgetOn && !e.admitBatch(ev, len(e.batch)) {
			break
		}
		next := ev.next
		e.unlink(ev)
		e.live--
		e.batch = append(e.batch, batchEntry{ev: ev, gen: ev.gen.Load()})
		ev = next
	}
	if len(e.batch) == 0 {
		// The budget rejected the first entry; it stays queued and the
		// clock does not move — identical to serial admission.
		return false
	}
	e.now = at

	// Parallel region: hand each participating shard its entry slice.
	for i := range e.batch {
		s := e.shards[e.batch[i].ev.shard]
		if len(s.entries) == 0 {
			s.buffering = true
		}
		s.entries = append(s.entries, int32(i))
	}
	active := 0
	for _, s := range e.shards {
		if s.buffering {
			active++
		}
	}
	e.wg.Add(active)
	for _, s := range e.shards {
		if s.buffering {
			e.workCh <- s
		}
	}
	e.wg.Wait()

	// Merge: commit results in batch (at, seq) order. Each fired entry's
	// record is released before its ops replay, mirroring the serial
	// engine's release-before-dispatch; the ops then assign sequence
	// numbers, consume shared RNG draws and emit observer events in
	// exactly the serial order.
	fired := uint64(0)
	for i := range e.batch {
		en := &e.batch[i]
		s := e.shards[en.ev.shard]
		if en.fired {
			fired++
			e.releaseRecord(en.ev)
		}
		for j := en.logStart; j < en.logEnd; j++ {
			op := &s.log[j]
			switch {
			case op.fn != nil:
				op.fn()
			case op.cancel:
				e.cancelDeferred(op.ev)
			default:
				e.placeDeferred(op.ev)
			}
			*op = shardOp{}
		}
		en.ev = nil
	}
	e.executed += fired
	for _, s := range e.shards {
		if s.buffering {
			s.buffering = false
			s.entries = s.entries[:0]
			s.log = s.log[:0]
			if n := len(s.free); n > shardPoolCap {
				e.free = append(e.free, s.free[shardPoolCap:]...)
				for i := shardPoolCap; i < n; i++ {
					s.free[i] = nil
				}
				s.free = s.free[:shardPoolCap]
			}
		}
	}
	return true
}
