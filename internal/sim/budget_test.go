package sim

import (
	"testing"
	"time"
)

func at(ms int) Time { return Time(time.Duration(ms) * time.Millisecond) }

// TestBudgetDeadlineExceeded checks that MaxVirtualTime aborts before
// dispatching the first event beyond the bound and that the clock stays
// at the last executed event — never at the bound itself and never at
// the aborted event's instant.
func TestBudgetDeadlineExceeded(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{MaxVirtualTime: at(500)})
	var fired []Time
	for _, ms := range []int{100, 200, 600, 700} {
		e.ScheduleAt(at(ms), func(now Time) { fired = append(fired, now) })
	}
	final := e.Run()
	if got := e.Termination(); got != DeadlineExceeded {
		t.Fatalf("Termination = %v, want DeadlineExceeded", got)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (those within budget)", len(fired))
	}
	if final != at(200) {
		t.Errorf("clock advanced to %v after abort, want %v (last executed event)", final, at(200))
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d after abort, want 2 (aborted events stay queued)", e.Pending())
	}
}

// TestBudgetEventBudgetExceeded checks the dispatch-count bound.
func TestBudgetEventBudgetExceeded(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{MaxEvents: 3})
	for i := 1; i <= 10; i++ {
		e.ScheduleAt(at(i*10), func(Time) {})
	}
	e.Run()
	if got := e.Termination(); got != EventBudgetExceeded {
		t.Fatalf("Termination = %v, want EventBudgetExceeded", got)
	}
	if e.Executed() != 3 {
		t.Errorf("Executed = %d, want exactly the budget of 3", e.Executed())
	}
}

// TestBudgetPendingBudgetExceeded checks that a scheduling explosion —
// every event scheduling two more — trips the live-event bound instead
// of growing without limit.
func TestBudgetPendingBudgetExceeded(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{MaxPending: 64})
	var boom func(now Time)
	boom = func(now Time) {
		e.Schedule(time.Millisecond, boom)
		e.Schedule(2*time.Millisecond, boom)
	}
	e.Schedule(time.Millisecond, boom)
	e.Run()
	if got := e.Termination(); got != PendingBudgetExceeded {
		t.Fatalf("Termination = %v, want PendingBudgetExceeded", got)
	}
	if e.Pending() <= 64 {
		t.Errorf("Pending = %d at abort, want > budget of 64", e.Pending())
	}
}

// TestBudgetStalled checks the progress watchdog: a handler that keeps
// rescheduling itself at the current instant never advances the clock
// and must be flagged as a livelock.
func TestBudgetStalled(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{StallEvents: 100})
	var spin func(now Time)
	spin = func(now Time) { e.ScheduleAt(now, spin) }
	e.ScheduleAt(at(10), spin)
	final := e.Run()
	if got := e.Termination(); got != Stalled {
		t.Fatalf("Termination = %v, want Stalled", got)
	}
	if final != at(10) {
		t.Errorf("clock = %v, want %v (stalled instant)", final, at(10))
	}
	if snap := e.Snapshot(); snap.SameInstantRun < 100 {
		t.Errorf("SameInstantRun = %d, want >= 100", snap.SameInstantRun)
	}
}

// TestBudgetStallWatchdogTolerantOfBursts checks that a finite burst of
// same-instant events below the threshold does not trip the watchdog
// once the clock moves on.
func TestBudgetStallWatchdogTolerantOfBursts(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{StallEvents: 50})
	for burst := 0; burst < 20; burst++ {
		for i := 0; i < 40; i++ { // 40 < 50 per instant
			e.ScheduleAt(at(burst*10+10), func(Time) {})
		}
	}
	e.Run()
	if got := e.Termination(); got != Completed {
		t.Fatalf("Termination = %v, want Completed for sub-threshold bursts", got)
	}
}

// TestRunUntilBudgetAbortClockRegression pins the PR 1 bug class for
// budget aborts: RunUntil must not advance the clock to its deadline
// when a budget stopped the run first — a later resume could otherwise
// schedule "before" events that logically already happened.
func TestRunUntilBudgetAbortClockRegression(t *testing.T) {
	e := NewEngine()
	e.SetBudget(Budget{MaxEvents: 1})
	e.ScheduleAt(at(100), func(Time) {})
	e.ScheduleAt(at(200), func(Time) {})
	final := e.RunUntil(at(1000))
	if got := e.Termination(); got != EventBudgetExceeded {
		t.Fatalf("Termination = %v, want EventBudgetExceeded", got)
	}
	if final != at(100) {
		t.Fatalf("RunUntil advanced clock to %v after budget abort, want %v", final, at(100))
	}
	if e.Now() != at(100) {
		t.Fatalf("Now = %v, want %v", e.Now(), at(100))
	}
}

// TestZeroBudgetIsInert checks that installing the zero Budget changes
// nothing: same events, same final clock, Completed status.
func TestZeroBudgetIsInert(t *testing.T) {
	run := func(install bool) (uint64, Time) {
		e := NewEngine()
		if install {
			e.SetBudget(Budget{})
		}
		var tick func(now Time)
		n := 0
		tick = func(now Time) {
			n++
			if n < 100 {
				e.Schedule(time.Millisecond, tick)
			}
		}
		e.Schedule(time.Millisecond, tick)
		final := e.Run()
		if e.Termination() != Completed {
			t.Fatalf("Termination = %v, want Completed", e.Termination())
		}
		return e.Executed(), final
	}
	n1, t1 := run(false)
	n2, t2 := run(true)
	if n1 != n2 || t1 != t2 {
		t.Fatalf("zero budget perturbed the run: (%d, %v) vs (%d, %v)", n1, t1, n2, t2)
	}
}

// TestPastSchedulePanicIsTyped checks the scheduling-in-the-past panic
// carries its time context as a recoverable typed error, so harnesses
// can attribute it.
func TestPastSchedulePanicIsTyped(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(at(100), func(now Time) {
		defer func() {
			r := recover()
			pe, ok := r.(*PastScheduleError)
			if !ok {
				t.Fatalf("panic value %T, want *PastScheduleError", r)
			}
			if pe.At != at(50) || pe.Now != at(100) {
				t.Fatalf("PastScheduleError = %+v, want At=%v Now=%v", pe, at(50), at(100))
			}
		}()
		e.ScheduleAt(at(50), func(Time) {})
	})
	e.Run()
}
