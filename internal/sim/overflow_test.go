package sim

import (
	"testing"
	"time"
)

// The 4-level wheel spans 64^4 ticks of 2^20 ns each — about 4.9 hours
// of virtual time — with an overflow list beyond that horizon, rescanned
// whenever the cursor crosses a 64^4-tick-aligned boundary. Wall-clock
// sessions (internal/wire) legitimately run past the horizon, so these
// tests pin the boundary behavior: placement at/just past the horizon,
// ordering across overflow re-promotion, Pending accounting, and
// RunUntil far beyond the horizon.

// horizonTicks is the wheel span in ticks; tickNs converts ticks to
// virtual nanoseconds.
const (
	horizonTicks = 1 << (levelBits * numLevels)
	tickNs       = 1 << tickBits
)

// tickTime returns the first instant of the given wheel tick.
func tickTime(tick uint64) Time { return Time(tick * tickNs) }

func TestHorizonBoundaryPlacement(t *testing.T) {
	eng := NewEngine()
	// From cursor 0: the last in-wheel tick, the first overflow tick,
	// and one just past it — scheduled in reverse order to rule out
	// accidental FIFO luck.
	instants := []Time{
		tickTime(horizonTicks + 1),
		tickTime(horizonTicks), // first tick beyond the wheel span
		tickTime(horizonTicks - 1),
		tickTime(horizonTicks - 1).Add(tickNs - 1), // last ns of the last in-wheel tick
	}
	var got []Time
	for _, at := range instants {
		eng.ScheduleAt(at, func(now Time) { got = append(got, now) })
	}
	if eng.Pending() != len(instants) {
		t.Fatalf("Pending() = %d before run, want %d", eng.Pending(), len(instants))
	}
	end := eng.Run()
	want := []Time{
		tickTime(horizonTicks - 1),
		tickTime(horizonTicks - 1).Add(tickNs - 1),
		tickTime(horizonTicks),
		tickTime(horizonTicks + 1),
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, got[i], want[i])
		}
	}
	if end != want[len(want)-1] {
		t.Errorf("final time %v, want %v", end, want[len(want)-1])
	}
	if eng.Pending() != 0 {
		t.Errorf("Pending() = %d after run, want 0", eng.Pending())
	}
}

func TestSameInstantFIFOAcrossOverflowRepromotion(t *testing.T) {
	eng := NewEngine()
	at := tickTime(horizonTicks + 12345)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		eng.ScheduleAt(at, func(Time) { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant overflow events fired as %v, want FIFO", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

// TestOverflowInterleavesWithWheelEvents pins the global (at, seq) order
// when overflow re-promotion interleaves with events scheduled inside
// the wheel span, including events scheduled mid-run from handlers.
func TestOverflowInterleavesWithWheelEvents(t *testing.T) {
	eng := NewEngine()
	var got []Time
	note := func(now Time) { got = append(got, now) }

	// Deep overflow (several horizons out), shallow overflow, and
	// in-wheel events, scheduled shuffled.
	instants := []Time{
		tickTime(3*horizonTicks + 7),
		tickTime(horizonTicks / 2),
		tickTime(2*horizonTicks - 1),
		tickTime(horizonTicks + 3),
		tickTime(5),
		tickTime(2 * horizonTicks),
	}
	for _, at := range instants {
		eng.ScheduleAt(at, note)
	}
	// A handler firing in-wheel schedules another overflow event: its
	// tick is beyond the horizon relative to the *current* cursor.
	eng.ScheduleAt(tickTime(10), func(now Time) {
		got = append(got, now)
		eng.ScheduleAt(now.Add(Duration(2*horizonTicks*tickNs)), note)
	})
	eng.Run()

	want := []Time{
		tickTime(5),
		tickTime(10),
		tickTime(horizonTicks / 2),
		tickTime(horizonTicks + 3),
		tickTime(2*horizonTicks - 1),
		tickTime(2 * horizonTicks),
		tickTime(10).Add(Duration(2 * horizonTicks * tickNs)),
		tickTime(3*horizonTicks + 7),
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, got[i], want[i])
		}
	}
}

// TestPendingAcrossOverflowCancelAndRepromotion checks the live count
// as events move between the overflow list and the wheel, and when
// overflow residents are cancelled before or after a rescan boundary.
func TestPendingAcrossOverflowCancelAndRepromotion(t *testing.T) {
	eng := NewEngine()
	fired := 0
	note := func(Time) { fired++ }

	tEarly := eng.ScheduleAt(tickTime(1), note)
	tOver1 := eng.ScheduleAt(tickTime(horizonTicks+1), note)
	tOver2 := eng.ScheduleAt(tickTime(horizonTicks+2), note)
	tDeep := eng.ScheduleAt(tickTime(2*horizonTicks+2), note)
	if eng.Pending() != 4 {
		t.Fatalf("Pending() = %d, want 4", eng.Pending())
	}

	// Cancel one overflow resident before any rescan.
	eng.Cancel(tOver2)
	if eng.Pending() != 3 {
		t.Fatalf("Pending() = %d after overflow cancel, want 3", eng.Pending())
	}
	if tOver2.Active() {
		t.Fatal("cancelled overflow timer still Active")
	}

	// Run past the first overflow event: it must have been re-promoted
	// and fired; the deep one is still pending (now in the wheel or
	// still in overflow depending on the cursor — either way live).
	eng.RunUntil(tickTime(horizonTicks + 10))
	if fired != 2 {
		t.Fatalf("fired = %d after first horizon, want 2", fired)
	}
	if eng.Pending() != 1 {
		t.Fatalf("Pending() = %d after first horizon, want 1", eng.Pending())
	}
	if tEarly.Active() || tOver1.Active() {
		t.Fatal("fired timers still Active")
	}

	// Cancel the deep event after the first rescan but before it fires.
	eng.Cancel(tDeep)
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after deep cancel, want 0", eng.Pending())
	}
	end := eng.Run()
	if fired != 2 {
		t.Fatalf("fired = %d at end, want 2", fired)
	}
	if end != tickTime(horizonTicks+10) {
		t.Errorf("clock moved to %v after cancelling all remaining events", end)
	}
}

// TestNextEventAtSeesThroughOverflow verifies the exported peek finds
// an event that lives beyond the wheel horizon without dispatching it.
func TestNextEventAtSeesThroughOverflow(t *testing.T) {
	eng := NewEngine()
	at := tickTime(horizonTicks + 99)
	fired := false
	eng.ScheduleAt(at, func(Time) { fired = true })
	next, ok := eng.NextEventAt()
	if !ok || next != at {
		t.Fatalf("NextEventAt() = %v, %v; want %v, true", next, ok, at)
	}
	if fired {
		t.Fatal("NextEventAt dispatched the event")
	}
	if eng.Pending() != 1 {
		t.Fatalf("Pending() = %d after peek, want 1", eng.Pending())
	}
	// Peeking must not perturb subsequent scheduling or dispatch.
	var order []Time
	eng.ScheduleAt(at, func(now Time) { order = append(order, now) })
	eng.Run()
	if !fired || len(order) != 1 {
		t.Fatalf("after run: fired=%v extra=%d, want true/1", fired, len(order))
	}
	if _, ok := eng.NextEventAt(); ok {
		t.Fatal("NextEventAt reports an event on a drained engine")
	}
}

// TestRunUntilFarPastHorizon drives a self-rescheduling session-style
// timer across several wheel horizons — the wall-clock wire mode's
// long-session shape — checking the firing count and final clock.
func TestRunUntilFarPastHorizon(t *testing.T) {
	eng := NewEngine()
	period := Duration(time.Hour) // ~1/5 of the horizon
	const total = 24              // 24 virtual hours ≈ 5 horizons
	fires := 0
	var tick func(Time)
	tick = func(Time) {
		fires++
		if fires < total {
			eng.Schedule(period, tick)
		}
	}
	eng.Schedule(period, tick)
	deadline := Time(0).Add(Duration(total) * period).Add(Duration(time.Minute))
	end := eng.RunUntil(deadline)
	if fires != total {
		t.Fatalf("fires = %d, want %d", fires, total)
	}
	if end != deadline {
		t.Fatalf("RunUntil ended at %v, want deadline %v", end, deadline)
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", eng.Pending())
	}
}
