package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// propRun drives one random event script on an engine and returns the
// observed dispatch log. Each of `hosts` synthetic hosts owns a Sched
// handle (a Shard on sharded engines, the engine itself serially), a
// private RNG, and a list of its live timers; every event appends a
// (host, per-host counter, now) record through the host's deferral
// surface, optionally cancels one of the host's own timers, and
// schedules depth-bounded children with delays drawn from a small set
// so many events collide at the same instant across hosts.
func propRun(seed int64, hosts, shards int) []string {
	e := NewEngine()
	var shs []*Shard
	if shards > 1 {
		shs = e.EnableSharding(shards)
	}

	var log []string
	type host struct {
		sch    Sched
		sh     *Shard
		rng    *rand.Rand
		count  int
		timers []Timer
	}
	hs := make([]*host, hosts)
	for i := range hs {
		h := &host{rng: rand.New(rand.NewSource(seed + int64(i)))}
		if shs != nil {
			h.sh = shs[i%len(shs)]
			h.sch = h.sh
		} else {
			h.sch = e
		}
		hs[i] = h
	}
	record := func(h int, entry string) {
		if sh := hs[h].sh; sh != nil {
			sh.Defer(func() { log = append(log, entry) })
			return
		}
		log = append(log, entry)
	}

	delays := []Duration{0, 0, time.Millisecond, time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond}
	var fire func(h, depth int) Event
	fire = func(h, depth int) Event {
		return func(now Time) {
			hh := hs[h]
			hh.count++
			record(h, fmt.Sprintf("h%d#%d@%v", h, hh.count, now))
			// Cancel one of this host's own timers sometimes; stale
			// handles (already fired) exercise the inert path.
			if len(hh.timers) > 0 && hh.rng.Intn(3) == 0 {
				idx := hh.rng.Intn(len(hh.timers))
				hh.sch.Cancel(hh.timers[idx])
				hh.timers[idx] = hh.timers[len(hh.timers)-1]
				hh.timers = hh.timers[:len(hh.timers)-1]
			}
			if depth >= 5 {
				return
			}
			for k := hh.rng.Intn(3); k > 0; k-- {
				d := delays[hh.rng.Intn(len(delays))]
				t := hh.sch.Schedule(d, fire(h, depth+1))
				if hh.rng.Intn(2) == 0 {
					hh.timers = append(hh.timers, t)
				}
			}
		}
	}
	for i := range hs {
		// Seed several same-instant roots per host so the very first
		// instants already form cross-shard batches.
		for r := 0; r < 3; r++ {
			hs[i].sch.Schedule(Duration(r)*time.Millisecond, fire(i, 0))
		}
	}
	e.Run()
	return log
}

// TestShardedDispatchOrderProperty is the engine-level half of the
// byte-identical contract: over random event scripts — same-instant
// collisions, chained schedules, self-cancels, stale cancels — the
// sharded engine's observable dispatch log equals the serial engine's
// exactly, for several shard counts.
func TestShardedDispatchOrderProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		want := propRun(seed, 8, 0)
		for _, shards := range []int{2, 3, 8} {
			got := propRun(seed, 8, shards)
			if len(got) != len(want) {
				t.Fatalf("seed %d shards %d: %d events, serial %d", seed, shards, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d shards %d: dispatch %d = %s, serial %s", seed, shards, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardedSameInstantCancel pins the cancel interplay inside one
// batch: a lower-seq event cancelling a same-instant same-shard peer
// prevents it from firing; a higher-seq event cancelling an
// already-fired peer is inert. Both must match serial exactly.
func TestShardedSameInstantCancel(t *testing.T) {
	run := func(shards int) []string {
		e := NewEngine()
		var s0, s1 Sched = e, e
		var shs []*Shard
		if shards > 1 {
			shs = e.EnableSharding(shards)
			s0, s1 = shs[0], shs[1]
		}
		var log []string
		rec := func(sh *Shard, s string) func() {
			return func() {
				if sh != nil {
					sh.Defer(func() { log = append(log, s) })
				} else {
					log = append(log, s)
				}
			}
		}
		var sh0, sh1 *Shard
		if shs != nil {
			sh0, sh1 = shs[0], shs[1]
		}
		var victim, early Timer
		// seq order at t=1ms: killer(0), victim(1), lateCancel(2) — plus
		// early(seq below killer) which fires before any of them.
		early = s1.Schedule(time.Millisecond, func(Time) { rec(sh1, "early")() })
		killer := func(Time) {
			rec(sh0, "killer")()
			s0.Cancel(victim) // same shard, same instant, not yet fired
		}
		s0.Schedule(time.Millisecond, killer)
		victim = s0.Schedule(time.Millisecond, func(Time) { rec(sh0, "victim")() })
		s1.Schedule(time.Millisecond, func(Time) {
			rec(sh1, "late")()
			s1.Cancel(early) // already fired: must be inert
		})
		// A filler on shard 1 keeps the batch spanning two shards.
		s1.Schedule(time.Millisecond, func(Time) { rec(sh1, "filler")() })
		e.Run()
		return log
	}
	want := run(0)
	got := run(2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("sharded log %v, serial %v", got, want)
	}
	for _, s := range want {
		if s == "victim" {
			t.Fatalf("victim fired despite same-instant cancel: %v", want)
		}
	}
}

// TestShardedMidBatchStop pins the defined Stop semantics under
// parallel dispatch: every event admitted into the batch that contains
// the Stop still fires, nothing scheduled later runs, and the clock
// rests at the batch instant.
func TestShardedMidBatchStop(t *testing.T) {
	e := NewEngine()
	shs := e.EnableSharding(2)
	fired := make(map[string]bool)
	mark := func(sh *Shard, s string) Event {
		return func(Time) { sh.Defer(func() { fired[s] = true }) }
	}
	shs[0].Schedule(time.Millisecond, func(now Time) {
		shs[0].Defer(func() { fired["stopper"] = true })
		e.Stop()
	})
	shs[0].Schedule(time.Millisecond, mark(shs[0], "peer0"))
	shs[1].Schedule(time.Millisecond, mark(shs[1], "peer1"))
	shs[1].Schedule(2*time.Millisecond, mark(shs[1], "later"))
	end := e.Run()
	for _, s := range []string{"stopper", "peer0", "peer1"} {
		if !fired[s] {
			t.Errorf("admitted batch member %q did not fire before Stop took effect", s)
		}
	}
	if fired["later"] {
		t.Error("event after the stopping batch fired")
	}
	if end != Time(time.Millisecond) {
		t.Errorf("clock = %v, want the stopping batch's instant %v", end, Time(time.Millisecond))
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (the later event stays queued)", e.Pending())
	}
}

// TestShardedBudgetTruncatesBatch pins mid-batch budget admission: with
// MaxEvents hit inside a same-instant batch, the admitted prefix fires
// (in seq order), the rest stays queued, and status/clock match the
// serial engine's exactly.
func TestShardedBudgetTruncatesBatch(t *testing.T) {
	run := func(shards int) (fired []string, end Time, status TerminationStatus, pending int) {
		e := NewEngine()
		var s0, s1 Sched = e, e
		var shs []*Shard
		if shards > 1 {
			shs = e.EnableSharding(shards)
			s0, s1 = shs[0], shs[1]
		}
		rec := func(i int, s string) Event {
			return func(Time) {
				if shs != nil {
					shs[i].Defer(func() { fired = append(fired, s) })
				} else {
					fired = append(fired, s)
				}
			}
		}
		e.SetBudget(Budget{MaxEvents: 3})
		s0.Schedule(time.Millisecond, rec(0, "a"))
		s1.Schedule(time.Millisecond, rec(1, "b"))
		s0.Schedule(time.Millisecond, rec(0, "c"))
		s1.Schedule(time.Millisecond, rec(1, "d"))
		s0.Schedule(time.Millisecond, rec(0, "e"))
		end = e.Run()
		return fired, end, e.Termination(), e.Pending()
	}
	wf, we, ws, wp := run(0)
	gf, ge, gs, gp := run(2)
	if fmt.Sprint(gf) != fmt.Sprint(wf) || ge != we || gs != ws || gp != wp {
		t.Fatalf("sharded (%v, %v, %v, %d) != serial (%v, %v, %v, %d)",
			gf, ge, gs, gp, wf, we, ws, wp)
	}
	if ws != EventBudgetExceeded || len(wf) != 3 || wp != 2 {
		t.Fatalf("serial reference unexpected: fired=%v status=%v pending=%d", wf, ws, wp)
	}
}
