package sim

import (
	"math/rand"
	"time"
)

// RNG wraps a seeded pseudo-random source with the distribution helpers
// the protocol layers need. All randomness in a simulation must flow
// through an explicitly seeded RNG so that runs are reproducible; this
// package never touches global rand state.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// UniformDuration returns a duration drawn uniformly from [lo, hi).
// If hi <= lo it returns lo, which makes degenerate intervals (for
// example a zero-width SRM request window when C2 = 0) well defined.
func (g *RNG) UniformDuration(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)))
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Split derives an independent RNG from this one. The derived stream is
// a pure function of the parent's state, preserving reproducibility
// while letting subsystems consume randomness without perturbing each
// other's sequences.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Scale returns d scaled by the dimensionless factor f, rounding to the
// nearest nanosecond. The SRM timers are all expressed as parameter
// multiples of estimated distances, so this helper lives beside the RNG
// used to draw them.
func Scale(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d)*f + 0.5)
}
