// Package sim provides a deterministic discrete-event simulation engine
// with a virtual clock.
//
// The engine is intentionally single-threaded: all events execute on the
// caller's goroutine in strict virtual-time order, with FIFO ordering for
// events scheduled at the same instant. Determinism is a hard requirement
// for the trace-driven protocol experiments built on top of this package,
// so no wall-clock time or global randomness is consulted anywhere.
//
// The engine is also allocation-lean: scheduled-event records are
// recycled through a free list (guarded by a generation counter so a
// stale Timer can never cancel a recycled event), and hot callers can
// schedule a reusable EventHandler instead of a closure to avoid the
// per-event capture allocation.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant of virtual time, measured as an offset from the
// start of the simulation. The zero Time is the simulation start.
type Time time.Duration

// Duration is re-exported so that callers of this package can express
// virtual-time arithmetic without importing package time everywhere.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds since
// the simulation start.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats the instant using time.Duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Handlers run in virtual-time order.
type Event func(now Time)

// EventHandler is the closure-free scheduling surface: an object whose
// Fire method runs when its instant arrives. Hot paths that would
// otherwise capture state into a fresh closure per event (packet
// deliveries, per-hop forwarding) implement EventHandler on a pooled
// struct and schedule it with ScheduleHandlerAt, eliminating the
// per-event allocation entirely.
type EventHandler interface {
	// Fire runs the event at virtual time now.
	Fire(now Time)
}

// scheduledEvent is an entry in the event queue. Records are pooled:
// after firing (or after a cancelled record leaves the heap) the record
// returns to the engine's free list and its generation is bumped, so
// Timers referring to the previous occupancy become permanently inert.
type scheduledEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  Event
	h   EventHandler // non-nil exactly when fn is nil
	// gen counts how many times this record has been recycled. A Timer
	// captures the generation at scheduling time; any mismatch means the
	// record now belongs to a different event.
	gen  uint64
	dead bool // cancelled events stay in the heap but are skipped
	pos  int  // heap index, maintained by eventQueue
}

// eventQueue is a binary min-heap ordered by (at, seq).
type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].pos = i
	q[j].pos = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.pos = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.pos = -1
	*q = old[:n-1]
	return ev
}

// Engine drives a single simulation run. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	stopped bool
	// executed counts events that have been dispatched, for diagnostics
	// and run-away detection in tests.
	executed uint64
	// dead counts cancelled events still occupying the queue; when they
	// outnumber the live events the queue is compacted (see Cancel).
	dead int
	// free holds recycled event records. Its length is bounded by the
	// peak live queue size, so steady-state scheduling allocates nothing.
	free []*scheduledEvent
}

// NewEngine returns an engine positioned at virtual time zero with an
// empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time. During event execution this is
// the instant the executing event was scheduled for.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int { return len(e.queue) - e.dead }

// Timer identifies a scheduled event and allows cancelling it before it
// fires. The zero Timer is invalid. A Timer pins the (record, generation)
// pair it was issued for: once the event fires or its cancelled record is
// recycled, the Timer is inert — it can neither cancel nor observe the
// record's next occupant.
type Timer struct {
	ev  *scheduledEvent
	gen uint64
}

// Active reports whether the timer is scheduled and has neither fired
// nor been cancelled.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead && t.ev.pos >= 0
}

// At returns the instant the timer is scheduled to fire. The second
// result is false — and the instant zero — when the timer is not Active:
// never scheduled, already fired, or cancelled. (It used to return the
// stale scheduled instant of a fired or cancelled timer, which let
// callers reason about timers that no longer existed.)
func (t Timer) At() (Time, bool) {
	if !t.Active() {
		return 0, false
	}
	return t.ev.at, true
}

// alloc takes a recycled record from the free list (or allocates a fresh
// one), stamps it with the next FIFO sequence number, and validates the
// instant. Scheduling in the past panics: it would silently reorder
// causality, which is always a bug in the protocol layers above.
func (e *Engine) alloc(at Time) *scheduledEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", at, e.now))
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.dead = false
	} else {
		ev = &scheduledEvent{}
	}
	ev.at = at
	ev.seq = e.nextSeq
	e.nextSeq++
	return ev
}

// release recycles a record that has left the heap (fired, or cancelled
// and popped/compacted away). Bumping the generation first makes every
// outstanding Timer for the old occupancy inert before the record can be
// handed out again.
func (e *Engine) release(ev *scheduledEvent) {
	ev.gen++
	ev.fn = nil
	ev.h = nil
	ev.dead = true
	e.free = append(e.free, ev)
}

// ScheduleAt registers fn to run at the given instant.
func (e *Engine) ScheduleAt(at Time, fn Event) Timer {
	if fn == nil {
		panic("sim: ScheduleAt called with nil event")
	}
	ev := e.alloc(at)
	ev.fn = fn
	heap.Push(&e.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Schedule registers fn to run after delay. Negative delays are clamped
// to zero so that jitter arithmetic in callers cannot travel backwards
// in time.
func (e *Engine) Schedule(delay Duration, fn Event) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleHandlerAt registers h.Fire to run at the given instant. It is
// the allocation-free counterpart of ScheduleAt: h is typically a pooled
// struct owned by the caller, so no closure is captured.
func (e *Engine) ScheduleHandlerAt(at Time, h EventHandler) Timer {
	if h == nil {
		panic("sim: ScheduleHandlerAt called with nil handler")
	}
	ev := e.alloc(at)
	ev.h = h
	heap.Push(&e.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleHandler registers h.Fire to run after delay, clamping negative
// delays to zero like Schedule.
func (e *Engine) ScheduleHandler(delay Duration, h EventHandler) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleHandlerAt(e.now.Add(delay), h)
}

// compactThreshold is the minimum queue length before Cancel considers
// compaction; below it the dead entries are too few to matter.
const compactThreshold = 64

// Cancel deactivates the timer. Cancelling an already-fired or
// already-cancelled timer is a no-op, so callers can cancel defensively;
// a timer whose record has been recycled for a newer event is likewise a
// no-op (the generation check), so stale handles cannot kill live events.
// When cancelled entries come to outnumber live ones the queue is
// compacted, so long runs that cancel many timers (suppression is
// SRM's bread and butter) keep the heap proportional to the live load.
func (e *Engine) Cancel(t Timer) {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return
	}
	t.ev.dead = true
	t.ev.fn = nil
	t.ev.h = nil
	if t.ev.pos >= 0 {
		e.dead++
		if e.dead > len(e.queue)/2 && len(e.queue) >= compactThreshold {
			e.compact()
		}
	}
}

// compact rebuilds the queue without dead entries, recycling them. Heap
// order is a pure function of (at, seq), both immutable after
// scheduling, so compaction cannot perturb dispatch order.
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ev := range e.queue {
		if ev.dead {
			ev.pos = -1
			e.release(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	for i, ev := range e.queue {
		ev.pos = i
	}
	heap.Init(&e.queue)
	e.dead = 0
}

// Step executes the next pending event, advancing the clock to its
// instant. It returns false when the queue is exhausted or the engine
// has been stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*scheduledEvent)
		if ev.dead {
			e.dead--
			e.release(ev)
			continue
		}
		e.now = ev.at
		fn, h := ev.fn, ev.h
		// Recycle before dispatch: the handler may schedule new events,
		// and reusing this record for them is exactly what the generation
		// guard makes safe.
		e.release(ev)
		e.executed++
		if h != nil {
			h.Fire(e.now)
		} else {
			fn(e.now)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It
// returns the final virtual time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with instants not after the deadline. Events
// scheduled later remain queued. The clock finishes at the deadline
// unless Stop was called, in which case it stays at the instant of the
// last executed event — advancing a stopped engine past the stop point
// would let a later resume schedule "before" events that logically
// already happened.
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next.After(deadline) {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now.Before(deadline) {
		e.now = deadline
	}
	return e.now
}

// Stop halts the run loop after the currently executing event returns.
// Remaining events are left in the queue.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// peek reports the instant of the next live event.
func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.dead {
			return ev.at, true
		}
		heap.Pop(&e.queue)
		e.dead--
		e.release(ev)
	}
	return 0, false
}
