// Package sim provides a deterministic discrete-event simulation engine
// with a virtual clock.
//
// The engine is intentionally single-threaded: all events execute on the
// caller's goroutine in strict virtual-time order, with FIFO ordering for
// events scheduled at the same instant. Determinism is a hard requirement
// for the trace-driven protocol experiments built on top of this package,
// so no wall-clock time or global randomness is consulted anywhere.
//
// The event queue is a hierarchical timer wheel (see DESIGN.md for the
// geometry and the ordering argument): scheduling and cancellation are
// O(1), and the per-event dispatch cost is a small constant plus an
// amortized share of one sort of the event's final same-tick bucket.
// This replaces the earlier binary heap, whose O(log n) churn dominated
// full-scale runs — SRM's suppression machinery schedules and cancels
// timers for every loss on every host, and the transmission schedule
// keeps hundreds of thousands of far-future events resident.
//
// The engine is also allocation-lean: scheduled-event records are
// recycled through a free list (guarded by a generation counter so a
// stale Timer can never cancel a recycled event), and hot callers can
// schedule a reusable EventHandler instead of a closure to avoid the
// per-event capture allocation.
package sim

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Time is an instant of virtual time, measured as an offset from the
// start of the simulation. The zero Time is the simulation start.
type Time time.Duration

// Duration is re-exported so that callers of this package can express
// virtual-time arithmetic without importing package time everywhere.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds since
// the simulation start.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats the instant using time.Duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Handlers run in virtual-time order.
type Event func(now Time)

// EventHandler is the closure-free scheduling surface: an object whose
// Fire method runs when its instant arrives. Hot paths that would
// otherwise capture state into a fresh closure per event (packet
// deliveries, per-hop forwarding) implement EventHandler on a pooled
// struct and schedule it with ScheduleHandlerAt, eliminating the
// per-event allocation entirely.
type EventHandler interface {
	// Fire runs the event at virtual time now.
	Fire(now Time)
}

// Timer wheel geometry. A tick is 2^tickBits nanoseconds of virtual
// time (~1.05ms); each level has 2^levelBits buckets, and level L
// buckets span 64^L ticks. Four levels cover deltas up to 64^4 ticks
// (~4.9 hours of virtual time) before the overflow list is needed —
// comfortably past the longest full-scale trace horizon, so overflow is
// effectively never exercised by the experiments.
const (
	tickBits   = 20
	levelBits  = 6
	numLevels  = 4
	numBuckets = 1 << levelBits
	levelMask  = numBuckets - 1
)

// evList list identities beyond the wheel buckets (evList.level).
const (
	dueLevel      = -1
	overflowLevel = -2
)

// scheduledEvent is an entry in the event queue. Records are pooled:
// after firing or being cancelled the record returns to the engine's
// free list and its generation is bumped, so Timers referring to the
// previous occupancy become permanently inert. While scheduled, the
// record is linked into exactly one intrusive list — a wheel bucket,
// the overflow list, or the sorted due list — which is what makes
// cancellation an O(1) unlink.
type scheduledEvent struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  Event
	h   EventHandler // non-nil exactly when fn is nil
	// gen counts how many times this record has been recycled. A Timer
	// captures the generation at scheduling time; any mismatch means the
	// record now belongs to a different event. It is atomic because a
	// stale Timer held by one shard may probe a record that has since
	// been recycled to another shard, whose worker bumps the generation
	// concurrently; the uncontended atomic costs nothing measurable on
	// the serial path.
	gen atomic.Uint64
	// shard labels the event with the subtree shard that owns it, or
	// GlobalShard for events that may touch cross-shard state and must
	// dispatch alone (a batch barrier). Labels are advisory: serial
	// dispatch of labeled events is always correct, so RunUntil, Step and
	// the sharded loop's serial fallback need no special cases.
	shard int32

	prev, next *scheduledEvent
	in         *evList // the list currently holding the record, nil when free
}

// evList is an intrusive doubly-linked event list: a wheel bucket, the
// overflow list, or the due list. Buckets carry their (level, idx) so
// unlinking the last event can clear the occupancy bitmap bit.
type evList struct {
	head, tail *scheduledEvent
	level      int8 // 0..numLevels-1 for buckets, dueLevel, or overflowLevel
	idx        int8 // bucket index within the level (buckets only)
}

// Engine drives a single simulation run. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	nextSeq uint64
	// stopped is atomic so that a handler running on a shard worker can
	// call Stop mid-batch: the admitted batch still finishes (workers
	// never consult the flag) and the dispatch loops observe it at their
	// next boundary. Serial dispatch pays one uncontended atomic load per
	// event.
	stopped atomic.Bool
	// executed counts events that have been dispatched, for diagnostics
	// and run-away detection in tests.
	executed uint64
	// barrierEvents counts unlabeled (GlobalShard) events the sharded
	// loop dispatched as barriers. Zero in serial runs; in sharded runs
	// it measures how much of the event stream still serializes, which
	// is what the shard-labeling work drives down.
	barrierEvents uint64

	// shards is non-empty once EnableSharding has been called; Run then
	// uses the batch dispatch loop in shard.go. batch is the current
	// same-instant batch under execution, reused across batches.
	shards []*Shard
	batch  []batchEntry
	wg     sync.WaitGroup // joins the shard workers of the current batch
	workCh chan *Shard    // nil except while the sharded loop runs its pool

	// budget holds the optional guardrails (see Budget); budgetOn caches
	// whether any bound is armed so the disabled case costs one branch
	// per Step. status records how an armed budget ended the run.
	budget   Budget
	budgetOn bool
	status   TerminationStatus
	// stallRun counts consecutive dispatched events that did not advance
	// the clock — the progress watchdog's counter. Maintained only while
	// a budget is armed.
	stallRun uint64

	// cur is the wheel cursor tick. Invariant between operations: every
	// event in the wheel levels has tick > cur (events at tick <= cur
	// live in the due list), and every event in overflow has
	// tick-cur >= 64^numLevels as of its last placement.
	cur      uint64
	levels   [numLevels][numBuckets]evList
	occupied [numLevels]uint64 // per-level bucket-occupancy bitmaps

	// overflow holds events beyond the wheel horizon; it is rescanned
	// whenever cur crosses a 64^numLevels boundary.
	overflow evList

	// due is the dispatch staging list: all live events with
	// tick <= cur, kept sorted by (at, seq). Step pops its head.
	due evList

	// live is the number of scheduled, uncancelled events anywhere in
	// the structure — Pending() in O(1).
	live int

	// free holds recycled event records. Its length is bounded by the
	// peak live event count, so steady-state scheduling allocates
	// nothing.
	free []*scheduledEvent

	// scratch and sorter are reused by bucket drains so that sorting a
	// tick's events allocates nothing in steady state.
	scratch []*scheduledEvent
	sorter  evSorter
}

// evSorter sorts a drained bucket by (at, seq). It lives in the Engine
// so the sort.Interface conversion never allocates.
type evSorter struct{ s []*scheduledEvent }

func (v *evSorter) Len() int      { return len(v.s) }
func (v *evSorter) Swap(i, j int) { v.s[i], v.s[j] = v.s[j], v.s[i] }
func (v *evSorter) Less(i, j int) bool {
	if v.s[i].at != v.s[j].at {
		return v.s[i].at < v.s[j].at
	}
	return v.s[i].seq < v.s[j].seq
}

// NewEngine returns an engine positioned at virtual time zero with an
// empty event queue.
func NewEngine() *Engine {
	e := &Engine{}
	for l := 0; l < numLevels; l++ {
		for i := 0; i < numBuckets; i++ {
			b := &e.levels[l][i]
			b.level = int8(l)
			b.idx = int8(i)
		}
	}
	e.due.level = dueLevel
	e.overflow.level = overflowLevel
	return e
}

// Now returns the current virtual time. During event execution this is
// the instant the executing event was scheduled for.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// BarrierEvents returns the number of unlabeled events the sharded
// dispatch loop executed as serial barriers; always zero for serial
// runs.
func (e *Engine) BarrierEvents() uint64 { return e.barrierEvents }

// Pending returns the number of live (non-cancelled) scheduled events.
func (e *Engine) Pending() int { return e.live }

// Timer identifies a scheduled event and allows cancelling it before it
// fires. The zero Timer is invalid. A Timer pins the (record, generation)
// pair it was issued for: once the event fires or is cancelled the
// record's generation is bumped, so the Timer is inert — it can neither
// cancel nor observe the record's next occupant.
type Timer struct {
	ev  *scheduledEvent
	gen uint64
	// at is the scheduled instant, carried in the handle so that At never
	// reads the record's mutable field (which a recycled record's new
	// owner, possibly on another shard, may be rewriting).
	at Time
}

// Active reports whether the timer is scheduled and has neither fired
// nor been cancelled.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen.Load() == t.gen
}

// At returns the instant the timer is scheduled to fire. The second
// result is false — and the instant zero — when the timer is not Active:
// never scheduled, already fired, or cancelled. (It used to return the
// stale scheduled instant of a fired or cancelled timer, which let
// callers reason about timers that no longer existed.)
func (t Timer) At() (Time, bool) {
	if !t.Active() {
		return 0, false
	}
	return t.at, true
}

// alloc takes a recycled record from the free list (or allocates a fresh
// one), stamps it with the next FIFO sequence number, and validates the
// instant. Scheduling in the past panics: it would silently reorder
// causality, which is always a bug in the protocol layers above.
func (e *Engine) alloc(at Time) *scheduledEvent {
	if at < e.now {
		panic(&PastScheduleError{At: at, Now: e.now})
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &scheduledEvent{}
	}
	ev.at = at
	ev.seq = e.nextSeq
	e.nextSeq++
	ev.shard = GlobalShard
	return ev
}

// release recycles a record that has been unlinked (fired or cancelled).
// Bumping the generation first makes every outstanding Timer for the old
// occupancy inert before the record can be handed out again.
func (e *Engine) release(ev *scheduledEvent) {
	ev.gen.Add(1)
	ev.fn = nil
	ev.h = nil
	e.free = append(e.free, ev)
}

// pushBack appends ev to l, setting the occupancy bit for buckets.
func (e *Engine) pushBack(l *evList, ev *scheduledEvent) {
	ev.prev = l.tail
	ev.next = nil
	ev.in = l
	if l.tail != nil {
		l.tail.next = ev
	} else {
		l.head = ev
	}
	l.tail = ev
	if l.level >= 0 {
		e.occupied[l.level] |= 1 << uint(l.idx)
	}
}

// unlink removes ev from its current list, clearing the occupancy bit
// when a bucket empties.
func (e *Engine) unlink(ev *scheduledEvent) {
	l := ev.in
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		l.tail = ev.prev
	}
	ev.prev, ev.next, ev.in = nil, nil, nil
	if l.head == nil && l.level >= 0 {
		e.occupied[l.level] &^= 1 << uint(l.idx)
	}
}

// place files a newly scheduled event. Events at or before the cursor
// tick merge into the sorted due list (this happens when handlers
// schedule within the tick being dispatched, or when RunUntil/peek
// advanced the cursor past Now); later events go to the wheel level
// whose span covers their delta, or to overflow beyond the horizon.
func (e *Engine) place(ev *scheduledEvent) {
	tick := uint64(ev.at) >> tickBits
	if tick <= e.cur {
		e.dueInsert(ev)
		return
	}
	e.placeWheel(ev, tick)
}

// placeWheel files an event with tick >= cur into the wheel proper.
// Cascades use it directly (never the due list) so that a bucket drain
// remains the only operation that fills due — see the ordering argument
// in DESIGN.md.
func (e *Engine) placeWheel(ev *scheduledEvent, tick uint64) {
	switch delta := tick - e.cur; {
	case delta < 1<<levelBits:
		e.pushBack(&e.levels[0][tick&levelMask], ev)
	case delta < 1<<(2*levelBits):
		e.pushBack(&e.levels[1][(tick>>levelBits)&levelMask], ev)
	case delta < 1<<(3*levelBits):
		e.pushBack(&e.levels[2][(tick>>(2*levelBits))&levelMask], ev)
	case delta < 1<<(4*levelBits):
		e.pushBack(&e.levels[3][(tick>>(3*levelBits))&levelMask], ev)
	default:
		e.pushBack(&e.overflow, ev)
	}
}

// dueInsert merges ev into the sorted due list by (at, seq), scanning
// from the tail: fresh schedules carry the highest seq so they land at
// or near the tail.
func (e *Engine) dueInsert(ev *scheduledEvent) {
	pos := e.due.tail
	for pos != nil && (pos.at > ev.at || (pos.at == ev.at && pos.seq > ev.seq)) {
		pos = pos.prev
	}
	ev.in = &e.due
	ev.prev = pos
	if pos != nil {
		ev.next = pos.next
		pos.next = ev
	} else {
		ev.next = e.due.head
		e.due.head = ev
	}
	if ev.next != nil {
		ev.next.prev = ev
	} else {
		e.due.tail = ev
	}
}

// ensureDue makes the due list non-empty if any live event exists,
// advancing the wheel cursor to the next occupied tick (cascading
// higher levels at their window boundaries) and draining that tick's
// bucket, sorted by (at, seq), into due. Returns false when no live
// events remain.
func (e *Engine) ensureDue() bool {
	if e.due.head != nil {
		return true
	}
	if e.live == 0 {
		return false
	}
	for {
		// Search level 0 from the cursor to its rotation boundary. Bits
		// below idx0 belong to the next rotation and must not be taken
		// before the boundary cascade refills this level.
		idx0 := e.cur & levelMask
		if w := e.occupied[0] >> uint(idx0); w != 0 {
			d := uint64(bits.TrailingZeros64(w))
			e.cur += d
			e.drainBucket(int(idx0 + d))
			return true
		}
		// Nothing before the boundary: advance to it and cascade the
		// higher-level windows that open there.
		e.cur = (e.cur | levelMask) + 1
		e.cascade()
	}
}

// drainBucket empties level-0 bucket idx into the due list in (at, seq)
// order. A level-0 bucket holds events of exactly one tick (see
// DESIGN.md), so the sorted bucket is a contiguous run of the global
// dispatch order.
func (e *Engine) drainBucket(idx int) {
	l := &e.levels[0][idx]
	e.scratch = e.scratch[:0]
	for ev := l.head; ev != nil; {
		next := ev.next
		ev.prev, ev.next, ev.in = nil, nil, nil
		e.scratch = append(e.scratch, ev)
		ev = next
	}
	l.head, l.tail = nil, nil
	e.occupied[0] &^= 1 << uint(idx)
	if len(e.scratch) > 1 {
		e.sorter.s = e.scratch
		sort.Sort(&e.sorter)
	}
	for _, ev := range e.scratch {
		ev.in = &e.due
		ev.prev = e.due.tail
		if e.due.tail != nil {
			e.due.tail.next = ev
		} else {
			e.due.head = ev
		}
		e.due.tail = ev
	}
}

// cascade redistributes, at a level-0 rotation boundary, every
// higher-level bucket whose window opens at the new cursor, and rescans
// the overflow list when the cursor crosses the wheel horizon.
func (e *Engine) cascade() {
	for l := 1; l < numLevels; l++ {
		if e.cur&(1<<uint(levelBits*l)-1) != 0 {
			break
		}
		idx := (e.cur >> uint(levelBits*l)) & levelMask
		if e.occupied[l]&(1<<uint(idx)) != 0 {
			e.moveBucketDown(l, int(idx))
		}
	}
	if e.cur&(1<<uint(levelBits*numLevels)-1) == 0 {
		e.rescanOverflow()
	}
}

// moveBucketDown re-places every event of bucket (level, idx) into the
// lower levels. All its events have tick in [cur, cur+64^level), so
// they re-place strictly below the source level and never behind the
// cursor.
func (e *Engine) moveBucketDown(level, idx int) {
	l := &e.levels[level][idx]
	ev := l.head
	l.head, l.tail = nil, nil
	e.occupied[level] &^= 1 << uint(idx)
	for ev != nil {
		next := ev.next
		ev.prev, ev.next, ev.in = nil, nil, nil
		e.placeWheel(ev, uint64(ev.at)>>tickBits)
		ev = next
	}
}

// rescanOverflow moves overflow events that now fall within the wheel
// horizon into their levels. Events still beyond the horizon are left
// in place.
func (e *Engine) rescanOverflow() {
	ev := e.overflow.head
	for ev != nil {
		next := ev.next
		tick := uint64(ev.at) >> tickBits
		if tick-e.cur < 1<<uint(levelBits*numLevels) {
			e.unlink(ev)
			e.placeWheel(ev, tick)
		}
		ev = next
	}
}

// ScheduleAt registers fn to run at the given instant.
func (e *Engine) ScheduleAt(at Time, fn Event) Timer {
	if fn == nil {
		panic("sim: ScheduleAt called with nil event")
	}
	ev := e.alloc(at)
	ev.fn = fn
	e.place(ev)
	e.live++
	return Timer{ev: ev, gen: ev.gen.Load(), at: at}
}

// Schedule registers fn to run after delay. Negative delays are clamped
// to zero so that jitter arithmetic in callers cannot travel backwards
// in time.
func (e *Engine) Schedule(delay Duration, fn Event) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleHandlerAt registers h.Fire to run at the given instant. It is
// the allocation-free counterpart of ScheduleAt: h is typically a pooled
// struct owned by the caller, so no closure is captured.
func (e *Engine) ScheduleHandlerAt(at Time, h EventHandler) Timer {
	if h == nil {
		panic("sim: ScheduleHandlerAt called with nil handler")
	}
	ev := e.alloc(at)
	ev.h = h
	e.place(ev)
	e.live++
	return Timer{ev: ev, gen: ev.gen.Load(), at: at}
}

// ScheduleHandler registers h.Fire to run after delay, clamping negative
// delays to zero like Schedule.
func (e *Engine) ScheduleHandler(delay Duration, h EventHandler) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleHandlerAt(e.now.Add(delay), h)
}

// Cancel deactivates the timer: the record is unlinked from its list in
// place and recycled immediately — O(1), no dead entries to skip or
// compact later. Cancelling an already-fired or already-cancelled timer
// is a no-op, so callers can cancel defensively; a timer whose record
// has been recycled for a newer event is likewise a no-op (the
// generation check), so stale handles cannot kill live events.
func (e *Engine) Cancel(t Timer) {
	if t.ev == nil || t.ev.gen.Load() != t.gen {
		return
	}
	// A matching generation implies the record is currently scheduled
	// (firing or cancelling bumps the generation), hence linked.
	e.unlink(t.ev)
	e.live--
	e.release(t.ev)
}

// Step executes the next pending event, advancing the clock to its
// instant. It returns false when the queue is exhausted, the engine has
// been stopped, or an armed Budget aborts the run (see Termination) —
// in the budget case the offending event stays queued and the clock
// does not move.
func (e *Engine) Step() bool {
	if e.stopped.Load() || !e.ensureDue() {
		return false
	}
	ev := e.due.head
	if e.budgetOn {
		if !e.admit(ev) {
			return false
		}
		if ev.at == e.now && e.executed > 0 {
			e.stallRun++
		} else {
			e.stallRun = 0
		}
	}
	e.unlink(ev)
	e.live--
	e.now = ev.at
	fn, h := ev.fn, ev.h
	// Recycle before dispatch: the handler may schedule new events,
	// and reusing this record for them is exactly what the generation
	// guard makes safe.
	e.release(ev)
	e.executed++
	if h != nil {
		h.Fire(e.now)
	} else {
		fn(e.now)
	}
	return true
}

// Run executes events until the queue drains or Stop is called. It
// returns the final virtual time. On an engine with sharding enabled it
// uses the batch dispatch loop (see shard.go), which is byte-identical
// to serial dispatch; otherwise it steps events one at a time.
func (e *Engine) Run() Time {
	if len(e.shards) > 1 {
		return e.runSharded()
	}
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with instants not after the deadline. Events
// scheduled later remain queued. The clock finishes at the deadline
// unless Stop was called, in which case it stays at the instant of the
// last executed event — advancing a stopped engine past the stop point
// would let a later resume schedule "before" events that logically
// already happened. RunUntil always dispatches serially: shard labels
// are advisory, so this is correct (and identical) on sharded engines.
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.stopped.Load() {
		next, ok := e.peek()
		if !ok || next.After(deadline) {
			break
		}
		e.Step()
	}
	if !e.stopped.Load() && e.now.Before(deadline) {
		e.now = deadline
	}
	return e.now
}

// Stop halts the run loop after the currently executing event returns.
// Remaining events are left in the queue. Under sharded dispatch a Stop
// issued by a handler mid-batch lets the rest of the admitted batch
// finish (its events were already committed to this instant) and takes
// effect at the next batch boundary; the clock never regresses.
func (e *Engine) Stop() { e.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped.Load() }

// peek reports the instant of the next live event.
func (e *Engine) peek() (Time, bool) {
	if !e.ensureDue() {
		return 0, false
	}
	return e.due.head.at, true
}

// NextEventAt reports the instant of the earliest pending event without
// executing it, or false when no live events remain. Wall-clock drivers
// (internal/wire) use it to sleep exactly until the next virtual
// deadline instead of polling. Like Step it may advance the internal
// wheel cursor to stage the next tick's events; the observable dispatch
// order is unaffected.
func (e *Engine) NextEventAt() (Time, bool) { return e.peek() }
