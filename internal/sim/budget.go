package sim

import "fmt"

// TerminationStatus reports how a run ended. The zero value, Completed,
// covers every run the guardrails did not abort: the queue drained, or
// the caller stopped the engine on its own terms (RunUntil deadline,
// explicit Stop). Non-zero statuses are produced only by an armed
// Budget, so existing callers that never install one observe Completed
// always.
type TerminationStatus int

const (
	// Completed: the run was not aborted by a budget.
	Completed TerminationStatus = iota
	// DeadlineExceeded: the next event lay beyond Budget.MaxVirtualTime.
	DeadlineExceeded
	// EventBudgetExceeded: Budget.MaxEvents events had been dispatched.
	EventBudgetExceeded
	// PendingBudgetExceeded: the live event count exceeded
	// Budget.MaxPending (a scheduling explosion).
	PendingBudgetExceeded
	// Stalled: Budget.StallEvents consecutive events dispatched without
	// the virtual clock advancing (a same-instant livelock).
	Stalled
)

// String returns a stable machine-usable status label.
func (s TerminationStatus) String() string {
	switch s {
	case Completed:
		return "Completed"
	case DeadlineExceeded:
		return "DeadlineExceeded"
	case EventBudgetExceeded:
		return "EventBudgetExceeded"
	case PendingBudgetExceeded:
		return "PendingBudgetExceeded"
	case Stalled:
		return "Stalled"
	default:
		return fmt.Sprintf("TerminationStatus(%d)", int(s))
	}
}

// Budget bounds a run so that a runaway simulation — an exponential
// back-off spiral toward virtual-clock overflow, a scheduling explosion,
// a same-instant livelock — terminates with a structured
// TerminationStatus instead of overflowing, exhausting memory or
// spinning forever. The zero value disables every guardrail and adds no
// per-event work, so budget-free runs are byte-identical to builds
// without this mechanism.
//
// All checks happen at dispatch admission: the engine inspects the next
// due event before executing it and, on the first violated bound, stops
// without dispatching. The clock therefore never advances past a
// budget-triggered stop (it stays at the instant of the last executed
// event), and the dispatched event prefix — hence the run fingerprint
// of everything observed so far — is a pure function of the
// configuration, keeping aborted runs exactly as reproducible as
// completed ones.
type Budget struct {
	// MaxVirtualTime aborts the run (DeadlineExceeded) before executing
	// any event scheduled after this instant. Zero means unlimited.
	MaxVirtualTime Time
	// MaxEvents aborts the run (EventBudgetExceeded) once this many
	// events have been dispatched. Zero means unlimited.
	MaxEvents uint64
	// MaxPending aborts the run (PendingBudgetExceeded) when the live
	// scheduled-event count exceeds it. Zero means unlimited.
	MaxPending int
	// StallEvents is the progress watchdog: the run aborts (Stalled)
	// when this many consecutive events dispatch without the virtual
	// clock advancing and the next event would not advance it either.
	// Zero disables the watchdog.
	StallEvents uint64
}

// Enabled reports whether any guardrail is armed.
func (b Budget) Enabled() bool { return b != Budget{} }

// SetBudget installs (or, with the zero Budget, removes) the engine's
// guardrails. Call it before running; changing budgets mid-run is
// allowed but the stall counter is not reset.
func (e *Engine) SetBudget(b Budget) {
	e.budget = b
	e.budgetOn = b.Enabled()
}

// Termination reports how the run ended so far: Completed unless an
// armed budget aborted it. It is meaningful after Run/RunUntil/Step
// return false, and monotone — once non-Completed it stays so.
func (e *Engine) Termination() TerminationStatus { return e.status }

// Snapshot is a diagnostic picture of the engine, taken when a budget
// aborts a run (or on demand).
type Snapshot struct {
	// Status is the termination status at capture time.
	Status TerminationStatus
	// Now is the virtual clock: the instant of the last executed event.
	Now Time
	// Pending counts live scheduled events still queued.
	Pending int
	// Executed counts events dispatched so far.
	Executed uint64
	// SameInstantRun counts the consecutive events dispatched at Now,
	// the progress-watchdog counter.
	SameInstantRun uint64
}

// Snapshot captures the engine's diagnostic state.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Status:         e.status,
		Now:            e.now,
		Pending:        e.live,
		Executed:       e.executed,
		SameInstantRun: e.stallRun,
	}
}

// String renders the snapshot on one line.
func (s Snapshot) String() string {
	return fmt.Sprintf("status=%s clock=%v pending=%d executed=%d same-instant-run=%d",
		s.Status, s.Now, s.Pending, s.Executed, s.SameInstantRun)
}

// admit checks the armed budget against the next due event ev before it
// is dispatched. On the first violated bound it records the status,
// stops the engine and returns false — ev stays queued and the clock
// does not move.
func (e *Engine) admit(ev *scheduledEvent) bool {
	b := &e.budget
	switch {
	case b.MaxVirtualTime > 0 && ev.at > b.MaxVirtualTime:
		e.status = DeadlineExceeded
	case b.MaxEvents > 0 && e.executed >= b.MaxEvents:
		e.status = EventBudgetExceeded
	case b.MaxPending > 0 && e.live > b.MaxPending:
		e.status = PendingBudgetExceeded
	case b.StallEvents > 0 && e.stallRun >= b.StallEvents && ev.at == e.now:
		e.status = Stalled
	default:
		return true
	}
	e.stopped.Store(true)
	return false
}

// PastScheduleError is the panic value raised when an event is scheduled
// before the current virtual instant. Scheduling in the past would
// silently reorder causality, which is always a bug in the layers above
// — historically including timer arithmetic that overflowed int64 and
// wrapped negative. The panic is typed so that harnesses (the soak
// fuzzer) can recover it and attribute the failure with its time
// context instead of dying on a bare string.
type PastScheduleError struct {
	// At is the requested (past) instant; Now the clock it violated.
	At, Now Time
}

// Error implements error.
func (e *PastScheduleError) Error() string {
	return fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", e.At, e.Now)
}
