package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cesrm/internal/topology"
)

//	   0 (source)
//	  / \
//	 1   2
//	/ \   \
//
// 3   4   5
//
//	|
//	6
//
// Receivers: 3, 4, 6.
func testTree(t *testing.T) *topology.Tree {
	t.Helper()
	return topology.MustNew([]topology.NodeID{topology.None, 0, 0, 1, 1, 2, 5})
}

func TestParseSpecRoundTrip(t *testing.T) {
	text := "crash@40s:host=3,purge;restart@1m10s:host=3;link-down@10s-20s:link=5;" +
		"link-down@30s:link=5;link-up@35s:link=5;jitter@45s-50s:max=5ms;" +
		"dup@1m20s-1m30s:prob=0.01,delay=2ms;starve@1m40s-1m45s;starve@1m50s-1m55s:host=4;" +
		"leave@2m:host=4;join@2m30s:host=4;qcap@2m40s-2m50s:cap=2;join@5s:host=6"
	s, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(testTree(t)); err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(s.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s.Faults, again.Faults) {
		t.Fatalf("round trip diverged:\n  first:  %+v\n  second: %+v", s.Faults, again.Faults)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"", "crash", "crash@", "crash@40s:host=x", "explode@40s",
		"crash@40s:frob=1", "jitter@4s-2x:max=1ms", "dup@1s-2s:prob=maybe",
		"crash@40s:purge=yes",
		"qcap@1s-2s:cap=0", "qcap@1s-2s:cap=-3", "qcap@1s-2s:cap=two",
		"leave@1s:cap=2", "join@1s:purge", "qcap@1s-2s:host=3",
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
}

func TestValidateRejectsIllFormedSpecs(t *testing.T) {
	tree := testTree(t)
	cases := []struct {
		name  string
		spec  Spec
		wants string
	}{
		{"negative instant", Spec{Faults: []Fault{{Kind: Crash, At: -time.Second, Host: 3}}}, "negative instant"},
		{"crash source", Spec{Faults: []Fault{{Kind: Crash, At: time.Second, Host: 0}}}, "not a receiver"},
		{"crash router", Spec{Faults: []Fault{{Kind: Crash, At: time.Second, Host: 1}}}, "not a receiver"},
		{"double crash", Spec{Faults: []Fault{
			{Kind: Crash, At: time.Second, Host: 3},
			{Kind: Crash, At: 2 * time.Second, Host: 3},
		}}, "crashed twice"},
		{"restart live host", Spec{Faults: []Fault{{Kind: Restart, At: time.Second, Host: 3}}}, "restarted while live"},
		{"root link", Spec{Faults: []Fault{{Kind: LinkDown, At: time.Second, Until: 2 * time.Second, Link: 0}}}, "invalid link"},
		{"severed forever", Spec{Faults: []Fault{{Kind: LinkDown, At: time.Second, Link: 5}}}, "severed forever"},
		{"link raised while up", Spec{Faults: []Fault{{Kind: LinkUp, At: time.Second, Link: 5}}}, "raised while up"},
		{"jitter without end", Spec{Faults: []Fault{{Kind: Jitter, At: time.Second, Max: time.Millisecond}}}, "window end"},
		{"inverted window", Spec{Faults: []Fault{{Kind: Jitter, At: 2 * time.Second, Until: time.Second, Max: time.Millisecond}}}, "not after start"},
		{"overlapping jitter", Spec{Faults: []Fault{
			{Kind: Jitter, At: time.Second, Until: 3 * time.Second, Max: time.Millisecond},
			{Kind: Jitter, At: 2 * time.Second, Until: 4 * time.Second, Max: time.Millisecond},
		}}, "overlapping"},
		{"dup prob out of range", Spec{Faults: []Fault{{Kind: Duplicate, At: time.Second, Until: 2 * time.Second, Prob: 1.5}}}, "outside (0,1]"},
		{"starve without end", Spec{Faults: []Fault{{Kind: Starve, At: time.Second, Host: topology.None}}}, "window"},
		{"leave of non-receiver", Spec{Faults: []Fault{{Kind: Leave, At: time.Second, Host: 99}}}, "not a receiver"},
		{"leave of router", Spec{Faults: []Fault{{Kind: Leave, At: time.Second, Host: 1}}}, "not a receiver"},
		{"join while present", Spec{Faults: []Fault{
			{Kind: Leave, At: time.Second, Host: 3},
			{Kind: Join, At: 2 * time.Second, Host: 3},
			{Kind: Join, At: 3 * time.Second, Host: 3},
		}}, "joined while present"},
		{"double leave", Spec{Faults: []Fault{
			{Kind: Leave, At: time.Second, Host: 3},
			{Kind: Leave, At: 2 * time.Second, Host: 3},
		}}, "left while absent"},
		{"leave mixed with crash", Spec{Faults: []Fault{
			{Kind: Crash, At: time.Second, Host: 3},
			{Kind: Restart, At: 2 * time.Second, Host: 3},
			{Kind: Leave, At: 3 * time.Second, Host: 3},
		}}, "mixes crash/restart and leave/join"},
		{"qcap without end", Spec{Faults: []Fault{{Kind: QueueCap, At: time.Second, Cap: 2}}}, "needs an end"},
		{"qcap non-positive", Spec{Faults: []Fault{{Kind: QueueCap, At: time.Second, Until: 2 * time.Second, Cap: 0}}}, "non-positive queue cap"},
		{"overlapping qcap", Spec{Faults: []Fault{
			{Kind: QueueCap, At: time.Second, Until: 3 * time.Second, Cap: 2},
			{Kind: QueueCap, At: 2 * time.Second, Until: 4 * time.Second, Cap: 3},
		}}, "overlapping"},
	}
	for _, c := range cases {
		err := c.spec.Validate(tree)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wants) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wants)
		}
	}
}

func TestValidateAcceptsLinkDownWithLaterLinkUp(t *testing.T) {
	s := Spec{Faults: []Fault{
		{Kind: LinkDown, At: time.Second, Link: 5},
		{Kind: LinkUp, At: 3 * time.Second, Link: 5},
	}}
	if err := s.Validate(testTree(t)); err != nil {
		t.Fatal(err)
	}
}

func TestScenariosAreValidAndDistinct(t *testing.T) {
	tree := testTree(t)
	specs := Scenarios(tree, 2*time.Minute)
	if len(specs) < 6 {
		t.Fatalf("scenario matrix has %d entries, want at least 6", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" {
			t.Fatal("unnamed scenario")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(tree); err != nil {
			t.Errorf("scenario %q invalid: %v", s.Name, err)
		}
	}
	for _, want := range []string{"crash", "crash-restart", "link-flap", "jitter-ramp", "dup-storm", "session-starve", "member-churn", "late-join", "queue-overload", "replier-churn", "replier-leave", "combined"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from matrix", want)
		}
	}
}

// TestParseSpecHardening pins the parse-time rejections added for the
// soak fuzzer: ill-formed windows, duplicate and inapplicable options,
// and negative or overflow-scale durations must fail with precise
// errors instead of surviving until Validate (or, worse, the engine).
func TestParseSpecHardening(t *testing.T) {
	cases := []struct {
		text string
		want string // substring of the error
	}{
		{"crash@40s-30s:host=1", "not after instant"},
		{"crash@40s-40s:host=1", "not after instant"},
		// A leading "-" reads as the window separator, so a negative
		// instant is a syntax error; a negative window end is reachable.
		{"jitter@-5s-10s:max=1ms", "bad instant"},
		{"jitter@5s--10s:max=1ms", "negative window end"},
		{"crash@9000h:host=1", "spec ceiling"},
		{"jitter@1s-9000h:max=1ms", "spec ceiling"},
		{"jitter@1s-2s:max=-1ms", "negative max"},
		{"jitter@1s-2s:max=9000h", "spec ceiling"},
		{"dup@1s-2s:prob=0.5,delay=-2ms", "negative delay"},
		{"crash@1s:host=2,host=3", "duplicate option"},
		{"crash@1s:purge,purge", "duplicate option"},
		{"dup@1s-2s:prob=0.5,prob=0.6", "duplicate option"},
		{"jitter@1s-2s:max=1ms,host=3", "does not apply"},
		{"crash@1s:host=1,max=5ms", "does not apply"},
		{"starve@1s-2s:link=4", "does not apply"},
		{"crash@1s:host=-2", "negative host"},
		{"link-down@1s-2s:link=-1", "negative link"},
		{"dup@1s-2s:prob=NaN,delay=1ms", "outside (0,1]"},
		{"dup@1s-2s:prob=0,delay=1ms", "outside (0,1]"},
		{"dup@1s-2s:prob=1.5,delay=1ms", "outside (0,1]"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.text)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", c.text)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpec(%q) error %q, want substring %q", c.text, err, c.want)
		}
	}
}
