package chaos

import (
	"fmt"
	"sort"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// Host is the lifecycle surface the controller drives. All protocol
// endpoints (srm.Agent, core.Agent, lms.Agent) implement it.
type Host interface {
	Crash()
	Restart()
	Crashed() bool
}

// Invalidator is the optional cache-invalidation surface a Purge crash
// exercises on the surviving endpoints (implemented by CESRM's
// core.Agent).
type Invalidator interface {
	InvalidateHost(dead topology.NodeID) int
}

// Member is the graceful-membership surface Leave/Join faults drive.
// Unlike Crash/Restart it models announced departures: a leaving host
// goes silent without amnesia, and a joining host opens its reliability
// window at the first post-join data rather than seq 0. All protocol
// endpoints implement it.
type Member interface {
	Leave()
	Join()
	Absent() bool
}

// Probe observes lifecycle faults as they fire; the stats validator
// implements it to arm its post-crash and post-leave silence
// invariants. May be nil.
type Probe interface {
	NoteCrash(host topology.NodeID, at sim.Time)
	NoteRestart(host topology.NodeID, at sim.Time)
	NoteLeave(host topology.NodeID, at sim.Time)
	NoteJoin(host topology.NodeID, at sim.Time)
}

// Controller schedules a validated Spec's faults through the engine and
// tracks the windowed fault state the network hooks consult. All fault
// events are scheduled up front, in spec order, so two runs of the same
// spec dispatch identically.
type Controller struct {
	eng   *sim.Engine
	net   *netsim.Network
	rng   *sim.RNG
	hosts map[topology.NodeID]Host
	order []topology.NodeID // sorted host IDs, for deterministic purge sweeps
	probe Probe

	pending    int // fault events not yet fired
	baseJitter time.Duration

	dupProb    float64
	dupDelay   time.Duration
	starveAll  int
	starveHost map[topology.NodeID]int
}

// Install validates spec against the network's topology and schedules
// every fault. rng drives duplicate-injection decisions and must be
// dedicated to the controller (sharing it with protocol agents would
// entangle their random streams). hosts maps every crashable node to
// its endpoint; probe may be nil. The engine must still be at time
// zero.
func Install(eng *sim.Engine, net *netsim.Network, rng *sim.RNG, spec *Spec, hosts map[topology.NodeID]Host, probe Probe) (*Controller, error) {
	if err := spec.Validate(net.Tree()); err != nil {
		return nil, err
	}
	for _, f := range spec.Faults {
		switch f.Kind {
		case Crash, Restart:
			if hosts[f.Host] == nil {
				return nil, fmt.Errorf("chaos: no endpoint for host %d", f.Host)
			}
		case Leave, Join:
			if hosts[f.Host] == nil {
				return nil, fmt.Errorf("chaos: no endpoint for host %d", f.Host)
			}
			if _, ok := hosts[f.Host].(Member); !ok {
				return nil, fmt.Errorf("chaos: endpoint for host %d does not support membership", f.Host)
			}
		}
	}
	c := &Controller{
		eng:        eng,
		net:        net,
		rng:        rng,
		hosts:      hosts,
		probe:      probe,
		baseJitter: net.MaxJitter(),
		starveHost: make(map[topology.NodeID]int),
	}
	for id := range hosts {
		c.order = append(c.order, id)
	}
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	if spec.HasDuplicates() {
		net.SetDupFunc(c.maybeDup)
	}
	for _, f := range spec.Faults {
		c.schedule(f)
	}
	return c, nil
}

// Quiesced reports whether every scheduled fault event has fired. The
// experiment's completion monitor must not declare a run finished while
// faults are outstanding — a restart scheduled after apparent quiescence
// reopens recovery work.
func (c *Controller) Quiesced() bool { return c.pending == 0 }

// at schedules one fault event, tracking it in the pending count.
func (c *Controller) at(t time.Duration, fn func(now sim.Time)) {
	c.pending++
	c.eng.ScheduleAt(sim.Time(t), func(now sim.Time) {
		c.pending--
		fn(now)
	})
}

func (c *Controller) schedule(f Fault) {
	switch f.Kind {
	case Crash:
		host, purge := f.Host, f.Purge
		c.at(f.At, func(now sim.Time) {
			c.hosts[host].Crash()
			if c.probe != nil {
				c.probe.NoteCrash(host, now)
			}
			if purge {
				for _, id := range c.order {
					if id == host || c.hosts[id].Crashed() {
						continue
					}
					if inv, ok := c.hosts[id].(Invalidator); ok {
						inv.InvalidateHost(host)
					}
				}
			}
		})
	case Restart:
		host := f.Host
		c.at(f.At, func(now sim.Time) {
			c.hosts[host].Restart()
			if c.probe != nil {
				c.probe.NoteRestart(host, now)
			}
		})
	case LinkDown:
		link := f.Link
		c.at(f.At, func(sim.Time) { c.net.SetLinkUp(link, false) })
		if f.Until != 0 {
			c.at(f.Until, func(sim.Time) { c.net.SetLinkUp(link, true) })
		}
	case LinkUp:
		link := f.Link
		c.at(f.At, func(sim.Time) { c.net.SetLinkUp(link, true) })
	case Jitter:
		max := f.Max
		c.at(f.At, func(sim.Time) { c.net.SetMaxJitter(max) })
		c.at(f.Until, func(sim.Time) { c.net.SetMaxJitter(c.baseJitter) })
	case Duplicate:
		prob, delay := f.Prob, f.Delay
		c.at(f.At, func(sim.Time) { c.dupProb, c.dupDelay = prob, delay })
		c.at(f.Until, func(sim.Time) { c.dupProb = 0 })
	case Leave:
		host := f.Host
		c.at(f.At, func(now sim.Time) {
			c.hosts[host].(Member).Leave()
			if c.probe != nil {
				c.probe.NoteLeave(host, now)
			}
			// A leave is an announced departure: unlike a crash, the
			// advert always reaches the group, so every live member
			// drops cached pairs naming the leaver (no Purge opt-in).
			for _, id := range c.order {
				if id == host || c.hosts[id].Crashed() {
					continue
				}
				if m, ok := c.hosts[id].(Member); ok && m.Absent() {
					continue
				}
				if inv, ok := c.hosts[id].(Invalidator); ok {
					inv.InvalidateHost(host)
				}
			}
		})
	case Join:
		host := f.Host
		c.at(f.At, func(now sim.Time) {
			c.hosts[host].(Member).Join()
			if c.probe != nil {
				c.probe.NoteJoin(host, now)
			}
		})
	case QueueCap:
		cap := f.Cap
		c.at(f.At, func(sim.Time) { c.net.SetQueueCap(cap) })
		c.at(f.Until, func(sim.Time) { c.net.SetQueueCap(0) })
	case Starve:
		host := f.Host
		bump := func(d int) {
			if host == topology.None {
				c.starveAll += d
			} else {
				c.starveHost[host] += d
			}
		}
		c.at(f.At, func(sim.Time) { bump(1) })
		c.at(f.Until, func(sim.Time) { bump(-1) })
	}
}

// Drop implements session-message starvation; the experiment harness
// consults it first in the network's drop hook. Only session packets
// are ever affected.
func (c *Controller) Drop(p *netsim.Packet, link topology.LinkID, down bool) bool {
	if !p.Session {
		return false
	}
	if c.starveAll > 0 {
		return true
	}
	return len(c.starveHost) > 0 && c.starveHost[p.From] > 0
}

// maybeDup decides duplicate injection for one delivery. Expedited
// requests are never duplicated: a copy arriving after the replier's
// reply-abstinence window would elicit a second expedited reply, which
// the validator's replies≤requests invariant rightly rejects — the
// duplicate would be manufacturing a protocol violation rather than
// revealing one.
func (c *Controller) maybeDup(p *netsim.Packet, at sim.Time) (time.Duration, bool) {
	if c.dupProb <= 0 {
		return 0, false
	}
	if m, ok := p.Msg.(*srm.RequestMsg); ok && m.Expedited {
		return 0, false
	}
	if c.rng.Float64() >= c.dupProb {
		return 0, false
	}
	return c.dupDelay, true
}
