// Package chaos is a deterministic, seeded fault-injection harness for
// the simulator: it composes churn scenarios — host crashes and
// restarts, link up/down flaps, delay-jitter ramps, duplicate-delivery
// storms and session-message starvation — from a declarative schema and
// schedules every fault through the simulation engine, so a chaos run
// is exactly as reproducible as a fault-free one: same seed, same spec,
// same run fingerprint.
//
// The paper's §3.3 argues CESRM degrades gracefully in dynamic
// environments: cached repliers that crash stop answering expedited
// requests and recovery falls back to SRM. This package turns that
// argument into checkable scenarios, paired with the online invariants
// in internal/stats (post-crash silence, live-receiver reliability,
// bounded SRM fallback).
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cesrm/internal/topology"
)

// Kind discriminates fault types.
type Kind int

const (
	// Crash fail-stops a host at At.
	Crash Kind = iota + 1
	// Restart rejoins a previously crashed host at At with fresh state.
	Restart
	// LinkDown severs a link at At; it is restored at Until when Until
	// is set, otherwise a later LinkUp fault must restore it.
	LinkDown
	// LinkUp restores a severed link at At.
	LinkUp
	// Jitter ramps the delivery-jitter magnitude to Max over [At, Until),
	// then restores the run's baseline magnitude.
	Jitter
	// Duplicate delivers a second, delayed copy of each packet with
	// probability Prob over [At, Until).
	Duplicate
	// Starve drops all session messages (or only those originating at
	// Host, when set) over [At, Until).
	Starve
	// Leave gracefully departs Host at At: the member announces its
	// departure, goes silent without amnesia, and every live endpoint
	// drops cached pairs naming it (the paper's §3.3 membership
	// dynamics, as an advertised departure rather than a fail-stop).
	Leave
	// Join admits Host at At. A host whose earliest membership fault is
	// a Join starts the run absent (a late joiner); its loss detection
	// begins at the first data it hears about after joining, not seq 0.
	Join
	// QueueCap bounds every link queue to Cap outstanding transmissions
	// over [At, Until): arrivals past the cap are tail-dropped
	// deterministically, modelling congestion loss rather than channel
	// loss.
	QueueCap
)

// String returns the kind's spec keyword.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case Jitter:
		return "jitter"
	case Duplicate:
		return "dup"
	case Starve:
		return "starve"
	case Leave:
		return "leave"
	case Join:
		return "join"
	case QueueCap:
		return "qcap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one scheduled fault. Which fields are meaningful depends on
// Kind; Validate rejects inconsistent combinations.
type Fault struct {
	// Kind discriminates the fault.
	Kind Kind
	// At is the virtual instant the fault engages.
	At time.Duration
	// Until ends the window of windowed kinds (Jitter, Duplicate,
	// Starve, and optionally LinkDown auto-restore). Zero means no
	// window end.
	Until time.Duration
	// Host targets Crash and Restart, and optionally restricts Starve
	// to one host's session stream (None = every host's).
	Host topology.NodeID
	// Purge, on a Crash, makes every live endpoint that supports it
	// (CESRM) drop cached pairs naming the dead host, modelling an
	// out-of-band membership announcement.
	Purge bool
	// Link targets LinkDown and LinkUp, identified by its downstream
	// endpoint.
	Link topology.LinkID
	// Max is the Jitter window's delivery-jitter magnitude.
	Max time.Duration
	// Prob is the Duplicate window's per-delivery duplication
	// probability.
	Prob float64
	// Delay is the extra delay of a Duplicate window's second copy.
	Delay time.Duration
	// Cap is the QueueCap window's per-link, per-direction queue bound
	// (queued-or-transmitting packets; at least 1).
	Cap int
}

// Spec is a named, ordered fault composition. Fault order breaks
// same-instant scheduling ties, so it is part of the deterministic
// contract.
type Spec struct {
	Name   string
	Faults []Fault
}

// HasJitter reports whether the spec contains jitter ramps (the harness
// must install a jitter RNG before the run starts).
func (s *Spec) HasJitter() bool { return s.hasKind(Jitter) }

// HasDuplicates reports whether the spec contains duplicate windows.
func (s *Spec) HasDuplicates() bool { return s.hasKind(Duplicate) }

// HasRestart reports whether the spec contains restart faults. Restarts
// are the one fault that invalidates the fully-recovered release
// watermark: a restarted host re-detects and re-recovers everything, so
// no prefix of the stream is ever globally dead. Crash-only, link-flap,
// jitter and duplicate specs leave the watermark sound.
func (s *Spec) HasRestart() bool { return s.hasKind(Restart) }

// HasMembership reports whether the spec contains graceful leave or
// join faults. Membership churn, like restarts, invalidates the
// fully-recovered release watermark: a late joiner's classification
// window opens after packets the watermark may already have released.
func (s *Spec) HasMembership() bool { return s.hasKind(Leave) || s.hasKind(Join) }

// HasQueueCap reports whether the spec contains finite-queue windows.
func (s *Spec) HasQueueCap() bool { return s.hasKind(QueueCap) }

// InitialAbsent returns the hosts whose earliest membership fault is a
// Join: late joiners that start the run outside the group and must not
// start sessions (or be held to reliability) until their Join fires.
func (s *Spec) InitialAbsent() map[topology.NodeID]bool {
	first := make(map[topology.NodeID]Fault)
	for _, f := range s.Faults {
		if f.Kind != Leave && f.Kind != Join {
			continue
		}
		if prev, ok := first[f.Host]; !ok || f.At < prev.At {
			first[f.Host] = f
		}
	}
	absent := make(map[topology.NodeID]bool)
	for h, f := range first {
		if f.Kind == Join {
			absent[h] = true
		}
	}
	return absent
}

func (s *Spec) hasKind(k Kind) bool {
	for _, f := range s.Faults {
		if f.Kind == k {
			return true
		}
	}
	return false
}

// Validate checks the spec against the topology it will run over:
// fault targets must exist (hosts must be receivers — the source cannot
// crash, and routers run no protocol), windows must be well-formed and
// non-overlapping per kind, every severed link must eventually be
// restored (an unrecoverable partition can never reach full
// reliability), and crash/restart sequences per host must alternate.
func (s *Spec) Validate(tree *topology.Tree) error {
	type window struct{ from, to time.Duration }
	var jitterWins, dupWins, qcapWins []window
	crashes := map[topology.NodeID][]Fault{}    // crash/restart per host, spec order
	membership := map[topology.NodeID][]Fault{} // leave/join per host, spec order
	linkEvents := map[topology.LinkID][]Fault{}
	for i, f := range s.Faults {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("chaos: fault %d (%s): %s", i, f.Kind, fmt.Sprintf(format, args...))
		}
		if f.At < 0 {
			return fail("negative instant %v", f.At)
		}
		if f.Until != 0 && f.Until <= f.At {
			return fail("window end %v not after start %v", f.Until, f.At)
		}
		switch f.Kind {
		case Crash, Restart:
			if int(f.Host) < 0 || int(f.Host) >= tree.NumNodes() || !tree.IsReceiver(f.Host) {
				return fail("host %d is not a receiver", f.Host)
			}
			crashes[f.Host] = append(crashes[f.Host], f)
		case LinkDown, LinkUp:
			if f.Link == tree.Root() || int(f.Link) < 0 || int(f.Link) >= tree.NumNodes() {
				return fail("invalid link %d", f.Link)
			}
			linkEvents[f.Link] = append(linkEvents[f.Link], f)
		case Jitter:
			if f.Until == 0 {
				return fail("jitter ramp needs a window end")
			}
			if f.Max <= 0 {
				return fail("non-positive magnitude %v", f.Max)
			}
			jitterWins = append(jitterWins, window{f.At, f.Until})
		case Duplicate:
			if f.Until == 0 {
				return fail("duplicate window needs an end")
			}
			if f.Prob <= 0 || f.Prob > 1 {
				return fail("probability %v outside (0,1]", f.Prob)
			}
			if f.Delay < 0 {
				return fail("negative duplicate delay %v", f.Delay)
			}
			dupWins = append(dupWins, window{f.At, f.Until})
		case Starve:
			if f.Until == 0 {
				return fail("starvation window needs an end")
			}
			if f.Host != topology.None && (int(f.Host) < 0 || int(f.Host) >= tree.NumNodes()) {
				return fail("invalid host %d", f.Host)
			}
		case Leave, Join:
			if int(f.Host) < 0 || int(f.Host) >= tree.NumNodes() || !tree.IsReceiver(f.Host) {
				return fail("host %d is not a receiver", f.Host)
			}
			membership[f.Host] = append(membership[f.Host], f)
		case QueueCap:
			if f.Until == 0 {
				return fail("queue-cap window needs an end")
			}
			if f.Cap < 1 {
				return fail("non-positive queue cap %d", f.Cap)
			}
			qcapWins = append(qcapWins, window{f.At, f.Until})
		default:
			return fail("unknown kind")
		}
	}
	for _, wins := range [][]window{jitterWins, dupWins, qcapWins} {
		wins := append([]window(nil), wins...)
		sort.Slice(wins, func(i, j int) bool { return wins[i].from < wins[j].from })
		for i := 1; i < len(wins); i++ {
			if wins[i].from < wins[i-1].to {
				return fmt.Errorf("chaos: overlapping windows [%v,%v) and [%v,%v)",
					wins[i-1].from, wins[i-1].to, wins[i].from, wins[i].to)
			}
		}
	}
	for h, seq := range crashes {
		sort.SliceStable(seq, func(i, j int) bool { return seq[i].At < seq[j].At })
		down := false
		for _, f := range seq {
			switch f.Kind {
			case Crash:
				if down {
					return fmt.Errorf("chaos: host %d crashed twice without a restart", h)
				}
				down = true
			case Restart:
				if !down {
					return fmt.Errorf("chaos: host %d restarted while live", h)
				}
				down = false
			}
		}
	}
	for h, seq := range membership {
		// Mixing fail-stop and graceful-membership faults on one host
		// would muddle both silence invariants (is the host dead or
		// departed?); keep the two churn vocabularies disjoint per host.
		if len(crashes[h]) > 0 {
			return fmt.Errorf("chaos: host %d mixes crash/restart and leave/join faults", h)
		}
		sort.SliceStable(seq, func(i, j int) bool { return seq[i].At < seq[j].At })
		// A host whose earliest membership fault is a Join starts the
		// run absent (a late joiner); otherwise it starts present.
		present := seq[0].Kind == Leave
		for _, f := range seq {
			switch f.Kind {
			case Leave:
				if !present {
					return fmt.Errorf("chaos: host %d left while absent", h)
				}
				present = false
			case Join:
				if present {
					return fmt.Errorf("chaos: host %d joined while present", h)
				}
				present = true
			}
		}
	}
	for l, seq := range linkEvents {
		sort.SliceStable(seq, func(i, j int) bool { return seq[i].At < seq[j].At })
		down := false
		for _, f := range seq {
			switch f.Kind {
			case LinkDown:
				if down {
					return fmt.Errorf("chaos: link %d downed twice without restoration", l)
				}
				down = f.Until == 0
			case LinkUp:
				if !down {
					return fmt.Errorf("chaos: link %d raised while up", l)
				}
				down = false
			}
		}
		if down {
			return fmt.Errorf("chaos: link %d is severed forever (no restoration)", l)
		}
	}
	return nil
}

// String renders the spec in the compact text format ParseSpec accepts.
// It is a right inverse of ParseSpec: options holding their parse-time
// zero value (Host/Link None, zero Max/Prob/Delay) are omitted rather
// than rendered, since the parser — which rejects negative hosts and
// zero probabilities — could never have produced them from text.
func (s *Spec) String() string {
	parts := make([]string, 0, len(s.Faults))
	for _, f := range s.Faults {
		var b strings.Builder
		fmt.Fprintf(&b, "%s@%s", f.Kind, f.At)
		if f.Until != 0 {
			fmt.Fprintf(&b, "-%s", f.Until)
		}
		var opts []string
		switch f.Kind {
		case Crash, Restart:
			if f.Host != topology.None {
				opts = append(opts, fmt.Sprintf("host=%d", f.Host))
			}
			if f.Purge {
				opts = append(opts, "purge")
			}
		case LinkDown, LinkUp:
			if f.Link != topology.LinkID(topology.None) {
				opts = append(opts, fmt.Sprintf("link=%d", f.Link))
			}
		case Jitter:
			if f.Max != 0 {
				opts = append(opts, fmt.Sprintf("max=%s", f.Max))
			}
		case Duplicate:
			if f.Prob != 0 {
				opts = append(opts, fmt.Sprintf("prob=%s", strconv.FormatFloat(f.Prob, 'g', -1, 64)))
			}
			if f.Delay != 0 {
				opts = append(opts, fmt.Sprintf("delay=%s", f.Delay))
			}
		case Starve:
			if f.Host != topology.None {
				opts = append(opts, fmt.Sprintf("host=%d", f.Host))
			}
		case Leave, Join:
			if f.Host != topology.None {
				opts = append(opts, fmt.Sprintf("host=%d", f.Host))
			}
		case QueueCap:
			if f.Cap != 0 {
				opts = append(opts, fmt.Sprintf("cap=%d", f.Cap))
			}
		}
		if len(opts) > 0 {
			fmt.Fprintf(&b, ":%s", strings.Join(opts, ","))
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses the compact text format used by cesrm-sim -chaos:
// semicolon-separated faults of the form
//
//	kind@at[-until][:key=value[,key=value...]]
//
// for example
//
//	crash@40s:host=3;restart@70s:host=3;link-down@10s-20s:link=5;
//	jitter@30s-50s:max=5ms;dup@5s-90s:prob=0.01,delay=2ms;starve@20s-45s
//
// Instants are Go durations measured from simulation start. The
// returned spec is syntactically checked only; call Validate with the
// run's topology before use.
func ParseSpec(text string) (*Spec, error) {
	s := &Spec{Name: "custom"}
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, fmt.Errorf("chaos: %q: %w", part, err)
		}
		s.Faults = append(s.Faults, f)
	}
	if len(s.Faults) == 0 {
		return nil, fmt.Errorf("chaos: empty spec %q", text)
	}
	return s, nil
}

// maxSpecDuration is the parser's ceiling on every duration in a spec:
// one year of virtual time, orders of magnitude past any trace horizon
// but small enough that horizon arithmetic (fault instants plus back-off
// multiples) can never approach int64 overflow. Durations at or beyond
// it are almost certainly fuzzer artifacts or unit typos, and rejecting
// them here keeps overflow pathologies out of the engine entirely.
const maxSpecDuration = 365 * 24 * time.Hour

// specDuration parses a duration operand, rejecting negative values and
// values beyond the spec ceiling with precise errors. what names the
// operand in errors.
func specDuration(what, text string) (time.Duration, error) {
	d, err := time.ParseDuration(text)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %w", what, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative %s %v", what, d)
	}
	if d >= maxSpecDuration {
		return 0, fmt.Errorf("%s %v at or beyond the %v spec ceiling", what, d, maxSpecDuration)
	}
	return d, nil
}

// faultOptions names the option keys each kind accepts. Rejecting
// inapplicable keys at parse time (rather than silently ignoring them)
// keeps the parser a left inverse of String: every accepted fault
// renders back to text that reparses to the same fault.
var faultOptions = map[Kind]string{
	Crash:     "host,purge",
	Restart:   "host",
	LinkDown:  "link",
	LinkUp:    "link",
	Jitter:    "max",
	Duplicate: "prob,delay",
	Starve:    "host",
	Leave:     "host",
	Join:      "host",
	QueueCap:  "cap",
}

func parseFault(text string) (Fault, error) {
	f := Fault{Host: topology.None, Link: topology.LinkID(topology.None)}
	head, opts, hasOpts := strings.Cut(text, ":")
	kindStr, when, ok := strings.Cut(head, "@")
	if !ok {
		return f, fmt.Errorf("missing @instant")
	}
	switch kindStr {
	case "crash":
		f.Kind = Crash
	case "restart":
		f.Kind = Restart
	case "link-down":
		f.Kind = LinkDown
	case "link-up":
		f.Kind = LinkUp
	case "jitter":
		f.Kind = Jitter
	case "dup":
		f.Kind = Duplicate
	case "starve":
		f.Kind = Starve
	case "leave":
		f.Kind = Leave
	case "join":
		f.Kind = Join
	case "qcap":
		f.Kind = QueueCap
	default:
		return f, fmt.Errorf("unknown fault kind %q", kindStr)
	}
	from, to, windowed := strings.Cut(when, "-")
	at, err := specDuration("instant", from)
	if err != nil {
		return f, err
	}
	f.At = at
	if windowed {
		until, err := specDuration("window end", to)
		if err != nil {
			return f, err
		}
		if until <= f.At {
			return f, fmt.Errorf("window end %v not after instant %v", until, f.At)
		}
		f.Until = until
	}
	if !hasOpts {
		return f, nil
	}
	allowed := faultOptions[f.Kind]
	seen := make(map[string]bool, 4)
	for _, opt := range strings.Split(opts, ",") {
		key, val, hasVal := strings.Cut(opt, "=")
		switch key {
		case "host", "link", "max", "delay", "prob", "purge", "cap":
			if !optionAllowed(allowed, key) {
				return f, fmt.Errorf("option %q does not apply to %s faults", key, f.Kind)
			}
		default:
			return f, fmt.Errorf("unknown option %q", key)
		}
		if seen[key] {
			return f, fmt.Errorf("duplicate option %q", key)
		}
		seen[key] = true
		switch key {
		case "host":
			n, err := strconv.Atoi(val)
			if err != nil {
				return f, fmt.Errorf("bad host: %w", err)
			}
			if n < 0 {
				return f, fmt.Errorf("negative host %d", n)
			}
			f.Host = topology.NodeID(n)
		case "link":
			n, err := strconv.Atoi(val)
			if err != nil {
				return f, fmt.Errorf("bad link: %w", err)
			}
			if n < 0 {
				return f, fmt.Errorf("negative link %d", n)
			}
			f.Link = topology.LinkID(n)
		case "max":
			d, err := specDuration("max", val)
			if err != nil {
				return f, err
			}
			f.Max = d
		case "delay":
			d, err := specDuration("delay", val)
			if err != nil {
				return f, err
			}
			f.Delay = d
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return f, fmt.Errorf("bad prob: %w", err)
			}
			// The open comparison rejects NaN alongside out-of-range
			// values: a NaN probability would otherwise defeat every
			// comparison in the duplicate-injection hook and duplicate
			// all traffic.
			if !(p > 0 && p <= 1) {
				return f, fmt.Errorf("prob %v outside (0,1]", p)
			}
			f.Prob = p
		case "purge":
			if hasVal {
				return f, fmt.Errorf("purge takes no value")
			}
			f.Purge = true
		case "cap":
			n, err := strconv.Atoi(val)
			if err != nil {
				return f, fmt.Errorf("bad cap: %w", err)
			}
			if n < 1 {
				return f, fmt.Errorf("non-positive cap %d", n)
			}
			f.Cap = n
		}
	}
	return f, nil
}

// optionAllowed reports whether key appears in the comma-separated
// allowed list.
func optionAllowed(allowed, key string) bool {
	for _, k := range strings.Split(allowed, ",") {
		if k == key {
			return true
		}
	}
	return false
}

// Scenarios builds the deterministic scenario matrix for a topology:
// one spec per churn dimension plus a combined stressor, with fault
// instants placed at fixed fractions of horizon (the run's
// warmup-plus-data-phase duration). The matrix is what cesrm-bench
// -chaos-matrix sweeps and CI smokes.
func Scenarios(tree *topology.Tree, horizon time.Duration) []*Spec {
	recs := tree.Receivers()
	a := recs[0]
	b := recs[len(recs)/2]
	if b == a && len(recs) > 1 {
		b = recs[1]
	}
	frac := func(num, den int64) time.Duration {
		return horizon * time.Duration(num) / time.Duration(den)
	}
	specs := []*Spec{
		{Name: "crash", Faults: []Fault{
			{Kind: Crash, At: frac(2, 5), Host: a},
		}},
		{Name: "crash-restart", Faults: []Fault{
			{Kind: Crash, At: frac(3, 10), Host: a},
			{Kind: Restart, At: frac(3, 5), Host: a},
		}},
		{Name: "link-flap", Faults: []Fault{
			{Kind: LinkDown, At: frac(1, 4), Until: frac(7, 20), Link: topology.LinkID(a)},
			{Kind: LinkDown, At: frac(11, 20), Until: frac(3, 5), Link: topology.LinkID(a)},
		}},
		{Name: "jitter-ramp", Faults: []Fault{
			{Kind: Jitter, At: frac(1, 5), Until: frac(2, 5), Max: 2 * time.Millisecond},
			{Kind: Jitter, At: frac(1, 2), Until: frac(7, 10), Max: 5 * time.Millisecond},
		}},
		{Name: "dup-storm", Faults: []Fault{
			{Kind: Duplicate, At: frac(1, 10), Until: frac(9, 10), Prob: 0.05, Delay: 3 * time.Millisecond},
		}},
		{Name: "session-starve", Faults: []Fault{
			{Kind: Starve, At: frac(1, 5), Until: frac(1, 2)},
		}},
		{Name: "member-churn", Faults: []Fault{
			{Kind: Leave, At: frac(3, 10), Host: a},
			{Kind: Join, At: frac(13, 20), Host: a},
		}},
		{Name: "late-join", Faults: []Fault{
			{Kind: Join, At: frac(1, 4), Host: a},
		}},
		{Name: "queue-overload", Faults: []Fault{
			{Kind: QueueCap, At: frac(1, 5), Until: frac(3, 5), Cap: 2},
		}},
	}
	if b != a {
		specs = append(specs,
			&Spec{Name: "replier-churn", Faults: []Fault{
				{Kind: Crash, At: frac(1, 4), Host: a, Purge: true},
				{Kind: Crash, At: frac(2, 5), Host: b},
				{Kind: Restart, At: frac(11, 20), Host: a},
			}},
			&Spec{Name: "replier-leave", Faults: []Fault{
				{Kind: Leave, At: frac(2, 5), Host: b},
			}},
			&Spec{Name: "combined", Faults: []Fault{
				{Kind: Crash, At: frac(3, 10), Host: b},
				{Kind: Restart, At: frac(1, 2), Host: b},
				{Kind: LinkDown, At: frac(7, 20), Until: frac(9, 20), Link: topology.LinkID(a)},
				{Kind: Duplicate, At: frac(1, 5), Until: frac(4, 5), Prob: 0.02, Delay: 2 * time.Millisecond},
				{Kind: Starve, At: frac(3, 5), Until: frac(7, 10)},
			}},
		)
	}
	return specs
}
