package trace

import (
	"fmt"
	"math"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// GenSpec parameterizes synthetic trace generation.
//
// Losses are produced by independent per-link Gilbert (two-state Markov)
// processes: each link alternates between a good state (no loss) and a
// bad state (loss), giving bursty, temporally correlated loss — the
// packet-loss locality that Yajnik et al. measured on the MBone and that
// CESRM exploits. Spatial locality follows from the tree: one bad link
// produces correlated losses at every receiver below it.
type GenSpec struct {
	// Name labels the resulting trace.
	Name string
	// Topology shapes the random dissemination tree.
	Topology topology.GenSpec
	// NumPackets is the number of packets the source transmits.
	NumPackets int
	// Period is the constant transmission interval.
	Period time.Duration
	// TargetLosses is the desired aggregate loss count across all
	// receivers; per-link loss rates are calibrated so the expected
	// total matches it. The realized count fluctuates around the target.
	TargetLosses int
	// MeanBurstLen is the mean number of consecutive packets a link
	// drops once it enters the bad state. Zero selects the default of 8.
	MeanBurstLen float64
	// LossyLinkFraction is the probability a link is drawn from the
	// high-loss weight band (zero selects the default of 0.35); the MBone
	// traces concentrate loss on a few consistently bad links.
	LossyLinkFraction float64
	// Seed drives all randomness.
	Seed int64
}

// gilbertChain is one link's two-state Markov loss process.
type gilbertChain struct {
	pGB float64 // P(good -> bad)
	pBG float64 // P(bad -> good)
	bad bool
}

func (g *gilbertChain) step(rng *sim.RNG) bool {
	if g.bad {
		if rng.Float64() < g.pBG {
			g.bad = false
		}
	} else {
		if rng.Float64() < g.pGB {
			g.bad = true
		}
	}
	return g.bad
}

// Generate builds a synthetic trace from spec. Generation is fully
// deterministic in spec.Seed. Receiver counts are unbounded: traces up
// to 64 receivers keep the uint64 loss-pattern fast path everywhere
// downstream, larger ones (the "tens of thousands of receivers"
// workloads) take the wide-pattern paths.
func Generate(spec GenSpec) (*Trace, error) {
	if spec.NumPackets <= 0 {
		return nil, fmt.Errorf("trace: NumPackets = %d", spec.NumPackets)
	}
	if spec.Period <= 0 {
		return nil, fmt.Errorf("trace: Period = %v", spec.Period)
	}
	if spec.TargetLosses < 0 || spec.TargetLosses > spec.NumPackets*spec.Topology.Receivers {
		return nil, fmt.Errorf("trace: TargetLosses = %d out of range", spec.TargetLosses)
	}
	meanBurst := spec.MeanBurstLen
	if meanBurst == 0 {
		meanBurst = 8
	}
	if meanBurst < 1 {
		return nil, fmt.Errorf("trace: MeanBurstLen = %v (< 1)", meanBurst)
	}
	lossyFrac := spec.LossyLinkFraction
	if lossyFrac == 0 {
		lossyFrac = 0.35
	}

	rng := sim.NewRNG(spec.Seed)
	treeRNG := rng.Split()
	weightRNG := rng.Split()
	chainRNG := rng.Split()

	tree, err := topology.Generate(treeRNG, spec.Topology)
	if err != nil {
		return nil, fmt.Errorf("trace: generating topology: %w", err)
	}

	// Per-link relative loss weights: a minority of links carry most of
	// the loss, the rest are nearly clean. Indexed by the link's NodeID
	// (dense slices, not maps, so 10k-receiver trees generate in seconds;
	// the draw order over links is unchanged, keeping every existing
	// catalog trace byte-identical).
	links := tree.Links()
	weight := make([]float64, tree.NumNodes())
	for _, l := range links {
		if weightRNG.Float64() < lossyFrac {
			weight[l] = 0.5 + 0.5*weightRNG.Float64() // hot link
		} else {
			weight[l] = 0.01 + 0.09*weightRNG.Float64() // quiet link
		}
	}

	// Calibrate the global scale alpha so the expected aggregate loss
	// count matches the target:
	//   E[losses] = sum_r N * (1 - prod_{l in path(s,r)} (1 - alpha*w_l))
	// which is monotone increasing in alpha. Solve by bisection.
	receivers := tree.Receivers()
	paths := make([][]topology.LinkID, len(receivers))
	for i, r := range receivers {
		paths[i] = tree.PathLinks(tree.Root(), r)
	}
	maxW := 0.0
	for _, w := range weight {
		if w > maxW {
			maxW = w
		}
	}
	expected := func(alpha float64) float64 {
		total := 0.0
		for _, path := range paths {
			keep := 1.0
			for _, l := range path {
				keep *= 1 - alpha*weight[l]
			}
			total += 1 - keep
		}
		return total * float64(spec.NumPackets)
	}
	target := float64(spec.TargetLosses)
	lo, hi := 0.0, 0.95/maxW
	if expected(hi) < target {
		return nil, fmt.Errorf("trace: target %d losses unreachable (max expected %.0f)", spec.TargetLosses, expected(hi))
	}
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if expected(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	alpha := (lo + hi) / 2

	// realize runs the per-link Gilbert chains at scale alpha and
	// produces loss sequences plus ground truth. The chain RNG seed is
	// fixed per attempt index so the calibration loop below converges
	// smoothly rather than chasing fresh noise each pass.
	realize := func(alpha float64, seed int64) ([][]bool, [][]topology.LinkID, int) {
		crng := sim.NewRNG(seed)
		chains := make([]gilbertChain, tree.NumNodes())
		for _, l := range links {
			rate := alpha * weight[l]
			if rate > 0.97 {
				rate = 0.97
			}
			pBG := 1 / meanBurst
			pGB := rate * pBG / (1 - rate)
			chains[l] = gilbertChain{pGB: pGB, pBG: pBG, bad: crng.Float64() < rate}
		}
		loss := make([][]bool, len(receivers))
		for i := range loss {
			loss[i] = make([]bool, spec.NumPackets)
		}
		total := 0
		trueDrops := make([][]topology.LinkID, spec.NumPackets)
		badNow := make([]bool, tree.NumNodes())
		for pkt := 0; pkt < spec.NumPackets; pkt++ {
			anyBad := false
			for _, l := range links {
				badNow[l] = chains[l].step(crng)
				anyBad = anyBad || badNow[l]
			}
			if !anyBad {
				continue
			}
			for ri, path := range paths {
				for _, l := range path {
					if badNow[l] {
						loss[ri][pkt] = true
						total++
						break
					}
				}
			}
			// Minimal dropping links: bad links whose upstream path is
			// clean (the packet actually reached and died on them).
			var drops []topology.LinkID
			for _, l := range links {
				if !badNow[l] {
					continue
				}
				clean := true
				for p := tree.Parent(l); p != tree.Root() && p != topology.None; p = tree.Parent(p) {
					if badNow[p] {
						clean = false
						break
					}
				}
				if clean {
					drops = append(drops, l)
				}
			}
			trueDrops[pkt] = drops
		}
		return loss, trueDrops, total
	}

	// Burst processes realize with high variance, so refine alpha
	// against the realized count. The realized count is a noisy,
	// non-smooth function of alpha (bursts quantize coarsely), so a pure
	// multiplicative update can oscillate; keep the best realization
	// seen. Deterministic: the chain seed is fixed and the iteration
	// count bounded.
	chainSeed := chainRNG.Int63()
	maxAlpha := 0.95 / maxW
	relErr := func(r int) float64 {
		return math.Abs(float64(r)-target) / math.Max(target, 1)
	}
	loss, trueDrops, realized := realize(alpha, chainSeed)
	bestLoss, bestDrops, bestErr := loss, trueDrops, relErr(realized)
	for iter := 0; iter < 12 && realized > 0 && bestErr > 0.05; iter++ {
		adj := target / float64(realized)
		// Damp the update: burst quantization makes full multiplicative
		// steps overshoot.
		alpha *= 1 + 0.7*(adj-1)
		if alpha > maxAlpha {
			alpha = maxAlpha
		}
		loss, trueDrops, realized = realize(alpha, chainSeed)
		if e := relErr(realized); e < bestErr {
			bestLoss, bestDrops, bestErr = loss, trueDrops, e
		}
	}
	loss, trueDrops = bestLoss, bestDrops

	tr := &Trace{
		Name:      spec.Name,
		Tree:      tree,
		Period:    spec.Period,
		Loss:      loss,
		TrueDrops: trueDrops,
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// MustGenerate is Generate panicking on error, for the static catalog.
func MustGenerate(spec GenSpec) *Trace {
	t, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// CalibrationError returns the relative deviation of the realized loss
// count from the generation target, |realized-target|/target. It is a
// generator-quality metric used by tests and the trace tool.
func CalibrationError(t *Trace, target int) float64 {
	if target == 0 {
		return 0
	}
	return math.Abs(float64(t.TotalLosses())-float64(target)) / float64(target)
}
