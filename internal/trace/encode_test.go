package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cesrm/internal/topology"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	orig := tinyTrace(t)
	var buf bytes.Buffer
	if err := Marshal(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Period != orig.Period {
		t.Fatalf("metadata changed: %q %v", got.Name, got.Period)
	}
	if got.NumPackets() != orig.NumPackets() || got.NumReceivers() != orig.NumReceivers() {
		t.Fatal("shape changed")
	}
	for r := range orig.Loss {
		for i := range orig.Loss[r] {
			if got.Loss[r][i] != orig.Loss[r][i] {
				t.Fatalf("loss[%d][%d] changed", r, i)
			}
		}
	}
	pv := got.Tree.ParentVector()
	for i, p := range orig.Tree.ParentVector() {
		if pv[i] != p {
			t.Fatal("tree changed")
		}
	}
}

func TestRoundTripGeneratedTrace(t *testing.T) {
	tr := MustGenerate(GenSpec{
		Name:         "roundtrip",
		Topology:     topology.GenSpec{Receivers: 9, Depth: 4},
		NumPackets:   3000,
		Period:       40 * time.Millisecond,
		TargetLosses: 900,
		Seed:         11,
	})
	var buf bytes.Buffer
	if err := Marshal(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalLosses() != tr.TotalLosses() {
		t.Fatalf("losses %d != %d", got.TotalLosses(), tr.TotalLosses())
	}
	if got.MeanBurstLength() != tr.MeanBurstLength() {
		t.Fatal("burst structure changed by round trip")
	}
}

func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "not-a-trace\n",
		"truncated":     "cesrm-trace v1\nname x\n",
		"bad period":    "cesrm-trace v1\nname x\nperiod nope\nend\n",
		"bad packets":   "cesrm-trace v1\npackets ten\nend\n",
		"bad tree":      "cesrm-trace v1\ntree 0 0\nend\n",
		"tree garbage":  "cesrm-trace v1\ntree a b\nend\n",
		"early recv":    "cesrm-trace v1\nrecv 5\nend\n",
		"unknown field": "cesrm-trace v1\nbogus 1\nend\n",
		"short rle":     "cesrm-trace v1\nname x\nperiod 80ms\npackets 4\ntree -1 0 1 1\nrecv 2\nrecv 4\nend\n",
		"negative rle":  "cesrm-trace v1\nname x\nperiod 80ms\npackets 4\ntree -1 0 1 1\nrecv -4\nrecv 4\nend\n",
	}
	for name, in := range cases {
		if _, err := Unmarshal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func TestMarshalRejectsInvalidTrace(t *testing.T) {
	tr := tinyTrace(t)
	tr.Period = 0
	var buf bytes.Buffer
	if err := Marshal(&buf, tr); err == nil {
		t.Fatal("marshalled invalid trace")
	}
}

func TestPropertyRLERoundTrip(t *testing.T) {
	f := func(row []bool) bool {
		if len(row) == 0 {
			return true
		}
		got, err := rleDecode(rleEncode(row), len(row))
		if err != nil {
			return false
		}
		for i := range row {
			if got[i] != row[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRLELeadingLoss(t *testing.T) {
	row := []bool{true, true, false}
	runs := rleEncode(row)
	if runs[0] != 0 {
		t.Fatalf("leading-loss row must start with zero run, got %v", runs)
	}
	got, err := rleDecode(runs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatal("leading-loss round trip failed")
		}
	}
}
