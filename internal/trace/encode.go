package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"cesrm/internal/topology"
)

// The on-disk trace format is a line-oriented text format:
//
//	cesrm-trace v1
//	name <name>
//	period <duration>
//	packets <n>
//	tree <parent parent ...>        (-1 marks the root)
//	recv <rle>                      (one line per receiver, tree order)
//	end
//
// Loss sequences are run-length encoded as alternating run lengths
// starting with a received (0) run: "100 3 42 1" means 100 received,
// 3 lost, 42 received, 1 lost. Ground-truth drop links are not
// serialized; they are a property of synthetic generation only.

// Marshal writes t to w in the text format.
func Marshal(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "cesrm-trace v1")
	fmt.Fprintf(bw, "name %s\n", t.Name)
	fmt.Fprintf(bw, "period %s\n", t.Period)
	fmt.Fprintf(bw, "packets %d\n", t.NumPackets())
	bw.WriteString("tree")
	for _, p := range t.Tree.ParentVector() {
		fmt.Fprintf(bw, " %d", p)
	}
	bw.WriteByte('\n')
	for _, row := range t.Loss {
		bw.WriteString("recv")
		for _, run := range rleEncode(row) {
			fmt.Fprintf(bw, " %d", run)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Unmarshal parses a trace in the text format.
func Unmarshal(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if hdr != "cesrm-trace v1" {
		return nil, fmt.Errorf("trace: bad header %q", hdr)
	}
	t := &Trace{}
	packets := -1
	for {
		l, err := line()
		if err != nil {
			return nil, err
		}
		if l == "end" {
			break
		}
		field, rest, _ := strings.Cut(l, " ")
		switch field {
		case "name":
			t.Name = rest
		case "period":
			p, err := time.ParseDuration(rest)
			if err != nil {
				return nil, fmt.Errorf("trace: bad period: %w", err)
			}
			t.Period = p
		case "packets":
			packets, err = strconv.Atoi(rest)
			if err != nil {
				return nil, fmt.Errorf("trace: bad packet count: %w", err)
			}
		case "tree":
			parents, err := parseInts(rest)
			if err != nil {
				return nil, fmt.Errorf("trace: bad tree: %w", err)
			}
			pv := make([]topology.NodeID, len(parents))
			for i, p := range parents {
				pv[i] = topology.NodeID(p)
			}
			tree, err := topology.New(pv)
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			t.Tree = tree
		case "recv":
			if packets < 0 {
				return nil, fmt.Errorf("trace: recv line before packets line")
			}
			runs, err := parseInts(rest)
			if err != nil {
				return nil, fmt.Errorf("trace: bad recv line: %w", err)
			}
			row, err := rleDecode(runs, packets)
			if err != nil {
				return nil, err
			}
			t.Loss = append(t.Loss, row)
		default:
			return nil, fmt.Errorf("trace: unknown field %q", field)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseInts(s string) ([]int, error) {
	fields := strings.Fields(s)
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// rleEncode encodes a bool row as alternating run lengths starting with
// a false (received) run; a leading zero appears when the row starts
// with a loss.
func rleEncode(row []bool) []int {
	var runs []int
	cur := false
	run := 0
	for _, v := range row {
		if v == cur {
			run++
			continue
		}
		runs = append(runs, run)
		cur = v
		run = 1
	}
	runs = append(runs, run)
	return runs
}

// rleDecode reverses rleEncode, checking the total length.
func rleDecode(runs []int, packets int) ([]bool, error) {
	row := make([]bool, 0, packets)
	cur := false
	for _, run := range runs {
		if run < 0 {
			return nil, fmt.Errorf("trace: negative run length %d", run)
		}
		for i := 0; i < run; i++ {
			row = append(row, cur)
		}
		cur = !cur
	}
	if len(row) != packets {
		return nil, fmt.Errorf("trace: run lengths sum to %d, want %d packets", len(row), packets)
	}
	return row, nil
}
