package trace

import (
	"testing"
	"time"

	"cesrm/internal/topology"
)

// tinyTrace builds a hand-crafted 2-receiver, 4-packet trace:
//
//	0 -> 1 -> {2, 3}
func tinyTrace(t *testing.T) *Trace {
	t.Helper()
	tree := topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1})
	return &Trace{
		Name:   "tiny",
		Tree:   tree,
		Period: 80 * time.Millisecond,
		Loss: [][]bool{
			{false, true, true, false},  // receiver 2
			{false, false, true, false}, // receiver 3
		},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := tinyTrace(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	good := tinyTrace(t)

	noTree := *good
	noTree.Tree = nil
	if noTree.Validate() == nil {
		t.Error("accepted nil tree")
	}

	badRows := *good
	badRows.Loss = good.Loss[:1]
	if badRows.Validate() == nil {
		t.Error("accepted wrong receiver count")
	}

	ragged := *good
	ragged.Loss = [][]bool{{false}, {false, true}}
	if ragged.Validate() == nil {
		t.Error("accepted ragged loss rows")
	}

	noPeriod := *good
	noPeriod.Period = 0
	if noPeriod.Validate() == nil {
		t.Error("accepted zero period")
	}

	badDrops := *good
	badDrops.TrueDrops = make([][]topology.LinkID, 1)
	if badDrops.Validate() == nil {
		t.Error("accepted wrong TrueDrops length")
	}
}

func TestBasicAccessors(t *testing.T) {
	tr := tinyTrace(t)
	if tr.NumPackets() != 4 || tr.NumReceivers() != 2 {
		t.Fatalf("packets=%d receivers=%d", tr.NumPackets(), tr.NumReceivers())
	}
	if tr.Duration() != 320*time.Millisecond {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.TotalLosses() != 3 {
		t.Fatalf("TotalLosses = %d, want 3", tr.TotalLosses())
	}
	if tr.ReceiverLosses(0) != 2 || tr.ReceiverLosses(1) != 1 {
		t.Fatal("per-receiver loss counts wrong")
	}
	if !tr.Lost(0, 1) || tr.Lost(1, 0) {
		t.Fatal("Lost() wrong")
	}
	if tr.ReceiverIndex(2) != 0 || tr.ReceiverIndex(3) != 1 || tr.ReceiverIndex(0) != -1 {
		t.Fatal("ReceiverIndex wrong")
	}
}

func TestLossPattern(t *testing.T) {
	tr := tinyTrace(t)
	if p := tr.LossPattern(0); p != 0 {
		t.Fatalf("pattern(0) = %b, want 0", p)
	}
	if p := tr.LossPattern(1); p != 0b01 {
		t.Fatalf("pattern(1) = %b, want 01", p)
	}
	if p := tr.LossPattern(2); p != 0b11 {
		t.Fatalf("pattern(2) = %b, want 11", p)
	}
}

func TestComputeStats(t *testing.T) {
	s := tinyTrace(t).ComputeStats()
	if s.Receivers != 2 || s.TreeDepth != 2 || s.Packets != 4 || s.Losses != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestMeanBurstLength(t *testing.T) {
	tr := tinyTrace(t)
	// Receiver 0: one burst of 2; receiver 1: one burst of 1 => 3/2.
	if got := tr.MeanBurstLength(); got != 1.5 {
		t.Fatalf("MeanBurstLength = %v, want 1.5", got)
	}
	empty := *tr
	empty.Loss = [][]bool{{false, false}, {false, false}}
	if got := empty.MeanBurstLength(); got != 0 {
		t.Fatalf("lossless burst length = %v, want 0", got)
	}
}

func TestGenerateHitsTargetApproximately(t *testing.T) {
	spec := GenSpec{
		Name:         "synthetic",
		Topology:     topology.GenSpec{Receivers: 10, Depth: 4},
		NumPackets:   20000,
		Period:       80 * time.Millisecond,
		TargetLosses: 6000,
		Seed:         7,
	}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if e := CalibrationError(tr, spec.TargetLosses); e > 0.25 {
		t.Fatalf("calibration error %.2f (losses=%d target=%d)", e, tr.TotalLosses(), spec.TargetLosses)
	}
	if tr.Tree.NumReceivers() != 10 || tr.Tree.MaxDepth() != 4 {
		t.Fatalf("topology %v does not match spec", tr.Tree)
	}
}

func TestGenerateProducesBurstyLoss(t *testing.T) {
	spec := GenSpec{
		Name:         "bursty",
		Topology:     topology.GenSpec{Receivers: 8, Depth: 4},
		NumPackets:   30000,
		Period:       80 * time.Millisecond,
		TargetLosses: 9000,
		MeanBurstLen: 8,
		Seed:         21,
	}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Burst structure is the loss locality CESRM exploits; mean run
	// length must be well above the Bernoulli expectation (~1/(1-p)).
	if got := tr.MeanBurstLength(); got < 3 {
		t.Fatalf("MeanBurstLength = %.2f, want >= 3 (bursty)", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{
		Name:         "det",
		Topology:     topology.GenSpec{Receivers: 6, Depth: 3},
		NumPackets:   5000,
		Period:       40 * time.Millisecond,
		TargetLosses: 1500,
		Seed:         5,
	}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if a.TotalLosses() != b.TotalLosses() {
		t.Fatal("same seed produced different traces")
	}
	for r := range a.Loss {
		for i := range a.Loss[r] {
			if a.Loss[r][i] != b.Loss[r][i] {
				t.Fatal("same seed produced different loss sequences")
			}
		}
	}
}

func TestGenerateTrueDropsConsistent(t *testing.T) {
	spec := GenSpec{
		Name:         "truth",
		Topology:     topology.GenSpec{Receivers: 8, Depth: 4},
		NumPackets:   4000,
		Period:       80 * time.Millisecond,
		TargetLosses: 1600,
		Seed:         3,
	}
	tr := MustGenerate(spec)
	// The ground-truth drop set must explain each packet's loss pattern:
	// receiver r lost packet i iff some true drop link is on r's path.
	root := tr.Tree.Root()
	for i := 0; i < tr.NumPackets(); i++ {
		drops := tr.TrueDrops[i]
		for ri, r := range tr.Tree.Receivers() {
			onPath := false
			for _, l := range tr.Tree.PathLinks(root, r) {
				for _, d := range drops {
					if l == d {
						onPath = true
					}
				}
			}
			if onPath != tr.Lost(ri, i) {
				t.Fatalf("packet %d receiver %d: ground truth does not explain loss pattern", i, ri)
			}
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	base := GenSpec{
		Topology:     topology.GenSpec{Receivers: 5, Depth: 3},
		NumPackets:   100,
		Period:       time.Millisecond,
		TargetLosses: 10,
	}
	cases := []func(*GenSpec){
		func(s *GenSpec) { s.NumPackets = 0 },
		func(s *GenSpec) { s.Period = 0 },
		func(s *GenSpec) { s.TargetLosses = -1 },
		func(s *GenSpec) { s.TargetLosses = 10000 },
		func(s *GenSpec) { s.Topology.Receivers = 0 },
		func(s *GenSpec) { s.MeanBurstLen = 0.5 },
	}
	for i, mutate := range cases {
		spec := base
		mutate(&spec)
		if _, err := Generate(spec); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}

func TestCatalogMatchesTable1(t *testing.T) {
	if len(Catalog) != 14 {
		t.Fatalf("catalog has %d traces, want 14", len(Catalog))
	}
	// Spot-check the first and last rows against Table 1.
	if e := Catalog[0]; e.Name != "RFV960419" || e.Receivers != 12 || e.TreeDepth != 6 ||
		e.Period != 80*time.Millisecond || e.Packets != 45001 || e.Losses != 24086 {
		t.Fatalf("row 1 = %+v", e)
	}
	if e := Catalog[13]; e.Name != "WRN951218" || e.Receivers != 8 || e.TreeDepth != 3 ||
		e.Packets != 69994 || e.Losses != 43578 {
		t.Fatalf("row 14 = %+v", e)
	}
	for i, e := range Catalog {
		if e.Index != i+1 {
			t.Errorf("row %d has index %d", i, e.Index)
		}
	}
}

func TestCatalogLoadScaledShape(t *testing.T) {
	for _, e := range Catalog[:3] {
		tr, err := e.Load(0.02)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if tr.NumReceivers() != e.Receivers {
			t.Errorf("%s: receivers %d, want %d", e.Name, tr.NumReceivers(), e.Receivers)
		}
		if tr.Tree.MaxDepth() != e.TreeDepth {
			t.Errorf("%s: depth %d, want %d", e.Name, tr.Tree.MaxDepth(), e.TreeDepth)
		}
		wantRate := float64(e.Losses) / float64(e.Packets*e.Receivers)
		gotRate := float64(tr.TotalLosses()) / float64(tr.NumPackets()*tr.NumReceivers())
		if gotRate < wantRate*0.5 || gotRate > wantRate*1.6 {
			t.Errorf("%s: loss rate %.3f, want about %.3f", e.Name, gotRate, wantRate)
		}
	}
}

func TestSpecRejectsBadScale(t *testing.T) {
	if _, err := Catalog[0].Spec(0); err == nil {
		t.Fatal("accepted scale 0")
	}
	if _, err := Catalog[0].Spec(-1); err == nil {
		t.Fatal("accepted negative scale")
	}
	// Scales above 1 extrapolate beyond the recorded volumes and are
	// valid (memory-scaling experiments use them).
	spec, err := Catalog[0].Spec(2)
	if err != nil {
		t.Fatalf("rejected scale 2: %v", err)
	}
	if spec.NumPackets != 2*Catalog[0].Packets {
		t.Fatalf("scale 2 packets = %d, want %d", spec.NumPackets, 2*Catalog[0].Packets)
	}
}

func TestByName(t *testing.T) {
	e, ok := ByName("UCB960424")
	if !ok || e.Index != 3 {
		t.Fatalf("ByName = %+v, %v", e, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("found nonexistent trace")
	}
}

func BenchmarkGenerate(b *testing.B) {
	spec := GenSpec{
		Name:         "bench",
		Topology:     topology.GenSpec{Receivers: 10, Depth: 4},
		NumPackets:   10000,
		Period:       80 * time.Millisecond,
		TargetLosses: 3000,
		Seed:         1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeLocality(b *testing.B) {
	tr := MustGenerate(GenSpec{
		Name:         "bench",
		Topology:     topology.GenSpec{Receivers: 10, Depth: 4},
		NumPackets:   20000,
		Period:       80 * time.Millisecond,
		TargetLosses: 6000,
		Seed:         1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeLocality(tr)
	}
}
