// Package trace models IP multicast transmission traces in the style of
// Yajnik et al. (GLOBECOM 1996), the data the paper's evaluation replays.
//
// A trace couples a static multicast tree with per-receiver binary loss
// sequences: loss(r)(i) = 1 iff receiver r never received packet i from
// the original transmission. The original MBone traces are not publicly
// available, so this package also provides a calibrated synthetic
// generator (see gilbert.go) and a catalog reproducing the shape of the
// paper's Table 1 (see catalog.go).
package trace

import (
	"fmt"
	"time"

	"cesrm/internal/topology"
)

// Trace is a single-source IP multicast transmission trace.
type Trace struct {
	// Name identifies the trace (e.g. "RFV960419").
	Name string
	// Tree is the static dissemination topology; its root is the source
	// and its leaves are the receivers.
	Tree *topology.Tree
	// Period is the constant inter-packet transmission interval.
	Period time.Duration
	// Loss holds per-receiver binary loss sequences, indexed
	// [receiverIndex][packet], with receiver indices following
	// Tree.Receivers() order.
	Loss [][]bool
	// TrueDrops optionally records, per packet, the ground-truth links
	// that dropped the packet (minimal: links whose upstream path was
	// loss-free). Synthetic traces carry it for validating the link
	// inference of §4.2; it must never feed the simulation itself.
	TrueDrops [][]topology.LinkID
}

// Validate checks internal consistency.
func (t *Trace) Validate() error {
	if t.Tree == nil {
		return fmt.Errorf("trace %q: nil tree", t.Name)
	}
	if len(t.Loss) != t.Tree.NumReceivers() {
		return fmt.Errorf("trace %q: %d loss rows for %d receivers", t.Name, len(t.Loss), t.Tree.NumReceivers())
	}
	if t.Period <= 0 {
		return fmt.Errorf("trace %q: non-positive period %v", t.Name, t.Period)
	}
	n := -1
	for i, row := range t.Loss {
		if n == -1 {
			n = len(row)
		} else if len(row) != n {
			return fmt.Errorf("trace %q: receiver %d has %d packets, others %d", t.Name, i, len(row), n)
		}
	}
	if n <= 0 {
		return fmt.Errorf("trace %q: no packets", t.Name)
	}
	if t.TrueDrops != nil && len(t.TrueDrops) != n {
		return fmt.Errorf("trace %q: %d TrueDrops entries for %d packets", t.Name, len(t.TrueDrops), n)
	}
	return nil
}

// NumPackets returns the number of packets transmitted.
func (t *Trace) NumPackets() int {
	if len(t.Loss) == 0 {
		return 0
	}
	return len(t.Loss[0])
}

// NumReceivers returns the receiver count.
func (t *Trace) NumReceivers() int { return len(t.Loss) }

// Duration returns the transmission duration, NumPackets * Period.
func (t *Trace) Duration() time.Duration {
	return time.Duration(t.NumPackets()) * t.Period
}

// Lost reports whether receiver index r lost packet i.
func (t *Trace) Lost(r, i int) bool { return t.Loss[r][i] }

// ReceiverIndex maps a receiver node to its row in Loss, or -1.
func (t *Trace) ReceiverIndex(n topology.NodeID) int {
	for i, r := range t.Tree.Receivers() {
		if r == n {
			return i
		}
	}
	return -1
}

// TotalLosses returns the aggregate loss count across all receivers
// (the "# of Losses" column of Table 1).
func (t *Trace) TotalLosses() int {
	total := 0
	for _, row := range t.Loss {
		for _, lost := range row {
			if lost {
				total++
			}
		}
	}
	return total
}

// ReceiverLosses returns the loss count of receiver index r.
func (t *Trace) ReceiverLosses(r int) int {
	n := 0
	for _, lost := range t.Loss[r] {
		if lost {
			n++
		}
	}
	return n
}

// LossPattern returns the set of receiver indices that lost packet i,
// encoded as a bitmask. A zero pattern means nobody lost the packet.
// It is the fast path for the paper-scale traces (<= 17 receivers) and
// panics beyond 64 receivers, where a bitmask would silently drop
// bits; wide traces use LostReceivers instead.
func (t *Trace) LossPattern(i int) uint64 {
	if len(t.Loss) > 64 {
		panic(fmt.Sprintf("trace %q: LossPattern on %d receivers (> 64); use LostReceivers", t.Name, len(t.Loss)))
	}
	var p uint64
	for r := range t.Loss {
		if t.Loss[r][i] {
			p |= 1 << uint(r)
		}
	}
	return p
}

// LostReceivers appends the indices of the receivers that lost packet i
// to buf (ascending) and returns it. It is the any-width counterpart of
// LossPattern; an empty result means nobody lost the packet.
func (t *Trace) LostReceivers(i int, buf []int) []int {
	for r := range t.Loss {
		if t.Loss[r][i] {
			buf = append(buf, r)
		}
	}
	return buf
}

// Stats summarizes a trace for Table 1 style reporting.
type Stats struct {
	Name      string
	Receivers int
	TreeDepth int
	Period    time.Duration
	Duration  time.Duration
	Packets   int
	Losses    int
}

// ComputeStats derives the Table 1 row for the trace.
func (t *Trace) ComputeStats() Stats {
	return Stats{
		Name:      t.Name,
		Receivers: t.NumReceivers(),
		TreeDepth: t.Tree.MaxDepth(),
		Period:    t.Period,
		Duration:  t.Duration(),
		Packets:   t.NumPackets(),
		Losses:    t.TotalLosses(),
	}
}

// String formats the stats as a Table 1 style row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s rcvrs=%-3d depth=%d period=%v dur=%v pkts=%d losses=%d",
		s.Name, s.Receivers, s.TreeDepth, s.Period, s.Duration.Round(time.Second), s.Packets, s.Losses)
}

// MeanBurstLength returns the average length of consecutive-loss runs
// across all receivers, a direct measure of the temporal loss locality
// CESRM exploits. Returns 0 when the trace has no losses.
func (t *Trace) MeanBurstLength() float64 {
	bursts, lost := 0, 0
	for _, row := range t.Loss {
		in := false
		for _, l := range row {
			if l {
				lost++
				if !in {
					bursts++
					in = true
				}
			} else {
				in = false
			}
		}
	}
	if bursts == 0 {
		return 0
	}
	return float64(lost) / float64(bursts)
}
