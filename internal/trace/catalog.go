package trace

import (
	"fmt"
	"time"

	"cesrm/internal/topology"
)

// CatalogEntry describes one row of the paper's Table 1 together with
// the generation parameters that reproduce its shape synthetically.
type CatalogEntry struct {
	// Index is the 1-based trace number used throughout the paper's
	// figures.
	Index int
	// Name is the trace's source-and-date label.
	Name string
	// Receivers, TreeDepth, Period, Packets and Losses mirror the
	// corresponding Table 1 columns.
	Receivers int
	TreeDepth int
	Period    time.Duration
	Packets   int
	Losses    int
	// Seed makes generation reproducible per trace.
	Seed int64
}

// Catalog lists the 14 Yajnik et al. traces exactly as reported in
// Table 1 of the paper.
var Catalog = []CatalogEntry{
	{1, "RFV960419", 12, 6, 80 * time.Millisecond, 45001, 24086, 9601},
	{2, "RFV960508", 10, 5, 40 * time.Millisecond, 148970, 55987, 9602},
	{3, "UCB960424", 15, 7, 40 * time.Millisecond, 93734, 33506, 9603},
	{4, "WRN950919", 8, 4, 80 * time.Millisecond, 17637, 10276, 9604},
	{5, "WRN951030", 10, 4, 80 * time.Millisecond, 57030, 15879, 9605},
	{6, "WRN951101", 9, 5, 80 * time.Millisecond, 41751, 18911, 9606},
	{7, "WRN951113", 12, 5, 80 * time.Millisecond, 46443, 29686, 9607},
	{8, "WRN951114", 10, 4, 80 * time.Millisecond, 38539, 11803, 9608},
	{9, "WRN951128", 9, 4, 80 * time.Millisecond, 44956, 33040, 9609},
	{10, "WRN951204", 11, 5, 80 * time.Millisecond, 45404, 16814, 9610},
	{11, "WRN951211", 11, 4, 80 * time.Millisecond, 72519, 44649, 9611},
	{12, "WRN951214", 7, 4, 80 * time.Millisecond, 38724, 20872, 9612},
	{13, "WRN951216", 8, 3, 80 * time.Millisecond, 50202, 37833, 9613},
	{14, "WRN951218", 8, 3, 80 * time.Millisecond, 69994, 43578, 9614},
}

// Extended lists synthetic stress entries beyond the paper's Table 1.
// They are deliberately kept out of Catalog: suites, goldens and the
// "all traces" defaults stay pinned to the 14 paper traces, and the
// extended entries are opt-in by name or explicit index. SYN10K is the
// "tens of thousands of receivers" workload (ROADMAP item 1): its tree
// exceeds the 1024-node dense hop-matrix cap, so runs take the LCA
// fallback and the wide (>64 receiver) loss-pattern paths throughout.
var Extended = []CatalogEntry{
	{15, "SYN10K", 10000, 8, 40 * time.Millisecond, 5000, 1500000, 9615},
}

// Spec derives the generation spec for the entry, with packet and loss
// counts scaled by the positive dimensionless factor scale. Scaling
// preserves loss rates and burst structure; scale 1 reproduces the full
// Table 1 volumes, smaller scales shrink runtime, and scales above 1
// extrapolate beyond the recorded transmissions (memory-scaling
// experiments use scale 5).
func (e CatalogEntry) Spec(scale float64) (GenSpec, error) {
	if scale <= 0 {
		return GenSpec{}, fmt.Errorf("trace: scale %v must be positive", scale)
	}
	packets := int(float64(e.Packets)*scale + 0.5)
	if packets < 100 {
		packets = 100
	}
	losses := int(float64(e.Losses) * float64(packets) / float64(e.Packets))
	return GenSpec{
		Name:         e.Name,
		Topology:     topology.GenSpec{Receivers: e.Receivers, Depth: e.TreeDepth},
		NumPackets:   packets,
		Period:       e.Period,
		TargetLosses: losses,
		Seed:         e.Seed,
	}, nil
}

// Load generates the synthetic trace for the entry at the given scale.
func (e CatalogEntry) Load(scale float64) (*Trace, error) {
	spec, err := e.Spec(scale)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}

// LoadCatalog generates all 14 traces at the given scale.
func LoadCatalog(scale float64) ([]*Trace, error) {
	out := make([]*Trace, 0, len(Catalog))
	for _, e := range Catalog {
		t, err := e.Load(scale)
		if err != nil {
			return nil, fmt.Errorf("trace %d (%s): %w", e.Index, e.Name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// ByName returns the catalog entry with the given name, searching the
// Table 1 catalog first and then the extended stress entries.
func ByName(name string) (CatalogEntry, bool) {
	for _, e := range Catalog {
		if e.Name == name {
			return e, true
		}
	}
	for _, e := range Extended {
		if e.Name == name {
			return e, true
		}
	}
	return CatalogEntry{}, false
}
