package trace

import (
	"sort"

	"cesrm/internal/topology"
)

// LocalityStats quantifies the packet-loss locality that motivates
// CESRM (§1): losses in IP multicast transmissions are not independent —
// they cluster in time (bursts on the same link) and in space (the same
// links stay bad), so the requestor/replier pair that recovered the last
// loss is very likely right for the next one.
type LocalityStats struct {
	// UncondLossProb is the unconditional per-receiver loss probability.
	UncondLossProb float64
	// CondLossProb is P(receiver loses packet i+1 | it lost packet i);
	// under independence it would equal UncondLossProb.
	CondLossProb float64
	// MeanBurstLen is the average consecutive-loss run length.
	MeanBurstLen float64
	// BurstLens is the distribution of loss-run lengths (capped bucket
	// at MaxBurstBucket).
	BurstLens map[int]int
	// SameLinkConsecutive is the fraction of consecutive loss events at
	// a receiver attributed to the same tree link (ground truth; -1 when
	// the trace carries none). This is the quantity bounding the hit
	// rate of CESRM's most-recent-loss cache.
	SameLinkConsecutive float64
	// PatternRepeat is the probability that the loss pattern of the next
	// lossy packet equals the current lossy packet's pattern.
	PatternRepeat float64
}

// MaxBurstBucket is the top (aggregated) bucket of BurstLens.
const MaxBurstBucket = 32

// LocalityRatio is the headline locality factor: how much more likely a
// loss is after a loss than unconditionally. Values near 1 mean
// independent losses; the MBone traces exhibit large ratios.
func (s LocalityStats) LocalityRatio() float64 {
	if s.UncondLossProb == 0 {
		return 0
	}
	return s.CondLossProb / s.UncondLossProb
}

// AnalyzeLocality computes locality statistics for the trace.
func AnalyzeLocality(t *Trace) LocalityStats {
	s := LocalityStats{BurstLens: make(map[int]int)}
	n := t.NumPackets()

	var lossEvents, packets int
	var afterLoss, lossAfterLoss int
	bursts, burstLossTotal := 0, 0
	for _, row := range t.Loss {
		run := 0
		for i, lost := range row {
			packets++
			if lost {
				lossEvents++
				run++
			} else if run > 0 {
				s.addBurst(run)
				bursts++
				burstLossTotal += run
				run = 0
			}
			if i+1 < len(row) && lost {
				afterLoss++
				if row[i+1] {
					lossAfterLoss++
				}
			}
		}
		if run > 0 {
			s.addBurst(run)
			bursts++
			burstLossTotal += run
		}
	}
	if packets > 0 {
		s.UncondLossProb = float64(lossEvents) / float64(packets)
	}
	if afterLoss > 0 {
		s.CondLossProb = float64(lossAfterLoss) / float64(afterLoss)
	}
	if bursts > 0 {
		s.MeanBurstLen = float64(burstLossTotal) / float64(bursts)
	}

	// Pattern repetition across consecutive lossy packets. Columns are
	// compared directly rather than through LossPattern bitmasks so the
	// statistic works at any receiver count.
	prev := -1
	var lossyPairs, samePattern int
	for i := 0; i < n; i++ {
		lossy := false
		for r := range t.Loss {
			if t.Loss[r][i] {
				lossy = true
				break
			}
		}
		if !lossy {
			continue
		}
		if prev >= 0 {
			lossyPairs++
			if sameLossColumn(t, prev, i) {
				samePattern++
			}
		}
		prev = i
	}
	if lossyPairs > 0 {
		s.PatternRepeat = float64(samePattern) / float64(lossyPairs)
	}

	// Link locality from ground truth (synthetic traces only).
	s.SameLinkConsecutive = -1
	if t.TrueDrops != nil {
		var pairs, same int
		for ri, r := range t.Tree.Receivers() {
			path := t.Tree.PathLinks(t.Tree.Root(), r)
			prevLink := topology.None
			for i := 0; i < n; i++ {
				if !t.Lost(ri, i) {
					continue
				}
				link := responsibleLink(path, t.TrueDrops[i])
				if link == topology.None {
					continue
				}
				if prevLink != topology.None {
					pairs++
					if link == prevLink {
						same++
					}
				}
				prevLink = link
			}
		}
		if pairs > 0 {
			s.SameLinkConsecutive = float64(same) / float64(pairs)
		}
	}
	return s
}

func (s *LocalityStats) addBurst(run int) {
	if run > MaxBurstBucket {
		run = MaxBurstBucket
	}
	s.BurstLens[run]++
}

// sameLossColumn reports whether packets i and j were lost by exactly
// the same receiver set.
func sameLossColumn(t *Trace, i, j int) bool {
	for r := range t.Loss {
		if t.Loss[r][i] != t.Loss[r][j] {
			return false
		}
	}
	return true
}

// responsibleLink finds the drop link on the receiver's path, or None.
func responsibleLink(path []topology.LinkID, drops []topology.LinkID) topology.LinkID {
	for _, l := range path {
		for _, d := range drops {
			if l == d {
				return l
			}
		}
	}
	return topology.None
}

// BurstPercentile returns the loss-run length at or below which the
// given fraction of bursts fall; q in [0, 1].
func (s LocalityStats) BurstPercentile(q float64) int {
	total := 0
	lens := make([]int, 0, len(s.BurstLens))
	for l, c := range s.BurstLens {
		total += c
		lens = append(lens, l)
	}
	if total == 0 {
		return 0
	}
	sort.Ints(lens)
	threshold := q * float64(total)
	cum := 0
	for _, l := range lens {
		cum += s.BurstLens[l]
		if float64(cum) >= threshold {
			return l
		}
	}
	return lens[len(lens)-1]
}
