package trace

import (
	"math"
	"testing"
	"time"

	"cesrm/internal/topology"
)

func TestAnalyzeLocalityHandTrace(t *testing.T) {
	tr := tinyTrace(t) // r0: 0110, r1: 0010
	s := AnalyzeLocality(tr)
	// 3 losses over 8 receiver-packets.
	if math.Abs(s.UncondLossProb-3.0/8.0) > 1e-12 {
		t.Fatalf("UncondLossProb = %v", s.UncondLossProb)
	}
	// Loss-followed-by-packet pairs: r0 at 1 (next lost), r0 at 2 (next
	// ok), r1 at 2 (next ok) => 1/3.
	if math.Abs(s.CondLossProb-1.0/3.0) > 1e-12 {
		t.Fatalf("CondLossProb = %v", s.CondLossProb)
	}
	// Bursts: r0 one of length 2, r1 one of length 1 => mean 1.5.
	if s.MeanBurstLen != 1.5 {
		t.Fatalf("MeanBurstLen = %v", s.MeanBurstLen)
	}
	if s.BurstLens[1] != 1 || s.BurstLens[2] != 1 {
		t.Fatalf("BurstLens = %v", s.BurstLens)
	}
	// Lossy packets 1 (pattern 01) and 2 (pattern 11): no repeat.
	if s.PatternRepeat != 0 {
		t.Fatalf("PatternRepeat = %v", s.PatternRepeat)
	}
	// No ground truth on the hand trace.
	if s.SameLinkConsecutive != -1 {
		t.Fatalf("SameLinkConsecutive = %v, want -1", s.SameLinkConsecutive)
	}
}

func TestLocalityRatioHighOnGilbertTraces(t *testing.T) {
	tr := MustGenerate(GenSpec{
		Name:         "loc",
		Topology:     topology.GenSpec{Receivers: 10, Depth: 4},
		NumPackets:   30000,
		Period:       80 * time.Millisecond,
		TargetLosses: 9000,
		MeanBurstLen: 8,
		Seed:         41,
	})
	s := AnalyzeLocality(tr)
	if s.LocalityRatio() < 3 {
		t.Fatalf("LocalityRatio = %.2f, want >= 3 on bursty traces", s.LocalityRatio())
	}
	if s.SameLinkConsecutive < 0.5 {
		t.Fatalf("SameLinkConsecutive = %.2f, want >= 0.5", s.SameLinkConsecutive)
	}
	if s.PatternRepeat < 0.3 {
		t.Fatalf("PatternRepeat = %.2f, want >= 0.3", s.PatternRepeat)
	}
	if p := s.BurstPercentile(0.5); p < 1 {
		t.Fatalf("median burst = %d", p)
	}
	if s.BurstPercentile(1.0) < s.BurstPercentile(0.5) {
		t.Fatal("percentiles not monotone")
	}
}

func TestLocalityLowWithoutBursts(t *testing.T) {
	// MeanBurstLen 1 degenerates the Gilbert chains to near-Bernoulli:
	// the locality ratio should collapse toward the spatial-only
	// correlation (same link, independent packets).
	bursty := MustGenerate(GenSpec{
		Name:         "bursty",
		Topology:     topology.GenSpec{Receivers: 8, Depth: 3},
		NumPackets:   20000,
		Period:       80 * time.Millisecond,
		TargetLosses: 5000,
		MeanBurstLen: 16,
		Seed:         43,
	})
	thin := MustGenerate(GenSpec{
		Name:         "thin",
		Topology:     topology.GenSpec{Receivers: 8, Depth: 3},
		NumPackets:   20000,
		Period:       80 * time.Millisecond,
		TargetLosses: 5000,
		MeanBurstLen: 1.01,
		Seed:         43,
	})
	sb := AnalyzeLocality(bursty)
	st := AnalyzeLocality(thin)
	if sb.MeanBurstLen <= st.MeanBurstLen {
		t.Fatalf("burst lengths not ordered: %v vs %v", sb.MeanBurstLen, st.MeanBurstLen)
	}
	if sb.LocalityRatio() <= st.LocalityRatio() {
		t.Fatalf("locality ratios not ordered: %.2f vs %.2f", sb.LocalityRatio(), st.LocalityRatio())
	}
}

func TestBurstPercentileEmpty(t *testing.T) {
	s := LocalityStats{BurstLens: map[int]int{}}
	if s.BurstPercentile(0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestLocalityRatioZeroLoss(t *testing.T) {
	tr := tinyTrace(t)
	tr.Loss = [][]bool{{false, false}, {false, false}}
	s := AnalyzeLocality(tr)
	if s.LocalityRatio() != 0 {
		t.Fatalf("ratio on lossless trace = %v", s.LocalityRatio())
	}
}
