package trace

import (
	"bytes"
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// wideTrace generates a shared >64-receiver trace for the tests below.
func wideTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Generate(GenSpec{
		Name:         "wide200",
		Topology:     topology.GenSpec{Receivers: 200, Depth: 6},
		NumPackets:   600,
		Period:       40 * time.Millisecond,
		TargetLosses: 3000,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGenerateWideTrace checks generation past the old 63-receiver
// bitmask cap: shape, determinism, and that LostReceivers matches the
// raw loss rows while LossPattern refuses to silently truncate.
func TestGenerateWideTrace(t *testing.T) {
	tr := wideTrace(t)
	if tr.NumReceivers() != 200 {
		t.Fatalf("receivers = %d, want 200", tr.NumReceivers())
	}
	if got := tr.Tree.MaxDepth(); got != 6 {
		t.Fatalf("depth = %d, want 6", got)
	}
	again := wideTrace(t)
	for r := range tr.Loss {
		for i := range tr.Loss[r] {
			if tr.Loss[r][i] != again.Loss[r][i] {
				t.Fatalf("receiver %d packet %d differs across identical generations", r, i)
			}
		}
	}
	var buf []int
	for i := 0; i < tr.NumPackets(); i++ {
		buf = tr.LostReceivers(i, buf[:0])
		j := 0
		for r := range tr.Loss {
			if tr.Loss[r][i] {
				if j >= len(buf) || buf[j] != r {
					t.Fatalf("packet %d: LostReceivers %v misses receiver %d", i, buf, r)
				}
				j++
			}
		}
		if j != len(buf) {
			t.Fatalf("packet %d: LostReceivers has %d extra entries", i, len(buf)-j)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LossPattern did not panic on a >64-receiver trace")
		}
	}()
	tr.LossPattern(0)
}

// TestWideTraceRoundTrip pins the on-disk format at wide receiver
// counts: marshal/unmarshal must reproduce the loss rows and tree.
func TestWideTraceRoundTrip(t *testing.T) {
	tr := wideTrace(t)
	var buf bytes.Buffer
	if err := Marshal(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumReceivers() != tr.NumReceivers() || back.NumPackets() != tr.NumPackets() {
		t.Fatalf("round trip shape %dx%d, want %dx%d",
			back.NumReceivers(), back.NumPackets(), tr.NumReceivers(), tr.NumPackets())
	}
	for r := range tr.Loss {
		for i := range tr.Loss[r] {
			if back.Loss[r][i] != tr.Loss[r][i] {
				t.Fatalf("receiver %d packet %d differs after round trip", r, i)
			}
		}
	}
}

// TestWideTraceLocality checks the locality analysis works without the
// uint64 pattern path and still reports bursty, repeating loss on a
// Gilbert-generated wide trace.
func TestWideTraceLocality(t *testing.T) {
	s := AnalyzeLocality(wideTrace(t))
	if s.UncondLossProb <= 0 {
		t.Fatal("no loss recorded")
	}
	if s.LocalityRatio() < 2 {
		t.Fatalf("locality ratio %.2f, want bursty (>= 2)", s.LocalityRatio())
	}
	if s.PatternRepeat <= 0 {
		t.Fatal("pattern repetition is zero on a bursty trace")
	}
	if s.SameLinkConsecutive < 0 {
		t.Fatal("ground truth missing from generated trace")
	}
}

// TestExtendedCatalogEntry pins the SYN10K stress entry: resolvable by
// name but outside the default 14-trace catalog, and generable at a
// small scale with the advertised shape — a tree past the 1024-node
// hop-matrix cap whose LCA-fallback HopCount agrees with the explicit
// path length.
func TestExtendedCatalogEntry(t *testing.T) {
	if len(Catalog) != 14 {
		t.Fatalf("default catalog has %d entries, want 14", len(Catalog))
	}
	e, ok := ByName("SYN10K")
	if !ok {
		t.Fatal("SYN10K not resolvable by name")
	}
	if e.Index != 15 || e.Receivers != 10000 {
		t.Fatalf("entry = %+v", e)
	}
	if testing.Short() {
		t.Skip("generation takes a few seconds")
	}
	tr, err := e.Load(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumReceivers() != 10000 {
		t.Fatalf("receivers = %d, want 10000", tr.NumReceivers())
	}
	if tr.Tree.NumNodes() <= 1024 {
		t.Fatalf("nodes = %d, want > 1024 (hop-matrix cap)", tr.Tree.NumNodes())
	}
	if tr.TotalLosses() == 0 {
		t.Fatal("no losses generated")
	}
	// Sample HopCount against the explicit path: above the cap the
	// matrix is absent and every query takes the LCA climb.
	rng := sim.NewRNG(1)
	recv := tr.Tree.Receivers()
	for k := 0; k < 200; k++ {
		a := recv[rng.Intn(len(recv))]
		b := recv[rng.Intn(len(recv))]
		if got, want := tr.Tree.HopCount(a, b), len(tr.Tree.PathLinks(a, b)); got != want {
			t.Fatalf("HopCount(%d, %d) = %d, path has %d links", a, b, got, want)
		}
	}
}
