package soak

import (
	"fmt"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/experiment"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// loader caches generated traces by (catalog index, scale): the soak
// loop revisits the same few traces hundreds of times and trace
// generation (Gilbert-chain calibration) dominates small-scale runs.
type loader struct {
	cache map[loaderKey]*trace.Trace
}

type loaderKey struct {
	index int
	scale float64
}

func newLoader() *loader {
	return &loader{cache: make(map[loaderKey]*trace.Trace)}
}

func (l *loader) load(index int, scale float64) (*trace.Trace, error) {
	key := loaderKey{index, scale}
	if tr, ok := l.cache[key]; ok {
		return tr, nil
	}
	if index < 1 || index > len(trace.Catalog) {
		return nil, fmt.Errorf("soak: trace index %d out of [1, %d]", index, len(trace.Catalog))
	}
	tr, err := trace.Catalog[index-1].Load(scale)
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	l.cache[key] = tr
	return tr, nil
}

// Horizon is a run's warmup-plus-data-phase duration — the window the
// generator places faults inside (matching the chaos.Scenarios
// convention used by cesrm-bench -chaos-matrix).
func Horizon(tr *trace.Trace) time.Duration {
	return 3*srm.DefaultParams().SessionPeriod + time.Duration(tr.NumPackets())*tr.Period
}

// Generator emits an endless deterministic stream of random trials:
// same constructor arguments, same trials, forever. All randomness
// flows from one sim.RNG, so the stream is reproducible across
// platforms.
type Generator struct {
	rng       *sim.RNG
	traces    []int
	protocols []experiment.Protocol
	scale     float64
	loader    *loader
	n         int
}

// NewGenerator validates the candidate sets and returns a generator.
func NewGenerator(seed int64, traces []int, protocols []experiment.Protocol, scale float64) (*Generator, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("soak: no candidate traces")
	}
	if len(protocols) == 0 {
		return nil, fmt.Errorf("soak: no candidate protocols")
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("soak: scale %v out of (0, 1]", scale)
	}
	return &Generator{
		rng:       sim.NewRNG(seed),
		traces:    append([]int(nil), traces...),
		protocols: append([]experiment.Protocol(nil), protocols...),
		scale:     scale,
		loader:    newLoader(),
	}, nil
}

// Next emits the next random trial. The generated spec always
// validates against the trial's topology.
func (g *Generator) Next() (Trial, error) {
	index := g.traces[g.rng.Intn(len(g.traces))]
	tr, err := g.loader.load(index, g.scale)
	if err != nil {
		return Trial{}, err
	}
	t := Trial{
		TraceIndex: index,
		Protocol:   g.protocols[g.rng.Intn(len(g.protocols))],
		Scale:      g.scale,
		Seed:       g.rng.Int63(),
		Spec:       g.spec(tr),
	}
	g.n++
	return t, nil
}

// instant draws a random offset in [lo%, hi%) of the horizon.
func (g *Generator) instant(horizon time.Duration, loPct, hiPct int64) time.Duration {
	return g.rng.UniformDuration(horizon*time.Duration(loPct)/100, horizon*time.Duration(hiPct)/100)
}

// spec composes a random, always-valid chaos schedule for the trace:
// up to two crash(/restart) sequences on distinct receivers, up to two
// auto-restoring link flaps, and at most one jitter ramp, one duplicate
// storm and one starvation window (the per-kind windows must not
// overlap, so one each sidesteps rejection-and-retry loops). Fields the
// parser leaves at their defaults (Host, Link) are set to the same
// defaults here, keeping generated specs on the ParseSpec/String
// round-trip path the fuzzer exercises.
func (g *Generator) spec(tr *trace.Trace) *chaos.Spec {
	tree := tr.Tree
	recs := tree.Receivers()
	horizon := Horizon(tr)
	noLink := topology.LinkID(topology.None)
	for {
		var faults []chaos.Fault
		perm := g.rng.Perm(len(recs))
		next := 0
		for i, n := 0, g.rng.Intn(3); i < n && next < len(perm); i++ {
			h := recs[perm[next]]
			next++
			at := g.instant(horizon, 5, 60)
			crash := chaos.Fault{Kind: chaos.Crash, At: at, Host: h, Link: noLink}
			if g.rng.Float64() < 0.25 {
				crash.Purge = true
			}
			faults = append(faults, crash)
			if g.rng.Float64() < 0.5 {
				faults = append(faults, chaos.Fault{
					Kind: chaos.Restart, At: at + g.instant(horizon, 5, 25),
					Host: h, Link: noLink,
				})
			}
		}
		for i, n := 0, g.rng.Intn(3); i < n; i++ {
			at := g.instant(horizon, 5, 60)
			faults = append(faults, chaos.Fault{
				Kind: chaos.LinkDown, At: at, Until: at + g.instant(horizon, 2, 10),
				Host: topology.None, Link: topology.LinkID(recs[g.rng.Intn(len(recs))]),
			})
		}
		if g.rng.Float64() < 0.4 {
			at := g.instant(horizon, 10, 60)
			faults = append(faults, chaos.Fault{
				Kind: chaos.Jitter, At: at, Until: at + g.instant(horizon, 5, 20),
				Max:  g.rng.UniformDuration(time.Millisecond, 8*time.Millisecond),
				Host: topology.None, Link: noLink,
			})
		}
		if g.rng.Float64() < 0.4 {
			at := g.instant(horizon, 5, 50)
			faults = append(faults, chaos.Fault{
				Kind: chaos.Duplicate, At: at, Until: at + g.instant(horizon, 10, 40),
				Prob:  0.01 + 0.2*g.rng.Float64(),
				Delay: g.rng.UniformDuration(500*time.Microsecond, 4*time.Millisecond),
				Host:  topology.None, Link: noLink,
			})
		}
		// Membership churn rides the same receiver permutation as the
		// crash sequences, consuming hosts the crash loop did not touch:
		// Validate forbids mixing crash/restart and leave/join on one
		// host, so disjointness keeps the spec valid by construction.
		for i, n := 0, g.rng.Intn(3); i < n && next < len(perm); i++ {
			h := recs[perm[next]]
			next++
			if g.rng.Float64() < 0.25 {
				// Late joiner: absent from the start, admitted mid-run.
				faults = append(faults, chaos.Fault{
					Kind: chaos.Join, At: g.instant(horizon, 10, 60),
					Host: h, Link: noLink,
				})
				continue
			}
			at := g.instant(horizon, 5, 60)
			faults = append(faults, chaos.Fault{Kind: chaos.Leave, At: at, Host: h, Link: noLink})
			if g.rng.Float64() < 0.5 {
				faults = append(faults, chaos.Fault{
					Kind: chaos.Join, At: at + g.instant(horizon, 5, 25),
					Host: h, Link: noLink,
				})
			}
		}
		if g.rng.Float64() < 0.3 {
			at := g.instant(horizon, 10, 60)
			faults = append(faults, chaos.Fault{
				Kind: chaos.QueueCap, At: at, Until: at + g.instant(horizon, 5, 20),
				Cap:  1 + g.rng.Intn(4),
				Host: topology.None, Link: noLink,
			})
		}
		if g.rng.Float64() < 0.4 {
			at := g.instant(horizon, 10, 60)
			starve := chaos.Fault{
				Kind: chaos.Starve, At: at, Until: at + g.instant(horizon, 5, 25),
				Host: topology.None, Link: noLink,
			}
			if g.rng.Float64() < 0.3 {
				starve.Host = recs[g.rng.Intn(len(recs))]
			}
			faults = append(faults, starve)
		}
		if len(faults) == 0 {
			continue
		}
		s := &chaos.Spec{Name: fmt.Sprintf("soak-%d", g.n), Faults: faults}
		if s.Validate(tree) == nil {
			return s
		}
	}
}
