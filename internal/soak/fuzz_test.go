package soak

import (
	"reflect"
	"testing"

	"cesrm/internal/chaos"
	"cesrm/internal/experiment"
)

// FuzzParseSpec checks the chaos grammar's round-trip property: for
// any input the parser accepts, rendering the spec back to text and
// reparsing must reproduce the identical fault list (the parser is a
// left inverse of String). The seed corpus feeds the soak generator's
// own emissions through the parser, so the fuzzer starts from the
// exact dialect the harness writes into corpus files, plus handwritten
// edge cases around the hardened rejections.
func FuzzParseSpec(f *testing.F) {
	g, err := NewGenerator(1, []int{4}, []experiment.Protocol{experiment.CESRM}, 0.01)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		trial, err := g.Next()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(trial.Spec.String())
	}
	for _, s := range []string{
		"crash@40s:host=3,purge;restart@1m10s:host=3",
		"link-down@10s-20s:link=5;link-up@35s:link=5",
		"jitter@45s-50s:max=5ms;dup@1m20s-1m30s:prob=0.01,delay=2ms",
		"starve@1m40s-1m45s;starve@1m50s-1m55s:host=4",
		"jitter@1s-2s", "dup@1s-2s", "crash@1s", "link-down@1s-2s",
		"crash@0s:host=0", "dup@1s-2s:prob=1", "crash@1s:host=1;;crash@2s:host=2",
		"crash@9000h:host=1", "crash@1s:host=1,host=2", "jitter@5s--10s:max=1ms",
		"leave@8s:host=4;join@16s:host=4", "join@5s:host=6",
		"qcap@5s-12s:cap=2", "qcap@1s-2s:cap=0", "qcap@1s-2s:cap=-1",
		"leave@1s", "join@1s:cap=2", "qcap@1s:cap=2", "qcap@1s-2s:host=3",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := chaos.ParseSpec(text)
		if err != nil {
			return
		}
		rendered := s.String()
		again, err := chaos.ParseSpec(rendered)
		if err != nil {
			t.Fatalf("accepted %q but its rendering %q does not reparse: %v", text, rendered, err)
		}
		if !reflect.DeepEqual(s.Faults, again.Faults) {
			t.Fatalf("round trip of %q diverged:\n  first:  %+v\n  second: %+v",
				text, s.Faults, again.Faults)
		}
		// Rendering must be a fixed point: String of the reparse is the
		// canonical form already.
		if again.String() != rendered {
			t.Fatalf("rendering of %q not canonical: %q reparses to %q",
				text, rendered, again.String())
		}
	})
}
