package soak

import (
	"time"

	"cesrm/internal/chaos"
)

// Minimize delta-debugs a failing trial's chaos spec to a minimal
// schedule that still fails with the same class: first ddmin over the
// fault list (Zeller & Hildebrandt's complement-removal loop), then a
// per-fault field simplification pass (drop purge flags, round instants
// to whole seconds, halve long windows). Specs that no longer validate
// against the topology count as non-reproducing without spending a
// simulation run. maxRuns bounds the total simulation runs; the
// returned count reports how many were spent. Minimization is
// deterministic: same trial, same class, same minimal spec.
func (r *Runner) Minimize(t Trial, class string, maxRuns int) (*chaos.Spec, int) {
	tr, err := r.loader.load(t.TraceIndex, t.Scale)
	if err != nil {
		return t.Spec, 0
	}
	runs := 0
	reproduces := func(faults []chaos.Fault) bool {
		if runs >= maxRuns || len(faults) == 0 {
			return false
		}
		s := &chaos.Spec{Name: t.Spec.Name, Faults: faults}
		if s.Validate(tr.Tree) != nil {
			return false
		}
		runs++
		cand := t
		cand.Spec = s
		_, fail := r.runLoaded(tr, cand)
		return fail != nil && fail.Class == class
	}

	faults := ddmin(t.Spec.Faults, reproduces)

	// Field simplification: each accepted candidate replaces the fault
	// in place, so later candidates shrink the already-simplified spec.
	for i := 0; i < len(faults) && runs < maxRuns; i++ {
		for _, cand := range simplifications(faults[i]) {
			next := append([]chaos.Fault(nil), faults...)
			next[i] = cand
			if reproduces(next) {
				faults = next
			}
		}
	}
	return &chaos.Spec{Name: t.Spec.Name + "-min", Faults: faults}, runs
}

// ddmin minimizes the fault list under the reproduces predicate by
// repeatedly removing chunks: start with halves, and whenever no
// chunk's complement reproduces, double the granularity until chunks
// are single faults. The input list is known-reproducing (the trial
// already failed), so the result is 1-minimal up to the run budget
// enforced inside reproduces.
func ddmin(faults []chaos.Fault, reproduces func([]chaos.Fault) bool) []chaos.Fault {
	faults = append([]chaos.Fault(nil), faults...)
	n := 2
	for len(faults) >= 2 && n <= len(faults) {
		chunk := (len(faults) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(faults); lo += chunk {
			hi := lo + chunk
			if hi > len(faults) {
				hi = len(faults)
			}
			complement := append(append([]chaos.Fault(nil), faults[:lo]...), faults[hi:]...)
			if reproduces(complement) {
				faults = complement
				n--
				if n < 2 {
					n = 2
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(faults) {
				break
			}
			n *= 2
			if n > len(faults) {
				n = len(faults)
			}
		}
	}
	return faults
}

// simplifications proposes simpler variants of one fault, most
// aggressive first. Variants that break spec validity (an instant
// rounding past its window end) are filtered by the caller's
// Validate-before-run check.
func simplifications(f chaos.Fault) []chaos.Fault {
	var out []chaos.Fault
	if f.Purge {
		g := f
		g.Purge = false
		out = append(out, g)
	}
	if t := f.At.Truncate(time.Second); t != f.At && (f.Until == 0 || t < f.Until) {
		g := f
		g.At = t
		out = append(out, g)
	}
	if f.Until != 0 && f.Until-f.At > 2*time.Second {
		g := f
		g.Until = f.At + (f.Until-f.At)/2
		out = append(out, g)
	}
	return out
}
