package soak

import (
	"testing"

	"cesrm/internal/experiment"
	"cesrm/internal/sim"
)

// TestShardedFingerprintEqualityUnderChaos is the chaos half of the
// sharded-dispatch byte-identical contract: over random trials from the
// soak generator — random traces, protocols, seeds and always-valid
// chaos schedules mixing crashes, restarts, link flaps, jitter ramps,
// duplicate storms, starvation, membership churn (leave/join) and
// finite-queue windows — a sharded run must terminate with the same
// status as the serial run and, on completion, the same fingerprint,
// for several shard counts. The deal must include churn and queue caps
// (asserted below) so the equality contract provably covers them.
func TestShardedFingerprintEqualityUnderChaos(t *testing.T) {
	gen, err := NewGenerator(99, []int{4, 13}, []experiment.Protocol{
		experiment.SRM, experiment.CESRM, experiment.LMS,
	}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	budget := DefaultBudget()
	sawChurn, sawQueueCap := false, false
	for i := 0; i < 12; i++ {
		trial, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		sawChurn = sawChurn || trial.Spec.HasMembership()
		sawQueueCap = sawQueueCap || trial.Spec.HasQueueCap()
		tr, err := gen.loader.load(trial.TraceIndex, trial.Scale)
		if err != nil {
			t.Fatal(err)
		}
		base := experiment.RunConfig{
			Trace:    tr,
			Protocol: trial.Protocol,
			Chaos:    trial.Spec,
			Budget:   budget,
			Seed:     trial.Seed,
		}
		serial, err := experiment.Run(base)
		if err != nil {
			t.Fatalf("trial %v: %v", trial, err)
		}
		for _, shards := range []int{2, 8} {
			cfg := base
			cfg.Shards = shards
			res, err := experiment.Run(cfg)
			if err != nil {
				t.Fatalf("trial %v shards=%d: %v", trial, shards, err)
			}
			if res.Status != serial.Status {
				t.Fatalf("trial %v shards=%d: status %v, serial %v", trial, shards, res.Status, serial.Status)
			}
			if serial.Status == sim.Completed && res.Fingerprint != serial.Fingerprint {
				t.Fatalf("trial %v shards=%d: fingerprint %s, serial %s",
					trial, shards, res.Fingerprint, serial.Fingerprint)
			}
		}
	}
	if !sawChurn || !sawQueueCap {
		t.Fatalf("generated trials never dealt churn=%v/qcap=%v; the equality contract has a coverage hole",
			sawChurn, sawQueueCap)
	}
}
