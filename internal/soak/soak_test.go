package soak

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/sim"
	"cesrm/internal/stats"
)

// TestGeneratorIsDeterministic pins the soak acceptance criterion that
// a campaign is a pure function of its seed: two generators with the
// same arguments emit identical trial streams, and different seeds
// diverge.
func TestGeneratorIsDeterministic(t *testing.T) {
	mk := func(seed int64) []string {
		g, err := NewGenerator(seed, []int{4, 13}, []experiment.Protocol{experiment.SRM, experiment.CESRM, experiment.LMS}, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for i := 0; i < 20; i++ {
			trial, err := g.Next()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, trial.String())
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d diverged:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	c := mk(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 7 and 8 generated identical trial streams")
	}
}

// TestGeneratorSpecsAreValid checks every generated spec validates
// against its trial's topology and reparses from its own rendering —
// the generator feeds both the runner and the corpus format.
func TestGeneratorSpecsAreValid(t *testing.T) {
	g, err := NewGenerator(3, []int{4}, []experiment.Protocol{experiment.CESRM}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.loader.load(4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	horizon := Horizon(tr)
	for i := 0; i < 50; i++ {
		trial, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := trial.Spec.Validate(tr.Tree); err != nil {
			t.Fatalf("trial %d spec %q invalid: %v", i, trial.Spec, err)
		}
		if len(trial.Spec.Faults) == 0 {
			t.Fatalf("trial %d: empty spec", i)
		}
		for _, f := range trial.Spec.Faults {
			if f.At > 2*horizon || f.Until > 2*horizon {
				t.Fatalf("trial %d: fault %+v far outside horizon %v", i, f, horizon)
			}
		}
		if _, err := ParseEntry((&Entry{
			Trace: "WRN950919", Protocol: trial.Protocol, Scale: trial.Scale,
			Seed: trial.Seed, Spec: trial.Spec,
		}).Marshal()); err != nil {
			t.Fatalf("trial %d spec %q does not survive corpus round trip: %v", i, trial.Spec, err)
		}
	}
}

// TestSoakRunIsBitReproducible runs the same small campaign twice and
// compares the log streams byte for byte.
func TestSoakRunIsBitReproducible(t *testing.T) {
	run := func() (*Result, string) {
		var buf bytes.Buffer
		res, err := Run(Config{
			Seed: 11, Trials: 4, Scale: 0.01, Traces: []int{4},
			Protocols: []experiment.Protocol{experiment.SRM, experiment.CESRM},
			Minimize:  true, Log: &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	resA, logA := run()
	resB, logB := run()
	if logA != logB {
		t.Fatalf("soak logs diverged:\n--- first\n%s--- second\n%s", logA, logB)
	}
	if resA.Trials != 4 || resB.Trials != 4 {
		t.Fatalf("trial counts %d/%d, want 4", resA.Trials, resB.Trials)
	}
	if len(resA.Failures) != len(resB.Failures) {
		t.Fatalf("failure counts diverged: %d vs %d", len(resA.Failures), len(resB.Failures))
	}
}

// TestRunTrialBudgetClass checks a budget abort classifies as
// "budget:<status>" with the partial result attached, and the failure
// is non-fatal (replay tolerates it).
func TestRunTrialBudgetClass(t *testing.T) {
	g, err := NewGenerator(1, []int{4}, []experiment.Protocol{experiment.CESRM}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	trial, err := g.Next()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sim.Budget{MaxVirtualTime: sim.Time(2 * time.Second)})
	res, fail := r.RunTrial(trial)
	if fail == nil {
		t.Fatal("2s virtual-time budget did not fail the trial")
	}
	if want := "budget:" + sim.DeadlineExceeded.String(); fail.Class != want {
		t.Fatalf("class %q, want %q", fail.Class, want)
	}
	if fail.Fatal() {
		t.Error("budget abort classified as fatal")
	}
	if res == nil || res.Status != sim.DeadlineExceeded {
		t.Fatalf("budget abort carries no partial result: %+v", res)
	}
}

// TestClassifyStableClasses pins the classifier's class strings — the
// minimizer matches on them, so they are part of the corpus contract.
func TestClassifyStableClasses(t *testing.T) {
	trial := Trial{TraceIndex: 4, Protocol: experiment.CESRM}
	cases := []struct {
		err  error
		want string
	}{
		{&stats.InvariantError{Violations: []stats.Violation{{Class: "crash-silence", Detail: "x"}}}, "invariant:crash-silence"},
		{fmt.Errorf("wrapped: %w", &stats.InvariantError{Violations: []stats.Violation{{Class: "clock-regression", Detail: "x"}}}), "invariant:clock-regression"},
		{&experiment.QuiesceError{Trace: "T", Protocol: experiment.SRM, MaxTail: time.Minute}, "timeout"},
		{fmt.Errorf("receiver 3 finished missing 2 packets"), "error"},
	}
	for _, c := range cases {
		if got := classify(trial, c.err).Class; got != c.want {
			t.Errorf("classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	panics := []struct {
		rec  any
		want string
	}{
		{&sim.PastScheduleError{At: 1, Now: 2}, "panic:past-schedule"},
		{&core.InternalError{Host: 3, Op: "op", Err: fmt.Errorf("x")}, "panic:cesrm-internal"},
		{"slice out of range", "panic"},
	}
	for _, c := range panics {
		if got := panicClass(c.rec); got != c.want {
			t.Errorf("panicClass(%v) = %q, want %q", c.rec, got, c.want)
		}
	}
	for _, fatal := range []string{"invariant:crash-silence", "timeout", "panic:past-schedule", "panic", "error"} {
		if !(&Failure{Class: fatal}).Fatal() {
			t.Errorf("class %q not fatal", fatal)
		}
	}
	if (&Failure{Class: "budget:" + sim.Stalled.String()}).Fatal() {
		t.Error("budget class is fatal")
	}
}

// TestRunTrialRecoversPanics checks the runner survives a panicking
// protocol stack: a panic anywhere under experiment.Run must come back
// as a classified Failure, not kill the soak loop. A healthy tree
// cannot be made to panic on demand, so the run is substituted through
// the runExperiment test seam.
func TestRunTrialRecoversPanics(t *testing.T) {
	orig := runExperiment
	defer func() { runExperiment = orig }()
	runExperiment = func(experiment.RunConfig) (*experiment.RunResult, error) {
		panic(&sim.PastScheduleError{At: sim.Time(time.Second), Now: sim.Time(2 * time.Second)})
	}
	r := NewRunner(DefaultBudget())
	trial := Trial{TraceIndex: 4, Protocol: experiment.CESRM, Scale: 0.01, Seed: 1}
	res, fail := r.RunTrial(trial)
	if res != nil {
		t.Error("panicked run returned a result")
	}
	if fail == nil || fail.Class != "panic:past-schedule" {
		t.Fatalf("failure = %+v, want class panic:past-schedule", fail)
	}
	if !strings.Contains(fail.Detail, "past") {
		t.Errorf("detail %q does not describe the past-schedule", fail.Detail)
	}
}
