// Package soak is the chaos-fuzzing soak harness: it generates seeded
// random (trace × protocol × chaos-spec) trials from the chaos spec
// grammar, runs each under the online invariant validator with the
// engine guardrails armed, classifies every failure — invariant
// violation, panic, liveness timeout, budget blowout — by a stable
// class string, delta-debugs failing chaos specs down to a minimal
// reproducing schedule, and persists failures as replayable corpus
// entries (testdata/soak-corpus/*.spec).
//
// Everything is deterministic in the seed: the same (seed, trials,
// scale, traces, protocols) configuration generates the same trial
// sequence, the same failures, and the same minimized specs, so a soak
// failure observed in CI reproduces bit-identically on a laptop.
package soak

import (
	"errors"
	"fmt"
	"io"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/core"
	"cesrm/internal/experiment"
	"cesrm/internal/sim"
	"cesrm/internal/stats"
	"cesrm/internal/trace"
)

// Trial is one randomized soak scenario: a catalog trace, a protocol, a
// per-run seed, and a generated chaos spec, all at a fixed volume scale.
type Trial struct {
	// TraceIndex is the 1-based catalog index (trace.Catalog).
	TraceIndex int
	// Protocol selects SRM, CESRM or LMS.
	Protocol experiment.Protocol
	// Scale is the trace volume scale in (0, 1].
	Scale float64
	// Seed drives the run's protocol randomness.
	Seed int64
	// Spec is the generated chaos schedule.
	Spec *chaos.Spec
}

// String renders the trial compactly (and deterministically — soak
// output must be bit-reproducible across runs of the same seed).
func (t Trial) String() string {
	return fmt.Sprintf("trace=%d proto=%s seed=%d spec=%q", t.TraceIndex, t.Protocol, t.Seed, t.Spec)
}

// Failure records one failed trial with its stable classification.
// Classes:
//
//	invariant:<class>     online validator breach (stats.Violation class)
//	timeout               run failed to quiesce within MaxTail
//	budget:<status>       an engine guardrail aborted the run
//	panic:past-schedule   engine rejected scheduling into the past
//	panic:cesrm-internal  CESRM internal invariant panic
//	panic                 any other panic
//	error                 any other run error (verification failure, bad config)
type Failure struct {
	// Trial is the failing configuration.
	Trial Trial
	// Class is the stable failure class (see above). Minimization
	// preserves the class: a shrunk spec must fail the same way.
	Class string
	// Detail is the human-readable failure description.
	Detail string
	// Minimized is the delta-debugged minimal reproducing spec, when
	// minimization ran.
	Minimized *chaos.Spec
	// ShrinkRuns counts the simulation runs the minimizer spent.
	ShrinkRuns int
}

// Fatal reports whether the failure indicates a correctness or
// liveness bug (invariant violation, panic, quiesce timeout, config
// error) rather than a structured budget stop. Corpus replay tolerates
// non-fatal failures: a budget abort is exactly the graceful
// degradation the guardrails exist to provide.
func (f *Failure) Fatal() bool {
	return f.Class != "" && !hasPrefix(f.Class, "budget:")
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// DefaultBudget is the soak harness's guardrail configuration: generous
// enough that every healthy scale-0.01 run completes with an order of
// magnitude to spare, tight enough that a runaway run (clock looping
// toward overflow, event storm, timer leak, same-instant livelock) is
// cut off in bounded wall time instead of hanging the fuzzer.
func DefaultBudget() sim.Budget {
	return sim.Budget{
		MaxVirtualTime: sim.Time(30 * time.Minute),
		MaxEvents:      50_000_000,
		MaxPending:     5_000_000,
		StallEvents:    1_000_000,
	}
}

// Runner executes trials under a fixed budget, recovering panics into
// classified Failures. It caches loaded traces across trials.
type Runner struct {
	budget sim.Budget
	loader *loader
}

// NewRunner returns a Runner with the given guardrail budget.
func NewRunner(budget sim.Budget) *Runner {
	return &Runner{budget: budget, loader: newLoader()}
}

// RunTrial executes one trial. It returns the run result (nil if the
// run panicked) and a Failure describing how the trial failed, or nil
// if it completed cleanly.
func (r *Runner) RunTrial(t Trial) (*experiment.RunResult, *Failure) {
	tr, err := r.loader.load(t.TraceIndex, t.Scale)
	if err != nil {
		return nil, &Failure{Trial: t, Class: "error", Detail: err.Error()}
	}
	return r.runLoaded(tr, t)
}

// runLoaded is RunTrial with the trace already in hand (the generator
// and minimizer share the loader cache). The deferred recover turns a
// panicking protocol stack back into data: soak must survive the bug
// classes it exists to find.
func (r *Runner) runLoaded(tr *trace.Trace, t Trial) (res *experiment.RunResult, fail *Failure) {
	defer func() {
		if rec := recover(); rec != nil {
			res = nil
			fail = &Failure{Trial: t, Class: panicClass(rec), Detail: fmt.Sprint(rec)}
		}
	}()
	out, err := runExperiment(experiment.RunConfig{
		Trace:    tr,
		Protocol: t.Protocol,
		Chaos:    t.Spec,
		Budget:   r.budget,
		Seed:     t.Seed,
	})
	if err != nil {
		return nil, classify(t, err)
	}
	if out.Status != sim.Completed {
		detail := out.Status.String()
		if out.Diag != nil {
			detail += ": " + out.Diag.String()
		}
		return out, &Failure{Trial: t, Class: "budget:" + out.Status.String(), Detail: detail}
	}
	return out, nil
}

// runExperiment is a test seam: soak's panic-recovery tests substitute
// a run that panics, since a healthy tree cannot be made to panic on
// demand. Production code never reassigns it.
var runExperiment = experiment.Run

// panicClass maps recovered panic values to stable classes. The typed
// panics carry host/time context in their Error strings, which ends up
// in Failure.Detail.
func panicClass(rec any) string {
	switch rec.(type) {
	case *sim.PastScheduleError:
		return "panic:past-schedule"
	case *core.InternalError:
		return "panic:cesrm-internal"
	default:
		return "panic"
	}
}

// classify maps run errors to stable classes.
func classify(t Trial, err error) *Failure {
	var ie *stats.InvariantError
	var qe *experiment.QuiesceError
	switch {
	case errors.As(err, &ie):
		return &Failure{Trial: t, Class: "invariant:" + ie.Violations[0].Class, Detail: err.Error()}
	case errors.As(err, &qe):
		return &Failure{Trial: t, Class: "timeout", Detail: err.Error()}
	default:
		return &Failure{Trial: t, Class: "error", Detail: err.Error()}
	}
}

// Config parameterizes a soak campaign. Zero values select defaults.
type Config struct {
	// Seed seeds the trial generator; the whole campaign is a pure
	// function of the Config.
	Seed int64
	// Trials is the number of trials to run (default 25).
	Trials int
	// Scale is the trace volume scale (default 0.01).
	Scale float64
	// Traces lists candidate 1-based catalog indices (default 4, 12, 13
	// — the smallest Table 1 traces, for fast trials).
	Traces []int
	// Protocols lists candidate protocols (default SRM, CESRM, LMS).
	Protocols []experiment.Protocol
	// Budget is the per-trial guardrail set (default DefaultBudget).
	Budget sim.Budget
	// Minimize delta-debugs each failure's chaos spec to a minimal
	// schedule reproducing the same failure class.
	Minimize bool
	// MaxShrinkRuns bounds the simulation runs the minimizer may spend
	// per failure (default 200).
	MaxShrinkRuns int
	// Log, when non-nil, receives one line per trial. The stream is
	// bit-reproducible for a fixed Config.
	Log io.Writer
}

// Result summarizes a soak campaign.
type Result struct {
	// Trials is the number of trials executed.
	Trials int
	// Failures holds every failed trial, in execution order.
	Failures []*Failure
}

// Run executes a soak campaign: generate cfg.Trials random trials, run
// each under the budget, classify and (optionally) minimize failures.
// The harness itself never fails on a trial failure — that is the
// result being collected; the returned error covers only setup problems
// (bad trace index, bad scale).
func Run(cfg Config) (*Result, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 25
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.01
	}
	if len(cfg.Traces) == 0 {
		cfg.Traces = []int{4, 12, 13}
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = []experiment.Protocol{experiment.SRM, experiment.CESRM, experiment.LMS}
	}
	if !cfg.Budget.Enabled() {
		cfg.Budget = DefaultBudget()
	}
	if cfg.MaxShrinkRuns <= 0 {
		cfg.MaxShrinkRuns = 200
	}
	gen, err := NewGenerator(cfg.Seed, cfg.Traces, cfg.Protocols, cfg.Scale)
	if err != nil {
		return nil, err
	}
	runner := NewRunner(cfg.Budget)
	runner.loader = gen.loader // share the trace cache
	out := &Result{}
	for i := 0; i < cfg.Trials; i++ {
		trial, err := gen.Next()
		if err != nil {
			return nil, err
		}
		_, fail := runner.RunTrial(trial)
		out.Trials++
		if fail == nil {
			logf(cfg.Log, "trial %d: %s ok", i, trial)
			continue
		}
		logf(cfg.Log, "trial %d: %s FAIL class=%s", i, trial, fail.Class)
		logf(cfg.Log, "  detail: %s", fail.Detail)
		if cfg.Minimize {
			minSpec, runs := runner.Minimize(trial, fail.Class, cfg.MaxShrinkRuns)
			fail.Minimized, fail.ShrinkRuns = minSpec, runs
			logf(cfg.Log, "  minimized (%d shrink runs): %q", runs, minSpec)
		}
		out.Failures = append(out.Failures, fail)
	}
	return out, nil
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
