package soak

import (
	"testing"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/experiment"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// TestDdminFindsMinimalSubset drives the ddmin core with a synthetic
// predicate: the "failure" needs exactly the two marker faults, buried
// among six irrelevant ones, and ddmin must isolate precisely that
// pair, preserving order.
func TestDdminFindsMinimalSubset(t *testing.T) {
	mk := func(host int) chaos.Fault {
		return chaos.Fault{Kind: chaos.Crash, At: time.Duration(host) * time.Second, Host: topology.NodeID(host)}
	}
	var faults []chaos.Fault
	for h := 1; h <= 8; h++ {
		faults = append(faults, mk(h))
	}
	calls := 0
	reproduces := func(sub []chaos.Fault) bool {
		calls++
		has := map[topology.NodeID]bool{}
		for _, f := range sub {
			has[f.Host] = true
		}
		return has[3] && has[6]
	}
	got := ddmin(faults, reproduces)
	if len(got) != 2 || got[0].Host != 3 || got[1].Host != 6 {
		t.Fatalf("ddmin returned %+v, want hosts [3 6]", got)
	}
	if calls == 0 || calls > 100 {
		t.Fatalf("ddmin spent %d predicate calls", calls)
	}
}

// TestDdminKeepsIrreducibleList checks ddmin leaves a list alone when
// every fault is load-bearing.
func TestDdminKeepsIrreducibleList(t *testing.T) {
	faults := []chaos.Fault{
		{Kind: chaos.Crash, At: time.Second, Host: 1},
		{Kind: chaos.Crash, At: 2 * time.Second, Host: 2},
		{Kind: chaos.Crash, At: 3 * time.Second, Host: 3},
	}
	got := ddmin(faults, func(sub []chaos.Fault) bool { return len(sub) == 3 })
	if len(got) != 3 {
		t.Fatalf("ddmin shrank an irreducible list to %d faults", len(got))
	}
}

// TestMinimizeEndToEnd shrinks a real failing trial: under a 2 s
// virtual-time budget every non-empty valid spec fails with the same
// budget class, so the minimizer must reach a single fault, respect
// validity (never emit a restart without its crash), and stay within
// its run budget — deterministically.
func TestMinimizeEndToEnd(t *testing.T) {
	g, err := NewGenerator(5, []int{4}, []experiment.Protocol{experiment.SRM}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.loader.load(4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	recs := tr.Tree.Receivers()
	trial := Trial{TraceIndex: 4, Protocol: experiment.SRM, Scale: 0.01, Seed: 2,
		Spec: &chaos.Spec{Name: "multi", Faults: []chaos.Fault{
			{Kind: chaos.Crash, At: 4 * time.Second, Host: recs[0], Purge: true},
			{Kind: chaos.Restart, At: 9 * time.Second, Host: recs[0]},
			{Kind: chaos.LinkDown, At: 3 * time.Second, Until: 6 * time.Second, Link: topology.LinkID(recs[1])},
			{Kind: chaos.Starve, At: 5 * time.Second, Until: 8 * time.Second, Host: topology.None},
		}}}
	r := NewRunner(sim.Budget{MaxVirtualTime: sim.Time(2 * time.Second)})
	_, fail := r.RunTrial(trial)
	if fail == nil {
		t.Fatal("trial did not fail under the 2s budget")
	}
	specA, runsA := r.Minimize(trial, fail.Class, 100)
	specB, runsB := r.Minimize(trial, fail.Class, 100)
	if specA.String() != specB.String() || runsA != runsB {
		t.Fatalf("minimization nondeterministic: %q (%d runs) vs %q (%d runs)",
			specA, runsA, specB, runsB)
	}
	if len(specA.Faults) != 1 {
		t.Fatalf("minimized to %d faults (%q), want 1", len(specA.Faults), specA)
	}
	if err := specA.Validate(tr.Tree); err != nil {
		t.Fatalf("minimized spec %q invalid: %v", specA, err)
	}
	if runsA > 100 {
		t.Fatalf("minimizer overspent its run budget: %d", runsA)
	}
	// The shrunk spec still reproduces the class.
	min := trial
	min.Spec = specA
	if _, f := r.RunTrial(min); f == nil || f.Class != fail.Class {
		t.Fatalf("minimized spec does not reproduce %q: %+v", fail.Class, f)
	}
}
