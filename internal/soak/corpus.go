package soak

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"cesrm/internal/chaos"
	"cesrm/internal/experiment"
	"cesrm/internal/sim"
	"cesrm/internal/trace"
)

// Entry is one replayable corpus scenario, the persisted form of a
// (usually minimized) soak failure. The on-disk format is line-based
// "key = value" with "#" comment lines:
//
//	# free-form notes
//	trace = WRN951216
//	protocol = CESRM
//	scale = 0.01
//	seed = 42
//	class = invariant:crash-silence
//	spec = crash@17s:host=4
//
// trace, protocol and spec are required; scale defaults to 0.01 and
// seed to 1. class records the failure class observed when the entry
// was captured — replay reports divergence from it but does not fail on
// it, because a fixed bug legitimately changes an entry's outcome to
// clean completion.
type Entry struct {
	// Trace is the catalog trace name (trace.ByName).
	Trace string
	// Protocol selects SRM, CESRM or LMS.
	Protocol experiment.Protocol
	// Scale is the trace volume scale.
	Scale float64
	// Seed drives the run's protocol randomness.
	Seed int64
	// Spec is the chaos schedule to replay.
	Spec *chaos.Spec
	// Class is the failure class recorded at capture time ("" for a
	// scenario expected to complete cleanly).
	Class string
	// Note holds free-form comment lines persisted above the entry.
	Note []string
}

// Marshal renders the entry in the corpus file format.
func (e *Entry) Marshal() []byte {
	var b strings.Builder
	for _, n := range e.Note {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	fmt.Fprintf(&b, "trace = %s\n", e.Trace)
	fmt.Fprintf(&b, "protocol = %s\n", e.Protocol)
	fmt.Fprintf(&b, "scale = %s\n", strconv.FormatFloat(e.Scale, 'g', -1, 64))
	fmt.Fprintf(&b, "seed = %d\n", e.Seed)
	if e.Class != "" {
		fmt.Fprintf(&b, "class = %s\n", e.Class)
	}
	fmt.Fprintf(&b, "spec = %s\n", e.Spec)
	return []byte(b.String())
}

// ParseEntry parses the corpus file format.
func ParseEntry(data []byte) (*Entry, error) {
	e := &Entry{Scale: 0.01, Seed: 1}
	seen := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			e.Note = append(e.Note, strings.TrimSpace(strings.TrimPrefix(line, "#")))
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("soak: corpus line %d: no '=' in %q", i+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("soak: corpus line %d: duplicate key %q", i+1, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "trace":
			e.Trace = val
		case "protocol":
			e.Protocol, err = ParseProtocol(val)
		case "scale":
			e.Scale, err = strconv.ParseFloat(val, 64)
		case "seed":
			e.Seed, err = strconv.ParseInt(val, 10, 64)
		case "class":
			e.Class = val
		case "spec":
			e.Spec, err = chaos.ParseSpec(val)
		default:
			return nil, fmt.Errorf("soak: corpus line %d: unknown key %q", i+1, key)
		}
		if err != nil {
			return nil, fmt.Errorf("soak: corpus line %d: %s: %w", i+1, key, err)
		}
	}
	switch {
	case e.Trace == "":
		return nil, fmt.Errorf("soak: corpus entry missing trace")
	case !seen["protocol"]:
		return nil, fmt.Errorf("soak: corpus entry missing protocol")
	case e.Spec == nil:
		return nil, fmt.Errorf("soak: corpus entry missing spec")
	case e.Scale <= 0 || e.Scale > 1:
		return nil, fmt.Errorf("soak: corpus scale %v out of (0, 1]", e.Scale)
	}
	return e, nil
}

// ReadEntry reads and parses one corpus file.
func ReadEntry(path string) (*Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e, err := ParseEntry(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// WriteEntry writes one corpus file.
func WriteEntry(path string, e *Entry) error {
	return os.WriteFile(path, e.Marshal(), 0o644)
}

// ParseProtocol parses a protocol name, case-insensitively.
func ParseProtocol(s string) (experiment.Protocol, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SRM":
		return experiment.SRM, nil
	case "CESRM":
		return experiment.CESRM, nil
	case "LMS":
		return experiment.LMS, nil
	default:
		return 0, fmt.Errorf("soak: unknown protocol %q", s)
	}
}

// ReplayOutcome reports one corpus entry's replay.
type ReplayOutcome struct {
	// Path is the corpus file replayed.
	Path string
	// Entry is the parsed entry.
	Entry *Entry
	// Trial is the trial the entry resolved to.
	Trial Trial
	// Status is the engine termination status (Completed when the run
	// panicked before the engine could stop — Failure distinguishes).
	Status sim.TerminationStatus
	// Fingerprint is the run's determinism digest ("" on panic).
	Fingerprint string
	// Result is the run result, nil if the run panicked.
	Result *experiment.RunResult
	// Failure is how the replay failed, nil on clean completion.
	Failure *Failure
}

// Replay runs one corpus file under the runner's budget.
func (r *Runner) Replay(path string) (*ReplayOutcome, error) {
	e, err := ReadEntry(path)
	if err != nil {
		return nil, err
	}
	ent, ok := trace.ByName(e.Trace)
	if !ok {
		return nil, fmt.Errorf("%s: unknown catalog trace %q", path, e.Trace)
	}
	tr, err := r.loader.load(ent.Index, e.Scale)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := e.Spec.Validate(tr.Tree); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	trial := Trial{TraceIndex: ent.Index, Protocol: e.Protocol, Scale: e.Scale, Seed: e.Seed, Spec: e.Spec}
	res, fail := r.runLoaded(tr, trial)
	out := &ReplayOutcome{Path: path, Entry: e, Trial: trial, Result: res, Failure: fail}
	if res != nil {
		out.Status = res.Status
		out.Fingerprint = res.Fingerprint
	}
	return out, nil
}

// ReplayDir replays every *.spec file in dir, in sorted path order.
func (r *Runner) ReplayDir(dir string) ([]*ReplayOutcome, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.spec"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("soak: no *.spec corpus entries in %s", dir)
	}
	sort.Strings(paths)
	out := make([]*ReplayOutcome, 0, len(paths))
	for _, p := range paths {
		o, err := r.Replay(p)
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
	return out, nil
}

// ReplayPath replays a corpus file, or every entry of a corpus
// directory.
func (r *Runner) ReplayPath(path string) ([]*ReplayOutcome, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return r.ReplayDir(path)
	}
	o, err := r.Replay(path)
	if err != nil {
		return nil, err
	}
	return []*ReplayOutcome{o}, nil
}
