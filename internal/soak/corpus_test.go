package soak

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/experiment"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

func TestCorpusEntryRoundTrip(t *testing.T) {
	e := &Entry{
		Trace:    "WRN950919",
		Protocol: experiment.CESRM,
		Scale:    0.01,
		Seed:     42,
		Class:    "invariant:crash-silence",
		Note:     []string{"first line", "second line"},
		Spec: &chaos.Spec{Name: "custom", Faults: []chaos.Fault{
			{Kind: chaos.Crash, At: 4 * time.Second, Host: 5, Purge: true,
				Link: topology.LinkID(topology.None)},
			{Kind: chaos.Duplicate, At: 6 * time.Second, Until: 9 * time.Second,
				Prob: 0.125, Delay: 2 * time.Millisecond,
				Host: topology.None, Link: topology.LinkID(topology.None)},
		}},
	}
	again, err := ParseEntry(e.Marshal())
	if err != nil {
		t.Fatalf("parsing %q: %v", e.Marshal(), err)
	}
	// Spec names are not persisted; compare faults and scalar fields.
	if !reflect.DeepEqual(e.Spec.Faults, again.Spec.Faults) {
		t.Fatalf("faults diverged:\n  %+v\n  %+v", e.Spec.Faults, again.Spec.Faults)
	}
	e.Spec, again.Spec = nil, nil
	if !reflect.DeepEqual(e, again) {
		t.Fatalf("entries diverged:\n  %+v\n  %+v", e, again)
	}
}

func TestParseEntryRejectsBadInput(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"", "missing trace"},
		{"trace = X\nspec = crash@1s:host=4\n", "missing protocol"},
		{"trace = X\nprotocol = CESRM\n", "missing spec"},
		{"trace = X\nprotocol = WARP\nspec = crash@1s:host=4\n", "unknown protocol"},
		{"trace = X\nprotocol = CESRM\nscale = 3\nspec = crash@1s:host=4\n", "out of (0, 1]"},
		{"trace = X\ntrace = Y\nprotocol = CESRM\nspec = crash@1s:host=4\n", "duplicate key"},
		{"garbage\n", "no '='"},
		{"frob = 1\n", "unknown key"},
		{"trace = X\nprotocol = CESRM\nspec = crash@1s:host=-4\n", "negative host"},
	}
	for _, c := range cases {
		_, err := ParseEntry([]byte(c.text))
		if err == nil {
			t.Errorf("ParseEntry(%q) accepted", c.text)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseEntry(%q) error %q, want substring %q", c.text, err, c.want)
		}
	}
}

// repoCorpusDir is the committed corpus, relative to this package.
const repoCorpusDir = "../../testdata/soak-corpus"

// TestCommittedCorpusReplays is the acceptance test for the replayable
// corpus: every committed entry must terminate with a structured
// TerminationStatus — never a panic, never a hang past the guardrails —
// and no entry may exhibit a fatal failure (invariant violation,
// panic, quiesce timeout) on the current tree. In particular the PR 4
// clock-overflow scenario, which once looped the virtual clock to
// int64 overflow, now replays to clean completion.
func TestCommittedCorpusReplays(t *testing.T) {
	r := NewRunner(DefaultBudget())
	outcomes, err := r.ReplayDir(repoCorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, o := range outcomes {
		name := filepath.Base(o.Path)
		seen[name] = true
		if o.Failure != nil && o.Failure.Fatal() {
			t.Errorf("%s: fatal failure %s: %s", name, o.Failure.Class, o.Failure.Detail)
			continue
		}
		if o.Result == nil {
			t.Errorf("%s: replay produced no result", name)
			continue
		}
		if o.Fingerprint == "" {
			t.Errorf("%s: replay has no fingerprint", name)
		}
		switch name {
		case "pr4-clock-overflow.spec":
			if o.Status != sim.Completed {
				t.Errorf("%s: status %v, want Completed (the PR 4 fix)", name, o.Status)
			}
		case "queue-overflow.spec":
			// The congestion entry must actually overflow the finite
			// queue — and every tail-dropped packet must be recovered
			// through the repair machinery, never abandoned.
			if o.Status != sim.Completed {
				t.Errorf("%s: status %v, want Completed", name, o.Status)
			}
			if o.Result.QueueDrops == 0 {
				t.Errorf("%s: replay produced no queue drops", name)
			}
			if o.Result.Abandoned != 0 {
				t.Errorf("%s: %d abandonments; congestion loss must be recovered", name, o.Result.Abandoned)
			}
		case "replier-leave.spec":
			if o.Status != sim.Completed {
				t.Errorf("%s: status %v, want Completed", name, o.Status)
			}
			if o.Result.Abandoned != 0 {
				t.Errorf("%s: %d abandonments after graceful replier departure", name, o.Result.Abandoned)
			}
		}
	}
	for _, want := range []string{"pr4-clock-overflow.spec", "replier-churn.spec", "replier-leave.spec", "queue-overflow.spec"} {
		if !seen[want] {
			t.Errorf("committed corpus lacks the seeded %s entry", want)
		}
	}
}

// TestReplayIsDeterministic replays one committed entry twice and
// requires identical fingerprints — corpus entries double as
// regression fingerprint pins.
func TestReplayIsDeterministic(t *testing.T) {
	r := NewRunner(DefaultBudget())
	a, err := r.Replay(filepath.Join(repoCorpusDir, "pr4-clock-overflow.spec"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Replay(filepath.Join(repoCorpusDir, "pr4-clock-overflow.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("replay fingerprints diverged: %q vs %q", a.Fingerprint, b.Fingerprint)
	}
}
