package experiment

import (
	"fmt"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// Pair holds the SRM and CESRM runs of the same trace under identical
// network conditions — the unit of comparison for every figure in §4.4.
type Pair struct {
	Trace *trace.Trace
	SRM   *RunResult
	CESRM *RunResult
}

// PairConfig parameterizes RunPair; the zero value reproduces the
// paper's setup.
type PairConfig struct {
	// Base is applied to both runs; its Trace and Protocol fields are
	// overwritten.
	Base RunConfig
}

// RunPair reenacts tr under both protocols with identical parameters.
func RunPair(tr *trace.Trace, cfg PairConfig) (*Pair, error) {
	srmCfg := cfg.Base
	srmCfg.Trace = tr
	srmCfg.Protocol = SRM
	srmRes, err := Run(srmCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: SRM run: %w", err)
	}
	cesrmCfg := cfg.Base
	cesrmCfg.Trace = tr
	cesrmCfg.Protocol = CESRM
	cesrmRes, err := Run(cesrmCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: CESRM run: %w", err)
	}
	return &Pair{Trace: tr, SRM: srmRes, CESRM: cesrmRes}, nil
}

// ReceiverLatencyRow is one bar pair of Figure 1: a receiver's average
// normalized recovery time under each protocol, in RTT units.
type ReceiverLatencyRow struct {
	Receiver topology.NodeID
	// Index is the 1-based receiver position used in the paper's plots.
	Index      int
	SRMMean    float64
	CESRMMean  float64
	Recoveries int // CESRM recovery count backing the mean
}

// Figure1 returns the per-receiver average normalized recovery times for
// both protocols.
func (p *Pair) Figure1() []ReceiverLatencyRow {
	rows := make([]ReceiverLatencyRow, 0, len(p.SRM.Receivers))
	for i, r := range p.SRM.Receivers {
		s := p.SRM.Collector.NormalizedRecovery(r, p.SRM.RTT)
		c := p.CESRM.Collector.NormalizedRecovery(r, p.CESRM.RTT)
		rows = append(rows, ReceiverLatencyRow{
			Receiver:   r,
			Index:      i + 1,
			SRMMean:    s.MeanRTT,
			CESRMMean:  c.MeanRTT,
			Recoveries: c.Count,
		})
	}
	return rows
}

// ExpeditedDeltaRow is one bar of Figure 2: the difference between a
// receiver's average normalized non-expedited and expedited recovery
// times under CESRM, in RTT units.
type ExpeditedDeltaRow struct {
	Receiver topology.NodeID
	Index    int
	// Delta = mean(non-expedited) - mean(expedited); zero when the
	// receiver had no recoveries of one kind.
	Delta          float64
	ExpeditedMean  float64
	NormalMean     float64
	ExpeditedCount int
	NormalCount    int
}

// Figure2 returns the per-receiver expedited vs non-expedited latency
// difference under CESRM.
func (p *Pair) Figure2() []ExpeditedDeltaRow {
	rows := make([]ExpeditedDeltaRow, 0, len(p.CESRM.Receivers))
	for i, r := range p.CESRM.Receivers {
		exp, norm := p.CESRM.Collector.NormalizedRecoverySplit(r, p.CESRM.RTT)
		row := ExpeditedDeltaRow{
			Receiver:       r,
			Index:          i + 1,
			ExpeditedMean:  exp.MeanRTT,
			NormalMean:     norm.MeanRTT,
			ExpeditedCount: exp.Count,
			NormalCount:    norm.Count,
		}
		if exp.Count > 0 && norm.Count > 0 {
			row.Delta = norm.MeanRTT - exp.MeanRTT
		}
		rows = append(rows, row)
	}
	return rows
}

// PacketCountRow is one bar group of Figures 3 and 4: per-host packet
// counts. Host index 0 is the source, matching the paper's x-axes.
type PacketCountRow struct {
	Host  topology.NodeID
	Index int
	// SRM is the count under plain SRM (all multicast).
	SRM int
	// CESRMMulticast is CESRM's count of multicast packets (fallback
	// requests in Figure 3, non-expedited replies in Figure 4).
	CESRMMulticast int
	// CESRMExpedited is CESRM's expedited count (unicast requests in
	// Figure 3, expedited replies in Figure 4).
	CESRMExpedited int
}

// hosts returns source-then-receivers, matching the paper's per-host
// bar ordering with the source as host 0.
func (p *Pair) hosts() []topology.NodeID {
	return append([]topology.NodeID{p.Trace.Tree.Root()}, p.SRM.Receivers...)
}

// Figure3 returns per-host repair request counts: SRM multicast
// requests vs CESRM's multicast (fallback) and unicast (expedited)
// requests.
func (p *Pair) Figure3() []PacketCountRow {
	rows := make([]PacketCountRow, 0, len(p.SRM.Receivers)+1)
	for i, h := range p.hosts() {
		rows = append(rows, PacketCountRow{
			Host:           h,
			Index:          i,
			SRM:            p.SRM.Collector.Counts(h).Requests,
			CESRMMulticast: p.CESRM.Collector.Counts(h).Requests,
			CESRMExpedited: p.CESRM.Collector.Counts(h).ExpRequests,
		})
	}
	return rows
}

// Figure4 returns per-host repair reply counts: SRM replies vs CESRM's
// non-expedited and expedited replies.
func (p *Pair) Figure4() []PacketCountRow {
	rows := make([]PacketCountRow, 0, len(p.SRM.Receivers)+1)
	for i, h := range p.hosts() {
		rows = append(rows, PacketCountRow{
			Host:           h,
			Index:          i,
			SRM:            p.SRM.Collector.Counts(h).Replies,
			CESRMMulticast: p.CESRM.Collector.Counts(h).Replies,
			CESRMExpedited: p.CESRM.Collector.Counts(h).ExpReplies,
		})
	}
	return rows
}

// ExpeditedSuccess returns the Figure 5 (left) metric: the percentage of
// expedited recoveries that succeeded (expedited replies per expedited
// request), and false if CESRM never expedited.
func (p *Pair) ExpeditedSuccess() (float64, bool) {
	ratio, ok := p.CESRM.Collector.ExpeditedSuccessRatio()
	return 100 * ratio, ok
}

// OverheadRow is the Figure 5 (right) metric: CESRM's transmission
// overhead as a percentage of SRM's, in link-crossing units, split into
// retransmissions and control packets (multicast vs unicast). Session
// traffic is identical under both protocols and excluded.
type OverheadRow struct {
	// RetransPct is CESRM's retransmission crossings (multicast +
	// subcast + unicast payload) as % of SRM's.
	RetransPct float64
	// ControlMulticastPct is CESRM's multicast control crossings as % of
	// SRM's control crossings.
	ControlMulticastPct float64
	// ControlUnicastPct is CESRM's unicast control crossings as % of
	// SRM's control crossings.
	ControlUnicastPct float64
}

// ControlTotalPct is the total CESRM control overhead relative to SRM.
func (o OverheadRow) ControlTotalPct() float64 {
	return o.ControlMulticastPct + o.ControlUnicastPct
}

// Overhead computes the Figure 5 (right) row for the pair.
func (p *Pair) Overhead() OverheadRow {
	s := p.SRM.Crossings
	c := p.CESRM.Crossings
	srmRetrans := float64(s.PayloadMulticast + s.PayloadSubcast + s.PayloadUnicast)
	// Subcast control rides in the multicast bucket: it is scoped
	// multicast delivery, and today's protocols emit none of it anyway.
	srmControl := float64(s.ControlMulticast + s.ControlSubcast + s.ControlUnicast)
	row := OverheadRow{}
	if srmRetrans > 0 {
		row.RetransPct = 100 * float64(c.PayloadMulticast+c.PayloadSubcast+c.PayloadUnicast) / srmRetrans
	}
	if srmControl > 0 {
		row.ControlMulticastPct = 100 * float64(c.ControlMulticast+c.ControlSubcast) / srmControl
		row.ControlUnicastPct = 100 * float64(c.ControlUnicast) / srmControl
	}
	return row
}

// LatencyReductionPct returns the headline result: the percentage by
// which CESRM reduces SRM's average normalized recovery time across all
// receivers (the paper reports roughly 50%).
func (p *Pair) LatencyReductionPct() float64 {
	s := p.SRM.Collector.OverallNormalized(p.SRM.RTT)
	c := p.CESRM.Collector.OverallNormalized(p.CESRM.RTT)
	if s.MeanRTT == 0 {
		return 0
	}
	return 100 * (s.MeanRTT - c.MeanRTT) / s.MeanRTT
}
