package experiment

import (
	"testing"
	"time"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// smallTrace generates a quick synthetic trace for integration tests.
func smallTrace(tb testing.TB, seed int64) *trace.Trace {
	tb.Helper()
	tr, err := trace.Generate(trace.GenSpec{
		Name:         "small",
		Topology:     topology.GenSpec{Receivers: 8, Depth: 4},
		NumPackets:   2000,
		Period:       80 * time.Millisecond,
		TargetLosses: 600,
		Seed:         seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func TestRunSRMCompletes(t *testing.T) {
	tr := smallTrace(t, 1)
	res, err := Run(RunConfig{Trace: tr, Protocol: SRM, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Collector.Recoveries()
	if len(recs) == 0 || len(recs) > tr.TotalLosses() {
		t.Fatalf("recoveries = %d, want in (0, %d] (passive repair can pre-empt detection)", len(recs), tr.TotalLosses())
	}
	// SRM sends multicast requests and replies, never expedited traffic.
	tc := res.Collector.TotalCounts()
	if tc.Requests == 0 || tc.Replies == 0 {
		t.Fatalf("SRM sent no recovery traffic: %+v", tc)
	}
	if tc.ExpRequests != 0 || tc.ExpReplies != 0 {
		t.Fatalf("SRM sent expedited traffic: %+v", tc)
	}
	// First-round SRM recoveries should land in the band §3.4 predicts:
	// roughly 1.5 to 3.25 RTT for C1=C2=2, D1=D2=1.
	fr := res.Collector.FirstRoundNormalized(res.RTT)
	if fr.Count == 0 {
		t.Fatal("no first-round recoveries")
	}
	if fr.MeanRTT < 1.0 || fr.MeanRTT > 4.0 {
		t.Errorf("first-round mean = %.2f RTT, expected in [1, 4]", fr.MeanRTT)
	}
}

func TestRunCESRMCompletesAndExpedites(t *testing.T) {
	tr := smallTrace(t, 1)
	res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Collector.Recoveries()
	if len(recs) == 0 || len(recs) > tr.TotalLosses() {
		t.Fatalf("recoveries = %d, want in (0, %d]", len(recs), tr.TotalLosses())
	}
	tc := res.Collector.TotalCounts()
	if tc.ExpRequests == 0 {
		t.Fatal("CESRM never attempted expedited recovery")
	}
	ratio, ok := res.Collector.ExpeditedSuccessRatio()
	if !ok {
		t.Fatal("no expedited requests recorded")
	}
	if ratio < 0.5 {
		t.Errorf("expedited success ratio %.2f, want >= 0.5 on a bursty trace", ratio)
	}
	expedited := 0
	for _, r := range recs {
		if r.Expedited {
			expedited++
		}
	}
	if expedited == 0 {
		t.Fatal("no recovery completed via expedited reply")
	}
}

func TestCESRMFasterAndCheaperThanSRM(t *testing.T) {
	tr := smallTrace(t, 2)
	srmRes, err := Run(RunConfig{Trace: tr, Protocol: SRM, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cesrmRes, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srmLat := srmRes.Collector.OverallNormalized(srmRes.RTT)
	cesrmLat := cesrmRes.Collector.OverallNormalized(cesrmRes.RTT)
	if cesrmLat.MeanRTT >= srmLat.MeanRTT {
		t.Errorf("CESRM mean latency %.2f RTT not below SRM's %.2f RTT", cesrmLat.MeanRTT, srmLat.MeanRTT)
	}
	// The paper: CESRM sends 30-80% of SRM's retransmissions.
	srmRepl := srmRes.Collector.TotalCounts().Replies
	cc := cesrmRes.Collector.TotalCounts()
	cesrmRepl := cc.Replies + cc.ExpReplies
	if cesrmRepl >= srmRepl {
		t.Errorf("CESRM replies %d not below SRM's %d", cesrmRepl, srmRepl)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Fatal("accepted nil trace")
	}
	tr := smallTrace(t, 3)
	if _, err := Run(RunConfig{Trace: tr, Protocol: Protocol(99)}); err == nil {
		t.Fatal("accepted unknown protocol")
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := smallTrace(t, 4)
	a, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinishedAt != b.FinishedAt {
		t.Fatal("same seed finished at different times")
	}
	if a.Collector.TotalCounts() != b.Collector.TotalCounts() {
		t.Fatal("same seed produced different counts")
	}
	if a.Crossings != b.Crossings {
		t.Fatal("same seed produced different crossings")
	}
}

// BenchmarkRunCESRM measures the end-to-end cost of one trace-driven
// CESRM run (trace generation excluded).
func BenchmarkRunCESRM(b *testing.B) {
	tr := smallTrace(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}
