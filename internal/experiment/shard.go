package experiment

import (
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
)

// deferredObserver routes a host's protocol-event emissions through its
// shard's op log when issued inside a parallel region, so the collector,
// validator and fingerprint recorder observe every event in the exact
// serial dispatch order (and with the recorder's clock already at the
// batch instant). Outside a region it forwards immediately.
type deferredObserver struct {
	sh  *sim.Shard
	obs srm.Observer
}

var _ srm.Observer = (*deferredObserver)(nil)

func (d *deferredObserver) LossDetected(host, source topology.NodeID, seq int, at sim.Time) {
	if !d.sh.Buffering() {
		d.obs.LossDetected(host, source, seq, at)
		return
	}
	d.sh.Defer(func() { d.obs.LossDetected(host, source, seq, at) })
}

func (d *deferredObserver) Recovered(host, source topology.NodeID, seq int, at sim.Time, info srm.RecoveryInfo) {
	if !d.sh.Buffering() {
		d.obs.Recovered(host, source, seq, at, info)
		return
	}
	d.sh.Defer(func() { d.obs.Recovered(host, source, seq, at, info) })
}

func (d *deferredObserver) RequestSent(host, source topology.NodeID, seq int, round int) {
	if !d.sh.Buffering() {
		d.obs.RequestSent(host, source, seq, round)
		return
	}
	d.sh.Defer(func() { d.obs.RequestSent(host, source, seq, round) })
}

func (d *deferredObserver) ExpRequestSent(host, source topology.NodeID, seq int) {
	if !d.sh.Buffering() {
		d.obs.ExpRequestSent(host, source, seq)
		return
	}
	d.sh.Defer(func() { d.obs.ExpRequestSent(host, source, seq) })
}

func (d *deferredObserver) ReplySent(host, source topology.NodeID, seq int, expedited bool) {
	if !d.sh.Buffering() {
		d.obs.ReplySent(host, source, seq, expedited)
		return
	}
	d.sh.Defer(func() { d.obs.ReplySent(host, source, seq, expedited) })
}

func (d *deferredObserver) SessionSent(host topology.NodeID) {
	if !d.sh.Buffering() {
		d.obs.SessionSent(host)
		return
	}
	d.sh.Defer(func() { d.obs.SessionSent(host) })
}

func (d *deferredObserver) RequestAbandoned(host, source topology.NodeID, seq int, rounds int) {
	if !d.sh.Buffering() {
		d.obs.RequestAbandoned(host, source, seq, rounds)
		return
	}
	d.sh.Defer(func() { d.obs.RequestAbandoned(host, source, seq, rounds) })
}
