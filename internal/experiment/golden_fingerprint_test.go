package experiment

import "testing"

// goldenFingerprints pins the exact run fingerprints of one small run
// per protocol (smallTrace(99), seed 123) under the current v2 format.
// The v2 digest covers the identical per-event bytes as the historical
// v1 goldens — only the stream-length's position moved (see
// FingerprintVersion and TestFingerprintV1V2Migration) — so these
// strings inherit v1's guarantee: behavioral transparency. A refactor
// that moves a single event, timer or tie-break changes them; that is a
// correctness bug, not a golden to update.
var goldenFingerprints = map[Protocol]string{
	SRM:   "v2:82379370e2a1342f7ff2f70c1f7fe081",
	CESRM: "v2:e62b3c9278a6c6c79c0059cd2869d106",
	LMS:   "v2:eb060fbd50c4e4f9bb5df0def6c15b54",
}

// goldenFingerprintsV1 are the same three runs' digests under the
// retired v1 format (length-prefixed event stream), kept for the
// migration cross-check.
var goldenFingerprintsV1 = map[Protocol]string{
	SRM:   "v1:6b106a9023156b50a7f8f7e901c18d83",
	CESRM: "v1:22d0cfe77977f428f0d688a0724d2986",
	LMS:   "v1:a3df4258a922f846f7133ee92a9f1ea5",
}

// TestGoldenFingerprints pins one small run per protocol against the v2
// goldens.
func TestGoldenFingerprints(t *testing.T) {
	tr := smallTrace(t, 99)
	for p, fp := range goldenFingerprints {
		res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Fingerprint != fp {
			t.Errorf("%v fingerprint drifted:\n got  %s\n want %s", p, res.Fingerprint, fp)
		}
	}
}
