package experiment

import "testing"

// TestGoldenFingerprints pins the exact run fingerprints of one small
// run per protocol, recorded before the allocation-lean refactor of the
// engine and network layers. The optimization contract is behavioral
// transparency: pooling scheduled events, reusing flood scratch buffers
// and precomputing hop distances must not move a single event, so these
// strings must never change. If they do, the refactor altered scheduling
// order or timing — a correctness bug, not a golden to update.
func TestGoldenFingerprints(t *testing.T) {
	tr := smallTrace(t, 99)
	want := map[Protocol]string{
		SRM:   "v1:6b106a9023156b50a7f8f7e901c18d83",
		CESRM: "v1:22d0cfe77977f428f0d688a0724d2986",
		LMS:   "v1:a3df4258a922f846f7133ee92a9f1ea5",
	}
	for p, fp := range want {
		res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Fingerprint != fp {
			t.Errorf("%v fingerprint drifted:\n got  %s\n want %s", p, res.Fingerprint, fp)
		}
	}
}
