package experiment

import (
	"fmt"
	"testing"

	"cesrm/internal/chaos"
)

// fingerprintV1 recomputes the retired v1 digest from a retained run.
// v1 led section 1 with the event-stream length; everything after it —
// the per-event bytes and sections 2-4 — is byte-identical to v2. The
// layout is deliberately spelled out rather than shared with
// fpHasher.finish: this function documents the frozen historical format
// the migration test pins.
func fingerprintV1(res *RunResult) string {
	f := newFPHasher()

	// v1 section 1: length-prefixed event stream.
	f.u64(uint64(len(res.Events)))
	for _, ev := range res.Events {
		f.event(ev)
	}

	// Section 2: link-crossing counters.
	c := res.Crossings
	f.u64(c.Data)
	f.u64(c.Session)
	f.u64(c.PayloadMulticast)
	f.u64(c.PayloadSubcast)
	f.u64(c.PayloadUnicast)
	f.u64(c.ControlMulticast + c.ControlSubcast)
	f.u64(c.ControlUnicast)

	// Section 3: finish time.
	f.i64(int64(res.FinishedAt))

	// Section 4: per-receiver recovery metrics in trace order.
	f.u64(uint64(len(res.Receivers)))
	for _, r := range res.Receivers {
		f.node(r)
		f.i64(int64(res.Collector.Losses(r)))
		hc := res.Collector.Counts(r)
		f.i64(int64(hc.Requests))
		f.i64(int64(hc.ExpRequests))
		f.i64(int64(hc.Replies))
		f.i64(int64(hc.ExpReplies))
		f.i64(int64(hc.Sessions))
		lat := res.Collector.NormalizedRecovery(r, res.RTT)
		f.i64(int64(lat.Count))
		f.f64(lat.MeanRTT)
	}

	return fmt.Sprintf("v1:%x", f.h.Sum(nil)[:16])
}

// TestFingerprintV1V2Migration is the one-time cross-check of the
// v1 -> v2 fingerprint format change: for each protocol's golden run it
// reconstructs the retired v1 digest from the retained event stream and
// asserts it matches the historical v1 golden, while the run's own (v2)
// fingerprint matches the new golden. Together the two assertions prove
// the format change moved only the stream-length's position — the
// simulated behavior behind both digests is the same.
func TestFingerprintV1V2Migration(t *testing.T) {
	tr := smallTrace(t, 99)
	for p, wantV1 := range goldenFingerprintsV1 {
		res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123, KeepEvents: true})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got := fingerprintV1(res); got != wantV1 {
			t.Errorf("%v reconstructed v1 fingerprint:\n got  %s\n want %s", p, got, wantV1)
		}
		if want := goldenFingerprints[p]; res.Fingerprint != want {
			t.Errorf("%v v2 fingerprint:\n got  %s\n want %s", p, res.Fingerprint, want)
		}
	}
}

// TestKeepEventsControlsRetention checks event retention is decided
// inside the run: by default the recorder streams events into the
// digest without materializing them, and only KeepEvents builds the
// timeline.
func TestKeepEventsControlsRetention(t *testing.T) {
	tr := smallTrace(t, 7)
	off, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if off.Events != nil {
		t.Fatalf("default run retained %d events, want nil", len(off.Events))
	}
	on, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5, KeepEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Events) == 0 {
		t.Fatal("KeepEvents run retained no events")
	}
	// Retention must not perturb the run itself.
	if off.Fingerprint != on.Fingerprint {
		t.Fatalf("retention changed the fingerprint: %s != %s", off.Fingerprint, on.Fingerprint)
	}
}

// TestReleaseRecoveredIsFingerprintInert is the watermark release's
// acceptance gate: releasing fully-recovered per-packet state mid-run
// must not change a single event, the finish time or any digested
// metric — the fingerprint is byte-identical with release on or off —
// while the peak number of live per-packet cells stays well below the
// run's total, proving state really was discarded mid-run.
func TestReleaseRecoveredIsFingerprintInert(t *testing.T) {
	tr := smallTrace(t, 31)
	for _, p := range []Protocol{SRM, CESRM, LMS} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			off, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 17})
			if err != nil {
				t.Fatal(err)
			}
			on, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 17, ReleaseRecovered: true})
			if err != nil {
				t.Fatal(err)
			}
			if on.Fingerprint != off.Fingerprint {
				t.Fatalf("release changed the fingerprint:\n on  %s\n off %s", on.Fingerprint, off.Fingerprint)
			}
			// The trace has 2000 packets across 8 receivers plus the source;
			// without release the collector's per-packet table grows one cell
			// per (host, lost-or-recovered packet). With release the peak
			// must be bounded by the recovery horizon, far below the total.
			peak := on.Collector.PeakPacketCells()
			total := off.Collector.PeakPacketCells()
			if peak == 0 {
				t.Fatal("release-on run recorded no per-packet cells")
			}
			if peak >= total/2 {
				t.Fatalf("release-on peak cells %d not meaningfully below release-off %d", peak, total)
			}
			if on.Collector.PacketCells() > peak {
				t.Fatalf("live cells %d exceed recorded peak %d", on.Collector.PacketCells(), peak)
			}
		})
	}
}

// TestCrashOnlyChaosReleaseInert pins the narrowed release gate: a
// crash-only chaos spec (no restart) releases recovered state mid-run —
// peak live cells stay well below the retained run's — while the
// fingerprint is byte-identical with release on or off. A spec
// containing a restart must keep the gate closed: a restarted host
// re-recovers everything, so nothing may be discarded.
func TestCrashOnlyChaosReleaseInert(t *testing.T) {
	tr := smallTrace(t, 31)
	victim := tr.Tree.Receivers()[0]
	crashOnly, err := chaos.ParseSpec(fmt.Sprintf("crash@30s:host=%d", victim))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 17, Chaos: crashOnly})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 17, Chaos: crashOnly, ReleaseRecovered: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Fingerprint != off.Fingerprint {
		t.Fatalf("release under crash-only chaos changed the fingerprint:\n on  %s\n off %s",
			on.Fingerprint, off.Fingerprint)
	}
	peak, total := on.Collector.PeakPacketCells(), off.Collector.PeakPacketCells()
	if peak == 0 {
		t.Fatal("release-on run recorded no per-packet cells")
	}
	if peak >= total/2 {
		t.Fatalf("crash-only chaos did not release: peak cells %d vs retained %d", peak, total)
	}

	withRestart, err := chaos.ParseSpec(fmt.Sprintf("crash@30s:host=%d;restart@60s:host=%d", victim, victim))
	if err != nil {
		t.Fatal(err)
	}
	held, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 17, Chaos: withRestart, ReleaseRecovered: true})
	if err != nil {
		t.Fatal(err)
	}
	heldOff, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 17, Chaos: withRestart})
	if err != nil {
		t.Fatal(err)
	}
	if held.Collector.PeakPacketCells() != heldOff.Collector.PeakPacketCells() {
		t.Fatalf("restart spec must suppress release: peak %d (release on) vs %d (off)",
			held.Collector.PeakPacketCells(), heldOff.Collector.PeakPacketCells())
	}
}
