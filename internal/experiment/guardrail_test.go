package experiment

import (
	"testing"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// TestBudgetAbortDegradesGracefully checks that a run tripping a
// guardrail returns a structured result — termination status plus a
// diagnostic snapshot with per-host outstanding losses — instead of an
// error, a hang or a panic, and that the clock never passes the bound.
func TestBudgetAbortDegradesGracefully(t *testing.T) {
	tr := smallTrace(t, 42)
	budget := sim.Budget{MaxVirtualTime: sim.Time(2 * time.Second)} // inside the 3 s warmup
	res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 9, Budget: budget})
	if err != nil {
		t.Fatalf("budget abort surfaced as error: %v", err)
	}
	if res.Status != sim.DeadlineExceeded {
		t.Fatalf("Status = %v, want DeadlineExceeded", res.Status)
	}
	if res.Diag == nil {
		t.Fatal("aborted run carries no diagnostic")
	}
	if res.Diag.Clock > sim.Time(2*time.Second) {
		t.Errorf("clock %v advanced past the %v budget", res.Diag.Clock, 2*time.Second)
	}
	if res.FinishedAt != res.Diag.Clock {
		t.Errorf("FinishedAt %v != diagnostic clock %v", res.FinishedAt, res.Diag.Clock)
	}
	if res.Diag.Pending == 0 {
		t.Error("diagnostic reports no pending events for a run aborted mid-flight")
	}
	if res.Fingerprint == "" {
		t.Error("aborted run has no fingerprint")
	}
}

// TestBudgetAbortIsDeterministic checks that aborted runs are exactly
// as reproducible as completed ones: same config, same partial
// fingerprint, same diagnostic.
func TestBudgetAbortIsDeterministic(t *testing.T) {
	tr := smallTrace(t, 43)
	cfg := RunConfig{Trace: tr, Protocol: SRM, Seed: 3,
		Budget: sim.Budget{MaxEvents: 20000}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != sim.EventBudgetExceeded || b.Status != a.Status {
		t.Fatalf("statuses %v/%v, want EventBudgetExceeded twice", a.Status, b.Status)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("aborted-run fingerprints diverged: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	if a.Diag.String() != b.Diag.String() {
		t.Fatalf("diagnostics diverged:\n  %s\n  %s", a.Diag, b.Diag)
	}
}

// TestZeroBudgetLeavesGoldensUntouched pins the acceptance criterion
// that an explicitly zero budget configuration is behaviorally
// invisible: the golden fingerprints of TestGoldenFingerprints must
// come out byte-identical with the guardrail field present-but-off, and
// identical again with every guardrail armed generously enough never to
// trip.
func TestZeroBudgetLeavesGoldensUntouched(t *testing.T) {
	tr := smallTrace(t, 99)
	want := goldenFingerprints
	generous := sim.Budget{
		MaxVirtualTime: sim.Time(24 * time.Hour),
		MaxEvents:      1 << 40,
		MaxPending:     1 << 30,
		StallEvents:    1 << 30,
	}
	for p, fp := range want {
		for _, b := range []sim.Budget{{}, generous} {
			res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123, Budget: b})
			if err != nil {
				t.Fatalf("%v (budget %+v): %v", p, b, err)
			}
			if res.Status != sim.Completed {
				t.Fatalf("%v (budget %+v): status %v", p, b, res.Status)
			}
			if res.Fingerprint != fp {
				t.Errorf("%v (budget %+v) fingerprint drifted:\n got  %s\n want %s",
					p, b, res.Fingerprint, fp)
			}
		}
	}
}

// TestSuiteContinueOnErrorRecordsFailures checks the sweep-level
// graceful degradation: with ContinueOnError a failing trace is
// recorded in its slot and later traces still run.
func TestSuiteContinueOnErrorRecordsFailures(t *testing.T) {
	// An unconditionally invalid chaos spec fails every pair at
	// validation time, before any simulation work.
	bad := &chaos.Spec{Name: "bad", Faults: []chaos.Fault{
		{Kind: chaos.Crash, At: -time.Second, Host: topology.NodeID(1)},
	}}
	s := Suite{Scale: 0.01, Seed: 1, Traces: []int{4, 13},
		Base: RunConfig{Chaos: bad}, ContinueOnError: true}
	results, err := s.Run()
	if err != nil {
		t.Fatalf("ContinueOnError suite aborted: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("result %d: failure not recorded", i)
		}
		if r.Pair != nil {
			t.Errorf("result %d: failed entry has a pair", i)
		}
		if r.Entry.Index == 0 {
			t.Errorf("result %d: entry not recorded", i)
		}
	}
	// Parallel path behaves identically.
	s.Parallel = 2
	presults, err := s.Run()
	if err != nil {
		t.Fatalf("parallel ContinueOnError suite aborted: %v", err)
	}
	for i, r := range presults {
		if r.Err == nil {
			t.Errorf("parallel result %d: failure not recorded", i)
		}
	}
}

// TestSuiteCarriesTerminationStatuses checks budget statuses propagate
// through SuiteResult without turning the sweep into an error.
func TestSuiteCarriesTerminationStatuses(t *testing.T) {
	s := Suite{Scale: 0.01, Seed: 1, Traces: []int{4},
		Base: RunConfig{Budget: sim.Budget{MaxVirtualTime: sim.Time(2 * time.Second)}}}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].SRMStatus; got != sim.DeadlineExceeded {
		t.Errorf("SRMStatus = %v, want DeadlineExceeded", got)
	}
	if got := results[0].CESRMStatus; got != sim.DeadlineExceeded {
		t.Errorf("CESRMStatus = %v, want DeadlineExceeded", got)
	}
	if results[0].Err != nil {
		t.Errorf("budget abort recorded as suite error: %v", results[0].Err)
	}
}
