package experiment

import (
	"math/rand"
	"testing"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/core"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// chaosHorizon returns the warmup-plus-data-phase duration of a trace
// run under default parameters, the window Scenarios places faults in.
func chaosHorizon(tr *trace.Trace) time.Duration {
	warmup := 3 * time.Second // 3 × default SessionPeriod
	return warmup + time.Duration(tr.NumPackets())*tr.Period
}

// TestChaosScenarioMatrixInvariants runs every scenario of the
// deterministic matrix under CESRM and checks the run completes with
// the online invariants green: crashed hosts silent, live receivers
// fully reliable, expedited recovery falling back to SRM within the
// round bound. Run reports any violation as an error.
func TestChaosScenarioMatrixInvariants(t *testing.T) {
	tr := smallTrace(t, 5)
	for _, spec := range chaos.Scenarios(tr.Tree, chaosHorizon(tr)) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 7, Chaos: spec})
			if err != nil {
				t.Fatal(err)
			}
			if res.Fingerprint == "" {
				t.Fatal("chaos run produced no fingerprint")
			}
		})
	}
}

// TestChaosHarnessIsProtocolGeneric smokes the churn scenario that
// exercises restart across all three protocols.
func TestChaosHarnessIsProtocolGeneric(t *testing.T) {
	tr := smallTrace(t, 6)
	specs := chaos.Scenarios(tr.Tree, chaosHorizon(tr))
	var churn *chaos.Spec
	for _, s := range specs {
		if s.Name == "crash-restart" {
			churn = s
		}
	}
	if churn == nil {
		t.Fatal("crash-restart scenario missing")
	}
	for _, proto := range []Protocol{SRM, CESRM, LMS} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			if _, err := Run(RunConfig{Trace: tr, Protocol: proto, Seed: 11, Chaos: churn}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosRunDeterminism is the acceptance gate for the harness's
// headline property: a chaos-enabled configuration — crash, restart,
// link flaps, jitter ramp, duplicate storm and session starvation all
// at once — replays to the identical fingerprint.
func TestChaosRunDeterminism(t *testing.T) {
	tr := smallTrace(t, 5)
	recs := tr.Tree.Receivers()
	h := chaosHorizon(tr)
	spec := &chaos.Spec{Name: "audit", Faults: []chaos.Fault{
		{Kind: chaos.Crash, At: h * 3 / 10, Host: recs[1], Purge: true},
		{Kind: chaos.Restart, At: h * 6 / 10, Host: recs[1]},
		{Kind: chaos.LinkDown, At: h / 4, Until: h * 7 / 20, Link: topology.LinkID(recs[0])},
		{Kind: chaos.Jitter, At: h / 2, Until: h * 7 / 10, Max: 2 * time.Millisecond},
		{Kind: chaos.Duplicate, At: h / 10, Until: h / 5, Prob: 0.05, Delay: 3 * time.Millisecond},
		{Kind: chaos.Starve, At: h * 4 / 5, Until: h * 9 / 10, Host: topology.None},
	}}
	cfg := RunConfig{Trace: tr, Protocol: CESRM, Seed: 21, Chaos: spec}
	res, err := VerifyDeterminism(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint == "" {
		t.Fatal("no fingerprint")
	}
}

// TestChaosSpecValidationSurfacesFromRun checks an ill-formed spec is
// rejected before the simulation starts.
func TestChaosSpecValidationSurfacesFromRun(t *testing.T) {
	tr := smallTrace(t, 5)
	spec := &chaos.Spec{Name: "bad", Faults: []chaos.Fault{
		{Kind: chaos.Crash, At: time.Second, Host: tr.Tree.Root()},
	}}
	if _, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 1, Chaos: spec}); err == nil {
		t.Fatal("crash-the-source spec accepted")
	}
}

// TestRandomizedFailStopSilence is the cross-protocol fail-stop
// property test: crash a seeded-random receiver at a seeded-random
// instant mid-run and assert the host emits zero observer events after
// the crash — for SRM, CESRM under both policies and with router
// assistance, and LMS.
func TestRandomizedFailStopSilence(t *testing.T) {
	tr := smallTrace(t, 9)
	recs := tr.Tree.Receivers()
	warmup := 3 * time.Second
	dataDur := time.Duration(tr.NumPackets()) * tr.Period

	variants := []struct {
		name  string
		proto Protocol
		cesrm core.Config
	}{
		{"SRM", SRM, core.Config{}},
		{"CESRM-most-recent", CESRM, core.Config{Policy: core.MostRecentLoss{}}},
		{"CESRM-most-frequent", CESRM, core.Config{Policy: core.MostFrequentLoss{}}},
		{"CESRM-router-assist", CESRM, core.Config{RouterAssist: true}},
		{"LMS", LMS, core.Config{}},
	}
	rng := rand.New(rand.NewSource(1234))
	for _, v := range variants {
		v := v
		// Seeded random crash coordinates, drawn outside the subtest so
		// order is reproducible.
		victim := recs[rng.Intn(len(recs))]
		crashAt := warmup + time.Duration(rng.Int63n(int64(dataDur/2)))
		t.Run(v.name, func(t *testing.T) {
			spec := &chaos.Spec{Name: "failstop", Faults: []chaos.Fault{
				{Kind: chaos.Crash, At: crashAt, Host: victim},
			}}
			res, err := Run(RunConfig{
				Trace: tr, Protocol: v.proto, CESRM: v.cesrm, Seed: 77, Chaos: spec,
				KeepEvents: true, // the assertions below scan the timeline
			})
			if err != nil {
				t.Fatal(err)
			}
			// The validator already enforces post-crash silence online;
			// re-check directly against the recorded event stream.
			after := 0
			for _, e := range res.Events {
				if e.Host == victim && e.At.After(sim.Time(crashAt)) {
					after++
				}
			}
			if after != 0 {
				t.Fatalf("host %d emitted %d events after its crash at %v", victim, after, crashAt)
			}
			// The crash must have landed mid-run: the victim was active
			// before it.
			before := 0
			for _, e := range res.Events {
				if e.Host == victim && !e.At.After(sim.Time(crashAt)) {
					before++
				}
			}
			if before == 0 {
				t.Fatalf("host %d emitted no events before the crash; the property is vacuous", victim)
			}
		})
	}
}
