package experiment

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/netsim"
	"cesrm/internal/srm"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

func smallPair(t *testing.T) *Pair {
	t.Helper()
	tr := smallTrace(t, 10)
	p, err := RunPair(tr, PairConfig{Base: RunConfig{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFigure1ShowsCESRMFaster(t *testing.T) {
	p := smallPair(t)
	rows := p.Figure1()
	if len(rows) != p.Trace.NumReceivers() {
		t.Fatalf("rows = %d, want %d", len(rows), p.Trace.NumReceivers())
	}
	faster := 0
	for _, r := range rows {
		if r.Index < 1 || r.Index > len(rows) {
			t.Fatalf("bad index %d", r.Index)
		}
		if r.CESRMMean < r.SRMMean {
			faster++
		}
	}
	// CESRM must win for the clear majority of receivers (paper: all).
	if faster*2 <= len(rows) {
		t.Fatalf("CESRM faster for only %d of %d receivers", faster, len(rows))
	}
	if p.LatencyReductionPct() < 20 {
		t.Fatalf("latency reduction %.1f%%, want >= 20%%", p.LatencyReductionPct())
	}
}

func TestFigure2DeltasWithinPaperBand(t *testing.T) {
	p := smallPair(t)
	for _, row := range p.Figure2() {
		if row.ExpeditedCount == 0 || row.NormalCount == 0 {
			continue
		}
		// Paper band is 1 to 2.5 RTT; allow slack for small receivers.
		if row.Delta < 0.2 || row.Delta > 3.5 {
			t.Errorf("receiver %d delta %.2f RTT outside sane band", row.Index, row.Delta)
		}
		if row.ExpeditedMean >= row.NormalMean {
			t.Errorf("receiver %d: expedited (%.2f) not faster than non-expedited (%.2f)",
				row.Index, row.ExpeditedMean, row.NormalMean)
		}
	}
}

func TestFigure3And4Accounting(t *testing.T) {
	p := smallPair(t)
	f3, f4 := p.Figure3(), p.Figure4()
	if len(f3) != p.Trace.NumReceivers()+1 || len(f4) != len(f3) {
		t.Fatalf("row counts: %d/%d", len(f3), len(f4))
	}
	if f3[0].Index != 0 {
		t.Fatal("host 0 (source) missing from Figure 3")
	}
	// The source never requests (it has every packet).
	if f3[0].SRM != 0 || f3[0].CESRMMulticast != 0 || f3[0].CESRMExpedited != 0 {
		t.Fatalf("source sent requests: %+v", f3[0])
	}
	// Totals must match the collectors.
	var cm, cu int
	for _, row := range f3 {
		cm += row.CESRMMulticast
		cu += row.CESRMExpedited
	}
	tot := p.CESRM.Collector.TotalCounts()
	if cm != tot.Requests || cu != tot.ExpRequests {
		t.Fatalf("figure 3 totals %d/%d, collector %d/%d", cm, cu, tot.Requests, tot.ExpRequests)
	}
	// CESRM total replies below SRM's (paper's qualitative claim).
	var srmReplies, cesrmReplies int
	for _, row := range f4 {
		srmReplies += row.SRM
		cesrmReplies += row.CESRMMulticast + row.CESRMExpedited
	}
	if cesrmReplies >= srmReplies {
		t.Fatalf("CESRM replies %d not below SRM %d", cesrmReplies, srmReplies)
	}
}

func TestFigure5Metrics(t *testing.T) {
	p := smallPair(t)
	succ, ok := p.ExpeditedSuccess()
	if !ok {
		t.Fatal("no expedited success ratio")
	}
	if succ < 40 || succ > 100 {
		t.Fatalf("expedited success %.1f%% implausible", succ)
	}
	o := p.Overhead()
	if o.RetransPct <= 0 || o.RetransPct >= 100 {
		t.Fatalf("retrans overhead %.1f%% out of (0, 100)", o.RetransPct)
	}
	if o.ControlTotalPct() <= 0 {
		t.Fatal("control overhead not positive")
	}
	if o.ControlUnicastPct <= 0 {
		t.Fatal("no unicast control overhead despite expedited requests")
	}
}

func TestLossyRecoveryStillCompletes(t *testing.T) {
	tr := smallTrace(t, 11)
	res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, LossyRecovery: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// With lossy recovery latencies grow but reliability must hold (the
	// runner verifies MissingIn == 0 internally).
	lossless, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lm := lossless.Collector.OverallNormalized(lossless.RTT).MeanRTT
	ly := res.Collector.OverallNormalized(res.RTT).MeanRTT
	if ly <= lm {
		t.Errorf("lossy recovery mean %.2f not above lossless %.2f", ly, lm)
	}
}

func TestQueuingModeCompletes(t *testing.T) {
	tr := smallTrace(t, 12)
	cfg := netsim.DefaultConfig()
	cfg.Queuing = true
	res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Net: cfg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collector.Recoveries()) == 0 {
		t.Fatal("no recoveries under queuing mode")
	}
}

func TestAdaptiveTimersRunCompletes(t *testing.T) {
	tr := smallTrace(t, 13)
	res, err := Run(RunConfig{
		Trace:    tr,
		Protocol: SRM,
		Adaptive: srm.DefaultAdaptiveConfig(),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collector.Recoveries()) == 0 {
		t.Fatal("no recoveries with adaptive timers")
	}
}

func TestLinkDelaySweepSimilarNormalizedResults(t *testing.T) {
	// The paper: results with 10/20/30 ms links "were very similar".
	tr := smallTrace(t, 14)
	var means []float64
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		cfg := netsim.DefaultConfig()
		cfg.LinkDelay = d
		res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Net: cfg, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		means = append(means, res.Collector.OverallNormalized(res.RTT).MeanRTT)
	}
	for i := 1; i < len(means); i++ {
		ratio := means[i] / means[0]
		if ratio < 0.6 || ratio > 1.67 {
			t.Fatalf("normalized results diverge across delays: %v", means)
		}
	}
}

func TestRouterAssistReducesExposure(t *testing.T) {
	// Note: router assistance only pays off when expeditious repliers
	// are receivers (turning points below the root); when the source is
	// the cached replier, the turning point is the root and the subcast
	// degenerates to a full multicast. Catalog trace 11 has deep loss
	// links and receiver repliers.
	entry := trace.Catalog[10]
	tr, err := entry.Load(0.02)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	assisted, err := Run(RunConfig{
		Trace: tr, Protocol: CESRM,
		CESRM: core.Config{RouterAssist: true}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	bTot := basic.Crossings.PayloadMulticast + basic.Crossings.PayloadSubcast + basic.Crossings.PayloadUnicast
	aTot := assisted.Crossings.PayloadMulticast + assisted.Crossings.PayloadSubcast + assisted.Crossings.PayloadUnicast
	if assisted.Crossings.PayloadSubcast == 0 {
		t.Fatal("router-assisted run never subcast")
	}
	if aTot >= bTot {
		t.Fatalf("router assistance did not reduce retransmission exposure: %d vs %d", aTot, bTot)
	}
}

func TestReorderDelayUnderJitter(t *testing.T) {
	// With delivery jitter, packets arrive out of order and a zero
	// REORDER-DELAY fires expedited requests for packets that are merely
	// late. A REORDER-DELAY above the jitter magnitude absorbs
	// them.
	tr := smallTrace(t, 16)
	eager, err := Run(RunConfig{
		Trace: tr, Protocol: CESRM,
		Jitter: 150 * time.Millisecond,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	patient, err := Run(RunConfig{
		Trace: tr, Protocol: CESRM,
		Jitter: 150 * time.Millisecond,
		CESRM:  core.Config{ReorderDelay: 160 * time.Millisecond},
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eager.SpuriousExpedited <= patient.SpuriousExpedited {
		t.Fatalf("zero reorder delay produced %d spurious expedited requests, with delay %d — expected more",
			eager.SpuriousExpedited, patient.SpuriousExpedited)
	}
	if patient.SpuriousExpedited > eager.SpuriousExpedited/2 {
		t.Fatalf("80ms reorder delay left %d of %d spurious requests", patient.SpuriousExpedited, eager.SpuriousExpedited)
	}
}

func TestSuiteSubsetAndRendering(t *testing.T) {
	s := Suite{Scale: 0.005, Seed: 2, Traces: []int{4, 13}}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].Entry.Index != 4 || results[1].Entry.Index != 13 {
		t.Fatal("wrong traces selected")
	}
	var buf bytes.Buffer
	RenderAll(&buf, results)
	out := buf.String()
	for _, want := range []string{"Table 1", "§4.2", "Figure 1", "Figure 2",
		"Figure 3", "Figure 4", "Figure 5", "Summary", "WRN950919", "WRN951216"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestSuiteRejectsBadIndices(t *testing.T) {
	if _, err := (Suite{Scale: 0.01, Traces: []int{0}}).Run(); err == nil {
		t.Fatal("accepted index 0")
	}
	if _, err := (Suite{Scale: 0.01, Traces: []int{15}}).Run(); err == nil {
		t.Fatal("accepted index 15")
	}
}

func TestProtocolString(t *testing.T) {
	if SRM.String() != "SRM" || CESRM.String() != "CESRM" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(9).String() == "" {
		t.Fatal("unknown protocol should still format")
	}
}

func TestBarChartsRender(t *testing.T) {
	s := Suite{Scale: 0.005, Seed: 2, Traces: []int{13}}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFigure1Bars(&buf, results)
	RenderFigure5Bars(&buf, results)
	out := buf.String()
	if !strings.Contains(out, "█") || !strings.Contains(out, "▒") {
		t.Fatal("bar glyphs missing")
	}
	if !strings.Contains(out, "recv 1") || !strings.Contains(out, "WRN951216") {
		t.Fatal("labels missing")
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	c := newBarChart("empty", "a")
	var buf bytes.Buffer
	c.render(&buf)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("empty chart not handled")
	}
	c2 := newBarChart("zeros", "a")
	c2.add("x", 0)
	buf.Reset()
	c2.render(&buf)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("all-zero chart not handled")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row width did not panic")
		}
	}()
	c3 := newBarChart("bad", "a", "b")
	c3.add("x", 1)
}

// TestPropertyRandomTracesRunClean drives randomized small traces
// through both protocols. Each run already enforces, internally: the
// online invariant validator, full reliability (no receiver missing any
// packet), and the detected-vs-trace loss cross-check. The property
// here adds cross-protocol consistency: both protocols recover the same
// trace, and CESRM's retransmission volume stays in the neighborhood of
// SRM's or below. (Strictly fewer replies is the paper's *empirical*
// observation on its traces, not an invariant: on tiny traces where
// C1*d undercuts the expedited round trip, the expedited reply can add
// to, rather than replace, the fallback round.)
func TestPropertyRandomTracesRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized integration sweep")
	}
	f := func(seed int64, rc, dc, lr uint8) bool {
		receivers := int(rc%10) + 4
		depth := int(dc%3) + 3
		packets := 1200
		losses := packets * receivers * (int(lr%8) + 2) / 100 // 2-9% per receiver
		tr, err := trace.Generate(trace.GenSpec{
			Name:         "prop",
			Topology:     topology.GenSpec{Receivers: receivers, Depth: depth},
			NumPackets:   packets,
			Period:       80 * time.Millisecond,
			TargetLosses: losses,
			Seed:         seed,
		})
		if err != nil {
			t.Logf("generate(seed=%d): %v", seed, err)
			return false
		}
		pair, err := RunPair(tr, PairConfig{Base: RunConfig{Seed: seed + 1}})
		if err != nil {
			t.Logf("run(seed=%d): %v", seed, err)
			return false
		}
		srmReplies := pair.SRM.Collector.TotalCounts().Replies
		cc := pair.CESRM.Collector.TotalCounts()
		if float64(cc.Replies+cc.ExpReplies) > 1.5*float64(srmReplies) {
			t.Logf("seed=%d: CESRM replies %d+%d far exceed SRM %d",
				seed, cc.Replies, cc.ExpReplies, srmReplies)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestLinkOutageRecovery injects a full outage on one link for a window
// of the transmission: all traffic crossing it (data, recovery, even
// sessions) is severed. Receivers below the cut accumulate losses and
// must recover everything once the link heals.
func TestLinkOutageRecovery(t *testing.T) {
	tr := smallTrace(t, 17)
	// Cut the first receiver's path for 20 seconds mid-transmission.
	victim := tr.Tree.Receivers()[0]
	cutLink := topology.LinkID(victim)
	res, err := Run(RunConfig{
		Trace:    tr,
		Protocol: CESRM,
		Seed:     5,
		ExtraDrop: func(p *netsim.Packet, l topology.LinkID, down bool) bool {
			// The drop hook has no clock; approximate the outage window
			// by sequence number instead: the source sends one packet
			// per 80ms after a 3s warmup, so seqs in [337, 587] span
			// roughly t=30s..50s. Recovery traffic for those packets is
			// also cut while the window's data flows, which is the
			// interesting regime.
			if l != cutLink {
				return false
			}
			if m, ok := p.Msg.(*srm.DataMsg); ok {
				return m.Seq >= 337 && m.Seq < 587
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every packet of the outage window was eventually recovered (the
	// runner asserts MissingIn == 0 internally); the victim's loss count
	// must cover the window.
	if got := res.Collector.Losses(victim); got < 200 {
		t.Fatalf("victim detected only %d losses for a 250-packet outage", got)
	}
}

func TestLMSRunCompletes(t *testing.T) {
	tr := smallTrace(t, 18)
	res, err := Run(RunConfig{Trace: tr, Protocol: LMS, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collector.Recoveries()) == 0 {
		t.Fatal("no LMS recoveries")
	}
	// LMS never multicasts retransmissions: all repair traffic is
	// unicast legs plus subcasts.
	if res.Crossings.PayloadMulticast != 0 {
		t.Fatalf("LMS multicast retransmissions: %d crossings", res.Crossings.PayloadMulticast)
	}
	if res.Crossings.ControlMulticast != 0 {
		t.Fatalf("LMS multicast control: %d crossings", res.Crossings.ControlMulticast)
	}
}

func TestLMSFasterThanSRMAndLocalized(t *testing.T) {
	tr := smallTrace(t, 19)
	srmRes, err := Run(RunConfig{Trace: tr, Protocol: SRM, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lmsRes, err := Run(RunConfig{Trace: tr, Protocol: LMS, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srmLat := srmRes.Collector.OverallNormalized(srmRes.RTT).MeanRTT
	lmsLat := lmsRes.Collector.OverallNormalized(lmsRes.RTT).MeanRTT
	// Router assistance removes suppression delays entirely: LMS should
	// beat SRM on latency comfortably.
	if lmsLat >= srmLat {
		t.Fatalf("LMS latency %.2f not below SRM %.2f", lmsLat, srmLat)
	}
	// And its retransmission exposure is a fraction of SRM's multicast.
	srmRetrans := srmRes.Crossings.PayloadMulticast
	lmsRetrans := lmsRes.Crossings.PayloadUnicast + lmsRes.Crossings.PayloadSubcast
	if lmsRetrans >= srmRetrans {
		t.Fatalf("LMS retrans crossings %d not below SRM %d", lmsRetrans, srmRetrans)
	}
}

func TestLMSRejectsAdaptive(t *testing.T) {
	tr := smallTrace(t, 18)
	_, err := Run(RunConfig{Trace: tr, Protocol: LMS, Adaptive: srm.DefaultAdaptiveConfig(), Seed: 5})
	if err == nil {
		t.Fatal("LMS accepted adaptive SRM timers")
	}
}

func TestCrashedReceiverExemptFromChecks(t *testing.T) {
	tr := smallTrace(t, 20)
	victim := tr.Tree.Receivers()[1]
	for _, proto := range []Protocol{SRM, CESRM, LMS} {
		res, err := Run(RunConfig{
			Trace:    tr,
			Protocol: proto,
			Crashes:  map[topology.NodeID]time.Duration{victim: 10 * time.Second},
			Seed:     5,
		})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if len(res.Collector.Recoveries()) == 0 {
			t.Fatalf("%v: no recoveries at surviving receivers", proto)
		}
	}
	// Crashing the source is rejected.
	if _, err := Run(RunConfig{
		Trace:    tr,
		Protocol: SRM,
		Crashes:  map[topology.NodeID]time.Duration{tr.Tree.Root(): time.Second},
		Seed:     5,
	}); err == nil {
		t.Fatal("source crash accepted")
	}
}

// TestCrashRobustnessCESRMvsLMS quantifies §3.3's robustness argument:
// crash the receiver LMS designates as replier. LMS NAKs stall against
// the stale router state until the fabric refresh; CESRM falls back to
// SRM immediately and its caches simply evolve. The stall shows up in
// the upper latency quantiles.
func TestCrashRobustnessCESRMvsLMS(t *testing.T) {
	tr := smallTrace(t, 21)
	// LMS designates the lowest-ID receiver as replier nearly everywhere.
	victim := tr.Tree.Receivers()[0]
	crashes := map[topology.NodeID]time.Duration{victim: 20 * time.Second}
	refresh := 8 * time.Second

	lmsRes, err := Run(RunConfig{
		Trace: tr, Protocol: LMS, Crashes: crashes, LMSRefresh: refresh, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cesrmRes, err := Run(RunConfig{
		Trace: tr, Protocol: CESRM, Crashes: crashes, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	lmsP99 := lmsRes.Collector.NormalizedPercentile(lmsRes.RTT, 0.99)
	cesrmP99 := cesrmRes.Collector.NormalizedPercentile(cesrmRes.RTT, 0.99)
	if lmsP99 <= cesrmP99 {
		t.Fatalf("LMS p99 %.1f RTT not above CESRM's %.1f under replier crash", lmsP99, cesrmP99)
	}
	// The LMS stall is roughly the refresh window: tens of RTTs.
	if lmsP99 < 10 {
		t.Fatalf("LMS p99 %.1f RTT — expected a stall of tens of RTTs", lmsP99)
	}
}

func TestRunComparisonAllSchemes(t *testing.T) {
	tr := smallTrace(t, 22)
	rows, err := RunComparison(tr, ComparisonConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 schemes", len(rows))
	}
	byName := map[string]ComparisonRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.MeanRTT <= 0 || r.CostPerLoss <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", r.Scheme, r)
		}
	}
	if byName["CESRM"].MeanRTT >= byName["SRM"].MeanRTT {
		t.Fatal("CESRM not faster than SRM in comparison")
	}
	if byName["LMS"].CostPerLoss >= byName["SRM"].CostPerLoss {
		t.Fatal("LMS not cheaper than SRM in comparison")
	}
	if byName["CESRM"].ExpeditedPct <= 0 || byName["SRM"].ExpeditedPct != 0 {
		t.Fatal("expedited percentages wrong")
	}
}

func TestSuiteParallelMatchesSerial(t *testing.T) {
	serial := Suite{Scale: 0.005, Seed: 2, Traces: []int{4, 13, 14}}
	parallel := Suite{Scale: 0.005, Seed: 2, Traces: []int{4, 13, 14}, Parallel: 3}
	a, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("result counts differ")
	}
	for i := range a {
		if a[i].Entry.Index != b[i].Entry.Index {
			t.Fatal("result ordering changed under parallelism")
		}
		as := a[i].Pair.CESRM.Collector.TotalCounts()
		bs := b[i].Pair.CESRM.Collector.TotalCounts()
		if as != bs {
			t.Fatalf("trace %d: parallel run diverged: %+v vs %+v", a[i].Entry.Index, as, bs)
		}
		if a[i].Pair.SRM.Crossings != b[i].Pair.SRM.Crossings {
			t.Fatalf("trace %d: crossings diverged", a[i].Entry.Index)
		}
	}
}
