package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/stats"
	"cesrm/internal/topology"
)

// FingerprintVersion is the current fingerprint format version. The
// fingerprint string is "v<version>:<hex>" where <hex> is the first 16
// bytes of a SHA-256 over the run's canonical digest input (see
// computeFingerprint). Bump the version whenever the digest input
// changes, so fingerprints from different formats never compare equal.
//
// v2 (streaming): identical to v1 except the event-stream length moved
// from the front of section 1 to its end. v1's length-prefix forced the
// runner to retain every event until the run finished just to count
// them before hashing; v2 folds each event into the digest the moment
// the Recorder observes it and appends the count afterwards, so the
// stream is never materialized. The digested per-event bytes are
// unchanged — only the count's position moved — which the v1↔v2
// migration test (TestFingerprintV1V2Migration) pins by recomputing the
// historical v1 digests from a retained run.
const FingerprintVersion = 2

// fpHasher accumulates the canonical digest. Every input is written
// through fixed-width little-endian encodings, so the digest is a pure
// function of the run's observable behavior — independent of platform,
// process, and map iteration order. Section 1 streams: event folds one
// event at a time, and finish seals the count plus sections 2-4.
type fpHasher struct {
	h      hash.Hash
	buf    [8]byte
	events uint64
}

func newFPHasher() *fpHasher { return &fpHasher{h: sha256.New()} }

func (f *fpHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(f.buf[:], v)
	f.h.Write(f.buf[:])
}

func (f *fpHasher) i64(v int64)            { f.u64(uint64(v)) }
func (f *fpHasher) f64(v float64)          { f.u64(math.Float64bits(v)) }
func (f *fpHasher) node(n topology.NodeID) { f.i64(int64(n)) }

func (f *fpHasher) boolean(b bool) {
	if b {
		f.u64(1)
	} else {
		f.u64(0)
	}
}

func (f *fpHasher) sum() string {
	return fmt.Sprintf("v%d:%x", FingerprintVersion, f.h.Sum(nil)[:16])
}

// event folds one protocol event into section 1 of the digest, in
// dispatch order. The runner installs this as the Recorder's sink, so
// the stream is digested as it happens and never needs retaining.
func (f *fpHasher) event(ev stats.Event) {
	f.events++
	f.u64(uint64(ev.Kind))
	f.i64(int64(ev.At))
	f.node(ev.Host)
	f.node(ev.Source)
	f.i64(int64(ev.Seq))
	f.i64(int64(ev.Round))
	f.boolean(ev.Expedited)
	f.i64(int64(ev.OwnRequests))
	f.i64(int64(ev.Reschedules))
	f.node(ev.Requestor)
	f.node(ev.Replier)
}

// finish seals the digest of a run whose events were already folded via
// event, appending the stream length (closing section 1) and sections
// 2-4, and returns the fingerprint string. The full input covers, in a
// fixed canonical order:
//
//  1. the ordered protocol-event stream (the engine's dispatch order —
//     any scheduling nondeterminism shows up here first), closed by its
//     length,
//  2. the link-crossing cost counters,
//  3. the finish time,
//  4. per-receiver recovery metrics, iterated in trace receiver order
//     (never map order): loss counts, transmission counters, recovery
//     counts and mean normalized latency.
//
// Two runs of the same RunConfig must produce byte-identical
// fingerprints; a divergence is a determinism regression in the engine,
// the protocols, or the runner.
func (f *fpHasher) finish(crossings netsim.CrossingCounts,
	finished sim.Time, receivers []topology.NodeID, col *stats.Collector, rtt stats.RTTFunc) string {

	// Close section 1 with the event count. v1 put this first, which
	// forced full event retention; see FingerprintVersion.
	f.u64(f.events)

	// Section 2: link-crossing counters.
	f.u64(crossings.Data)
	f.u64(crossings.Session)
	f.u64(crossings.PayloadMulticast)
	f.u64(crossings.PayloadSubcast)
	f.u64(crossings.PayloadUnicast)
	// Multicast and subcast control crossings are digested combined: the
	// ControlSubcast counter was split out of ControlMulticast after the
	// fingerprint format was frozen, and hashing them as one value keeps
	// every historical fingerprint valid (no protocol emits subcast
	// control today, so the sum equals the old field anyway).
	f.u64(crossings.ControlMulticast + crossings.ControlSubcast)
	f.u64(crossings.ControlUnicast)

	// Section 3: finish time.
	f.i64(int64(finished))

	// Section 4: per-receiver recovery metrics in trace order.
	f.u64(uint64(len(receivers)))
	for _, r := range receivers {
		f.node(r)
		f.i64(int64(col.Losses(r)))
		hc := col.Counts(r)
		f.i64(int64(hc.Requests))
		f.i64(int64(hc.ExpRequests))
		f.i64(int64(hc.Replies))
		f.i64(int64(hc.ExpReplies))
		f.i64(int64(hc.Sessions))
		lat := col.NormalizedRecovery(r, rtt)
		f.i64(int64(lat.Count))
		f.f64(lat.MeanRTT)
	}

	return f.sum()
}

// computeFingerprint digests a run from a retained event slice, for
// callers and tests that hold the full stream; the runner itself
// streams via fpHasher.event and finish.
func computeFingerprint(events []stats.Event, crossings netsim.CrossingCounts,
	finished sim.Time, receivers []topology.NodeID, col *stats.Collector, rtt stats.RTTFunc) string {

	f := newFPHasher()
	for _, ev := range events {
		f.event(ev)
	}
	return f.finish(crossings, finished, receivers, col, rtt)
}

// VerifyDeterminism runs cfg once, then reruns it extra more times and
// checks every rerun reproduces the first run's fingerprint. It returns
// the first run's result; a fingerprint divergence (a determinism
// regression) or any run failure is an error. extra < 1 is treated
// as 1.
func VerifyDeterminism(cfg RunConfig, extra int) (*RunResult, error) {
	if extra < 1 {
		extra = 1
	}
	base, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < extra; i++ {
		r, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: determinism rerun %d/%d failed: %w", i+1, extra, err)
		}
		if r.Fingerprint != base.Fingerprint {
			return nil, fmt.Errorf("experiment: determinism violation on rerun %d/%d: fingerprint %s != %s",
				i+1, extra, r.Fingerprint, base.Fingerprint)
		}
	}
	return base, nil
}
