package experiment

import (
	"fmt"
	"io"
	"strings"
)

// barChart renders grouped horizontal bar charts in plain text, echoing
// the paper's per-receiver bar figures. Each row holds one label and one
// value per series; bars are scaled to the chart-wide maximum.
type barChart struct {
	title  string
	series []string // series names, one bar per row each
	rows   []barRow
	// width is the maximum bar width in runes.
	width int
}

type barRow struct {
	label  string
	values []float64
}

func newBarChart(title string, series ...string) *barChart {
	return &barChart{title: title, series: series, width: 48}
}

func (c *barChart) add(label string, values ...float64) {
	if len(values) != len(c.series) {
		panic(fmt.Sprintf("experiment: bar row %q has %d values for %d series", label, len(values), len(c.series)))
	}
	c.rows = append(c.rows, barRow{label: label, values: values})
}

// glyphs distinguish series within a group.
var barGlyphs = []rune{'█', '▒', '░', '▓'}

func (c *barChart) render(w io.Writer) {
	fmt.Fprintln(w, c.title)
	max := 0.0
	for _, r := range c.rows {
		for _, v := range r.values {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	labelWidth := 0
	for _, r := range c.rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	for i, s := range c.series {
		fmt.Fprintf(w, "  %c %s", barGlyphs[i%len(barGlyphs)], s)
	}
	fmt.Fprintln(w)
	for _, r := range c.rows {
		for i, v := range r.values {
			n := int(v / max * float64(c.width))
			if v > 0 && n == 0 {
				n = 1
			}
			label := r.label
			if i > 0 {
				label = strings.Repeat(" ", len(r.label))
			}
			fmt.Fprintf(w, "  %-*s %s %.2f\n", labelWidth, label,
				strings.Repeat(string(barGlyphs[i%len(barGlyphs)]), n), v)
		}
	}
}

// RenderFigure1Bars renders Figure 1 as per-receiver bar pairs (SRM vs
// CESRM normalized recovery time), one chart per trace.
func RenderFigure1Bars(w io.Writer, results []SuiteResult) {
	fmt.Fprintln(w, "Figure 1 (bars): per-receiver average normalized recovery time (RTT units)")
	for _, r := range results {
		c := newBarChart(fmt.Sprintf("Trace %s", r.Entry.Name), "SRM", "CESRM")
		for _, row := range r.Pair.Figure1() {
			c.add(fmt.Sprintf("recv %d", row.Index), row.SRMMean, row.CESRMMean)
		}
		c.render(w)
	}
}

// RenderFigure5Bars renders Figure 5 (right) as per-trace bars of
// CESRM's overhead relative to SRM.
func RenderFigure5Bars(w io.Writer, results []SuiteResult) {
	c := newBarChart("Figure 5 (bars): CESRM overhead as % of SRM", "retransmissions", "control")
	for _, r := range results {
		o := r.Pair.Overhead()
		c.add(r.Entry.Name, o.RetransPct, o.ControlTotalPct())
	}
	c.render(w)
}
