package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/stats"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// TestMembershipScheduleLeaveJoin drives a mid-session leave and rejoin
// through RunConfig.Membership and checks the headline properties: the
// run completes fully reliable, the departed host is silent for exactly
// the absence window, and the whole configuration replays to the
// identical fingerprint.
func TestMembershipScheduleLeaveJoin(t *testing.T) {
	tr := smallTrace(t, 15)
	recs := tr.Tree.Receivers()
	victim := recs[2]
	h := chaosHorizon(tr)
	leaveAt, joinAt := h*3/10, h*13/20
	cfg := RunConfig{
		Trace: tr, Protocol: CESRM, Seed: 9,
		Membership: []MembershipEvent{
			{Host: victim, At: leaveAt},
			{Host: victim, At: joinAt, Join: true},
		},
		KeepEvents: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var before, during, after int
	for _, e := range res.Events {
		if e.Host != victim {
			continue
		}
		switch {
		case !e.At.After(sim.Time(leaveAt)):
			before++
		case e.At.After(sim.Time(leaveAt)) && !e.At.After(sim.Time(joinAt)):
			during++
		default:
			after++
		}
	}
	if during != 0 {
		t.Fatalf("host %d emitted %d events while departed [%v, %v]", victim, during, leaveAt, joinAt)
	}
	if before == 0 || after == 0 {
		t.Fatalf("silence property is vacuous: %d events before leave, %d after join", before, after)
	}
	cfg.KeepEvents = false
	if _, err := VerifyDeterminism(cfg, 2); err != nil {
		t.Fatal(err)
	}
}

// TestLateJoinStartsAtPostJoinData admits a receiver only halfway
// through the session: it must stay silent until its Join and converge
// on the post-join suffix (Run's Stage 5 would fail if it chased — or
// missed — anything after its reliability floor).
func TestLateJoinStartsAtPostJoinData(t *testing.T) {
	tr := smallTrace(t, 16)
	recs := tr.Tree.Receivers()
	victim := recs[1]
	h := chaosHorizon(tr)
	joinAt := h / 2
	res, err := Run(RunConfig{
		Trace: tr, Protocol: CESRM, Seed: 10,
		Membership: []MembershipEvent{{Host: victim, At: joinAt, Join: true}},
		KeepEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var before, after int
	for _, e := range res.Events {
		if e.Host != victim {
			continue
		}
		if e.At.After(sim.Time(joinAt)) {
			after++
		} else {
			before++
		}
	}
	if before != 0 {
		t.Fatalf("late joiner %d emitted %d events before its join at %v", victim, before, joinAt)
	}
	if after == 0 {
		t.Fatalf("late joiner %d never became active after joining", victim)
	}
}

// TestMembershipChurnIsProtocolGeneric smokes the graceful leave/join
// cycle across all three protocols.
func TestMembershipChurnIsProtocolGeneric(t *testing.T) {
	tr := smallTrace(t, 6)
	specs := chaos.Scenarios(tr.Tree, chaosHorizon(tr))
	var churn *chaos.Spec
	for _, s := range specs {
		if s.Name == "member-churn" {
			churn = s
		}
	}
	if churn == nil {
		t.Fatal("member-churn scenario missing")
	}
	for _, proto := range []Protocol{SRM, CESRM, LMS} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			if _, err := Run(RunConfig{Trace: tr, Protocol: proto, Seed: 11, Chaos: churn}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQueueOverloadDropsAndRecovers throttles the links far below the
// transmission rate and engages a finite queue cap mid-run: the FIFO
// must overflow (deterministic tail drops, counted separately from
// channel loss) and every congestion-dropped packet must still be
// recovered through the ordinary repair machinery — Run fails if any
// receiver finishes incomplete.
func TestQueueOverloadDropsAndRecovers(t *testing.T) {
	tr := smallTrace(t, 18)
	h := chaosHorizon(tr)
	net := netsim.DefaultConfig()
	// 50 kbit/s serializes a 1 KB payload in ~164 ms, twice the 80 ms
	// packet period: during the cap window the queue must grow without
	// bound, so a cap of 2 overflows within a few packets.
	net.Bandwidth = 50e3
	spec := &chaos.Spec{Name: "qcap", Faults: []chaos.Fault{
		{Kind: chaos.QueueCap, At: h / 5, Until: h/5 + 5*time.Second, Cap: 2},
	}}
	res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5, Net: net, Chaos: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueDrops == 0 {
		t.Fatal("queue-cap window produced no queue drops")
	}
	if res.Abandoned != 0 {
		t.Fatalf("congestion loss must be recovered, not abandoned; got %d abandonments", res.Abandoned)
	}
}

// TestQueueCapDeterminism replays a queue-overload configuration and
// requires byte-identical fingerprints: tail drops are a pure function
// of arrival order, never of wall-clock or map iteration.
func TestQueueCapDeterminism(t *testing.T) {
	tr := smallTrace(t, 18)
	h := chaosHorizon(tr)
	net := netsim.DefaultConfig()
	net.Bandwidth = 50e3
	spec := &chaos.Spec{Name: "qcap", Faults: []chaos.Fault{
		{Kind: chaos.QueueCap, At: h / 5, Until: h/5 + 5*time.Second, Cap: 2},
	}}
	if _, err := VerifyDeterminism(RunConfig{Trace: tr, Protocol: CESRM, Seed: 5, Net: net, Chaos: spec}, 2); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedRetryAbandonment is the regression test for the
// bounded-retry degradation bound: a loss whose recovery traffic is
// permanently severed must be abandoned after exactly
// Params.MaxRequestRounds request rounds — with the virtual clock held
// to a hard budget, so a regression to unbounded exponential back-off
// (the historical clock-runaway bug class) fails as a budget abort
// rather than hanging or overflowing.
func TestBoundedRetryAbandonment(t *testing.T) {
	tr := smallTrace(t, 17)
	// Pick a packet the first receiver loses; severing all repair
	// traffic for it makes that loss structurally unrecoverable.
	target := -1
	for seq := 100; seq < tr.NumPackets(); seq++ {
		if tr.Lost(0, seq) {
			target = seq
			break
		}
	}
	if target < 0 {
		t.Fatal("trace has no loss at receiver 0")
	}
	const rounds = 4
	p := srm.DefaultParams()
	p.MaxRequestRounds = rounds
	res, err := Run(RunConfig{
		Trace: tr, Protocol: SRM, Seed: 3, SRM: p,
		ExtraDrop: func(pk *netsim.Packet, link topology.LinkID, down bool) bool {
			switch m := pk.Msg.(type) {
			case *srm.RequestMsg:
				return m.Seq == target
			case *srm.ReplyMsg:
				return m.Seq == target
			}
			return false
		},
		Budget:     sim.Budget{MaxVirtualTime: sim.Time(5 * time.Minute)},
		KeepEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sim.Completed {
		t.Fatalf("run aborted with status %v: %v", res.Status, res.Diag)
	}
	if res.Abandoned == 0 {
		t.Fatal("unrecoverable loss was never abandoned")
	}
	requests := map[topology.NodeID]int{}
	abandons := map[topology.NodeID]int{}
	for _, e := range res.Events {
		if e.Seq != target {
			continue
		}
		switch e.Kind {
		case stats.EventRequestSent:
			requests[e.Host]++
		case stats.EventRequestAbandoned:
			abandons[e.Host]++
			if e.Round != rounds {
				t.Fatalf("host %d abandoned seq %d after %d rounds, want exactly %d", e.Host, target, e.Round, rounds)
			}
		}
	}
	if len(abandons) == 0 {
		t.Fatal("no abandonment events for the severed packet")
	}
	for host := range abandons {
		if n := requests[host]; n != rounds {
			t.Fatalf("host %d sent %d requests for the severed packet before abandoning, want exactly %d", host, n, rounds)
		}
	}
}

// TestRenderersSurviveDepartedReceivers runs a pair where one receiver
// leaves mid-run and never returns, then drives every table and figure
// renderer over it: the departed host's per-receiver rows must report
// its pre-leave window — finite numbers, never NaN/Inf from a
// zero-count division — and nothing may panic on the truncated stats.
func TestRenderersSurviveDepartedReceivers(t *testing.T) {
	tr := smallTrace(t, 15)
	recs := tr.Tree.Receivers()
	h := chaosHorizon(tr)
	pair, err := RunPair(tr, PairConfig{Base: RunConfig{
		Seed:       9,
		Membership: []MembershipEvent{{Host: recs[2], At: h * 3 / 10}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range pair.Figure1() {
		for name, v := range map[string]float64{"srm": row.SRMMean, "cesrm": row.CESRMMean} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("figure 1 receiver %d: %s mean is %v", row.Receiver, name, v)
			}
		}
	}
	results := []SuiteResult{{Entry: trace.CatalogEntry{Index: 1, Name: "churn-test"}, Pair: pair}}
	var buf bytes.Buffer
	RenderAll(&buf, results)
	RenderFigure1Bars(&buf, results)
	RenderFigure5Bars(&buf, results)
	RenderComparison(&buf, results, 9)
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(buf.String(), bad) {
			t.Fatalf("rendered output contains %s:\n%s", bad, buf.String())
		}
	}
}

// TestChurnFreeRunsIgnoreMembershipMachinery pins fingerprint inertness
// from the other side: the same configuration with and without an
// explicitly-zero membership schedule must produce byte-identical
// fingerprints (the nil and empty schedules are the same run).
func TestChurnFreeRunsIgnoreMembershipMachinery(t *testing.T) {
	tr := smallTrace(t, 15)
	base, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 9, Membership: []MembershipEvent{}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint != empty.Fingerprint {
		t.Fatalf("empty membership schedule changed the fingerprint: %s vs %s", base.Fingerprint, empty.Fingerprint)
	}
}
