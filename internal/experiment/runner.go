// Package experiment wires together traces, loss inference, the network
// simulator, the protocol agents and metrics collection to reproduce the
// paper's trace-driven evaluation (§4): it replays a trace's packet loss
// pattern through SRM or CESRM and reports the figures' metrics.
package experiment

import (
	"fmt"
	"sort"
	"time"

	"cesrm/internal/chaos"
	"cesrm/internal/core"
	"cesrm/internal/lms"
	"cesrm/internal/lossinfer"
	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/srm"
	"cesrm/internal/stats"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// Protocol selects which recovery protocol a run simulates.
type Protocol int

const (
	// SRM is the baseline Scalable Reliable Multicast protocol.
	SRM Protocol = iota
	// CESRM is the caching-enhanced protocol.
	CESRM
	// LMS is the router-assisted Light-weight Multicast Services
	// baseline (§3.3/§5 comparison).
	LMS
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case SRM:
		return "SRM"
	case CESRM:
		return "CESRM"
	case LMS:
		return "LMS"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// RunConfig parameterizes one trace-driven simulation run.
type RunConfig struct {
	// Trace is the transmission to reenact.
	Trace *trace.Trace
	// Protocol selects SRM or CESRM.
	Protocol Protocol
	// Net holds the physical network parameters; the zero value selects
	// netsim.DefaultConfig (20 ms links, 1.5 Mbps).
	Net netsim.Config
	// SRM holds scheduling parameters; the zero value selects
	// srm.DefaultParams.
	SRM srm.Params
	// CESRM holds CESRM-specific settings; its SRM field is overwritten
	// by the run's SRM parameters.
	CESRM core.Config
	// LMS holds LMS-specific settings (heartbeat, NAK retry, detection
	// slack); zero values select defaults.
	LMS lms.Config
	// LMSRefresh is the router replier-state staleness window after a
	// crash report; zero selects 5 s.
	LMSRefresh time.Duration
	// Adaptive enables SRM's adaptive timer adjustment on every host
	// (Floyd et al. ToN 1997 §VI); the paper's evaluation uses fixed
	// parameters.
	Adaptive srm.AdaptiveConfig
	// Jitter adds a uniform random delay in [0, Jitter) to every
	// delivery, producing transient packet reordering. The paper's
	// simulations never reorder (REORDER-DELAY is 0 there); jitter
	// exercises the REORDER-DELAY mechanism. With jitter enabled hosts
	// may transiently classify in-flight packets as lost, so the
	// detected-loss cross-check against the trace is skipped.
	Jitter time.Duration
	// ExtraDrop, when non-nil, is consulted for every packet-link
	// crossing in addition to the trace-driven injection; returning true
	// drops the packet. Use it for fault injection beyond the trace —
	// link outages, targeted partitions, adversarial drops. Session
	// messages are exempt unless DropSessions is also set.
	ExtraDrop netsim.DropFunc
	// DropSessions exposes session messages to ExtraDrop too. The
	// paper's evaluation presumes lossless session exchange; partitions
	// and outages realistically sever it.
	DropSessions bool
	// LossyRecovery additionally drops recovery traffic (requests,
	// replies, expedited traffic — never session messages) with the
	// per-link estimated loss probabilities, as in the paper's companion
	// experiments. The default reproduces the paper's main setup:
	// lossless recovery.
	LossyRecovery bool
	// Crashes schedules fail-stop receiver crashes at the given virtual
	// offsets from simulation start. Crashed receivers are exempt from
	// the completion and reliability checks (they can never recover).
	// Crashing the source is rejected.
	Crashes map[topology.NodeID]time.Duration
	// Chaos, when non-nil, installs the deterministic fault-injection
	// harness: host crashes and restarts, graceful leaves and joins,
	// link flaps, jitter ramps, duplicate storms, queue-cap windows and
	// session starvation, all scheduled through the engine so the run
	// fingerprint stays a pure function of the configuration. Chaos runs
	// skip the trace loss cross-check (a restarted host legitimately
	// re-detects everything) and arm the validator's post-crash-silence
	// and bounded-fallback invariants.
	Chaos *chaos.Spec
	// Membership schedules graceful membership churn without writing a
	// chaos spec by hand: each event is a receiver's announced Leave or
	// mid-session Join at a virtual offset. Events merge into Chaos
	// (creating a spec when nil), so they share its validation,
	// scheduling determinism and invariant arming. Per host, events must
	// be listed in chronological order and alternate (a Join-first host
	// starts the run absent — a late joiner).
	Membership []MembershipEvent
	// Budget installs the engine's optional guardrails: bounds on
	// virtual time, dispatched events and pending timers, plus the
	// same-instant progress watchdog. A run that trips a bound
	// terminates with a structured RunResult.Status and Diag instead of
	// overflowing or hanging. The zero value disables every guardrail
	// and leaves run fingerprints byte-identical to budget-free builds.
	Budget sim.Budget
	// KeepEvents retains the ordered protocol-event stream in
	// RunResult.Events. The v2 fingerprint digests events as they happen,
	// so retention is opt-in: timeline dumps (-events) and
	// event-inspecting tests set it; everything else runs with Events nil
	// and memory independent of the event count.
	KeepEvents bool
	// ReleaseRecovered enables mid-run release of fully-recovered
	// per-packet state: once every live host holds every packet below a
	// watermark — and a drain lag has covered in-flight traffic — the
	// protocol agents, the collector and the validator discard that
	// prefix, folding recovery-latency metrics into online accumulators.
	// Release performs no engine operations, so fingerprints are
	// byte-identical with it on or off. Retained-record APIs
	// (Collector.Recoveries) are empty for such runs. Forced off when
	// Chaos contains restart faults: a restarted host re-detects and
	// re-recovers everything, so no prefix is ever globally dead. All
	// other chaos kinds (crash-only, link flaps, jitter ramps,
	// duplicate storms, starvation) keep the watermark sound and
	// release normally.
	ReleaseRecovered bool
	// Shards enables sharded parallel dispatch: the topology's root
	// subtrees are partitioned into up to Shards dispatch shards
	// (topology.PartitionSubtrees) and same-instant events of distinct
	// shards execute concurrently on a worker pool, with all
	// order-sensitive side effects merged back in serial dispatch order.
	// Fingerprints are byte-identical for every value of Shards; values
	// below 2 (and trees whose root has one child) run serially.
	Shards int
	// FloodPlanBudget sizes the netsim flood plan cache in total tour
	// entries across all cached plans. Zero (the default) enables the
	// cache at netsim.DefaultFloodPlanEntries; positive values set the
	// budget explicitly; negative values disable the cache (pure DFS
	// floods, for A/B measurement). Plans never change observable
	// behavior — replay performs the identical call and RNG-draw
	// sequence — so fingerprints are byte-identical for every value.
	FloodPlanBudget int
	// HeapProbe, when non-nil, is invoked on every monitor tick (once
	// per session period of virtual time); cesrm-bench installs a heap
	// high-watermark sampler so peak-memory reporting cannot miss spikes
	// between wall-clock samples.
	HeapProbe func()
	// Seed drives all protocol randomness (timer draws, session
	// offsets, lossy-recovery drops).
	Seed int64
	// Warmup is the session-exchange period before the first data
	// packet, letting hosts learn inter-host distances; zero selects
	// 3 session periods.
	Warmup time.Duration
	// MaxTail bounds the virtual time the run may spend recovering
	// after the last data packet; zero selects 10 minutes. Exceeding it
	// fails the run (it indicates a protocol liveness bug, or extreme
	// lossy-recovery unluck).
	MaxTail time.Duration
}

// MembershipEvent is one scheduled graceful membership change.
type MembershipEvent struct {
	// Host is the receiver leaving or joining.
	Host topology.NodeID
	// At is the virtual offset from simulation start.
	At time.Duration
	// Join admits the host; false announces its departure.
	Join bool
}

// RunResult carries a completed run's metrics.
type RunResult struct {
	// Config echoes the run configuration.
	Config RunConfig
	// Collector holds the protocol-event metrics.
	Collector *stats.Collector
	// Crossings holds the link-crossing cost counters.
	Crossings netsim.CrossingCounts
	// InferredRates is the link loss estimate that drove loss injection.
	InferredRates lossinfer.LinkRates
	// InferenceConfidence95 is the §4.2 confidence statistic of the
	// link attribution (fraction of selections above 0.95 probability).
	InferenceConfidence95 float64
	// FinishedAt is the virtual time at which all losses had been
	// recovered and the run quiesced.
	FinishedAt sim.Time
	// Fingerprint is the run's canonical determinism digest
	// ("v2:<32 hex chars>"): a hash over the ordered protocol-event
	// stream, the link-crossing counters, the finish time and the
	// per-receiver recovery metrics. Two runs of the same RunConfig must
	// produce identical fingerprints; see VerifyDeterminism.
	Fingerprint string
	// Events is the ordered protocol-event stream the fingerprint
	// digests, usable as a debugging timeline
	// (stats.WriteEventsNDJSON). Nil unless RunConfig.KeepEvents was
	// set.
	Events []stats.Event
	// SpuriousExpedited counts expedited requests sent for packets the
	// trace never lost — reordering mirages (only nonzero with Jitter
	// and a REORDER-DELAY below the jitter magnitude).
	SpuriousExpedited int
	// RTT returns a receiver's round-trip normalization basis (its RTT
	// to the source), for use with the Collector's aggregations.
	RTT stats.RTTFunc
	// Receivers lists the receiver nodes in trace order.
	Receivers []topology.NodeID
	// PlanStats snapshots the flood plan cache counters (hits, misses,
	// evictions); all-zero when RunConfig.FloodPlanBudget disabled the
	// cache.
	PlanStats netsim.PlanStats
	// BarrierEvents counts events the sharded dispatch loop executed as
	// serial barriers; zero for serial runs. A proxy for how much of the
	// event stream still serializes under sharded dispatch.
	BarrierEvents uint64
	// QueueDrops counts packets tail-dropped by finite link queues
	// (congestion loss), separate from the Gilbert/trace-driven channel
	// loss in Crossings. Zero unless a queue cap was configured.
	QueueDrops uint64
	// Abandoned counts losses receivers gave up on after the
	// bounded-retry limit (Params.MaxRequestRounds), summed over hosts.
	// Stage 5 reconciles each receiver's missing packets against its
	// abandonment count, so a nonzero value is accounted-for degradation,
	// not silent data loss.
	Abandoned int
	// ChurnEvents counts the membership events (graceful leaves plus
	// joins) the run's schedule carried, whether from RunConfig.Membership
	// or leave@/join@ chaos faults. Zero for churn-free runs.
	ChurnEvents int
	// Status reports how the engine terminated. The zero value,
	// sim.Completed, is the only status budget-free runs ever produce;
	// any other value means a RunConfig.Budget guardrail aborted the run
	// and Diag describes where it stood.
	Status sim.TerminationStatus
	// Diag is the diagnostic snapshot of a budget-aborted run; nil when
	// Status is sim.Completed.
	Diag *Diagnostic
}

// Diagnostic snapshots a budget-aborted run: where the virtual clock
// stood, how much work was queued and done, which receivers still had
// unrecovered losses, and any invariant violations the online validator
// had already accumulated.
type Diagnostic struct {
	// Clock is the virtual instant of the last executed event.
	Clock sim.Time
	// Pending counts live scheduled events left in the queue.
	Pending int
	// Executed counts events dispatched before the abort.
	Executed uint64
	// Outstanding lists receivers with unrecovered losses, in trace
	// receiver order (crashed hosts excluded — they can never recover).
	Outstanding []HostOutstanding
	// Violations holds the validator's breaches observed before the
	// abort, if any.
	Violations []stats.Violation
}

// HostOutstanding is one receiver's unrecovered-loss count.
type HostOutstanding struct {
	Host        topology.NodeID
	Outstanding int
}

// String renders the diagnostic on one line.
func (d *Diagnostic) String() string {
	s := fmt.Sprintf("clock=%v pending=%d executed=%d", d.Clock, d.Pending, d.Executed)
	for _, h := range d.Outstanding {
		s += fmt.Sprintf(" host%d:outstanding=%d", h.Host, h.Outstanding)
	}
	if n := len(d.Violations); n > 0 {
		s += fmt.Sprintf(" violations=%d first=%q", n, d.Violations[0].Detail)
	}
	return s
}

// QuiesceError reports that a run failed to recover every loss within
// MaxTail after the last data packet — a protocol liveness failure (or
// extreme lossy-recovery unluck). It is typed so harnesses can classify
// it apart from invariant violations.
type QuiesceError struct {
	Trace    string
	Protocol Protocol
	MaxTail  time.Duration
}

// Error implements error.
func (e *QuiesceError) Error() string {
	return fmt.Sprintf("experiment: %s/%s did not quiesce within %v after last data packet",
		e.Trace, e.Protocol, e.MaxTail)
}

// agent abstracts over the protocol endpoints' lifecycle.
type agent interface {
	StartSessions()
	Stop()
	Transmit(seq int)
}

// inspector exposes the completion-checking and state-release surface
// every protocol endpoint shares.
type inspector interface {
	ClassifiedThrough(source topology.NodeID) int
	Outstanding() int
	MissingIn(source topology.NodeID, n int) int
	AbandonedIn(source topology.NodeID) int
	Crashed() bool
	Absent() bool
	ReleasableThrough(source topology.NodeID) int
	ReleaseThrough(source topology.NodeID, n int)
}

// crasher is the fail-stop surface every protocol endpoint shares.
type crasher interface{ Crash() }

// expFallbackBound is invariant 7's request-round budget: a loss chased
// by an expedited request whose cached replier turned out dead must
// fall back to ordinary SRM recovery within this many request rounds.
// Back-off round k waits on the order of 2^k·C3·d, so 12 rounds cover
// outages orders of magnitude longer than any scenario window while
// still catching a protocol that stops retrying.
const expFallbackBound = 12

// defaultChurnRequestRounds is the bounded-retry limit armed for runs
// with membership churn when the caller left SRM.MaxRequestRounds at
// its unbounded default. A requester whose cached repliers all departed
// must degrade to a typed abandonment instead of doubling its back-off
// interval forever (the overflow-by-construction bug class); 20 rounds
// sit comfortably above the expedited-fallback bound of 12, so
// legitimate fallback recovery is never cut short.
const defaultChurnRequestRounds = 20

// agentOrder, when non-nil, permutes the host order that drives per-host
// RNG assignment and Stage 4 scheduling. It is a test seam that reenacts
// the historical bug where Go map iteration fed event scheduling, letting
// the determinism-audit tests prove the fingerprint catches order-
// dependent runs. Production code leaves it nil (trace order).
var agentOrder func([]topology.NodeID) []topology.NodeID

// Run reenacts cfg.Trace under cfg.Protocol and returns the collected
// metrics. The run is deterministic in cfg.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("experiment: nil trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.Net == (netsim.Config{}) {
		cfg.Net = netsim.DefaultConfig()
	}
	if cfg.SRM == (srm.Params{}) {
		cfg.SRM = srm.DefaultParams()
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 3 * cfg.SRM.SessionPeriod
	}
	if cfg.MaxTail == 0 {
		cfg.MaxTail = 10 * time.Minute
	}
	// A membership schedule merges into the chaos spec (cloned, never
	// mutating the caller's), sharing its validation and deterministic
	// scheduling. This runs before any RNG split decision: a Membership
	// schedule makes cfg.Chaos non-nil exactly like writing the spec by
	// hand would.
	if len(cfg.Membership) > 0 {
		merged := &chaos.Spec{Name: "membership"}
		if cfg.Chaos != nil {
			merged.Name = cfg.Chaos.Name
			merged.Faults = append(merged.Faults, cfg.Chaos.Faults...)
		}
		for _, e := range cfg.Membership {
			kind := chaos.Leave
			if e.Join {
				kind = chaos.Join
			}
			merged.Faults = append(merged.Faults, chaos.Fault{Kind: kind, At: e.At, Host: e.Host})
		}
		cfg.Chaos = merged
	}
	// Membership churn arms bounded-retry degradation: without it, a
	// receiver whose cached repliers departed would double its back-off
	// interval forever. Callers that set an explicit bound keep it.
	if cfg.Chaos != nil && cfg.Chaos.HasMembership() && cfg.SRM.MaxRequestRounds == 0 {
		cfg.SRM.MaxRequestRounds = defaultChurnRequestRounds
	}
	churnEvents := 0
	if cfg.Chaos != nil {
		for _, f := range cfg.Chaos.Faults {
			if f.Kind == chaos.Leave || f.Kind == chaos.Join {
				churnEvents++
			}
		}
	}

	tr := cfg.Trace
	tree := tr.Tree
	source := tree.Root()

	// Stage 1 (§4.2): estimate link loss rates and attribute each lost
	// packet to a link combination; the simulation injects losses on
	// exactly those links.
	rates := lossinfer.EstimateYajnik(tr)
	inferred, err := lossinfer.Infer(tr, rates)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	// Stage 2: build the simulated network with the loss-injection hook.
	eng := sim.NewEngine()
	eng.SetBudget(cfg.Budget)
	net, err := netsim.New(eng, tree, cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if cfg.FloodPlanBudget >= 0 {
		net.EnableFloodPlans(cfg.FloodPlanBudget)
	}
	// Sharded dispatch: partition the root subtrees, label deliveries
	// with their receiving node's shard, and hand each host shard-local
	// engine/network handles below. With Shards < 2 all of this is nil
	// and the run is the plain serial path.
	var shards []*sim.Shard
	var shardOf []int32
	if cfg.Shards > 1 {
		shards = eng.EnableSharding(cfg.Shards)
		if shards != nil {
			shardOf = topology.PartitionSubtrees(tree, len(shards))
			net.SetShards(shardOf)
		}
	}
	rtt := func(h topology.NodeID) time.Duration {
		return net.RTT(h, source)
	}
	rootRNG := sim.NewRNG(cfg.Seed)
	dropRNG := rootRNG.Split()
	if cfg.Jitter > 0 {
		net.EnableJitter(rootRNG.Split(), cfg.Jitter)
	}
	// Chaos RNG splits happen only when chaos is enabled, so crash-free
	// configurations draw exactly the random streams they always did and
	// their fingerprints are untouched.
	var chaosCtl *chaos.Controller
	var chaosRNG *sim.RNG
	if cfg.Chaos != nil {
		chaosRNG = rootRNG.Split()
		if cfg.Chaos.HasJitter() && cfg.Jitter <= 0 {
			// Install the rng at zero magnitude; jitter ramps raise it.
			net.EnableJitter(chaosRNG.Split(), 0)
		}
	}
	net.SetDropFunc(func(p *netsim.Packet, link topology.LinkID, down bool) bool {
		if chaosCtl != nil && chaosCtl.Drop(p, link, down) {
			return true
		}
		if cfg.ExtraDrop != nil && (!p.Session || cfg.DropSessions) && cfg.ExtraDrop(p, link, down) {
			return true
		}
		if p.Session {
			// The paper's evaluation presumes lossless session exchange.
			return false
		}
		if m, ok := p.Msg.(*srm.DataMsg); ok {
			if !down {
				return false
			}
			for _, l := range inferred.Drops[m.Seq] {
				if l == link {
					return true
				}
			}
			return false
		}
		// Recovery traffic: lossless in the paper's main configuration.
		if !cfg.LossyRecovery {
			return false
		}
		return dropRNG.Float64() < rates[link]
	})

	// Stage 3: instantiate protocol agents at the source and receivers.
	// Every run carries an online invariant validator alongside the
	// metrics collector.
	collector := stats.New()
	collector.Reserve(tree.NumNodes())
	// Release is gated on restart-free configurations only: a restarted
	// host legitimately re-detects and re-recovers everything, so no
	// prefix of the stream is ever globally dead. Every other fault —
	// permanent crashes (chaos or cfg.Crashes), link flaps, jitter
	// ramps, duplicate storms, starvation — leaves the watermark sound:
	// crashed hosts never rejoin and are skipped, and the remaining
	// faults only delay recovery, which the watermark already waits for.
	// Membership churn invalidates the watermark the same way restarts
	// do: a late joiner's classification window opens after packets the
	// watermark may already have released on other hosts.
	releaseOn := cfg.ReleaseRecovered && (cfg.Chaos == nil || (!cfg.Chaos.HasRestart() && !cfg.Chaos.HasMembership()))
	if releaseOn {
		collector.StreamAggregates(rtt)
	}
	validator := stats.NewValidator()
	validator.Reserve(tree.NumNodes())
	validator.SetClock(eng.Now)
	recorder := stats.NewRecorder(eng.Now)
	// The v2 fingerprint folds each event into the digest as it is
	// observed; retention exists only for callers that asked for the
	// timeline.
	fp := newFPHasher()
	recorder.SetSink(fp.event)
	recorder.SetKeep(cfg.KeepEvents)
	observer := stats.Tee{collector, validator, recorder}
	hosts := append([]topology.NodeID{source}, tree.Receivers()...)
	if agentOrder != nil {
		hosts = agentOrder(hosts)
	}
	agents := make(map[topology.NodeID]agent, len(hosts))
	inspectors := make(map[topology.NodeID]inspector, len(hosts))
	var fabric *lms.Fabric
	if cfg.Protocol == LMS {
		refresh := cfg.LMSRefresh
		if refresh == 0 {
			refresh = 5 * time.Second
		}
		fabric = lms.NewFabric(eng, tree, refresh)
		if cfg.Adaptive.Enabled {
			return nil, fmt.Errorf("experiment: adaptive timers are an SRM mechanism, not applicable to LMS")
		}
	}
	// Shard-local handles, one per shard, shared by that shard's hosts.
	// In serial runs the agents hold the engine and network directly.
	ports := make([]netsim.Endpoint, len(shards))
	observers := make([]srm.Observer, len(shards))
	for i, sh := range shards {
		ports[i] = netsim.NewPort(net, sh)
		observers[i] = &deferredObserver{sh: sh, obs: observer}
	}
	for _, id := range hosts {
		hostRNG := rootRNG.Split()
		var hostEng sim.Sched = eng
		var hostNet netsim.Endpoint = net
		hostObs := srm.Observer(observer)
		if shardOf != nil {
			sh := shardOf[id]
			hostEng = shards[sh]
			hostNet = ports[sh]
			hostObs = observers[sh]
		}
		var srmAgent *srm.Agent
		switch cfg.Protocol {
		case SRM:
			a, err := srm.NewAgent(hostEng, hostNet, hostRNG, id, cfg.SRM, hostObs, nil)
			if err != nil {
				return nil, err
			}
			agents[id] = a
			inspectors[id] = a
			srmAgent = a
		case CESRM:
			cc := cfg.CESRM
			cc.SRM = cfg.SRM
			a, err := core.NewAgent(hostEng, hostNet, hostRNG, id, cc, hostObs)
			if err != nil {
				return nil, err
			}
			agents[id] = a
			inspectors[id] = a.SRM()
			srmAgent = a.SRM()
		case LMS:
			a, err := lms.NewAgent(hostEng, hostNet, fabric, id, cfg.LMS, hostObs)
			if err != nil {
				return nil, err
			}
			agents[id] = a
			inspectors[id] = a
		default:
			return nil, fmt.Errorf("experiment: unknown protocol %v", cfg.Protocol)
		}
		if cfg.Adaptive.Enabled && srmAgent != nil {
			if err := srmAgent.EnableAdaptiveTimers(cfg.Adaptive); err != nil {
				return nil, err
			}
		}
	}

	// Stage 4: schedule chaos faults, session start, data transmission,
	// crashes, and the completion monitor. Scheduling assigns the
	// engine's FIFO tie-breaker sequence numbers, so every loop here must
	// iterate in a deterministic order — the ordered hosts slice and
	// sorted crash hosts, never a map. Chaos faults are scheduled first,
	// so a crash coinciding exactly with a protocol timer dispatches
	// before it.
	if cfg.Chaos != nil {
		targets := make(map[topology.NodeID]chaos.Host, len(hosts))
		for _, id := range hosts {
			if h, ok := agents[id].(chaos.Host); ok {
				targets[id] = h
			}
		}
		validator.BoundExpFallback(expFallbackBound)
		ctl, err := chaos.Install(eng, net, chaosRNG, cfg.Chaos, targets, validator)
		if err != nil {
			return nil, err
		}
		chaosCtl = ctl
	}
	// Late joiners start the run outside the group: they are marked
	// absent before anything runs (the validator arms leave-silence from
	// t=0) and skip the session start below — their Join fault starts
	// sessions. Agent construction above is unchanged, so the per-host
	// RNG split order, and with it every churn-free fingerprint, is
	// untouched.
	var absentAtStart map[topology.NodeID]bool
	if cfg.Chaos != nil {
		absentAtStart = cfg.Chaos.InitialAbsent()
		for _, id := range hosts {
			if !absentAtStart[id] {
				continue
			}
			m, ok := agents[id].(chaos.Member)
			if !ok {
				return nil, fmt.Errorf("experiment: host %d does not support membership", id)
			}
			m.Leave()
			validator.NoteLeave(id, 0)
		}
	}
	for _, id := range hosts {
		if absentAtStart[id] {
			continue
		}
		agents[id].StartSessions()
	}
	crashHosts := make([]topology.NodeID, 0, len(cfg.Crashes))
	for h := range cfg.Crashes {
		crashHosts = append(crashHosts, h)
	}
	sort.Slice(crashHosts, func(i, j int) bool { return crashHosts[i] < crashHosts[j] })
	for _, h := range crashHosts {
		if h == source {
			return nil, fmt.Errorf("experiment: cannot crash the source")
		}
		c, ok := agents[h].(crasher)
		if !ok {
			return nil, fmt.Errorf("experiment: host %d is not crashable", h)
		}
		h := h
		eng.ScheduleAt(sim.Time(cfg.Crashes[h]), func(now sim.Time) {
			c.Crash()
			validator.NoteCrash(h, now)
		})
	}
	numPackets := tr.NumPackets()
	srcAgent := agents[source]
	// Transmit events run entirely within the source host (packet sends
	// and timers route through its shard-local handles), so they carry
	// the source's shard label instead of dispatching as barriers — the
	// bulk of the formerly-serializing events in large same-instant
	// batches. The session monitor below inspects every host and stays a
	// barrier by design.
	for i := 0; i < numPackets; i++ {
		seq := i
		at := sim.Time(cfg.Warmup + time.Duration(i)*tr.Period)
		fn := func(sim.Time) {
			srcAgent.Transmit(seq)
		}
		if shardOf != nil {
			eng.ScheduleAtShard(at, fn, shardOf[source])
		} else {
			eng.ScheduleAt(at, fn)
		}
	}

	lastData := sim.Time(cfg.Warmup + time.Duration(numPackets-1)*tr.Period)
	deadline := lastData.Add(cfg.MaxTail)
	complete := func() bool {
		if chaosCtl != nil && !chaosCtl.Quiesced() {
			// A fault is still outstanding; a restart scheduled after
			// apparent quiescence reopens recovery work.
			return false
		}
		for _, r := range tree.Receivers() {
			a := inspectors[r]
			if a.Crashed() || a.Absent() {
				continue
			}
			if a.ClassifiedThrough(source) < numPackets || a.Outstanding() > 0 {
				return false
			}
		}
		return true
	}
	// The watermark release runs on the monitor cadence with a two-tick
	// lag: a watermark observed safe at tick t is released at tick t+2,
	// by which point every message and timer that was in flight for that
	// prefix at tick t — request, reply timer, reply, abstinence — has
	// long drained (the chain is bounded by a few link delays, far below
	// two session periods). Release touches no engine state, so the
	// event stream, finish time and fingerprint are identical with it on
	// or off.
	release := func(n int) {
		for _, id := range hosts {
			if !inspectors[id].Crashed() {
				inspectors[id].ReleaseThrough(source, n)
			}
		}
		collector.ReleasePacketsThrough(source, n)
		validator.ReleaseThrough(source, n)
	}
	var relReady, relNext, released int
	var monitor func(now sim.Time)
	timedOut := false
	monitor = func(now sim.Time) {
		if cfg.HeapProbe != nil {
			cfg.HeapProbe()
		}
		if releaseOn {
			if relReady > released {
				release(relReady)
				released = relReady
			}
			w := numPackets
			for _, id := range hosts {
				if inspectors[id].Crashed() {
					continue
				}
				if r := inspectors[id].ReleasableThrough(source); r < w {
					w = r
				}
			}
			relReady, relNext = relNext, w
		}
		if complete() {
			for _, id := range hosts {
				agents[id].Stop()
			}
			return
		}
		if now.After(deadline) {
			timedOut = true
			for _, id := range hosts {
				agents[id].Stop()
			}
			eng.Stop()
			return
		}
		eng.Schedule(cfg.SRM.SessionPeriod, monitor)
	}
	eng.Schedule(cfg.SRM.SessionPeriod, monitor)

	finished := eng.Run()
	receivers := tree.Receivers()
	if status := eng.Termination(); status != sim.Completed {
		// Graceful degradation: a guardrail aborted the run. Skip the
		// completion verification (the run did not finish and would fail
		// it vacuously) and hand back everything observed so far plus a
		// diagnostic snapshot, so sweeps and the soak harness can record
		// the trial and continue. The event prefix is deterministic, so
		// the partial fingerprint is still a pure function of cfg.
		snap := eng.Snapshot()
		diag := &Diagnostic{Clock: snap.Now, Pending: snap.Pending, Executed: snap.Executed}
		for _, r := range receivers {
			a := inspectors[r]
			if a.Crashed() || a.Absent() {
				continue
			}
			if n := a.Outstanding(); n > 0 {
				diag.Outstanding = append(diag.Outstanding, HostOutstanding{Host: r, Outstanding: n})
			}
		}
		diag.Violations = validator.ViolationRecords()
		return &RunResult{
			Config:                cfg,
			Collector:             collector,
			Crossings:             net.Counts(),
			InferredRates:         rates,
			InferenceConfidence95: inferred.Confidence(0.95),
			FinishedAt:            snap.Now,
			Fingerprint:           fp.finish(net.Counts(), snap.Now, receivers, collector, rtt),
			Events:                recorder.Events(),
			RTT:                   rtt,
			Receivers:             receivers,
			PlanStats:             net.PlanStats(),
			BarrierEvents:         eng.BarrierEvents(),
			QueueDrops:            net.QueueDrops(),
			Abandoned:             collector.TotalAbandoned(),
			ChurnEvents:           churnEvents,
			Status:                status,
			Diag:                  diag,
		}, nil
	}
	if timedOut {
		return nil, &QuiesceError{Trace: tr.Name, Protocol: cfg.Protocol, MaxTail: cfg.MaxTail}
	}

	// Stage 5: verify the run reenacted the trace faithfully. A receiver
	// may detect fewer losses than the trace records — a repair reply
	// instigated by another receiver can deliver a packet before its own
	// detection fires — but never more, and every receiver must end up
	// holding every packet (full reliability).
	for ri, r := range tree.Receivers() {
		a := inspectors[r]
		if a.Crashed() || a.Absent() {
			continue
		}
		if got, want := collector.Losses(r), tr.ReceiverLosses(ri); got > want && cfg.Jitter == 0 && cfg.ExtraDrop == nil && cfg.Chaos == nil {
			return nil, fmt.Errorf("experiment: %s/%s receiver %d detected %d losses, trace has only %d",
				tr.Name, cfg.Protocol, r, got, want)
		}
		if a.Outstanding() != 0 {
			return nil, fmt.Errorf("experiment: receiver %d finished with %d unrecovered losses", r, a.Outstanding())
		}
		// Bounded-retry degradation is accounted-for, never silent: each
		// missing packet must be matched by an explicit abandonment (and
		// vice versa — an abandoned packet that later arrived via a
		// straggling repair is no longer missing, and is not counted here).
		miss, abandoned := a.MissingIn(source, numPackets), a.AbandonedIn(source)
		if miss != abandoned {
			return nil, fmt.Errorf("experiment: receiver %d finished missing %d packets with %d abandoned",
				r, miss, abandoned)
		}
	}

	if err := validator.Err(); err != nil {
		return nil, fmt.Errorf("experiment: %s/%s: %w", tr.Name, cfg.Protocol, err)
	}

	// Expedited requests for packets the trace never dropped are
	// reordering artifacts (possible only under jitter).
	spurious := 0
	for _, k := range collector.ExpRequestedPackets() {
		ri := tr.ReceiverIndex(k.Host)
		if ri >= 0 && k.Seq < numPackets && !tr.Lost(ri, k.Seq) {
			spurious++
		}
	}

	return &RunResult{
		Config:                cfg,
		Collector:             collector,
		SpuriousExpedited:     spurious,
		Crossings:             net.Counts(),
		InferredRates:         rates,
		InferenceConfidence95: inferred.Confidence(0.95),
		FinishedAt:            finished,
		Fingerprint:           fp.finish(net.Counts(), finished, receivers, collector, rtt),
		Events:                recorder.Events(),
		RTT:                   rtt,
		Receivers:             receivers,
		PlanStats:             net.PlanStats(),
		BarrierEvents:         eng.BarrierEvents(),
		QueueDrops:            net.QueueDrops(),
		Abandoned:             collector.TotalAbandoned(),
		ChurnEvents:           churnEvents,
	}, nil
}
