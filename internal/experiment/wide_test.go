package experiment

import (
	"testing"
	"time"

	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// TestLargeTreeBeyondHopMatrix runs a tree past the 1024-node dense
// hop-matrix cap end to end — the first committed workload to exercise
// the topology LCA fallback (netsim RTT), the wide (>64 receiver)
// loss-inference path and the subtree partitioner at four-digit host
// counts — and pins that sharded dispatch stays byte-identical to
// serial there too.
func TestLargeTreeBeyondHopMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates ~1100 hosts")
	}
	tr, err := trace.Generate(trace.GenSpec{
		Name:         "wide1100",
		Topology:     topology.GenSpec{Receivers: 1100, Depth: 6},
		NumPackets:   30,
		Period:       40 * time.Millisecond,
		TargetLosses: 800,
		Seed:         63,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := tr.Tree.NumNodes(); n <= 1024 {
		t.Fatalf("tree has %d nodes, want > 1024 to bypass the hop matrix", n)
	}
	serial, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint == "" {
		t.Fatal("empty fingerprint")
	}
	for _, shards := range []int{8} {
		res, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 9, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if res.Fingerprint != serial.Fingerprint {
			t.Fatalf("shards=%d fingerprint %s, serial %s", shards, res.Fingerprint, serial.Fingerprint)
		}
	}
}
