package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"cesrm/internal/core"
	"cesrm/internal/topology"
	"cesrm/internal/trace"
)

// ComparisonRow is one recovery scheme's summary on one trace.
type ComparisonRow struct {
	// Scheme labels the protocol variant.
	Scheme string
	// MeanRTT and P99RTT are normalized recovery latencies.
	MeanRTT, P99RTT float64
	// CostPerLoss is total recovery link crossings divided by the
	// trace's loss count.
	CostPerLoss float64
	// ExpeditedPct is the share of recoveries completed via expedited
	// replies (CESRM variants only).
	ExpeditedPct float64
}

// ComparisonConfig parameterizes RunComparison.
type ComparisonConfig struct {
	// Seed drives all runs.
	Seed int64
	// Crashes optionally injects fail-stop receiver crashes (applied to
	// every scheme identically).
	Crashes map[topology.NodeID]time.Duration
	// LMSRefresh is LMS's router-state staleness window; zero selects
	// the runner default.
	LMSRefresh time.Duration
}

// RunComparison reenacts tr under the four recovery schemes the paper
// discusses — SRM, CESRM, router-assisted CESRM (§3.3) and LMS — with
// identical network conditions, and summarizes each.
func RunComparison(tr *trace.Trace, cfg ComparisonConfig) ([]ComparisonRow, error) {
	losses := float64(tr.TotalLosses())
	variants := []struct {
		label string
		run   RunConfig
	}{
		{"SRM", RunConfig{Protocol: SRM}},
		{"CESRM", RunConfig{Protocol: CESRM}},
		{"CESRM-RA", RunConfig{Protocol: CESRM, CESRM: core.Config{RouterAssist: true}}},
		{"LMS", RunConfig{Protocol: LMS, LMSRefresh: cfg.LMSRefresh}},
	}
	rows := make([]ComparisonRow, 0, len(variants))
	for _, v := range variants {
		rc := v.run
		rc.Trace = tr
		rc.Seed = cfg.Seed
		rc.Crashes = cfg.Crashes
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", v.label, err)
		}
		row := ComparisonRow{
			Scheme:      v.label,
			MeanRTT:     res.Collector.OverallNormalized(res.RTT).MeanRTT,
			P99RTT:      res.Collector.NormalizedPercentile(res.RTT, 0.99),
			CostPerLoss: float64(res.Crossings.RecoveryTotal()) / losses,
		}
		recs := res.Collector.Recoveries()
		if len(recs) > 0 {
			exp := 0
			for _, r := range recs {
				if r.Expedited {
					exp++
				}
			}
			row.ExpeditedPct = 100 * float64(exp) / float64(len(recs))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderComparison prints the four-scheme comparison for each suite
// trace.
func RenderComparison(w io.Writer, results []SuiteResult, seed int64) {
	fmt.Fprintln(w, "Comparison: SRM vs CESRM vs CESRM-RA vs LMS (latency RTT, cost = recovery crossings per loss)")
	for _, r := range results {
		rows, err := RunComparison(r.Pair.Trace, ComparisonConfig{Seed: seed})
		if err != nil {
			fmt.Fprintf(w, "Trace %s: error: %v\n", r.Entry.Name, err)
			continue
		}
		fmt.Fprintf(w, "Trace %s:\n", r.Entry.Name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  scheme\tmean\tp99\tcost/loss\texpedited")
		for _, row := range rows {
			fmt.Fprintf(tw, "  %s\t%.2f\t%.1f\t%.1f\t%.0f%%\n",
				row.Scheme, row.MeanRTT, row.P99RTT, row.CostPerLoss, row.ExpeditedPct)
		}
		tw.Flush()
	}
}
