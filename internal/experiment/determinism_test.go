package experiment

import (
	"regexp"
	"runtime"
	"testing"
	"time"

	"cesrm/internal/topology"
)

// crashyConfig returns a representative config exercising every
// nondeterminism-prone runner path: crashes (two at the same instant,
// the sorted-scheduling edge case) and delivery jitter (a shared
// jitter RNG consumed in delivery order).
func crashyConfig(tb testing.TB, proto Protocol, seed int64) RunConfig {
	tb.Helper()
	tr := smallTrace(tb, 11)
	recv := tr.Tree.Receivers()
	return RunConfig{
		Trace:    tr,
		Protocol: proto,
		Seed:     seed,
		Jitter:   2 * time.Millisecond,
		Crashes: map[topology.NodeID]time.Duration{
			recv[1]: 40 * time.Second,
			recv[5]: 40 * time.Second, // same instant as recv[1]: order must be sorted
			recv[3]: 70 * time.Second,
		},
	}
}

func TestFingerprintFormat(t *testing.T) {
	res, err := Run(RunConfig{Trace: smallTrace(t, 1), Protocol: SRM, Seed: 1, KeepEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := regexp.MatchString(`^v2:[0-9a-f]{32}$`, res.Fingerprint); !ok {
		t.Fatalf("fingerprint %q does not match v2:<32 hex chars>", res.Fingerprint)
	}
	if len(res.Events) == 0 {
		t.Fatal("run captured no protocol events")
	}
}

func TestFingerprintStableAcrossRepeatedRuns(t *testing.T) {
	// Acceptance: the same RunConfig — crashes and jitter enabled — run
	// 5 times in one process yields identical fingerprints, for every
	// protocol.
	for _, proto := range []Protocol{SRM, CESRM, LMS} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			cfg := crashyConfig(t, proto, 42)
			base, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				r, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if r.Fingerprint != base.Fingerprint {
					t.Fatalf("run %d fingerprint %s != first run's %s", i+2, r.Fingerprint, base.Fingerprint)
				}
			}
		})
	}
}

func TestFingerprintSensitiveToConfig(t *testing.T) {
	tr := smallTrace(t, 1)
	a, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunConfig{Trace: tr, Protocol: CESRM, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("different seeds produced the same fingerprint")
	}
	c, err := Run(RunConfig{Trace: tr, Protocol: SRM, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == c.Fingerprint {
		t.Fatal("different protocols produced the same fingerprint")
	}
}

func TestVerifyDeterminismPasses(t *testing.T) {
	res, err := VerifyDeterminism(crashyConfig(t, CESRM, 7), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Fingerprint == "" {
		t.Fatal("VerifyDeterminism returned no result")
	}
}

func TestSuiteFingerprintsIdenticalSerialAndParallel(t *testing.T) {
	// Acceptance: fingerprints agree between Suite.Parallel = 1 and
	// Suite.Parallel = NumCPU, proving the fan-out cannot perturb runs.
	run := func(parallel int) []SuiteResult {
		t.Helper()
		s := Suite{Scale: 0.005, Seed: 1, Traces: []int{4, 13}, Parallel: parallel}
		results, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial := run(1)
	parallel := run(runtime.NumCPU())
	for i := range serial {
		if serial[i].SRMFingerprint == "" || serial[i].CESRMFingerprint == "" {
			t.Fatalf("trace %d: empty fingerprint in suite result", serial[i].Entry.Index)
		}
		if serial[i].SRMFingerprint != parallel[i].SRMFingerprint {
			t.Errorf("trace %d: SRM fingerprint diverged serial vs parallel", serial[i].Entry.Index)
		}
		if serial[i].CESRMFingerprint != parallel[i].CESRMFingerprint {
			t.Errorf("trace %d: CESRM fingerprint diverged serial vs parallel", serial[i].Entry.Index)
		}
	}
}

// reorderHosts reverses a host slice without mutating the original.
func reorderHosts(hosts []topology.NodeID) []topology.NodeID {
	out := append([]topology.NodeID(nil), hosts...)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func TestAuditCatchesMapOrderedScheduling(t *testing.T) {
	// Reenact the historical bug: before this PR, Stage 4 iterated Go
	// maps, so the host order feeding event scheduling varied per
	// process run. The agentOrder seam injects exactly that failure mode
	// (a different host order on every Run call) and the fingerprint
	// audit must flag it.
	cfg := crashyConfig(t, CESRM, 42)

	agentOrder = reorderHosts
	reversed, err := Run(cfg)
	agentOrder = nil
	if err != nil {
		t.Fatal(err)
	}
	straight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reversed.Fingerprint == straight.Fingerprint {
		t.Fatal("fingerprint blind to host-order-dependent scheduling")
	}

	// And end to end: VerifyDeterminism must fail when the order varies
	// per run, exactly as map iteration made it.
	flip := false
	agentOrder = func(hosts []topology.NodeID) []topology.NodeID {
		flip = !flip
		if flip {
			return hosts
		}
		return reorderHosts(hosts)
	}
	defer func() { agentOrder = nil }()
	if _, err := VerifyDeterminism(cfg, 1); err == nil {
		t.Fatal("VerifyDeterminism passed under map-order-like scheduling")
	}
}
