package experiment

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"cesrm/internal/lossinfer"
	"cesrm/internal/sim"
	"cesrm/internal/trace"
)

// Suite reenacts catalog traces under both protocols and renders every
// table and figure of the paper's evaluation as plain text.
type Suite struct {
	// Scale shrinks each trace's packet volume (1 = full Table 1
	// volumes); see trace.CatalogEntry.Spec.
	Scale float64
	// Seed drives protocol randomness.
	Seed int64
	// Base optionally overrides network/protocol parameters; Trace and
	// Protocol fields are ignored.
	Base RunConfig
	// Traces restricts the run to the given 1-based catalog indices;
	// empty means all 14.
	Traces []int
	// Parallel bounds how many traces simulate concurrently. Each run is
	// an independent, deterministic virtual-time simulation, so results
	// are identical to a serial run; ordering in the output is
	// preserved. Zero or one means serial.
	Parallel int
	// KeepEvents retains each run's ordered protocol-event stream on the
	// returned results. The stream is only needed for timeline debugging
	// (stats.WriteEventsNDJSON); the fingerprint digests it during the
	// run, so sweeps leave this false and the runs never materialize the
	// streams at all — and additionally release fully-recovered
	// per-packet state mid-run (RunConfig.ReleaseRecovered), keeping
	// peak heap bounded by the in-flight recovery window instead of the
	// whole transmission.
	KeepEvents bool
	// ContinueOnError degrades the sweep gracefully: a trace whose pair
	// fails (invariant violation, non-quiescence, chaos rejection) is
	// recorded in its SuiteResult.Err and the remaining traces still
	// run, instead of the whole sweep aborting on the first failure.
	// Budget-aborted runs (see RunConfig.Budget) are not errors in
	// either mode — they surface through the result statuses.
	ContinueOnError bool
}

// SuiteResult holds one trace's pair plus its generation target.
type SuiteResult struct {
	Entry trace.CatalogEntry
	Pair  *Pair
	// SRMFingerprint and CESRMFingerprint are the paired runs'
	// determinism digests (see RunResult.Fingerprint), recorded here so
	// suite output is comparable across processes and code revisions.
	SRMFingerprint   string
	CESRMFingerprint string
	// Elapsed is the wall time the pair took to simulate (both
	// protocols, excluding trace loading). Under Parallel it includes
	// scheduler contention; comparable across revisions only at
	// Parallel=1.
	Elapsed time.Duration
	// SRMStatus and CESRMStatus report how each run's engine terminated
	// (sim.Completed unless a Base.Budget guardrail aborted it).
	SRMStatus   sim.TerminationStatus
	CESRMStatus sim.TerminationStatus
	// Err records the pair's failure when the suite ran with
	// ContinueOnError; Pair is nil in that case. Always nil otherwise —
	// without ContinueOnError a failure aborts the whole sweep.
	Err error
}

// Run executes the suite, optionally simulating traces concurrently
// (see Parallel). It returns one result per selected catalog entry, in
// selection order.
func (s Suite) Run() ([]SuiteResult, error) {
	scale := s.Scale
	if scale == 0 {
		scale = 1
	}
	selected := s.Traces
	if len(selected) == 0 {
		for _, e := range trace.Catalog {
			selected = append(selected, e.Index)
		}
	}
	for _, idx := range selected {
		if idx < 1 || idx > len(trace.Catalog) {
			return nil, fmt.Errorf("experiment: trace index %d out of [1, %d]", idx, len(trace.Catalog))
		}
	}

	// Load every selected trace exactly once, up front. Traces and their
	// topologies are immutable after Load, so the SRM and CESRM runs of a
	// pair (and, under Parallel, concurrent goroutines) share the same
	// *trace.Trace without copying.
	traces := make([]*trace.Trace, len(selected))
	for i, idx := range selected {
		tr, err := trace.Catalog[idx-1].Load(scale)
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}

	runOne := func(i, idx int) (SuiteResult, error) {
		entry := trace.Catalog[idx-1]
		base := s.Base
		base.Seed = s.Seed + int64(idx)
		// Retention and release are decided inside the run, not post-hoc:
		// a sweep that doesn't keep events never allocates them, and its
		// runs shed recovered per-packet state as the watermark advances.
		base.KeepEvents = s.KeepEvents
		base.ReleaseRecovered = !s.KeepEvents
		started := time.Now()
		pair, err := RunPair(traces[i], PairConfig{Base: base})
		elapsed := time.Since(started)
		if err != nil {
			return SuiteResult{Entry: entry}, fmt.Errorf("experiment: trace %d (%s): %w", idx, entry.Name, err)
		}
		return SuiteResult{
			Entry:            entry,
			Pair:             pair,
			SRMFingerprint:   pair.SRM.Fingerprint,
			CESRMFingerprint: pair.CESRM.Fingerprint,
			Elapsed:          elapsed,
			SRMStatus:        pair.SRM.Status,
			CESRMStatus:      pair.CESRM.Status,
		}, nil
	}

	out := make([]SuiteResult, len(selected))
	if s.Parallel <= 1 {
		for i, idx := range selected {
			r, err := runOne(i, idx)
			if err != nil {
				if s.ContinueOnError {
					r.Err = err
					out[i] = r
					continue
				}
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	// Bounded fan-out. Every simulation is self-contained (own engine,
	// RNGs, network), so this parallelism cannot change results.
	sem := make(chan struct{}, s.Parallel)
	errs := make([]error, len(selected))
	var wg sync.WaitGroup
	for i, idx := range selected {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, idx int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = runOne(i, idx)
		}(i, idx)
	}
	wg.Wait()
	if s.ContinueOnError {
		for i, err := range errs {
			if err != nil {
				out[i].Err = err
			}
		}
		return out, nil
	}
	// Surface the failure of the lowest catalog index, not whichever
	// position happens to come first in the selection: errors then read
	// the same regardless of how -traces ordered the selection.
	errIdx := -1
	for i, err := range errs {
		if err != nil && (errIdx == -1 || selected[i] < selected[errIdx]) {
			errIdx = i
		}
	}
	if errIdx != -1 {
		return nil, errs[errIdx]
	}
	return out, nil
}

// RenderTable1 prints the generated trace catalog next to the paper's
// Table 1 values.
func RenderTable1(w io.Writer, results []SuiteResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 1: IP multicast traces (generated vs paper)")
	fmt.Fprintln(tw, "#\tTrace\tRcvrs\tDepth\tPeriod\tPkts\tLosses\tPaperPkts\tPaperLosses\tBurstLen")
	for _, r := range results {
		if r.Pair == nil {
			continue
		}
		st := r.Pair.Trace.ComputeStats()
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%v\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Entry.Index, st.Name, st.Receivers, st.TreeDepth, st.Period,
			st.Packets, st.Losses, r.Entry.Packets, r.Entry.Losses,
			r.Pair.Trace.MeanBurstLength())
	}
	tw.Flush()
}

// RenderSec42 prints the link-attribution confidence statistics of §4.2.
func RenderSec42(w io.Writer, results []SuiteResult) {
	fmt.Fprintln(w, "§4.2: link-attribution confidence (paper: >90% of selections exceed 95% for 13/14 traces)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tTrace\t>95%\t>98%\tGroundTruth")
	for _, r := range results {
		if r.Pair == nil {
			continue
		}
		tr := r.Pair.Trace
		res, err := lossinfer.Infer(tr, r.Pair.SRM.InferredRates)
		if err != nil {
			fmt.Fprintf(tw, "%d\t%s\terror: %v\n", r.Entry.Index, r.Entry.Name, err)
			continue
		}
		gt := "n/a"
		if acc, err := lossinfer.GroundTruthAccuracy(tr, res); err == nil {
			gt = fmt.Sprintf("%.1f%%", 100*acc)
		}
		fmt.Fprintf(tw, "%d\t%s\t%.1f%%\t%.1f%%\t%s\n",
			r.Entry.Index, r.Entry.Name, 100*res.Confidence(0.95), 100*res.Confidence(0.98), gt)
	}
	tw.Flush()
}

// RenderFigure1 prints per-receiver average normalized recovery times.
func RenderFigure1(w io.Writer, results []SuiteResult) {
	fmt.Fprintln(w, "Figure 1: per-receiver average normalized recovery time (RTT units)")
	for _, r := range results {
		if r.Pair == nil {
			continue
		}
		fmt.Fprintf(w, "Trace %s (CESRM reduction %.0f%%):\n", r.Entry.Name, r.Pair.LatencyReductionPct())
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  Receiver\tSRM\tCESRM\tReduction")
		for _, row := range r.Pair.Figure1() {
			red := 0.0
			if row.SRMMean > 0 {
				red = 100 * (row.SRMMean - row.CESRMMean) / row.SRMMean
			}
			fmt.Fprintf(tw, "  %d\t%.2f\t%.2f\t%.0f%%\n", row.Index, row.SRMMean, row.CESRMMean, red)
		}
		tw.Flush()
	}
}

// RenderFigure2 prints the expedited vs non-expedited latency deltas.
func RenderFigure2(w io.Writer, results []SuiteResult) {
	fmt.Fprintln(w, "Figure 2: CESRM expedited vs non-expedited normalized recovery difference (RTT units)")
	for _, r := range results {
		if r.Pair == nil {
			continue
		}
		fmt.Fprintf(w, "Trace %s:\n", r.Entry.Name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  Receiver\tExpedited\tNon-exp\tDelta")
		for _, row := range r.Pair.Figure2() {
			fmt.Fprintf(tw, "  %d\t%.2f (n=%d)\t%.2f (n=%d)\t%.2f\n",
				row.Index, row.ExpeditedMean, row.ExpeditedCount, row.NormalMean, row.NormalCount, row.Delta)
		}
		tw.Flush()
	}
}

// renderCounts prints a Figure 3/4 style per-host packet count table.
func renderCounts(w io.Writer, results []SuiteResult, title string, rows func(*Pair) []PacketCountRow) {
	fmt.Fprintln(w, title)
	for _, r := range results {
		if r.Pair == nil {
			continue
		}
		fmt.Fprintf(w, "Trace %s:\n", r.Entry.Name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  Host\tSRM(mcast)\tCESRM(mcast)\tCESRM-EXP")
		for _, row := range rows(r.Pair) {
			fmt.Fprintf(tw, "  %d\t%d\t%d\t%d\n", row.Index, row.SRM, row.CESRMMulticast, row.CESRMExpedited)
		}
		tw.Flush()
	}
}

// RenderFigure3 prints per-host request packet counts.
func RenderFigure3(w io.Writer, results []SuiteResult) {
	renderCounts(w, results, "Figure 3: request packets sent per host",
		func(p *Pair) []PacketCountRow { return p.Figure3() })
}

// RenderFigure4 prints per-host reply packet counts.
func RenderFigure4(w io.Writer, results []SuiteResult) {
	renderCounts(w, results, "Figure 4: reply packets sent per host",
		func(p *Pair) []PacketCountRow { return p.Figure4() })
}

// RenderFigure5 prints expedited success percentages and transmission
// overhead ratios per trace.
func RenderFigure5(w io.Writer, results []SuiteResult) {
	fmt.Fprintln(w, "Figure 5: CESRM expedited success and transmission overhead relative to SRM")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tTrace\tExpSuccess\tRetrans%\tCtlMcast%\tCtlUcast%\tCtlTotal%")
	for _, r := range results {
		if r.Pair == nil {
			continue
		}
		succ, ok := r.Pair.ExpeditedSuccess()
		succStr := "n/a"
		if ok {
			succStr = fmt.Sprintf("%.1f%%", succ)
		}
		o := r.Pair.Overhead()
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Entry.Index, r.Entry.Name, succStr,
			o.RetransPct, o.ControlMulticastPct, o.ControlUnicastPct, o.ControlTotalPct())
	}
	tw.Flush()
}

// RenderSummary prints the headline comparison per trace.
func RenderSummary(w io.Writer, results []SuiteResult) {
	fmt.Fprintln(w, "Summary: CESRM vs SRM (paper: ~50% latency reduction, 30-80% of retransmissions)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tTrace\tSRM RTTs\tCESRM RTTs\tReduction\tSRM 1st-round\tExpSucc")
	for _, r := range results {
		p := r.Pair
		if p == nil {
			continue
		}
		s := p.SRM.Collector.OverallNormalized(p.SRM.RTT)
		c := p.CESRM.Collector.OverallNormalized(p.CESRM.RTT)
		fr := p.SRM.Collector.FirstRoundNormalized(p.SRM.RTT)
		succ, _ := p.ExpeditedSuccess()
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%.0f%%\t%.2f\t%.0f%%\n",
			r.Entry.Index, r.Entry.Name, s.MeanRTT, c.MeanRTT, p.LatencyReductionPct(), fr.MeanRTT, succ)
	}
	tw.Flush()
}

// RenderFingerprints prints each trace's run fingerprints. Identical
// configurations must print identical fingerprints across processes and
// machines; comparing this section across code revisions proves a
// change behavior-preserving.
func RenderFingerprints(w io.Writer, results []SuiteResult) {
	fmt.Fprintln(w, "Fingerprints: canonical determinism digests per run (stable across processes)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tTrace\tSRM\tCESRM")
	for _, r := range results {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n",
			r.Entry.Index, r.Entry.Name, r.SRMFingerprint, r.CESRMFingerprint)
	}
	tw.Flush()
}

// RenderAll writes every table and figure to w.
func RenderAll(w io.Writer, results []SuiteResult) {
	sections := []func(io.Writer, []SuiteResult){
		RenderTable1, RenderSec42, RenderSummary, RenderFigure1,
		RenderFigure2, RenderFigure3, RenderFigure4, RenderFigure5,
		RenderFingerprints,
	}
	for i, f := range sections {
		if i > 0 {
			fmt.Fprintln(w, strings.Repeat("-", 72))
		}
		f(w, results)
	}
}
