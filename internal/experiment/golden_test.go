package experiment

import (
	"testing"
	"time"
)

// TestGoldenDeterministicTotals pins the exact event totals of one small
// run per protocol. Every piece of the stack is deterministic in the
// seed — trace generation, inference, timer draws, event ordering — so
// any change to these numbers means protocol behavior changed. If the
// change is intentional, update the goldens; if not, a refactor broke
// timing or ordering somewhere.
func TestGoldenDeterministicTotals(t *testing.T) {
	tr := smallTrace(t, 99)
	if tr.TotalLosses() != 615 {
		t.Fatalf("trace golden drifted: losses = %d, want 615", tr.TotalLosses())
	}

	type golden struct {
		recoveries, requests, expReqs, replies, expReplies int
		crossings                                          uint64
		finished                                           time.Duration
	}
	want := map[Protocol]golden{
		SRM:   {615, 516, 0, 1653, 0, 30366, 164907752403 * time.Nanosecond},
		CESRM: {606, 162, 438, 362, 384, 13816, 164907752403 * time.Nanosecond},
		LMS:   {610, 610, 0, 610, 0, 5978, 165 * time.Second},
	}
	for p, g := range want {
		res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		tot := res.Collector.TotalCounts()
		got := golden{
			recoveries: len(res.Collector.Recoveries()),
			requests:   tot.Requests,
			expReqs:    tot.ExpRequests,
			replies:    tot.Replies,
			expReplies: tot.ExpReplies,
			crossings:  res.Crossings.RecoveryTotal(),
			finished:   time.Duration(res.FinishedAt),
		}
		if got != g {
			t.Errorf("%v totals drifted:\n got  %+v\n want %+v", p, got, g)
		}
	}
}
