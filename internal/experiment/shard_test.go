package experiment

import (
	"fmt"
	"testing"

	"cesrm/internal/chaos"
	"cesrm/internal/netsim"
	"cesrm/internal/sim"
)

// TestShardedFingerprintEquality pins the tentpole contract: a sharded
// run is byte-identical to the serial run, for every protocol and for
// shard counts below, at and above the subtree count.
func TestShardedFingerprintEquality(t *testing.T) {
	tr := smallTrace(t, 99)
	for _, p := range []Protocol{SRM, CESRM, LMS} {
		serial, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123})
		if err != nil {
			t.Fatalf("%v serial: %v", p, err)
		}
		for _, shards := range []int{2, 4, 16} {
			res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123, Shards: shards})
			if err != nil {
				t.Fatalf("%v shards=%d: %v", p, shards, err)
			}
			if res.Fingerprint != serial.Fingerprint {
				t.Errorf("%v shards=%d fingerprint diverged:\n got  %s\n want %s",
					p, shards, res.Fingerprint, serial.Fingerprint)
			}
			if res.FinishedAt != serial.FinishedAt {
				t.Errorf("%v shards=%d finish time diverged: got %v want %v",
					p, shards, res.FinishedAt, serial.FinishedAt)
			}
		}
	}
}

// TestShardedGoldenFingerprints proves sharded runs reproduce the pinned
// serial goldens exactly — not just self-consistency.
func TestShardedGoldenFingerprints(t *testing.T) {
	tr := smallTrace(t, 99)
	for p, fp := range goldenFingerprints {
		res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123, Shards: 8})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Fingerprint != fp {
			t.Errorf("%v sharded fingerprint drifted from golden:\n got  %s\n want %s",
				p, res.Fingerprint, fp)
		}
	}
}

// TestShardedWithFeatures covers the feature axes that interact with
// deferred dispatch: jitter (net RNG draws at merge), released state,
// lossy recovery (drop RNG draws per crossing) and fail-stop crashes.
func TestShardedWithFeatures(t *testing.T) {
	tr := smallTrace(t, 7)
	base := RunConfig{Trace: tr, Protocol: CESRM, Seed: 55, LossyRecovery: true, ReleaseRecovered: true}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	res, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != serial.Fingerprint {
		t.Errorf("lossy+release sharded fingerprint diverged:\n got  %s\n want %s",
			res.Fingerprint, serial.Fingerprint)
	}
}

// TestShardedChaosEquality runs a restart-bearing chaos spec sharded and
// serial; chaos faults are global (barrier) events, so equality must
// hold under them too.
func TestShardedChaosEquality(t *testing.T) {
	tr := smallTrace(t, 3)
	victim := tr.Tree.Receivers()[0]
	spec, err := chaos.ParseSpec(fmt.Sprintf("crash@20s:host=%d;restart@40s:host=%d", victim, victim))
	if err != nil {
		t.Fatal(err)
	}
	base := RunConfig{Trace: tr, Protocol: SRM, Seed: 11, Chaos: spec}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	res, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != serial.Fingerprint {
		t.Errorf("chaos sharded fingerprint diverged:\n got  %s\n want %s",
			res.Fingerprint, serial.Fingerprint)
	}
}

// TestShardedBudgetAbort pins the guardrail semantics under parallel
// dispatch: both serial and sharded runs abort on the event budget,
// and each aborts deterministically across reruns. The abort clocks
// are not compared across configs: hop-cohort delivery groups split at
// shard boundaries, so a sharded run dispatches more (smaller) events
// than serial and burns the budget at a different virtual time. Event
// budgets are comparable only between identical configurations —
// exactly the rule benchdiff applies to wall-clock gates.
func TestShardedBudgetAbort(t *testing.T) {
	tr := smallTrace(t, 99)
	base := RunConfig{Trace: tr, Protocol: SRM, Seed: 123,
		Budget: sim.Budget{MaxEvents: 5_000}}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Status != sim.EventBudgetExceeded {
		t.Fatalf("serial status = %v, want EventBudgetExceeded", serial.Status)
	}
	serial2, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if serial2.Fingerprint != serial.Fingerprint || serial2.FinishedAt != serial.FinishedAt {
		t.Errorf("serial budget abort not deterministic: %s@%v vs %s@%v",
			serial.Fingerprint, serial.FinishedAt, serial2.Fingerprint, serial2.FinishedAt)
	}
	sharded := base
	sharded.Shards = 4
	first, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != sim.EventBudgetExceeded {
		t.Fatalf("sharded status = %v, want EventBudgetExceeded", first.Status)
	}
	second, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if second.Fingerprint != first.Fingerprint || second.FinishedAt != first.FinishedAt {
		t.Errorf("sharded budget abort not deterministic: %s@%v vs %s@%v",
			first.Fingerprint, first.FinishedAt, second.Fingerprint, second.FinishedAt)
	}
}

// TestShardedBarrierEventsDrop pins the ROADMAP item-2 remainder:
// per-packet source transmit events carry the source's shard label
// instead of dispatching as GlobalShard barriers, so a sharded run's
// barrier count stays far below the packet count (every transmit used
// to be a barrier) while the fingerprint remains byte-identical to
// serial. The residual barriers are the session-cadence completion
// monitor (it inspects every host) and nothing proportional to traffic.
func TestShardedBarrierEventsDrop(t *testing.T) {
	tr := smallTrace(t, 99)
	base := RunConfig{Trace: tr, Protocol: SRM, Seed: 123}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if serial.BarrierEvents != 0 {
		t.Fatalf("serial run counted %d barrier events, want 0", serial.BarrierEvents)
	}
	sharded := base
	sharded.Shards = 4
	res, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != serial.Fingerprint {
		t.Fatalf("sharded fingerprint diverged:\n got  %s\n want %s", res.Fingerprint, serial.Fingerprint)
	}
	numPackets := uint64(tr.NumPackets())
	if res.BarrierEvents == 0 {
		t.Fatal("sharded run counted no barrier events; the monitor should still be one")
	}
	if res.BarrierEvents >= numPackets/2 {
		t.Errorf("sharded run dispatched %d barrier events for %d packets; transmits are serializing again",
			res.BarrierEvents, numPackets)
	}
}

// TestShardedPlanCacheCounters sanity-checks the plumbing end to end:
// a default run (plans enabled) reports cache activity with a high hit
// rate, a disabled run reports none, and the fingerprints match.
func TestShardedPlanCacheCounters(t *testing.T) {
	tr := smallTrace(t, 99)
	on, err := Run(RunConfig{Trace: tr, Protocol: SRM, Seed: 123, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(RunConfig{Trace: tr, Protocol: SRM, Seed: 123, Shards: 4, FloodPlanBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if on.Fingerprint != off.Fingerprint {
		t.Fatalf("plan cache changed the fingerprint:\n on  %s\n off %s", on.Fingerprint, off.Fingerprint)
	}
	if on.PlanStats.Hits == 0 || on.PlanStats.Misses == 0 {
		t.Fatalf("plan-enabled run reported no cache activity: %+v", on.PlanStats)
	}
	if on.PlanStats.Hits < 10*on.PlanStats.Misses {
		t.Errorf("plan hit rate unexpectedly low: %+v", on.PlanStats)
	}
	if off.PlanStats != (netsim.PlanStats{}) {
		t.Errorf("plan-disabled run reported cache activity: %+v", off.PlanStats)
	}
}
