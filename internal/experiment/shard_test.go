package experiment

import (
	"fmt"
	"testing"

	"cesrm/internal/chaos"
	"cesrm/internal/sim"
)

// TestShardedFingerprintEquality pins the tentpole contract: a sharded
// run is byte-identical to the serial run, for every protocol and for
// shard counts below, at and above the subtree count.
func TestShardedFingerprintEquality(t *testing.T) {
	tr := smallTrace(t, 99)
	for _, p := range []Protocol{SRM, CESRM, LMS} {
		serial, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123})
		if err != nil {
			t.Fatalf("%v serial: %v", p, err)
		}
		for _, shards := range []int{2, 4, 16} {
			res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123, Shards: shards})
			if err != nil {
				t.Fatalf("%v shards=%d: %v", p, shards, err)
			}
			if res.Fingerprint != serial.Fingerprint {
				t.Errorf("%v shards=%d fingerprint diverged:\n got  %s\n want %s",
					p, shards, res.Fingerprint, serial.Fingerprint)
			}
			if res.FinishedAt != serial.FinishedAt {
				t.Errorf("%v shards=%d finish time diverged: got %v want %v",
					p, shards, res.FinishedAt, serial.FinishedAt)
			}
		}
	}
}

// TestShardedGoldenFingerprints proves sharded runs reproduce the pinned
// serial goldens exactly — not just self-consistency.
func TestShardedGoldenFingerprints(t *testing.T) {
	tr := smallTrace(t, 99)
	for p, fp := range goldenFingerprints {
		res, err := Run(RunConfig{Trace: tr, Protocol: p, Seed: 123, Shards: 8})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Fingerprint != fp {
			t.Errorf("%v sharded fingerprint drifted from golden:\n got  %s\n want %s",
				p, res.Fingerprint, fp)
		}
	}
}

// TestShardedWithFeatures covers the feature axes that interact with
// deferred dispatch: jitter (net RNG draws at merge), released state,
// lossy recovery (drop RNG draws per crossing) and fail-stop crashes.
func TestShardedWithFeatures(t *testing.T) {
	tr := smallTrace(t, 7)
	base := RunConfig{Trace: tr, Protocol: CESRM, Seed: 55, LossyRecovery: true, ReleaseRecovered: true}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	res, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != serial.Fingerprint {
		t.Errorf("lossy+release sharded fingerprint diverged:\n got  %s\n want %s",
			res.Fingerprint, serial.Fingerprint)
	}
}

// TestShardedChaosEquality runs a restart-bearing chaos spec sharded and
// serial; chaos faults are global (barrier) events, so equality must
// hold under them too.
func TestShardedChaosEquality(t *testing.T) {
	tr := smallTrace(t, 3)
	victim := tr.Tree.Receivers()[0]
	spec, err := chaos.ParseSpec(fmt.Sprintf("crash@20s:host=%d;restart@40s:host=%d", victim, victim))
	if err != nil {
		t.Fatal(err)
	}
	base := RunConfig{Trace: tr, Protocol: SRM, Seed: 11, Chaos: spec}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	res, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != serial.Fingerprint {
		t.Errorf("chaos sharded fingerprint diverged:\n got  %s\n want %s",
			res.Fingerprint, serial.Fingerprint)
	}
}

// TestShardedBudgetAbort pins the guardrail semantics under parallel
// dispatch: a budget-aborted sharded run terminates with the same
// status and a clock no earlier than serial (entries admitted into the
// aborting batch finish; the clock never regresses), and the abort is
// deterministic across sharded reruns.
func TestShardedBudgetAbort(t *testing.T) {
	tr := smallTrace(t, 99)
	base := RunConfig{Trace: tr, Protocol: SRM, Seed: 123,
		Budget: sim.Budget{MaxEvents: 50_000}}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Status != sim.EventBudgetExceeded {
		t.Fatalf("serial status = %v, want EventBudgetExceeded", serial.Status)
	}
	sharded := base
	sharded.Shards = 4
	first, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != sim.EventBudgetExceeded {
		t.Fatalf("sharded status = %v, want EventBudgetExceeded", first.Status)
	}
	if first.FinishedAt < serial.FinishedAt {
		t.Errorf("sharded abort clock %v regressed below serial %v", first.FinishedAt, serial.FinishedAt)
	}
	second, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if second.Fingerprint != first.Fingerprint || second.FinishedAt != first.FinishedAt {
		t.Errorf("sharded budget abort not deterministic: %s@%v vs %s@%v",
			first.Fingerprint, first.FinishedAt, second.Fingerprint, second.FinishedAt)
	}
}
