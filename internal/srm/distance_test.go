package srm

import (
	"testing"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

func TestDistanceModeString(t *testing.T) {
	if DistOneWay.String() != "one-way" || DistEchoRTT.String() != "echo-rtt" {
		t.Fatal("mode names wrong")
	}
	if DistanceMode(9).String() != "unknown" {
		t.Fatal("unknown mode name")
	}
}

func TestRTTFromEcho(t *testing.T) {
	// Peer sent at 100ms; we receive its echo of our own timestamp at
	// 500ms, held 150ms: rtt = 500 - 100 - 150 = 250ms.
	e := Echo{PeerSentAt: sim.Time(100 * time.Millisecond), HeldFor: 150 * time.Millisecond}
	rtt, ok := rttFromEcho(sim.Time(500*time.Millisecond), e)
	if !ok || rtt != 250*time.Millisecond {
		t.Fatalf("rtt = %v, %v", rtt, ok)
	}
	// Corrupt echo producing negative RTT is rejected.
	bad := Echo{PeerSentAt: sim.Time(time.Second), HeldFor: time.Second}
	if _, ok := rttFromEcho(sim.Time(500*time.Millisecond), bad); ok {
		t.Fatal("negative RTT accepted")
	}
}

func TestEchoStateRoundTrip(t *testing.T) {
	e := newEchoState()
	if e.echoes(0) != nil {
		t.Fatal("empty echo state produced echoes")
	}
	e.record(7, sim.Time(100*time.Millisecond), sim.Time(140*time.Millisecond))
	out := e.echoes(sim.Time(200 * time.Millisecond))
	echo, ok := out[7]
	if !ok {
		t.Fatal("peer 7 missing from echoes")
	}
	if echo.PeerSentAt != sim.Time(100*time.Millisecond) || echo.HeldFor != 60*time.Millisecond {
		t.Fatalf("echo = %+v", echo)
	}
}

// TestEchoRTTConvergesToTrueDistances runs a session exchange in
// echo-RTT mode and verifies the converged estimates equal the true
// control-plane distances (the simulator's symmetric links make
// RTT/2 exact).
func TestEchoRTTConvergesToTrueDistances(t *testing.T) {
	p := DefaultParams()
	p.DistanceMode = DistEchoRTT
	f := newFixture(t, deepTree(), p)
	// Clear primed distances; echo mode must learn them from scratch.
	for _, a := range f.agents {
		a.dist = newDistTable(len(a.dist))
	}
	for _, a := range f.agents {
		a.StartSessions()
	}
	f.eng.RunUntil(sim.Time(5 * time.Second))
	for _, a := range f.agents {
		a.Stop()
	}
	f.eng.Run()

	hosts := []topology.NodeID{0, 2, 4}
	for _, x := range hosts {
		for _, y := range hosts {
			if x == y {
				continue
			}
			want := f.net.Distance(x, y)
			if got := f.agents[x].Distance(y); got != want {
				t.Errorf("echo-rtt d(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
	if f.agents[2].MissingDistanceLookups() != 0 {
		t.Fatal("distance lookups fell back to default")
	}
}

// TestEchoRTTProtocolRunMatchesOneWay reenacts a small loss scenario in
// both distance modes; since estimates converge to the same values, the
// protocols behave identically after warm-up.
func TestEchoRTTProtocolRunMatchesOneWay(t *testing.T) {
	results := make(map[DistanceMode]int)
	for _, mode := range []DistanceMode{DistOneWay, DistEchoRTT} {
		p := detParams()
		p.DistanceMode = mode
		f := newFixture(t, yTree(), p)
		for _, a := range f.agents {
			a.StartSessions()
		}
		f.net.SetDropFunc(dropSeqOnLink(5, 2))
		// Send data after a 3s warm-up so echo mode converges.
		src := f.agents[0]
		for i := 0; i < 8; i++ {
			seq := i
			f.eng.ScheduleAt(sim.Time(3*time.Second+time.Duration(i)*100*time.Millisecond), func(sim.Time) {
				src.Transmit(seq)
			})
		}
		f.eng.RunUntil(sim.Time(10 * time.Second))
		for _, a := range f.agents {
			a.Stop()
		}
		f.eng.Run()
		if f.agents[2].MissingIn(0, 8) != 0 {
			t.Fatalf("mode %v: recovery incomplete", mode)
		}
		results[mode] = len(f.log.recoveries)
	}
	if results[DistOneWay] != results[DistEchoRTT] {
		t.Fatalf("recovery counts differ across distance modes: %v", results)
	}
}
