package srm

import (
	"testing"

	"cesrm/internal/sim"
)

// TestStreamStateWatermarkRelease exercises the sliding release window
// directly: the held prefix advances with contiguous receipt, live
// reply abstinence pins the releasable watermark, release rebases the
// dense windows, and every accessor honors the base invariant
// (base ≤ held ≤ cursor) afterwards.
func TestStreamStateWatermarkRelease(t *testing.T) {
	st := newStreamState(0)
	for i := 0; i < 10; i++ {
		st.markReceived(i)
	}
	if st.held != 10 {
		t.Fatalf("held = %d after 10 contiguous receipts, want 10", st.held)
	}

	// A packet inside its reply-abstinence period pins the watermark.
	rs := st.ensureReply(4)
	rs.pendingUntil = sim.Time(100)
	if got := st.releasableThrough(sim.Time(50)); got != 4 {
		t.Fatalf("releasableThrough mid-abstinence = %d, want 4", got)
	}
	// Once the abstinence expires, the whole held prefix is releasable.
	if got := st.releasableThrough(sim.Time(100)); got != 10 {
		t.Fatalf("releasableThrough after abstinence = %d, want 10", got)
	}

	st.releaseThrough(6)
	if st.base != 6 {
		t.Fatalf("base = %d after releaseThrough(6), want 6", st.base)
	}
	// Released sequence numbers still read as held — release is gated on
	// every live host holding them — with no live loss or reply state.
	if !st.has(3) {
		t.Fatal("released seq 3 must report held")
	}
	if st.loss(3) != nil || st.reply(4) != nil {
		t.Fatal("released seqs must have nil loss/reply records")
	}
	// A straggler touching a released coordinate mutates nothing live.
	ghost := st.ensureReply(2)
	ghost.pendingUntil = sim.Time(999)
	if got := st.releasableThrough(sim.Time(0)); got != 10 {
		t.Fatalf("throwaway reply state leaked into the watermark: %d", got)
	}

	// The window keeps sliding after a release.
	st.markReceived(10)
	if st.held != 11 || !st.has(10) {
		t.Fatalf("held = %d has(10) = %v after post-release receipt", st.held, st.has(10))
	}
	// releaseThrough clamps to held and frees everything retained.
	st.releaseThrough(50)
	if st.base != 11 {
		t.Fatalf("base = %d after clamped release, want 11", st.base)
	}
	if st.window() != 0 {
		t.Fatalf("window = %d after full release, want 0", st.window())
	}
}

// TestStreamStateHeldGap checks the held prefix stalls at a gap and the
// releasable watermark never passes it.
func TestStreamStateHeldGap(t *testing.T) {
	st := newStreamState(0)
	st.markReceived(0)
	st.markReceived(2) // gap at 1
	if st.held != 1 {
		t.Fatalf("held = %d with a gap at 1, want 1", st.held)
	}
	if got := st.releasableThrough(sim.Time(1 << 40)); got != 1 {
		t.Fatalf("releasableThrough = %d with a gap at 1, want 1", got)
	}
	st.markReceived(1)
	if st.held != 3 {
		t.Fatalf("held = %d after the gap filled, want 3", st.held)
	}
}
