package srm

import (
	"testing"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// TestCrashCancelsSessionTimer pins the fail-stop cleanup regression: a
// crashed host's armed session tick must be cancelled, not left to
// drain, so Engine.Pending reflects only live work.
func TestCrashCancelsSessionTimer(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.agents[2].StartSessions()
	if got := f.eng.Pending(); got != 1 {
		t.Fatalf("Pending = %d after StartSessions, want 1", got)
	}
	f.agents[2].Crash()
	if got := f.eng.Pending(); got != 0 {
		t.Fatalf("Pending = %d after Crash, want 0 (session timer must be cancelled)", got)
	}
}

// TestStopLeavesSessionTickToDrainInertly pins the intentional asymmetry
// with Crash: Stop keeps the armed tick queued (it fires once, does
// nothing, and does not reschedule), because cancelling it would change
// the final virtual time every crash-free run fingerprint digests.
func TestStopLeavesSessionTickToDrainInertly(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.agents[2].StartSessions()
	f.agents[2].Stop()
	if got := f.eng.Pending(); got != 1 {
		t.Fatalf("Pending = %d after Stop, want 1 (inert drain)", got)
	}
	f.eng.Run()
	if f.log.sessions != 0 {
		t.Fatal("stopped host sent a session message")
	}
}

func TestCrashedHostCannotSendExpeditedRequest(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.agents[2].Crash()
	defer func() {
		if recover() == nil {
			t.Fatal("crashed UnicastExpeditedRequest did not panic")
		}
	}()
	f.agents[2].UnicastExpeditedRequest(0, 1, 3, topology.None)
}

func TestCrashedHostCannotSendExpeditedReply(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.agents[3].Crash()
	defer func() {
		if recover() == nil {
			t.Fatal("crashed SendExpeditedReply did not panic")
		}
	}()
	m := &RequestMsg{Source: 0, Seq: 1, Requestor: 2, Expedited: true, TurningPoint: topology.None}
	f.agents[3].SendExpeditedReply(f.eng.Now(), m, false)
}

func TestRestartPanicsForLiveHost(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	defer func() {
		if recover() == nil {
			t.Fatal("Restart of a never-crashed host did not panic")
		}
	}()
	f.agents[2].Restart()
}

// TestRestartRejoinsWithAmnesia crashes a receiver mid-stream and
// restarts it: the fresh incarnation must re-learn the stream from
// later packets, re-detect everything it missed, and recover to full
// reliability.
func TestRestartRejoinsWithAmnesia(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	a := f.agents[2]
	f.eng.ScheduleAt(sim.Time(150*time.Millisecond), func(sim.Time) { a.Crash() })
	f.eng.ScheduleAt(sim.Time(250*time.Millisecond), func(now sim.Time) {
		a.Restart()
		// Re-prime distances as a converged session exchange would.
		for id := range f.agents {
			if id != 2 {
				a.SetDistance(id, f.net.Distance(2, id))
			}
		}
	})
	// Seqs 0,1 land before the crash; 2 is swallowed by the outage; 3,4
	// arrive at the restarted incarnation, which must detect 0..2 as
	// missing and re-recover them.
	f.sendData(5, 100*time.Millisecond)
	// Restart re-arms the session timer, which reschedules forever; bound
	// the run instead of draining the queue.
	f.eng.RunUntil(sim.Time(30 * time.Second))

	if a.Crashed() {
		t.Fatal("Crashed() = true after restart")
	}
	if miss := a.MissingIn(0, 5); miss != 0 {
		t.Fatalf("restarted host missing %d packets", miss)
	}
	if f.agents[3].MissingIn(0, 5) != 0 {
		t.Fatal("bystander receiver missing packets")
	}
}

// TestCrashSilencesPendingAdvertDetection pins the fix for the
// fire-and-forget DetectionSlack timer: a session advert delivered just
// before a crash must not make the crashed host detect losses when the
// slack expires. Before the guard, the crashed host armed request
// timers the crash sweep had already missed; with no live holder of the
// advertised packets, the request back-off loop ran — and advanced the
// clock — forever.
func TestCrashSilencesPendingAdvertDetection(t *testing.T) {
	f := newFixture(t, chainTree(), detParams())
	a := f.agents[3]
	f.eng.ScheduleAt(sim.Time(100*time.Millisecond), func(now sim.Time) {
		a.Deliver(now, &netsim.Packet{Msg: &SessionMsg{
			From:    0,
			SentAt:  now.Add(-f.net.Distance(0, 3)),
			Highest: map[topology.NodeID]int{0: 4},
		}})
	})
	// Crash inside the DetectionSlack window (50 ms), with the deferred
	// detectThrough still pending.
	f.eng.ScheduleAt(sim.Time(120*time.Millisecond), func(sim.Time) { a.Crash() })
	f.eng.RunUntil(sim.Time(5 * time.Second))

	if len(f.log.detections) != 0 {
		t.Fatalf("crashed host detected %d losses from a pre-crash advert", len(f.log.detections))
	}
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d on a crashed host, want 0", got)
	}
	if got := f.eng.Pending(); got != 0 {
		t.Fatalf("Pending = %d after drain, want 0 (a request timer survived the crash)", got)
	}
}

// TestRestartOrphansPendingAdvertDetection covers the second half of
// the same fix: if the host restarts before the slack expires, the
// deferred closure holds the pre-crash stream object. Detecting losses
// on that orphan would be unrecoverable — replies resolve against the
// restarted host's fresh stream — so the closure must recognize the
// stream was replaced and stay inert.
func TestRestartOrphansPendingAdvertDetection(t *testing.T) {
	f := newFixture(t, chainTree(), detParams())
	a := f.agents[3]
	f.eng.ScheduleAt(sim.Time(100*time.Millisecond), func(now sim.Time) {
		a.Deliver(now, &netsim.Packet{Msg: &SessionMsg{
			From:    0,
			SentAt:  now.Add(-f.net.Distance(0, 3)),
			Highest: map[topology.NodeID]int{0: 4},
		}})
	})
	f.eng.ScheduleAt(sim.Time(120*time.Millisecond), func(sim.Time) { a.Crash() })
	// Restart before the 150 ms slack expiry: the pending closure now
	// references an orphaned stream.
	f.eng.ScheduleAt(sim.Time(130*time.Millisecond), func(sim.Time) { a.Restart() })
	f.eng.RunUntil(sim.Time(5 * time.Second))

	if len(f.log.detections) != 0 {
		t.Fatalf("orphaned advert closure detected %d losses", len(f.log.detections))
	}
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("Outstanding = %d after restart, want 0", got)
	}
}
