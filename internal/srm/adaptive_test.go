package srm

import (
	"testing"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

func TestAdaptiveConfigValidate(t *testing.T) {
	good := DefaultAdaptiveConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	disabled := AdaptiveConfig{}
	if err := disabled.Validate(); err != nil {
		t.Fatal("disabled config must validate")
	}
	cases := []func(*AdaptiveConfig){
		func(c *AdaptiveConfig) { c.TargetDupRequests = -1 },
		func(c *AdaptiveConfig) { c.Gain = -1 },
		func(c *AdaptiveConfig) { c.MinC1, c.MaxC1 = 4, 2 },
		func(c *AdaptiveConfig) { c.MinD2 = -1 },
	}
	for i, mutate := range cases {
		c := DefaultAdaptiveConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid adaptive config accepted", i)
		}
	}
}

func TestEnableAdaptiveTimersRejectsBadConfig(t *testing.T) {
	f := newFixture(t, yTree(), DefaultParams())
	bad := DefaultAdaptiveConfig()
	bad.Gain = -2
	if err := f.agents[2].EnableAdaptiveTimers(bad); err == nil {
		t.Fatal("bad adaptive config accepted")
	}
}

func TestEwma(t *testing.T) {
	if got := ewma(0, 4, false); got != 4 {
		t.Fatalf("first sample = %v, want 4", got)
	}
	if got := ewma(4, 0, true); got != 3 {
		t.Fatalf("smoothed = %v, want 3 (3/4*4)", got)
	}
}

func TestClampF(t *testing.T) {
	if clampF(5, 1, 3) != 3 || clampF(-1, 1, 3) != 1 || clampF(2, 1, 3) != 2 {
		t.Fatal("clampF wrong")
	}
}

// TestAdaptiveWidensWindowUnderDuplicates drives repeated losses shared
// by equidistant receivers (which duplicate requests under C2=0) and
// checks that the adapted request window widens.
func TestAdaptiveWidensWindowUnderDuplicates(t *testing.T) {
	p := detParams() // C2=0: equidistant hosts always duplicate
	f := newFixture(t, yTree(), p)
	for _, a := range f.agents {
		if err := a.EnableAdaptiveTimers(DefaultAdaptiveConfig()); err != nil {
			t.Fatal(err)
		}
	}
	// Drop every 5th packet on the shared link: both receivers lose it
	// and both request (equidistant, zero-width window).
	f.net.SetDropFunc(func(pk *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := pk.Msg.(*DataMsg)
		return ok && down && l == 1 && m.Seq%5 == 2
	})
	f.sendData(100, 100*time.Millisecond)
	f.eng.Run()

	before := detParams()
	after := f.agents[2].AdaptedParams()
	if after.C2 <= before.C2 {
		t.Fatalf("C2 did not widen under duplicate requests: %v -> %v", before.C2, after.C2)
	}
	if f.agents[2].MissingIn(0, 100) != 0 || f.agents[3].MissingIn(0, 100) != 0 {
		t.Fatal("adaptive run did not recover all losses")
	}
}

// TestAdaptiveTightensWindowWhenAlone drives losses seen by a single
// receiver in a chain: no duplicates ever, long normalized delays, so
// the window should shrink toward the bounds.
func TestAdaptiveTightensWindowWhenAlone(t *testing.T) {
	p := DefaultParams() // wide window: C1=C2=2
	f := newFixture(t, chainTree(), p)
	cfg := DefaultAdaptiveConfig()
	cfg.TargetReqDelay = 1 // aggressive: current delays (~C1+C2/2) exceed this
	for _, a := range f.agents {
		if err := a.EnableAdaptiveTimers(cfg); err != nil {
			t.Fatal(err)
		}
	}
	f.net.SetDropFunc(func(pk *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := pk.Msg.(*DataMsg)
		return ok && down && l == 3 && m.Seq%5 == 2
	})
	f.sendData(100, 100*time.Millisecond)
	f.eng.Run()

	after := f.agents[3].AdaptedParams()
	if after.C2 >= p.C2 {
		t.Fatalf("C2 did not shrink without duplicates: %v -> %v", p.C2, after.C2)
	}
	if f.agents[3].MissingIn(0, 100) != 0 {
		t.Fatal("adaptive run did not recover all losses")
	}
}

// TestAdaptiveRespectsBounds drives heavy duplication with tight bounds
// and verifies parameters never escape them.
func TestAdaptiveRespectsBounds(t *testing.T) {
	p := detParams()
	f := newFixture(t, yTree(), p)
	cfg := DefaultAdaptiveConfig()
	cfg.MaxC2 = 2.5
	cfg.MaxC1 = 2.2
	for _, a := range f.agents {
		if err := a.EnableAdaptiveTimers(cfg); err != nil {
			t.Fatal(err)
		}
	}
	f.net.SetDropFunc(func(pk *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := pk.Msg.(*DataMsg)
		return ok && down && l == 1 && m.Seq%3 == 1
	})
	f.sendData(150, 100*time.Millisecond)
	f.eng.Run()

	for _, id := range []topology.NodeID{2, 3} {
		ap := f.agents[id].AdaptedParams()
		if ap.C1 > cfg.MaxC1 || ap.C2 > cfg.MaxC2 {
			t.Fatalf("host %d escaped bounds: C1=%v C2=%v", id, ap.C1, ap.C2)
		}
		if ap.C1 < cfg.MinC1 || ap.C2 < cfg.MinC2 {
			t.Fatalf("host %d below bounds: C1=%v C2=%v", id, ap.C1, ap.C2)
		}
	}
}

func TestCrashStopsParticipation(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	// Crash receiver 3 before the loss: it must not answer receiver 2's
	// request, leaving only the source to reply.
	f.eng.ScheduleAt(sim.Time(50*time.Millisecond), func(sim.Time) {
		f.agents[3].Crash()
	})
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	if !f.agents[3].Crashed() {
		t.Fatal("Crashed() = false")
	}
	for _, r := range f.log.replies {
		if r.host == 3 {
			t.Fatal("crashed host sent a reply")
		}
	}
	// Receiver 2 still recovers via the source.
	if f.agents[2].MissingIn(0, 3) != 0 {
		t.Fatal("surviving receiver did not recover")
	}
}
