package srm

import (
	"sort"

	"cesrm/internal/netsim"
	"cesrm/internal/topology"
)

// Stable wire identifiers for SRM's message types. These are part of
// the cesrm-node wire format (netsim.CodecVersion); never renumber.
const (
	// WireData identifies DataMsg.
	WireData netsim.MsgType = 1
	// WireSession identifies SessionMsg.
	WireSession netsim.MsgType = 2
	// WireRequest identifies RequestMsg.
	WireRequest netsim.MsgType = 3
	// WireReply identifies ReplyMsg.
	WireReply netsim.MsgType = 4
)

func init() {
	netsim.RegisterMessage(WireData, (*DataMsg)(nil), netsim.MsgCodec{
		Name: "srm.DataMsg",
		Encode: func(e *netsim.Encoder, msg any) {
			m := msg.(*DataMsg)
			e.Node(m.Source)
			e.Int(m.Seq)
		},
		Decode: func(d *netsim.Decoder) any {
			return &DataMsg{Source: d.Node(), Seq: d.Int()}
		},
	})
	netsim.RegisterMessage(WireSession, (*SessionMsg)(nil), netsim.MsgCodec{
		Name:   "srm.SessionMsg",
		Encode: encodeSession,
		Decode: decodeSession,
	})
	netsim.RegisterMessage(WireRequest, (*RequestMsg)(nil), netsim.MsgCodec{
		Name: "srm.RequestMsg",
		Encode: func(e *netsim.Encoder, msg any) {
			m := msg.(*RequestMsg)
			e.Node(m.Source)
			e.Int(m.Seq)
			e.Node(m.Requestor)
			e.Duration(m.ReqDistToSource)
			e.Bool(m.Expedited)
			e.Node(m.TurningPoint)
		},
		Decode: func(d *netsim.Decoder) any {
			return &RequestMsg{
				Source:          d.Node(),
				Seq:             d.Int(),
				Requestor:       d.Node(),
				ReqDistToSource: d.Duration(),
				Expedited:       d.Bool(),
				TurningPoint:    d.Node(),
			}
		},
	})
	netsim.RegisterMessage(WireReply, (*ReplyMsg)(nil), netsim.MsgCodec{
		Name: "srm.ReplyMsg",
		Encode: func(e *netsim.Encoder, msg any) {
			m := msg.(*ReplyMsg)
			e.Node(m.Source)
			e.Int(m.Seq)
			e.Node(m.Replier)
			e.Node(m.Requestor)
			e.Duration(m.ReqDistToSource)
			e.Duration(m.ReplierDistToRequestor)
			e.Bool(m.Expedited)
		},
		Decode: func(d *netsim.Decoder) any {
			return &ReplyMsg{
				Source:                 d.Node(),
				Seq:                    d.Int(),
				Replier:                d.Node(),
				Requestor:              d.Node(),
				ReqDistToSource:        d.Duration(),
				ReplierDistToRequestor: d.Duration(),
				Expedited:              d.Bool(),
			}
		},
	})
}

// encodeSession writes a SessionMsg with both maps in sorted key order,
// so the same message always encodes to the same bytes — the property
// the wire mode's conformance oracle relies on. A nil map encodes as
// length zero; decode returns nil for length zero, so decode∘encode is
// idempotent even though encode(nil) == encode(empty).
func encodeSession(e *netsim.Encoder, msg any) {
	m := msg.(*SessionMsg)
	e.Node(m.From)
	e.Time(m.SentAt)
	e.Uvarint(uint64(len(m.Highest)))
	for _, k := range sortedNodeKeys(m.Highest) {
		e.Node(k)
		e.Int(m.Highest[k])
	}
	e.Uvarint(uint64(len(m.Echoes)))
	for _, k := range sortedNodeKeys(m.Echoes) {
		e.Node(k)
		echo := m.Echoes[k]
		e.Time(echo.PeerSentAt)
		e.Duration(echo.HeldFor)
	}
}

func decodeSession(d *netsim.Decoder) any {
	m := &SessionMsg{From: d.Node(), SentAt: d.Time()}
	if n := d.Len(); n > 0 {
		m.Highest = make(map[topology.NodeID]int, n)
		prev := topology.None
		for i := 0; i < n; i++ {
			k := d.Node()
			if k <= prev {
				d.Fail("srm: session Highest keys not strictly ascending")
				return m
			}
			prev = k
			m.Highest[k] = d.Int()
		}
	}
	if n := d.Len(); n > 0 {
		m.Echoes = make(map[topology.NodeID]Echo, n)
		prev := topology.None
		for i := 0; i < n; i++ {
			k := d.Node()
			if k <= prev {
				d.Fail("srm: session Echoes keys not strictly ascending")
				return m
			}
			prev = k
			m.Echoes[k] = Echo{PeerSentAt: d.Time(), HeldFor: d.Duration()}
		}
	}
	return m
}

// sortedNodeKeys returns m's keys in ascending order.
func sortedNodeKeys[V any](m map[topology.NodeID]V) []topology.NodeID {
	keys := make([]topology.NodeID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
