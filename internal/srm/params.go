package srm

import (
	"fmt"
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// Params are SRM's scheduling parameters (§2.1, §2.2).
type Params struct {
	// C1 and C2 control deterministic and probabilistic request
	// suppression: request timers are drawn uniformly from
	// [C1*d, (C1+C2)*d] scaled by 2^k per back-off round.
	C1, C2 float64
	// C3 scales the back-off abstinence period 2^k*C3*d, the interval
	// during which further requests do not back the timer off again
	// (the paper's parameterized variant of SRM's "half the time to the
	// next request").
	C3 float64
	// D1 and D2 control reply suppression: reply timers are drawn
	// uniformly from [D1*d, (D1+D2)*d] with d the replier's distance to
	// the requestor.
	D1, D2 float64
	// D3 scales the reply abstinence period D3*d after a reply for a
	// packet is sent or received, during which further requests for it
	// are discarded.
	D3 float64
	// SessionPeriod is the interval between session messages (1 s in
	// the paper's evaluation).
	SessionPeriod time.Duration
	// DefaultDistance substitutes for missing distance estimates. With
	// lossless session exchange and a warm-up phase it is never used;
	// it keeps the protocol live under session loss.
	DefaultDistance time.Duration
	// DistanceMode selects the session-message distance estimator: the
	// simulator-exact one-way mode (default) or SRM's deployable
	// echo-RTT mode, which assumes no clock synchronization.
	DistanceMode DistanceMode
	// DetectionSlack delays session-message-triggered loss detection.
	// Session messages are tiny control packets that can outrun in-flight
	// data packets (which pay per-hop serialization delay), so acting on
	// an advertised sequence number immediately would misclassify
	// packets still in flight as lost. The slack must cover the maximum
	// serialization skew: payload transmission time times tree depth.
	DetectionSlack time.Duration
	// MaxBackoff caps the back-off exponent so interval arithmetic
	// cannot overflow under sustained recovery failure.
	MaxBackoff int
	// MaxRequestRounds bounds how many request rounds a receiver
	// attempts per loss before abandoning recovery with a
	// RequestAbandoned event (bounded-retry degradation under
	// membership churn: a requester whose repliers all departed must
	// not loop exponential timers forever). Zero — the default and the
	// paper's behavior — retries without bound.
	MaxRequestRounds int
}

// DefaultParams returns the parameter settings used by Floyd et al. and
// by the paper's evaluation (§4.3): C1=C2=2, C3=1.5, D1=D2=1, D3=1.5,
// 1-second session period.
func DefaultParams() Params {
	return Params{
		C1: 2, C2: 2, C3: 1.5,
		D1: 1, D2: 1, D3: 1.5,
		SessionPeriod:   time.Second,
		DefaultDistance: 500 * time.Millisecond,
		DetectionSlack:  50 * time.Millisecond,
		MaxBackoff:      24,
	}
}

// Validate checks the parameters for protocol liveness.
func (p Params) Validate() error {
	if p.C1 < 0 || p.C2 < 0 || p.C3 < 0 || p.D1 < 0 || p.D2 < 0 || p.D3 < 0 {
		return fmt.Errorf("srm: negative scheduling parameter: %+v", p)
	}
	if p.C1+p.C2 == 0 {
		return fmt.Errorf("srm: C1+C2 must be positive")
	}
	if p.SessionPeriod <= 0 {
		return fmt.Errorf("srm: non-positive session period %v", p.SessionPeriod)
	}
	if p.DefaultDistance <= 0 {
		return fmt.Errorf("srm: non-positive default distance %v", p.DefaultDistance)
	}
	if p.DetectionSlack < 0 {
		return fmt.Errorf("srm: negative detection slack %v", p.DetectionSlack)
	}
	if p.MaxBackoff < 1 || p.MaxBackoff > 62 {
		return fmt.Errorf("srm: MaxBackoff %d out of [1, 62]", p.MaxBackoff)
	}
	if p.MaxRequestRounds < 0 {
		return fmt.Errorf("srm: negative MaxRequestRounds %d", p.MaxRequestRounds)
	}
	return nil
}

// RecoveryInfo describes how one loss was recovered.
type RecoveryInfo struct {
	// Expedited reports recovery by a CESRM expedited reply.
	Expedited bool
	// Requestor and Replier are the pair annotated on the recovering
	// reply. Requestor is None when the packet arrived as (reordered)
	// original data rather than a repair.
	Requestor, Replier topology.NodeID
	// OwnRequests counts repair requests this host itself multicast for
	// the packet before recovery.
	OwnRequests int
	// Reschedules counts suppression back-offs (request reschedules
	// caused by hearing another host's request).
	Reschedules int
}

// Observer receives protocol events for metrics collection. Methods are
// invoked synchronously from the simulation loop; implementations must
// not mutate protocol state. All events identify the stream by its
// source host.
type Observer interface {
	// LossDetected fires when a receiver first classifies a packet as
	// lost.
	LossDetected(host, source topology.NodeID, seq int, at sim.Time)
	// Recovered fires when a lost packet is finally received.
	Recovered(host, source topology.NodeID, seq int, at sim.Time, info RecoveryInfo)
	// RequestSent fires for every multicast repair request; round is the
	// back-off exponent in force when it was sent (0 for first round).
	RequestSent(host, source topology.NodeID, seq int, round int)
	// ExpRequestSent fires for every unicast expedited request.
	ExpRequestSent(host, source topology.NodeID, seq int)
	// ReplySent fires for every repair reply (retransmission).
	ReplySent(host, source topology.NodeID, seq int, expedited bool)
	// SessionSent fires for every session message.
	SessionSent(host topology.NodeID)
	// RequestAbandoned fires when a receiver gives up on recovering a
	// lost packet after Params.MaxRequestRounds request rounds. The
	// packet stays missing; the run's reliability accounting must
	// reconcile it explicitly.
	RequestAbandoned(host, source topology.NodeID, seq int, rounds int)
}

// NopObserver ignores all events.
type NopObserver struct{}

// LossDetected implements Observer.
func (NopObserver) LossDetected(_, _ topology.NodeID, _ int, _ sim.Time) {}

// Recovered implements Observer.
func (NopObserver) Recovered(_, _ topology.NodeID, _ int, _ sim.Time, _ RecoveryInfo) {}

// RequestSent implements Observer.
func (NopObserver) RequestSent(_, _ topology.NodeID, _ int, _ int) {}

// ExpRequestSent implements Observer.
func (NopObserver) ExpRequestSent(_, _ topology.NodeID, _ int) {}

// ReplySent implements Observer.
func (NopObserver) ReplySent(_, _ topology.NodeID, _ int, _ bool) {}

// SessionSent implements Observer.
func (NopObserver) SessionSent(topology.NodeID) {}

// RequestAbandoned implements Observer.
func (NopObserver) RequestAbandoned(_, _ topology.NodeID, _ int, _ int) {}

var _ Observer = NopObserver{}

// Extension is the hook surface the CESRM layer implements. A nil
// extension yields plain SRM.
type Extension interface {
	// LossDetected is invoked immediately after SRM schedules its own
	// repair request for a newly detected loss.
	LossDetected(now sim.Time, source topology.NodeID, seq int)
	// ReplyObserved is invoked for every repair reply this host
	// receives, after SRM's own processing. everLost reports whether
	// this host ever suffered the loss of the packet — the condition
	// under which CESRM caches the reply's requestor/replier pair.
	ReplyObserved(now sim.Time, m *ReplyMsg, everLost bool)
	// PacketReceived is invoked for every packet that newly arrives
	// (data or repair), letting the extension cancel pending expedited
	// requests.
	PacketReceived(now sim.Time, source topology.NodeID, seq int)
}
