// Package srm implements the Scalable Reliable Multicast protocol of
// Floyd et al. (SIGCOMM 1995 / ToN 1997) as described in §2 of the
// CESRM paper: receiver-based loss recovery with multicast repair
// requests and replies, deterministic and probabilistic suppression,
// exponential request back-off with a back-off abstinence period, and
// reply abstinence.
//
// The agent exposes the extension points (loss-detection and
// reply-observation hooks, expedited send helpers) that the CESRM layer
// in internal/core builds on; plain SRM uses none of them.
package srm

import (
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// DataMsg is an original data packet of one source's stream. SRM
// supports any number of concurrent single-source streams over the
// shared group; all recovery state is kept per source.
type DataMsg struct {
	// Source is the originating host.
	Source topology.NodeID
	// Seq is the packet sequence number within the stream, dense from 0.
	Seq int
}

// IsOriginalData marks DataMsg for netsim's cost segregation.
func (*DataMsg) IsOriginalData() bool { return true }

// SessionMsg is a periodic group session message (§2). Timestamps give
// receivers one-way distance estimates; the per-source highest known
// sequence numbers let receivers detect tail losses they cannot see as
// gaps.
type SessionMsg struct {
	// From is the sending host.
	From topology.NodeID
	// SentAt is the transmission timestamp used for distance estimation.
	SentAt sim.Time
	// Highest maps each known source to the highest sequence number the
	// sender knows to exist in that source's stream.
	Highest map[topology.NodeID]int
	// Echoes carries, per peer, the sender's echo of that peer's last
	// session timestamp (DistEchoRTT mode only; nil otherwise). A
	// receiver finds its own entry and derives a clock-offset-free RTT.
	Echoes map[topology.NodeID]Echo
}

// RequestMsg is a repair request. Per §3.1 of the paper, requests are
// annotated with the requestor and its distance estimate to the source
// so that receivers can reconstruct optimal requestor/replier pairs.
type RequestMsg struct {
	// Source identifies the stream the packet belongs to.
	Source topology.NodeID
	// Seq is the requested packet.
	Seq int
	// Requestor is the requesting host.
	Requestor topology.NodeID
	// ReqDistToSource is the requestor's distance estimate to the
	// source (the d̂qs annotation).
	ReqDistToSource time.Duration
	// Expedited marks CESRM expedited requests, which are unicast to a
	// chosen replier rather than multicast (§3.2). Plain SRM ignores
	// them.
	Expedited bool
	// TurningPoint carries the cached turning-point router in the
	// router-assisted variant (§3.3); None otherwise.
	TurningPoint topology.NodeID
}

// ReplyMsg is a repair reply: the retransmission of the packet. Per
// §3.1 it is annotated with the requestor that instigated it, that
// requestor's distance to the source, the replier, and the replier's
// distance to the requestor.
type ReplyMsg struct {
	// Source identifies the stream the packet belongs to.
	Source topology.NodeID
	// Seq is the retransmitted packet.
	Seq int
	// Replier is the retransmitting host.
	Replier topology.NodeID
	// Requestor is the host whose request instigated this reply.
	Requestor topology.NodeID
	// ReqDistToSource is the requestor's annotated distance to the
	// source (d̂qs).
	ReqDistToSource time.Duration
	// ReplierDistToRequestor is the replier's distance estimate to the
	// requestor (d̂rq).
	ReplierDistToRequestor time.Duration
	// Expedited marks CESRM expedited replies (§3.2).
	Expedited bool
}
