package srm

import (
	"testing"
	"time"

	"cesrm/internal/netsim"
	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// eventLog records observer callbacks with timestamps.
type eventLog struct {
	detections []event
	recoveries []event
	requests   []event
	replies    []event
	expReqs    []event
	abandons   []event
	sessions   int
}

type event struct {
	host  topology.NodeID
	seq   int
	at    sim.Time
	round int
	info  RecoveryInfo
	exp   bool
}

func (l *eventLog) LossDetected(h, source topology.NodeID, seq int, at sim.Time) {
	l.detections = append(l.detections, event{host: h, seq: seq, at: at})
}
func (l *eventLog) Recovered(h, source topology.NodeID, seq int, at sim.Time, info RecoveryInfo) {
	l.recoveries = append(l.recoveries, event{host: h, seq: seq, at: at, info: info})
}
func (l *eventLog) RequestSent(h, source topology.NodeID, seq int, round int) {
	l.requests = append(l.requests, event{host: h, seq: seq, round: round})
}
func (l *eventLog) ExpRequestSent(h, source topology.NodeID, seq int) {
	l.expReqs = append(l.expReqs, event{host: h, seq: seq})
}
func (l *eventLog) ReplySent(h, source topology.NodeID, seq int, expedited bool) {
	l.replies = append(l.replies, event{host: h, seq: seq, exp: expedited})
}
func (l *eventLog) SessionSent(topology.NodeID) { l.sessions++ }
func (l *eventLog) RequestAbandoned(h, source topology.NodeID, seq int, rounds int) {
	l.abandons = append(l.abandons, event{host: h, seq: seq, round: rounds})
}

// detParams returns deterministic scheduling parameters: zero-width
// request and reply windows (C2=D2=0) so timers are exact.
func detParams() Params {
	p := DefaultParams()
	p.C2 = 0
	p.D2 = 0
	return p
}

// fixture is a ready-to-run protocol test bed.
type fixture struct {
	eng    *sim.Engine
	net    *netsim.Network
	tree   *topology.Tree
	agents map[topology.NodeID]*Agent
	log    *eventLog
}

// newFixture builds agents (source + receivers) over the given tree with
// distances primed from the topology, sessions off.
func newFixture(t *testing.T, tree *topology.Tree, p Params) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	net := netsim.MustNew(eng, tree, netsim.DefaultConfig())
	log := &eventLog{}
	f := &fixture{eng: eng, net: net, tree: tree, agents: map[topology.NodeID]*Agent{}, log: log}
	hosts := append([]topology.NodeID{tree.Root()}, tree.Receivers()...)
	rng := sim.NewRNG(1)
	for _, id := range hosts {
		a, err := NewAgent(eng, net, rng.Split(), id, p, log, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.agents[id] = a
	}
	// Prime pairwise distances exactly, as a converged session exchange
	// would measure them.
	for _, a := range hosts {
		for _, b := range hosts {
			if a != b {
				f.agents[a].SetDistance(b, net.Distance(a, b))
			}
		}
	}
	return f
}

// sendData schedules source transmissions of seq 0..n-1 at the period.
func (f *fixture) sendData(n int, period time.Duration) {
	src := f.agents[f.tree.Root()]
	for i := 0; i < n; i++ {
		seq := i
		f.eng.ScheduleAt(sim.Time(time.Duration(i)*period), func(sim.Time) {
			src.Transmit(seq)
		})
	}
}

// chainTree is 0 -> 1 -> 2 -> 3, a single receiver at depth 3.
func chainTree() *topology.Tree {
	return topology.MustNew([]topology.NodeID{topology.None, 0, 1, 2})
}

// yTree is 0 -> 1 -> {2, 3}: two receivers at depth 2.
func yTree() *topology.Tree {
	return topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1})
}

// deepTree has receivers at different depths sharing link 1:
//
//	0 -> 1 -> 2 (receiver, depth 2)
//	     1 -> 3 -> 4 (receiver, depth 3)
func deepTree() *topology.Tree {
	return topology.MustNew([]topology.NodeID{topology.None, 0, 1, 1, 3})
}

func dropSeqOnLink(seq int, link topology.LinkID) netsim.DropFunc {
	return func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*DataMsg)
		return ok && down && m.Seq == seq && l == link
	}
}

func TestGapDetectionTiming(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	if len(f.log.detections) != 1 {
		t.Fatalf("detections = %d, want 1", len(f.log.detections))
	}
	d := f.log.detections[0]
	if d.host != 2 || d.seq != 1 {
		t.Fatalf("detected host=%d seq=%d", d.host, d.seq)
	}
	// Detection happens when seq 2 arrives at receiver 2: sent at 200ms,
	// two payload hops of 20ms + 1KB/1.5Mbps each.
	bw := 1.5e6
	tx := time.Duration(float64(1024*8) / bw * float64(time.Second))
	want := sim.Time(200*time.Millisecond + 2*(20*time.Millisecond+tx))
	if d.at != want {
		t.Fatalf("detected at %v, want %v", d.at, want)
	}
}

func TestRequestTimerUsesC1TimesDistance(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	if len(f.log.requests) != 1 {
		t.Fatalf("requests = %d, want 1", len(f.log.requests))
	}
	// With C2=0 the request fires exactly C1*d after detection:
	// d(2, source) = 2 hops * 20ms = 40ms, C1 = 2 => 80ms.
	det := f.log.detections[0].at
	wantFire := det.Add(80 * time.Millisecond)
	// The request event is logged at the fire instant; recover it from
	// the recovery time arithmetic instead: replies from source and the
	// sibling receiver are scheduled D1*d after the request arrives.
	// Check recovery happened and was attributed to requestor 2.
	if len(f.log.recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(f.log.recoveries))
	}
	rec := f.log.recoveries[0]
	if rec.info.Requestor != 2 {
		t.Fatalf("recovery requestor = %d, want 2", rec.info.Requestor)
	}
	if rec.info.OwnRequests != 1 {
		t.Fatalf("own requests = %d, want 1", rec.info.OwnRequests)
	}
	_ = wantFire
}

func TestRecoveryTimeline(t *testing.T) {
	// Single receiver chain: fully deterministic recovery timeline.
	f := newFixture(t, chainTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 3))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	bw := 1.5e6
	tx := time.Duration(float64(1024*8) / bw * float64(time.Second))
	perHop := 20*time.Millisecond + tx
	det := sim.Time(200*time.Millisecond + 3*perHop)
	// Request fires at det + C1*d(3,0) = det + 2*60ms = det+120ms.
	// It reaches the source 3 control hops (60ms) later; the source
	// schedules its reply D1*d(0,3) = 60ms, sends, and the payload takes
	// 3 payload hops back.
	wantRecovery := det.Add(120*time.Millisecond + 60*time.Millisecond + 60*time.Millisecond + 3*perHop)
	if len(f.log.recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(f.log.recoveries))
	}
	rec := f.log.recoveries[0]
	if rec.at != wantRecovery {
		t.Fatalf("recovered at %v, want %v", rec.at, wantRecovery)
	}
	if rec.info.Replier != 0 {
		t.Fatalf("replier = %d, want source", rec.info.Replier)
	}
}

func TestExponentialBackoffWhenRepliesLost(t *testing.T) {
	f := newFixture(t, chainTree(), detParams())
	f.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		if m, ok := p.Msg.(*DataMsg); ok {
			return down && m.Seq == 1 && l == 3
		}
		_, isReply := p.Msg.(*ReplyMsg)
		return isReply // recovery never succeeds
	})
	f.sendData(3, 100*time.Millisecond)
	f.eng.RunUntil(sim.Time(10 * time.Second))

	if len(f.log.requests) < 4 {
		t.Fatalf("requests = %d, want >= 4 rounds", len(f.log.requests))
	}
	// Rounds must be 0,1,2,... and the base interval C1*d = 120ms must
	// double each round: fire times det+120, +240, +480, +960...
	for i, r := range f.log.requests {
		if r.round != i {
			t.Fatalf("request %d has round %d", i, r.round)
		}
	}
}

func TestDeterministicSuppressionAcrossDepths(t *testing.T) {
	// Receivers 2 (depth 2) and 4 (depth 3) share a loss on link 1. The
	// closer receiver's request fires first and suppresses the farther
	// one, which backs off without sending.
	f := newFixture(t, deepTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 1))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	var reqHosts []topology.NodeID
	for _, r := range f.log.requests {
		reqHosts = append(reqHosts, r.host)
	}
	if len(reqHosts) != 1 || reqHosts[0] != 2 {
		t.Fatalf("requests from %v, want exactly one from receiver 2", reqHosts)
	}
	// Both receivers recover from the single reply.
	if len(f.log.recoveries) != 2 {
		t.Fatalf("recoveries = %d, want 2", len(f.log.recoveries))
	}
	for _, rec := range f.log.recoveries {
		if rec.info.Requestor != 2 {
			t.Fatalf("recovery attributed to requestor %d, want 2", rec.info.Requestor)
		}
	}
	// The suppressed receiver backed off exactly once.
	for _, rec := range f.log.recoveries {
		if rec.host == 4 {
			if rec.info.OwnRequests != 0 || rec.info.Reschedules != 1 {
				t.Fatalf("receiver 4: ownRequests=%d reschedules=%d, want 0/1",
					rec.info.OwnRequests, rec.info.Reschedules)
			}
		}
	}
	// Only the source replies (receiver hosts share the loss).
	if len(f.log.replies) != 1 || f.log.replies[0].host != 0 {
		t.Fatalf("replies = %+v, want one from source", f.log.replies)
	}
}

func TestEquidistantRepliersProduceDuplicates(t *testing.T) {
	// Both the source and receiver 3 have packet 1 and sit 40ms from
	// requestor 2; with D2=0 both reply timers fire before either hears
	// the other's reply: SRM's duplicate-reply cost.
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	if len(f.log.replies) != 2 {
		t.Fatalf("replies = %d, want 2 (duplicate suppression impossible here)", len(f.log.replies))
	}
}

func TestReplyCancelledBySuppression(t *testing.T) {
	// Make receiver 3 farther from the requestor than the source so the
	// source's reply lands before 3's timer fires and suppresses it.
	//
	//	0 -> 1 -> 2 (requestor), 0 -> 4 -> 5 -> 3 (other receiver)
	tree := topology.MustNew([]topology.NodeID{topology.None, 0, 1, 5, 0, 4})
	p := detParams()
	f := newFixture(t, tree, p)
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	// d(0,2)=2 hops=40ms; d(3,2)=5 hops=100ms. Source reply timer: 40ms
	// after request arrival (at t+40ms) => sends at t+80ms, reaches 3 at
	// ~t+80+5 payload hops; 3's timer would fire at t+100(request
	// arrival)+100 = t+200 > suppression arrival (~t+207?). Close; use
	// the reply count to verify only one reply was sent.
	if len(f.log.replies) > 2 {
		t.Fatalf("replies = %d, want suppression to limit duplicates", len(f.log.replies))
	}
	if len(f.log.recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(f.log.recoveries))
	}
}

func TestBackoffAbstinencePreventsDoubleBackoff(t *testing.T) {
	// Two equidistant receivers lose the same packet and both send
	// round-1 requests at the same instant. Each receives the other's
	// request while inside its back-off abstinence period, so neither
	// backs off a second time.
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		if m, ok := p.Msg.(*DataMsg); ok {
			return down && m.Seq == 1 && l == 1
		}
		return false
	})
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	// Both fire at detection+C1*d simultaneously (C2=0, equidistant).
	if len(f.log.requests) != 2 {
		t.Fatalf("requests = %d, want 2 simultaneous", len(f.log.requests))
	}
	for _, rec := range f.log.recoveries {
		if rec.info.Reschedules != 0 {
			t.Fatalf("host %d rescheduled %d times; abstinence should absorb the peer request",
				rec.host, rec.info.Reschedules)
		}
	}
}

func TestSessionDistanceEstimation(t *testing.T) {
	f := newFixture(t, deepTree(), DefaultParams())
	// Clear primed distances to exercise estimation.
	agents := f.agents
	for _, a := range agents {
		a.dist = newDistTable(len(a.dist))
	}
	for _, a := range agents {
		a.StartSessions()
	}
	f.eng.RunUntil(sim.Time(3 * time.Second))
	for _, a := range agents {
		a.Stop()
	}
	f.eng.Run()

	if got := agents[4].Distance(2); got != f.net.Distance(4, 2) {
		t.Fatalf("estimated d(4,2) = %v, want %v", got, f.net.Distance(4, 2))
	}
	if got := agents[2].Distance(0); got != 40*time.Millisecond {
		t.Fatalf("estimated d(2,0) = %v, want 40ms", got)
	}
	if agents[2].MissingDistanceLookups() != 0 {
		t.Fatal("distance lookups fell back to default")
	}
}

func TestTailLossDetectedViaSession(t *testing.T) {
	// The LAST packet is lost: no later data packet reveals the gap, so
	// only session messages can trigger detection.
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(2, 2))
	for _, a := range f.agents {
		a.StartSessions()
	}
	f.sendData(3, 100*time.Millisecond)
	f.eng.RunUntil(sim.Time(5 * time.Second))
	for _, a := range f.agents {
		a.Stop()
	}
	f.eng.Run()

	found := false
	for _, d := range f.log.detections {
		if d.host == 2 && d.seq == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("tail loss never detected via session messages")
	}
	if f.agents[2].MissingIn(0, 3) != 0 {
		t.Fatal("tail loss never recovered")
	}
}

func TestDetectionSlackPreventsFalsePositives(t *testing.T) {
	// No losses at all: despite continuous session chatter advertising
	// fresh sequence numbers that race in-flight data, nothing may ever
	// be classified lost.
	f := newFixture(t, deepTree(), DefaultParams())
	for _, a := range f.agents {
		a.StartSessions()
	}
	f.sendData(50, 30*time.Millisecond)
	f.eng.RunUntil(sim.Time(8 * time.Second))
	for _, a := range f.agents {
		a.Stop()
	}
	f.eng.Run()

	if len(f.log.detections) != 0 {
		t.Fatalf("false loss detections: %+v", f.log.detections)
	}
}

func TestSourceAnswersRequests(t *testing.T) {
	// Lose a packet on the receiver's own leaf link in a chain: only the
	// source can answer.
	f := newFixture(t, chainTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(0, 3))
	f.sendData(2, 100*time.Millisecond)
	f.eng.Run()

	if len(f.log.replies) != 1 || f.log.replies[0].host != 0 {
		t.Fatalf("replies = %+v, want one from the source", f.log.replies)
	}
	if f.agents[3].MissingIn(0, 2) != 0 {
		t.Fatal("receiver did not recover")
	}
}

func TestHasEverLostAccessors(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	a := f.agents[2]
	if !a.Has(0, 0) || !a.Has(0, 1) || !a.Has(0, 2) {
		t.Fatal("receiver missing packets after recovery")
	}
	if !a.EverLost(0, 1) {
		t.Fatal("EverLost(1) = false after loss and recovery")
	}
	if a.EverLost(0, 0) {
		t.Fatal("EverLost(0) = true for never-lost packet")
	}
	if a.MissingIn(0, 3) != 0 {
		t.Fatal("MissingIn != 0")
	}
	if a.Outstanding() != 0 {
		t.Fatal("Outstanding != 0 after recovery")
	}
}

func TestCrashedHostCannotTransmit(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.agents[2].Crash()
	defer func() {
		if recover() == nil {
			t.Fatal("crashed Transmit did not panic")
		}
	}()
	f.agents[2].Transmit(0)
}

func TestMultiSourceIndependentStreams(t *testing.T) {
	// Two concurrent streams: the tree root (source 0) and receiver 3
	// originating its own stream. Both streams lose their packet 1 on
	// receiver 2's leaf link; the streams must recover independently,
	// with per-stream sequence spaces.
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		m, ok := p.Msg.(*DataMsg)
		if !ok || !down || l != 2 {
			return false
		}
		return m.Seq == 1
	})
	// Interleave: stream 0 sends 0,1,2 and stream 3 sends 0,1,2.
	for i := 0; i < 3; i++ {
		seq := i
		f.eng.ScheduleAt(sim.Time(time.Duration(i)*100*time.Millisecond), func(sim.Time) {
			f.agents[0].Transmit(seq)
		})
		f.eng.ScheduleAt(sim.Time(time.Duration(i)*100*time.Millisecond+30*time.Millisecond), func(sim.Time) {
			f.agents[3].Transmit(seq)
		})
	}
	f.eng.Run()

	a2 := f.agents[2]
	if a2.MissingIn(0, 3) != 0 {
		t.Fatal("stream 0 not fully recovered at receiver 2")
	}
	if a2.MissingIn(3, 3) != 0 {
		t.Fatal("stream 3 not fully recovered at receiver 2")
	}
	if !a2.EverLost(0, 1) || !a2.EverLost(3, 1) {
		t.Fatal("per-stream losses not recorded independently")
	}
	if a2.EverLost(0, 0) || a2.EverLost(3, 0) {
		t.Fatal("phantom losses recorded")
	}
	if f.agents[0].MissingIn(3, 3) != 0 {
		t.Fatal("root did not receive stream 3")
	}
	if f.agents[3].MissingIn(0, 3) != 0 {
		t.Fatal("host 3 did not receive stream 0")
	}
	if len(a2.Sources()) != 2 {
		t.Fatalf("Sources() = %v, want 2 streams", a2.Sources())
	}
}

func TestUnknownMessagePanics(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown message type did not panic")
		}
	}()
	f.agents[2].Deliver(0, &netsim.Packet{Msg: "bogus"})
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.C1 = -1 },
		func(p *Params) { p.C1, p.C2 = 0, 0 },
		func(p *Params) { p.D3 = -0.5 },
		func(p *Params) { p.SessionPeriod = 0 },
		func(p *Params) { p.DefaultDistance = 0 },
		func(p *Params) { p.DetectionSlack = -time.Second },
		func(p *Params) { p.MaxBackoff = 0 },
		func(p *Params) { p.MaxBackoff = 63 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestNewAgentRejectsInvalidParams(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.MustNew(eng, yTree(), netsim.DefaultConfig())
	p := DefaultParams()
	p.SessionPeriod = 0
	if _, err := NewAgent(eng, net, sim.NewRNG(1), 2, p, nil, nil); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestReplyAbstinenceDiscardsRequests(t *testing.T) {
	// After the source sends a reply for seq 1, a second request
	// arriving within D3*d must not trigger a second reply.
	f := newFixture(t, deepTree(), detParams())
	// Drop packet 1 for both receivers AND drop the first reply so the
	// requestor requests again quickly... simpler: drop seq 1 on both
	// leaf links so both receivers lose it independently; their requests
	// arrive at the source at different times (different request timers).
	f.net.SetDropFunc(func(p *netsim.Packet, l topology.LinkID, down bool) bool {
		if m, ok := p.Msg.(*DataMsg); ok {
			return down && m.Seq == 1 && (l == 2 || l == 4)
		}
		return false
	})
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	// Receiver 2's request fires C1*40ms = 80ms after its detection;
	// receiver 4's fires C1*60ms = 120ms after a slightly later
	// detection. 4's request is suppressed by 2's (they share the loss
	// pattern but not the link; both still back off on foreign requests
	// since both lost the packet). The source replies once; the reply
	// recovers both.
	if len(f.log.replies) != 1 {
		t.Fatalf("replies = %d, want 1 (abstinence/suppression)", len(f.log.replies))
	}
	if len(f.log.recoveries) != 2 {
		t.Fatalf("recoveries = %d, want 2", len(f.log.recoveries))
	}
}

func TestMaxBackoffCapsIntervals(t *testing.T) {
	p := detParams()
	p.MaxBackoff = 2 // intervals stop doubling past 4x
	f := newFixture(t, chainTree(), p)
	f.net.SetDropFunc(func(pk *netsim.Packet, l topology.LinkID, down bool) bool {
		if m, ok := pk.Msg.(*DataMsg); ok {
			return down && m.Seq == 1 && l == 3
		}
		_, isReply := pk.Msg.(*ReplyMsg)
		return isReply
	})
	f.sendData(3, 100*time.Millisecond)
	f.eng.RunUntil(sim.Time(20 * time.Second))

	// With d=60ms, C1=2, cap at 2: request interval saturates at
	// 4*C1*d = 480ms. In ~19s of recovery attempts that allows roughly
	// 19/0.48 = 39 requests; an uncapped exponential would send ~7.
	if len(f.log.requests) < 20 {
		t.Fatalf("requests = %d; MaxBackoff cap not applied", len(f.log.requests))
	}
}

func TestDefaultDistanceFallback(t *testing.T) {
	p := detParams()
	f := newFixture(t, yTree(), p)
	// Wipe receiver 2's distances: its request scheduling must fall back
	// to DefaultDistance and count the miss.
	f.agents[2].dist = newDistTable(len(f.agents[2].dist))
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	if f.agents[2].MissingDistanceLookups() == 0 {
		t.Fatal("no fallback recorded despite missing distances")
	}
	if f.agents[2].MissingIn(0, 3) != 0 {
		t.Fatal("recovery failed under fallback distances")
	}
}

func TestLossesReport(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.net.SetDropFunc(dropSeqOnLink(1, 2))
	f.sendData(3, 100*time.Millisecond)
	f.eng.Run()

	reports := f.agents[2].Losses()
	if len(reports) != 1 {
		t.Fatalf("loss reports = %d, want 1", len(reports))
	}
	r := reports[0]
	if r.Seq != 1 || r.Source != 0 || !r.Recovered {
		t.Fatalf("report = %+v", r)
	}
	if !r.RecoveredAt.After(r.DetectedAt) {
		t.Fatal("recovery not after detection")
	}
	if r.Info.Replier == topology.None {
		t.Fatal("recovering replier not recorded")
	}
}

func TestSourcesAccessor(t *testing.T) {
	f := newFixture(t, yTree(), detParams())
	f.sendData(2, 100*time.Millisecond)
	f.eng.Run()
	srcs := f.agents[2].Sources()
	if len(srcs) != 1 || srcs[0] != 0 {
		t.Fatalf("Sources = %v, want [0]", srcs)
	}
}
