package srm

import (
	"fmt"
	"time"
)

// AdaptiveConfig enables SRM's adaptive timer adjustment, in the spirit
// of the algorithm of Floyd et al. (ToN 1997, §VI): each host tunes its
// request parameters C1/C2 (and reply parameters D1/D2) from the
// duplicate requests (replies) it observes and the delay its recoveries
// incur, trading recovery latency against duplicate suppression.
//
// The CESRM paper's evaluation uses fixed parameters (C1=C2=2,
// D1=D2=1); adaptive timers are provided as the natural SRM extension
// and exercised by the BenchmarkAblationAdaptiveTimers ablation.
type AdaptiveConfig struct {
	// Enabled turns adaptation on.
	Enabled bool
	// TargetDupRequests is the tolerated average number of duplicate
	// requests per loss before the request window widens (Floyd et
	// al.'s AveDups, default 1).
	TargetDupRequests float64
	// TargetReqDelay is the tolerated average request delay in units of
	// the one-way distance to the source before the window shrinks
	// (AveDelay, default 4 — roughly the fixed schedule's midpoint).
	TargetReqDelay float64
	// TargetDupReplies and TargetRepDelay play the same roles for the
	// reply window.
	TargetDupReplies float64
	TargetRepDelay   float64
	// Gain scales the additive adjustment steps; zero selects 1.
	Gain float64
	// Bounds clamp the adapted parameters.
	MinC1, MaxC1 float64
	MinC2, MaxC2 float64
	MinD1, MaxD1 float64
	MinD2, MaxD2 float64
}

// DefaultAdaptiveConfig returns an enabled configuration with the
// conventional targets and generous bounds.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Enabled:           true,
		TargetDupRequests: 1,
		TargetReqDelay:    4,
		TargetDupReplies:  1,
		TargetRepDelay:    2,
		Gain:              1,
		MinC1:             0.5, MaxC1: 8,
		MinC2: 0.5, MaxC2: 8,
		MinD1: 0.5, MaxD1: 8,
		MinD2: 0.5, MaxD2: 8,
	}
}

// Validate checks the adaptive configuration.
func (c AdaptiveConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.TargetDupRequests < 0 || c.TargetDupReplies < 0 {
		return fmt.Errorf("srm: negative duplicate targets %+v", c)
	}
	if c.Gain < 0 {
		return fmt.Errorf("srm: negative adaptation gain %v", c.Gain)
	}
	if c.MinC1 > c.MaxC1 || c.MinC2 > c.MaxC2 || c.MinD1 > c.MaxD1 || c.MinD2 > c.MaxD2 {
		return fmt.Errorf("srm: inverted adaptation bounds %+v", c)
	}
	if c.MinC1 < 0 || c.MinC2 < 0 || c.MinD1 < 0 || c.MinD2 < 0 {
		return fmt.Errorf("srm: negative adaptation bounds %+v", c)
	}
	return nil
}

// adaptiveState carries a host's exponentially weighted duplicate and
// delay averages. The EWMA weight follows the SRM paper's
// "3/4 old + 1/4 new" smoothing.
type adaptiveState struct {
	aveDupReq   float64
	aveReqDelay float64
	haveReq     bool
	aveDupRep   float64
	aveRepDelay float64
	haveRep     bool
}

const ewmaNew = 0.25

func ewma(old, sample float64, initialized bool) float64 {
	if !initialized {
		return sample
	}
	return (1-ewmaNew)*old + ewmaNew*sample
}

// observeRequestRecovery folds one completed recovery into the request
// averages and adjusts C1/C2: too many duplicate requests per loss mean
// suppression is too weak (widen the window); few duplicates but long
// delays mean the window is needlessly wide (shrink it).
func (a *Agent) observeRequestRecovery(stream *streamState, ls *lossRecord) {
	cfg := a.adaptiveCfg
	if !cfg.Enabled {
		return
	}
	dups := float64(ls.info.OwnRequests + ls.foreignRequests)
	if dups > 0 {
		dups-- // duplicates are requests beyond the first
	}
	st := &a.adaptive
	st.aveDupReq = ewma(st.aveDupReq, dups, st.haveReq)
	d := a.Distance(stream.source)
	if d > 0 && ls.firstRequestAt > 0 {
		delay := float64(ls.firstRequestAt.Sub(ls.detectedAt)) / float64(d)
		st.aveReqDelay = ewma(st.aveReqDelay, delay, st.haveReq)
	}
	st.haveReq = true

	step := 0.1 * cfg.Gain
	switch {
	case st.aveDupReq >= cfg.TargetDupRequests:
		// Duplicates: strengthen suppression by widening and shifting
		// the request window.
		a.p.C1 = clampF(a.p.C1+step/2, cfg.MinC1, cfg.MaxC1)
		a.p.C2 = clampF(a.p.C2+step*5, cfg.MinC2, cfg.MaxC2)
	case st.aveReqDelay > cfg.TargetReqDelay:
		// No duplicate pressure and slow requests: tighten the window.
		if a.p.C2 > cfg.MinC2 {
			a.p.C2 = clampF(a.p.C2-step*5, cfg.MinC2, cfg.MaxC2)
		} else {
			a.p.C1 = clampF(a.p.C1-step/2, cfg.MinC1, cfg.MaxC1)
		}
	}
}

// observeReplyOutcome folds one reply round into the reply averages and
// adjusts D1/D2 symmetrically.
func (a *Agent) observeReplyOutcome(rs *replyState, dupReplies int, delay time.Duration, dist time.Duration) {
	cfg := a.adaptiveCfg
	if !cfg.Enabled {
		return
	}
	st := &a.adaptive
	st.aveDupRep = ewma(st.aveDupRep, float64(dupReplies), st.haveRep)
	if dist > 0 {
		st.aveRepDelay = ewma(st.aveRepDelay, float64(delay)/float64(dist), st.haveRep)
	}
	st.haveRep = true

	step := 0.1 * cfg.Gain
	switch {
	case st.aveDupRep >= cfg.TargetDupReplies:
		a.p.D1 = clampF(a.p.D1+step/2, cfg.MinD1, cfg.MaxD1)
		a.p.D2 = clampF(a.p.D2+step*5, cfg.MinD2, cfg.MaxD2)
	case st.aveRepDelay > cfg.TargetRepDelay:
		if a.p.D2 > cfg.MinD2 {
			a.p.D2 = clampF(a.p.D2-step*5, cfg.MinD2, cfg.MaxD2)
		} else {
			a.p.D1 = clampF(a.p.D1-step/2, cfg.MinD1, cfg.MaxD1)
		}
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// EnableAdaptiveTimers switches the agent to adaptive scheduling. It
// must be called before the simulation starts.
func (a *Agent) EnableAdaptiveTimers(cfg AdaptiveConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	a.adaptiveCfg = cfg
	return nil
}

// AdaptedParams returns the agent's current (possibly adapted)
// scheduling parameters.
func (a *Agent) AdaptedParams() Params { return a.p }
