package srm

import (
	"time"

	"cesrm/internal/sim"
	"cesrm/internal/topology"
)

// DistanceMode selects how session messages estimate inter-host
// distances (§2).
type DistanceMode int

const (
	// DistOneWay computes the one-way latency directly from the sender's
	// timestamp, which presumes synchronized clocks. Inside the
	// simulator all hosts share the virtual clock, so this is exact and
	// converges after a single session message.
	DistOneWay DistanceMode = iota
	// DistEchoRTT implements SRM's deployable estimator: each session
	// message echoes, per peer, the timestamp of the last session
	// message received from that peer together with how long it was
	// held before echoing. The peer computes
	//
	//	rtt = now - echoedTimestamp - heldFor
	//
	// which needs no clock synchronization, and halves it. Convergence
	// needs a full session round trip.
	DistEchoRTT
)

// String returns the mode name.
func (m DistanceMode) String() string {
	switch m {
	case DistOneWay:
		return "one-way"
	case DistEchoRTT:
		return "echo-rtt"
	default:
		return "unknown"
	}
}

// Echo is the per-peer annotation on session messages in DistEchoRTT
// mode: the peer's last timestamp as received, and how long the sender
// held it before this session message went out.
type Echo struct {
	// PeerSentAt is the SentAt carried by the last session message
	// received from the peer.
	PeerSentAt sim.Time
	// HeldFor is the delay between receiving that session message and
	// sending this one.
	HeldFor time.Duration
}

// echoState tracks the inbound side of the echo protocol on one host.
type echoState struct {
	// lastFrom records, per peer, the peer's timestamp and our receipt
	// time for the most recent session message from that peer.
	lastFrom map[topology.NodeID]echoEntry
}

type echoEntry struct {
	peerSentAt sim.Time
	receivedAt sim.Time
}

func newEchoState() *echoState {
	return &echoState{lastFrom: make(map[topology.NodeID]echoEntry)}
}

// record notes a session message from peer.
func (e *echoState) record(peer topology.NodeID, peerSentAt, now sim.Time) {
	e.lastFrom[peer] = echoEntry{peerSentAt: peerSentAt, receivedAt: now}
}

// echoes builds the annotation map for an outgoing session message.
func (e *echoState) echoes(now sim.Time) map[topology.NodeID]Echo {
	if len(e.lastFrom) == 0 {
		return nil
	}
	out := make(map[topology.NodeID]Echo, len(e.lastFrom))
	for peer, entry := range e.lastFrom {
		out[peer] = Echo{
			PeerSentAt: entry.peerSentAt,
			HeldFor:    time.Duration(now.Sub(entry.receivedAt)),
		}
	}
	return out
}

// rttFromEcho computes the round-trip estimate for an echo addressed to
// this host, received at now. Returns false for nonsensical (negative)
// samples, which can only arise from corrupted input.
func rttFromEcho(now sim.Time, e Echo) (time.Duration, bool) {
	rtt := time.Duration(now.Sub(e.PeerSentAt)) - e.HeldFor
	if rtt < 0 {
		return 0, false
	}
	return rtt, true
}
